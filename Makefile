# SMARQ — build, test, and experiment targets.

GO ?= go

.PHONY: all build test race bench figures examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (plus the ablation,
# unrolling and Efficeon extensions).
figures:
	$(GO) run ./cmd/smarq-bench

figures-json:
	$(GO) run ./cmd/smarq-bench -json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reorder
	$(GO) run ./examples/storeforward
	$(GO) run ./examples/scaling
	$(GO) run ./examples/assembler

clean:
	$(GO) clean ./...
