# SMARQ — build, test, and experiment targets.

GO ?= go
# Worker-pool bound for the figure harness (0 = GOMAXPROCS).
PARALLEL ?= 0

.PHONY: all build test race bench bench-all bench-check figures examples clean \
	ci fmt-check lint bench-smoke fuzz-smoke chaos-smoke trace-smoke fleet-smoke \
	analyze-smoke

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Everything CI gates on, runnable locally in one shot.
ci: build test fmt-check bench-smoke trace-smoke analyze-smoke

# Static analysis and known-vulnerability scan. Tool versions are pinned
# so the gate is reproducible; `go run pkg@version` fetches them into the
# module cache on first use (network required once, cached by CI).
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.3

lint:
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...

# Fail if any file needs gofmt.
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "gofmt required for:"; echo "$$files"; exit 1; \
	fi; echo "gofmt clean"

# Regenerate a small, fast artifact subset and compare it against the
# checked-in golden (tolerant numeric compare) — the figure regression
# gate. Refresh the golden with:
#   go run ./cmd/smarq-bench -only table1,fig15 -bench swim,mgrid -json \
#     > testdata/bench-smoke.golden.json
bench-smoke:
	$(GO) run ./cmd/smarq-bench -only table1,fig15 -bench swim,mgrid -json \
		-parallel $(PARALLEL) \
		| $(GO) run ./cmd/smarq-golden -golden testdata/bench-smoke.golden.json -got -

# Telemetry trace gate: re-trace a small committed workload and compare
# the Perfetto (Chrome trace-event) JSON and the metrics snapshot against
# the checked-in goldens. Traces are stamped with the simulated cycle
# clock, so the run is deterministic and the compare is effectively
# exact. Refresh the goldens with:
#   go run ./cmd/smarq-run -file testdata/trace-smoke.s \
#     -trace testdata/trace-smoke.golden.json -trace-format chrome \
#     -metrics testdata/trace-smoke.metrics.golden.json >/dev/null
trace-smoke:
	$(GO) run ./cmd/smarq-run -file testdata/trace-smoke.s \
		-trace /tmp/trace-smoke.json -trace-format chrome \
		-metrics /tmp/trace-smoke.metrics.json >/dev/null
	$(GO) run ./cmd/smarq-golden -golden testdata/trace-smoke.golden.json \
		-got /tmp/trace-smoke.json
	$(GO) run ./cmd/smarq-golden -golden testdata/trace-smoke.metrics.golden.json \
		-got /tmp/trace-smoke.metrics.json
	@echo "trace-smoke: ok"

# Postmortem analyzer gate: regenerate a seeded chaos trace and a pair of
# per-tenant fleet traces, run smarq-analyze over all three, and compare
# the JSON report against the checked-in golden. Both the traces (cycle-
# stamped, fleet tenants byte-identical to solo runs) and the analyzer
# (sorted runs, integer percentiles) are deterministic, so the compare is
# effectively exact at any worker count. Refresh the golden with:
#   make analyze-smoke ANALYZE_GOLDEN_OUT=testdata/analyze-smoke.golden.json
ANALYZE_TMP = /tmp/smarq-analyze-smoke
ANALYZE_GOLDEN_OUT =
analyze-smoke:
	rm -rf $(ANALYZE_TMP) && mkdir -p $(ANALYZE_TMP)
	$(GO) run ./cmd/smarq-run -bench equake -chaos-seed 7 -chaos-host -health \
		-compile-workers 2 -trace $(ANALYZE_TMP)/solo-equake.jsonl >/dev/null
	$(GO) run ./cmd/smarq-bench -tenants 2 -tenant-mix swim,equake \
		-compile-workers 2 -trace $(ANALYZE_TMP)/fleet.jsonl >/dev/null
	$(GO) run ./cmd/smarq-analyze -json \
		$(ANALYZE_TMP)/solo-equake.jsonl \
		$(ANALYZE_TMP)/fleet.tenant0-swim.jsonl \
		$(ANALYZE_TMP)/fleet.tenant1-equake.jsonl \
		> $(ANALYZE_TMP)/report.json
ifeq ($(ANALYZE_GOLDEN_OUT),)
	$(GO) run ./cmd/smarq-golden -golden testdata/analyze-smoke.golden.json \
		-got $(ANALYZE_TMP)/report.json
	@echo "analyze-smoke: ok"
else
	cp $(ANALYZE_TMP)/report.json $(ANALYZE_GOLDEN_OUT)
	@echo "analyze-smoke: refreshed $(ANALYZE_GOLDEN_OUT)"
endif

# Short differential fuzz of the dynopt pipeline and of the decoded
# interpreter engine (seed corpora also run under plain `go test`). Go
# allows one -fuzz pattern per invocation, hence two commands.
fuzz-smoke:
	$(GO) test -run='^FuzzDynopt$$' -fuzz='^FuzzDynopt$$' -fuzztime=10s ./internal/dynopt
	$(GO) test -run='^FuzzInterpDecoded$$' -fuzz='^FuzzInterpDecoded$$' -fuzztime=10s ./internal/interp

# Chaos gate: the seeded fault-injection soak (spurious alias exceptions,
# guard-fail storms, compile failures, and the host fault classes: worker
# panics, watchdog kills, poisoned results, memo pressure) with the
# rollback invariant checker on, plus CLI replay smokes. SMARQ_CHAOS_FULL=1
# widens to the full suite.
chaos-smoke:
	$(GO) test -count=1 ./internal/faultinject ./internal/health
	$(GO) test -run='^TestChaos|^TestInvariantChecker|^TestSpuriousAlias|^TestCompileFail|^TestGuardFailInjection|^TestHostChaos|^TestWorkerPanic|^TestWatchdog|^TestPoisoned|^TestHealth|^TestMemoPressure' \
		-count=1 ./internal/dynopt
	$(GO) run ./cmd/smarq-run -bench equake -chaos-seed 7 -check-invariants >/dev/null
	$(GO) run ./cmd/smarq-run -bench equake -chaos-seed 7 -chaos-host -health \
		-compile-workers 2 -compile-memoize -check-invariants >/dev/null
	@echo "chaos-smoke: ok"

# Fleet gate: 8 concurrent tenants over the shared compile pool and
# sharded code cache, under the race detector pinned to 2 cores, with
# every tenant's stats, guest registers and memory digest diffed against
# its solo run (the fleet determinism contract).
fleet-smoke:
	GOMAXPROCS=2 $(GO) run -race ./cmd/smarq-bench -tenants 8 \
		-tenant-mix swim,equake -compile-workers 2 -fleet-verify >/dev/null
	@echo "fleet-smoke: ok"

# Execution-engine microbench suite → BENCH_exec.json. Fixed -benchtime
# and -count keep runs comparable; the committed pre-change baseline is
# merged in so the artifact records the before/after trajectory.
BENCH_EXEC_RE = ^BenchmarkExecute$$|^BenchmarkRegionExecution$$|^BenchmarkDynopt$$|^BenchmarkCompile$$|^BenchmarkMemoHit$$|^BenchmarkCompilePipeline$$|^BenchmarkFleet$$|^BenchmarkInterpreter$$|^BenchmarkFleetColdStart$$

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_EXEC_RE)' -benchmem -benchtime 2000x -count=1 . \
		| $(GO) run ./cmd/smarq-benchjson -merge testdata/bench-exec.prechange.json \
		> BENCH_exec.json
	@cat BENCH_exec.json

# Perf-regression smoke: rerun the exec benches and compare against the
# committed baseline. Timing fields get a very generous tolerance (CI
# machines vary wildly); allocation counts on the steady-state execute
# paths must match exactly — an allocation regression fails even when the
# timing noise would hide it.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_EXEC_RE)' -benchmem -benchtime 2000x -count=1 . \
		| $(GO) run ./cmd/smarq-benchjson \
		| $(GO) run ./cmd/smarq-golden -golden testdata/bench-exec.baseline.json -got - \
			-rtol 9 -atol 1.5 -exact '(Execute/|RegionExecution|Compile|Interpreter/).*allocs_per_op$$|Fleet/tenants4.dedupe_pct$$'

# One testing.B benchmark per table/figure plus micro-benchmarks (the
# full sweep; slow).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (plus the ablation,
# unrolling and Efficeon extensions). Cells fan out over PARALLEL
# workers; output is byte-identical at any parallelism.
figures:
	$(GO) run ./cmd/smarq-bench -parallel $(PARALLEL)

figures-json:
	$(GO) run ./cmd/smarq-bench -json -parallel $(PARALLEL)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reorder
	$(GO) run ./examples/storeforward
	$(GO) run ./examples/scaling
	$(GO) run ./examples/assembler

clean:
	$(GO) clean ./...
