// Benchmarks that regenerate the paper's tables and figures (one bench per
// experiment, reporting the headline statistic as a custom metric) plus
// micro-benchmarks of the core components.
//
//	go test -bench=. -benchmem
package smarq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"smarq"
	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/compilequeue"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/harness"
	"smarq/internal/interp"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/vliw"
	"smarq/internal/workload"
	"smarq/internal/xlate"
)

// --- Experiment regeneration benches (Tables 1-2, Figures 14-19) ---

func BenchmarkTable1Probes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2MachineModel(b *testing.B) {
	cfg := vliw.DefaultConfig()
	ops := figureSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cfg.CycleCount(ops, 256)
	}
}

func BenchmarkFigure14SuperblockSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Max["ammp"]), "ammp-max-memops")
	}
}

func BenchmarkFigure15Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Mean[harness.CfgSMARQ64], "smarq64-speedup")
		b.ReportMetric(d.Mean[harness.CfgSMARQ16], "smarq16-speedup")
		b.ReportMetric(d.Mean[harness.CfgALAT], "itanium-speedup")
	}
}

func BenchmarkFigure16StoreReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*d.Impact["mesa"], "mesa-impact-pct")
		b.ReportMetric(100*d.Mean, "mean-impact-pct")
	}
}

func BenchmarkFigure17WorkingSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.MeanSMARQ, "smarq-normalized-ws")
		b.ReportMetric(d.MeanLowerBound, "lower-bound")
	}
}

func BenchmarkFigure18Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure18()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*d.MeanOptPct, "overhead-pct")
		b.ReportMetric(100*d.MeanSchedShare, "sched-share-pct")
	}
}

func BenchmarkFigure19Constraints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Figure19()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.MeanChecks, "checks-per-memop")
		b.ReportMetric(d.MeanAntis, "antis-per-memop")
	}
}

func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.ScalingSweep([]int{16, 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Mean[64]/d.Mean[16], "gain-64-over-16")
	}
}

// --- End-to-end benches: one full system run per suite benchmark ---

func BenchmarkEndToEnd(b *testing.B) {
	for _, bm := range workload.Suite() {
		b.Run(bm.Name, func(b *testing.B) {
			var cycles int64
			var insts int64
			for i := 0; i < b.N; i++ {
				sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), dynopt.ConfigSMARQ(64))
				if _, err := sys.Run(bm.MaxInsts); err != nil {
					b.Fatal(err)
				}
				cycles = sys.Stats.TotalCycles
				insts = sys.Stats.GuestInsts
			}
			b.ReportMetric(float64(cycles)/float64(insts), "cpi")
			b.ReportMetric(float64(insts), "guest-insts")
		})
	}
}

// --- Micro-benchmarks of the core components ---

// figureSeq builds a representative scheduled sequence for machine-model
// micro-benchmarks.
func figureSeq() []*ir.Op {
	var seq []*ir.Op
	v := ir.VReg(64)
	for i := 0; i < 64; i++ {
		switch i % 4 {
		case 0:
			seq = append(seq, &ir.Op{ID: i, Kind: ir.Load, GOp: guest.Ld8, Dst: v,
				Srcs: []ir.VReg{1}, SrcFloat: []bool{false},
				Mem: &ir.MemInfo{Base: 1, Size: 8}, AROffset: -1})
		case 1, 2:
			seq = append(seq, &ir.Op{ID: i, Kind: ir.Arith, GOp: guest.Addi, Dst: v + 1,
				Srcs: []ir.VReg{v}, SrcFloat: []bool{false}, AROffset: -1})
		default:
			seq = append(seq, &ir.Op{ID: i, Kind: ir.Store, GOp: guest.St8, Dst: ir.NoVReg,
				Srcs: []ir.VReg{v, 2}, SrcFloat: []bool{false, false},
				Mem: &ir.MemInfo{Base: 2, Size: 8}, AROffset: -1})
		}
		v += 2
	}
	return seq
}

// BenchmarkAllocator measures the SMARQ allocation algorithm itself — the
// cost the paper's Figure 18 bounds (it must be cheap enough to run at
// translation time).
func BenchmarkAllocator(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 64
	kinds := make([]byte, n)
	for i := range kinds {
		kinds[i] = "LSa"[rng.Intn(3)]
	}
	ops := make([]*ir.Op, n)
	for i, k := range kinds {
		o := &ir.Op{ID: i, Dst: ir.NoVReg, AROffset: -1}
		switch k {
		case 'L':
			o.Kind = ir.Load
			o.GOp = guest.Ld8
			o.Mem = &ir.MemInfo{Size: 8}
		case 'S':
			o.Kind = ir.Store
			o.GOp = guest.St8
			o.Mem = &ir.MemInfo{Size: 8}
		default:
			o.Kind = ir.Arith
		}
		ops[i] = o
	}
	ds := deps.NewSet()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ops[i].IsMem() && ops[j].IsMem() &&
				(ops[i].Kind == ir.Store || ops[j].Kind == ir.Store) && rng.Intn(4) == 0 {
				ds.Add(deps.Dep{Src: i, Dst: j, Rel: alias.MayAlias,
					SrcIsStore: ops[i].Kind == ir.Store, DstIsStore: ops[j].Kind == ir.Store})
			}
		}
	}
	schedule := rng.Perm(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, op := range ops {
			op.AROffset = -1
			op.P, op.C = false, false
		}
		if _, err := core.AllocateSequence(ops, schedule, ds, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderedQueueOnMem(b *testing.B) {
	q := aliashw.NewOrderedQueue(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.OnMem(1, false, true, false, i%32, 0, uint64(i*8), uint64(i*8+8))
		q.OnMem(2, true, false, true, i%32, 0, uint64(i*8+4), uint64(i*8+12))
		q.Rotate(1)
	}
}

func BenchmarkALATOnMem(b *testing.B) {
	a := aliashw.NewALAT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnMem(1, false, true, false, 0, 0, uint64(i*8), uint64(i*8+8))
		a.OnMem(2, true, false, false, -1, 0, 4096, 4104)
		if i%16 == 15 {
			a.Reset()
		}
	}
}

// BenchmarkInterpreter measures the pre-decoded engine's steady-state
// dispatch rate per workload: the program is decoded once up front and
// the same Interpreter replays 100k-instruction runs, so an iteration is
// pure threaded dispatch at zero heap allocations (the allocs_per_op
// figure is pinned exactly by bench-check).
func BenchmarkInterpreter(b *testing.B) {
	for _, name := range []string{"swim", "equake", "ammp"} {
		b.Run(name, func(b *testing.B) {
			bm, _ := workload.ByName(name)
			st := &guest.State{}
			mem := guest.NewMemory(bm.MemSize)
			it := interp.New(bm.Build(), st, mem)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				*st = guest.State{}
				mem.Zero()
				it.Reset()
				if _, err := it.Run(0, 100_000); err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(it.DynInsts))
			}
		})
	}
}

// BenchmarkTranslatePipeline measures region formation through scheduling
// — the full translation path the runtime pays per hot region.
func BenchmarkTranslatePipeline(b *testing.B) {
	bm, _ := workload.ByName("ammp")
	prog := bm.Build()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(bm.MemSize))
	_, _ = it.Run(0, 500_000)
	best, bc := 0, uint64(0)
	for id, c := range it.Prof.BlockCounts {
		if c > bc {
			best, bc = id, c
		}
	}
	machine := vliw.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb, err := region.Form(prog, it.Prof, best, region.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		reg, err := xlate.Translate(sb)
		if err != nil {
			b.Fatal(err)
		}
		tbl := alias.BuildTable(reg, nil)
		optRes := opt.Run(reg, tbl, opt.Config{LoadElim: true, StoreElim: true, Speculative: true})
		ds := deps.Compute(reg, tbl)
		opt.AddExtendedDeps(ds, reg, tbl, optRes)
		if _, err := sched.Run(reg, tbl, ds, sched.Config{
			Mode: sched.HWOrdered, NumAliasRegs: 64, StoreReorder: true,
			PressureMargin: 4, Machine: machine,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilePipeline measures one full compilation — translation,
// alias analysis, eliminations, dependences, scheduling with alias
// register allocation, VLIW baking and the working-set statistics — over
// the hottest ammp superblock, with region formation excluded (production
// caches superblocks per entry). This is the per-compile cost the
// flat-arena pipeline targets; BenchmarkCompile above measures the same
// machinery embedded in a full system run.
func BenchmarkCompilePipeline(b *testing.B) {
	bm, _ := workload.ByName("ammp")
	prog := bm.Build()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(bm.MemSize))
	_, _ = it.Run(0, 500_000)
	best, bc := 0, uint64(0)
	for id, c := range it.Prof.BlockCounts {
		if c > bc {
			best, bc = id, c
		}
	}
	sb, err := region.Form(prog, it.Prof, best, region.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	machine := vliw.DefaultConfig()
	scfg := sched.Config{
		Mode: sched.HWOrdered, NumAliasRegs: 64, StoreReorder: true,
		PressureMargin: 4, Machine: machine,
	}
	arena := ir.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := xlate.TranslateArena(sb, arena)
		if err != nil {
			b.Fatal(err)
		}
		tbl := alias.BuildTable(reg, nil)
		optRes := opt.Run(reg, tbl, opt.Config{LoadElim: true, StoreElim: true, Speculative: true})
		ds := deps.Compute(reg, tbl)
		opt.AddExtendedDeps(ds, reg, tbl, optRes)
		sc, err := sched.Run(reg, tbl, ds, scfg)
		if err != nil {
			b.Fatal(err)
		}
		fseq, freg := ir.Freeze(sc.Seq, reg)
		cr := machine.Compile(fseq, freg, len(sb.Insts))
		ws := core.MeasureWorkingSets(sc.Alloc, sb.NumMemOps())
		tbl.Release()
		ds.Release()
		optRes.Release()
		sc.Release()
		arena.Reset()
		if cr.Cycles == 0 || ws.SMARQ == 0 {
			b.Fatal("degenerate compile")
		}
	}
}

// benchLoopRegion compiles the store/load loop the execution benches run,
// scheduled for the given hardware mode, and returns an entry-ready state.
func benchLoopRegion(b *testing.B, mode sched.HWMode, nar int) (*vliw.CompiledRegion, *guest.State, *guest.Memory) {
	b.Helper()
	bb := smarq.NewBuilder()
	bb.NewBlock()
	bb.Li(1, 1024)
	bb.Li(2, 4096)
	bb.Li(3, 0)
	bb.Li(4, 1<<30)
	loop := bb.NewBlock()
	bb.St8(1, 0, 5)
	bb.Ld8(6, 2, 0)
	bb.Addi(5, 6, 3)
	bb.Addi(3, 3, 1)
	bb.Blt(3, 4, loop)
	bb.NewBlock()
	bb.Halt()
	prog := bb.MustProgram()

	st := &guest.State{}
	mem := guest.NewMemory(1 << 16)
	it := interp.New(prog, st, mem)
	if _, err := it.Run(0, 10_000); err != nil {
		b.Fatal(err)
	}
	sb, err := region.Form(prog, it.Prof, 1, region.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg, err := xlate.Translate(sb)
	if err != nil {
		b.Fatal(err)
	}
	tbl := alias.BuildTable(reg, nil)
	ds := deps.Compute(reg, tbl)
	machine := vliw.DefaultConfig()
	sc, err := sched.Run(reg, tbl, ds, sched.Config{
		Mode: mode, NumAliasRegs: nar, StoreReorder: true,
		PressureMargin: 4, Machine: machine,
	})
	if err != nil {
		b.Fatal(err)
	}
	return machine.Compile(sc.Seq, reg, len(sb.Insts)), st, mem
}

// BenchmarkRegionExecution measures the VLIW execution engine on the
// SMARQ configuration — the headline region-throughput number the perf
// regression gate tracks.
func BenchmarkRegionExecution(b *testing.B) {
	cr, st, mem := benchLoopRegion(b, sched.HWOrdered, 64)
	det := aliashw.NewOrderedQueue(64)
	var ctx vliw.ExecContext
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ctx.Execute(cr, st, mem, det)
		if res.Outcome != vliw.Commit {
			b.Fatalf("outcome %s", res.Outcome)
		}
	}
}

// BenchmarkExecute runs the same region entry under every alias-hardware
// fast path of the devirtualized execute loop.
func BenchmarkExecute(b *testing.B) {
	cases := []struct {
		name string
		mode sched.HWMode
		nar  int
		det  func() aliashw.Detector
	}{
		{"ordered64", sched.HWOrdered, 64, func() aliashw.Detector { return aliashw.NewOrderedQueue(64) }},
		{"alat", sched.HWALAT, 64, func() aliashw.Detector { return aliashw.NewALAT() }},
		{"bitmask15", sched.HWBitmask, 15, func() aliashw.Detector { return aliashw.NewBitmask(15) }},
		{"none", sched.HWNone, 64, func() aliashw.Detector { return aliashw.None{} }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cr, st, mem := benchLoopRegion(b, c.mode, c.nar)
			det := c.det()
			var ctx vliw.ExecContext
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := ctx.Execute(cr, st, mem, det)
				if res.Outcome != vliw.Commit {
					b.Fatalf("outcome %s", res.Outcome)
				}
			}
		})
	}
}

// BenchmarkDynopt measures a full dynamic-optimization system run — the
// interpreter, translation pipeline, and pooled region execution together
// — on a short swim slice.
func BenchmarkDynopt(b *testing.B) {
	bm, _ := workload.ByName("swim")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), dynopt.ConfigSMARQ(64))
		if _, err := sys.Run(100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile runs the BenchmarkDynopt swim slice with the
// background-compilation path on (one worker, then with content-hash
// memoization), so the enqueue/install machinery and memo table sit on
// the same regression trend line as the synchronous baseline.
func BenchmarkCompile(b *testing.B) {
	bm, _ := workload.ByName("swim")
	for _, c := range []struct {
		name    string
		memoize bool
	}{{"workers1", false}, {"memoized", true}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := dynopt.ConfigSMARQ(64)
			cfg.Compile.Workers = 1
			cfg.Compile.Memoize = c.memoize
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
				if _, err := sys.Run(100_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoHit measures the path a memoized recompile takes instead
// of the full pipeline of BenchmarkTranslatePipeline: the canonical
// content-hash fold over the hot superblock plus the table lookup.
func BenchmarkMemoHit(b *testing.B) {
	bm, _ := workload.ByName("ammp")
	prog := bm.Build()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(bm.MemSize))
	_, _ = it.Run(0, 500_000)
	best, bc := 0, uint64(0)
	for id, c := range it.Prof.BlockCounts {
		if c > bc {
			best, bc = id, c
		}
	}
	sb, err := region.Form(prog, it.Prof, best, region.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	key := func() compilequeue.Key {
		k := compilequeue.NewKey()
		k = k.Int(int64(sb.Entry)).Int(int64(sb.FinalTarget)).Int(int64(sb.UnrollFactor))
		for i := range sb.Insts {
			gi := &sb.Insts[i]
			k = k.Int(int64(gi.Inst.Op)).Int(int64(gi.Inst.Rd)).Int(int64(gi.Inst.Rs1)).Int(int64(gi.Inst.Rs2))
			k = k.Int(gi.Inst.Imm).Int(int64(gi.Inst.Target)).Bool(gi.IsGuard)
		}
		return k
	}
	memo := compilequeue.NewMemo[*vliw.CompiledRegion]()
	memo.Put(key(), &vliw.CompiledRegion{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := memo.Get(key()); !ok {
			b.Fatal("memo miss")
		}
	}
}

// BenchmarkFleet measures concurrent multi-tenant throughput over the
// shared compile pool and sharded code cache: N identical swim tenants on
// their own goroutines, one shared 2-worker pool, one shared cache. The
// headline metrics are aggregate regions/sec (tenants4 vs tenants1 is the
// fleet-scaling gate on a multi-core host) and dedupe-pct — the share of
// would-be duplicate compiles the shared cache eliminated, deterministically
// 100 for identical tenants (every unique key compiles exactly once
// fleet-wide), which the bench-check baseline pins exactly.
func BenchmarkFleet(b *testing.B) {
	const workers = 2
	const maxInsts = 100_000
	solo, err := harness.RunFleet(harness.FleetConfig{
		Tenants: 1, Mix: []string{"swim"}, CompileWorkers: workers, MaxInsts: maxInsts,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The solo run's compile count is the unique-key population; with n
	// identical tenants, n× that many compiles would run without sharing.
	c1 := solo.Cache.Compiles
	if c1 == 0 {
		b.Fatal("solo fleet run compiled nothing")
	}
	for _, tenants := range []int{1, 4} {
		b.Run(fmt.Sprintf("tenants%d", tenants), func(b *testing.B) {
			var commits, insts, compiles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := harness.RunFleet(harness.FleetConfig{
					Tenants: tenants, Mix: []string{"swim"},
					CompileWorkers: workers, MaxInsts: maxInsts,
				})
				if err != nil {
					b.Fatal(err)
				}
				commits += res.Commits()
				insts += res.GuestInsts()
				compiles += res.Cache.Compiles
			}
			secs := b.Elapsed().Seconds()
			if secs <= 0 {
				secs = 1e-9
			}
			b.ReportMetric(float64(commits)/secs, "regions/s")
			b.ReportMetric(float64(insts)/secs, "guest-insts/s")
			if tenants > 1 {
				avoided := float64(int64(tenants)*c1*int64(b.N) - compiles)
				dup := float64((int64(tenants) - 1) * c1 * int64(b.N))
				b.ReportMetric(100*avoided/dup, "dedupe-pct")
			}
		})
	}
}

// BenchmarkFleetColdStart measures time-to-all-halted for a cold fleet:
// every tenant starts with an empty code cache, so the budgeted run is
// dominated by interpretation until regions warm up — exactly the window
// the pre-decoded engine targets. At 8 tenants the interpreter runs on
// every core at once, so a faster cold path compounds across the fleet.
func BenchmarkFleetColdStart(b *testing.B) {
	const maxInsts = 200_000
	for _, tenants := range []int{1, 8} {
		b.Run(fmt.Sprintf("tenants%d", tenants), func(b *testing.B) {
			var insts int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := harness.RunFleet(harness.FleetConfig{
					Tenants: tenants, Mix: []string{"swim", "equake", "ammp"},
					CompileWorkers: 2, MaxInsts: maxInsts,
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.GuestInsts()
			}
			secs := b.Elapsed().Seconds()
			if secs <= 0 {
				secs = 1e-9
			}
			b.ReportMetric(float64(insts)/secs, "guest-insts/s")
		})
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Ablations()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*d.MeanSlowdown[harness.AblNoAnti], "no-anti-slowdown-pct")
		b.ReportMetric(100*d.MeanSlowdown[harness.AblNoElim], "no-elim-slowdown-pct")
	}
}

func BenchmarkUnrollSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.UnrollSweep([]int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Mean[2]/d.Mean[1], "gain-x2-over-x1")
		b.ReportMetric(float64(d.MaxWS[2]), "max-working-set-x2")
	}
}

func BenchmarkEfficeonCompare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Efficeon()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Mean[harness.CfgEfficeon], "efficeon-speedup")
		b.ReportMetric(d.Mean[harness.CfgEfficeon]/d.Mean[harness.CfgSMARQ16], "efficeon-over-smarq16")
	}
}

func BenchmarkEnergyChecks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(nil)
		d, err := r.Energy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Mean[harness.CfgSMARQ64], "smarq-checks-per-kinst")
		b.ReportMetric(d.Mean[harness.CfgALAT], "alat-checks-per-kinst")
	}
}
