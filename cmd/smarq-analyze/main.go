// Command smarq-analyze is the postmortem half of the observability
// plane: it ingests the cycle-stamped JSONL event traces the runtime
// already emits (smarq-run -trace, smarq-bench -trace, per-tenant fleet
// traces) and reconstructs *why* a run behaved the way it did —
// compile-latency percentiles, queue-depth and cache-occupancy
// timelines, health-controller transition history, rollback-storm
// intervals, and a cycle-attribution breakdown.
//
// Usage:
//
//	smarq-analyze run.trace.jsonl
//	smarq-analyze fleet.trace.tenant0-swim.json fleet.trace.tenant1-equake.json
//	smarq-analyze -json run.trace.jsonl        # machine-readable, golden-diffable
//	smarq-analyze -storm-window 4096 -storm-count 8 chaos.trace.jsonl
//
// Traces are simulated-cycle-stamped and deterministic, so the report is
// a pure function of the trace bytes: identical traces produce
// byte-identical reports at any -json setting (the analyze-smoke CI gate
// relies on exactly this).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with a testable surface (0 ok, 1 runtime failure, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smarq-analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as one deterministic JSON document")
	buckets := fs.Int("buckets", 16, "timeline resolution in buckets")
	stormWindow := fs.Int64("storm-window", 4096, "rollback-storm detection window in simulated cycles")
	stormCount := fs.Int("storm-count", 8, "rollbacks of one region within the window that flag a storm")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "smarq-analyze: no trace files (usage: smarq-analyze [flags] trace.jsonl...)")
		return 2
	}
	if *buckets < 1 || *stormWindow < 1 || *stormCount < 1 {
		fmt.Fprintln(stderr, "smarq-analyze: -buckets, -storm-window and -storm-count must be positive")
		return 2
	}

	cfg := analyzeConfig{
		Buckets:     *buckets,
		StormWindow: *stormWindow,
		StormCount:  *stormCount,
	}
	report, err := analyzeFiles(fs.Args(), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "smarq-analyze:", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "smarq-analyze:", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, report.Render())
	return 0
}

// analyzeConfig tunes the report.
type analyzeConfig struct {
	Buckets     int   `json:"buckets"`
	StormWindow int64 `json:"storm_window"`
	StormCount  int   `json:"storm_count"`
}

// event is one decoded trace line. The "to" key is kind-polymorphic — a
// tier name string on demote/promote, a numeric health level on health
// events — so it stays raw until the kind is known.
type event struct {
	Cycle  int64           `json:"cycle"`
	Ev     string          `json:"ev"`
	Run    int32           `json:"run"`
	Region *int64          `json:"region"`
	Tier   string          `json:"tier"`
	To     json.RawMessage `json:"to"`
	Cause  string          `json:"cause"`
	Cost   int64           `json:"cost"`
	Depth  *int64          `json:"depth"`
	From   *int64          `json:"from"`
	Name   string          `json:"name"`
}

// Report is the whole analysis: one entry per run (a solo trace is one
// run; a smarq-bench trace holds one per cell; fleet traces are one file
// per tenant), sorted by label for deterministic output.
type Report struct {
	Config analyzeConfig `json:"config"`
	Runs   []*RunReport  `json:"runs"`
}

// RunReport is one run's reconstruction.
type RunReport struct {
	Label       string           `json:"label"`
	Events      int64            `json:"events"`
	TotalCycles int64            `json:"total_cycles"`
	Counts      map[string]int64 `json:"counts"`

	CompileLatency LatencyReport `json:"compile_latency"`
	Attribution    Attribution   `json:"attribution"`
	QueueDepth     Timeline      `json:"queue_depth"`
	CacheOccupancy Timeline      `json:"cache_occupancy"`
	Health         []HealthMove  `json:"health,omitempty"`
	Storms         []Storm       `json:"storms,omitempty"`

	// accumulation state, never serialized (unexported)
	latencies []int64
	pending   map[int64]int64   // region -> background enqueue cycle
	live      map[int64]bool    // regions currently in the code cache
	occSample []int64           // flattened (cycle, occupancy) pairs
	depths    []int64           // flattened (cycle, depth) pairs
	rollbacks map[int64][]int64 // region -> rollback cycles, in order
	execute   int64
	rollback  int64
}

// LatencyReport is the percentile summary of enqueue→install latencies.
type LatencyReport struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Attribution splits the run's simulated cycles: execute is committed
// region work, rollback is cycles burned on aborted speculation,
// interpret is everything else (interpreter plus synchronous compile
// overhead). CompileWait is the summed background enqueue→install
// latency — it overlaps execution, so it reports separately rather than
// summing into the split.
type Attribution struct {
	Total       int64 `json:"total"`
	Execute     int64 `json:"execute"`
	Rollback    int64 `json:"rollback"`
	Interpret   int64 `json:"interpret"`
	CompileWait int64 `json:"compile_wait"`
}

// Timeline is a fixed-resolution series over the run's cycles: Buckets[i]
// covers cycles [i*Total/N, (i+1)*Total/N). Queue depth buckets hold the
// bucket's maximum observed depth; occupancy buckets hold the live-region
// count at the bucket's last event.
type Timeline struct {
	Buckets []int64 `json:"buckets"`
	Peak    int64   `json:"peak"`
	Final   int64   `json:"final"`
}

// HealthMove is one degradation-ladder transition.
type HealthMove struct {
	Cycle int64  `json:"cycle"`
	From  string `json:"from"`
	To    string `json:"to"`
	Cause string `json:"cause,omitempty"`
}

// Storm is one detected rollback storm: at least the configured count of
// rollbacks of one region inside one detection window. Overlapping
// windows merge into a single interval.
type Storm struct {
	Region    int64 `json:"region"`
	Start     int64 `json:"start"`
	End       int64 `json:"end"`
	Rollbacks int   `json:"rollbacks"`
}

// healthLevelNames mirrors internal/health's ladder. The analyzer decodes
// raw numeric levels from the trace, so the mapping lives here rather
// than importing the package (traces are a stable external schema).
var healthLevelNames = []string{"normal", "no-speculation", "compile-off", "quarantine"}

func healthLevelName(v int64) string {
	if v >= 0 && v < int64(len(healthLevelNames)) {
		return healthLevelNames[v]
	}
	return fmt.Sprintf("level(%d)", v)
}

// analyzeFiles ingests every trace file and builds the report. Runs are
// keyed by file plus the in-file run ID; a KindMeta name refines the
// label when present.
func analyzeFiles(paths []string, cfg analyzeConfig) (*Report, error) {
	runs := map[string]*RunReport{}
	for _, path := range paths {
		if err := ingestFile(path, runs); err != nil {
			return nil, err
		}
	}
	report := &Report{Config: cfg, Runs: make([]*RunReport, 0, len(runs))}
	for _, rr := range runs {
		rr.finalize(cfg)
		report.Runs = append(report.Runs, rr)
	}
	sort.Slice(report.Runs, func(i, j int) bool {
		return report.Runs[i].Label < report.Runs[j].Label
	})
	return report, nil
}

func ingestFile(path string, runs map[string]*RunReport) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base := filepath.Base(path)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return fmt.Errorf("%s:%d: %w (is this a JSONL trace? chrome traces are not analyzable)", path, lineNo, err)
		}
		key := base
		if e.Run != 0 {
			key = fmt.Sprintf("%s#run%d", base, e.Run)
		}
		rr := runs[key]
		if rr == nil {
			rr = newRunReport(key)
			runs[key] = rr
		}
		rr.ingest(&e)
	}
	return sc.Err()
}

func newRunReport(label string) *RunReport {
	return &RunReport{
		Label:     label,
		Counts:    map[string]int64{},
		pending:   map[int64]int64{},
		live:      map[int64]bool{},
		rollbacks: map[int64][]int64{},
	}
}

func (rr *RunReport) ingest(e *event) {
	rr.Events++
	rr.Counts[e.Ev]++
	if e.Cycle > rr.TotalCycles {
		rr.TotalCycles = e.Cycle
	}
	region := int64(-1)
	if e.Region != nil {
		region = *e.Region
	}
	switch e.Ev {
	case "meta":
		if e.Name != "" {
			rr.Label = rr.Label + " (" + e.Name + ")"
		}
	case "compile-enqueue":
		rr.pending[region] = e.Cycle
		if e.Depth != nil {
			rr.depths = append(rr.depths, e.Cycle, *e.Depth)
		}
	case "compile-cancel":
		delete(rr.pending, region)
	case "compile":
		if enq, ok := rr.pending[region]; ok {
			rr.latencies = append(rr.latencies, e.Cycle-enq)
			delete(rr.pending, region)
		} else {
			// Synchronous compilation installs at the enqueue instant.
			rr.latencies = append(rr.latencies, 0)
		}
		rr.live[region] = true
		rr.occSample = append(rr.occSample, e.Cycle, int64(len(rr.live)))
	case "evict", "drop":
		delete(rr.live, region)
		rr.occSample = append(rr.occSample, e.Cycle, int64(len(rr.live)))
	case "commit":
		rr.execute += e.Cost
	case "rollback":
		rr.rollback += e.Cost
		rr.rollbacks[region] = append(rr.rollbacks[region], e.Cycle)
	case "health":
		from, to := int64(-1), int64(-1)
		if e.From != nil {
			from = *e.From
		}
		// health's "to" payload is numeric (demote/promote reuse the key
		// as a tier-name string, which never reaches this branch).
		_ = json.Unmarshal(e.To, &to)
		rr.Health = append(rr.Health, HealthMove{
			Cycle: e.Cycle,
			From:  healthLevelName(from),
			To:    healthLevelName(to),
			Cause: e.Cause,
		})
	}
}

// finalize turns the accumulated state into the report fields.
func (rr *RunReport) finalize(cfg analyzeConfig) {
	rr.CompileLatency = latencyPercentiles(rr.latencies)
	interpret := rr.TotalCycles - rr.execute - rr.rollback
	if interpret < 0 {
		interpret = 0
	}
	var wait int64
	for _, l := range rr.latencies {
		wait += l
	}
	rr.Attribution = Attribution{
		Total:       rr.TotalCycles,
		Execute:     rr.execute,
		Rollback:    rr.rollback,
		Interpret:   interpret,
		CompileWait: wait,
	}
	rr.QueueDepth = timeline(rr.depths, rr.TotalCycles, cfg.Buckets, true)
	rr.CacheOccupancy = timeline(rr.occSample, rr.TotalCycles, cfg.Buckets, false)
	rr.Storms = detectStorms(rr.rollbacks, cfg.StormWindow, cfg.StormCount)
}

// latencyPercentiles summarizes the latency sample (nearest-rank on the
// sorted sample, the same convention as the fleet report).
func latencyPercentiles(lat []int64) LatencyReport {
	if len(lat) == 0 {
		return LatencyReport{}
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pick := func(q float64) int64 { return s[int(q*float64(len(s)-1))] }
	return LatencyReport{
		Count: int64(len(s)),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
		Max:   s[len(s)-1],
	}
}

// timeline folds (cycle, value) samples into fixed buckets. With max set,
// a bucket holds its largest sample (queue depth); otherwise it holds the
// last sample (occupancy is a level, not a rate), with gaps carrying the
// previous bucket's level forward.
func timeline(samples []int64, total int64, buckets int, useMax bool) Timeline {
	tl := Timeline{Buckets: make([]int64, buckets)}
	if total <= 0 {
		total = 1
	}
	seen := make([]bool, buckets)
	for i := 0; i+1 < len(samples); i += 2 {
		cycle, v := samples[i], samples[i+1]
		b := int(cycle * int64(buckets) / (total + 1))
		if b >= buckets {
			b = buckets - 1
		}
		if v > tl.Peak {
			tl.Peak = v
		}
		if useMax {
			if v > tl.Buckets[b] {
				tl.Buckets[b] = v
			}
		} else {
			tl.Buckets[b] = v
		}
		seen[b] = true
		tl.Final = v
	}
	if !useMax {
		// Carry levels across empty buckets so the timeline reads as the
		// state over time rather than zeroing between events.
		var level int64
		for b := range tl.Buckets {
			if seen[b] {
				level = tl.Buckets[b]
			} else {
				tl.Buckets[b] = level
			}
		}
	}
	return tl
}

// detectStorms slides a window over each region's rollback cycles: any
// span of stormCount rollbacks inside stormWindow cycles flags a storm,
// overlapping flagged spans merge into one interval, and Rollbacks counts
// every rollback inside the merged interval. Regions report in ascending
// order (rollback cycles arrive already sorted — the trace is ordered).
func detectStorms(byRegion map[int64][]int64, window int64, count int) []Storm {
	regions := make([]int64, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	var out []Storm
	for _, region := range regions {
		cycles := byRegion[region]
		lo := 0
		for hi := range cycles {
			for cycles[hi]-cycles[lo] > window {
				lo++
			}
			if hi-lo+1 < count {
				continue
			}
			start, end := cycles[lo], cycles[hi]
			if n := len(out); n > 0 && out[n-1].Region == region && start <= out[n-1].End {
				if end > out[n-1].End {
					out[n-1].End = end
				}
				continue
			}
			out = append(out, Storm{Region: region, Start: start, End: end})
		}
	}
	for i := range out {
		st := &out[i]
		for _, c := range byRegion[st.Region] {
			if c >= st.Start && c <= st.End {
				st.Rollbacks++
			}
		}
	}
	return out
}

// Render is the human-oriented text report.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "smarq-analyze: %d run(s)\n", len(r.Runs))
	for _, rr := range r.Runs {
		fmt.Fprintf(&sb, "\n== %s ==\n", rr.Label)
		fmt.Fprintf(&sb, "  events: %d over %d simulated cycles\n", rr.Events, rr.TotalCycles)

		keys := make([]string, 0, len(rr.Counts))
		for k := range rr.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, rr.Counts[k]))
		}
		fmt.Fprintf(&sb, "  counts: %s\n", strings.Join(parts, " "))

		a := rr.Attribution
		pct := func(n int64) float64 {
			if a.Total == 0 {
				return 0
			}
			return 100 * float64(n) / float64(a.Total)
		}
		fmt.Fprintf(&sb, "  cycles: execute %d (%.1f%%), rollback %d (%.1f%%), interpret+other %d (%.1f%%); compile-wait %d (overlapped)\n",
			a.Execute, pct(a.Execute), a.Rollback, pct(a.Rollback), a.Interpret, pct(a.Interpret), a.CompileWait)

		if l := rr.CompileLatency; l.Count > 0 {
			fmt.Fprintf(&sb, "  compile latency: %d installs, p50=%d p90=%d p99=%d max=%d cycles\n",
				l.Count, l.P50, l.P90, l.P99, l.Max)
		}
		fmt.Fprintf(&sb, "  queue depth:     %s peak=%d\n", sparkline(rr.QueueDepth.Buckets), rr.QueueDepth.Peak)
		fmt.Fprintf(&sb, "  cache occupancy: %s peak=%d final=%d\n",
			sparkline(rr.CacheOccupancy.Buckets), rr.CacheOccupancy.Peak, rr.CacheOccupancy.Final)

		for _, hm := range rr.Health {
			cause := ""
			if hm.Cause != "" {
				cause = " (" + hm.Cause + ")"
			}
			fmt.Fprintf(&sb, "  health @%d: %s -> %s%s\n", hm.Cycle, hm.From, hm.To, cause)
		}
		for _, st := range rr.Storms {
			fmt.Fprintf(&sb, "  storm: region B%d, %d rollbacks in cycles [%d, %d]\n",
				st.Region, st.Rollbacks, st.Start, st.End)
		}
	}
	return sb.String()
}

// sparkline renders a bucket series as eight-level bars.
func sparkline(buckets []int64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var max int64
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range buckets {
		i := 0
		if max > 0 {
			i = int(v * int64(len(levels)-1) / max)
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}
