package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func analyze(t *testing.T, args ...string) *Report {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(append([]string{"-json"}, args...), &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	var r Report
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	return &r
}

// TestSyntheticTrace pins the analyzer's reconstruction against a
// hand-written trace with known answers: enqueue→install latency
// matching (including a canceled enqueue and a synchronous install),
// cycle attribution, the live-region occupancy set, health-level name
// mapping, and the kind-polymorphic "to" key (tier-name string on
// demote, numeric level on health — one trace carries both).
func TestSyntheticTrace(t *testing.T) {
	path := writeTrace(t, "synth.jsonl",
		`{"cycle":0,"ev":"meta","name":"synth-cell"}`,
		`{"cycle":100,"ev":"compile-enqueue","region":1,"tier":"full","cost":50,"depth":2,"memo":0}`,
		`{"cycle":150,"ev":"compile-enqueue","region":2,"tier":"full","cost":50,"depth":3,"memo":0}`,
		`{"cycle":180,"ev":"compile-cancel","region":2,"tier":"full"}`,
		`{"cycle":300,"ev":"compile","region":1,"tier":"full","cost":10,"ops":5,"guest":5,"mem":1,"ws":0}`,
		`{"cycle":310,"ev":"dispatch","region":1,"tier":"full"}`,
		`{"cycle":350,"ev":"commit","region":1,"tier":"full","cost":40,"occupancy":4,"stores":2}`,
		`{"cycle":400,"ev":"compile","region":3,"tier":"light","cost":5,"ops":3,"guest":3,"mem":0,"ws":0}`,
		`{"cycle":500,"ev":"demote","region":3,"tier":"light","to":"conservative","cause":"chronic"}`,
		`{"cycle":600,"ev":"rollback","region":1,"tier":"full","cause":"alias","cost":30,"ops":7}`,
		`{"cycle":700,"ev":"evict","region":3,"tier":"light"}`,
		`{"cycle":800,"ev":"health","cause":"rollback-storm","from":0,"to":2}`,
		`{"cycle":1000,"ev":"commit","region":1,"tier":"full","cost":60,"occupancy":4,"stores":1}`,
	)
	r := analyze(t, path)
	if len(r.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(r.Runs))
	}
	rr := r.Runs[0]
	if rr.Label != "synth.jsonl (synth-cell)" {
		t.Errorf("label %q: meta name not folded in", rr.Label)
	}
	if rr.Events != 13 || rr.TotalCycles != 1000 {
		t.Errorf("events=%d total=%d, want 13/1000", rr.Events, rr.TotalCycles)
	}

	// Region 1's enqueue at 100 installs at 300 (latency 200); region 2's
	// enqueue is canceled; region 3 installs synchronously (latency 0).
	if l := rr.CompileLatency; l.Count != 2 || l.P50 != 0 || l.Max != 200 {
		t.Errorf("latency %+v, want count=2 p50=0 max=200", l)
	}

	a := rr.Attribution
	if a.Execute != 100 || a.Rollback != 30 || a.Interpret != 1000-100-30 || a.CompileWait != 200 {
		t.Errorf("attribution %+v", a)
	}
	if a.Total != a.Execute+a.Rollback+a.Interpret {
		t.Errorf("attribution does not sum to total: %+v", a)
	}

	// Occupancy: compiles at 300 and 400 raise the live set to 2, the
	// evict at 700 drops it to 1 — and that level carries to the end.
	if occ := rr.CacheOccupancy; occ.Peak != 2 || occ.Final != 1 ||
		occ.Buckets[len(occ.Buckets)-1] != 1 {
		t.Errorf("occupancy %+v", occ)
	}
	if qd := rr.QueueDepth; qd.Peak != 3 {
		t.Errorf("queue depth peak %d, want 3", qd.Peak)
	}

	if len(rr.Health) != 1 || rr.Health[0].From != "normal" ||
		rr.Health[0].To != "compile-off" || rr.Health[0].Cause != "rollback-storm" {
		t.Errorf("health transitions %+v", rr.Health)
	}
	if rr.Counts["commit"] != 2 || rr.Counts["demote"] != 1 {
		t.Errorf("counts %+v", rr.Counts)
	}
}

// TestStormDetection: 8 rollbacks of one region inside the window flag a
// storm, sliding extensions merge into one interval, and a region just
// under the threshold stays quiet.
func TestStormDetection(t *testing.T) {
	var lines []string
	// Region 5: 12 rollbacks, 10 cycles apart — one merged storm.
	for i := 0; i < 12; i++ {
		lines = append(lines, fmt.Sprintf(
			`{"cycle":%d,"ev":"rollback","region":5,"tier":"full","cause":"alias","cost":3,"ops":1}`,
			1000+10*i))
	}
	// Region 6: 7 rollbacks — below the threshold of 8.
	for i := 0; i < 7; i++ {
		lines = append(lines, fmt.Sprintf(
			`{"cycle":%d,"ev":"rollback","region":6,"tier":"full","cause":"alias","cost":3,"ops":1}`,
			2000+10*i))
	}
	// Region 7: two bursts of 8 separated by far more than the window —
	// two distinct storms.
	for i := 0; i < 8; i++ {
		lines = append(lines, fmt.Sprintf(
			`{"cycle":%d,"ev":"rollback","region":7,"tier":"full","cause":"alias","cost":3,"ops":1}`,
			10_000+10*i))
	}
	for i := 0; i < 8; i++ {
		lines = append(lines, fmt.Sprintf(
			`{"cycle":%d,"ev":"rollback","region":7,"tier":"full","cause":"alias","cost":3,"ops":1}`,
			100_000+10*i))
	}
	path := writeTrace(t, "storm.jsonl", lines...)
	r := analyze(t, "-storm-window", "4096", "-storm-count", "8", path)
	storms := r.Runs[0].Storms
	if len(storms) != 3 {
		t.Fatalf("got %d storms, want 3: %+v", len(storms), storms)
	}
	if s := storms[0]; s.Region != 5 || s.Start != 1000 || s.End != 1110 || s.Rollbacks != 12 {
		t.Errorf("region 5 storm %+v, want [1000,1110] with 12 rollbacks", s)
	}
	if storms[1].Region != 7 || storms[2].Region != 7 ||
		storms[1].Rollbacks != 8 || storms[2].Rollbacks != 8 {
		t.Errorf("region 7 storms %+v", storms[1:])
	}
	if storms[1].End >= storms[2].Start {
		t.Errorf("distinct bursts merged: %+v", storms[1:])
	}
}

// TestMultiRunSplit: smarq-bench artifact traces interleave cells via the
// run field; each run gets its own report, sorted by label.
func TestMultiRunSplit(t *testing.T) {
	path := writeTrace(t, "bench.jsonl",
		`{"cycle":0,"ev":"meta","run":1,"name":"swim/base"}`,
		`{"cycle":0,"ev":"meta","run":2,"name":"swim/smarq"}`,
		`{"cycle":10,"ev":"commit","run":1,"region":1,"tier":"full","cost":4,"occupancy":1,"stores":0}`,
		`{"cycle":20,"ev":"commit","run":2,"region":1,"tier":"full","cost":6,"occupancy":1,"stores":0}`,
		`{"cycle":30,"ev":"commit","run":2,"region":1,"tier":"full","cost":2,"occupancy":1,"stores":0}`,
	)
	r := analyze(t, path)
	if len(r.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(r.Runs))
	}
	if r.Runs[0].Label != "bench.jsonl#run1 (swim/base)" ||
		r.Runs[1].Label != "bench.jsonl#run2 (swim/smarq)" {
		t.Errorf("labels %q / %q", r.Runs[0].Label, r.Runs[1].Label)
	}
	if r.Runs[0].Attribution.Execute != 4 || r.Runs[1].Attribution.Execute != 8 {
		t.Errorf("per-run execute: %d / %d, want 4 / 8",
			r.Runs[0].Attribution.Execute, r.Runs[1].Attribution.Execute)
	}
}

// TestMultiFileFleet: per-tenant fleet trace files become separate runs.
func TestMultiFileFleet(t *testing.T) {
	p0 := writeTrace(t, "fleet.tenant0-swim.json",
		`{"cycle":10,"ev":"commit","region":1,"tier":"full","cost":4,"occupancy":1,"stores":0}`)
	p1 := writeTrace(t, "fleet.tenant1-equake.json",
		`{"cycle":10,"ev":"commit","region":1,"tier":"full","cost":9,"occupancy":1,"stores":0}`)
	r := analyze(t, p0, p1)
	if len(r.Runs) != 2 ||
		r.Runs[0].Label != "fleet.tenant0-swim.json" ||
		r.Runs[1].Label != "fleet.tenant1-equake.json" {
		t.Fatalf("runs: %+v", r.Runs)
	}
}

// TestDeterministicOutput: both output modes are byte-stable across
// invocations on the same trace.
func TestDeterministicOutput(t *testing.T) {
	path := writeTrace(t, "det.jsonl",
		`{"cycle":100,"ev":"compile-enqueue","region":1,"tier":"full","cost":50,"depth":1,"memo":0}`,
		`{"cycle":200,"ev":"compile","region":1,"tier":"full","cost":10,"ops":5,"guest":5,"mem":1,"ws":0}`,
		`{"cycle":300,"ev":"commit","region":1,"tier":"full","cost":40,"occupancy":1,"stores":2}`,
	)
	for _, mode := range [][]string{{"-json", path}, {path}} {
		var a, b bytes.Buffer
		if code := run(mode, &a, &bytes.Buffer{}); code != 0 {
			t.Fatalf("exit %d", code)
		}
		if code := run(mode, &b, &bytes.Buffer{}); code != 0 {
			t.Fatalf("exit %d", code)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("mode %v not byte-deterministic", mode)
		}
	}
}

// TestTextReport spot-checks the human rendering.
func TestTextReport(t *testing.T) {
	path := writeTrace(t, "text.jsonl",
		`{"cycle":100,"ev":"compile-enqueue","region":1,"tier":"full","cost":50,"depth":1,"memo":0}`,
		`{"cycle":200,"ev":"compile","region":1,"tier":"full","cost":10,"ops":5,"guest":5,"mem":1,"ws":0}`,
		`{"cycle":400,"ev":"commit","region":1,"tier":"full","cost":100,"occupancy":1,"stores":2}`,
		`{"cycle":500,"ev":"health","cause":"alias-storm","from":0,"to":1}`,
	)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{
		"== text.jsonl ==",
		"execute 100 (20.0%)",
		"compile latency: 1 installs, p50=100",
		"health @500: normal -> no-speculation (alias-storm)",
		"cache occupancy:",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, out.String())
		}
	}
}

func TestErrors(t *testing.T) {
	t.Run("no args", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run(nil, &out, &errb); code != 2 || !strings.Contains(errb.String(), "usage") {
			t.Errorf("exit %d, stderr %q", code, errb.String())
		}
	})
	t.Run("bad flag", func(t *testing.T) {
		if code := run([]string{"-nope"}, &bytes.Buffer{}, &bytes.Buffer{}); code != 2 {
			t.Errorf("exit %d, want 2", code)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		var errb bytes.Buffer
		if code := run([]string{"/does/not/exist.jsonl"}, &bytes.Buffer{}, &errb); code != 1 {
			t.Errorf("exit %d, want 1: %s", code, errb.String())
		}
	})
	t.Run("malformed line names file and line", func(t *testing.T) {
		path := writeTrace(t, "bad.jsonl",
			`{"cycle":10,"ev":"commit","region":1,"tier":"full","cost":4,"occupancy":1,"stores":0}`,
			`[1,2,3]  this is a chrome trace, not JSONL`)
		var errb bytes.Buffer
		if code := run([]string{path}, &bytes.Buffer{}, &errb); code != 1 {
			t.Errorf("exit %d, want 1", code)
		}
		if !strings.Contains(errb.String(), "bad.jsonl:2") {
			t.Errorf("stderr does not pinpoint the line: %s", errb.String())
		}
	})
}
