// Command smarq-asm assembles guest assembly to binary images and back.
//
// Usage:
//
//	smarq-asm prog.s                  # assemble to prog.bin
//	smarq-asm -o image.bin prog.s     # explicit output
//	smarq-asm -d image.bin            # disassemble to stdout
//	smarq-asm -check prog.s           # parse + validate only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smarq/internal/guest"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .bin)")
	dis := flag.Bool("d", false, "disassemble a binary image to stdout")
	check := flag.Bool("check", false, "parse and validate only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smarq-asm [-o out.bin] [-d] [-check] <file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}

	if *dis {
		prog, err := guest.DecodeProgram(data)
		if err != nil {
			fail(err)
		}
		fmt.Print(prog.String())
		return
	}

	prog, err := guest.Assemble(string(data))
	if err != nil {
		fail(err)
	}
	if *check {
		fmt.Printf("%s: %d blocks, %d instructions\n", path, len(prog.Blocks), prog.NumInsts())
		return
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(strings.TrimSuffix(path, ".s"), ".asm") + ".bin"
	}
	if err := os.WriteFile(target, guest.EncodeProgram(prog), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d instructions -> %s\n", path, prog.NumInsts(), target)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "smarq-asm:", err)
	os.Exit(1)
}
