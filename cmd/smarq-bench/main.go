// Command smarq-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	smarq-bench                       # everything
//	smarq-bench -only fig15           # one artifact: table1 table2 fig14..fig19 scaling
//	smarq-bench -only table1,fig15    # an artifact subset
//	smarq-bench -bench ammp           # restrict the suite
//	smarq-bench -parallel 8           # bound the worker pool (0 = GOMAXPROCS)
//	smarq-bench -v                    # per-run summaries
//	smarq-bench -trace all.trace.json -trace-format chrome
//	smarq-bench -metrics all.metrics.json
//	smarq-bench -tenants 8 -tenant-mix swim,equake -compile-workers 4
//	smarq-bench -tenants 4 -fleet-verify    # diff every tenant vs its solo run
//
// Benchmark×configuration cells fan out over a bounded worker pool; the
// artifacts themselves are rendered in a fixed order from the shared
// result cache, so stdout is byte-identical at every parallelism level.
//
// -trace streams every cell's cycle-stamped events into one file: each
// cell gets its own run ID (the trace "process", labelled bench/config),
// so a Perfetto view shows all runs side by side. Batches from concurrent
// cells interleave in completion order — pass -parallel 1 when the trace
// bytes themselves must be deterministic. -metrics aggregates one shared
// registry across all cells.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"smarq/internal/dynopt"
	"smarq/internal/harness"
	"smarq/internal/health"
	"smarq/internal/profiledump"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

func main() {
	only := flag.String("only", "", "comma-separated artifact subset (table1, table2, fig14, fig15, fig16, fig17, fig18, fig19, scaling, ablations, unroll, efficeon, breakdown, energy)")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: full suite)")
	verbose := flag.Bool("v", false, "print a summary line per completed run")
	asJSON := flag.Bool("json", false, "emit all results as one JSON document")
	scale := flag.Int64("scale", 1, "multiply every benchmark's main loop count (longer runs amortize translation cost)")
	parallel := flag.Int("parallel", 0, "max concurrent benchmark runs (0 = GOMAXPROCS)")
	compileWorkers := flag.Int("compile-workers", 0, "background compile workers per run (0 = synchronous instant install; any N >= 1 is simulation-identical)")
	compileMemoize := flag.Bool("compile-memoize", false, "memoize compiled regions by content hash")
	healthOn := flag.Bool("health", false, "arm the graceful-degradation health controller in every run (default tuning)")
	traceFile := flag.String("trace", "", "write a cycle-stamped event trace of every run to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace encoding: jsonl or chrome (Perfetto-loadable)")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot aggregated across all runs")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the harness run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tenants := flag.Int("tenants", 0, "fleet mode: run N concurrent tenant Systems over one shared compile pool and code cache (0 = classic artifact mode)")
	tenantMix := flag.String("tenant-mix", "swim", "fleet mode: comma-separated benchmarks assigned to tenants round-robin")
	fleetConfig := flag.String("fleet-config", "smarq64", "fleet mode: dynopt configuration every tenant runs under")
	fleetVerify := flag.Bool("fleet-verify", false, "fleet mode: diff every tenant's results against its solo run; exit nonzero on divergence")
	cacheShards := flag.Int("cache-shards", 0, "fleet mode: shared code cache shard count (0 = default)")
	cacheEntries := flag.Int64("cache-entries", 0, "fleet mode: shared code cache global entry budget (0 = unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 0, "fleet mode: shared code cache global byte budget (0 = unbounded)")
	listen := flag.String("listen", "", "fleet mode: serve the observability endpoints (/metrics, /healthz, /debug/*) at this address during the run")
	flag.Parse()

	stopCPU, err := profiledump.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-bench:", err)
		os.Exit(1)
	}

	if *tenants > 0 {
		runFleetMode(fleetOpts{
			config: harness.FleetConfig{
				Tenants:         *tenants,
				Mix:             splitList(*tenantMix),
				Config:          *fleetConfig,
				CompileWorkers:  *compileWorkers,
				CacheShards:     *cacheShards,
				CacheMaxEntries: *cacheEntries,
				CacheMaxBytes:   *cacheBytes,
				Scale:           *scale,
			},
			verify:      *fleetVerify,
			asJSON:      *asJSON,
			metricsFile: *metricsFile,
			traceFile:   *traceFile,
			traceFormat: *traceFormat,
			listen:      *listen,
		})
		stopCPU()
		if err := profiledump.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
		return
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	suite := workload.SuiteScaled(*scale)
	if *benches != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*benches, ",") {
			bm, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "smarq-bench: unknown benchmark %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, bm)
		}
	}

	r := harness.NewRunner(suite)
	r.Parallelism = *parallel
	if *compileWorkers > 0 || *compileMemoize || *healthOn {
		r.ConfigHook = func(cfg dynopt.Config) dynopt.Config {
			cfg.Compile.Workers = *compileWorkers
			cfg.Compile.Memoize = *compileMemoize
			if *healthOn {
				cfg.Health = health.DefaultConfig()
			}
			return cfg
		}
	}
	if *verbose {
		r.Verbose = telemetry.NewLineSink(os.Stderr)
	}

	// Shared telemetry across all cells: one sink (serialized), one
	// registry; each cell's tracer gets a distinct run ID and a meta
	// event naming it bench/config.
	var traceSink *telemetry.SyncSink
	var traceOut *os.File
	var registry *telemetry.Registry
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
		traceOut = f
		sink, err := telemetry.NewFormatSink(f, *traceFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(2)
		}
		traceSink = telemetry.NewSyncSink(sink)
	}
	if *metricsFile != "" {
		registry = telemetry.NewRegistry()
	}
	if traceSink != nil || registry != nil {
		var runID atomic.Int32
		r.Telemetry = func(bench, config string) *telemetry.Telemetry {
			tel := &telemetry.Telemetry{Metrics: registry}
			if traceSink != nil {
				tr := telemetry.NewTracer(0, traceSink)
				tr.Run = runID.Add(1)
				tr.Emit(telemetry.Event{
					Kind: telemetry.KindMeta, Region: -1, Tier: -1, To: -1,
					Name: bench + "/" + config,
				})
				tel.Events = tr
			}
			return tel
		}
	}

	start := time.Now()
	artifacts := 0
	results := map[string]interface{}{}
	emit := func(name string, render func() (string, error)) {
		if len(selected) > 0 && !selected[name] {
			return
		}
		out, err := render()
		if err != nil {
			fmt.Fprintf(os.Stderr, "smarq-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		artifacts++
		if !*asJSON {
			fmt.Println(out)
		}
	}
	collect := func(name string, data interface{}) {
		if *asJSON {
			results[name] = data
		}
	}
	_ = collect

	emit("table1", func() (string, error) {
		d, err := harness.Table1()
		if err != nil {
			return "", err
		}
		collect("table1", d)
		return d.Render(), nil
	})
	emit("table2", func() (string, error) {
		d := harness.Table2()
		collect("table2", d)
		return d.Render(), nil
	})
	emit("fig14", func() (string, error) {
		d, err := r.Figure14()
		if err != nil {
			return "", err
		}
		collect("fig14", d)
		return d.Render(), nil
	})
	emit("fig15", func() (string, error) {
		d, err := r.Figure15()
		if err != nil {
			return "", err
		}
		collect("fig15", d)
		return d.Render(), nil
	})
	emit("fig16", func() (string, error) {
		d, err := r.Figure16()
		if err != nil {
			return "", err
		}
		collect("fig16", d)
		return d.Render(), nil
	})
	emit("fig17", func() (string, error) {
		d, err := r.Figure17()
		if err != nil {
			return "", err
		}
		collect("fig17", d)
		return d.Render(), nil
	})
	emit("fig18", func() (string, error) {
		d, err := r.Figure18()
		if err != nil {
			return "", err
		}
		collect("fig18", d)
		return d.Render(), nil
	})
	emit("fig19", func() (string, error) {
		d, err := r.Figure19()
		if err != nil {
			return "", err
		}
		collect("fig19", d)
		return d.Render(), nil
	})
	emit("scaling", func() (string, error) {
		d, err := r.ScalingSweep(nil)
		if err != nil {
			return "", err
		}
		collect("scaling", d)
		return d.Render(), nil
	})
	emit("ablations", func() (string, error) {
		d, err := r.Ablations()
		if err != nil {
			return "", err
		}
		collect("ablations", d)
		return d.Render(), nil
	})
	emit("unroll", func() (string, error) {
		d, err := r.UnrollSweep(nil)
		if err != nil {
			return "", err
		}
		collect("unroll", d)
		return d.Render(), nil
	})
	emit("efficeon", func() (string, error) {
		d, err := r.Efficeon()
		if err != nil {
			return "", err
		}
		collect("efficeon", d)
		return d.Render(), nil
	})

	emit("breakdown", func() (string, error) {
		d, err := r.Breakdown()
		if err != nil {
			return "", err
		}
		collect("breakdown", d)
		return d.Render(), nil
	})
	emit("energy", func() (string, error) {
		d, err := r.Energy()
		if err != nil {
			return "", err
		}
		collect("energy", d)
		return d.Render(), nil
	})

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
	}

	stopCPU()
	if err := profiledump.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "smarq-bench:", err)
		os.Exit(1)
	}

	if traceSink != nil {
		// Per-cell tracers only Flush (the runner does it as each run
		// completes); the shared sink is closed exactly once here.
		err := traceSink.Close()
		if cerr := traceOut.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench: trace:", err)
			os.Exit(1)
		}
	}
	if registry != nil {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = registry.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "# smarq-bench: %d artifact(s) in %s (parallelism=%d)\n",
		artifacts, time.Since(start).Round(time.Millisecond), workers)
}

// splitList splits a comma-separated flag value, trimming whitespace.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// fleetOpts bundles the fleet-mode CLI surface.
type fleetOpts struct {
	config      harness.FleetConfig
	verify      bool
	asJSON      bool
	metricsFile string
	traceFile   string
	traceFormat string
	listen      string
}

// tenantTracePath derives one tenant's trace file name from the -trace
// base path: base.trace.json + tenant 2 running equake becomes
// base.trace.tenant2-equake.json.
func tenantTracePath(base string, tenant int, bench string) string {
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s.tenant%d-%s%s", strings.TrimSuffix(base, ext), tenant, bench, ext)
}

// runFleetMode is the -tenants path: one concurrent multi-tenant run over
// the shared compile pool and code cache, reported as a text table (or
// JSON), optionally followed by the per-tenant solo-determinism diff.
// -trace writes one JSONL/Chrome file per tenant (the fleet determinism
// contract makes each byte-identical to the tenant's solo trace), and
// -listen serves the live observability endpoints for the run's duration.
func runFleetMode(o fleetOpts) {
	var registry *telemetry.Registry
	if o.metricsFile != "" {
		registry = telemetry.NewRegistry()
		o.config.Metrics = registry
	}
	o.config.Listen = o.listen
	if o.listen != "" {
		o.config.ObsReady = func(addr string) {
			fmt.Fprintf(os.Stderr, "# smarq-bench: serving observability endpoints on http://%s\n", addr)
		}
	}
	var traceCloses []func() error
	if o.traceFile != "" {
		// The harness calls the Telemetry hook sequentially before any
		// tenant starts, so file creation order is deterministic.
		o.config.Telemetry = func(tenant int, bench string) *telemetry.Telemetry {
			path := tenantTracePath(o.traceFile, tenant, bench)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smarq-bench:", err)
				os.Exit(1)
			}
			sink, err := telemetry.NewFormatSink(f, o.traceFormat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "smarq-bench:", err)
				os.Exit(2)
			}
			traceCloses = append(traceCloses, sink.Close, f.Close)
			return &telemetry.Telemetry{Events: telemetry.NewTracer(0, sink)}
		}
	}
	start := time.Now()
	res, err := harness.RunFleet(o.config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-bench:", err)
		os.Exit(1)
	}
	// RunFleet flushed each tenant's tracer as it finished; the sinks and
	// files are closed here, after every tenant is done.
	for _, closeFn := range traceCloses {
		if err := closeFn(); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench: trace:", err)
			os.Exit(1)
		}
	}
	if o.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
	} else {
		fmt.Println(res.Render())
	}
	if registry != nil {
		f, err := os.Create(o.metricsFile)
		if err == nil {
			err = registry.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench:", err)
			os.Exit(1)
		}
	}
	if o.verify {
		if err := harness.VerifyFleet(o.config, res); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-bench: fleet-verify:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "# fleet-verify: every tenant byte-identical to its solo run")
	}
	fmt.Fprintf(os.Stderr, "# smarq-bench: fleet of %d tenants (%d workers) in %s\n",
		len(res.Tenants), res.Workers, time.Since(start).Round(time.Millisecond))
}
