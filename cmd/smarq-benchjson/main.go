// Command smarq-benchjson converts `go test -bench` output into the JSON
// document the perf-regression gate compares with smarq-golden.
//
// Usage:
//
//	go test -bench 'Execute' -benchmem -benchtime 2000x . | smarq-benchjson > BENCH_exec.json
//
// Each benchmark line becomes one object keyed by the benchmark name with
// the "Benchmark" prefix and the -GOMAXPROCS suffix stripped. The standard
// measurements map to ns_per_op / b_per_op / allocs_per_op; custom
// b.ReportMetric units keep their own names. Lines that are not benchmark
// results (the goos/pkg header, PASS, ok) pass through to stderr so a
// piped run stays debuggable.
//
// -merge folds the top-level fields of another JSON object into the
// output — used to carry the recorded pre-change baseline alongside the
// fresh measurements in BENCH_exec.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches e.g.
//
//	BenchmarkExecute/ordered64-8   2000   173.0 ns/op   1 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+)\s+(\d+)\s+(.+)$`)

// gomaxprocsSuffix strips the trailing -N the testing package appends.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	mergePath := flag.String("merge", "", "JSON file whose top-level fields are folded into the output")
	flag.Parse()

	benches := make(map[string]map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		metrics, err := parseMetrics(m[3])
		if err != nil {
			fmt.Fprintf(os.Stderr, "smarq-benchjson: %q: %v\n", line, err)
			os.Exit(1)
		}
		iters, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smarq-benchjson: %q: %v\n", line, err)
			os.Exit(1)
		}
		metrics["iterations"] = iters
		benches[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "smarq-benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "smarq-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	doc := map[string]interface{}{}
	if *mergePath != "" {
		raw, err := os.ReadFile(*mergePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-benchjson:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "smarq-benchjson: %s: %v\n", *mergePath, err)
			os.Exit(1)
		}
	}
	doc["benchmarks"] = benches
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseMetrics splits "173.0 ns/op   1 B/op   0 allocs/op" into named
// values.
func parseMetrics(s string) (map[string]float64, error) {
	fields := strings.Fields(s)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit field count in %q", s)
	}
	metrics := make(map[string]float64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", fields[i], err)
		}
		metrics[metricName(fields[i+1])] = v
	}
	return metrics, nil
}

// metricName maps a unit to a stable JSON key.
func metricName(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "b_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "MB/s":
		return "mb_per_s"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}
