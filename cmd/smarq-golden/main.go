// Command smarq-golden compares a JSON document against a checked-in
// golden file for the CI bench-smoke gate. Numbers match within a
// relative tolerance (the simulated statistics are deterministic, but
// float formatting may vary across platforms); strings, booleans and
// structure must match exactly.
//
// Usage:
//
//	smarq-golden -golden testdata/bench-smoke.golden.json -got out.json
//	smarq-bench -json ... | smarq-golden -golden golden.json -got -
//
// Fields whose JSON path matches -exact compare exactly even when a
// tolerance is set — used by the bench gate, where timing fields get a
// generous rtol but allocation counts must match to the byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
)

func main() {
	goldenPath := flag.String("golden", "", "path to the golden JSON file")
	gotPath := flag.String("got", "-", "path to the JSON to check ('-' = stdin)")
	rtol := flag.Float64("rtol", 1e-9, "relative tolerance for numeric fields")
	atol := flag.Float64("atol", 1e-12, "absolute tolerance for numeric fields")
	exact := flag.String("exact", "", "regexp of JSON paths that must match exactly (no tolerance)")
	flag.Parse()
	if *goldenPath == "" {
		fmt.Fprintln(os.Stderr, "smarq-golden: -golden is required")
		os.Exit(2)
	}

	golden, err := decode(*goldenPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-golden:", err)
		os.Exit(2)
	}
	got, err := decode(*gotPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-golden:", err)
		os.Exit(2)
	}

	cfg := cmpConfig{rtol: *rtol, atol: *atol}
	if *exact != "" {
		re, err := regexp.Compile(*exact)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-golden: -exact:", err)
			os.Exit(2)
		}
		cfg.exact = re
	}
	diffs := compare("$", golden, got, cfg)
	if len(diffs) > 0 {
		fmt.Fprintf(os.Stderr, "smarq-golden: %d difference(s) against %s:\n", len(diffs), *goldenPath)
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "  ", d)
		}
		os.Exit(1)
	}
	fmt.Printf("smarq-golden: %s matches golden (rtol=%g)\n", *gotPath, *rtol)
}

func decode(path string) (interface{}, error) {
	var rd io.Reader
	if path == "-" {
		rd = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rd = f
	}
	dec := json.NewDecoder(rd)
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// cmpConfig carries the numeric tolerances and the set of paths exempted
// from them.
type cmpConfig struct {
	rtol, atol float64
	exact      *regexp.Regexp // paths matching this compare exactly
}

// compare walks both JSON trees and collects human-readable differences.
// Having a full diff (rather than failing fast) makes CI logs actionable.
func compare(path string, golden, got interface{}, cfg cmpConfig) []string {
	switch g := golden.(type) {
	case map[string]interface{}:
		o, ok := got.(map[string]interface{})
		if !ok {
			return []string{fmt.Sprintf("%s: golden is an object, got %s", path, typeName(got))}
		}
		var diffs []string
		for _, k := range sortedUnionKeys(g, o) {
			gv, inG := g[k]
			ov, inO := o[k]
			switch {
			case !inO:
				diffs = append(diffs, fmt.Sprintf("%s.%s: missing from output", path, k))
			case !inG:
				diffs = append(diffs, fmt.Sprintf("%s.%s: unexpected field (not in golden)", path, k))
			default:
				diffs = append(diffs, compare(path+"."+k, gv, ov, cfg)...)
			}
		}
		return diffs
	case []interface{}:
		o, ok := got.([]interface{})
		if !ok {
			return []string{fmt.Sprintf("%s: golden is an array, got %s", path, typeName(got))}
		}
		if len(g) != len(o) {
			return []string{fmt.Sprintf("%s: length %d, golden has %d", path, len(o), len(g))}
		}
		var diffs []string
		for i := range g {
			diffs = append(diffs, compare(fmt.Sprintf("%s[%d]", path, i), g[i], o[i], cfg)...)
		}
		return diffs
	case json.Number:
		o, ok := got.(json.Number)
		if !ok {
			return []string{fmt.Sprintf("%s: golden is a number, got %s", path, typeName(got))}
		}
		gf, err1 := g.Float64()
		of, err2 := o.Float64()
		if err1 != nil || err2 != nil {
			if g.String() != o.String() {
				return []string{fmt.Sprintf("%s: %s, golden %s", path, o, g)}
			}
			return nil
		}
		if cfg.exact != nil && cfg.exact.MatchString(path) {
			if gf != of {
				return []string{fmt.Sprintf("%s: %v, golden %v (exact match required)", path, of, gf)}
			}
			return nil
		}
		if !closeEnough(gf, of, cfg.rtol, cfg.atol) {
			return []string{fmt.Sprintf("%s: %v, golden %v (rtol=%g)", path, of, gf, cfg.rtol)}
		}
		return nil
	default:
		if golden != got {
			return []string{fmt.Sprintf("%s: %v, golden %v", path, got, golden)}
		}
		return nil
	}
}

func closeEnough(a, b, rtol, atol float64) bool {
	if a == b {
		return true
	}
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= atol+rtol*math.Max(math.Abs(a), math.Abs(b))
}

func typeName(v interface{}) string {
	switch v.(type) {
	case map[string]interface{}:
		return "object"
	case []interface{}:
		return "array"
	case json.Number:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}

func sortedUnionKeys(a, b map[string]interface{}) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
