package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) interface{} {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompareIdentical(t *testing.T) {
	doc := `{"a": 1.5, "b": ["x", true, null], "c": {"d": 2}}`
	if diffs := compare("$", parse(t, doc), parse(t, doc), cmpConfig{rtol: 1e-9, atol: 1e-12}); len(diffs) != 0 {
		t.Errorf("identical documents differ: %v", diffs)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	golden := parse(t, `{"speedup": 1.362000000}`)
	got := parse(t, `{"speedup": 1.362000001}`)
	if diffs := compare("$", golden, got, cmpConfig{rtol: 1e-6}); len(diffs) != 0 {
		t.Errorf("within-tolerance numbers differ: %v", diffs)
	}
	if diffs := compare("$", golden, got, cmpConfig{rtol: 1e-12}); len(diffs) == 0 {
		t.Error("out-of-tolerance numbers accepted")
	}
}

func TestCompareStructure(t *testing.T) {
	cases := []struct {
		name, golden, got string
		wantDiffs         int
	}{
		{"missing field", `{"a": 1, "b": 2}`, `{"a": 1}`, 1},
		{"extra field", `{"a": 1}`, `{"a": 1, "b": 2}`, 1},
		{"type change", `{"a": 1}`, `{"a": "1"}`, 1},
		{"array length", `[1, 2, 3]`, `[1, 2]`, 1},
		{"array element", `[1, 2, 3]`, `[1, 9, 3]`, 1},
		{"string change", `{"a": "x"}`, `{"a": "y"}`, 1},
		{"nested", `{"a": {"b": [1]}}`, `{"a": {"b": [2]}}`, 1},
		{"multiple", `{"a": 1, "b": 2}`, `{"a": 9, "b": 8}`, 2},
	}
	for _, tc := range cases {
		diffs := compare("$", parse(t, tc.golden), parse(t, tc.got), cmpConfig{rtol: 1e-9})
		if len(diffs) != tc.wantDiffs {
			t.Errorf("%s: got %d diffs %v, want %d", tc.name, len(diffs), diffs, tc.wantDiffs)
		}
	}
}

func TestCompareBigIntsExact(t *testing.T) {
	// Cycle counts are int64s that can exceed float64 precision; equal
	// strings must pass regardless.
	doc := `{"cycles": 9223372036854775807}`
	if diffs := compare("$", parse(t, doc), parse(t, doc), cmpConfig{}); len(diffs) != 0 {
		t.Errorf("identical big ints differ: %v", diffs)
	}
}

func TestCompareExactPaths(t *testing.T) {
	golden := parse(t, `{"bench": {"allocs_per_op": 0, "ns_per_op": 100}}`)
	got := parse(t, `{"bench": {"allocs_per_op": 1, "ns_per_op": 180}}`)
	loose := cmpConfig{rtol: 9, atol: 1.5}
	if diffs := compare("$", golden, got, loose); len(diffs) != 0 {
		t.Errorf("generous tolerance rejected: %v", diffs)
	}
	strict := loose
	strict.exact = regexp.MustCompile(`allocs_per_op$`)
	diffs := compare("$", golden, got, strict)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "allocs_per_op") {
		t.Errorf("exact path not enforced: %v", diffs)
	}
	// The matching path passes when the values really are equal.
	if diffs := compare("$", golden, parse(t, `{"bench": {"allocs_per_op": 0, "ns_per_op": 250}}`), strict); len(diffs) != 0 {
		t.Errorf("equal exact values rejected: %v", diffs)
	}
}

func TestCloseEnough(t *testing.T) {
	if !closeEnough(0, 0, 0, 0) {
		t.Error("0 != 0")
	}
	if !closeEnough(100, 100.00000001, 1e-9, 0) {
		t.Error("relative tolerance not applied")
	}
	if closeEnough(100, 101, 1e-9, 0) {
		t.Error("1% error accepted at rtol 1e-9")
	}
	if !closeEnough(0, 1e-13, 0, 1e-12) {
		t.Error("absolute tolerance not applied")
	}
}
