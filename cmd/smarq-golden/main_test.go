package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) interface{} {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(s))
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCompareIdentical(t *testing.T) {
	doc := `{"a": 1.5, "b": ["x", true, null], "c": {"d": 2}}`
	if diffs := compare("$", parse(t, doc), parse(t, doc), 1e-9, 1e-12); len(diffs) != 0 {
		t.Errorf("identical documents differ: %v", diffs)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	golden := parse(t, `{"speedup": 1.362000000}`)
	got := parse(t, `{"speedup": 1.362000001}`)
	if diffs := compare("$", golden, got, 1e-6, 0); len(diffs) != 0 {
		t.Errorf("within-tolerance numbers differ: %v", diffs)
	}
	if diffs := compare("$", golden, got, 1e-12, 0); len(diffs) == 0 {
		t.Error("out-of-tolerance numbers accepted")
	}
}

func TestCompareStructure(t *testing.T) {
	cases := []struct {
		name, golden, got string
		wantDiffs         int
	}{
		{"missing field", `{"a": 1, "b": 2}`, `{"a": 1}`, 1},
		{"extra field", `{"a": 1}`, `{"a": 1, "b": 2}`, 1},
		{"type change", `{"a": 1}`, `{"a": "1"}`, 1},
		{"array length", `[1, 2, 3]`, `[1, 2]`, 1},
		{"array element", `[1, 2, 3]`, `[1, 9, 3]`, 1},
		{"string change", `{"a": "x"}`, `{"a": "y"}`, 1},
		{"nested", `{"a": {"b": [1]}}`, `{"a": {"b": [2]}}`, 1},
		{"multiple", `{"a": 1, "b": 2}`, `{"a": 9, "b": 8}`, 2},
	}
	for _, tc := range cases {
		diffs := compare("$", parse(t, tc.golden), parse(t, tc.got), 1e-9, 0)
		if len(diffs) != tc.wantDiffs {
			t.Errorf("%s: got %d diffs %v, want %d", tc.name, len(diffs), diffs, tc.wantDiffs)
		}
	}
}

func TestCompareBigIntsExact(t *testing.T) {
	// Cycle counts are int64s that can exceed float64 precision; equal
	// strings must pass regardless.
	doc := `{"cycles": 9223372036854775807}`
	if diffs := compare("$", parse(t, doc), parse(t, doc), 0, 0); len(diffs) != 0 {
		t.Errorf("identical big ints differ: %v", diffs)
	}
}

func TestCloseEnough(t *testing.T) {
	if !closeEnough(0, 0, 0, 0) {
		t.Error("0 != 0")
	}
	if !closeEnough(100, 100.00000001, 1e-9, 0) {
		t.Error("relative tolerance not applied")
	}
	if closeEnough(100, 101, 1e-9, 0) {
		t.Error("1% error accepted at rtol 1e-9")
	}
	if !closeEnough(0, 1e-13, 0, 1e-12) {
		t.Error("absolute tolerance not applied")
	}
}
