// Command smarq-run executes one benchmark under one alias-hardware
// configuration and prints the run statistics.
//
// Usage:
//
//	smarq-run -bench ammp -config smarq64
//	smarq-run -bench mesa -config nostorereorder -regions
//	smarq-run -bench equake -chaos-seed 7 -check-invariants
//	smarq-run -bench swim -chaos-seed 7 -chaos-host -health
//	smarq-run -bench swim -trace swim.trace.json -trace-format chrome
//	smarq-run -bench swim -metrics swim.metrics.json
//	smarq-run -list
//
// -trace streams cycle-stamped runtime events to a file (jsonl for
// diffable line-oriented output, chrome for a Perfetto-loadable
// timeline); -metrics snapshots the aggregate counters and histograms to
// JSON after the run; -listen serves the observability endpoints
// (/metrics in Prometheus or JSON form, /healthz, /debug/cache,
// /debug/tenants, /debug/pprof) over HTTP for the duration of the run —
// useful for long chaos soaks. -chaos-host extends the chaos mix with host fault
// classes (compile-worker panics, hangs, poisoned results, memo
// pressure); -health arms the graceful-degradation controller. See
// DESIGN.md ("Telemetry"; "Host fault domains and the health
// controller").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"smarq/internal/dynopt"
	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/harness"
	"smarq/internal/health"
	"smarq/internal/obs"
	"smarq/internal/profiledump"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with a testable surface: parse args, execute, print to the
// given writers, and return the process exit code (0 ok, 1 runtime
// failure — including a rollback invariant violation — 2 usage error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smarq-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "swim", "benchmark name")
	file := fs.String("file", "", "run a guest assembly (.s) or binary (.bin) file instead of a benchmark")
	config := fs.String("config", "smarq64", "configuration: smarq<N>, alat, efficeon, nohw, nostorereorder")
	regions := fs.Bool("regions", false, "print per-region statistics")
	events := fs.Bool("events", false, "print runtime events as text lines (compiles, exceptions, drops)")
	traceFile := fs.String("trace", "", "write a cycle-stamped event trace to this file")
	traceFormat := fs.String("trace-format", "jsonl", "trace encoding: jsonl or chrome (Perfetto-loadable)")
	metricsFile := fs.String("metrics", "", "write a JSON metrics snapshot (counters + histograms) to this file")
	listen := fs.String("listen", "", "serve the observability endpoints (/metrics, /healthz, /debug/*) at this address (e.g. :8080)")
	list := fs.Bool("list", false, "list benchmarks and exit")
	memSize := fs.Int("mem", 1<<20, "guest memory size for -file runs")
	maxInsts := fs.Uint64("maxinsts", 0, "instruction budget (0 = benchmark default; -file runs default to 100M)")
	chaosSeed := fs.Int64("chaos-seed", 0, "enable deterministic fault injection with this seed (default chaos mix)")
	aliasRate := fs.Float64("chaos-alias-rate", -1, "override the spurious-alias injection rate (with -chaos-seed)")
	guardRate := fs.Float64("chaos-guard-rate", -1, "override the guard-fail injection rate (with -chaos-seed)")
	compileRate := fs.Float64("chaos-compile-rate", -1, "override the compile-fail injection rate (with -chaos-seed)")
	corruptRate := fs.Float64("chaos-corrupt-rate", -1, "override the post-rollback corruption rate (with -chaos-seed)")
	chaosHost := fs.Bool("chaos-host", false, "extend the chaos mix with the default host fault rates (with -chaos-seed)")
	panicRate := fs.Float64("chaos-host-panic-rate", -1, "override the compile-worker panic rate (with -chaos-seed)")
	hangRate := fs.Float64("chaos-host-hang-rate", -1, "override the compile-hang (watchdog overrun) rate (with -chaos-seed)")
	poisonRate := fs.Float64("chaos-host-poison-rate", -1, "override the poisoned-compile-result rate (with -chaos-seed)")
	memoRate := fs.Float64("chaos-host-memo-rate", -1, "override the memo-pressure eviction rate (with -chaos-seed)")
	healthOn := fs.Bool("health", false, "arm the graceful-degradation health controller (default tuning)")
	healthWindow := fs.Int("health-window", 0, "override the health controller's observation window (with -health)")
	healthDemote := fs.Int("health-demote", 0, "override the health controller's demotion score threshold (with -health)")
	healthPromote := fs.Int("health-promote", 0, "override the clean-run length one promotion requires (with -health)")
	checkInv := fs.Bool("check-invariants", false, "verify every rollback restores the exact checkpoint (slow)")
	compileWorkers := fs.Int("compile-workers", 0, "background compile workers (0 = synchronous instant install; any N >= 1 is simulation-identical)")
	compileMemoize := fs.Bool("compile-memoize", false, "memoize compiled regions by content hash")
	memoCap := fs.Int("compile-memo-cap", 0, "memo table capacity in entries (0 = default bound, negative = unbounded)")
	watchdog := fs.Int("compile-watchdog", 0, "watchdog deadline as a multiple of the modelled compile cost (0 = default)")
	compileCPI := fs.Int("compile-cycles-per-inst", -1, "override the compile-latency model's cycles per guest instruction (-1 = machine default)")
	compileCPC := fs.Int("compile-cycles-per-check", -1, "override the compile-latency model's cycles per guest memory op (-1 = machine default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, bm := range workload.Suite() {
			fmt.Fprintf(stdout, "%-10s %s\n", bm.Name, bm.Description)
		}
		return 0
	}

	var bm workload.Benchmark
	if *file != "" {
		prog, err := loadProgram(*file)
		if err != nil {
			fmt.Fprintln(stderr, "smarq-run:", err)
			return 1
		}
		bm = workload.Benchmark{
			Name:        *file,
			Description: "user program",
			MemSize:     *memSize,
			MaxInsts:    100_000_000,
			Build:       func() *guest.Program { return prog },
		}
	} else {
		var ok bool
		bm, ok = workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(stderr, "smarq-run: unknown benchmark %q (try -list)\n", *bench)
			return 2
		}
	}
	if *maxInsts != 0 {
		bm.MaxInsts = *maxInsts
	}
	cfg, err := harness.ParseConfig(*config)
	if err != nil {
		fmt.Fprintln(stderr, "smarq-run:", err)
		return 2
	}
	chaos := *chaosSeed != 0
	if chaos {
		if *chaosHost {
			cfg.Chaos = faultinject.DefaultHost(*chaosSeed)
		} else {
			cfg.Chaos = faultinject.Default(*chaosSeed)
		}
		for _, o := range []struct {
			v   float64
			dst *float64
		}{
			{*aliasRate, &cfg.Chaos.SpuriousAliasRate},
			{*guardRate, &cfg.Chaos.GuardFailRate},
			{*compileRate, &cfg.Chaos.CompileFailRate},
			{*corruptRate, &cfg.Chaos.CorruptRate},
			{*panicRate, &cfg.Chaos.WorkerPanicRate},
			{*hangRate, &cfg.Chaos.CompileHangRate},
			{*poisonRate, &cfg.Chaos.PoisonResultRate},
			{*memoRate, &cfg.Chaos.MemoPressureRate},
		} {
			if o.v >= 0 {
				*o.dst = o.v
			}
		}
	}
	if *healthOn {
		cfg.Health = health.DefaultConfig()
		if *healthWindow > 0 {
			cfg.Health.Window = *healthWindow
		}
		if *healthDemote > 0 {
			cfg.Health.DemoteThreshold = *healthDemote
		}
		if *healthPromote > 0 {
			cfg.Health.PromoteAfter = *healthPromote
		}
	}
	cfg.CheckInvariants = *checkInv
	cfg.Compile.Workers = *compileWorkers
	cfg.Compile.Memoize = *compileMemoize
	cfg.Compile.MemoCapacity = *memoCap
	cfg.Compile.WatchdogFactor = *watchdog
	if *compileCPI >= 0 {
		cfg.Machine.CompileCyclesPerInst = *compileCPI
	}
	if *compileCPC >= 0 {
		cfg.Machine.CompileCyclesPerCheck = *compileCPC
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "smarq-run:", err)
		return 2
	}
	if *events {
		cfg.Trace = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, "trace: "+format+"\n", args...)
		}
	}

	// Telemetry wiring: each enabled surface is independent; both off
	// leaves cfg.Telemetry nil and the whole layer a dead nil check.
	tel := &telemetry.Telemetry{}
	var tracer *telemetry.Tracer
	var traceOut *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "smarq-run:", err)
			return 1
		}
		traceOut = f
		sink, err := telemetry.NewFormatSink(f, *traceFormat)
		if err != nil {
			fmt.Fprintln(stderr, "smarq-run:", err)
			return 2
		}
		tracer = telemetry.NewTracer(0, sink)
		tel.Events = tracer
	}
	if *metricsFile != "" || *listen != "" {
		tel.Metrics = telemetry.NewRegistry()
	}
	if tel.Events != nil || tel.Metrics != nil {
		cfg.Telemetry = tel
	}
	if *listen != "" {
		// The obs server binds synchronously (a bad address fails the run
		// here, not in a goroutine's log line) and is shut down after the
		// run so the process exits cleanly; ":0" binds an ephemeral port.
		server := obs.NewServer(obs.Options{
			Fleet: tel.Metrics,
			Tenants: func() []obs.TenantView {
				return []obs.TenantView{{ID: 0, Bench: bm.Name, Metrics: tel.Metrics}}
			},
		})
		if err := server.Start(*listen); err != nil {
			fmt.Fprintln(stderr, "smarq-run:", err)
			return 1
		}
		fmt.Fprintf(stderr, "smarq-run: serving observability endpoints on http://%s\n", server.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = server.Shutdown(ctx)
		}()
	}

	stopCPU, err := profiledump.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(stderr, "smarq-run:", err)
		return 1
	}
	sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
	halted, err := sys.Run(bm.MaxInsts)
	stopCPU()
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("trace: %w", cerr)
	}
	if traceOut != nil {
		if cerr := traceOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "smarq-run:", err)
		return 1
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = tel.Metrics.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(stderr, "smarq-run:", err)
			return 1
		}
	}
	if err := profiledump.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(stderr, "smarq-run:", err)
		return 1
	}
	st := &sys.Stats
	fmt.Fprintf(stdout, "%s under %s (halted=%v)\n", bm.Name, *config, halted)
	fmt.Fprintln(stdout, " ", harness.SummaryLine(st))
	fmt.Fprintf(stdout, "  guest insts: %d total, %d interpreted (%.1f%%)\n",
		st.GuestInsts, st.InterpretedInsts,
		100*float64(st.InterpretedInsts)/float64(st.GuestInsts))
	fmt.Fprintf(stdout, "  cycles/inst: %.3f\n", float64(st.TotalCycles)/float64(st.GuestInsts))
	fmt.Fprintln(stdout, "  recovery:", harness.RecoveryLine(st))
	if cs := st.Compile; cs.Enqueued > 0 || cs.MemoHits+cs.MemoMisses > 0 {
		avg := int64(0)
		if cs.Installed > 0 {
			avg = cs.LatencySum / cs.Installed
		}
		fmt.Fprintf(stdout, "  compile: %d enqueued, %d installed, %d canceled, %d failed, avg latency %d cycles, peak depth %d, memo %d/%d hits\n",
			cs.Enqueued, cs.Installed, cs.Canceled, cs.Failed, avg, cs.MaxQueueDepth,
			cs.MemoHits, cs.MemoHits+cs.MemoMisses)
	}
	if cs := st.Compile; cs.WorkerPanics+cs.WatchdogKills+cs.Rejected+cs.Quarantined+cs.MemoEvictions > 0 {
		fmt.Fprintf(stdout, "  host faults: %d worker panics, %d watchdog kills, %d poisoned rejected, %d quarantined, %d memo evictions\n",
			cs.WorkerPanics, cs.WatchdogKills, cs.Rejected, cs.Quarantined, cs.MemoEvictions)
	}
	if *healthOn {
		fmt.Fprintln(stdout, "  health:", harness.HealthLine(st))
	}
	if chaos {
		fmt.Fprintf(stdout, "  injected (seed %d): %s\n", *chaosSeed, harness.InjectedLine(st))
	}
	if *regions {
		fmt.Fprintln(stdout, "  regions:")
		for _, r := range st.Regions {
			fmt.Fprintf(stdout, "    B%-3d insts=%-3d mem=%-3d seq=%-3d cycles=%-4d P=%-3d C=%-3d checks=%-3d antis=%-2d amovs=%-2d ws=%d tier=%s dem=%d prom=%d sticky=%v\n",
				r.Entry, r.GuestInsts, r.MemOps, r.SeqLen, r.Cycles,
				r.Alloc.PBits, r.Alloc.CBits, r.Alloc.Checks, r.Alloc.Antis, r.Alloc.AMovs,
				r.Alloc.WorkingSet, r.Tier, r.Demotions, r.Promotions, r.Sticky)
		}
	}
	return 0
}

// loadProgram reads a guest program from assembly text (.s) or a binary
// image (anything else).
func loadProgram(path string) (*guest.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return guest.Assemble(string(data))
	}
	return guest.DecodeProgram(data)
}
