// Command smarq-run executes one benchmark under one alias-hardware
// configuration and prints the run statistics.
//
// Usage:
//
//	smarq-run -bench ammp -config smarq64
//	smarq-run -bench mesa -config nostorereorder -regions
//	smarq-run -bench equake -chaos-seed 7 -check-invariants
//	smarq-run -bench swim -trace swim.trace.json -trace-format chrome
//	smarq-run -bench swim -metrics swim.metrics.json
//	smarq-run -list
//
// -trace streams cycle-stamped runtime events to a file (jsonl for
// diffable line-oriented output, chrome for a Perfetto-loadable
// timeline); -metrics snapshots the aggregate counters and histograms to
// JSON after the run; -listen serves the live metrics snapshot over HTTP
// for long chaos soaks. See DESIGN.md ("Telemetry").
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"smarq/internal/dynopt"
	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/harness"
	"smarq/internal/profiledump"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

func main() {
	bench := flag.String("bench", "swim", "benchmark name")
	file := flag.String("file", "", "run a guest assembly (.s) or binary (.bin) file instead of a benchmark")
	config := flag.String("config", "smarq64", "configuration: smarq<N>, alat, efficeon, nohw, nostorereorder")
	regions := flag.Bool("regions", false, "print per-region statistics")
	events := flag.Bool("events", false, "print runtime events as text lines (compiles, exceptions, drops)")
	traceFile := flag.String("trace", "", "write a cycle-stamped event trace to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace encoding: jsonl or chrome (Perfetto-loadable)")
	metricsFile := flag.String("metrics", "", "write a JSON metrics snapshot (counters + histograms) to this file")
	listen := flag.String("listen", "", "serve the live metrics snapshot over HTTP at this address (e.g. :8080)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	memSize := flag.Int("mem", 1<<20, "guest memory size for -file runs")
	maxInsts := flag.Uint64("maxinsts", 0, "instruction budget (0 = benchmark default; -file runs default to 100M)")
	chaosSeed := flag.Int64("chaos-seed", 0, "enable deterministic fault injection with this seed (default chaos mix)")
	aliasRate := flag.Float64("chaos-alias-rate", -1, "override the spurious-alias injection rate (with -chaos-seed)")
	guardRate := flag.Float64("chaos-guard-rate", -1, "override the guard-fail injection rate (with -chaos-seed)")
	compileRate := flag.Float64("chaos-compile-rate", -1, "override the compile-fail injection rate (with -chaos-seed)")
	corruptRate := flag.Float64("chaos-corrupt-rate", -1, "override the post-rollback corruption rate (with -chaos-seed)")
	checkInv := flag.Bool("check-invariants", false, "verify every rollback restores the exact checkpoint (slow)")
	compileWorkers := flag.Int("compile-workers", 0, "background compile workers (0 = synchronous instant install; any N >= 1 is simulation-identical)")
	compileMemoize := flag.Bool("compile-memoize", false, "memoize compiled regions by content hash")
	compileCPI := flag.Int("compile-cycles-per-inst", -1, "override the compile-latency model's cycles per guest instruction (-1 = machine default)")
	compileCPC := flag.Int("compile-cycles-per-check", -1, "override the compile-latency model's cycles per guest memory op (-1 = machine default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()

	if *list {
		for _, bm := range workload.Suite() {
			fmt.Printf("%-10s %s\n", bm.Name, bm.Description)
		}
		return
	}

	var bm workload.Benchmark
	if *file != "" {
		prog, err := loadProgram(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-run:", err)
			os.Exit(1)
		}
		bm = workload.Benchmark{
			Name:        *file,
			Description: "user program",
			MemSize:     *memSize,
			MaxInsts:    100_000_000,
			Build:       func() *guest.Program { return prog },
		}
	} else {
		var ok bool
		bm, ok = workload.ByName(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "smarq-run: unknown benchmark %q (try -list)\n", *bench)
			os.Exit(2)
		}
	}
	if *maxInsts != 0 {
		bm.MaxInsts = *maxInsts
	}
	cfg, err := harness.ParseConfig(*config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-run:", err)
		os.Exit(2)
	}
	chaos := *chaosSeed != 0
	if chaos {
		cfg.Chaos = faultinject.Default(*chaosSeed)
		for _, o := range []struct {
			v   float64
			dst *float64
		}{
			{*aliasRate, &cfg.Chaos.SpuriousAliasRate},
			{*guardRate, &cfg.Chaos.GuardFailRate},
			{*compileRate, &cfg.Chaos.CompileFailRate},
			{*corruptRate, &cfg.Chaos.CorruptRate},
		} {
			if o.v >= 0 {
				*o.dst = o.v
			}
		}
	}
	cfg.CheckInvariants = *checkInv
	cfg.Compile.Workers = *compileWorkers
	cfg.Compile.Memoize = *compileMemoize
	if *compileCPI >= 0 {
		cfg.Machine.CompileCyclesPerInst = *compileCPI
	}
	if *compileCPC >= 0 {
		cfg.Machine.CompileCyclesPerCheck = *compileCPC
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "smarq-run:", err)
		os.Exit(2)
	}
	if *events {
		cfg.Trace = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "trace: "+format+"\n", args...)
		}
	}

	// Telemetry wiring: each enabled surface is independent; both off
	// leaves cfg.Telemetry nil and the whole layer a dead nil check.
	tel := &telemetry.Telemetry{}
	var tracer *telemetry.Tracer
	var traceOut *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-run:", err)
			os.Exit(1)
		}
		traceOut = f
		sink, err := telemetry.NewFormatSink(f, *traceFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-run:", err)
			os.Exit(2)
		}
		tracer = telemetry.NewTracer(0, sink)
		tel.Events = tracer
	}
	if *metricsFile != "" || *listen != "" {
		tel.Metrics = telemetry.NewRegistry()
	}
	if tel.Events != nil || tel.Metrics != nil {
		cfg.Telemetry = tel
	}
	if *listen != "" {
		go func() {
			if err := http.ListenAndServe(*listen, tel.Metrics.Handler()); err != nil {
				fmt.Fprintln(os.Stderr, "smarq-run: -listen:", err)
			}
		}()
	}

	stopCPU, err := profiledump.StartCPU(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-run:", err)
		os.Exit(1)
	}
	sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
	halted, err := sys.Run(bm.MaxInsts)
	stopCPU()
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("trace: %w", cerr)
	}
	if traceOut != nil {
		if cerr := traceOut.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smarq-run:", err)
		os.Exit(1)
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = tel.Metrics.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-run:", err)
			os.Exit(1)
		}
	}
	if err := profiledump.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "smarq-run:", err)
		os.Exit(1)
	}
	st := &sys.Stats
	fmt.Printf("%s under %s (halted=%v)\n", bm.Name, *config, halted)
	fmt.Println(" ", harness.SummaryLine(st))
	fmt.Printf("  guest insts: %d total, %d interpreted (%.1f%%)\n",
		st.GuestInsts, st.InterpretedInsts,
		100*float64(st.InterpretedInsts)/float64(st.GuestInsts))
	fmt.Printf("  cycles/inst: %.3f\n", float64(st.TotalCycles)/float64(st.GuestInsts))
	fmt.Println("  recovery:", harness.RecoveryLine(st))
	if cs := st.Compile; cs.Enqueued > 0 || cs.MemoHits+cs.MemoMisses > 0 {
		avg := int64(0)
		if cs.Installed > 0 {
			avg = cs.LatencySum / cs.Installed
		}
		fmt.Printf("  compile: %d enqueued, %d installed, %d canceled, %d failed, avg latency %d cycles, peak depth %d, memo %d/%d hits\n",
			cs.Enqueued, cs.Installed, cs.Canceled, cs.Failed, avg, cs.MaxQueueDepth,
			cs.MemoHits, cs.MemoHits+cs.MemoMisses)
	}
	if chaos {
		fmt.Printf("  injected (seed %d): %s\n", *chaosSeed, harness.InjectedLine(st))
	}
	if *regions {
		fmt.Println("  regions:")
		for _, r := range st.Regions {
			fmt.Printf("    B%-3d insts=%-3d mem=%-3d seq=%-3d cycles=%-4d P=%-3d C=%-3d checks=%-3d antis=%-2d amovs=%-2d ws=%d tier=%s dem=%d prom=%d sticky=%v\n",
				r.Entry, r.GuestInsts, r.MemOps, r.SeqLen, r.Cycles,
				r.Alloc.PBits, r.Alloc.CBits, r.Alloc.Checks, r.Alloc.Antis, r.Alloc.AMovs,
				r.Alloc.WorkingSet, r.Tier, r.Demotions, r.Promotions, r.Sticky)
		}
	}
}

// loadProgram reads a guest program from assembly text (.s) or a binary
// image (anything else).
func loadProgram(path string) (*guest.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return guest.Assemble(string(data))
	}
	return guest.DecodeProgram(data)
}
