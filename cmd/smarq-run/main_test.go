package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestInvariantViolationExitsNonZero pins the chaos-debugging contract:
// when the rollback invariant checker fires (here provoked by injected
// post-rollback corruption), the run must stop at the first violation,
// print it, and exit non-zero — a soak script must never mistake a
// corrupted run for a clean one.
func TestInvariantViolationExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-chaos-seed", "7",
		"-chaos-corrupt-rate", "1", "-check-invariants",
	}, &out, &errb)
	if code == 0 {
		t.Fatalf("exit code 0 despite forced post-rollback corruption\nstdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "invariant") {
		t.Errorf("stderr does not name the violated invariant:\n%s", errb.String())
	}
}

// TestHostChaosRunSucceeds: the full host-fault mix with the health
// controller armed completes cleanly and reports the host-fault and
// health summary lines.
func TestHostChaosRunSucceeds(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-chaos-seed", "7", "-chaos-host", "-health",
		"-compile-workers", "2", "-compile-memoize", "-check-invariants",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"host faults:", "health:", "worker-panic="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestListenRunExitsCleanly pins the -listen lifecycle fix: the ops
// server binds port 0 synchronously, serves for the run, and is shut
// down when the run completes — run() returns instead of leaking the
// listener goroutine, and the bound address is reported on stderr.
func TestListenRunExitsCleanly(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-maxinsts", "20000", "-listen", "127.0.0.1:0",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "serving observability endpoints on http://127.0.0.1:") {
		t.Errorf("stderr does not report the bound address:\n%s", errb.String())
	}
}

// TestListenBindErrorFailsFast: a hopeless -listen address fails the run
// with exit 1 before any simulation work, not in a background goroutine's
// log line.
func TestListenBindErrorFailsFast(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-listen", "256.0.0.1:0",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "listen") {
		t.Errorf("stderr does not name the bind failure:\n%s", errb.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown benchmark": {"-bench", "nope"},
		"bad host rate":     {"-bench", "swim", "-chaos-seed", "1", "-chaos-host-panic-rate", "2"},
		"bad flag":          {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %s)", name, code, errb.String())
		}
	}
}
