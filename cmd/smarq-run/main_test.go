package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestInvariantViolationExitsNonZero pins the chaos-debugging contract:
// when the rollback invariant checker fires (here provoked by injected
// post-rollback corruption), the run must stop at the first violation,
// print it, and exit non-zero — a soak script must never mistake a
// corrupted run for a clean one.
func TestInvariantViolationExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-chaos-seed", "7",
		"-chaos-corrupt-rate", "1", "-check-invariants",
	}, &out, &errb)
	if code == 0 {
		t.Fatalf("exit code 0 despite forced post-rollback corruption\nstdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "invariant") {
		t.Errorf("stderr does not name the violated invariant:\n%s", errb.String())
	}
}

// TestHostChaosRunSucceeds: the full host-fault mix with the health
// controller armed completes cleanly and reports the host-fault and
// health summary lines.
func TestHostChaosRunSucceeds(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-bench", "swim", "-chaos-seed", "7", "-chaos-host", "-health",
		"-compile-workers", "2", "-compile-memoize", "-check-invariants",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"host faults:", "health:", "worker-panic="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown benchmark": {"-bench", "nope"},
		"bad host rate":     {"-bench", "swim", "-chaos-seed", "1", "-chaos-host-panic-rate", "2"},
		"bad flag":          {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %s)", name, code, errb.String())
		}
	}
}
