// Command smarq-trace shows the optimizer's work on one region of a
// benchmark: the superblock, the dependences, the final schedule with its
// alias register annotations (P/C bits, offsets, rotations, AMOVs), and
// the allocation statistics.
//
// Usage:
//
//	smarq-trace -bench ammp             # hottest region
//	smarq-trace -bench mesa -all        # every compiled region
//	smarq-trace -bench swim -regs 16    # with a 16-register file
//	smarq-trace -bench swim -all -json  # machine-readable compile events
//
// -json replaces the text dump with one telemetry compile event per
// region (the same JSONL schema `smarq-run -trace` emits at runtime), so
// static dumps and runtime traces share one encoding.
package main

import (
	"flag"
	"fmt"
	"os"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/telemetry"
	"smarq/internal/vliw"
	"smarq/internal/workload"
	"smarq/internal/xlate"
)

// Force the dynopt tier-name hook so -json tier labels match runtime
// traces (ladder names, not t<N> numbers).
import _ "smarq/internal/dynopt"

func main() {
	bench := flag.String("bench", "swim", "benchmark name")
	all := flag.Bool("all", false, "trace every hot region, not just the hottest")
	regs := flag.Int("regs", 64, "alias register count")
	storeReorder := flag.Bool("storereorder", true, "allow speculative store reordering")
	asJSON := flag.Bool("json", false, "emit one telemetry compile event per region (JSONL) instead of the text dump")
	flag.Parse()

	bm, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "smarq-trace: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	prog := bm.Build()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(bm.MemSize))
	if _, err := it.Run(0, bm.MaxInsts/4); err != nil {
		fmt.Fprintln(os.Stderr, "smarq-trace: profiling run:", err)
		os.Exit(1)
	}

	type hot struct {
		id    int
		count uint64
	}
	var hots []hot
	for id, c := range it.Prof.BlockCounts {
		if c >= 50 {
			hots = append(hots, hot{id, c})
		}
	}
	if len(hots) == 0 {
		fmt.Fprintln(os.Stderr, "smarq-trace: no hot blocks found")
		os.Exit(1)
	}
	// Hottest first.
	for i := 0; i < len(hots); i++ {
		for j := i + 1; j < len(hots); j++ {
			if hots[j].count > hots[i].count {
				hots[i], hots[j] = hots[j], hots[i]
			}
		}
	}
	if !*all {
		hots = hots[:1]
	}

	machine := vliw.DefaultConfig()
	var jsonSink *telemetry.JSONLSink
	if *asJSON {
		jsonSink = telemetry.NewJSONLSink(os.Stdout)
		if err := jsonSink.WriteEvents([]telemetry.Event{{
			Kind: telemetry.KindMeta, Region: -1, Tier: -1, To: -1,
			Name: bm.Name,
		}}); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-trace:", err)
			os.Exit(1)
		}
	}
	for _, h := range hots {
		sb, err := region.Form(prog, it.Prof, h.id, region.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-trace:", err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Printf("=== %s: block B%d (executed %d times) ===\n", bm.Name, h.id, h.count)
			fmt.Print(sb)
		}

		reg, err := xlate.Translate(sb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-trace:", err)
			os.Exit(1)
		}
		tbl := alias.BuildTable(reg, nil)
		optRes := opt.Run(reg, tbl, opt.Config{LoadElim: true, StoreElim: true, Speculative: true})
		ds := deps.Compute(reg, tbl)
		opt.AddExtendedDeps(ds, reg, tbl, optRes)

		if !*asJSON {
			fmt.Printf("\neliminations: %d loads forwarded, %d stores removed\n",
				optRes.LoadsRemoved, optRes.StoresRemoved)
			base, ext := ds.Counts()
			fmt.Printf("dependences: %d base, %d extended\n", base, ext)
			for _, d := range ds.Sorted() {
				fmt.Println("  ", d)
			}
		}

		sc, err := sched.Run(reg, tbl, ds, sched.Config{
			Mode: sched.HWOrdered, NumAliasRegs: *regs,
			StoreReorder: *storeReorder, PressureMargin: 4, Machine: machine,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "smarq-trace: schedule:", err)
			os.Exit(1)
		}

		if *asJSON {
			// One compile event per region: the same shape the runtime
			// emits when it installs this region (Cycle 0: a static dump
			// has no clock).
			if err := jsonSink.WriteEvents([]telemetry.Event{{
				Kind: telemetry.KindCompile, Region: int32(h.id),
				Tier: 0, To: -1,
				Cost: machine.CycleCount(sc.Seq, reg.NumVRegs),
				A:    int64(len(sc.Seq)), B: int64(len(sb.Insts)),
				C: int64(sb.NumMemOps()), D: int64(sc.Alloc.Stats.WorkingSet),
			}}); err != nil {
				fmt.Fprintln(os.Stderr, "smarq-trace:", err)
				os.Exit(1)
			}
			continue
		}

		cycles := machine.IssueCycles(sc.Seq, reg.NumVRegs)
		fmt.Printf("\nschedule (%d ops, %d cycles on the VLIW):\n",
			len(sc.Seq), machine.CycleCount(sc.Seq, reg.NumVRegs))
		lastCycle := int64(-1)
		for i, op := range sc.Seq {
			annot := ""
			if op.IsMem() && op.AROffset >= 0 {
				bits := ""
				if op.P {
					bits += "P"
				}
				if op.C {
					bits += "C"
				}
				annot = fmt.Sprintf("   ; AR offset %d [%s]", op.AROffset, bits)
			}
			cycleCol := "     "
			if cycles[i] != lastCycle {
				cycleCol = fmt.Sprintf("%4d:", cycles[i])
				lastCycle = cycles[i]
			}
			fmt.Printf("  %s %3d: %s%s\n", cycleCol, i, op, annot)
		}

		st := sc.Alloc.Stats
		fmt.Printf("\nallocation: P=%d C=%d checks=%d antis=%d amovs=%d (cleanups=%d) rotates=%d working-set=%d\n\n",
			st.PBits, st.CBits, st.Checks, st.Antis, st.AMovs, st.AMovCleanups,
			st.Rotates, st.WorkingSet)
	}
	if jsonSink != nil {
		if err := jsonSink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "smarq-trace:", err)
			os.Exit(1)
		}
	}
}
