package smarq_test

import (
	"fmt"

	"smarq"
)

// Example_speculation shows the core effect: a loop whose load the
// optimizer cannot prove disjoint from the preceding store runs faster
// with alias hardware, and computes exactly the same result.
func Example_speculation() {
	build := func() *smarq.Program {
		b := smarq.NewBuilder()
		b.NewBlock()
		b.Li(1, 1024) // p
		b.Li(2, 4096) // q — provably nothing, actually disjoint
		b.Li(3, 0)
		b.Li(4, 10000)
		loop := b.NewBlock()
		b.St8(1, 0, 5)  // *p = r5
		b.Ld8(6, 2, 0)  // r6 = *q (may alias *p)
		b.Addi(5, 6, 1) // consumer stalls without hoisting
		b.Addi(1, 1, 8)
		b.Addi(2, 2, 8)
		b.Addi(3, 3, 1)
		b.Blt(3, 4, loop)
		b.NewBlock()
		b.Halt()
		return b.MustProgram()
	}

	run := func(cfg smarq.Config) *smarq.System {
		sys := smarq.NewSystem(build(), &smarq.State{}, smarq.NewMemory(1<<20), cfg)
		if _, err := sys.Run(10_000_000); err != nil {
			panic(err)
		}
		return sys
	}
	base := run(smarq.ConfigNoHW())
	fast := run(smarq.ConfigSMARQ(64))
	fmt.Println("same result:", base.State().R[5] == fast.State().R[5])
	fmt.Println("speculation wins:", fast.Stats.TotalCycles < base.Stats.TotalCycles)
	// Output:
	// same result: true
	// speculation wins: true
}

// ExampleAssemble builds a program from assembly text and runs it.
func ExampleAssemble() {
	prog, err := smarq.Assemble(`
		li   r1, 64
		li   r2, 0
	loop:	st8  [r1+0], r2
		ld8  r3, [r1+0]
		add  r4, r4, r3
		addi r1, r1, 8
		addi r2, r2, 1
		li   r5, 10
		blt  r2, r5, loop
	done:	halt
	`)
	if err != nil {
		panic(err)
	}
	sys := smarq.NewSystem(prog, &smarq.State{}, smarq.NewMemory(1<<12), smarq.ConfigSMARQ(64))
	if _, err := sys.Run(1_000_000); err != nil {
		panic(err)
	}
	fmt.Println("r4 =", sys.State().R[4])
	// Output:
	// r4 = 45
}

// ExampleEncodeProgram round-trips a program through its binary image —
// the form a real dynamic binary translator consumes.
func ExampleEncodeProgram() {
	b := smarq.NewBuilder()
	b.NewBlock()
	b.Li(1, 42)
	b.Halt()
	prog := b.MustProgram()

	image := smarq.EncodeProgram(prog)
	decoded, err := smarq.DecodeProgram(image)
	if err != nil {
		panic(err)
	}
	fmt.Println("instructions:", decoded.NumInsts())
	// Output:
	// instructions: 2
}

// ExampleRunner regenerates one of the paper's statistics — constraints
// per memory operation (Figure 19) — on a single benchmark.
func ExampleRunner() {
	bm, _ := smarq.BenchmarkByName("mgrid")
	r := smarq.NewRunner([]smarq.Benchmark{bm})
	st, err := r.Run("mgrid", "smarq64")
	if err != nil {
		panic(err)
	}
	fmt.Println("committed regions:", st.Commits > 0)
	fmt.Println("alias registers allocated:", st.Regions[len(st.Regions)-1].Alloc.PBits >= 0)
	// Output:
	// committed regions: true
	// alias registers allocated: true
}
