// Assembler: write guest code as text, assemble it, round-trip it through
// the binary encoding (the form the dynamic optimizer would receive a
// program in), and run it under SMARQ.
//
//	go run ./examples/assembler
package main

import (
	"fmt"

	"smarq"
)

const src = `
; dot product with an in-place update: the x-store may alias the y-loads
; (the optimizer cannot tell), so hoisting y's loads needs alias checks.
        li   r1, 8192      ; x base
        li   r2, 16384     ; y base
        li   r3, 0         ; i
        li   r4, 256       ; n
        fli  f1, 0.0       ; acc

fill:   cvtif f2, r3
        muli r10, r3, 8
        add  r11, r1, r10
        fst8 [r11+0], f2
        add  r12, r2, r10
        fst8 [r12+0], f2
        addi r3, r3, 1
        blt  r3, r4, fill

setup:  li   r3, 0
loop:   muli r10, r3, 8
        add  r11, r1, r10
        add  r12, r2, r10
        fld8 f2, [r11+0]   ; x[i]
        fld8 f3, [r12+0]   ; y[i]
        fmul f4, f2, f3
        fadd f1, f1, f4
        fli  f5, 0.5
        fmul f2, f2, f5
        fst8 [r11+0], f2   ; x[i] *= 0.5 — crosses the next i's loads
        addi r3, r3, 1
        blt  r3, r4, loop

done:   cvtfi r31, f1
        halt
`

func main() {
	prog, err := smarq.Assemble(src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("assembled: %d blocks, %d instructions\n", len(prog.Blocks), prog.NumInsts())

	// Round-trip through the binary image, like a real DBT input.
	image := smarq.EncodeProgram(prog)
	decoded, err := smarq.DecodeProgram(image)
	if err != nil {
		panic(err)
	}
	fmt.Printf("binary image: %d bytes, decodes to %d instructions\n",
		len(image), decoded.NumInsts())

	sys := smarq.NewSystem(decoded, &smarq.State{}, smarq.NewMemory(1<<20),
		smarq.ConfigSMARQ(64))
	halted, err := sys.Run(10_000_000)
	if err != nil || !halted {
		panic(fmt.Sprintf("run: halted=%v err=%v", halted, err))
	}
	fmt.Printf("ran under SMARQ-64: %d cycles, %d region commits, dot+updates gave r31=%d\n",
		sys.Stats.TotalCycles, sys.Stats.Commits, sys.State().R[31])
}
