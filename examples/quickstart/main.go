// Quickstart: build a small guest program, run it under the SMARQ dynamic
// optimization system, and compare against pure interpretation and against
// the same system without alias-detection hardware.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/interp"
)

// buildProgram assembles the guest code: a loop that updates two arrays
// through different base registers. The dynamic optimizer cannot prove the
// arrays disjoint (the bases are opaque registers inside the hot region),
// so every load of the second array may alias the stores to the first —
// exactly the situation SMARQ's speculation resolves.
func buildProgram() *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1024) // array A
	b.Li(2, 4096) // array B
	b.Li(3, 0)    // i
	b.Li(4, 20000)

	loop := b.NewBlock()
	// Store to A first, then load from B: without alias hardware the load
	// cannot be hoisted and the in-order pipeline stalls on its consumer.
	b.St8(1, 0, 5)  // A[i] = r5
	b.Ld8(6, 2, 0)  // r6 = B[i]
	b.Addi(6, 6, 3) // consumer chain
	b.Muli(5, 6, 7) //
	b.Addi(1, 1, 8) // bump pointers
	b.Addi(2, 2, 8)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)

	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

func main() {
	const memSize = 1 << 20

	// Reference: pure interpretation.
	ref := interp.New(buildProgram(), &guest.State{}, guest.NewMemory(memSize))
	if _, err := ref.Run(0, 10_000_000); err != nil {
		panic(err)
	}

	run := func(name string, cfg dynopt.Config) *dynopt.System {
		sys := dynopt.New(buildProgram(), &guest.State{}, guest.NewMemory(memSize), cfg)
		if _, err := sys.Run(10_000_000); err != nil {
			panic(err)
		}
		fmt.Printf("%-22s %9d cycles  (%d regions, %d commits, %d alias exceptions)\n",
			name, sys.Stats.TotalCycles, sys.Stats.RegionsCompiled,
			sys.Stats.Commits, sys.Stats.AliasExceptions)
		return sys
	}

	fmt.Println("quickstart: one speculative loop, three ways")
	noHW := run("no alias hardware", dynopt.ConfigNoHW())
	smarq := run("SMARQ, 64 registers", dynopt.ConfigSMARQ(64))

	// The optimized run must compute exactly what the interpreter did.
	if smarq.State().R[5] != ref.St.R[5] {
		panic("optimized execution diverged from the interpreter")
	}
	fmt.Printf("\nverified: r5 = %d in both executions\n", smarq.State().R[5])
	fmt.Printf("speedup from alias speculation: %.2fx\n",
		float64(noHW.Stats.TotalCycles)/float64(smarq.Stats.TotalCycles))
}
