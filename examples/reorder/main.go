// Reorder: the paper's Figure 2/4 walkthrough on the real allocator.
//
// A store/load/store/load sequence is speculatively reordered so the loads
// execute first; the demoted stores must then check the loads' alias
// registers. This example drives the SMARQ allocator directly and prints
// the check-constraints it derived, the P/C bits, the register offsets,
// and the rotation that recycles the registers — then executes the
// annotated sequence against the ordered-queue hardware model twice: once
// with disjoint addresses (silent) and once with a genuine alias (raises
// the exception).
//
//	go run ./examples/reorder
package main

import (
	"fmt"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

func memOp(id int, kind ir.Kind, base ir.VReg) *ir.Op {
	o := &ir.Op{ID: id, Kind: kind, Dst: ir.NoVReg, AROffset: -1,
		Mem: &ir.MemInfo{Base: base, Size: 8, Root: base}}
	if kind == ir.Load {
		o.GOp = guest.Ld8
		o.Dst = ir.VReg(100 + id)
		o.Srcs = []ir.VReg{base}
		o.SrcFloat = []bool{false}
	} else {
		o.GOp = guest.St8
		o.Srcs = []ir.VReg{50, base}
		o.SrcFloat = []bool{false, false}
	}
	return o
}

func main() {
	// Original program order (Figure 2 (a) shape):
	//   M0: st [r1]    M1: ld [r2]    M2: st [r3]    M3: ld [r4]
	// All bases are distinct opaque registers: every load/store pair may
	// alias.
	ops := []*ir.Op{
		memOp(0, ir.Store, 1),
		memOp(1, ir.Load, 2),
		memOp(2, ir.Store, 3),
		memOp(3, ir.Load, 4),
	}
	ds := deps.NewSet()
	for _, d := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}} {
		ds.Add(deps.Dep{Src: d[0], Dst: d[1], Rel: alias.MayAlias,
			SrcIsStore: ops[d[0]].Kind == ir.Store,
			DstIsStore: ops[d[1]].Kind == ir.Store})
	}

	// The optimizer hoists both loads above both stores: schedule
	// M1 M3 M0 M2 (loads as early as possible, Figure 2 (b)).
	schedule := []int{1, 3, 0, 2}
	res, err := core.AllocateSequence(ops, schedule, ds, 64)
	if err != nil {
		panic(err)
	}

	fmt.Println("speculatively reordered schedule with alias annotations:")
	names := map[int]string{0: "st [r1]", 1: "ld [r2]", 2: "st [r3]", 3: "ld [r4]"}
	for _, op := range res.Seq {
		switch op.Kind {
		case ir.Rotate:
			fmt.Printf("  rotate %d\n", op.Amount)
		default:
			bits := ""
			if op.P {
				bits += "P"
			}
			if op.C {
				bits += "C"
			}
			fmt.Printf("  M%d: %-8s offset=%d bits=%-2s order=%d\n",
				op.ID, names[op.ID], op.AROffset, bits, res.Order[op.ID])
		}
	}
	fmt.Printf("\ncheck-constraints (checker -> checkee): %v\n", res.Checks)
	fmt.Printf("working set: %d registers for %d protected loads\n\n",
		res.Stats.WorkingSet, res.Stats.PBits)

	// Execute the annotated sequence against the hardware model.
	execute := func(addr map[int]uint64) *aliashw.Conflict {
		q := aliashw.NewOrderedQueue(64)
		defer q.Reset()
		for _, op := range res.Seq {
			switch op.Kind {
			case ir.Rotate:
				q.Rotate(op.Amount)
			case ir.Load, ir.Store:
				lo := addr[op.ID]
				if c := q.OnMem(op.ID, op.Kind == ir.Store, op.P, op.C, op.AROffset, 0, lo, lo+8); c != nil {
					return c
				}
			}
		}
		return nil
	}

	if c := execute(map[int]uint64{0: 0, 1: 64, 2: 128, 3: 192}); c != nil {
		panic("false positive on disjoint addresses")
	}
	fmt.Println("disjoint addresses: no exception (speculation pays off)")

	if c := execute(map[int]uint64{0: 64, 1: 64, 2: 128, 3: 192}); c == nil {
		panic("missed a genuine alias")
	} else {
		fmt.Printf("st [r1] aliases ld [r2]: exception, checker M%d caught M%d — the region rolls back\n",
			c.Checker, c.Origin)
	}
}
