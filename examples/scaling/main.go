// Scaling: how many alias registers does speculation need?
//
// Runs the register-pressure benchmark (ammp — very large superblocks,
// ~50 memory operations each) across alias register file sizes and prints
// the speedup curve over the no-hardware baseline. This is the §2.2 claim:
// "performance improvement for ammp ... by 30% by using 64 alias
// registers instead of 16".
//
//	go run ./examples/scaling
package main

import (
	"fmt"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/workload"
)

func main() {
	bm, _ := workload.ByName("ammp")

	cycles := func(cfg dynopt.Config) int64 {
		sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
		halted, err := sys.Run(bm.MaxInsts)
		if err != nil || !halted {
			panic(fmt.Sprintf("run failed: halted=%v err=%v", halted, err))
		}
		return sys.Stats.TotalCycles
	}

	base := cycles(dynopt.ConfigNoHW())
	fmt.Printf("ammp, no alias hardware: %d cycles (baseline)\n\n", base)
	fmt.Printf("%-10s %12s %9s\n", "registers", "cycles", "speedup")
	for _, n := range []int{4, 8, 16, 24, 32, 48, 64, 96} {
		c := cycles(dynopt.ConfigSMARQ(n))
		fmt.Printf("%-10d %12d %8.3fx\n", n, c, float64(base)/float64(c))
	}
	fmt.Println("\nthe curve flattens once the file holds the superblock's")
	fmt.Println("speculation working set — scalable alias registers are what")
	fmt.Println("make large-region speculation profitable (paper §2.2).")
}
