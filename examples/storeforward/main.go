// Storeforward: speculative load elimination end to end, the paper's
// Figure 5 scenario.
//
// A load reads back a value just stored through the same register; the
// optimizer forwards the stored value and deletes the load. An intervening
// store through an unrelated pointer may alias the slot, so the forwarding
// is speculative: the intervening store receives a C bit and checks the
// forwarding source's alias register even though nothing was reordered —
// the extended-dependence machinery of §4.1. When the pointers truly
// collide at runtime, the region rolls back, the pair is blacklisted, and
// re-optimization stops forwarding.
//
//	go run ./examples/storeforward
package main

import (
	"fmt"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/ir"
)

func buildProgram(collide bool) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1024) // p
	b.Li(2, 4096) // q — possibly the same slot as p
	if collide {
		b.Li(2, 1024)
	}
	b.Li(3, 0)
	b.Li(4, 5000)

	loop := b.NewBlock()
	b.St8(1, 0, 5) // *p = r5
	b.St8(2, 0, 3) // *q = i   (may clobber *p)
	b.Ld8(6, 1, 0) // r6 = *p  (forwarded from the first store, speculatively)
	b.Addi(5, 6, 1)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)

	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

func run(collide bool) {
	label := "disjoint pointers"
	if collide {
		label = "colliding pointers"
	}
	prog := buildProgram(collide)

	ref := interp.New(buildProgram(collide), &guest.State{}, guest.NewMemory(1<<16))
	if _, err := ref.Run(0, 10_000_000); err != nil {
		panic(err)
	}

	sys := dynopt.New(prog, &guest.State{}, guest.NewMemory(1<<16), dynopt.ConfigSMARQ(64))
	if _, err := sys.Run(10_000_000); err != nil {
		panic(err)
	}
	if sys.State().R[5] != ref.St.R[5] {
		panic("optimized execution diverged from the interpreter")
	}

	fmt.Printf("%s:\n", label)
	fmt.Printf("  cycles=%d, alias exceptions=%d, conservative recompiles=%d\n",
		sys.Stats.TotalCycles, sys.Stats.AliasExceptions, sys.Stats.Recompiles)
	fmt.Printf("  r5 = %d (matches the interpreter)\n", sys.State().R[5])
}

func main() {
	fmt.Println("speculative store-to-load forwarding across a may-alias store")
	fmt.Println()
	run(false)
	fmt.Println()
	run(true)
	fmt.Println()
	fmt.Println("with disjoint pointers the load disappears (a register copy")
	fmt.Println("remains) and the intervening store checks the forwarding")
	fmt.Println("source's alias register; with colliding pointers that check")
	fmt.Println("fires once, the pair is blacklisted, and the region is")
	fmt.Println("re-optimized without the forwarding — Figure 1's loop.")
	_ = ir.Copy // the forwarded load becomes an ir.Copy in the schedule
}
