module smarq

go 1.22
