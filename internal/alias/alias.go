// Package alias implements the static memory disambiguation the dynamic
// optimizer uses before falling back to hardware alias detection.
//
// As the paper argues (§1, §7), a dynamic optimizer can only afford a
// simple, fast analysis: we compare canonicalized addresses (root register
// plus constant displacement, or absolute) produced by translation. Pairs
// the analysis cannot disambiguate are "may alias" — exactly the pairs the
// optimizer speculates on and the alias hardware watches at runtime.
package alias

import (
	"fmt"
	"sort"
	"sync"

	"smarq/internal/ir"
)

// Relation classifies a pair of memory accesses.
type Relation uint8

const (
	// MayAlias: the analysis cannot disambiguate the pair. Speculation
	// candidates.
	MayAlias Relation = iota
	// NoAlias: provably disjoint; reorder freely with no alias check.
	NoAlias
	// PartialAlias: provably overlapping but not the identical access.
	// A definite dependence; never speculated (the check would always
	// raise an exception).
	PartialAlias
	// MustAlias: provably the identical address and size. Definite
	// dependence and the enabling condition for load/store elimination.
	MustAlias
)

var relNames = map[Relation]string{
	MayAlias: "may", NoAlias: "no", PartialAlias: "partial", MustAlias: "must",
}

// String returns the relation name.
func (r Relation) String() string { return relNames[r] }

// Definite reports whether the pair certainly overlaps at runtime.
func (r Relation) Definite() bool { return r == PartialAlias || r == MustAlias }

// Classify compares two memory accesses by their canonical addresses.
func Classify(a, b *ir.MemInfo) Relation {
	sameFrame := (a.Abs && b.Abs) || (!a.Abs && !b.Abs && a.Root == b.Root)
	if !sameFrame {
		return MayAlias
	}
	aLo, aHi := a.RootOff, a.RootOff+int64(a.Size)
	bLo, bHi := b.RootOff, b.RootOff+int64(b.Size)
	switch {
	case aHi <= bLo || bHi <= aLo:
		return NoAlias
	case aLo == bLo && a.Size == b.Size:
		return MustAlias
	default:
		return PartialAlias
	}
}

// Pair identifies an unordered pair of memory ops by region op IDs, with
// A < B.
type Pair struct {
	A, B int
}

// MakePair normalizes (x, y) into a Pair.
func MakePair(x, y int) Pair {
	if x > y {
		x, y = y, x
	}
	return Pair{x, y}
}

// Table holds the alias relations for a region's memory operations, after
// applying runtime feedback: pairs observed to alias at runtime are
// upgraded to PartialAlias so the optimizer stops speculating on them
// (Figure 1: the runtime "triggers the optimizer to re-optimize the region
// conservatively; this time it assumes the two memory operations that just
// triggered the exception are always aliased").
//
// Memory operations with the identical canonical access (root register,
// displacement, size) form a *must-alias class*. Runtime feedback is
// recorded between classes, not individual ops: when speculative load
// elimination redirects a check to a range-equivalent operation, the
// exception it raises must still harden every access to that range, or
// re-optimization would re-speculate forever.
// Table storage is dense: op IDs index flat slices (the compile pipeline
// queries Rel O(memops²) times, so the per-probe cost must be a couple of
// array loads, not hash lookups), and tables recycle through a pool so
// steady-state compilation allocates nothing here.
type Table struct {
	mems  []*ir.MemInfo // indexed by op ID; nil for non-memory ops
	class []int32       // indexed by op ID; -1 for non-memory ops
	bad   map[Pair]bool // blacklisted class pairs (small, pooled+cleared)
	keys  map[classKey]int32
}

// Blacklist is the set of op pairs runtime feedback marked as aliasing.
type Blacklist map[Pair]bool

type classKey struct {
	root ir.VReg
	off  int64
	size int
	abs  bool
}

var tablePool = sync.Pool{New: func() interface{} {
	return &Table{bad: make(map[Pair]bool), keys: make(map[classKey]int32)}
}}

// BuildTable classifies the region's memory operations and applies the
// blacklist. The table comes from an internal pool; callers on the hot
// compile path hand it back with Release once the compilation is done.
func BuildTable(reg *ir.Region, bl Blacklist) *Table {
	t := tablePool.Get().(*Table)
	n := len(reg.Ops)
	t.mems = resizeMems(t.mems, n)
	t.class = resizeClasses(t.class, n)
	clear(t.bad)
	clear(t.keys)
	for _, o := range reg.Ops {
		if !o.IsMem() {
			continue
		}
		t.mems[o.ID] = o.Mem
		k := classKey{root: o.Mem.Root, off: o.Mem.RootOff, size: o.Mem.Size, abs: o.Mem.Abs}
		if o.Mem.Abs {
			k.root = ir.NoVReg
		}
		id, ok := t.keys[k]
		if !ok {
			id = int32(len(t.keys))
			t.keys[k] = id
		}
		t.class[o.ID] = id
	}
	for p := range bl {
		ca, cb := t.ClassOf(p.A), t.ClassOf(p.B)
		if ca >= 0 && cb >= 0 {
			t.bad[MakePair(ca, cb)] = true
		}
	}
	return t
}

// Release returns the table to the pool. The caller must not use it (or
// anything still holding it) afterwards.
func (t *Table) Release() {
	if t != nil {
		tablePool.Put(t)
	}
}

func resizeMems(s []*ir.MemInfo, n int) []*ir.MemInfo {
	if cap(s) < n {
		return make([]*ir.MemInfo, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

func resizeClasses(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = -1
	}
	return s
}

// ClassOf returns the must-alias class of op id, or -1 when the op is not a
// memory op of the region.
func (t *Table) ClassOf(id int) int {
	if id >= 0 && id < len(t.class) {
		return int(t.class[id])
	}
	return -1
}

// Rel returns the relation between ops x and y. Unknown pairs (not both
// memory ops of the region) are MayAlias, the conservative answer.
// Blacklisted class pairs upgrade MayAlias to PartialAlias.
func (t *Table) Rel(x, y int) Relation {
	if x == y {
		return MustAlias
	}
	if x < 0 || y < 0 || x >= len(t.mems) || y >= len(t.mems) {
		return MayAlias
	}
	mx, my := t.mems[x], t.mems[y]
	if mx == nil || my == nil {
		return MayAlias
	}
	r := Classify(mx, my)
	if !r.Definite() && len(t.bad) > 0 && t.bad[MakePair(int(t.class[x]), int(t.class[y]))] {
		r = PartialAlias
	}
	return r
}

// String dumps the non-may relations for traces.
func (t *Table) String() string {
	out := ""
	ids := make([]int, 0, len(t.mems))
	for id, m := range t.mems {
		if m != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if r := t.Rel(ids[i], ids[j]); r != MayAlias {
				out += fmt.Sprintf("(%d,%d):%s ", ids[i], ids[j], r)
			}
		}
	}
	return out
}
