package alias

import (
	"testing"
	"testing/quick"

	"smarq/internal/guest"
	"smarq/internal/ir"
)

func mi(root ir.VReg, off int64, size int) *ir.MemInfo {
	return &ir.MemInfo{Root: root, RootOff: off, Size: size}
}

func abs(off int64, size int) *ir.MemInfo {
	return &ir.MemInfo{Root: ir.NoVReg, RootOff: off, Size: size, Abs: true}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		a, b *ir.MemInfo
		want Relation
	}{
		{"same root same slot", mi(1, 8, 8), mi(1, 8, 8), MustAlias},
		{"same root disjoint", mi(1, 0, 8), mi(1, 8, 8), NoAlias},
		{"same root overlap", mi(1, 0, 8), mi(1, 4, 8), PartialAlias},
		{"same root same addr diff size", mi(1, 0, 8), mi(1, 0, 4), PartialAlias},
		{"same root contained", mi(1, 0, 8), mi(1, 2, 2), PartialAlias},
		{"different roots", mi(1, 0, 8), mi(2, 0, 8), MayAlias},
		{"abs identical", abs(100, 4), abs(100, 4), MustAlias},
		{"abs disjoint", abs(100, 4), abs(104, 4), NoAlias},
		{"abs overlap", abs(100, 4), abs(102, 4), PartialAlias},
		{"abs vs root", abs(100, 4), mi(1, 100, 4), MayAlias},
		{"adjacent no overlap", mi(1, 0, 4), mi(1, 4, 4), NoAlias},
		{"negative offsets", mi(1, -8, 8), mi(1, 0, 8), NoAlias},
		{"negative overlap", mi(1, -4, 8), mi(1, 0, 8), PartialAlias},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.a, c.b); got != c.want {
				t.Errorf("Classify = %s, want %s", got, c.want)
			}
			if got := Classify(c.b, c.a); got != c.want {
				t.Errorf("Classify reversed = %s, want %s (must be symmetric)", got, c.want)
			}
		})
	}
}

// Property: classification agrees with concrete interval overlap for
// same-root pairs.
func TestClassifyMatchesConcreteOverlap(t *testing.T) {
	sizes := []int{1, 2, 4, 8}
	f := func(offA, offB int16, sa, sb uint8) bool {
		a := mi(3, int64(offA), sizes[int(sa)%4])
		b := mi(3, int64(offB), sizes[int(sb)%4])
		got := Classify(a, b)
		aLo, aHi := a.RootOff, a.RootOff+int64(a.Size)
		bLo, bHi := b.RootOff, b.RootOff+int64(b.Size)
		overlap := aLo < bHi && bLo < aHi
		switch got {
		case NoAlias:
			return !overlap
		case MustAlias:
			return overlap && aLo == bLo && a.Size == b.Size
		case PartialAlias:
			return overlap && !(aLo == bLo && a.Size == b.Size)
		default:
			return false // same-root pairs must never be MayAlias
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationHelpers(t *testing.T) {
	if !MustAlias.Definite() || !PartialAlias.Definite() {
		t.Error("must/partial should be definite")
	}
	if MayAlias.Definite() || NoAlias.Definite() {
		t.Error("may/no should not be definite")
	}
	for r, want := range map[Relation]string{MayAlias: "may", NoAlias: "no",
		PartialAlias: "partial", MustAlias: "must"} {
		if r.String() != want {
			t.Errorf("Relation(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestMakePair(t *testing.T) {
	if MakePair(5, 2) != (Pair{2, 5}) || MakePair(2, 5) != (Pair{2, 5}) {
		t.Error("MakePair does not normalize")
	}
}

// tableRegion builds a region with three memory ops:
//
//	op0: load  [v1+0]:8
//	op1: store [v1+0]:8  (must-alias op0)
//	op2: store [v2+0]:8  (may-alias both)
func tableRegion() *ir.Region {
	r := &ir.Region{NumVRegs: 64}
	mk := func(id int, kind ir.Kind, root ir.VReg) *ir.Op {
		o := &ir.Op{ID: id, Kind: kind, GOp: guest.Ld8, Dst: ir.NoVReg,
			Mem: &ir.MemInfo{Base: root, Size: 8, Root: root}}
		if kind == ir.Store {
			o.Srcs = []ir.VReg{3, root}
			o.SrcFloat = []bool{false, false}
		} else {
			o.Dst = 10
			o.Srcs = []ir.VReg{root}
			o.SrcFloat = []bool{false}
		}
		return o
	}
	r.Ops = []*ir.Op{mk(0, ir.Load, 1), mk(1, ir.Store, 1), mk(2, ir.Store, 2)}
	return r
}

func TestBuildTable(t *testing.T) {
	reg := tableRegion()
	tbl := BuildTable(reg, nil)
	if got := tbl.Rel(0, 1); got != MustAlias {
		t.Errorf("Rel(0,1) = %s, want must", got)
	}
	if got := tbl.Rel(0, 2); got != MayAlias {
		t.Errorf("Rel(0,2) = %s, want may", got)
	}
	if got := tbl.Rel(1, 1); got != MustAlias {
		t.Errorf("Rel(x,x) = %s, want must", got)
	}
	if got := tbl.Rel(0, 99); got != MayAlias {
		t.Errorf("Rel on unknown pair = %s, want may (conservative)", got)
	}
}

func TestClassOf(t *testing.T) {
	reg := tableRegion()
	tbl := BuildTable(reg, nil)
	if tbl.ClassOf(0) != tbl.ClassOf(1) {
		t.Error("must-alias ops 0 and 1 should share a class")
	}
	if tbl.ClassOf(0) == tbl.ClassOf(2) {
		t.Error("may-alias ops 0 and 2 should not share a class")
	}
	if tbl.ClassOf(99) != -1 {
		t.Error("ClassOf on non-mem op should be -1")
	}
}

// TestBlacklistIsClassWide: blacklisting one pair hardens every pair
// between the two must-alias classes, so re-optimization cannot
// re-speculate through a range-equivalent op.
func TestBlacklistIsClassWide(t *testing.T) {
	reg := tableRegion() // op0 load, op1 store (same class), op2 store (other root)
	bl := Blacklist{MakePair(1, 2): true}
	tbl := BuildTable(reg, bl)
	if got := tbl.Rel(1, 2); got != PartialAlias {
		t.Errorf("Rel(1,2) = %s, want partial", got)
	}
	// op0 is in op1's class: the (0,2) pair must be hardened too.
	if got := tbl.Rel(0, 2); got != PartialAlias {
		t.Errorf("Rel(0,2) = %s, want partial (class-wide blacklist)", got)
	}
}

func TestBlacklistUpgradesMayAlias(t *testing.T) {
	reg := tableRegion()
	bl := Blacklist{MakePair(0, 2): true, MakePair(0, 1): true}
	tbl := BuildTable(reg, bl)
	if got := tbl.Rel(0, 2); got != PartialAlias {
		t.Errorf("blacklisted may pair = %s, want partial", got)
	}
	// Already-definite pairs keep their stronger classification.
	if got := tbl.Rel(0, 1); got != MustAlias {
		t.Errorf("blacklisted must pair = %s, want must", got)
	}
}
