// Package aliashw models the alias-detection hardware variants the paper
// compares (Table 1): the order-based alias register queue SMARQ manages,
// an Itanium-like ALAT, a Transmeta-Efficeon-like bit-mask scheme, and a
// null detector.
package aliashw

import "fmt"

// Conflict reports a detected alias: the op that performed the check and
// the op whose alias register it conflicted with (the "origin" travels
// with the register contents, including through AMOV moves, so the runtime
// can blacklist the right pair).
type Conflict struct {
	Checker, Origin int
}

// Detector is the runtime interface the VLIW consults on every memory
// operation of a translated region.
type Detector interface {
	// OnMem is called with the executing op's identity, kind, alias
	// annotations (P/C bits, register offset, and — for the bit-mask
	// hardware — the explicit check mask), and its runtime address range
	// [lo, hi). It returns a non-nil Conflict when an alias exception
	// must abort the region. For an op with both P and C the check
	// happens before the set (§3.1).
	OnMem(opID int, isStore, p, c bool, offset int, mask uint16, lo, hi uint64) *Conflict
	// Rotate advances the queue BASE pointer (order-based only).
	Rotate(n int)
	// AMov moves the register at src to dst, or clears src when src==dst
	// (order-based only).
	AMov(src, dst int)
	// Reset clears all state (called at region commit and rollback).
	Reset()
	// Checked returns the cumulative number of register comparisons the
	// hardware has performed — the energy proxy of §2.4 ("unnecessary
	// alias detections ... cost energy"). Reset does not clear it.
	Checked() uint64
	// Name identifies the model in traces and tables.
	Name() string
}

type entry struct {
	valid   bool
	lo, hi  uint64
	byStore bool
	origin  int
	order   int
}

func overlaps(aLo, aHi, bLo, bHi uint64) bool { return aLo < bHi && bLo < aHi }

// OrderedQueue is the order-based alias register queue of §2.4/§3: N
// physical registers organized as a circular queue with a rotating BASE.
// [ORDERED-ALIAS-DETECTION-RULE]: an executing op with the C bit checks
// every valid register whose order is not earlier than its own assigned
// order; loads do not check registers set by loads.
type OrderedQueue struct {
	regs []entry
	base int
	// top is an exclusive upper bound, relative to base, on the order of
	// any valid in-window register: every valid entry e with
	// e.order >= base satisfies e.order < base+top. A check scan can
	// therefore stop at top instead of walking the whole file — scanning
	// beyond it would only visit empty or stale slots, which contribute
	// neither conflicts nor Checked() counts, so the early exit is
	// invisible in the simulated statistics.
	top     int
	checked uint64
}

// NewOrderedQueue returns a queue with n physical alias registers.
func NewOrderedQueue(n int) *OrderedQueue {
	return &OrderedQueue{regs: make([]entry, n)}
}

// Name implements Detector.
func (q *OrderedQueue) Name() string { return fmt.Sprintf("ordered-%d", len(q.regs)) }

// NumRegs returns the physical register count.
func (q *OrderedQueue) NumRegs() int { return len(q.regs) }

func (q *OrderedQueue) slot(order int) *entry { return &q.regs[order%len(q.regs)] }

// OnMem implements Detector.
func (q *OrderedQueue) OnMem(opID int, isStore, p, c bool, offset int, _ uint16, lo, hi uint64) *Conflict {
	conf, hit := q.OnMemV(opID, isStore, p, c, offset, lo, hi)
	if !hit {
		return nil
	}
	return &conf
}

// OnMemV is OnMem with the conflict returned by value: the no-conflict
// path (the overwhelmingly common one) performs no allocation, and a
// caller holding the concrete *OrderedQueue skips the interface dispatch
// entirely. The boolean reports whether a conflict was detected.
func (q *OrderedQueue) OnMemV(opID int, isStore, p, c bool, offset int, lo, hi uint64) (Conflict, bool) {
	if (p || c) && (offset < 0 || offset >= len(q.regs)) {
		panic(fmt.Sprintf("aliashw: op %d uses offset %d with %d registers", opID, offset, len(q.regs)))
	}
	if c && offset < q.top {
		// Walk physical slots incrementally (one modulo before the loop,
		// none inside) and stop at top, past which no valid in-window
		// register can live.
		n := len(q.regs)
		s := (q.base + offset) % n
		for k := offset; k < q.top; k++ {
			e := &q.regs[s]
			s++
			if s == n {
				s = 0
			}
			if !e.valid || e.order != q.base+k {
				continue
			}
			if !isStore && !e.byStore {
				continue // loads do not check loads
			}
			q.checked++
			if overlaps(lo, hi, e.lo, e.hi) {
				return Conflict{Checker: opID, Origin: e.origin}, true
			}
		}
	}
	if p {
		*q.slot(q.base + offset) = entry{
			valid: true, lo: lo, hi: hi, byStore: isStore,
			origin: opID, order: q.base + offset,
		}
		if offset+1 > q.top {
			q.top = offset + 1
		}
	}
	return Conflict{}, false
}

// Rotate implements Detector: the first n registers of the window are
// cleared and become free registers at the end of the queue (§3.2).
func (q *OrderedQueue) Rotate(n int) {
	for i := 0; i < n && i < len(q.regs); i++ {
		*q.slot(q.base + i) = entry{}
	}
	q.base += n
	// Orders are fixed at set time, so advancing BASE shifts every live
	// register's relative position down by n.
	q.top -= n
	if q.top < 0 {
		q.top = 0
	}
}

// AMov implements Detector (§3.3): the access range at offset src moves to
// offset dst; src==dst only cleans up.
func (q *OrderedQueue) AMov(src, dst int) {
	se := q.slot(q.base + src)
	e := *se
	*se = entry{}
	if src == dst || !e.valid {
		return
	}
	e.order = q.base + dst
	*q.slot(q.base + dst) = e
	if dst+1 > q.top {
		q.top = dst + 1
	}
	if q.top > len(q.regs) {
		// An out-of-window dst wraps physically but its order can never
		// match a scan position, exactly as before the top bound existed.
		q.top = len(q.regs)
	}
}

// Reset implements Detector.
func (q *OrderedQueue) Reset() {
	for i := range q.regs {
		q.regs[i] = entry{}
	}
	q.base = 0
	q.top = 0
}

// Base exposes the BASE pointer for tests.
func (q *OrderedQueue) Base() int { return q.base }

// Checked implements Detector.
func (q *OrderedQueue) Checked() uint64 { return q.checked }

// ALAT is the Itanium-like detector (§2.3): advanced loads (P-bit loads in
// our encoding) record their ranges; every store checks *all* recorded
// ranges — the source of false positives — and stores never record, so
// store-store aliases are undetectable. Entries live until the region
// commits or aborts.
type ALAT struct {
	entries []entry
	checked uint64
}

// NewALAT returns an empty ALAT.
func NewALAT() *ALAT { return &ALAT{} }

// Name implements Detector.
func (a *ALAT) Name() string { return "alat" }

// OnMem implements Detector.
func (a *ALAT) OnMem(opID int, isStore, p, c bool, offset int, _ uint16, lo, hi uint64) *Conflict {
	conf, hit := a.OnMemV(opID, isStore, p, c, lo, hi)
	if !hit {
		return nil
	}
	return &conf
}

// OnMemV is the allocation-free concrete-type form of OnMem (see
// OrderedQueue.OnMemV).
func (a *ALAT) OnMemV(opID int, isStore, p, _ bool, lo, hi uint64) (Conflict, bool) {
	if isStore {
		for _, e := range a.entries {
			a.checked++
			if overlaps(lo, hi, e.lo, e.hi) {
				return Conflict{Checker: opID, Origin: e.origin}, true
			}
		}
		return Conflict{}, false
	}
	if p {
		a.entries = append(a.entries, entry{valid: true, lo: lo, hi: hi, origin: opID})
	}
	return Conflict{}, false
}

// Rotate implements Detector (no-op: the ALAT is not an ordered queue).
func (a *ALAT) Rotate(int) {}

// AMov implements Detector (no-op).
func (a *ALAT) AMov(int, int) {}

// Reset implements Detector.
func (a *ALAT) Reset() { a.entries = a.entries[:0] }

// Checked implements Detector.
func (a *ALAT) Checked() uint64 { return a.checked }

// None is the null detector: no alias hardware. The scheduler must not
// have speculated.
type None struct{}

// Name implements Detector.
func (None) Name() string { return "none" }

// OnMem implements Detector.
func (None) OnMem(int, bool, bool, bool, int, uint16, uint64, uint64) *Conflict { return nil }

// Rotate implements Detector.
func (None) Rotate(int) {}

// AMov implements Detector.
func (None) AMov(int, int) {}

// Reset implements Detector.
func (None) Reset() {}

// Checked implements Detector.
func (None) Checked() uint64 { return 0 }
