package aliashw

import "testing"

// TestOrderedRule verifies [ORDERED-ALIAS-DETECTION-RULE] piece by piece.
func TestOrderedRule(t *testing.T) {
	q := NewOrderedQueue(8)

	// A P-only load records its range; a later C store at an earlier-or-
	// equal offset detects the overlap.
	if c := q.OnMem(1, false, true, false, 0, 0, 100, 108); c != nil {
		t.Fatal("set raised a conflict")
	}
	if c := q.OnMem(2, true, false, true, 0, 0, 104, 112); c == nil {
		t.Fatal("overlapping store missed the load's register")
	} else if c.Checker != 2 || c.Origin != 1 {
		t.Errorf("conflict = %+v, want checker 2 origin 1", c)
	}
}

func TestOrderedNoFalseCheckOnEarlierRegisters(t *testing.T) {
	q := NewOrderedQueue(8)
	// Register at order 0 is set; a checker with offset 1 must NOT see it
	// ("the alias register allocated to X is not later than the alias
	// register allocated to Y").
	q.OnMem(1, false, true, false, 0, 0, 100, 108)
	if c := q.OnMem(2, true, false, true, 1, 0, 100, 108); c != nil {
		t.Errorf("checker at offset 1 falsely checked register 0: %+v", c)
	}
	// At offset 0 it must see it.
	if c := q.OnMem(3, true, false, true, 0, 0, 100, 108); c == nil {
		t.Error("checker at offset 0 missed register 0")
	}
}

func TestOrderedLoadsDoNotCheckLoads(t *testing.T) {
	q := NewOrderedQueue(8)
	q.OnMem(1, false, true, false, 0, 0, 100, 108) // load sets reg 0
	if c := q.OnMem(2, false, false, true, 0, 0, 100, 108); c != nil {
		t.Error("load checked a load-set register")
	}
	// But a store-set register is checked by loads.
	q.Reset()
	q.OnMem(1, true, true, false, 0, 0, 100, 108) // store sets reg 0
	if c := q.OnMem(2, false, false, true, 0, 0, 100, 108); c == nil {
		t.Error("load missed a store-set register")
	}
}

func TestOrderedCheckBeforeSet(t *testing.T) {
	q := NewOrderedQueue(8)
	// An op with both P and C must not detect itself, but must detect an
	// earlier conflicting entry.
	q.OnMem(1, true, true, false, 0, 0, 100, 108)
	if c := q.OnMem(2, true, true, true, 0, 0, 100, 108); c == nil {
		t.Fatal("P+C op missed the earlier store")
	}
	q.Reset()
	if c := q.OnMem(3, true, true, true, 0, 0, 100, 108); c != nil {
		t.Error("P+C op detected itself")
	}
}

func TestOrderedNonOverlappingRangesSilent(t *testing.T) {
	q := NewOrderedQueue(8)
	q.OnMem(1, false, true, false, 0, 0, 100, 108)
	if c := q.OnMem(2, true, false, true, 0, 0, 108, 116); c != nil {
		t.Error("adjacent non-overlapping ranges raised a conflict")
	}
}

func TestOrderedRotation(t *testing.T) {
	q := NewOrderedQueue(4)
	q.OnMem(1, false, true, false, 0, 0, 100, 108)
	q.Rotate(1)
	if q.Base() != 1 {
		t.Fatalf("base = %d, want 1", q.Base())
	}
	// The rotated-out register is cleared: a checker at offset 0 (order 1)
	// must not see the old entry, and the physical slot is reusable.
	if c := q.OnMem(2, true, false, true, 0, 0, 100, 108); c != nil {
		t.Error("rotated-out register still visible")
	}
	// Reuse the freed physical register: set at offset 3 (order 4 = slot 0).
	q.OnMem(3, false, true, false, 3, 0, 200, 208)
	if c := q.OnMem(4, true, false, true, 0, 0, 200, 208); c == nil {
		t.Error("reused physical register not visible at its new order")
	}
}

func TestOrderedRotationWrapsManyTimes(t *testing.T) {
	q := NewOrderedQueue(2)
	for i := 0; i < 10; i++ {
		q.OnMem(i, false, true, false, 0, 0, uint64(i*16), uint64(i*16+8))
		if c := q.OnMem(100+i, true, false, true, 0, 0, uint64(i*16), uint64(i*16+8)); c == nil {
			t.Fatalf("iteration %d: conflict missed after rotations", i)
		}
		// The conflict origin must be the current setter, not a stale one.
		q.Rotate(1)
	}
}

func TestOrderedAMovMove(t *testing.T) {
	q := NewOrderedQueue(8)
	q.OnMem(1, true, true, false, 2, 0, 100, 108) // entry at order 2
	q.AMov(2, 0)                                  // move to order 0
	// Checker at offset 1 no longer sees it (order 0 < 1).
	if c := q.OnMem(2, true, false, true, 1, 0, 100, 108); c != nil {
		t.Error("moved register still visible at old order")
	}
	// Checker at offset 0 sees it, with the ORIGINAL origin.
	if c := q.OnMem(3, true, false, true, 0, 0, 100, 108); c == nil {
		t.Error("moved register invisible at new order")
	} else if c.Origin != 1 {
		t.Errorf("moved entry origin = %d, want 1", c.Origin)
	}
}

func TestOrderedAMovCleanup(t *testing.T) {
	q := NewOrderedQueue(8)
	q.OnMem(1, true, true, false, 0, 0, 100, 108)
	q.AMov(0, 0)
	if c := q.OnMem(2, true, false, true, 0, 0, 100, 108); c != nil {
		t.Error("cleaned register still visible")
	}
}

func TestOrderedAMovInvalidSource(t *testing.T) {
	q := NewOrderedQueue(8)
	q.AMov(3, 1) // nothing there: must be a harmless no-op
	if c := q.OnMem(1, true, false, true, 0, 0, 0, 8); c != nil {
		t.Error("AMov of empty register materialized an entry")
	}
}

func TestOrderedOffsetOutOfRangePanics(t *testing.T) {
	q := NewOrderedQueue(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range offset did not panic")
		}
	}()
	q.OnMem(1, false, true, false, 4, 0, 0, 8)
}

func TestOrderedReset(t *testing.T) {
	q := NewOrderedQueue(4)
	q.OnMem(1, true, true, false, 0, 0, 100, 108)
	q.Rotate(2)
	q.Reset()
	if q.Base() != 0 {
		t.Error("Reset did not clear base")
	}
	if c := q.OnMem(2, true, false, true, 0, 0, 100, 108); c != nil {
		t.Error("Reset did not clear registers")
	}
}

func TestALATStoreChecksEverything(t *testing.T) {
	a := NewALAT()
	a.OnMem(1, false, true, false, 0, 0, 100, 108) // advanced load
	a.OnMem(2, false, true, false, 1, 0, 200, 208) // another
	// A store overlapping EITHER traps — even one the compiler never
	// reordered against (the false-positive source, §2.3).
	if c := a.OnMem(3, true, false, false, -1, 0, 200, 208); c == nil {
		t.Fatal("ALAT store missed an entry")
	} else if c.Origin != 2 {
		t.Errorf("origin = %d, want 2", c.Origin)
	}
}

func TestALATCannotDetectStoreStore(t *testing.T) {
	a := NewALAT()
	// Stores never record entries, so a second aliasing store is silent.
	a.OnMem(1, true, true, true, 0, 0, 100, 108)
	if c := a.OnMem(2, true, true, true, 0, 0, 100, 108); c != nil {
		t.Error("ALAT detected a store-store alias (it must not be able to)")
	}
}

func TestALATLoadsNeverCheck(t *testing.T) {
	a := NewALAT()
	a.OnMem(1, false, true, false, 0, 0, 100, 108)
	if c := a.OnMem(2, false, false, true, 0, 0, 100, 108); c != nil {
		t.Error("ALAT load performed a check")
	}
}

func TestALATReset(t *testing.T) {
	a := NewALAT()
	a.OnMem(1, false, true, false, 0, 0, 100, 108)
	a.Reset()
	if c := a.OnMem(2, true, false, false, -1, 0, 100, 108); c != nil {
		t.Error("Reset did not clear ALAT entries")
	}
}

func TestNoneNeverConflicts(t *testing.T) {
	var n None
	if c := n.OnMem(1, true, true, true, 0, 0, 0, 8); c != nil {
		t.Error("None detector raised a conflict")
	}
	n.Rotate(3)
	n.AMov(0, 1)
	n.Reset()
}

func TestBitmask(t *testing.T) {
	b := NewBitmask(20)
	if b.NumRegs() != MaxBitmaskRegs {
		t.Errorf("register count %d, want capped at %d", b.NumRegs(), MaxBitmaskRegs)
	}
	b.Set(1, false, 0, 100, 108)
	b.Set(2, true, 3, 200, 208)
	// Mask selecting only register 3: register 0's overlap is invisible —
	// the precision that prevents false positives.
	if c := b.Check(5, 1<<3, 100, 108); c != nil {
		t.Error("masked-out register was checked")
	}
	if c := b.Check(5, 1<<3, 200, 208); c == nil {
		t.Error("selected register missed")
	}
	// Store-store detection works (Table 1: Efficeon detects aliases
	// between stores).
	if c := b.Check(6, 1<<3, 204, 212); c == nil {
		t.Error("store-set register not detected")
	}
	b.Reset()
	if c := b.Check(7, 0xFFFF>>1, 0, 1<<30); c != nil {
		t.Error("Reset did not clear registers")
	}
}

func TestDetectorNames(t *testing.T) {
	if NewOrderedQueue(64).Name() != "ordered-64" {
		t.Error("ordered queue name wrong")
	}
	if NewALAT().Name() != "alat" {
		t.Error("alat name wrong")
	}
	if (None{}).Name() != "none" {
		t.Error("none name wrong")
	}
	if NewBitmask(8).Name() != "bitmask" {
		t.Error("bitmask name wrong")
	}
}

// TestCheckedCounters: exact comparison counts on small scenarios.
func TestCheckedCounters(t *testing.T) {
	q := NewOrderedQueue(8)
	q.OnMem(1, false, true, false, 0, 0, 100, 108) // set, no checks
	if q.Checked() != 0 {
		t.Errorf("set performed %d comparisons", q.Checked())
	}
	q.OnMem(2, false, true, false, 1, 0, 200, 208)
	q.OnMem(3, true, false, true, 0, 0, 300, 308) // checks both live entries
	if q.Checked() != 2 {
		t.Errorf("store checked %d entries, want 2", q.Checked())
	}
	// A load checker skips load-set entries without counting them.
	q.OnMem(4, false, false, true, 0, 0, 300, 308)
	if q.Checked() != 2 {
		t.Errorf("load checker counted load entries: %d", q.Checked())
	}
	q.Reset()
	if q.Checked() != 2 {
		t.Error("Reset cleared the cumulative counter")
	}

	a := NewALAT()
	a.OnMem(1, false, true, false, 0, 0, 100, 108)
	a.OnMem(2, false, true, false, 0, 0, 200, 208)
	a.OnMem(3, true, false, false, -1, 0, 900, 908)
	if a.Checked() != 2 {
		t.Errorf("ALAT store scanned %d entries, want 2", a.Checked())
	}

	b := NewBitmask(8)
	b.OnMem(1, false, true, false, 0, 0, 100, 108)
	b.OnMem(2, false, true, false, 3, 0, 200, 208)
	b.OnMem(3, true, false, true, 0, 1<<3, 900, 908) // mask selects reg 3 only
	if b.Checked() != 1 {
		t.Errorf("bitmask checked %d registers, want 1 (mask-selected)", b.Checked())
	}

	if (None{}).Checked() != 0 {
		t.Error("None detector counted checks")
	}
}
