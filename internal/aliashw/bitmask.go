package aliashw

// Bitmask is the Transmeta-Efficeon-like scheme (§2.2): each memory
// operation may set one alias register and name the individual registers
// it checks through a bit-mask encoded in the instruction. The encoding
// space bounds the register count — Efficeon cannot support more than 15
// registers — which is the scalability limit Table 1 reports.
//
// The dynamic optimization pipeline in this repository drives the ordered
// queue; Bitmask exists for the Table 1 behavioural probes and as a
// reference model: precise (no false positives) and store-capable, but not
// scalable.
type Bitmask struct {
	regs    []entry
	checked uint64
}

// MaxBitmaskRegs is the encoding-space limit on the register file size.
const MaxBitmaskRegs = 15

// NewBitmask returns a bit-mask detector with n registers, capped at the
// encoding limit.
func NewBitmask(n int) *Bitmask {
	if n > MaxBitmaskRegs {
		n = MaxBitmaskRegs
	}
	return &Bitmask{regs: make([]entry, n)}
}

// Name identifies the model.
func (b *Bitmask) Name() string { return "bitmask" }

// NumRegs returns the register count.
func (b *Bitmask) NumRegs() int { return len(b.regs) }

// Set records the executing op's range in register r.
func (b *Bitmask) Set(opID int, isStore bool, r int, lo, hi uint64) {
	b.regs[r] = entry{valid: true, lo: lo, hi: hi, byStore: isStore, origin: opID}
}

// Check tests the registers selected by mask against [lo, hi) and returns
// a conflict if any overlaps. Only the registers named in the mask are
// examined — the precision Efficeon buys with encoding bits.
func (b *Bitmask) Check(opID int, mask uint16, lo, hi uint64) *Conflict {
	conf, hit := b.OnMemV(opID, false, false, true, 0, mask, lo, hi)
	if !hit {
		return nil
	}
	return &conf
}

// Reset clears all registers.
func (b *Bitmask) Reset() {
	for i := range b.regs {
		b.regs[i] = entry{}
	}
}

// OnMem implements Detector: a C op checks the registers its mask names
// (check before set), then a P op records its range in register offset.
func (b *Bitmask) OnMem(opID int, isStore, p, c bool, offset int, mask uint16, lo, hi uint64) *Conflict {
	conf, hit := b.OnMemV(opID, isStore, p, c, offset, mask, lo, hi)
	if !hit {
		return nil
	}
	return &conf
}

// OnMemV is the allocation-free concrete-type form of OnMem (see
// OrderedQueue.OnMemV).
func (b *Bitmask) OnMemV(opID int, isStore, p, c bool, offset int, mask uint16, lo, hi uint64) (Conflict, bool) {
	if c {
		for r := 0; r < len(b.regs); r++ {
			if mask&(1<<uint(r)) == 0 {
				continue
			}
			e := b.regs[r]
			if !e.valid {
				continue
			}
			b.checked++
			if overlaps(lo, hi, e.lo, e.hi) {
				return Conflict{Checker: opID, Origin: e.origin}, true
			}
		}
	}
	if p {
		if offset < 0 || offset >= len(b.regs) {
			panic("aliashw: bitmask set register out of range")
		}
		b.Set(opID, isStore, offset, lo, hi)
	}
	return Conflict{}, false
}

// Rotate implements Detector (no-op: the bit-mask file does not rotate).
func (b *Bitmask) Rotate(int) {}

// AMov implements Detector (no-op).
func (b *Bitmask) AMov(int, int) {}

// Checked implements Detector.
func (b *Bitmask) Checked() uint64 { return b.checked }
