package aliashw

import (
	"math/rand"
	"testing"
)

// specQueue is a literal transcription of [ORDERED-ALIAS-DETECTION-RULE]
// and §3.2/§3.3: it keeps every live register in a map keyed by absolute
// order and applies the rule text directly, with none of OrderedQueue's
// circular-buffer machinery. The model-based test below drives both with
// random operation streams and requires identical observable behaviour.
type specQueue struct {
	n       int
	base    int
	entries map[int]specEntry // absolute order -> entry
}

type specEntry struct {
	lo, hi  uint64
	byStore bool
	origin  int
}

func newSpecQueue(n int) *specQueue {
	return &specQueue{n: n, entries: map[int]specEntry{}}
}

func (s *specQueue) OnMem(opID int, isStore, p, c bool, offset int, _ uint16, lo, hi uint64) *Conflict {
	if c {
		// "X checks Y iff ... the alias register allocated to X is not
		// later than the alias register allocated to Y": scan every live
		// register whose order >= base+offset, earliest first for a
		// deterministic witness.
		var best *Conflict
		bestOrder := 0
		for order, e := range s.entries {
			if order < s.base+offset {
				continue
			}
			if !isStore && !e.byStore {
				continue // loads do not check load-set registers
			}
			if lo < e.hi && e.lo < hi {
				if best == nil || order < bestOrder {
					best = &Conflict{Checker: opID, Origin: e.origin}
					bestOrder = order
				}
			}
		}
		if best != nil {
			return best
		}
	}
	if p {
		s.entries[s.base+offset] = specEntry{lo: lo, hi: hi, byStore: isStore, origin: opID}
	}
	return nil
}

func (s *specQueue) Rotate(n int) {
	for i := 0; i < n; i++ {
		delete(s.entries, s.base+i)
	}
	s.base += n
}

func (s *specQueue) AMov(src, dst int) {
	e, ok := s.entries[s.base+src]
	delete(s.entries, s.base+src)
	if ok && src != dst {
		s.entries[s.base+dst] = e
	}
}

func (s *specQueue) Reset() {
	s.base = 0
	s.entries = map[int]specEntry{}
}

// maxLiveOffset returns the highest live offset, for keeping the random
// stream within the physical window.
func (s *specQueue) maxLiveOffset() int {
	max := -1
	for order := range s.entries {
		if off := order - s.base; off > max {
			max = off
		}
	}
	return max
}

// TestOrderedQueueMatchesSpec drives OrderedQueue and the literal-rule
// model with identical random streams of set/check/rotate/AMov/reset
// operations and demands byte-identical conflict reports.
//
// The stream respects the software contract the allocator guarantees
// (offsets < N; rotation never past a live register that will still be
// used — here approximated by rotating at most past the lowest offsets),
// which is exactly the regime the hardware is specified for.
func TestOrderedQueueMatchesSpec(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64} {
		rng := rand.New(rand.NewSource(int64(77 + n)))
		q := NewOrderedQueue(n)
		s := newSpecQueue(n)
		for step := 0; step < 20000; step++ {
			switch rng.Intn(10) {
			case 0: // rotate: never strand the window beyond the file
				amt := rng.Intn(3)
				live := s.maxLiveOffset()
				if live >= 0 && amt > live+1 {
					amt = live + 1
				}
				q.Rotate(amt)
				s.Rotate(amt)
			case 1: // amov
				src, dst := rng.Intn(n), rng.Intn(n)
				q.AMov(src, dst)
				s.AMov(src, dst)
			case 2: // reset (region boundary)
				q.Reset()
				s.Reset()
			default: // memory op
				isStore := rng.Intn(2) == 0
				p := rng.Intn(2) == 0
				c := rng.Intn(2) == 0
				off := rng.Intn(n)
				lo := uint64(rng.Intn(64) * 4)
				hi := lo + uint64(4+rng.Intn(8))
				got := q.OnMem(step, isStore, p, c, off, 0, lo, hi)
				want := s.OnMem(step, isStore, p, c, off, 0, lo, hi)
				if (got == nil) != (want == nil) {
					t.Fatalf("n=%d step %d: conflict mismatch: impl=%v spec=%v", n, step, got, want)
				}
				if got != nil && got.Origin != want.Origin {
					// Different witnesses are acceptable only if both are
					// genuine; the spec picks the earliest order, the
					// implementation scans from the offset upward — they
					// must agree.
					t.Fatalf("n=%d step %d: origin mismatch: impl=%d spec=%d", n, step, got.Origin, want.Origin)
				}
			}
		}
	}
}

// TestOrderedQueueSpecWindowInvariant: after any legal stream, no live
// register sits outside [base, base+n) in the spec model — confirming the
// stream generator respects the hardware contract (otherwise the
// equivalence above would be vacuous for the wraparound cases).
func TestOrderedQueueSpecWindowInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4
	s := newSpecQueue(n)
	for step := 0; step < 5000; step++ {
		switch rng.Intn(6) {
		case 0:
			amt := rng.Intn(2)
			s.Rotate(amt)
		case 1:
			s.AMov(rng.Intn(n), rng.Intn(n))
		default:
			lo := uint64(rng.Intn(32) * 8)
			s.OnMem(step, true, true, false, rng.Intn(n), 0, lo, lo+8)
		}
		for order := range s.entries {
			if order < s.base || order >= s.base+n {
				t.Fatalf("step %d: live order %d outside window [%d,%d)", step, order, s.base, s.base+n)
			}
		}
	}
}

// specBitmask is the literal model of the Efficeon scheme: named
// registers, explicit masks.
type specBitmask struct {
	regs map[int]specEntry
}

func (s *specBitmask) OnMem(opID int, isStore, p, c bool, offset int, mask uint16, lo, hi uint64) *Conflict {
	if c {
		var best *Conflict
		bestReg := -1
		for r, e := range s.regs {
			if mask&(1<<uint(r)) == 0 {
				continue
			}
			if lo < e.hi && e.lo < hi {
				if best == nil || r < bestReg {
					best = &Conflict{Checker: opID, Origin: e.origin}
					bestReg = r
				}
			}
		}
		if best != nil {
			return best
		}
	}
	if p {
		s.regs[offset] = specEntry{lo: lo, hi: hi, byStore: isStore, origin: opID}
	}
	return nil
}

// TestBitmaskMatchesSpec drives the Bitmask detector and its literal model
// with identical random streams.
func TestBitmaskMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	b := NewBitmask(15)
	s := &specBitmask{regs: map[int]specEntry{}}
	for step := 0; step < 20000; step++ {
		if rng.Intn(20) == 0 {
			b.Reset()
			s.regs = map[int]specEntry{}
			continue
		}
		isStore := rng.Intn(2) == 0
		p := rng.Intn(2) == 0
		c := rng.Intn(2) == 0
		off := rng.Intn(15)
		mask := uint16(rng.Intn(1 << 15))
		lo := uint64(rng.Intn(64) * 4)
		hi := lo + uint64(4+rng.Intn(8))
		got := b.OnMem(step, isStore, p, c, off, mask, lo, hi)
		want := s.OnMem(step, isStore, p, c, off, mask, lo, hi)
		if (got == nil) != (want == nil) {
			t.Fatalf("step %d: conflict mismatch: impl=%v spec=%v", step, got, want)
		}
		if got != nil && got.Origin != want.Origin {
			t.Fatalf("step %d: origin mismatch: impl=%d spec=%d", step, got.Origin, want.Origin)
		}
	}
}
