// Package atomic implements the atomic-region hardware of Figure 1: a
// checkpoint of the guest architectural state plus a memory undo log, so a
// translated region either commits completely or rolls back to its entry.
//
// Stores write through and record the overwritten bytes. Write-through
// gives loads scheduled-order visibility — a load that executes after a
// store in the optimized schedule sees that store's value, and a load
// hoisted above a store sees the old value, which is exactly the
// speculation the alias hardware polices. Rollback replays the undo log in
// reverse and restores the register checkpoint.
//
// A Region is single-use: Commit or Rollback finishes it. Reuse would be
// a runtime bug (a store after commit would append to a dead undo log
// with no checkpoint to recover to), so a finished region fails loudly —
// Store returns ErrFinished and Commit/Rollback panic.
//
// A finished Region may, however, be re-armed with Begin: the runtime
// keeps one Region per system and recycles its undo-log storage and
// checkpoint across region entries, so the steady-state execute path
// allocates nothing. Re-arming does not weaken the single-use contract —
// between one Begin and the next Commit/Rollback the region behaves
// exactly like a freshly allocated one.
package atomic

import (
	"errors"

	"smarq/internal/guest"
)

// ErrFinished reports a Store on a region that has already committed or
// rolled back.
var ErrFinished = errors.New("atomic: store on a finished region")

type undoRec struct {
	addr uint64
	size int
	old  uint64
}

// Region is one active atomic region. The zero value is a finished region;
// arm it with Begin.
type Region struct {
	st  *guest.State
	mem *guest.Memory
	// checkpoint is held by value so re-arming a pooled Region does not
	// allocate a fresh guest.State per entry.
	checkpoint guest.State
	undo       []undoRec
	finished   bool
}

// Begin opens a new atomic region: the register state is checkpointed now.
// The returned region is heap-allocated; the runtime's pooled path re-arms
// an existing Region with (*Region).Begin instead.
func Begin(st *guest.State, mem *guest.Memory) *Region {
	r := &Region{}
	r.Begin(st, mem)
	return r
}

// Begin (re-)arms r over st and mem, checkpointing the register state.
// The previous transaction must be finished (or r never used); re-arming
// an active region would silently discard its undo log, so it panics.
// Undo-log capacity from earlier transactions is retained.
func (r *Region) Begin(st *guest.State, mem *guest.Memory) {
	if r.st != nil && !r.finished {
		panic("atomic: Begin on an active region")
	}
	r.st = st
	r.mem = mem
	r.checkpoint = *st
	r.undo = r.undo[:0]
	r.finished = false
}

// Finished reports whether the region has committed or rolled back. The
// zero Region is finished.
func (r *Region) Finished() bool { return r.st == nil || r.finished }

// Store performs a speculative store: the old bytes are logged, then the
// new value is written through. On a finished region it writes nothing
// and returns ErrFinished.
func (r *Region) Store(addr uint64, size int, val uint64) error {
	if r.Finished() {
		return ErrFinished
	}
	old, err := r.mem.Load(addr, size)
	if err != nil {
		return err
	}
	if err := r.mem.Store(addr, size, val); err != nil {
		return err
	}
	r.undo = append(r.undo, undoRec{addr: addr, size: size, old: old})
	return nil
}

// StoreCount reports how many store records the region's undo log has
// buffered (tests and stats).
func (r *Region) StoreCount() int { return len(r.undo) }

// Commit makes the region's effects permanent and finishes the region.
// Committing a finished region is a runtime bug and panics.
func (r *Region) Commit() {
	if r.Finished() {
		panic("atomic: Commit on a finished region")
	}
	r.finished = true
	r.undo = r.undo[:0]
}

// Rollback undoes every store in reverse order, restores the register
// checkpoint, and finishes the region. Rolling back a finished region is
// a runtime bug and panics.
func (r *Region) Rollback() {
	if r.Finished() {
		panic("atomic: Rollback on a finished region")
	}
	r.finished = true
	for i := len(r.undo) - 1; i >= 0; i-- {
		u := r.undo[i]
		// The undo write cannot fail: the original store succeeded.
		if err := r.mem.Store(u.addr, u.size, u.old); err != nil {
			panic("atomic: undo of a committed store failed: " + err.Error())
		}
	}
	r.undo = r.undo[:0]
	*r.st = r.checkpoint
}
