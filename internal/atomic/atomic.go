// Package atomic implements the atomic-region hardware of Figure 1: a
// checkpoint of the guest architectural state plus a memory undo log, so a
// translated region either commits completely or rolls back to its entry.
//
// Stores write through and record the overwritten bytes. Write-through
// gives loads scheduled-order visibility — a load that executes after a
// store in the optimized schedule sees that store's value, and a load
// hoisted above a store sees the old value, which is exactly the
// speculation the alias hardware polices. Rollback replays the undo log in
// reverse and restores the register checkpoint.
package atomic

import "smarq/internal/guest"

type undoRec struct {
	addr uint64
	size int
	old  uint64
}

// Region is one active atomic region.
type Region struct {
	st         *guest.State
	mem        *guest.Memory
	checkpoint *guest.State
	undo       []undoRec
}

// Begin opens an atomic region: the register state is checkpointed now.
func Begin(st *guest.State, mem *guest.Memory) *Region {
	return &Region{st: st, mem: mem, checkpoint: st.Clone()}
}

// Store performs a speculative store: the old bytes are logged, then the
// new value is written through.
func (r *Region) Store(addr uint64, size int, val uint64) error {
	old, err := r.mem.Load(addr, size)
	if err != nil {
		return err
	}
	if err := r.mem.Store(addr, size, val); err != nil {
		return err
	}
	r.undo = append(r.undo, undoRec{addr: addr, size: size, old: old})
	return nil
}

// StoreBytes reports how many stores the region has buffered (tests and
// stats).
func (r *Region) StoreBytes() int { return len(r.undo) }

// Commit makes the region's effects permanent and invalidates the region.
func (r *Region) Commit() {
	r.undo = nil
	r.checkpoint = nil
}

// Rollback undoes every store in reverse order and restores the register
// checkpoint.
func (r *Region) Rollback() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		u := r.undo[i]
		// The undo write cannot fail: the original store succeeded.
		if err := r.mem.Store(u.addr, u.size, u.old); err != nil {
			panic("atomic: undo of a committed store failed: " + err.Error())
		}
	}
	r.undo = nil
	*r.st = *r.checkpoint
	r.checkpoint = nil
}
