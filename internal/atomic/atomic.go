// Package atomic implements the atomic-region hardware of Figure 1: a
// checkpoint of the guest architectural state plus a memory undo log, so a
// translated region either commits completely or rolls back to its entry.
//
// Stores write through and record the overwritten bytes. Write-through
// gives loads scheduled-order visibility — a load that executes after a
// store in the optimized schedule sees that store's value, and a load
// hoisted above a store sees the old value, which is exactly the
// speculation the alias hardware polices. Rollback replays the undo log in
// reverse and restores the register checkpoint.
//
// A Region is single-use: Commit or Rollback finishes it. Reuse would be
// a runtime bug (a store after commit would append to a dead undo log
// with no checkpoint to recover to), so a finished region fails loudly —
// Store returns ErrFinished and Commit/Rollback panic.
package atomic

import (
	"errors"

	"smarq/internal/guest"
)

// ErrFinished reports a Store on a region that has already committed or
// rolled back.
var ErrFinished = errors.New("atomic: store on a finished region")

type undoRec struct {
	addr uint64
	size int
	old  uint64
}

// Region is one active atomic region.
type Region struct {
	st         *guest.State
	mem        *guest.Memory
	checkpoint *guest.State
	undo       []undoRec
	finished   bool
}

// Begin opens an atomic region: the register state is checkpointed now.
func Begin(st *guest.State, mem *guest.Memory) *Region {
	return &Region{st: st, mem: mem, checkpoint: st.Clone()}
}

// Finished reports whether the region has committed or rolled back.
func (r *Region) Finished() bool { return r.finished }

// Store performs a speculative store: the old bytes are logged, then the
// new value is written through. On a finished region it writes nothing
// and returns ErrFinished.
func (r *Region) Store(addr uint64, size int, val uint64) error {
	if r.finished {
		return ErrFinished
	}
	old, err := r.mem.Load(addr, size)
	if err != nil {
		return err
	}
	if err := r.mem.Store(addr, size, val); err != nil {
		return err
	}
	r.undo = append(r.undo, undoRec{addr: addr, size: size, old: old})
	return nil
}

// StoreBytes reports how many stores the region has buffered (tests and
// stats).
func (r *Region) StoreBytes() int { return len(r.undo) }

// Commit makes the region's effects permanent and finishes the region.
// Committing a finished region is a runtime bug and panics.
func (r *Region) Commit() {
	if r.finished {
		panic("atomic: Commit on a finished region")
	}
	r.finished = true
	r.undo = nil
	r.checkpoint = nil
}

// Rollback undoes every store in reverse order, restores the register
// checkpoint, and finishes the region. Rolling back a finished region is
// a runtime bug and panics.
func (r *Region) Rollback() {
	if r.finished {
		panic("atomic: Rollback on a finished region")
	}
	r.finished = true
	for i := len(r.undo) - 1; i >= 0; i-- {
		u := r.undo[i]
		// The undo write cannot fail: the original store succeeded.
		if err := r.mem.Store(u.addr, u.size, u.old); err != nil {
			panic("atomic: undo of a committed store failed: " + err.Error())
		}
	}
	r.undo = nil
	*r.st = *r.checkpoint
	r.checkpoint = nil
}
