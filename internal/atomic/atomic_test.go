package atomic

import (
	"testing"

	"smarq/internal/guest"
)

func TestCommitKeepsEffects(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	st.R[1] = 7
	r := Begin(st, mem)
	if err := r.Store(8, 8, 42); err != nil {
		t.Fatal(err)
	}
	st.R[1] = 9
	r.Commit()
	v, _ := mem.Load(8, 8)
	if v != 42 {
		t.Errorf("memory = %d after commit, want 42", v)
	}
	if st.R[1] != 9 {
		t.Errorf("r1 = %d after commit, want 9", st.R[1])
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	st.R[1] = 7
	st.F[2] = 1.5
	if err := mem.Store(8, 8, 11); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	st.R[1] = 100
	st.F[2] = -3
	if err := r.Store(8, 8, 42); err != nil {
		t.Fatal(err)
	}
	if err := r.Store(16, 4, 5); err != nil {
		t.Fatal(err)
	}
	r.Rollback()
	v, _ := mem.Load(8, 8)
	if v != 11 {
		t.Errorf("memory[8] = %d after rollback, want 11", v)
	}
	v, _ = mem.Load(16, 4)
	if v != 0 {
		t.Errorf("memory[16] = %d after rollback, want 0", v)
	}
	if st.R[1] != 7 || st.F[2] != 1.5 {
		t.Errorf("state after rollback = r1:%d f2:%v, want 7/1.5", st.R[1], st.F[2])
	}
}

func TestStoresVisibleWithinRegion(t *testing.T) {
	// Write-through: a later load (in scheduled order) sees the value.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	r := Begin(st, mem)
	if err := r.Store(0, 8, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := mem.Load(0, 8)
	if v != 99 {
		t.Errorf("in-region visibility: got %d, want 99", v)
	}
	r.Rollback()
}

func TestRollbackReverseOrder(t *testing.T) {
	// Two stores to the same location: rollback must restore the ORIGINAL
	// value, not the intermediate one.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	if err := mem.Store(0, 8, 1); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	_ = r.Store(0, 8, 2)
	_ = r.Store(0, 8, 3)
	r.Rollback()
	v, _ := mem.Load(0, 8)
	if v != 1 {
		t.Errorf("memory = %d after rollback of two stores, want 1", v)
	}
}

func TestStoreFaultDoesNotLog(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(16)
	r := Begin(st, mem)
	if err := r.Store(100, 8, 1); err == nil {
		t.Fatal("out-of-range store succeeded")
	}
	if r.StoreCount() != 0 {
		t.Error("failed store left an undo record")
	}
	r.Rollback()
}

func TestMixedSizeStoresRollBack(t *testing.T) {
	// Overlapping stores of different widths: the byte-exact undo must
	// restore the original contents even when a narrow store punched into
	// the middle of a wide one.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	if err := mem.Store(0, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	_ = r.Store(0, 8, 0xaaaaaaaaaaaaaaaa)
	_ = r.Store(2, 2, 0xbeef)
	_ = r.Store(3, 1, 0x7)
	_ = r.Store(0, 4, 0xcafef00d)
	r.Rollback()
	v, _ := mem.Load(0, 8)
	if v != 0x1122334455667788 {
		t.Errorf("memory = %#x after mixed-size rollback, want 0x1122334455667788", v)
	}
}

func TestStoreErrorMidRegionThenRollback(t *testing.T) {
	// A faulting store mid-region must leave earlier stores rollbackable
	// and the failed address untouched.
	st := &guest.State{}
	mem := guest.NewMemory(32)
	if err := mem.Store(0, 8, 5); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	if err := r.Store(0, 8, 6); err != nil {
		t.Fatal(err)
	}
	if err := r.Store(100, 8, 7); err == nil {
		t.Fatal("out-of-range store succeeded")
	}
	if r.StoreCount() != 1 {
		t.Fatalf("undo log holds %d records after one good + one failed store, want 1", r.StoreCount())
	}
	r.Rollback()
	v, _ := mem.Load(0, 8)
	if v != 5 {
		t.Errorf("memory = %d after rollback, want 5", v)
	}
}

func TestStoreAfterFinishFailsLoudly(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)

	r := Begin(st, mem)
	r.Commit()
	if !r.Finished() {
		t.Fatal("committed region not Finished")
	}
	if err := r.Store(0, 8, 1); err != ErrFinished {
		t.Errorf("Store after Commit = %v, want ErrFinished", err)
	}
	if v, _ := mem.Load(0, 8); v != 0 {
		t.Error("Store after Commit wrote memory")
	}

	r = Begin(st, mem)
	r.Rollback()
	if err := r.Store(0, 8, 1); err != ErrFinished {
		t.Errorf("Store after Rollback = %v, want ErrFinished", err)
	}
}

func TestBeginReArmReuse(t *testing.T) {
	// A pooled Region re-armed with (*Region).Begin must behave exactly
	// like a fresh one across commit and rollback cycles.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	var r Region

	// Cycle 1: commit.
	st.R[1] = 7
	r.Begin(st, mem)
	if err := r.Store(8, 8, 42); err != nil {
		t.Fatal(err)
	}
	st.R[1] = 9
	r.Commit()
	if v, _ := mem.Load(8, 8); v != 42 {
		t.Errorf("memory = %d after commit, want 42", v)
	}

	// Cycle 2: rollback on the same Region value must restore the state
	// at the second Begin, not the first.
	st.R[1] = 20
	st.F[3] = 2.5
	r.Begin(st, mem)
	st.R[1] = 21
	st.F[3] = -1
	if err := r.Store(8, 8, 99); err != nil {
		t.Fatal(err)
	}
	if err := r.Store(16, 4, 5); err != nil {
		t.Fatal(err)
	}
	r.Rollback()
	if v, _ := mem.Load(8, 8); v != 42 {
		t.Errorf("memory[8] = %d after re-armed rollback, want 42", v)
	}
	if v, _ := mem.Load(16, 4); v != 0 {
		t.Errorf("memory[16] = %d after re-armed rollback, want 0", v)
	}
	if st.R[1] != 20 || st.F[3] != 2.5 {
		t.Errorf("state after re-armed rollback = r1:%d f3:%v, want 20/2.5", st.R[1], st.F[3])
	}

	// Cycle 3: the single-use contract still holds after re-arming.
	r.Begin(st, mem)
	r.Commit()
	if err := r.Store(0, 8, 1); err != ErrFinished {
		t.Errorf("Store after re-armed Commit = %v, want ErrFinished", err)
	}
}

func TestBeginOnActiveRegionPanics(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	var r Region
	r.Begin(st, mem)
	defer func() {
		if recover() == nil {
			t.Error("Begin on an active region did not panic")
		}
	}()
	r.Begin(st, mem)
}

func TestPooledRegionCycleZeroAllocs(t *testing.T) {
	// A warmed Begin/Store/Commit cycle on a pooled Region must not
	// allocate: the checkpoint is held by value and the undo log's
	// capacity is retained across Finish.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	var r Region
	// Warm up: grow the undo log once.
	r.Begin(st, mem)
	for i := 0; i < 8; i++ {
		_ = r.Store(uint64(i*8), 8, uint64(i))
	}
	r.Commit()

	allocs := testing.AllocsPerRun(100, func() {
		r.Begin(st, mem)
		for i := 0; i < 8; i++ {
			_ = r.Store(uint64(i*8), 8, uint64(i))
		}
		r.Commit()
	})
	if allocs != 0 {
		t.Errorf("warmed Begin/Store/Commit cycle allocates %v times per run, want 0", allocs)
	}
}

func TestStoreCount(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	r := Begin(st, mem)
	_ = r.Store(0, 8, 1)
	_ = r.Store(8, 4, 2)
	if r.StoreCount() != 2 {
		t.Errorf("StoreCount() = %d after two stores, want 2", r.StoreCount())
	}
	r.Rollback()
}

func TestReusedRegionPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on a finished region did not panic", name)
			}
		}()
		f()
	}
	st := &guest.State{}
	mem := guest.NewMemory(64)

	r := Begin(st, mem)
	r.Commit()
	expectPanic("Commit", r.Commit)
	expectPanic("Rollback", r.Rollback)

	r = Begin(st, mem)
	r.Rollback()
	expectPanic("Rollback", r.Rollback)
	expectPanic("Commit", r.Commit)
}
