package atomic

import (
	"testing"

	"smarq/internal/guest"
)

func TestCommitKeepsEffects(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	st.R[1] = 7
	r := Begin(st, mem)
	if err := r.Store(8, 8, 42); err != nil {
		t.Fatal(err)
	}
	st.R[1] = 9
	r.Commit()
	v, _ := mem.Load(8, 8)
	if v != 42 {
		t.Errorf("memory = %d after commit, want 42", v)
	}
	if st.R[1] != 9 {
		t.Errorf("r1 = %d after commit, want 9", st.R[1])
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(64)
	st.R[1] = 7
	st.F[2] = 1.5
	if err := mem.Store(8, 8, 11); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	st.R[1] = 100
	st.F[2] = -3
	if err := r.Store(8, 8, 42); err != nil {
		t.Fatal(err)
	}
	if err := r.Store(16, 4, 5); err != nil {
		t.Fatal(err)
	}
	r.Rollback()
	v, _ := mem.Load(8, 8)
	if v != 11 {
		t.Errorf("memory[8] = %d after rollback, want 11", v)
	}
	v, _ = mem.Load(16, 4)
	if v != 0 {
		t.Errorf("memory[16] = %d after rollback, want 0", v)
	}
	if st.R[1] != 7 || st.F[2] != 1.5 {
		t.Errorf("state after rollback = r1:%d f2:%v, want 7/1.5", st.R[1], st.F[2])
	}
}

func TestStoresVisibleWithinRegion(t *testing.T) {
	// Write-through: a later load (in scheduled order) sees the value.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	r := Begin(st, mem)
	if err := r.Store(0, 8, 99); err != nil {
		t.Fatal(err)
	}
	v, _ := mem.Load(0, 8)
	if v != 99 {
		t.Errorf("in-region visibility: got %d, want 99", v)
	}
	r.Rollback()
}

func TestRollbackReverseOrder(t *testing.T) {
	// Two stores to the same location: rollback must restore the ORIGINAL
	// value, not the intermediate one.
	st := &guest.State{}
	mem := guest.NewMemory(64)
	if err := mem.Store(0, 8, 1); err != nil {
		t.Fatal(err)
	}
	r := Begin(st, mem)
	_ = r.Store(0, 8, 2)
	_ = r.Store(0, 8, 3)
	r.Rollback()
	v, _ := mem.Load(0, 8)
	if v != 1 {
		t.Errorf("memory = %d after rollback of two stores, want 1", v)
	}
}

func TestStoreFaultDoesNotLog(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(16)
	r := Begin(st, mem)
	if err := r.Store(100, 8, 1); err == nil {
		t.Fatal("out-of-range store succeeded")
	}
	if r.StoreBytes() != 0 {
		t.Error("failed store left an undo record")
	}
	r.Rollback()
}
