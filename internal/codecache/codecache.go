// Package codecache is a sharded, content-addressed cache for compiled
// regions shared by many concurrently running dynopt.Systems (fleet
// execution). It is the concurrent sibling of compilequeue.Memo: the same
// FNV-1a content keys, but safe — and fast — under true cross-goroutine
// contention.
//
// Layout and discipline:
//
//   - N shards (a power of two), selected by the key's high bits. Content
//     hashes are uniform, so high bits spread as well as low bits and keep
//     the shard index a single shift.
//   - Hits are lock-free: each shard publishes its entry table as a
//     copy-on-write map snapshot behind an atomic.Pointer. A reader loads
//     the snapshot, indexes it, and bumps the entry's recency stamp with
//     one atomic store; it never takes the shard mutex.
//   - Mutations (insert, evict, single-flight transitions) take the shard
//     mutex and install a fresh snapshot. Tables hold compiled regions —
//     hundreds of entries, not millions — so the copy is cheap relative
//     to a compile, and in exchange the hit path stays wait-free.
//   - Recency is a global atomic clock: every hit or insert stamps the
//     entry with clock+1. Eviction scans all shards for the minimum stamp
//     — exact LRU under sequential use, approximate (scan-min) under
//     concurrency — and honors a *global* entry/byte budget rather than a
//     per-shard one, so one hot tenant cannot starve the others' shards.
//   - Cross-tenant single-flight: the first Lookup to miss a key becomes
//     the leader and receives a Flight to complete; concurrent misses on
//     the same key receive the same Flight to wait on. A region being
//     compiled by one tenant is therefore awaited, not recompiled, by
//     every other tenant. Complete inserts the value into the table
//     *before* removing the flight (both under the shard mutex), so there
//     is no window in which a second compile of the same key can start:
//     the fleet-wide compile count per key is exactly one.
//
// Determinism: the cache never makes a simulated decision. Hit/miss
// outcomes differ between a fleet run and a solo run, but dynopt replays a
// hit's modelled costs exactly as a fresh compile's, so per-tenant
// simulated results are identical modulo the hit/miss counters themselves
// (the same contract as compilequeue.Memo, proven by
// harness.TestFleetTenantDeterminism).
package codecache

import (
	"strconv"
	"sync"
	"sync/atomic"

	"smarq/internal/compilequeue"
	"smarq/internal/telemetry"
)

// Key aliases the compilequeue content hash so callers build keys with the
// same NewKey/Word/Int/Bool fold.
type Key = compilequeue.Key

// Options configures a Cache.
type Options struct {
	// Shards is the shard count, rounded up to a power of two; 0 selects
	// DefaultShards.
	Shards int
	// MaxEntries bounds the cache globally in entries (0 = unbounded).
	MaxEntries int64
	// MaxBytes bounds the cache globally in payload bytes as reported by
	// the size function (0 = unbounded).
	MaxBytes int64
}

// DefaultShards is the shard count when Options.Shards is 0.
const DefaultShards = 16

// Flight is one in-progress fill of a key: the leader computes the value
// and calls Cache.Complete; everyone else selects on Done and reads Value.
type Flight[V any] struct {
	done chan struct{}
	val  V
}

// Done is closed once the flight completes.
func (f *Flight[V]) Done() <-chan struct{} { return f.done }

// Value returns the flight's result; valid only after Done is closed.
func (f *Flight[V]) Value() V { return f.val }

// entry is one cached value. val and size are immutable after publication
// (entries are published by swapping in a fresh map snapshot); used is the
// recency stamp, atomically rewritten on every hit.
type entry[V any] struct {
	val  V
	size int64
	used atomic.Int64
}

type shard[V any] struct {
	mu sync.Mutex
	// snap is the copy-on-write entry table; readers load it without the
	// mutex, writers replace it under the mutex.
	snap    atomic.Pointer[map[Key]*entry[V]]
	flights map[Key]*Flight[V]
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries int64 // live entries
	Bytes   int64 // live payload bytes

	Lookups     int64 // Get + Lookup calls
	Hits        int64 // served from the table
	Misses      int64 // not in the table at lookup time
	FlightWaits int64 // misses that joined another caller's flight
	Compiles    int64 // misses that became flight leaders
	Evictions   int64 // entries removed by the budget
	Contention  int64 // shard-mutex acquisitions that had to block

	// ShardEntries is the per-shard occupancy at snapshot time.
	ShardEntries []int
}

// Cache is the sharded content-addressed cache. The zero value is not
// usable; construct with New.
type Cache[V any] struct {
	size   func(V) int64
	shards []shard[V]
	shift  uint // shard index = key >> shift (high bits)

	maxEntries int64
	maxBytes   int64

	clock   atomic.Int64 // recency stamp source
	entries atomic.Int64
	bytes   atomic.Int64

	lookups     atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	flightWaits atomic.Int64
	compiles    atomic.Int64
	evictions   atomic.Int64
	contention  atomic.Int64

	// evictMu serializes budget enforcement so concurrent inserters do not
	// race each other into over-eviction.
	evictMu sync.Mutex

	// met holds the published telemetry instruments (PublishMetrics).
	metMu sync.Mutex
	met   *metrics
}

// New returns an empty cache. size reports the payload bytes of a value
// for the byte budget; nil means every value counts as zero bytes (only
// the entry budget applies).
func New[V any](opts Options, size func(V) int64) *Cache[V] {
	n := opts.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so the shard index is a shift.
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Cache[V]{
		size:       size,
		shards:     make([]shard[V], p),
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
	}
	shift := uint(64)
	for b := p; b > 1; b >>= 1 {
		shift--
	}
	c.shift = shift
	empty := make(map[Key]*entry[V])
	for i := range c.shards {
		c.shards[i].snap.Store(&empty)
		c.shards[i].flights = make(map[Key]*Flight[V])
	}
	return c
}

// shardOf selects the shard by the key's high bits.
func (c *Cache[V]) shardOf(k Key) *shard[V] {
	return &c.shards[uint64(k)>>c.shift]
}

// lock takes the shard mutex, counting contention when it has to block.
func (c *Cache[V]) lock(sh *shard[V]) {
	if sh.mu.TryLock() {
		return
	}
	c.contention.Add(1)
	sh.mu.Lock()
}

// Get looks k up without single-flight bookkeeping: a hit freshens the
// entry's recency, a miss just counts. The fast path never locks.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.lookups.Add(1)
	sh := c.shardOf(k)
	if e, ok := (*sh.snap.Load())[k]; ok {
		e.used.Store(c.clock.Add(1))
		c.hits.Add(1)
		return e.val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Peek reports whether k is cached without touching recency or counters —
// the non-perturbing probe the LRU-oracle tests use.
func (c *Cache[V]) Peek(k Key) (V, bool) {
	if e, ok := (*c.shardOf(k).snap.Load())[k]; ok {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Lookup resolves k with cross-tenant single-flight:
//
//   - hit: (value, true, nil, false) — lock-free, recency freshened;
//   - miss, first caller: (zero, false, flight, true) — the caller is the
//     leader and must eventually call Complete on the flight;
//   - miss, concurrent callers: (zero, false, flight, false) — wait on
//     flight.Done, then read flight.Value.
func (c *Cache[V]) Lookup(k Key) (v V, hit bool, f *Flight[V], leader bool) {
	c.lookups.Add(1)
	sh := c.shardOf(k)
	if e, ok := (*sh.snap.Load())[k]; ok {
		e.used.Store(c.clock.Add(1))
		c.hits.Add(1)
		return e.val, true, nil, false
	}
	c.lock(sh)
	// Re-check under the mutex: Complete inserts before removing the
	// flight, so a key is always in the table, in flight, or genuinely
	// absent — never in between.
	if e, ok := (*sh.snap.Load())[k]; ok {
		sh.mu.Unlock()
		e.used.Store(c.clock.Add(1))
		c.hits.Add(1)
		return e.val, true, nil, false
	}
	if fl, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		c.flightWaits.Add(1)
		return v, false, fl, false
	}
	fl := &Flight[V]{done: make(chan struct{})}
	sh.flights[k] = fl
	sh.mu.Unlock()
	c.misses.Add(1)
	c.compiles.Add(1)
	return v, false, fl, true
}

// Complete finishes a flight obtained from Lookup as its leader: the value
// is published to every waiter, and inserted into the table when insert is
// true (a failed compile passes false so the next request retries).
// Insert-then-remove under the shard mutex closes the duplicate-compile
// window; the publication write to f.val happens before close(done), so
// waiters read it race-free.
func (c *Cache[V]) Complete(k Key, f *Flight[V], v V, insert bool) {
	sh := c.shardOf(k)
	c.lock(sh)
	if insert {
		c.insertLocked(sh, k, v)
	}
	delete(sh.flights, k)
	sh.mu.Unlock()
	f.val = v
	close(f.done)
	if insert {
		c.enforceBudget()
	}
}

// Put inserts k directly (no flight), replacing any existing entry.
func (c *Cache[V]) Put(k Key, v V) {
	sh := c.shardOf(k)
	c.lock(sh)
	c.insertLocked(sh, k, v)
	sh.mu.Unlock()
	c.enforceBudget()
}

// insertLocked swaps in a fresh snapshot containing k. Caller holds sh.mu.
func (c *Cache[V]) insertLocked(sh *shard[V], k Key, v V) {
	old := *sh.snap.Load()
	m := make(map[Key]*entry[V], len(old)+1)
	for kk, ee := range old {
		m[kk] = ee
	}
	e := &entry[V]{val: v}
	if c.size != nil {
		e.size = c.size(v)
	}
	e.used.Store(c.clock.Add(1))
	if prev, ok := m[k]; ok {
		c.bytes.Add(-prev.size)
		c.entries.Add(-1)
	}
	m[k] = e
	sh.snap.Store(&m)
	c.entries.Add(1)
	c.bytes.Add(e.size)
}

// over reports whether either global budget is exceeded.
func (c *Cache[V]) over() bool {
	return (c.maxEntries > 0 && c.entries.Load() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes.Load() > c.maxBytes)
}

// enforceBudget evicts minimum-stamp entries until the cache is back
// within its global budgets. Serialized so concurrent inserters cannot
// over-evict each other's survivors.
func (c *Cache[V]) enforceBudget() {
	if c.maxEntries <= 0 && c.maxBytes <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	for c.over() {
		if !c.evictOne() {
			return
		}
	}
}

// evictOne removes the entry with the globally minimum recency stamp.
// Stamps are unique (one atomic clock), so the victim is unambiguous at
// scan time; under concurrency a racing hit may freshen the victim between
// the scan and the removal, making the policy scan-min approximate rather
// than strict LRU — an accepted trade for the lock-free hit path.
func (c *Cache[V]) evictOne() bool {
	var (
		vs   *shard[V]
		vk   Key
		vmin int64 = 1<<63 - 1
	)
	for i := range c.shards {
		sh := &c.shards[i]
		for k, e := range *sh.snap.Load() {
			if u := e.used.Load(); u < vmin {
				vmin, vs, vk = u, sh, k
			}
		}
	}
	if vs == nil {
		return false
	}
	c.lock(vs)
	old := *vs.snap.Load()
	e, ok := old[vk]
	if ok {
		m := make(map[Key]*entry[V], len(old)-1)
		for kk, ee := range old {
			if kk != vk {
				m[kk] = ee
			}
		}
		vs.snap.Store(&m)
		c.entries.Add(-1)
		c.bytes.Add(-e.size)
		c.evictions.Add(1)
	}
	vs.mu.Unlock()
	return ok
}

// Len returns the live entry count.
func (c *Cache[V]) Len() int { return int(c.entries.Load()) }

// Bytes returns the live payload byte total.
func (c *Cache[V]) Bytes() int64 { return c.bytes.Load() }

// Stats snapshots the counters. Taken while other goroutines run, the
// counters are individually atomic but not mutually consistent; at
// quiescence the snapshot is exact.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Entries:      c.entries.Load(),
		Bytes:        c.bytes.Load(),
		Lookups:      c.lookups.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		FlightWaits:  c.flightWaits.Load(),
		Compiles:     c.compiles.Load(),
		Evictions:    c.evictions.Load(),
		Contention:   c.contention.Load(),
		ShardEntries: make([]int, len(c.shards)),
	}
	for i := range c.shards {
		st.ShardEntries[i] = len(*c.shards[i].snap.Load())
	}
	return st
}

// Metric instrument names, as they appear in a -metrics JSON snapshot.
const (
	mLookups     = "codecache_lookups"
	mHits        = "codecache_hits"
	mMisses      = "codecache_misses"
	mFlightWaits = "codecache_flight_waits"
	mCompiles    = "codecache_compiles"
	mEvictions   = "codecache_evictions"
	mContention  = "codecache_contention"
	gEntries     = "codecache_entries"
	gBytes       = "codecache_bytes"
	gShardMax    = "codecache_shard_max_entries"
	// gShardEntries is the per-shard occupancy family; series carry a
	// shard="N" label (telemetry.Labeled).
	gShardEntries = "codecache_shard_entries"
)

// metrics holds the resolved instruments plus the counter values already
// published, so PublishMetrics adds deltas (telemetry counters are
// monotonic).
type metrics struct {
	lookups, hits, misses, flightWaits *telemetry.Counter
	compiles, evictions, contention    *telemetry.Counter
	entries, bytes, shardMax           *telemetry.Gauge
	// shardEntries is the per-shard occupancy as labeled series
	// (codecache_shard_entries{shard="N"}), one gauge per shard.
	shardEntries []*telemetry.Gauge
	last         Stats
}

// PublishMetrics registers the cache's instruments against reg on first
// call and syncs them to the current counters (call it again at any point
// — at end of run, periodically from a monitor — to refresh). Safe for
// concurrent use; nil reg is a no-op.
func (c *Cache[V]) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.metMu.Lock()
	defer c.metMu.Unlock()
	if c.met == nil {
		c.met = &metrics{
			lookups:     reg.Counter(mLookups),
			hits:        reg.Counter(mHits),
			misses:      reg.Counter(mMisses),
			flightWaits: reg.Counter(mFlightWaits),
			compiles:    reg.Counter(mCompiles),
			evictions:   reg.Counter(mEvictions),
			contention:  reg.Counter(mContention),
			entries:     reg.Gauge(gEntries),
			bytes:       reg.Gauge(gBytes),
			shardMax:    reg.Gauge(gShardMax),

			shardEntries: make([]*telemetry.Gauge, len(c.shards)),
		}
		for i := range c.shards {
			c.met.shardEntries[i] = reg.Gauge(telemetry.Labeled(gShardEntries,
				telemetry.Label{Name: "shard", Value: strconv.Itoa(i)}))
		}
	}
	st := c.Stats()
	m := c.met
	m.lookups.Add(st.Lookups - m.last.Lookups)
	m.hits.Add(st.Hits - m.last.Hits)
	m.misses.Add(st.Misses - m.last.Misses)
	m.flightWaits.Add(st.FlightWaits - m.last.FlightWaits)
	m.compiles.Add(st.Compiles - m.last.Compiles)
	m.evictions.Add(st.Evictions - m.last.Evictions)
	m.contention.Add(st.Contention - m.last.Contention)
	m.entries.Set(st.Entries)
	m.bytes.Set(st.Bytes)
	maxOcc := 0
	for i, n := range st.ShardEntries {
		if n > maxOcc {
			maxOcc = n
		}
		m.shardEntries[i].Set(int64(n))
	}
	m.shardMax.Set(int64(maxOcc))
	m.last = st
}
