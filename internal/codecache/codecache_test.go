package codecache

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"smarq/internal/compilequeue"
	"smarq/internal/telemetry"
)

// mkKey derives a well-spread content key from a small integer the way
// dynopt does — through the FNV fold — so the tests exercise real shard
// distribution rather than consecutive integers landing in one shard.
func mkKey(i int) Key {
	return compilequeue.NewKey().Int(int64(i))
}

// seqModel is the sequential-model oracle: a plain map plus explicit
// recency stamps mirroring the cache's global clock. Get stamps clock+1 on
// a hit; Put stamps the inserted entry; eviction removes the minimum
// stamp. Run in lockstep with a Cache under single-threaded use, every
// hit/miss outcome, eviction victim, Len and Bytes must match exactly.
type seqModel struct {
	vals    map[Key]int
	sizes   map[Key]int64
	stamps  map[Key]int64
	clock   int64
	bytes   int64
	maxEnt  int64
	maxByte int64
}

func newSeqModel(maxEnt, maxByte int64) *seqModel {
	return &seqModel{
		vals:   map[Key]int{},
		sizes:  map[Key]int64{},
		stamps: map[Key]int64{},
		maxEnt: maxEnt, maxByte: maxByte,
	}
}

func (m *seqModel) get(k Key) (int, bool) {
	v, ok := m.vals[k]
	if ok {
		m.clock++
		m.stamps[k] = m.clock
	}
	return v, ok
}

func (m *seqModel) put(k Key, v int, size int64) {
	if old, ok := m.sizes[k]; ok {
		m.bytes -= old
	}
	m.clock++
	m.vals[k], m.sizes[k], m.stamps[k] = v, size, m.clock
	m.bytes += size
	for (m.maxEnt > 0 && int64(len(m.vals)) > m.maxEnt) ||
		(m.maxByte > 0 && m.bytes > m.maxByte) {
		victim, vmin := Key(0), int64(1<<63-1)
		for kk, s := range m.stamps {
			if s < vmin {
				victim, vmin = kk, s
			}
		}
		m.bytes -= m.sizes[victim]
		delete(m.vals, victim)
		delete(m.sizes, victim)
		delete(m.stamps, victim)
	}
}

// TestSequentialLRUOracle drives a Cache and the oracle through the same
// random get/put stream and requires identical hit/miss outcomes, values,
// eviction survivors (checked with the non-perturbing Peek), entry counts
// and byte totals after every step.
func TestSequentialLRUOracle(t *testing.T) {
	for _, tc := range []struct {
		name             string
		maxEnt, maxBytes int64
	}{
		{"entries8", 8, 0},
		{"bytes200", 0, 200},
		{"both", 12, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := New[int](Options{Shards: 4, MaxEntries: tc.maxEnt, MaxBytes: tc.maxBytes},
				func(v int) int64 { return int64(v%64 + 1) })
			m := newSeqModel(tc.maxEnt, tc.maxBytes)
			rng := rand.New(rand.NewSource(42))
			for step := 0; step < 5000; step++ {
				k := mkKey(rng.Intn(40))
				if rng.Intn(2) == 0 {
					gv, gok := c.Get(k)
					wv, wok := m.get(k)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("step %d: Get = (%d,%v), oracle (%d,%v)", step, gv, gok, wv, wok)
					}
				} else {
					v := rng.Intn(1000)
					c.Put(k, v)
					m.put(k, v, int64(v%64+1))
				}
				if c.Len() != len(m.vals) {
					t.Fatalf("step %d: Len %d, oracle %d", step, c.Len(), len(m.vals))
				}
				if c.Bytes() != m.bytes {
					t.Fatalf("step %d: Bytes %d, oracle %d", step, c.Bytes(), m.bytes)
				}
			}
			// Survivor set and values must match the oracle's exactly.
			for k, wv := range m.vals {
				gv, ok := c.Peek(k)
				if !ok || gv != wv {
					t.Fatalf("survivor %#x: Peek = (%d,%v), oracle holds %d", uint64(k), gv, ok, wv)
				}
			}
			for i := 0; i < 40; i++ {
				k := mkKey(i)
				if _, ok := c.Peek(k); ok {
					if _, want := m.vals[k]; !want {
						t.Fatalf("key %#x cached but evicted in the oracle", uint64(k))
					}
				}
			}
		})
	}
}

// TestConcurrentTorture hammers one cache from 8 goroutines with random
// gets, puts and single-flight lookups under a byte+entry budget; -race
// must stay silent, values must never cross keys, and at quiescence the
// budgets and the entry/byte accounting must be exact.
func TestConcurrentTorture(t *testing.T) {
	const (
		goroutines = 8
		steps      = 4000
		keys       = 128
		maxEntries = 48
		maxBytes   = 2000
	)
	c := New[int64](Options{Shards: 8, MaxEntries: maxEntries, MaxBytes: maxBytes},
		func(v int64) int64 { return v % 50 })
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < steps; i++ {
				ki := rng.Intn(keys)
				k := mkKey(ki)
				// Values encode their key so a cross-key mixup is
				// detectable: v = ki*1000 + noise(<1000).
				switch rng.Intn(3) {
				case 0:
					if v, ok := c.Get(k); ok && int(v/1000) != ki {
						t.Errorf("Get(%d) returned value %d for a different key", ki, v)
						return
					}
				case 1:
					c.Put(k, int64(ki*1000+rng.Intn(1000)))
				default:
					v, hit, f, leader := c.Lookup(k)
					switch {
					case hit:
						if int(v/1000) != ki {
							t.Errorf("Lookup(%d) hit value %d for a different key", ki, v)
							return
						}
					case leader:
						c.Complete(k, f, int64(ki*1000+rng.Intn(1000)), rng.Intn(4) != 0)
					default:
						<-f.Done()
						// A failed flight (insert=false) still publishes its
						// value; either way it must be key-consistent.
						if fv := f.Value(); int(fv/1000) != ki {
							t.Errorf("flight for %d carried value %d", ki, fv)
							return
						}
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	st := c.Stats()
	if st.Entries > maxEntries {
		t.Errorf("entries %d exceed budget %d at quiescence", st.Entries, maxEntries)
	}
	if st.Bytes > maxBytes {
		t.Errorf("bytes %d exceed budget %d at quiescence", st.Bytes, maxBytes)
	}
	// Recount from the shard snapshots: the atomic totals must agree with
	// the tables exactly once all mutators are done.
	var entries int64
	for i := range c.shards {
		entries += int64(len(*c.shards[i].snap.Load()))
	}
	if entries != st.Entries {
		t.Errorf("atomic entry total %d, shard tables hold %d", st.Entries, entries)
	}
	if st.Lookups != st.Hits+st.Misses {
		t.Errorf("lookups %d != hits %d + misses %d", st.Lookups, st.Hits, st.Misses)
	}
	if st.FlightWaits+st.Compiles > st.Misses {
		t.Errorf("flight waits %d + compiles %d exceed misses %d",
			st.FlightWaits, st.Compiles, st.Misses)
	}
	if st.Compiles == 0 || st.Evictions == 0 {
		t.Errorf("torture run exercised no compiles (%d) or evictions (%d)",
			st.Compiles, st.Evictions)
	}
	for i := range c.shards {
		if n := len(c.shards[i].flights); n != 0 {
			t.Errorf("shard %d still holds %d flights at quiescence", i, n)
		}
	}
}

// TestSingleFlight proves exactly one compile per key under concurrent
// misses: N goroutines Lookup the same cold key at once; exactly one may
// be the leader, the rest must receive the leader's value, and the
// fleet-wide compile count for the key is 1.
func TestSingleFlight(t *testing.T) {
	const waiters = 16
	c := New[string](Options{Shards: 4}, nil)
	k := mkKey(7)

	var (
		leaders  atomic.Int64
		computes atomic.Int64
		start    = make(chan struct{})
		wg       sync.WaitGroup
	)
	results := make([]string, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, hit, f, leader := c.Lookup(k)
			switch {
			case hit:
				results[i] = v
			case leader:
				leaders.Add(1)
				computes.Add(1)
				c.Complete(k, f, "compiled-once", true)
				results[i] = "compiled-once"
			default:
				<-f.Done()
				results[i] = f.Value()
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if n := leaders.Load(); n != 1 {
		t.Fatalf("%d leaders for one key, want exactly 1", n)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d compiles for one key, want exactly 1", n)
	}
	for i, r := range results {
		if r != "compiled-once" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	st := c.Stats()
	if st.Compiles != 1 {
		t.Fatalf("stats report %d compiles, want 1", st.Compiles)
	}
	if st.Hits+st.FlightWaits != waiters-1 {
		t.Fatalf("hits %d + flight waits %d, want %d non-leaders served",
			st.Hits, st.FlightWaits, waiters-1)
	}
	// A second round is all lock-free hits.
	for i := 0; i < 4; i++ {
		v, hit, _, leader := c.Lookup(k)
		if !hit || leader || v != "compiled-once" {
			t.Fatalf("post-fill Lookup = (%q, hit=%v, leader=%v)", v, hit, leader)
		}
	}
}

// TestFailedFlightRetries checks the retry path: a leader completing with
// insert=false leaves the key uncached, so the next Lookup elects a new
// leader instead of serving the failure forever.
func TestFailedFlightRetries(t *testing.T) {
	c := New[int](Options{Shards: 2}, nil)
	k := mkKey(3)
	_, hit, f, leader := c.Lookup(k)
	if hit || !leader {
		t.Fatalf("cold lookup: hit=%v leader=%v", hit, leader)
	}
	c.Complete(k, f, -1, false)
	if _, ok := c.Peek(k); ok {
		t.Fatal("failed flight was inserted")
	}
	_, hit, f2, leader := c.Lookup(k)
	if hit || !leader || f2 == f {
		t.Fatalf("retry lookup: hit=%v leader=%v fresh-flight=%v", hit, leader, f2 != f)
	}
	c.Complete(k, f2, 42, true)
	if v, ok := c.Peek(k); !ok || v != 42 {
		t.Fatalf("retry result not cached: (%d, %v)", v, ok)
	}
}

// TestShardSelection checks that keys spread over shards by their high
// bits and that every shard round-trips its own keys.
func TestShardSelection(t *testing.T) {
	c := New[int](Options{Shards: 16}, nil)
	used := map[uint64]bool{}
	for i := 0; i < 512; i++ {
		k := mkKey(i)
		c.Put(k, i)
		used[uint64(k)>>c.shift] = true
		if v, ok := c.Peek(k); !ok || v != i {
			t.Fatalf("key %d lost after Put", i)
		}
	}
	if len(used) < 8 {
		t.Fatalf("512 content keys landed in only %d/16 shards", len(used))
	}
	st := c.Stats()
	sum := 0
	for _, n := range st.ShardEntries {
		sum += n
	}
	if sum != 512 || st.Entries != 512 {
		t.Fatalf("occupancy sum %d, entries %d, want 512", sum, st.Entries)
	}
}

// TestPublishMetrics checks instrument registration and delta syncing:
// calling it twice must not double-count already-published increments.
func TestPublishMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New[int](Options{Shards: 2, MaxEntries: 2}, nil)
	for i := 0; i < 4; i++ {
		c.Put(mkKey(i), i)
	}
	c.PublishMetrics(reg)
	c.PublishMetrics(reg) // second sync must add only the (empty) delta
	if got := reg.Counter(mEvictions).Value(); got != 2 {
		t.Fatalf("published evictions %d, want 2", got)
	}
	if got := reg.Gauge(gEntries).Value(); got != 2 {
		t.Fatalf("published entries gauge %d, want 2", got)
	}
	hits := c.Stats().Hits
	for i := 0; i < 3; i++ {
		c.Get(mkKey(999)) // misses
	}
	c.PublishMetrics(reg)
	if got := reg.Counter(mMisses).Value(); got < 3 {
		t.Fatalf("published misses %d, want >= 3", got)
	}
	if got := reg.Counter(mHits).Value(); got != hits {
		t.Fatalf("published hits %d, want %d", got, hits)
	}
}

// TestCodecacheMetricsConcurrent hammers the cache from many tenant
// goroutines — lookups, flight completions, plain gets — while a monitor
// goroutine repeatedly delta-syncs PublishMetrics, then checks the
// published instruments against the cache's own Stats at quiescence:
// every counter must match exactly, hits+misses must cover every lookup,
// and the per-shard labeled gauges must sum to the live entry count.
// Run with -race: the publish path races real mutations.
func TestCodecacheMetricsConcurrent(t *testing.T) {
	const (
		tenants = 8
		keys    = 64
		iters   = 400
	)
	reg := telemetry.NewRegistry()
	c := New[int](Options{Shards: 4, MaxEntries: 48}, func(int) int64 { return 8 })

	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.PublishMetrics(reg)
			}
		}
	}()

	var wg sync.WaitGroup
	for tenant := 0; tenant < tenants; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tenant) + 1))
			for i := 0; i < iters; i++ {
				k := mkKey(rng.Intn(keys))
				switch rng.Intn(3) {
				case 0:
					c.Get(k)
				default:
					if _, hit, f, leader := c.Lookup(k); !hit {
						if leader {
							c.Complete(k, f, tenant, true)
						} else {
							<-f.Done()
						}
					}
				}
			}
		}(tenant)
	}
	wg.Wait()
	close(stop)
	monitor.Wait()

	// Final delta-sync at quiescence, then the books must balance.
	c.PublishMetrics(reg)
	c.PublishMetrics(reg) // idempotent: the second sync adds an empty delta
	st := c.Stats()

	for _, chk := range []struct {
		name string
		got  int64
		want int64
	}{
		{mLookups, reg.Counter(mLookups).Value(), st.Lookups},
		{mHits, reg.Counter(mHits).Value(), st.Hits},
		{mMisses, reg.Counter(mMisses).Value(), st.Misses},
		{mFlightWaits, reg.Counter(mFlightWaits).Value(), st.FlightWaits},
		{mCompiles, reg.Counter(mCompiles).Value(), st.Compiles},
		{mEvictions, reg.Counter(mEvictions).Value(), st.Evictions},
		{mContention, reg.Counter(mContention).Value(), st.Contention},
	} {
		if chk.got != chk.want {
			t.Errorf("published %s = %d, Stats say %d", chk.name, chk.got, chk.want)
		}
	}
	if st.Hits+st.Misses != st.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	if st.FlightWaits+st.Compiles > st.Misses {
		t.Errorf("flight waits %d + compiles %d exceed misses %d",
			st.FlightWaits, st.Compiles, st.Misses)
	}
	var shardSum int64
	for i := range st.ShardEntries {
		g := reg.Gauge(telemetry.Labeled(gShardEntries,
			telemetry.Label{Name: "shard", Value: strconv.Itoa(i)}))
		if got := g.Value(); got != int64(st.ShardEntries[i]) {
			t.Errorf("shard %d gauge = %d, Stats say %d", i, got, st.ShardEntries[i])
		}
		shardSum += int64(st.ShardEntries[i])
	}
	if shardSum != st.Entries {
		t.Errorf("per-shard occupancy sums to %d, entries gauge says %d", shardSum, st.Entries)
	}
	if got := reg.Gauge(gEntries).Value(); got != st.Entries {
		t.Errorf("entries gauge %d, Stats say %d", got, st.Entries)
	}
}
