// Package compilequeue is the host-side machinery behind dynopt's
// asynchronous background compilation: a bounded worker pool that runs
// pure compile jobs off the dispatch path, and a content-hash memo table
// keyed by the canonical bytes of a region's guest instructions plus the
// configuration bits that affect its compilation.
//
// Determinism discipline: nothing in this package makes a *simulated*
// decision. Workers execute pure functions whose inputs are snapshotted on
// the simulation thread; every observable choice — what to enqueue, when a
// result installs, memo lookups and inserts — happens on the simulation
// thread at points fixed by the simulated clock. The worker count
// therefore changes only host wall time, never a single simulated cycle,
// stat, or telemetry byte.
package compilequeue

import "sync"

// Pool is a bounded worker pool for background compile jobs. Jobs are
// plain funcs; completion signalling (and any result hand-off) is the
// job's own business — dynopt closes a per-job channel that the install
// point blocks on.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines
// (workers must be >= 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	// The buffer only decouples the submitting thread from worker
	// scheduling; queue *semantics* (ordering, install points) live in the
	// caller's pending list, so its size is not observable.
	p := &Pool{jobs: make(chan func(), 4*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.jobs {
		fn()
	}
}

// Submit hands a job to the pool. It may block briefly when every worker
// is busy and the submission buffer is full; it never drops a job.
func (p *Pool) Submit(fn func()) {
	p.jobs <- fn
}

// Close stops accepting jobs and waits for all submitted jobs to finish.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Key is a 64-bit FNV-1a content hash identifying a compilation input:
// the superblock's instruction bytes plus every configuration bit that
// changes the produced code (tier-derived flags, blacklist pairs, pinned
// loads). Two enqueues with equal keys compile to interchangeable code.
type Key uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewKey returns the hash seed.
func NewKey() Key { return Key(fnvOffset64) }

// Word folds one 64-bit word into the hash, byte by byte (FNV-1a).
func (k Key) Word(v uint64) Key {
	h := uint64(k)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return Key(h)
}

// Int folds a signed word.
func (k Key) Int(v int64) Key { return k.Word(uint64(v)) }

// Bool folds a flag.
func (k Key) Bool(b bool) Key {
	if b {
		return k.Word(1)
	}
	return k.Word(0)
}

// Memo is the content-hash memoization table. It is NOT concurrency-safe
// by design: lookups happen at enqueue and inserts at install, both on
// the simulation thread, so the table needs no lock and its hit/miss
// order is deterministic.
type Memo[V any] struct {
	m      map[Key]V
	hits   int64
	misses int64
}

// NewMemo returns an empty memo table.
func NewMemo[V any]() *Memo[V] {
	return &Memo[V]{m: make(map[Key]V)}
}

// Get looks k up, counting a hit or a miss.
func (m *Memo[V]) Get(k Key) (V, bool) {
	v, ok := m.m[k]
	if ok {
		m.hits++
	} else {
		m.misses++
	}
	return v, ok
}

// Put records the compiled value for k.
func (m *Memo[V]) Put(k Key, v V) { m.m[k] = v }

// Hits returns the lookup hit count.
func (m *Memo[V]) Hits() int64 { return m.hits }

// Misses returns the lookup miss count.
func (m *Memo[V]) Misses() int64 { return m.misses }

// Len returns the number of memoized entries.
func (m *Memo[V]) Len() int { return len(m.m) }
