// Package compilequeue is the host-side machinery behind dynopt's
// asynchronous background compilation: a bounded worker pool that runs
// pure compile jobs off the dispatch path, and a content-hash memo table
// keyed by the canonical bytes of a region's guest instructions plus the
// configuration bits that affect its compilation.
//
// Determinism discipline: nothing in this package makes a *simulated*
// decision. Workers execute pure functions whose inputs are snapshotted on
// the simulation thread; every observable choice — what to enqueue, when a
// result installs, memo lookups and inserts — happens on the simulation
// thread at points fixed by the simulated clock. The worker count
// therefore changes only host wall time, never a single simulated cycle,
// stat, or telemetry byte.
package compilequeue

import (
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for background compile jobs. Jobs are
// plain funcs; completion signalling (and any result hand-off) is the
// job's own business — dynopt closes a per-job channel that the install
// point blocks on.
//
// Workers are a fault domain: a panicking job is recovered and counted
// instead of killing its worker goroutine (and with it the process).
// Callers that need the panic value — dynopt converts it into a
// failed-compile event — should wrap their own recover around the job;
// the pool's recover is the backstop for jobs that don't.
type Pool struct {
	jobs   chan func()
	wg     sync.WaitGroup
	closed atomic.Bool
	panics atomic.Int64
}

// NewPool starts a pool with the given number of worker goroutines
// (workers must be >= 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	// The buffer only decouples the submitting thread from worker
	// scheduling; queue *semantics* (ordering, install points) live in the
	// caller's pending list, so its size is not observable.
	p := &Pool{jobs: make(chan func(), 4*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for fn := range p.jobs {
		p.runJob(fn)
	}
}

// runJob executes one job behind the panic backstop: the worker survives,
// the panic is counted, and the job is simply over (any completion channel
// it owned stays unclosed — which is why result-carrying callers wrap
// their own recover).
func (p *Pool) runJob(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	fn()
}

// Panics returns how many jobs the backstop recovered from.
func (p *Pool) Panics() int64 { return p.panics.Load() }

// Submit hands a job to the pool. It may block briefly when every worker
// is busy and the submission buffer is full; it never drops a job.
// Submitting after Close panics deterministically (it can never deadlock):
// the pool's producer is the single simulation thread, which must not
// enqueue past the end of the run.
func (p *Pool) Submit(fn func()) {
	if p.closed.Load() {
		panic("compilequeue: Submit on a closed Pool")
	}
	p.jobs <- fn
}

// Close stops accepting jobs and waits for all submitted jobs to finish.
// Submit after Close panics; Close is idempotent-unsafe by design (one
// owner, one Close).
func (p *Pool) Close() {
	p.closed.Store(true)
	close(p.jobs)
	p.wg.Wait()
}

// Key is a 64-bit FNV-1a content hash identifying a compilation input:
// the superblock's instruction bytes plus every configuration bit that
// changes the produced code (tier-derived flags, blacklist pairs, pinned
// loads). Two enqueues with equal keys compile to interchangeable code.
type Key uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewKey returns the hash seed.
func NewKey() Key { return Key(fnvOffset64) }

// Word folds one 64-bit word into the hash, byte by byte (FNV-1a).
func (k Key) Word(v uint64) Key {
	h := uint64(k)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return Key(h)
}

// Int folds a signed word.
func (k Key) Int(v int64) Key { return k.Word(uint64(v)) }

// Bool folds a flag.
func (k Key) Bool(b bool) Key {
	if b {
		return k.Word(1)
	}
	return k.Word(0)
}

// Memo is the content-hash memoization table, bounded by a capacity with
// LRU eviction (the same discipline as dynopt's code cache bound): under
// hot/cold-flip workloads the key population churns forever, and an
// unbounded map is a slow memory leak in a long-running host. It is NOT
// concurrency-safe by design: lookups happen at enqueue and inserts at
// install, both on the simulation thread, so the table needs no lock and
// its hit/miss/eviction order is deterministic.
type Memo[V any] struct {
	m   map[Key]*memoNode[V]
	cap int // <= 0: unbounded
	// budget bounds the table in payload bytes as reported by size (<= 0:
	// unbounded); bytes is the current total. Entries cost their payload,
	// not just their slot, so a few huge compiled regions can no longer
	// hide behind a generous entry cap.
	budget int64
	size   func(V) int64
	bytes  int64
	// Intrusive doubly-linked recency list; head is most recently used,
	// tail the eviction victim.
	head, tail *memoNode[V]
	hits       int64
	misses     int64
	evictions  int64
}

type memoNode[V any] struct {
	key        Key
	val        V
	size       int64
	prev, next *memoNode[V]
}

// NewMemo returns an empty, unbounded memo table.
func NewMemo[V any]() *Memo[V] { return NewMemoCap[V](0) }

// NewMemoCap returns an empty memo table holding at most capacity entries
// (<= 0 means unbounded). Inserting past capacity evicts the least
// recently used entry.
func NewMemoCap[V any](capacity int) *Memo[V] {
	return &Memo[V]{m: make(map[Key]*memoNode[V]), cap: capacity}
}

// NewMemoBudget returns a memo table bounded both in entries (capacity,
// <= 0 unbounded) and in payload bytes (budgetBytes, <= 0 unbounded), with
// size reporting each value's payload. Inserting past either bound evicts
// least recently used entries until both hold again; a single value larger
// than the whole byte budget is admitted and immediately evicted, keeping
// the table within budget at every return. A nil size function makes every
// value weightless (byte budget inert), preserving NewMemoCap semantics.
func NewMemoBudget[V any](capacity int, budgetBytes int64, size func(V) int64) *Memo[V] {
	return &Memo[V]{
		m: make(map[Key]*memoNode[V]), cap: capacity,
		budget: budgetBytes, size: size,
	}
}

func (m *Memo[V]) unlink(n *memoNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		m.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		m.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (m *Memo[V]) pushFront(n *memoNode[V]) {
	n.next = m.head
	if m.head != nil {
		m.head.prev = n
	}
	m.head = n
	if m.tail == nil {
		m.tail = n
	}
}

// Get looks k up, counting a hit or a miss. A hit freshens the entry's
// recency.
func (m *Memo[V]) Get(k Key) (V, bool) {
	n, ok := m.m[k]
	if !ok {
		m.misses++
		var zero V
		return zero, false
	}
	m.hits++
	if m.head != n {
		m.unlink(n)
		m.pushFront(n)
	}
	return n.val, true
}

// Put records the compiled value for k, evicting least recently used
// entries while the table exceeds its entry capacity or byte budget.
func (m *Memo[V]) Put(k Key, v V) {
	if n, ok := m.m[k]; ok {
		m.bytes -= n.size
		n.val = v
		n.size = m.sizeOf(v)
		m.bytes += n.size
		if m.head != n {
			m.unlink(n)
			m.pushFront(n)
		}
		m.enforce()
		return
	}
	n := &memoNode[V]{key: k, val: v, size: m.sizeOf(v)}
	m.m[k] = n
	m.bytes += n.size
	m.pushFront(n)
	m.enforce()
}

// sizeOf reports v's payload bytes (0 without a size function).
func (m *Memo[V]) sizeOf(v V) int64 {
	if m.size == nil {
		return 0
	}
	return m.size(v)
}

// enforce evicts LRU entries until both bounds hold. The loop terminates
// because every eviction shrinks the table; an entry larger than the whole
// byte budget empties the table (itself included) rather than overshooting.
func (m *Memo[V]) enforce() {
	for (m.cap > 0 && len(m.m) > m.cap) || (m.budget > 0 && m.bytes > m.budget) {
		if !m.DropOldest() {
			return
		}
	}
}

// DropOldest evicts the least recently used entry (the memo-pressure
// fault's hook) and reports whether anything was evicted.
func (m *Memo[V]) DropOldest() bool {
	victim := m.tail
	if victim == nil {
		return false
	}
	m.unlink(victim)
	delete(m.m, victim.key)
	m.bytes -= victim.size
	m.evictions++
	return true
}

// Hits returns the lookup hit count.
func (m *Memo[V]) Hits() int64 { return m.hits }

// Misses returns the lookup miss count.
func (m *Memo[V]) Misses() int64 { return m.misses }

// Evictions returns how many entries capacity or memo pressure evicted.
func (m *Memo[V]) Evictions() int64 { return m.evictions }

// Len returns the number of memoized entries.
func (m *Memo[V]) Len() int { return len(m.m) }

// Bytes returns the payload bytes currently retained (always 0 without a
// size function).
func (m *Memo[V]) Bytes() int64 { return m.bytes }
