package compilequeue

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var ran atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < 100; i++ {
			wg.Add(1)
			p.Submit(func() {
				ran.Add(1)
				wg.Done()
			})
		}
		wg.Wait()
		p.Close()
		if got := ran.Load(); got != 100 {
			t.Errorf("workers=%d: ran %d jobs, want 100", workers, got)
		}
	}
}

func TestPoolCloseWaitsForInFlightJobs(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Close() // must not return before every submitted job has run
	if got := ran.Load(); got != 50 {
		t.Errorf("Close returned with %d/50 jobs run", got)
	}
}

func TestPoolClampsWorkerCount(t *testing.T) {
	p := NewPool(0) // degenerate request still yields a working pool
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	<-done
	p.Close()
}

// TestPoolSubmitAfterClosePanics pins the fault-domain contract: a
// Submit racing past the end of the run must fail loudly and
// deterministically (a panic with a fixed message), never deadlock on a
// closed channel or silently drop the job.
func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Submit after Close did not panic")
		}
		if msg, ok := r.(string); !ok || msg != "compilequeue: Submit on a closed Pool" {
			t.Errorf("panic value = %v, want the fixed Submit-on-closed message", r)
		}
	}()
	p.Submit(func() {})
}

// TestPoolSurvivesPanickingJobs: the backstop recover must keep worker
// goroutines alive through panicking jobs — later jobs still run, Close
// still drains, and the panics are counted.
func TestPoolSurvivesPanickingJobs(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		i := i
		p.Submit(func() {
			if i%2 == 0 {
				panic("boom")
			}
			ran.Add(1)
		})
	}
	p.Close()
	if got := ran.Load(); got != 10 {
		t.Errorf("%d/10 non-panicking jobs ran — a worker died", got)
	}
	if got := p.Panics(); got != 10 {
		t.Errorf("Panics() = %d, want 10", got)
	}
}

func TestKeyDeterministic(t *testing.T) {
	build := func() Key {
		return NewKey().Word(42).Int(-7).Bool(true).Bool(false).Int(1 << 40)
	}
	if build() != build() {
		t.Error("identical fold sequences produced different keys")
	}
}

func TestKeySensitiveToEveryFold(t *testing.T) {
	base := NewKey().Word(1).Int(2).Bool(true)
	variants := map[string]Key{
		"word":       NewKey().Word(3).Int(2).Bool(true),
		"int":        NewKey().Word(1).Int(3).Bool(true),
		"bool":       NewKey().Word(1).Int(2).Bool(false),
		"extra fold": NewKey().Word(1).Int(2).Bool(true).Int(0),
		"reordered":  NewKey().Int(2).Word(1).Bool(true),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("%s variant collided with the base key", name)
		}
	}
}

func TestMemoCountsHitsAndMisses(t *testing.T) {
	m := NewMemo[string]()
	k1 := NewKey().Int(1)
	k2 := NewKey().Int(2)

	if _, ok := m.Get(k1); ok {
		t.Fatal("empty memo reported a hit")
	}
	m.Put(k1, "one")
	if v, ok := m.Get(k1); !ok || v != "one" {
		t.Fatalf("Get(k1) = %q, %v after Put", v, ok)
	}
	if _, ok := m.Get(k2); ok {
		t.Fatal("Get(k2) hit without a Put")
	}

	if m.Hits() != 1 || m.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", m.Hits(), m.Misses())
	}
	if m.Len() != 1 {
		t.Errorf("Len() = %d, want 1", m.Len())
	}
}

// TestMemoCapacityEvictsLRU: a bounded memo holds at most cap entries and
// evicts strictly in least-recently-used order, where both Get hits and
// Put updates freshen recency.
func TestMemoCapacityEvictsLRU(t *testing.T) {
	key := func(i int) Key { return NewKey().Int(int64(i)) }
	m := NewMemoCap[int](2)
	m.Put(key(1), 1)
	m.Put(key(2), 2)
	m.Get(key(1)) // freshen 1: the victim is now 2
	m.Put(key(3), 3)
	if m.Len() != 2 {
		t.Fatalf("Len() = %d, want 2 at capacity", m.Len())
	}
	if _, ok := m.Get(key(2)); ok {
		t.Error("LRU entry 2 survived the eviction")
	}
	if _, ok := m.Get(key(1)); !ok {
		t.Error("freshened entry 1 was evicted")
	}
	if _, ok := m.Get(key(3)); !ok {
		t.Error("just-inserted entry 3 was evicted")
	}
	if m.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", m.Evictions())
	}

	// A Put on an existing key updates in place: no eviction, fresh value,
	// freshened recency.
	m.Put(key(1), 11)
	if m.Len() != 2 || m.Evictions() != 1 {
		t.Errorf("update-in-place changed size/evictions: len=%d evictions=%d", m.Len(), m.Evictions())
	}
	if v, _ := m.Get(key(1)); v != 11 {
		t.Errorf("updated value = %d, want 11", v)
	}
	m.Put(key(4), 4) // victim must be 3, not the just-updated 1
	if _, ok := m.Get(key(3)); ok {
		t.Error("entry 3 survived though the Put update freshened 1 past it")
	}
}

// TestMemoDropOldest covers the memo-pressure hook: dropping from an
// empty table is a no-op, otherwise the coldest entry goes and is counted
// as an eviction.
func TestMemoDropOldest(t *testing.T) {
	m := NewMemo[int]() // unbounded: evictions only via DropOldest
	if m.DropOldest() {
		t.Error("DropOldest on an empty memo reported an eviction")
	}
	k1, k2 := NewKey().Int(1), NewKey().Int(2)
	m.Put(k1, 1)
	m.Put(k2, 2)
	if !m.DropOldest() {
		t.Fatal("DropOldest evicted nothing")
	}
	if _, ok := m.Get(k1); ok {
		t.Error("DropOldest kept the oldest entry")
	}
	if _, ok := m.Get(k2); !ok {
		t.Error("DropOldest evicted the newest entry")
	}
	if m.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", m.Evictions())
	}
}

// TestMemoUnboundedNeverEvicts: capacity <= 0 keeps every entry, matching
// the pre-bound behaviour.
func TestMemoUnboundedNeverEvicts(t *testing.T) {
	m := NewMemoCap[int](0)
	for i := 0; i < 1000; i++ {
		m.Put(NewKey().Int(int64(i)), i)
	}
	if m.Len() != 1000 || m.Evictions() != 0 {
		t.Errorf("unbounded memo: len=%d evictions=%d, want 1000/0", m.Len(), m.Evictions())
	}
}

// TestMemoByteBudgetEvictsLRU covers the payload-size accounting: entries
// cost their reported bytes, an insert past the byte budget evicts LRU
// entries until the total fits again, and Bytes tracks exactly.
func TestMemoByteBudgetEvictsLRU(t *testing.T) {
	key := func(i int) Key { return NewKey().Int(int64(i)) }
	size := func(v int) int64 { return int64(v) }
	m := NewMemoBudget[int](0, 100, size)
	m.Put(key(1), 40)
	m.Put(key(2), 40)
	if m.Bytes() != 80 {
		t.Fatalf("Bytes() = %d, want 80", m.Bytes())
	}
	m.Get(key(1)) // freshen 1: the byte-budget victim is now 2
	m.Put(key(3), 40)
	if m.Bytes() != 80 || m.Len() != 2 {
		t.Fatalf("after budget eviction: bytes=%d len=%d, want 80/2", m.Bytes(), m.Len())
	}
	if _, ok := m.Get(key(2)); ok {
		t.Error("LRU entry 2 survived the byte-budget eviction")
	}
	if _, ok := m.Get(key(1)); !ok {
		t.Error("freshened entry 1 was evicted")
	}
	if m.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", m.Evictions())
	}

	// Updating a key in place re-sizes it; growing past the budget evicts.
	m.Put(key(1), 70) // table now {1:70, 3:40} = 110 > 100 -> evict LRU (3)
	if m.Len() != 1 || m.Bytes() != 70 {
		t.Fatalf("after in-place growth: len=%d bytes=%d, want 1/70", m.Len(), m.Bytes())
	}
	if _, ok := m.Get(key(3)); ok {
		t.Error("entry 3 survived the in-place growth past budget")
	}
}

// TestMemoByteBudgetOversizedEntry: a single value larger than the whole
// budget must not wedge the table over budget — it is admitted and
// immediately evicted, leaving the table empty but consistent.
func TestMemoByteBudgetOversizedEntry(t *testing.T) {
	m := NewMemoBudget[int](0, 50, func(v int) int64 { return int64(v) })
	m.Put(NewKey().Int(1), 200)
	if m.Len() != 0 || m.Bytes() != 0 {
		t.Fatalf("oversized entry retained: len=%d bytes=%d", m.Len(), m.Bytes())
	}
	// The table still works afterwards.
	k := NewKey().Int(2)
	m.Put(k, 30)
	if v, ok := m.Get(k); !ok || v != 30 {
		t.Fatalf("memo broken after oversized insert: (%d, %v)", v, ok)
	}
}

// TestMemoBudgetAndCapCompose: whichever bound trips first evicts.
func TestMemoBudgetAndCapCompose(t *testing.T) {
	key := func(i int) Key { return NewKey().Int(int64(i)) }
	m := NewMemoBudget[int](3, 100, func(v int) int64 { return int64(v) })
	m.Put(key(1), 10)
	m.Put(key(2), 10)
	m.Put(key(3), 10)
	m.Put(key(4), 10) // entry cap trips: 4 entries, only 40 bytes
	if m.Len() != 3 || m.Bytes() != 30 {
		t.Fatalf("cap bound: len=%d bytes=%d, want 3/30", m.Len(), m.Bytes())
	}
	m.Put(key(5), 90) // byte budget trips: 3 entries would be 110 bytes
	if m.Bytes() > 100 || m.Len() > 3 {
		t.Fatalf("byte bound: len=%d bytes=%d, want <= 3 entries and <= 100 bytes", m.Len(), m.Bytes())
	}
}

// TestMemoCapSemanticsUnchanged pins the existing NewMemoCap behaviour:
// without a size function Bytes stays 0 and only the entry cap evicts.
func TestMemoCapSemanticsUnchanged(t *testing.T) {
	m := NewMemoCap[int](2)
	m.Put(NewKey().Int(1), 1_000_000)
	m.Put(NewKey().Int(2), 2_000_000)
	if m.Bytes() != 0 {
		t.Fatalf("NewMemoCap counts bytes: %d", m.Bytes())
	}
	if m.Len() != 2 || m.Evictions() != 0 {
		t.Fatalf("NewMemoCap evicted early: len=%d evictions=%d", m.Len(), m.Evictions())
	}
	// DropOldest keeps byte accounting consistent even at zero weight.
	m.DropOldest()
	if m.Bytes() != 0 || m.Len() != 1 {
		t.Fatalf("after DropOldest: bytes=%d len=%d", m.Bytes(), m.Len())
	}
}
