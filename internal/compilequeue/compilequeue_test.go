package compilequeue

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(workers)
		var ran atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < 100; i++ {
			wg.Add(1)
			p.Submit(func() {
				ran.Add(1)
				wg.Done()
			})
		}
		wg.Wait()
		p.Close()
		if got := ran.Load(); got != 100 {
			t.Errorf("workers=%d: ran %d jobs, want 100", workers, got)
		}
	}
}

func TestPoolCloseWaitsForInFlightJobs(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Close() // must not return before every submitted job has run
	if got := ran.Load(); got != 50 {
		t.Errorf("Close returned with %d/50 jobs run", got)
	}
}

func TestPoolClampsWorkerCount(t *testing.T) {
	p := NewPool(0) // degenerate request still yields a working pool
	done := make(chan struct{})
	p.Submit(func() { close(done) })
	<-done
	p.Close()
}

func TestKeyDeterministic(t *testing.T) {
	build := func() Key {
		return NewKey().Word(42).Int(-7).Bool(true).Bool(false).Int(1 << 40)
	}
	if build() != build() {
		t.Error("identical fold sequences produced different keys")
	}
}

func TestKeySensitiveToEveryFold(t *testing.T) {
	base := NewKey().Word(1).Int(2).Bool(true)
	variants := map[string]Key{
		"word":       NewKey().Word(3).Int(2).Bool(true),
		"int":        NewKey().Word(1).Int(3).Bool(true),
		"bool":       NewKey().Word(1).Int(2).Bool(false),
		"extra fold": NewKey().Word(1).Int(2).Bool(true).Int(0),
		"reordered":  NewKey().Int(2).Word(1).Bool(true),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("%s variant collided with the base key", name)
		}
	}
}

func TestMemoCountsHitsAndMisses(t *testing.T) {
	m := NewMemo[string]()
	k1 := NewKey().Int(1)
	k2 := NewKey().Int(2)

	if _, ok := m.Get(k1); ok {
		t.Fatal("empty memo reported a hit")
	}
	m.Put(k1, "one")
	if v, ok := m.Get(k1); !ok || v != "one" {
		t.Fatalf("Get(k1) = %q, %v after Put", v, ok)
	}
	if _, ok := m.Get(k2); ok {
		t.Fatal("Get(k2) hit without a Put")
	}

	if m.Hits() != 1 || m.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", m.Hits(), m.Misses())
	}
	if m.Len() != 1 {
		t.Errorf("Len() = %d, want 1", m.Len())
	}
}
