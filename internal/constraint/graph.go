// Package constraint maintains SMARQ's constraint graph: check-constraints
// and anti-constraints over memory operations (§4 of the paper), with the
// incremental cycle detection of §5.4.1.
//
// An edge src → dst always means "src must be allocated an alias register
// order no later than dst" (order(src) ≤ order(dst) for check-constraints,
// strictly earlier for anti-constraints), and dst's allocation is blocked
// until src's. The graph maintains the partial order T with the invariance
// that every edge src → dst has T(src) < T(dst); a violated invariance on
// an anti-constraint insertion signals a potential cycle, resolved either
// by shifting T of the reachable set or — when a true cycle exists — by
// the allocator inserting an AMOV (§5.2).
package constraint

import (
	"fmt"
	"sort"
)

// Kind distinguishes the two constraint types.
type Kind uint8

const (
	// Check: order(src) ≤ order(dst); src performs an alias check that
	// must cover dst's alias register.
	Check Kind = iota
	// Anti: order(src) < order(dst); dst must not check src's register.
	Anti
)

// String returns the kind name.
func (k Kind) String() string {
	if k == Anti {
		return "anti"
	}
	return "check"
}

// Graph is the constraint graph. Node IDs are region op IDs plus any
// pseudo-op IDs the allocator creates for AMOVs.
type Graph struct {
	t   map[int]int
	out map[int]map[int]Kind
	in  map[int]map[int]Kind

	// NumCheck and NumAnti count constraints ever added (Figure 19's
	// statistic); retargeting moves edges without recounting.
	NumCheck, NumAnti int
}

// New returns an empty constraint graph.
func New() *Graph {
	return &Graph{
		t:   make(map[int]int),
		out: make(map[int]map[int]Kind),
		in:  make(map[int]map[int]Kind),
	}
}

// SetT initializes (or overrides) a node's partial order value. The
// allocator initializes every op's T to its original program position
// (Figure 13 line 2) and gives AMOV pseudo-ops explicit values.
func (g *Graph) SetT(id, t int) { g.t[id] = t }

// T returns a node's partial order value.
func (g *Graph) T(id int) int { return g.t[id] }

func (g *Graph) addEdge(src, dst int, k Kind) {
	if src == dst {
		panic(fmt.Sprintf("constraint: self edge on op %d", src))
	}
	if g.out[src] == nil {
		g.out[src] = make(map[int]Kind)
	}
	if g.in[dst] == nil {
		g.in[dst] = make(map[int]Kind)
	}
	g.out[src][dst] = k
	g.in[dst][src] = k
}

// AddCheck inserts the check-constraint src →check dst. When the
// T-invariance is violated, src's T is lowered to T(dst)-1; this is always
// safe because check sources are not yet scheduled and therefore have no
// incoming constraints (§5.4.1: "Since X is not scheduled yet, there is no
// constraint →check X or →anti X yet").
func (g *Graph) AddCheck(src, dst int) {
	if g.t[src] >= g.t[dst] {
		g.t[src] = g.t[dst] - 1
	}
	g.addEdge(src, dst, Check)
	g.NumCheck++
}

// TryAddAnti attempts to insert the anti-constraint src →anti dst. When the
// T-invariance holds, or can be restored by shifting the set H reachable
// from dst, the edge is added and TryAddAnti returns true. When src is
// reachable from dst the edge would close a cycle; the graph is left
// unchanged and TryAddAnti returns false — the allocator must break the
// cycle with an AMOV.
func (g *Graph) TryAddAnti(src, dst int) bool {
	if g.t[src] < g.t[dst] {
		g.addEdge(src, dst, Anti)
		g.NumAnti++
		return true
	}
	h := g.Reachable(dst)
	if h[src] {
		return false
	}
	delta := g.t[src] - g.t[dst] + 1
	for z := range h {
		g.t[z] += delta
	}
	g.addEdge(src, dst, Anti)
	g.NumAnti++
	return true
}

// Reachable returns the set of nodes reachable from start by constraint
// edges, including start itself (the paper's set H).
func (g *Graph) Reachable(start int) map[int]bool {
	h := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range g.out[n] {
			if !h[m] {
				h[m] = true
				stack = append(stack, m)
			}
		}
	}
	return h
}

// InDegree returns the number of constraints currently blocking id's
// allocation.
func (g *Graph) InDegree(id int) int { return len(g.in[id]) }

// HasEdge reports whether the edge src → dst is currently present, and its
// kind.
func (g *Graph) HasEdge(src, dst int) (Kind, bool) {
	k, ok := g.out[src][dst]
	return k, ok
}

// RemoveOut deletes all constraints whose source is src (performed when src
// is allocated, Figure 13 lines 66-67) and returns the destinations whose
// in-degree dropped to zero, in ascending ID order. The order feeds the
// allocator's drain FIFO and therefore the final register offsets; sorting
// keeps allocation deterministic across runs (Go randomizes map iteration).
func (g *Graph) RemoveOut(src int) []int {
	var freed []int
	for dst := range g.out[src] {
		delete(g.in[dst], src)
		if len(g.in[dst]) == 0 {
			freed = append(freed, dst)
		}
	}
	delete(g.out, src)
	sort.Ints(freed)
	return freed
}

// RetargetIncomingChecks moves pending check-constraints z →check old to
// z →check newDst for every source z accepted by shouldMove (Figure 13
// lines 41-42: after an AMOV, *not-yet-scheduled* checkers must check the
// moved register instead; already-scheduled checkers execute before the
// AMOV and keep checking the original register). Each mover's T is lowered
// below T(newDst) when needed — safe because movers are unscheduled and
// therefore have no incoming constraints. It returns the sources whose
// edges moved.
func (g *Graph) RetargetIncomingChecks(old, newDst int, shouldMove func(src int) bool) []int {
	srcs := make([]int, 0, len(g.in[old]))
	for src := range g.in[old] {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs) // deterministic retarget order regardless of map layout
	var moved []int
	for _, src := range srcs {
		if g.in[old][src] != Check || !shouldMove(src) {
			continue
		}
		delete(g.in[old], src)
		delete(g.out[src], old)
		if g.t[src] >= g.t[newDst] {
			g.t[src] = g.t[newDst] - 1
		}
		g.addEdge(src, newDst, Check)
		moved = append(moved, src)
	}
	return moved
}

// CheckInvariance verifies T(src) < T(dst) for every edge; used by tests
// and the allocator's internal assertions.
func (g *Graph) CheckInvariance() error {
	for src, m := range g.out {
		for dst := range m {
			if g.t[src] >= g.t[dst] {
				return fmt.Errorf("constraint: invariance violated: T(%d)=%d >= T(%d)=%d", src, g.t[src], dst, g.t[dst])
			}
		}
	}
	return nil
}

// Edges returns all current edges for inspection.
func (g *Graph) Edges() []struct {
	Src, Dst int
	Kind     Kind
} {
	var out []struct {
		Src, Dst int
		Kind     Kind
	}
	for src, m := range g.out {
		for dst, k := range m {
			out = append(out, struct {
				Src, Dst int
				Kind     Kind
			}{src, dst, k})
		}
	}
	return out
}
