// Package constraint maintains SMARQ's constraint graph: check-constraints
// and anti-constraints over memory operations (§4 of the paper), with the
// incremental cycle detection of §5.4.1.
//
// An edge src → dst always means "src must be allocated an alias register
// order no later than dst" (order(src) ≤ order(dst) for check-constraints,
// strictly earlier for anti-constraints), and dst's allocation is blocked
// until src's. The graph maintains the partial order T with the invariance
// that every edge src → dst has T(src) < T(dst); a violated invariance on
// an anti-constraint insertion signals a potential cycle, resolved either
// by shifting T of the reachable set or — when a true cycle exists — by
// the allocator inserting an AMOV (§5.2).
//
// Storage is slice-indexed adjacency (node IDs are dense region op IDs
// plus a few pseudo IDs), and graphs are reusable: Reset clears a graph
// without freeing its adjacency storage, and Get/Put recycle graphs
// through a pool so steady-state compilation allocates nothing here.
package constraint

import (
	"fmt"
	"sort"
	"sync"
)

// Kind distinguishes the two constraint types.
type Kind uint8

const (
	// Check: order(src) ≤ order(dst); src performs an alias check that
	// must cover dst's alias register.
	Check Kind = iota
	// Anti: order(src) < order(dst); dst must not check src's register.
	Anti
)

// String returns the kind name.
func (k Kind) String() string {
	if k == Anti {
		return "anti"
	}
	return "check"
}

// edge is one adjacency entry; node is the far endpoint.
type edge struct {
	node int32
	kind Kind
}

// Graph is the constraint graph. Node IDs are region op IDs plus any
// pseudo-op IDs the allocator creates for AMOVs.
type Graph struct {
	t   []int
	out [][]edge
	in  [][]edge

	// Reachability scratch: mark[i] == epoch means node i was visited by
	// the current traversal; bumping epoch invalidates all marks at once.
	mark    []int64
	epoch   int64
	stack   []int32
	visited []int32 // nodes marked by the last traversal, for T shifting
	freed   []int   // RemoveOut's reused result buffer

	// NumCheck and NumAnti count constraints ever added (Figure 19's
	// statistic); retargeting moves edges without recounting.
	NumCheck, NumAnti int
}

// New returns an empty constraint graph.
func New() *Graph { return &Graph{} }

// pool recycles graphs across compilations (the compile path runs on
// worker goroutines, so the pool must be concurrency-safe).
var pool = sync.Pool{New: func() interface{} { return New() }}

// Get returns a cleared graph from the pool with storage for at least
// sizeHint nodes.
func Get(sizeHint int) *Graph {
	g := pool.Get().(*Graph)
	g.Reset(sizeHint)
	return g
}

// Put returns a graph to the pool. The caller must not use it afterwards.
func Put(g *Graph) {
	if g != nil {
		pool.Put(g)
	}
}

// Reset clears the graph for a new region while keeping its allocated
// storage, growing it to cover at least sizeHint nodes.
func (g *Graph) Reset(sizeHint int) {
	// Clear the full capacity: stale T values or adjacency lists beyond
	// the current length would otherwise resurface when the graph grows
	// back into previously used storage.
	g.t = g.t[:cap(g.t)]
	for i := range g.t {
		g.t[i] = 0
	}
	g.t = g.t[:0]
	g.out = clearAdj(g.out)
	g.in = clearAdj(g.in)
	g.NumCheck, g.NumAnti = 0, 0
	g.stack = g.stack[:0]
	g.visited = g.visited[:0]
	g.grow(sizeHint - 1)
}

func clearAdj(adj [][]edge) [][]edge {
	adj = adj[:cap(adj)]
	for i := range adj {
		adj[i] = adj[i][:0]
	}
	return adj[:0]
}

// grow extends the node storage to include id.
func (g *Graph) grow(id int) {
	if id < len(g.t) {
		return
	}
	for len(g.t) <= id {
		g.t = append(g.t, 0)
	}
	g.out = growAdj(g.out, id)
	g.in = growAdj(g.in, id)
	for len(g.mark) <= id {
		g.mark = append(g.mark, 0)
	}
}

func growAdj(adj [][]edge, id int) [][]edge {
	if id < cap(adj) {
		// Re-expose recycled per-node lists (truncated, capacity kept).
		return adj[:id+1]
	}
	n := make([][]edge, id+1, 2*(id+1))
	copy(n, adj)
	return n[:id+1]
}

// SetT initializes (or overrides) a node's partial order value. The
// allocator initializes every op's T to its original program position
// (Figure 13 line 2) and gives AMOV pseudo-ops explicit values.
func (g *Graph) SetT(id, t int) {
	g.grow(id)
	g.t[id] = t
}

// T returns a node's partial order value (0 for untouched nodes).
func (g *Graph) T(id int) int {
	if id < len(g.t) {
		return g.t[id]
	}
	return 0
}

func (g *Graph) addEdge(src, dst int, k Kind) {
	if src == dst {
		panic(fmt.Sprintf("constraint: self edge on op %d", src))
	}
	g.grow(src)
	g.grow(dst)
	// Map semantics: re-adding an existing edge overwrites its kind.
	for i, e := range g.out[src] {
		if int(e.node) == dst {
			g.out[src][i].kind = k
			for j, ie := range g.in[dst] {
				if int(ie.node) == src {
					g.in[dst][j].kind = k
					break
				}
			}
			return
		}
	}
	g.out[src] = append(g.out[src], edge{node: int32(dst), kind: k})
	g.in[dst] = append(g.in[dst], edge{node: int32(src), kind: k})
}

// removeEdge deletes src → dst from both adjacency lists (no-op when
// absent), preserving insertion order.
func (g *Graph) removeEdge(src, dst int) {
	g.out[src] = spliceOut(g.out[src], dst)
	g.in[dst] = spliceOut(g.in[dst], src)
}

func spliceOut(list []edge, node int) []edge {
	for i, e := range list {
		if int(e.node) == node {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// AddCheck inserts the check-constraint src →check dst. When the
// T-invariance is violated, src's T is lowered to T(dst)-1; this is always
// safe because check sources are not yet scheduled and therefore have no
// incoming constraints (§5.4.1: "Since X is not scheduled yet, there is no
// constraint →check X or →anti X yet").
func (g *Graph) AddCheck(src, dst int) {
	g.grow(src)
	g.grow(dst)
	if g.t[src] >= g.t[dst] {
		g.t[src] = g.t[dst] - 1
	}
	g.addEdge(src, dst, Check)
	g.NumCheck++
}

// TryAddAnti attempts to insert the anti-constraint src →anti dst. When the
// T-invariance holds, or can be restored by shifting the set H reachable
// from dst, the edge is added and TryAddAnti returns true. When src is
// reachable from dst the edge would close a cycle; the graph is left
// unchanged and TryAddAnti returns false — the allocator must break the
// cycle with an AMOV.
func (g *Graph) TryAddAnti(src, dst int) bool {
	g.grow(src)
	g.grow(dst)
	if g.t[src] < g.t[dst] {
		g.addEdge(src, dst, Anti)
		g.NumAnti++
		return true
	}
	g.traverse(dst)
	if g.mark[src] == g.epoch {
		return false
	}
	delta := g.t[src] - g.t[dst] + 1
	for _, z := range g.visited {
		g.t[z] += delta
	}
	g.addEdge(src, dst, Anti)
	g.NumAnti++
	return true
}

// traverse marks every node reachable from start (including start) with a
// fresh epoch and records them in g.visited.
func (g *Graph) traverse(start int) {
	g.epoch++
	g.mark[start] = g.epoch
	g.visited = append(g.visited[:0], int32(start))
	g.stack = append(g.stack[:0], int32(start))
	for len(g.stack) > 0 {
		n := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		for _, e := range g.out[n] {
			if g.mark[e.node] != g.epoch {
				g.mark[e.node] = g.epoch
				g.visited = append(g.visited, e.node)
				g.stack = append(g.stack, e.node)
			}
		}
	}
}

// Reachable returns the set of nodes reachable from start by constraint
// edges, including start itself (the paper's set H).
func (g *Graph) Reachable(start int) map[int]bool {
	g.grow(start)
	g.traverse(start)
	h := make(map[int]bool, len(g.visited))
	for _, z := range g.visited {
		h[int(z)] = true
	}
	return h
}

// InDegree returns the number of constraints currently blocking id's
// allocation.
func (g *Graph) InDegree(id int) int {
	if id < len(g.in) {
		return len(g.in[id])
	}
	return 0
}

// HasEdge reports whether the edge src → dst is currently present, and its
// kind.
func (g *Graph) HasEdge(src, dst int) (Kind, bool) {
	if src < len(g.out) {
		for _, e := range g.out[src] {
			if int(e.node) == dst {
				return e.kind, true
			}
		}
	}
	return 0, false
}

// RemoveOut deletes all constraints whose source is src (performed when src
// is allocated, Figure 13 lines 66-67) and returns the destinations whose
// in-degree dropped to zero, in ascending ID order. The order feeds the
// allocator's drain FIFO and therefore the final register offsets; sorting
// keeps allocation deterministic across runs. The returned slice is reused
// and only valid until the next RemoveOut call.
func (g *Graph) RemoveOut(src int) []int {
	if src >= len(g.out) {
		return nil
	}
	freed := g.freed[:0]
	for _, e := range g.out[src] {
		dst := int(e.node)
		g.in[dst] = spliceOut(g.in[dst], src)
		if len(g.in[dst]) == 0 {
			freed = append(freed, dst)
		}
	}
	g.out[src] = g.out[src][:0]
	sort.Ints(freed)
	g.freed = freed
	return freed
}

// RetargetIncomingChecks moves pending check-constraints z →check old to
// z →check newDst for every source z accepted by shouldMove (Figure 13
// lines 41-42: after an AMOV, *not-yet-scheduled* checkers must check the
// moved register instead; already-scheduled checkers execute before the
// AMOV and keep checking the original register). Each mover's T is lowered
// below T(newDst) when needed — safe because movers are unscheduled and
// therefore have no incoming constraints. It returns the sources whose
// edges moved.
func (g *Graph) RetargetIncomingChecks(old, newDst int, shouldMove func(src int) bool) []int {
	g.grow(old)
	g.grow(newDst)
	srcs := make([]int, 0, len(g.in[old]))
	for _, e := range g.in[old] {
		if e.kind == Check {
			srcs = append(srcs, int(e.node))
		}
	}
	sort.Ints(srcs) // deterministic retarget order regardless of storage layout
	var moved []int
	for _, src := range srcs {
		if !shouldMove(src) {
			continue
		}
		g.removeEdge(src, old)
		if g.t[src] >= g.t[newDst] {
			g.t[src] = g.t[newDst] - 1
		}
		g.addEdge(src, newDst, Check)
		moved = append(moved, src)
	}
	return moved
}

// CheckInvariance verifies T(src) < T(dst) for every edge; used by tests
// and the allocator's internal assertions.
func (g *Graph) CheckInvariance() error {
	for src := range g.out {
		for _, e := range g.out[src] {
			if g.t[src] >= g.t[e.node] {
				return fmt.Errorf("constraint: invariance violated: T(%d)=%d >= T(%d)=%d", src, g.t[src], e.node, g.t[e.node])
			}
		}
	}
	return nil
}

// Edges returns all current edges for inspection.
func (g *Graph) Edges() []struct {
	Src, Dst int
	Kind     Kind
} {
	var out []struct {
		Src, Dst int
		Kind     Kind
	}
	for src := range g.out {
		for _, e := range g.out[src] {
			out = append(out, struct {
				Src, Dst int
				Kind     Kind
			}{src, int(e.node), e.kind})
		}
	}
	return out
}
