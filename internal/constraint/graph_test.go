package constraint

import (
	"math/rand"
	"testing"
)

func newGraph(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.SetT(i, i)
	}
	return g
}

func TestAddCheckFixesT(t *testing.T) {
	g := newGraph(5)
	// Check 4 ->check 1: T(4)=4 >= T(1)=1, so T(4) must drop to 0.
	g.AddCheck(4, 1)
	if g.T(4) != 0 {
		t.Errorf("T(4) = %d, want 0", g.T(4))
	}
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
	// Check 0 ->check 3: invariance already holds, T unchanged.
	g.AddCheck(0, 3)
	if g.T(0) != 0 {
		t.Errorf("T(0) = %d, want 0", g.T(0))
	}
	if g.NumCheck != 2 {
		t.Errorf("NumCheck = %d, want 2", g.NumCheck)
	}
}

func TestTryAddAntiSimple(t *testing.T) {
	g := newGraph(3)
	if !g.TryAddAnti(0, 2) {
		t.Fatal("anti 0->2 rejected")
	}
	if g.NumAnti != 1 {
		t.Errorf("NumAnti = %d, want 1", g.NumAnti)
	}
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
}

func TestTryAddAntiShiftsReachableSet(t *testing.T) {
	g := newGraph(6)
	// Build a chain 1 -> 2 -> 3 with checks, then force anti 5 -> 1.
	g.AddCheck(1, 2)
	g.AddCheck(2, 3)
	// T(5)=5 >= T(1)=1, not a cycle (5 not reachable from 1).
	if !g.TryAddAnti(5, 1) {
		t.Fatal("anti 5->1 rejected, want shift")
	}
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
	if g.T(1) <= g.T(5) {
		t.Errorf("T(1)=%d must exceed T(5)=%d after shift", g.T(1), g.T(5))
	}
	// The whole reachable component must have shifted together.
	if g.T(2) <= g.T(1) || g.T(3) <= g.T(2) {
		t.Errorf("chain order broken: T1=%d T2=%d T3=%d", g.T(1), g.T(2), g.T(3))
	}
}

func TestTryAddAntiDetectsCycle(t *testing.T) {
	g := newGraph(4)
	// 1 ->check 3 (T(1) stays 1 < 3).
	g.AddCheck(1, 3)
	// anti 3 -> 1 closes a cycle: must be rejected and leave the graph
	// untouched.
	before := len(g.Edges())
	if g.TryAddAnti(3, 1) {
		t.Fatal("cycle-closing anti accepted")
	}
	if len(g.Edges()) != before {
		t.Error("rejected anti modified the graph")
	}
	if g.NumAnti != 0 {
		t.Errorf("NumAnti = %d, want 0", g.NumAnti)
	}
}

func TestTryAddAntiIndirectCycle(t *testing.T) {
	g := newGraph(6)
	g.AddCheck(1, 2)
	g.TryAddAnti(2, 4)
	g.AddCheck(4, 5)
	// 5 ... -> anti -> 1 would close 1->2->4->5->1.
	if g.TryAddAnti(5, 1) {
		t.Fatal("indirect cycle not detected")
	}
}

func TestInDegreeAndRemoveOut(t *testing.T) {
	g := newGraph(5)
	g.AddCheck(0, 3)
	g.AddCheck(1, 3)
	g.TryAddAnti(2, 3)
	if g.InDegree(3) != 3 {
		t.Errorf("InDegree(3) = %d, want 3", g.InDegree(3))
	}
	if freed := g.RemoveOut(0); len(freed) != 0 {
		t.Errorf("RemoveOut(0) freed %v, want none", freed)
	}
	if freed := g.RemoveOut(1); len(freed) != 0 {
		t.Errorf("RemoveOut(1) freed %v, want none", freed)
	}
	freed := g.RemoveOut(2)
	if len(freed) != 1 || freed[0] != 3 {
		t.Errorf("RemoveOut(2) freed %v, want [3]", freed)
	}
	if g.InDegree(3) != 0 {
		t.Errorf("InDegree(3) = %d after removals, want 0", g.InDegree(3))
	}
}

func TestRetargetIncomingChecks(t *testing.T) {
	g := newGraph(6)
	g.AddCheck(4, 1) // pending checker of 1 (T(4) lowered to 0)
	g.AddCheck(5, 1) // another
	g.TryAddAnti(0, 1)
	// Introduce the AMOV pseudo node 100 just before some op with T=2.
	g.SetT(100, 1)
	moved := g.RetargetIncomingChecks(1, 100, func(int) bool { return true })
	if len(moved) != 2 {
		t.Fatalf("retargeted %d edges, want 2", len(moved))
	}
	if _, ok := g.HasEdge(4, 100); !ok {
		t.Error("edge 4->100 missing after retarget")
	}
	if _, ok := g.HasEdge(4, 1); ok {
		t.Error("edge 4->1 still present after retarget")
	}
	// The anti edge 0->1 must remain.
	if k, ok := g.HasEdge(0, 1); !ok || k != Anti {
		t.Error("anti edge 0->1 lost by retarget")
	}
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
	if g.InDegree(1) != 1 || g.InDegree(100) != 2 {
		t.Errorf("in-degrees = (%d,%d), want (1,2)", g.InDegree(1), g.InDegree(100))
	}
}

func TestReachableIncludesStart(t *testing.T) {
	g := newGraph(3)
	g.AddCheck(0, 1)
	h := g.Reachable(0)
	if !h[0] || !h[1] || h[2] {
		t.Errorf("Reachable(0) = %v, want {0,1}", h)
	}
}

func TestSelfEdgePanics(t *testing.T) {
	g := newGraph(2)
	defer func() {
		if recover() == nil {
			t.Error("self edge did not panic")
		}
	}()
	g.AddCheck(1, 1)
}

func TestKindString(t *testing.T) {
	if Check.String() != "check" || Anti.String() != "anti" {
		t.Error("kind names wrong")
	}
}

// TestPaperCycleExample replays the cycle-detection narrative of §5.4.3
// (Figure 12): constraints M5 ->check M1, M5 ->check M3(?), anti M2 -> M5,
// then anti M5(?) -> M3 closes a cycle.
func TestPaperCycleExample(t *testing.T) {
	// Use IDs 1..5 for M1..M5, T initialized to original order.
	g := New()
	for i := 1; i <= 5; i++ {
		g.SetT(i, i)
	}
	// Scheduling M5 first (hoisted): unscheduled M1 and M3 will check it.
	g.AddCheck(1, 5) // T(1) -> 4? no: T(1)=1 < T(5)=5 holds, stays.
	g.AddCheck(3, 5)
	// M3 also checks M4 after M4 is scheduled below it.
	g.AddCheck(4, 3)
	if g.T(4) >= g.T(3) {
		t.Fatalf("T(4)=%d not lowered below T(3)=%d", g.T(4), g.T(3))
	}
	// Now an anti from 3 to 1: 3 reaches 5, not 1 — shift path.
	if !g.TryAddAnti(3, 1) {
		t.Fatal("anti 3->1 rejected")
	}
	// Finally an anti from 5 to 3 would close the cycle 3 -> 5 via check.
	if g.TryAddAnti(5, 3) {
		t.Fatal("cycle 3->check 5, 5->anti 3 not detected")
	}
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
}

// TestInvarianceUnderRandomStreams fuzzes the incremental maintenance: a
// random interleaving of AddCheck (sources always "unscheduled" — fresh
// nodes without incoming edges, as the allocator guarantees) and
// TryAddAnti must keep the T-invariance and never accept a cycle.
func TestInvarianceUnderRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		g := New()
		const n = 20
		for i := 0; i < n; i++ {
			g.SetT(i, i)
		}
		// scheduled[i]: whether node i has been "scheduled" (may be an
		// anti source/target). Unscheduled nodes can only be check
		// sources — mirroring the allocator's contract.
		scheduled := make([]bool, n)
		for step := 0; step < 60; step++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if rng.Intn(2) == 0 {
				// Check edge: source must be unscheduled, dst scheduled now.
				if scheduled[a] {
					continue
				}
				if _, dup := g.HasEdge(a, b); dup {
					continue
				}
				scheduled[b] = true
				g.AddCheck(a, b)
			} else {
				// Anti edge: both endpoints scheduled.
				if !scheduled[a] {
					continue
				}
				scheduled[b] = true
				if _, dup := g.HasEdge(a, b); dup {
					continue
				}
				accepted := g.TryAddAnti(a, b)
				if accepted {
					// Must not have closed a cycle: a must not be
					// reachable from itself.
					h := g.Reachable(a)
					count := 0
					for range h {
						count++
					}
					_ = count
					if reachesSelf(g, a) {
						t.Fatalf("trial %d step %d: accepted anti closed a cycle", trial, step)
					}
				}
			}
			if err := g.CheckInvariance(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}

// reachesSelf reports whether node a can reach itself through >= 1 edge.
func reachesSelf(g *Graph, a int) bool {
	for m := range g.Reachable(a) {
		if m == a {
			continue
		}
		if g.Reachable(m)[a] {
			return true
		}
	}
	return false
}

// TestRejectedAntiLeavesGraphUsable: after a rejected anti, later valid
// operations still work (the graph was not corrupted). The construction
// follows the allocator's contract: check sources are fresh nodes with no
// incoming edges.
func TestRejectedAntiLeavesGraphUsable(t *testing.T) {
	g := newGraph(6)
	g.AddCheck(2, 0) // T(2) -> -1
	g.AddCheck(1, 2) // T(1) -> -2
	// 0 -> anti -> 1 closes 1 ->check 2 ->check 0 ->anti 1: rejected.
	if g.TryAddAnti(0, 1) {
		t.Fatal("cycle accepted")
	}
	// The graph still accepts consistent edges afterwards.
	if !g.TryAddAnti(0, 5) {
		t.Error("valid anti rejected after a cycle rejection")
	}
	g.AddCheck(4, 5)
	if err := g.CheckInvariance(); err != nil {
		t.Error(err)
	}
}

// TestPooledGraphIsClean verifies Get returns a graph with no residue from
// the previous user: stale T values, adjacency, or counters from a larger
// earlier region must not resurface.
func TestPooledGraphIsClean(t *testing.T) {
	g := Get(8)
	for i := 0; i < 8; i++ {
		g.SetT(i, i)
	}
	g.AddCheck(5, 6)
	if ok := g.TryAddAnti(1, 2); !ok {
		t.Fatal("anti rejected on acyclic graph")
	}
	Put(g)

	g2 := Get(4)
	if g2.NumCheck != 0 || g2.NumAnti != 0 {
		t.Fatalf("recycled graph has counters %d/%d", g2.NumCheck, g2.NumAnti)
	}
	for i := 0; i < 8; i++ {
		if g2.T(i) != 0 {
			t.Fatalf("recycled graph has stale T(%d)=%d", i, g2.T(i))
		}
	}
	if _, ok := g2.HasEdge(5, 6); ok {
		t.Fatal("recycled graph has stale edge")
	}
	if g2.InDegree(6) != 0 {
		t.Fatal("recycled graph has stale in-degree")
	}
	Put(g2)
}

// TestGraphReuseAllocs pins the steady-state allocation count of the
// pooled graph: once the adjacency storage has grown to the working size,
// a full add/traverse/remove cycle must not allocate.
func TestGraphReuseAllocs(t *testing.T) {
	const nodes = 64
	work := func() {
		g := Get(nodes)
		for i := 0; i < nodes; i++ {
			g.SetT(i, i)
		}
		for i := 0; i+1 < nodes; i += 2 {
			g.AddCheck(i+1, i)
		}
		for i := 0; i+2 < nodes; i++ {
			if !g.TryAddAnti(i, i+2) {
				t.Fatal("unexpected cycle")
			}
		}
		for i := 0; i < nodes; i++ {
			g.InDegree(i)
		}
		Put(g)
	}
	work() // warm the pool to working size
	allocs := testing.AllocsPerRun(50, work)
	if allocs > 0 {
		t.Errorf("pooled graph reuse allocates %.1f times per compile, want 0", allocs)
	}
}
