// Package core implements SMARQ's alias register allocation — the paper's
// primary contribution (§5, Figure 13).
//
// The allocator consumes a stream of scheduled operations (it is designed
// to sit inside a list scheduler, §5.3) and incrementally:
//
//   - builds check- and anti-constraints from the dependences, exactly one
//     dependence examined per edge, at its Dst op's scheduling;
//   - maintains the partial order T with incremental cycle detection,
//     breaking true cycles by inserting AMOV instructions (§5.2);
//   - assigns alias register *orders* in constraint order with delayed
//     allocation: an op's register order is assigned only once its last
//     pending checker has been allocated, which both satisfies
//     REGISTER-ALLOCATION-RULE and makes every drained register dead at the
//     op just scheduled — so the rotation emitted after that op safely
//     reuses them (§3.2);
//   - converts orders to offsets via the invariance
//     order(X) = base(X) + offset(X), flagging overflow when an offset
//     reaches the physical register count.
//
// Edge direction convention (documented in DESIGN.md): a constraint edge
// A → B means order(A) ≤ order(B) (strict for anti), and B's allocation is
// blocked until A's. All edges are created pointing into the op being
// scheduled, so unscheduled ops never have incoming edges.
//
// Per-op state lives in dense slices indexed by op ID (region ops first,
// AMOV/rotate pseudo IDs after), and the constraint graph is pooled, so a
// compilation's allocator cost is a handful of slice allocations rather
// than per-op map traffic.
package core

import (
	"fmt"
	"slices"
	"sync"

	"smarq/internal/constraint"
	"smarq/internal/deps"
	"smarq/internal/ir"
	"smarq/internal/readyq"
)

// Stats summarizes one region's allocation, feeding Figures 17 and 19.
type Stats struct {
	MemOps       int // memory operations seen
	PBits, CBits int // ops that set / check alias registers
	Checks       int // check-constraints inserted
	Antis        int // anti-constraints inserted
	AMovs        int // AMOV instructions inserted
	AMovCleanups int // AMOVs that are pure cleanups (no destination register)
	Rotates      int // rotate instructions inserted
	RotateTotal  int // total rotation amount (== final BASE)
	WorkingSet   int // max offset + 1 over all allocated registers
	Overflowed   bool
}

// Result is a completed allocation.
type Result struct {
	// Seq is the final linear sequence: the scheduled ops with AMOVs and
	// rotates interleaved. Memory ops carry AROffset/P/C annotations.
	Seq []*ir.Op
	// Order and Base are dense per-op-ID slices (including AMOV/rotate
	// pseudo IDs), for analysis. Order[id] is -1 when op id was never
	// allocated a register; Base[id] is -1 when op id was never scheduled.
	Order, Base []int
	// Checks and Antis are the final logical constraints (after AMOV
	// retargeting), as (src, dst) pairs.
	Checks, Antis [][2]int
	Stats         Stats
}

// Allocated reports whether op id received an alias register order.
func (r *Result) Allocated(id int) bool {
	return id >= 0 && id < len(r.Order) && r.Order[id] >= 0
}

// resultPool recycles Results (and, through them, the sequence, order,
// base and constraint storage) across compiles.
var resultPool = sync.Pool{New: func() interface{} { return new(Result) }}

// Release hands the Result's storage back for reuse by a later
// allocation. The caller must be done with every view into it, including
// Seq; hot paths (the compile pipeline) call it once the schedule has
// been frozen and measured.
func (r *Result) Release() {
	for i := range r.Seq {
		r.Seq[i] = nil
	}
	r.Seq = r.Seq[:0]
	r.Order = r.Order[:0]
	r.Base = r.Base[:0]
	r.Checks = r.Checks[:0]
	r.Antis = r.Antis[:0]
	r.Stats = Stats{}
	resultPool.Put(r)
}

type amovInfo struct {
	op        *ir.Op
	srcID     int  // the op whose register this AMOV reads
	hasTarget bool // false for the cleanup form
}

// Allocator performs integrated alias register allocation. Create one per
// region, call Schedule for every op in the scheduler's chosen order, then
// Finish (after which the allocator must not be reused — Finish returns
// its pooled constraint graph and recycles the allocator itself).
type Allocator struct {
	ds      *deps.Set
	numRegs int
	g       *constraint.Graph
	opts    Options

	// Dense per-op state, indexed by op ID (pseudo IDs grow the slices).
	scheduled  []bool
	allocated  []bool
	pBit, cBit []bool
	order      []int32 // valid only where allocated
	base       []int32 // valid only where scheduled
	pending    []bool  // scheduled, needs a register, not yet allocated

	// pendingIDs lists ops ever marked pending, in schedule order, so
	// their bases are monotone non-decreasing; pendingHead lazily skips
	// entries whose pending flag has since cleared. Pressure's minimum
	// pinned base is therefore the first live entry — an O(1) probe
	// instead of a scan.
	pendingIDs  []int32
	pendingHead int
	pendingP    int // pending ops with P bit (overflow estimate term)
	nextOrder   int
	// ready holds allocatable ops keyed by arrival sequence number: a
	// CLZ-bitmap queue whose PopMin is exactly the drain FIFO of
	// Figure 13, with O(1) selection and a pooled backing.
	ready    readyq.Queue
	readySeq int
	// emit accumulates one Schedule call's output; the returned slice is
	// only valid until the next call.
	emit []*ir.Op
	// rangeChecked records (checker, original range owner) pairs: "checker
	// performs an alias check covering owner's access range". Written once
	// per check-constraint; AMOV retargeting moves the register but not
	// the range identity, so this map never needs updating. It implements
	// ANTI-CONSTRAINT's "there is no Y →check X" condition.
	rangeChecked map[[2]int]bool
	// liveChecks mirrors the graph's current check edges (including
	// retargets) for final verification.
	liveChecks map[[2]int]bool
	liveAntis  [][2]int
	movedTo    []int32    // op -> AMOV currently holding its entry, -1 none
	amovs      []amovInfo // indexed by pseudo ID - numOps; zero for rotates
	numOps     int
	nextPseudo int
	overflow   bool
	seq        []*ir.Op
	res        *Result // pooled; receives seq and the dense views at Finish
	stats      Stats
}

var allocPool = sync.Pool{New: func() interface{} {
	return &Allocator{
		rangeChecked: make(map[[2]int]bool),
		liveChecks:   make(map[[2]int]bool),
	}
}}

// NewAllocator creates an allocator for a region with numOps real ops, the
// given dependences, and numRegs physical alias registers. Every real op's
// T is initialized to its original program order (op ID). Allocators
// recycle through an internal pool (Finish returns them); only the
// sequence and constraint listings that escape into the Result are
// allocated fresh per region.
func NewAllocator(numOps int, ds *deps.Set, numRegs int) *Allocator {
	a := allocPool.Get().(*Allocator)
	a.ds = ds
	a.numRegs = numRegs
	a.opts = Options{}
	a.g = constraint.Get(numOps)
	a.scheduled = resetBools(a.scheduled, numOps)
	a.allocated = resetBools(a.allocated, numOps)
	a.pBit = resetBools(a.pBit, numOps)
	a.cBit = resetBools(a.cBit, numOps)
	a.pending = resetBools(a.pending, numOps)
	a.order = resetInt32s(a.order, numOps, 0)
	a.base = resetInt32s(a.base, numOps, 0)
	a.pendingIDs = a.pendingIDs[:0]
	a.pendingHead = 0
	a.pendingP = 0
	a.nextOrder = 0
	a.ready.Reset(numOps+1, numOps+1)
	a.readySeq = 0
	a.emit = a.emit[:0]
	clear(a.rangeChecked)
	clear(a.liveChecks)
	a.res = resultPool.Get().(*Result)
	a.liveAntis = a.res.Antis[:0]
	a.movedTo = resetInt32s(a.movedTo, numOps, -1)
	a.amovs = a.amovs[:0]
	a.numOps = numOps
	a.nextPseudo = numOps
	a.overflow = false
	if cap(a.res.Seq) < numOps+8 {
		a.res.Seq = make([]*ir.Op, 0, numOps+8)
	}
	a.seq = a.res.Seq[:0]
	a.stats = Stats{}
	for i := 0; i < numOps; i++ {
		a.g.SetT(i, i)
	}
	return a
}

func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resetInt32s(s []int32, n int, v int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

// resizeInts returns s with length n and at least that capacity; contents
// are unspecified (callers overwrite every entry).
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growTo extends the per-op slices to include pseudo op id.
func (a *Allocator) growTo(id int) {
	for len(a.scheduled) <= id {
		a.scheduled = append(a.scheduled, false)
		a.allocated = append(a.allocated, false)
		a.pBit = append(a.pBit, false)
		a.cBit = append(a.cBit, false)
		a.order = append(a.order, 0)
		a.base = append(a.base, 0)
		a.pending = append(a.pending, false)
		a.movedTo = append(a.movedTo, -1)
	}
}

// resolve follows AMOV moves to the op currently holding x's access range.
func (a *Allocator) resolve(x int) int {
	for a.movedTo[x] >= 0 {
		x = int(a.movedTo[x])
	}
	return x
}

// pushReady enqueues op x for allocation, preserving arrival order.
func (a *Allocator) pushReady(x int) {
	a.ready.Grow(x+1, a.readySeq+1)
	a.ready.Push(x, a.readySeq)
	a.readySeq++
}

// Schedule informs the allocator that op y is the next instruction in the
// schedule. It returns the ops to emit at this point, in order: any AMOVs
// inserted to break cycles, then y itself, then a rotate when registers
// were freed. The caller must place them exactly in that order. The
// returned slice is reused and only valid until the next Schedule call.
func (a *Allocator) Schedule(y *ir.Op) []*ir.Op {
	a.growTo(y.ID)
	if a.scheduled[y.ID] {
		panic(fmt.Sprintf("core: op %d scheduled twice", y.ID))
	}
	a.scheduled[y.ID] = true
	baseAtStart := a.nextOrder
	a.base[y.ID] = int32(baseAtStart)
	if a.opts.DisableRotation {
		// BASE never moves: offsets equal orders.
		a.base[y.ID] = 0
	}

	a.emit = a.emit[:0] // AMOVs first, then y, then a possible rotate
	if y.IsMem() {
		for _, d := range a.ds.ByDst(y.ID) {
			x := d.Src
			if !a.scheduled[x] {
				// Check-constraint x →check y: x will execute after y and
				// must check y's register (Figure 13 lines 9-12).
				a.cBit[x] = true
				if !a.pBit[y.ID] {
					a.pBit[y.ID] = true
					a.stats.PBits++
				}
				a.g.AddCheck(x, y.ID)
				a.rangeChecked[[2]int{x, y.ID}] = true
				a.liveChecks[[2]int{x, y.ID}] = true
				continue
			}
			// x executes before y: consider the anti-constraint preventing
			// y from checking x's register (Figure 13 lines 13-16). If an
			// AMOV already moved x's entry, the constraint applies to the
			// holder.
			if a.opts.DisableAnti {
				continue
			}
			xr := a.resolve(x)
			if a.allocated[xr] || !a.pBit[xr] || !a.cBit[y.ID] {
				continue // already satisfied, or no check can happen
			}
			if a.rangeChecked[[2]int{y.ID, x}] {
				continue // y legitimately checks x's range; cannot prohibit it
			}
			if _, dup := a.g.HasEdge(xr, y.ID); dup {
				continue
			}
			if a.g.TryAddAnti(xr, y.ID) {
				a.stats.Antis++
				a.liveAntis = append(a.liveAntis, [2]int{xr, y.ID})
				continue
			}
			// True cycle: break it with an AMOV just before y (§5.2).
			a.emit = append(a.emit, a.insertAMov(xr, y.ID))
		}
	}

	a.seq = append(a.seq, a.emit...)
	a.seq = append(a.seq, y)

	if y.IsMem() && (a.pBit[y.ID] || a.cBit[y.ID]) {
		a.stats.MemOps++ // memory ops that participate in alias detection
		if a.cBit[y.ID] {
			a.stats.CBits++
		}
		if a.g.InDegree(y.ID) == 0 {
			a.pushReady(y.ID)
		} else {
			a.pending[y.ID] = true
			a.pendingIDs = append(a.pendingIDs, int32(y.ID))
			if a.pBit[y.ID] {
				a.pendingP++
			}
		}
	} else if y.IsMem() {
		a.stats.MemOps++
	}

	a.drain()

	a.emit = append(a.emit, y)
	if a.nextOrder > baseAtStart && !a.opts.DisableRotation {
		rot := &ir.Op{
			ID:       a.nextPseudo,
			Kind:     ir.Rotate,
			Dst:      ir.NoVReg,
			Amount:   a.nextOrder - baseAtStart,
			AROffset: -1,
		}
		a.nextPseudo++
		a.seq = append(a.seq, rot)
		a.emit = append(a.emit, rot)
		a.stats.Rotates++
		a.stats.RotateTotal += rot.Amount
	}
	return a.emit
}

// insertAMov creates the AMOV pseudo-op that moves (or clears) x's alias
// register just before the op being scheduled (whose ID is yID), retargets
// x's pending checkers to the new register, and adds the anti-constraint
// protecting the moved range (Figure 13 lines 39-48).
func (a *Allocator) insertAMov(x, yID int) *ir.Op {
	xp := a.nextPseudo
	a.nextPseudo++
	a.growTo(xp)
	a.g.SetT(xp, a.g.T(yID)-1)

	moved := a.g.RetargetIncomingChecks(x, xp, func(src int) bool {
		return !a.scheduled[src]
	})
	op := &ir.Op{ID: xp, Kind: ir.AMov, Dst: ir.NoVReg, AROffset: -1}
	for len(a.amovs) <= xp-a.numOps {
		a.amovs = append(a.amovs, amovInfo{})
	}
	a.amovs[xp-a.numOps] = amovInfo{op: op, srcID: x, hasTarget: len(moved) > 0}
	a.scheduled[xp] = true
	a.base[xp] = int32(a.nextOrder)
	if a.opts.DisableRotation {
		a.base[xp] = 0
	}
	a.movedTo[x] = int32(xp)
	a.stats.AMovs++

	for _, z := range moved {
		delete(a.liveChecks, [2]int{z, x})
		a.liveChecks[[2]int{z, xp}] = true
	}

	if len(moved) > 0 {
		// The moved range will be checked later; it needs a register and
		// the anti-constraint so yID cannot check it.
		a.pBit[xp] = true
		a.stats.PBits++
		if !a.g.TryAddAnti(xp, yID) {
			// T(xp) = T(yID)-1 guarantees acceptance; a rejection means a
			// bookkeeping bug.
			panic("core: anti-constraint on fresh AMOV rejected")
		}
		a.stats.Antis++
		a.liveAntis = append(a.liveAntis, [2]int{xp, yID})
		a.pending[xp] = true
		a.pendingIDs = append(a.pendingIDs, int32(xp))
		a.pendingP++
	} else {
		a.stats.AMovCleanups++
	}

	// Retargeting may have unblocked x itself.
	a.maybeReady(x)
	return op
}

func (a *Allocator) maybeReady(x int) {
	if a.pending[x] && a.g.InDegree(x) == 0 {
		a.pending[x] = false
		if a.pBit[x] {
			a.pendingP--
		}
		a.pushReady(x)
	}
}

// drain allocates every ready op in FIFO order (Figure 13 lines 62-70):
// the queue is keyed by arrival sequence, so PopMin is the FIFO head.
func (a *Allocator) drain() {
	for {
		x, _, ok := a.ready.PopMin()
		if !ok {
			break
		}
		a.order[x] = int32(a.nextOrder)
		off := a.nextOrder - int(a.base[x])
		if off >= a.numRegs {
			a.overflow = true
		}
		if a.pBit[x] {
			a.nextOrder++
		}
		a.allocated[x] = true
		for _, z := range a.g.RemoveOut(x) {
			a.maybeReady(z)
		}
	}
}

// Pressure returns the conservative worst-case alias register demand if
// scheduling continues speculatively: allocated-but-live orders plus a
// register for every pending P op plus futureP potential setters, measured
// against the earliest base still pinned by a pending op (Figure 13's
// overflow estimate, lines 21-25). The scheduler compares it to the
// physical register count to pick speculation or non-speculation mode.
func (a *Allocator) Pressure(futureP int) int {
	maxOrder := a.nextOrder + a.pendingP + futureP
	// pendingIDs bases are monotone non-decreasing (each op's base is the
	// nextOrder at its scheduling, and nextOrder never decreases), so the
	// earliest pinned base is the first still-pending entry — found by
	// advancing the head past drained entries, O(1) amortized.
	for a.pendingHead < len(a.pendingIDs) && !a.pending[a.pendingIDs[a.pendingHead]] {
		a.pendingHead++
	}
	minBase := a.nextOrder
	if a.pendingHead < len(a.pendingIDs) {
		if b := int(a.base[a.pendingIDs[a.pendingHead]]); b < minBase {
			minBase = b
		}
	}
	return maxOrder - minBase
}

// NextOrder exposes the next order counter (tests and traces).
func (a *Allocator) NextOrder() int { return a.nextOrder }

// pendingCount counts ops still awaiting allocation (Finish's sanity
// check).
func (a *Allocator) pendingCount() int {
	n := 0
	for _, p := range a.pending {
		if p {
			n++
		}
	}
	return n
}

// Finish completes the allocation: every op must have been scheduled. It
// patches AROffset/P/C onto memory ops and SrcOff/DstOff onto AMOVs, and
// returns the result. An error is returned when an offset overflowed the
// physical register file — the caller must re-optimize less aggressively.
func (a *Allocator) Finish() (*Result, error) {
	if n := a.pendingCount() + a.ready.Len(); n != 0 {
		return nil, fmt.Errorf("core: %d ops still pending at Finish (constraint cycle not broken?)", n)
	}
	for _, op := range a.seq {
		switch {
		case op.IsMem():
			if a.allocated[op.ID] {
				op.AROffset = int(a.order[op.ID] - a.base[op.ID])
				op.P = a.pBit[op.ID]
				op.C = a.cBit[op.ID]
			}
		case op.Kind == ir.AMov:
			info := &a.amovs[op.ID-a.numOps]
			if !a.allocated[info.srcID] {
				return nil, fmt.Errorf("core: AMOV %d source op %d never allocated", op.ID, info.srcID)
			}
			op.SrcOff = int(a.order[info.srcID] - a.base[op.ID])
			if info.hasTarget {
				op.DstOff = int(a.order[op.ID] - a.base[op.ID])
			} else {
				op.DstOff = op.SrcOff
			}
			if op.SrcOff >= a.numRegs || op.DstOff >= a.numRegs || op.SrcOff < 0 {
				a.overflow = true
			}
		}
	}
	ws := 0
	res := a.res
	order := resizeInts(res.Order, len(a.scheduled))
	base := resizeInts(res.Base, len(a.scheduled))
	for id := range a.scheduled {
		order[id], base[id] = -1, -1
		if a.scheduled[id] {
			base[id] = int(a.base[id])
		}
		if a.allocated[id] {
			order[id] = int(a.order[id])
			if off := int(a.order[id]-a.base[id]) + 1; off > ws {
				ws = off
			}
		}
	}
	a.stats.WorkingSet = ws
	a.stats.Overflowed = a.overflow

	res.Seq = a.seq
	res.Order = order
	res.Base = base
	res.Stats = a.stats
	res.Stats.Checks = a.g.NumCheck
	res.Stats.Antis = a.g.NumAnti
	res.Checks = res.Checks[:0]
	for pair := range a.liveChecks {
		res.Checks = append(res.Checks, pair)
	}
	// Deterministic constraint listing regardless of map iteration order.
	slices.SortFunc(res.Checks, func(x, y [2]int) int {
		if x[0] != y[0] {
			return x[0] - y[0]
		}
		return x[1] - y[1]
	})
	res.Antis = a.liveAntis
	overflow, numRegs := a.overflow, a.numRegs
	// The constraint graph is pooled; it holds no state the Result needs.
	constraint.Put(a.g)
	a.g = nil
	// The allocator itself recycles too. Everything the Result references
	// (seq, antis and the dense order/base/checks) lives in the Result,
	// which recycles separately through its own Release, so allocator
	// reuse cannot clobber it.
	a.ds = nil
	a.seq = nil
	a.liveAntis = nil
	a.res = nil
	for i := range a.amovs {
		a.amovs[i].op = nil
	}
	allocPool.Put(a)
	if overflow {
		return res, fmt.Errorf("core: alias register overflow (working set %d > %d registers)", ws, numRegs)
	}
	return res, nil
}

// VerifyOrders confirms REGISTER-ALLOCATION-RULE on a finished result:
// order(src) ≤ order(dst) for every final check constraint and
// order(src) < order(dst) for every anti constraint. Tests call it; it is
// cheap enough to keep as a production assertion as well.
func VerifyOrders(res *Result) error {
	for _, c := range res.Checks {
		if !res.Allocated(c[0]) || !res.Allocated(c[1]) {
			return fmt.Errorf("core: check constraint %v references unallocated op", c)
		}
		if res.Order[c[0]] > res.Order[c[1]] {
			return fmt.Errorf("core: check constraint %v violated: order %d > %d", c, res.Order[c[0]], res.Order[c[1]])
		}
	}
	for _, c := range res.Antis {
		if !res.Allocated(c[0]) || !res.Allocated(c[1]) {
			return fmt.Errorf("core: anti constraint %v references unallocated op", c)
		}
		if res.Order[c[0]] >= res.Order[c[1]] {
			return fmt.Errorf("core: anti constraint %v violated: order %d >= %d", c, res.Order[c[0]], res.Order[c[1]])
		}
	}
	return nil
}
