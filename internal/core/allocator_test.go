package core

import (
	"math/rand"
	"strings"
	"testing"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// mkOps builds a list of memory ops from a kind string: 'L' load, 'S'
// store, 'a' non-memory arith.
func mkOps(kinds string) []*ir.Op {
	ops := make([]*ir.Op, len(kinds))
	for i, k := range kinds {
		o := &ir.Op{ID: i, Dst: ir.NoVReg, AROffset: -1}
		switch k {
		case 'L':
			o.Kind = ir.Load
			o.GOp = guest.Ld8
			o.Mem = &ir.MemInfo{Size: 8}
		case 'S':
			o.Kind = ir.Store
			o.GOp = guest.St8
			o.Mem = &ir.MemInfo{Size: 8}
		default:
			o.Kind = ir.Arith
		}
		ops[i] = o
	}
	return ops
}

func dep(src, dst int) deps.Dep {
	return deps.Dep{Src: src, Dst: dst, Rel: alias.MayAlias}
}

func xdep(src, dst int) deps.Dep {
	return deps.Dep{Src: src, Dst: dst, Rel: alias.MayAlias, Extended: true}
}

func mkDeps(ds ...deps.Dep) *deps.Set {
	s := deps.NewSet()
	for _, d := range ds {
		s.Add(d)
	}
	return s
}

func offsets(res *Result, ids ...int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = res.Order[id] - res.Base[id]
	}
	return out
}

// TestReorderBasic replays the shape of Figure 2/4: two loads hoisted above
// two stores; the demoted stores must check the hoisted loads.
func TestReorderBasic(t *testing.T) {
	// Original order: 0:S 1:L 2:S 3:L. Deps: 0-1, 0-3, 2-3 (0-2 and 1-2
	// disambiguated by the compiler, like Figure 2's same-base stores).
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(0, 3), dep(2, 3))
	// Schedule loads first: 3, 1, 2, 0.
	res, err := AllocateSequence(ops, []int{3, 1, 2, 0}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
	if !ops[3].P || !ops[1].P {
		t.Error("hoisted loads must carry P bits")
	}
	if !ops[0].C || !ops[2].C {
		t.Error("demoted stores must carry C bits")
	}
	if ops[1].C || ops[3].C {
		t.Error("loads check nothing here; C bit wrongly set")
	}
	if res.Stats.Checks != 3 {
		t.Errorf("checks = %d, want 3", res.Stats.Checks)
	}
	if res.Stats.AMovs != 0 {
		t.Errorf("AMOVs = %d, want 0", res.Stats.AMovs)
	}
	// order(checker) <= order(checkee) for (0,1), (0,3), (2,3).
	for _, c := range [][2]int{{0, 1}, {0, 3}, {2, 3}} {
		if res.Order[c[0]] > res.Order[c[1]] {
			t.Errorf("order(%d)=%d > order(%d)=%d", c[0], res.Order[c[0]], c[1], res.Order[c[1]])
		}
	}
}

// TestDelayedAllocationReducesWorkingSet mirrors §3.2/Figure 7: rotation
// plus delayed allocation lets registers be reused, so the working set is
// smaller than the number of P ops when checkers arrive early.
func TestDelayedAllocationReducesWorkingSet(t *testing.T) {
	// Three independent hoisted loads each checked by the store right
	// after it: pairs (0,1) (2,3) (4,5) with schedule L S L S L S hoisting
	// each load above its own store only.
	ops := mkOps("SLSLSL")
	ds := mkDeps(dep(0, 1), dep(2, 3), dep(4, 5))
	res, err := AllocateSequence(ops, []int{1, 0, 3, 2, 5, 4}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PBits != 3 {
		t.Fatalf("P bits = %d, want 3", res.Stats.PBits)
	}
	if res.Stats.WorkingSet != 1 {
		t.Errorf("working set = %d, want 1 (each register dies before the next is set)", res.Stats.WorkingSet)
	}
	if res.Stats.Rotates != 3 {
		t.Errorf("rotates = %d, want 3", res.Stats.Rotates)
	}
	if res.Stats.RotateTotal != 3 {
		t.Errorf("total rotation = %d, want 3 (== final BASE)", res.Stats.RotateTotal)
	}
}

// TestInterleavedLiveRanges: overlapping check live ranges need distinct
// registers.
func TestInterleavedLiveRanges(t *testing.T) {
	// Loads 1,3 hoisted above both stores 0,2; both stores check both.
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(0, 3), dep(2, 1), dep(2, 3))
	res, err := AllocateSequence(ops, []int{1, 3, 0, 2}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkingSet != 2 {
		t.Errorf("working set = %d, want 2", res.Stats.WorkingSet)
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
}

// TestCOnlySharesOrder: a checker that sets nothing shares next_order with
// the following P allocation (§5.1 FAST ALGORITHM: "If only C(X) is set, we
// just set order(X) = next_order without increasing").
func TestCOnlySharesOrder(t *testing.T) {
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(2, 3))
	res, err := AllocateSequence(ops, []int{1, 0, 3, 2}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	// op0 (C-only) and op1 (P) share order 0; op2/op3 share order 1.
	if res.Order[0] != res.Order[1] {
		t.Errorf("C-only op0 order %d != checkee op1 order %d", res.Order[0], res.Order[1])
	}
	if res.Order[2] != res.Order[3] {
		t.Errorf("C-only op2 order %d != checkee op3 order %d", res.Order[2], res.Order[3])
	}
}

// TestBackwardDepCheckWithoutReorder: an extended dependence makes a check
// fire between ops that stay in order (§2.4, Figure 5).
func TestBackwardDepCheckWithoutReorder(t *testing.T) {
	// op0: forwarding source load; op1: intervening store. Load elim adds
	// backward dep 1 -> 0. Program-order schedule.
	ops := mkOps("LS")
	ds := mkDeps(xdep(1, 0))
	res, err := AllocateSequence(ops, []int{0, 1}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ops[0].P {
		t.Error("forwarding source must set an alias register")
	}
	if !ops[1].C {
		t.Error("intervening store must check")
	}
	if res.Order[1] > res.Order[0] {
		t.Error("checker's order must not exceed checkee's")
	}
}

// TestAntiConstraint: §4.2 — a P op followed by an unrelated C op must get
// a strictly earlier order so the C op cannot check it.
func TestAntiConstraint(t *testing.T) {
	// op0: load (P, checked by op3 via backward dep), op1: store with C
	// (checks hoisted op2), op2: load hoisted above op1, op3: store
	// checking op0 (backward dep). Dep 0->1 may-alias but unordered.
	ops := mkOps("LSLS")
	ds := mkDeps(
		xdep(3, 0), // op3 checks op0 (e.g. store elimination)
		dep(1, 2),  // op2 hoisted above op1 -> op1 checks op2
		dep(0, 1),  // may-alias, not reordered -> anti candidate
	)
	// Schedule: 2 (hoisted), 0, 1, 3.
	res, err := AllocateSequence(ops, []int{2, 0, 1, 3}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Antis != 1 {
		t.Fatalf("antis = %d, want 1", res.Stats.Antis)
	}
	if res.Order[0] >= res.Order[1] {
		t.Errorf("anti violated: order(0)=%d >= order(1)=%d — op1 would falsely check op0",
			res.Order[0], res.Order[1])
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
}

// TestCycleCleanupAMov is the hand-worked scenario from the package
// design: X=0, Y=1, U=2 with deps 0->1 (normal), 1->2 (normal),
// 2->0 (extended). Schedule 0, 2, 1. The anti 0->1 closes a cycle and the
// pending checker of 0 (op 2) is already scheduled, so the AMOV degenerates
// to a cleanup.
func TestCycleCleanupAMov(t *testing.T) {
	ops := mkOps("LSS")
	ds := mkDeps(dep(0, 1), dep(1, 2), xdep(2, 0))
	res, err := AllocateSequence(ops, []int{0, 2, 1}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AMovs != 1 || res.Stats.AMovCleanups != 1 {
		t.Fatalf("AMovs=%d cleanups=%d, want 1/1", res.Stats.AMovs, res.Stats.AMovCleanups)
	}
	// The cleanup must sit immediately before op1 in the sequence.
	var amovIdx, op1Idx int = -1, -1
	for i, op := range res.Seq {
		if op.Kind == ir.AMov {
			amovIdx = i
		}
		if op.ID == 1 {
			op1Idx = i
		}
	}
	if amovIdx == -1 || amovIdx != op1Idx-1 {
		t.Errorf("AMOV at %d, op1 at %d: cleanup must immediately precede the op it protects", amovIdx, op1Idx)
	}
	am := res.Seq[amovIdx]
	if am.SrcOff != am.DstOff {
		t.Errorf("cleanup AMOV has SrcOff=%d DstOff=%d, want equal", am.SrcOff, am.DstOff)
	}
	// Hand-computed orders: op1 C-only order 0, op2 order 0 (C+P), op0
	// order 1.
	if got := []int{res.Order[0], res.Order[1], res.Order[2]}; got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Errorf("orders = %v, want [1 0 0]", got)
	}
	// Cleanup reads op0's register: SrcOff = order(0) - base(amov) = 1.
	if am.SrcOff != 1 {
		t.Errorf("cleanup SrcOff = %d, want 1", am.SrcOff)
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
}

// TestCycleMovingAMov extends the cleanup scenario with an unscheduled
// checker (op 3, backward dep 3 -> 0) so the AMOV must actually move the
// register and the checker is retargeted to it.
func TestCycleMovingAMov(t *testing.T) {
	ops := mkOps("LSSS")
	ds := mkDeps(dep(0, 1), dep(1, 2), xdep(2, 0), xdep(3, 0))
	res, err := AllocateSequence(ops, []int{0, 2, 1, 3}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AMovs != 1 || res.Stats.AMovCleanups != 0 {
		t.Fatalf("AMovs=%d cleanups=%d, want 1/0", res.Stats.AMovs, res.Stats.AMovCleanups)
	}
	var am *ir.Op
	for _, op := range res.Seq {
		if op.Kind == ir.AMov {
			am = op
		}
	}
	if am == nil {
		t.Fatal("no AMOV in sequence")
	}
	if am.SrcOff == am.DstOff {
		t.Error("moving AMOV degenerated to cleanup")
	}
	// Hand-computed: order(3)=0 (C-only), order(amov)=0 (P), order(1)=1
	// (C-only), order(2)=1 (C+P), order(0)=2.
	if res.Order[0] != 2 || res.Order[1] != 1 || res.Order[2] != 1 || res.Order[3] != 0 {
		t.Errorf("orders = [%d %d %d %d], want [2 1 1 0]",
			res.Order[0], res.Order[1], res.Order[2], res.Order[3])
	}
	if am.SrcOff != 2 || am.DstOff != 0 {
		t.Errorf("AMOV offsets = (%d,%d), want (2,0)", am.SrcOff, am.DstOff)
	}
	// The retargeted checker (op3) must have order <= the AMOV's order.
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
	if res.Stats.WorkingSet != 3 {
		t.Errorf("working set = %d, want 3", res.Stats.WorkingSet)
	}
}

// TestAntiViaMovedRegister: after an AMOV moves a register, later anti
// candidates against the original op must protect the holder instead.
func TestAntiViaMovedRegister(t *testing.T) {
	// Same as TestCycleMovingAMov plus op4: store with C bit (checks
	// hoisted op5) and dep 0->4 (may-alias, not reordered).
	ops := mkOps("LSSSSL")
	ds := mkDeps(dep(0, 1), dep(1, 2), xdep(2, 0), xdep(3, 0),
		dep(4, 5), dep(0, 4))
	// Schedule: 0, 2, 1, 5 (hoisted above 4), 3, 4.
	res, err := AllocateSequence(ops, []int{0, 2, 1, 5, 3, 4}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
	// op4 checks op5 (C bit); the holder of op0's moved range must have a
	// strictly smaller order than op4, so op4's check (which covers orders
	// >= order(4)) cannot reach it. The holder is the AMOV pseudo-op: the
	// single allocated ID that is not a real op.
	holder := -1
	for id := range res.Order {
		if id >= len(ops) && res.Allocated(id) {
			holder = id
		}
	}
	if holder == -1 {
		t.Fatal("AMOV holder not allocated")
	}
	if res.Order[holder] >= res.Order[4] {
		t.Errorf("order(holder)=%d >= order(op4)=%d: op4 could falsely check the moved range",
			res.Order[holder], res.Order[4])
	}
	if res.Stats.Antis != 1 {
		t.Errorf("antis = %d, want 1 (the AMOV's; op4's protection is automatic once the holder is allocated)", res.Stats.Antis)
	}
}

func TestOverflowDetection(t *testing.T) {
	// 5 loads hoisted above one store that checks all of them: 5 live
	// registers with only 4 physical.
	ops := mkOps("SLLLLL")
	ds := mkDeps(dep(0, 1), dep(0, 2), dep(0, 3), dep(0, 4), dep(0, 5))
	_, err := AllocateSequence(ops, []int{1, 2, 3, 4, 5, 0}, ds, 4)
	if err == nil {
		t.Fatal("expected overflow error")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("error = %v, want overflow", err)
	}
	// With 5 registers it must fit.
	ops = mkOps("SLLLLL")
	res, err := AllocateSequence(ops, []int{1, 2, 3, 4, 5, 0}, ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WorkingSet != 5 {
		t.Errorf("working set = %d, want 5", res.Stats.WorkingSet)
	}
}

func TestPressureEstimate(t *testing.T) {
	ops := mkOps("SLLL")
	ds := mkDeps(dep(0, 1), dep(0, 2), dep(0, 3))
	a := NewAllocator(len(ops), ds, 64)
	if p := a.Pressure(0); p != 0 {
		t.Errorf("initial pressure = %d, want 0", p)
	}
	a.Schedule(ops[1])
	a.Schedule(ops[2])
	// Two pending P ops; with 1 potential future setter the estimate is 3.
	if p := a.Pressure(1); p != 3 {
		t.Errorf("pressure = %d, want 3", p)
	}
	a.Schedule(ops[3])
	a.Schedule(ops[0])
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if p := a.Pressure(0); p != 0 {
		t.Errorf("final pressure = %d, want 0", p)
	}
}

func TestNonMemOpsPassThrough(t *testing.T) {
	ops := mkOps("aLaSa")
	ds := mkDeps(dep(1, 3))
	res, err := AllocateSequence(ops, []int{0, 3, 2, 1, 4}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	// op1 demoted below op3: op1 checks op3.
	if !ops[1].C || !ops[3].P {
		t.Error("C/P bits missing on reordered pair")
	}
	if len(res.Seq) < 5 {
		t.Errorf("sequence lost ops: %d < 5", len(res.Seq))
	}
}

func TestScheduleTwicePanics(t *testing.T) {
	ops := mkOps("L")
	a := NewAllocator(1, deps.NewSet(), 4)
	a.Schedule(ops[0])
	defer func() {
		if recover() == nil {
			t.Error("double schedule did not panic")
		}
	}()
	a.Schedule(ops[0])
}

func TestFinishRejectsBadSchedule(t *testing.T) {
	ops := mkOps("LS")
	if _, err := AllocateSequence(ops, []int{0, 5}, mkDeps(), 4); err == nil {
		t.Error("out-of-range schedule accepted")
	}
}

func TestNoDepsNoRegisters(t *testing.T) {
	ops := mkOps("LSLS")
	res, err := AllocateSequence(ops, []int{3, 2, 1, 0}, mkDeps(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PBits != 0 || res.Stats.CBits != 0 || res.Stats.WorkingSet != 0 {
		t.Errorf("stats = %+v, want no register activity", res.Stats)
	}
	for _, op := range ops {
		if op.AROffset != -1 {
			t.Errorf("op %d got register offset %d, want none", op.ID, op.AROffset)
		}
	}
}

func TestRotationKeepsBaseInvariance(t *testing.T) {
	// order(X) = base(X) + offset(X) must hold for every allocated op.
	ops := mkOps("SLSLSL")
	ds := mkDeps(dep(0, 1), dep(0, 3), dep(2, 3), dep(2, 5), dep(4, 5))
	res, err := AllocateSequence(ops, []int{1, 3, 5, 0, 2, 4}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Seq {
		if op.IsMem() && op.AROffset >= 0 {
			if res.Order[op.ID] != res.Base[op.ID]+op.AROffset {
				t.Errorf("op %d: order %d != base %d + offset %d",
					op.ID, res.Order[op.ID], res.Base[op.ID], op.AROffset)
			}
		}
	}
	// Sum of rotations equals the final next_order (all registers are
	// eventually released).
	if res.Stats.RotateTotal != res.Stats.PBits {
		t.Errorf("rotation total %d != P count %d", res.Stats.RotateTotal, res.Stats.PBits)
	}
}

// TestAMovChain: a register moved by one AMOV can need moving again when a
// second cycle forms against the holder; resolve() must follow the chain.
func TestAMovChain(t *testing.T) {
	// Extend TestCycleMovingAMov: after the first AMOV (holding op0's
	// range), create a second cycle against the holder via a later
	// anti candidate whose target reaches it.
	ops := mkOps("LSSSSS")
	ds := mkDeps(
		dep(0, 1), dep(1, 2), xdep(2, 0), xdep(3, 0), // first cycle (as before)
		dep(0, 4), dep(4, 5), xdep(5, 0), // op4 anti candidate, op5 checks op0's range
	)
	res, err := AllocateSequence(ops, []int{0, 2, 1, 5, 4, 3}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOrders(res); err != nil {
		t.Error(err)
	}
	if res.Stats.AMovs < 1 {
		t.Fatalf("expected at least one AMOV, got %d", res.Stats.AMovs)
	}
	// Whatever the final shape, every offset is in range and the
	// invariance holds (checked via VerifyOrders + the base identity).
	for _, op := range res.Seq {
		if op.IsMem() && op.AROffset >= 0 {
			if res.Order[op.ID] != res.Base[op.ID]+op.AROffset {
				t.Errorf("op %d: base invariance broken", op.ID)
			}
		}
	}
}

// TestPressureNeverNegative: the overflow estimate is a valid upper bound
// throughout random allocations.
func TestPressureNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 6 + rng.Intn(8)
		kinds := make([]byte, n)
		for i := range kinds {
			kinds[i] = "LS"[rng.Intn(2)]
		}
		ops := mkOps(string(kinds))
		ds := deps.NewSet()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					ds.Add(deps.Dep{Src: i, Dst: j, Rel: alias.MayAlias})
				}
			}
		}
		a := NewAllocator(n, ds, 64)
		maxSeen := 0
		for _, id := range rng.Perm(n) {
			a.Schedule(ops[id])
			p := a.Pressure(0)
			if p < 0 {
				t.Fatalf("trial %d: negative pressure %d", trial, p)
			}
			if p > maxSeen {
				maxSeen = p
			}
		}
		res, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// The final working set never exceeds the worst-case estimate
		// seen during scheduling.
		if res.Stats.WorkingSet > maxSeen && res.Stats.WorkingSet > 0 {
			t.Errorf("trial %d: working set %d exceeded max estimate %d",
				trial, res.Stats.WorkingSet, maxSeen)
		}
	}
}
