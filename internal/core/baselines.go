package core

import (
	"fmt"
	"sort"

	"smarq/internal/deps"
	"smarq/internal/ir"
)

// AllocateSequence runs the allocator over a fixed schedule: ops is the
// region's op list indexed by ID, schedule the chosen execution order (op
// IDs). This is the paper's FAST ALGORITHM (§5.1) driver: allocation in
// constraint order, one topological pass, without a surrounding list
// scheduler. It returns the finished result.
func AllocateSequence(ops []*ir.Op, schedule []int, ds *deps.Set, numRegs int) (*Result, error) {
	a := NewAllocator(len(ops), ds, numRegs)
	for _, id := range schedule {
		if id < 0 || id >= len(ops) {
			return nil, fmt.Errorf("core: schedule references op %d of %d", id, len(ops))
		}
		a.Schedule(ops[id])
	}
	return a.Finish()
}

// WorkingSets holds the Figure 17 statistics for one region.
type WorkingSets struct {
	// ProgramOrder: one register per memory operation, allocated in
	// program order — the paper's normalizer (the straightforward
	// order-based allocation of §2.4).
	ProgramOrder int
	// PBitOnly: program-order allocation restricted to operations that
	// set alias registers (Figure 17's first bar).
	PBitOnly int
	// SMARQ: max offset + 1 achieved by the constraint-order allocation
	// with rotation (second bar).
	SMARQ int
	// LowerBound: the maximum number of alias register live ranges
	// crossing any program point (last bar) — no allocation can do
	// better (§6.2).
	LowerBound int
}

// MeasureWorkingSets derives all four Figure 17 statistics from a finished
// allocation and the region's memory operation count.
func MeasureWorkingSets(res *Result, memOps int) WorkingSets {
	return WorkingSets{
		ProgramOrder: memOps,
		PBitOnly:     res.Stats.PBits,
		SMARQ:        res.Stats.WorkingSet,
		LowerBound:   LowerBound(res),
	}
}

// LowerBound computes the live-range lower bound of §6.2: for each final
// check constraint (checker, checkee), the checkee's alias register must
// stay live from the checkee's position in the final sequence to its last
// checker's position. The maximum number of such live ranges crossing any
// point bounds every possible allocation from below.
func LowerBound(res *Result) int {
	pos := make(map[int]int, len(res.Seq))
	for i, op := range res.Seq {
		pos[op.ID] = i
	}
	type interval struct{ start, end int }
	iv := make(map[int]*interval)
	for _, c := range res.Checks {
		srcPos, sok := pos[c[0]]
		dstPos, dok := pos[c[1]]
		if !sok || !dok {
			continue
		}
		in := iv[c[1]]
		if in == nil {
			in = &interval{start: dstPos, end: dstPos}
			iv[c[1]] = in
		}
		if srcPos > in.end {
			in.end = srcPos
		}
	}
	// Sweep: +1 at start, -1 after end.
	type event struct{ at, delta int }
	var events []event
	for _, in := range iv {
		events = append(events, event{in.start, +1}, event{in.end + 1, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // process -1 before +1 at same point
	})
	cur, max := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// ProgramOrderSchedule returns the identity schedule over a region's ops —
// the baseline order used when speculation is disabled.
func ProgramOrderSchedule(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
