package core

import (
	"fmt"
	"sync"

	"smarq/internal/deps"
	"smarq/internal/ir"
)

// AllocateSequence runs the allocator over a fixed schedule: ops is the
// region's op list indexed by ID, schedule the chosen execution order (op
// IDs). This is the paper's FAST ALGORITHM (§5.1) driver: allocation in
// constraint order, one topological pass, without a surrounding list
// scheduler. It returns the finished result.
func AllocateSequence(ops []*ir.Op, schedule []int, ds *deps.Set, numRegs int) (*Result, error) {
	a := NewAllocator(len(ops), ds, numRegs)
	for _, id := range schedule {
		if id < 0 || id >= len(ops) {
			return nil, fmt.Errorf("core: schedule references op %d of %d", id, len(ops))
		}
		a.Schedule(ops[id])
	}
	return a.Finish()
}

// WorkingSets holds the Figure 17 statistics for one region.
type WorkingSets struct {
	// ProgramOrder: one register per memory operation, allocated in
	// program order — the paper's normalizer (the straightforward
	// order-based allocation of §2.4).
	ProgramOrder int
	// PBitOnly: program-order allocation restricted to operations that
	// set alias registers (Figure 17's first bar).
	PBitOnly int
	// SMARQ: max offset + 1 achieved by the constraint-order allocation
	// with rotation (second bar).
	SMARQ int
	// LowerBound: the maximum number of alias register live ranges
	// crossing any program point (last bar) — no allocation can do
	// better (§6.2).
	LowerBound int
}

// MeasureWorkingSets derives all four Figure 17 statistics from a finished
// allocation and the region's memory operation count.
func MeasureWorkingSets(res *Result, memOps int) WorkingSets {
	return WorkingSets{
		ProgramOrder: memOps,
		PBitOnly:     res.Stats.PBits,
		SMARQ:        res.Stats.WorkingSet,
		LowerBound:   LowerBound(res),
	}
}

// lbScratch holds LowerBound's per-call working storage; pooled so the
// per-compile measurement allocates nothing once warm.
type lbScratch struct {
	pos    []int32 // op ID -> sequence position, -1 absent
	start  []int32 // checkee ID -> live-range start position, -1 no range
	end    []int32
	deltas []int32 // sequence position -> net live-range delta
}

var lbPool = sync.Pool{New: func() interface{} { return new(lbScratch) }}

// LowerBound computes the live-range lower bound of §6.2: for each final
// check constraint (checker, checkee), the checkee's alias register must
// stay live from the checkee's position in the final sequence to its last
// checker's position. The maximum number of such live ranges crossing any
// point bounds every possible allocation from below.
func LowerBound(res *Result) int {
	// Max op ID bounds the dense index space (pseudo IDs included).
	maxID := 0
	for _, op := range res.Seq {
		if op.ID > maxID {
			maxID = op.ID
		}
	}
	s := lbPool.Get().(*lbScratch)
	defer lbPool.Put(s)
	s.pos = resetInt32s(s.pos, maxID+1, -1)
	s.start = resetInt32s(s.start, maxID+1, -1)
	s.end = resetInt32s(s.end, maxID+1, -1)
	// deltas[i] accumulates +1 for ranges starting at position i and -1
	// for ranges ending just before i; a prefix sum replaces the sorted
	// event sweep (positions are already the sort key).
	s.deltas = resetInt32s(s.deltas, len(res.Seq)+1, 0)
	for i, op := range res.Seq {
		s.pos[op.ID] = int32(i)
	}
	for _, c := range res.Checks {
		if c[0] > maxID || c[1] > maxID {
			continue
		}
		srcPos, dstPos := s.pos[c[0]], s.pos[c[1]]
		if srcPos < 0 || dstPos < 0 {
			continue
		}
		if s.start[c[1]] < 0 {
			s.start[c[1]] = dstPos
			s.end[c[1]] = dstPos
		}
		if srcPos > s.end[c[1]] {
			s.end[c[1]] = srcPos
		}
	}
	for id := 0; id <= maxID; id++ {
		if s.start[id] < 0 {
			continue
		}
		s.deltas[s.start[id]]++
		s.deltas[s.end[id]+1]--
	}
	cur, max := int32(0), int32(0)
	for _, d := range s.deltas {
		cur += d
		if cur > max {
			max = cur
		}
	}
	return int(max)
}

// ProgramOrderSchedule returns the identity schedule over a region's ops —
// the baseline order used when speculation is disabled.
func ProgramOrderSchedule(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
