package core

import (
	"math/rand"
	"testing"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/ir"
)

func TestLowerBoundSimple(t *testing.T) {
	// Two disjoint live ranges -> lower bound 1; the SMARQ working set
	// matches it.
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(2, 3))
	res, err := AllocateSequence(ops, []int{1, 0, 3, 2}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(res); lb != 1 {
		t.Errorf("LowerBound = %d, want 1", lb)
	}
	ws := MeasureWorkingSets(res, 4)
	if ws.ProgramOrder != 4 || ws.PBitOnly != 2 || ws.SMARQ != 1 || ws.LowerBound != 1 {
		t.Errorf("working sets = %+v, want {4 2 1 1}", ws)
	}
}

func TestLowerBoundOverlapping(t *testing.T) {
	// Both loads live across both stores -> lower bound 2.
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(0, 3), dep(2, 1), dep(2, 3))
	res, err := AllocateSequence(ops, []int{1, 3, 0, 2}, ds, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(res); lb != 2 {
		t.Errorf("LowerBound = %d, want 2", lb)
	}
	if res.Stats.WorkingSet < lb(t, res) {
		t.Error("working set below lower bound — impossible")
	}
}

func lb(t *testing.T, res *Result) int {
	t.Helper()
	return LowerBound(res)
}

func TestProgramOrderSchedule(t *testing.T) {
	s := ProgramOrderSchedule(4)
	for i, v := range s {
		if v != i {
			t.Fatalf("ProgramOrderSchedule[%d] = %d", i, v)
		}
	}
}

// TestWorkingSetNeverBelowLowerBound is the structural half of Figure 17:
// for random regions and random schedules, SMARQ's working set is always
// >= the live-range lower bound, and both are <= the P-bit count.
func TestWorkingSetNeverBelowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		res, _, nMem := randomAllocation(rng, 64)
		if res == nil {
			continue
		}
		lbv := LowerBound(res)
		ws := res.Stats.WorkingSet
		if ws < lbv {
			t.Fatalf("trial %d: working set %d < lower bound %d", trial, ws, lbv)
		}
		if res.Stats.PBits > nMem {
			t.Fatalf("trial %d: more P bits (%d) than memory ops (%d)", trial, res.Stats.PBits, nMem)
		}
	}
}

// randomAllocation builds a random region (loads/stores), random forward
// may-alias deps plus occasional backward extended deps, and a random
// schedule; it runs the allocator and returns the result (nil on overflow,
// which is legitimate for tiny register files).
func randomAllocation(rng *rand.Rand, numRegs int) (*Result, []*ir.Op, int) {
	res, ops, nMem, _ := randomAllocationDeps(rng, numRegs)
	return res, ops, nMem
}

// randomAllocationDeps also returns the dependence set, for the detection
// semantics test.
func randomAllocationDeps(rng *rand.Rand, numRegs int) (*Result, []*ir.Op, int, *deps.Set) {
	n := 4 + rng.Intn(12)
	kinds := make([]byte, n)
	nMem := 0
	for i := range kinds {
		switch rng.Intn(3) {
		case 0:
			kinds[i] = 'L'
			nMem++
		case 1:
			kinds[i] = 'S'
			nMem++
		default:
			kinds[i] = 'a'
		}
	}
	ops := mkOps(string(kinds))
	ds := deps.NewSet()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !ops[i].IsMem() || !ops[j].IsMem() {
				continue
			}
			if ops[i].Kind != ir.Store && ops[j].Kind != ir.Store {
				continue
			}
			switch rng.Intn(4) {
			case 0: // forward dep
				ds.Add(deps.Dep{Src: i, Dst: j, Rel: alias.MayAlias})
			case 1: // occasionally a backward (extended) dep
				if rng.Intn(3) == 0 {
					ds.Add(deps.Dep{Src: j, Dst: i, Rel: alias.MayAlias, Extended: true})
				}
			}
		}
	}
	schedule := rng.Perm(n)
	res, err := AllocateSequence(ops, schedule, ds, numRegs)
	if err != nil {
		return nil, ops, nMem, ds
	}
	return res, ops, nMem, ds
}

// TestRandomAllocationsSatisfyConstraints fuzzes the allocator: any random
// schedule must yield an allocation where every surviving check constraint
// has order(checker) <= order(checkee), every anti is strict, and the
// base/offset invariance holds.
func TestRandomAllocationsSatisfyConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		res, _, _ := randomAllocation(rng, 64)
		if res == nil {
			continue
		}
		checked++
		if err := VerifyOrders(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, op := range res.Seq {
			if op.IsMem() && op.AROffset >= 0 {
				if res.Order[op.ID] != res.Base[op.ID]+op.AROffset {
					t.Fatalf("trial %d: base invariance broken on op %d", trial, op.ID)
				}
				if op.AROffset >= 64 {
					t.Fatalf("trial %d: offset %d escaped overflow detection", trial, op.AROffset)
				}
			}
			if op.Kind == ir.AMov && (op.SrcOff < 0 || op.SrcOff >= 64) {
				t.Fatalf("trial %d: AMOV SrcOff %d out of range", trial, op.SrcOff)
			}
		}
	}
	if checked < 400 {
		t.Errorf("only %d/500 trials allocated without overflow — generator too aggressive", checked)
	}
}

// TestTinyRegisterFileOverflows confirms the overflow path fires under
// pressure rather than producing bogus offsets.
func TestTinyRegisterFileOverflows(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sawOverflow := false
	for trial := 0; trial < 300; trial++ {
		res, _, _ := randomAllocation(rng, 2)
		if res == nil {
			sawOverflow = true
			continue
		}
		for _, op := range res.Seq {
			if op.IsMem() && op.AROffset >= 2 {
				t.Fatalf("trial %d: offset %d with 2 registers not flagged", trial, op.AROffset)
			}
		}
	}
	if !sawOverflow {
		t.Error("no overflow in 300 trials with 2 registers — suspicious")
	}
}
