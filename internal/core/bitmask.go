package core

import (
	"fmt"
	"sort"

	"smarq/internal/aliashw"
	"smarq/internal/deps"
	"smarq/internal/ir"
)

// AllocateBitmask performs alias register allocation for the
// Efficeon-like bit-mask hardware (§2.2): registers are *named*, not
// ordered — each protected operation gets one of numRegs registers for
// its live range (its position to its last checker's position), and each
// checker's instruction encodes the exact set of registers to examine as
// a bit-mask. Precision is perfect (no false positives, no
// anti-constraints, no AMOVs) but the encoding caps the file at
// aliashw.MaxBitmaskRegs — the scalability wall of Table 1.
//
// seq is the scheduled sequence (memory and non-memory ops; no rotates or
// AMOVs exist in this mode). The ops are annotated in place: checkees get
// P and AROffset (the register number), checkers get C and ARMask. It
// fails when the live ranges need more than numRegs registers — the
// caller must retry with less speculation.
func AllocateBitmask(seq []*ir.Op, ds *deps.Set, numRegs int) (*Result, error) {
	if numRegs > aliashw.MaxBitmaskRegs {
		numRegs = aliashw.MaxBitmaskRegs
	}
	pos := make(map[int]int, len(seq))
	for i, op := range seq {
		pos[op.ID] = i
	}

	// Derive check pairs: for a dependence s →dep d, the later-executing
	// op checks the earlier one exactly when d precedes s in the schedule
	// (the same CHECK-CONSTRAINT rule as the ordered queue; here it only
	// decides who checks whom, with no ordering consequences).
	type interval struct {
		checkee  int
		start    int
		end      int
		checkers []int
	}
	byCheckee := make(map[int]*interval)
	for _, d := range ds.All {
		ps, okS := pos[d.Src]
		pd, okD := pos[d.Dst]
		if !okS || !okD || pd >= ps {
			continue
		}
		iv := byCheckee[d.Dst]
		if iv == nil {
			iv = &interval{checkee: d.Dst, start: pd, end: pd}
			byCheckee[d.Dst] = iv
		}
		if ps > iv.end {
			iv.end = ps
		}
		iv.checkers = append(iv.checkers, d.Src)
	}

	// Linear scan over intervals ordered by start.
	ivs := make([]*interval, 0, len(byCheckee))
	for _, iv := range byCheckee {
		ivs = append(ivs, iv)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })

	free := make([]int, 0, numRegs)
	for r := numRegs - 1; r >= 0; r-- {
		free = append(free, r) // pop from the back -> lowest register first
	}
	type active struct{ end, reg int }
	var act []active
	regOf := make(map[int]int, len(ivs))
	stats := Stats{}
	for _, iv := range ivs {
		// Expire finished intervals.
		keep := act[:0]
		for _, a := range act {
			if a.end < iv.start {
				free = append(free, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		act = keep
		if len(free) == 0 {
			return nil, fmt.Errorf("core: bitmask allocation needs more than %d registers", numRegs)
		}
		reg := free[len(free)-1]
		free = free[:len(free)-1]
		act = append(act, active{end: iv.end, reg: reg})
		regOf[iv.checkee] = reg
		if len(act) > stats.WorkingSet {
			stats.WorkingSet = len(act)
		}
	}

	// Annotate.
	opByID := make(map[int]*ir.Op, len(seq))
	for _, op := range seq {
		opByID[op.ID] = op
	}
	checks := make([][2]int, 0)
	for _, iv := range ivs {
		ce := opByID[iv.checkee]
		ce.P = true
		ce.AROffset = regOf[iv.checkee]
		stats.PBits++
		for _, ck := range iv.checkers {
			op := opByID[ck]
			if !op.C {
				op.C = true
				stats.CBits++
			}
			op.ARMask |= 1 << uint(regOf[iv.checkee])
			stats.Checks++
			checks = append(checks, [2]int{ck, iv.checkee})
		}
	}
	for _, op := range seq {
		if op.IsMem() {
			stats.MemOps++
		}
	}

	return &Result{Seq: seq, Stats: stats, Checks: checks}, nil
}
