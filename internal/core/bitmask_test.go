package core

import (
	"strings"
	"testing"

	"smarq/internal/ir"
)

// seqOf arranges ops in the given schedule order.
func seqOf(ops []*ir.Op, order ...int) []*ir.Op {
	out := make([]*ir.Op, len(order))
	for i, id := range order {
		out[i] = ops[id]
	}
	return out
}

func TestBitmaskBasic(t *testing.T) {
	// Loads 1,3 hoisted above stores 0,2; store 0 checks both, store 2
	// checks 3 only.
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(0, 3), dep(2, 3))
	res, err := AllocateBitmask(seqOf(ops, 1, 3, 0, 2), ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !ops[1].P || !ops[3].P {
		t.Error("checkees lack P bits")
	}
	if ops[1].AROffset == ops[3].AROffset {
		t.Error("overlapping live ranges share a register")
	}
	if !ops[0].C || !ops[2].C {
		t.Error("checkers lack C bits")
	}
	want0 := uint16(1<<uint(ops[1].AROffset) | 1<<uint(ops[3].AROffset))
	if ops[0].ARMask != want0 {
		t.Errorf("store 0 mask = %#x, want %#x", ops[0].ARMask, want0)
	}
	if ops[2].ARMask != 1<<uint(ops[3].AROffset) {
		t.Errorf("store 2 mask = %#x, want only op3's register", ops[2].ARMask)
	}
	if res.Stats.Checks != 3 || res.Stats.PBits != 2 || res.Stats.CBits != 2 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.WorkingSet != 2 {
		t.Errorf("working set = %d, want 2", res.Stats.WorkingSet)
	}
}

func TestBitmaskRegisterReuse(t *testing.T) {
	// Disjoint live ranges reuse the same register: L S L S with each
	// load checked only by its own store.
	ops := mkOps("SLSL")
	ds := mkDeps(dep(0, 1), dep(2, 3))
	res, err := AllocateBitmask(seqOf(ops, 1, 0, 3, 2), ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if ops[1].AROffset != ops[3].AROffset {
		t.Error("disjoint live ranges did not reuse the register")
	}
	if res.Stats.WorkingSet != 1 {
		t.Errorf("working set = %d, want 1", res.Stats.WorkingSet)
	}
}

func TestBitmaskOverflow(t *testing.T) {
	// 16 loads all live across one store: cannot fit 15 named registers.
	kinds := "S" + strings.Repeat("L", 16)
	ops := mkOps(kinds)
	var sd []int
	ds := mkDeps()
	for i := 1; i <= 16; i++ {
		ds.Add(dep(0, i))
		sd = append(sd, i)
	}
	sd = append(sd, 0)
	_, err := AllocateBitmask(seqOf(ops, sd...), ds, 15)
	if err == nil {
		t.Fatal("16 concurrent live ranges fit in 15 registers?!")
	}
	if !strings.Contains(err.Error(), "15") {
		t.Errorf("error %v does not mention the register cap", err)
	}
}

func TestBitmaskCapsAtEncodingLimit(t *testing.T) {
	// Asking for 64 registers silently caps at 15 (the encoding wall).
	kinds := "S" + strings.Repeat("L", 16)
	ops := mkOps(kinds)
	ds := mkDeps()
	var sd []int
	for i := 1; i <= 16; i++ {
		ds.Add(dep(0, i))
		sd = append(sd, i)
	}
	sd = append(sd, 0)
	if _, err := AllocateBitmask(seqOf(ops, sd...), ds, 64); err == nil {
		t.Error("encoding cap not enforced")
	}
}

func TestBitmaskBackwardDeps(t *testing.T) {
	// Elimination-style backward dep: program order, store checks the
	// earlier load's register.
	ops := mkOps("LS")
	ds := mkDeps(xdep(1, 0))
	_, err := AllocateBitmask(seqOf(ops, 0, 1), ds, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !ops[0].P || !ops[1].C {
		t.Error("backward-dep check not derived")
	}
	if ops[1].ARMask != 1<<uint(ops[0].AROffset) {
		t.Error("mask does not select the source's register")
	}
}

func TestBitmaskNoChecksNoRegisters(t *testing.T) {
	ops := mkOps("LSLS")
	res, err := AllocateBitmask(seqOf(ops, 0, 1, 2, 3), mkDeps(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PBits != 0 || res.Stats.WorkingSet != 0 {
		t.Errorf("unexpected allocation: %+v", res.Stats)
	}
}
