package core

import (
	"fmt"
	"sort"
)

// This file implements §5.1 in its standalone presentation: FAST ALGORITHM
// (allocation by topological traversal of an acyclic constraint graph) and
// MAX-BASE (the rotation placement that minimizes offsets after the
// fact). The integrated allocator subsumes both, but the standalone form
// is the paper's pedagogical core and allocates Figure 7 exactly; keeping
// it separately lets tests confirm the two formulations agree.

// Constraint is one explicit constraint edge for FastAllocate: Src's
// register order must not exceed Dst's (strictly less for Anti).
type Constraint struct {
	Src, Dst int
	Anti     bool
}

// FastResult is a standalone allocation: orders, bases and offsets per op,
// and the rotation amounts to insert after each schedule position.
type FastResult struct {
	Order, Base, Offset map[int]int
	// RotateAfter[pos] is the rotation to insert after schedule[pos].
	RotateAfter map[int]int
	// WorkingSet is max offset + 1.
	WorkingSet int
}

// FastAllocate runs FAST ALGORITHM over the ops that need registers.
//
//	schedule — op IDs in execution order.
//	pBit     — ops that set an alias register.
//	cBit     — ops that check alias registers.
//	cons     — the (acyclic) constraint edges.
//
// Orders are assigned in a topological order of the constraint graph that
// follows the schedule where possible (matching the integrated
// allocator's delayed allocation); "If P(X) is set, we allocate a new
// alias register order ... If only C(X) is set, we just set order(X) =
// next_order without increasing next_order." Afterwards MAX-BASE computes
// base(X) as the minimum order among X and everything scheduled after it,
// and rotations are placed where base increases. An error reports a cycle
// (the integrated allocator would break it with an AMOV; the standalone
// algorithm per §5.1 requires acyclicity).
func FastAllocate(schedule []int, pBit, cBit map[int]bool, cons []Constraint) (*FastResult, error) {
	pos := make(map[int]int, len(schedule))
	for i, id := range schedule {
		pos[id] = i
	}
	indeg := map[int]int{}
	out := map[int][]int{}
	for _, c := range cons {
		out[c.Src] = append(out[c.Src], c.Dst)
		indeg[c.Dst]++
	}

	// Kahn's algorithm, preferring the op whose *last constraint user*
	// comes earliest — the delayed-allocation order. Ties break by
	// schedule position.
	needsReg := map[int]bool{}
	for id := range pBit {
		needsReg[id] = true
	}
	for id := range cBit {
		needsReg[id] = true
	}
	var ready []int
	for id := range needsReg {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })

	res := &FastResult{
		Order: map[int]int{}, Base: map[int]int{}, Offset: map[int]int{},
		RotateAfter: map[int]int{},
	}
	next := 0
	allocated := 0
	for len(ready) > 0 {
		x := ready[0]
		ready = ready[1:]
		res.Order[x] = next
		if pBit[x] {
			next++
		}
		allocated++
		for _, dst := range out[x] {
			indeg[dst]--
			if indeg[dst] == 0 && needsReg[dst] {
				// Insert keeping schedule order among ready ops.
				i := sort.Search(len(ready), func(i int) bool { return pos[ready[i]] > pos[dst] })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = dst
			}
		}
	}
	if allocated != len(needsReg) {
		return nil, fmt.Errorf("core: constraint graph has a cycle (%d of %d ops allocated)", allocated, len(needsReg))
	}

	// MAX-BASE: base(X) = MIN{order(Y) | Y at or after X in the schedule}.
	// Suffix minimum over schedule positions.
	minSuffix := make([]int, len(schedule)+1)
	minSuffix[len(schedule)] = next // nothing after: everything released
	for i := len(schedule) - 1; i >= 0; i-- {
		minSuffix[i] = minSuffix[i+1]
		if o, ok := res.Order[schedule[i]]; ok && o < minSuffix[i] {
			minSuffix[i] = o
		}
	}
	prevBase := 0
	for i, id := range schedule {
		base := minSuffix[i]
		if _, ok := res.Order[id]; ok {
			res.Base[id] = base
			off := res.Order[id] - base
			res.Offset[id] = off
			if off+1 > res.WorkingSet {
				res.WorkingSet = off + 1
			}
		}
		// A rotation is inserted after position i when the base for the
		// remaining ops has advanced.
		if nextBase := minSuffix[i+1]; nextBase > prevBase {
			res.RotateAfter[i] = nextBase - prevBase
			prevBase = nextBase
		}
	}
	return res, nil
}

// VerifyFast confirms REGISTER-ALLOCATION-RULE on a standalone result.
func VerifyFast(res *FastResult, cons []Constraint) error {
	for _, c := range cons {
		so, sok := res.Order[c.Src]
		do, dok := res.Order[c.Dst]
		if !sok || !dok {
			return fmt.Errorf("core: constraint %+v references unallocated op", c)
		}
		if c.Anti && so >= do {
			return fmt.Errorf("core: anti constraint %+v violated (%d >= %d)", c, so, do)
		}
		if !c.Anti && so > do {
			return fmt.Errorf("core: check constraint %+v violated (%d > %d)", c, so, do)
		}
	}
	return nil
}
