package core

import (
	"math/rand"
	"testing"
)

// TestFastAllocateHandExample is a Figure 7-shaped example worked by hand:
// two hoisted loads (ops 1, 3), three checkers (0, 2, 4), schedule
// [1 3 0 2 4]. The expected orders, bases, offsets and rotations follow
// §5.1/§3.2 exactly.
func TestFastAllocateHandExample(t *testing.T) {
	schedule := []int{1, 3, 0, 2, 4}
	pBit := map[int]bool{1: true, 3: true}
	cBit := map[int]bool{0: true, 2: true, 4: true}
	cons := []Constraint{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 4, Dst: 3}}

	res, err := FastAllocate(schedule, pBit, cBit, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFast(res, cons); err != nil {
		t.Fatal(err)
	}
	wantOrder := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 1}
	for id, want := range wantOrder {
		if res.Order[id] != want {
			t.Errorf("order(%d) = %d, want %d", id, res.Order[id], want)
		}
	}
	wantBase := map[int]int{1: 0, 3: 0, 0: 0, 2: 1, 4: 1}
	for id, want := range wantBase {
		if res.Base[id] != want {
			t.Errorf("base(%d) = %d, want %d", id, res.Base[id], want)
		}
	}
	// offset = order - base.
	if res.Offset[3] != 1 || res.Offset[2] != 0 || res.Offset[4] != 0 {
		t.Errorf("offsets = %v", res.Offset)
	}
	if res.WorkingSet != 2 {
		t.Errorf("working set = %d, want 2", res.WorkingSet)
	}
	// Rotations: by 1 after the first checker finishes with register 0
	// (schedule position 2), by 1 after the last op.
	if res.RotateAfter[2] != 1 || res.RotateAfter[4] != 1 {
		t.Errorf("rotations = %v, want {2:1, 4:1}", res.RotateAfter)
	}
	if len(res.RotateAfter) != 2 {
		t.Errorf("extra rotations: %v", res.RotateAfter)
	}
}

func TestFastAllocateRejectsCycle(t *testing.T) {
	schedule := []int{0, 1}
	pBit := map[int]bool{0: true, 1: true}
	cBit := map[int]bool{0: true, 1: true}
	cons := []Constraint{{Src: 0, Dst: 1}, {Src: 1, Dst: 0, Anti: true}}
	if _, err := FastAllocate(schedule, pBit, cBit, cons); err == nil {
		t.Fatal("cycle not reported")
	}
}

func TestFastAllocateAntiStrict(t *testing.T) {
	schedule := []int{0, 1, 2}
	pBit := map[int]bool{0: true, 2: true}
	cBit := map[int]bool{1: true}
	cons := []Constraint{
		{Src: 0, Dst: 1, Anti: true}, // order(0) < order(1)
		{Src: 1, Dst: 2},             // order(1) <= order(2)
	}
	res, err := FastAllocate(schedule, pBit, cBit, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFast(res, cons); err != nil {
		t.Error(err)
	}
	if res.Order[0] >= res.Order[1] {
		t.Error("anti not strict")
	}
}

// TestFastAgreesWithIntegrated: for random reorder-style problems, the
// standalone §5.1 algorithm and the integrated Figure 13 allocator derive
// equally valid allocations with the same working set — the two
// presentations of the algorithm coincide.
func TestFastAgreesWithIntegrated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	agree := 0
	for trial := 0; trial < 300; trial++ {
		res, ops, _ := randomAllocation(rng, 64)
		if res == nil || res.Stats.AMovs > 0 {
			continue // standalone form requires acyclic graphs
		}
		// Rebuild the constraint inputs from the integrated result.
		var schedule []int
		pBit := map[int]bool{}
		cBit := map[int]bool{}
		for _, op := range res.Seq {
			if op.ID < len(ops) {
				schedule = append(schedule, op.ID)
			}
			if op.P {
				pBit[op.ID] = true
			}
			if op.C {
				cBit[op.ID] = true
			}
		}
		var cons []Constraint
		for _, c := range res.Checks {
			cons = append(cons, Constraint{Src: c[0], Dst: c[1]})
		}
		for _, c := range res.Antis {
			cons = append(cons, Constraint{Src: c[0], Dst: c[1], Anti: true})
		}
		fast, err := FastAllocate(schedule, pBit, cBit, cons)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyFast(fast, cons); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Both orders are valid; the tie-breaking differs (the standalone
		// form prefers earliest-scheduled ready ops and occasionally
		// saves a register over the integrated FIFO), so require the two
		// to be within one register and both bounded below by the
		// live-range lower bound.
		lb := LowerBound(res)
		if fast.WorkingSet < lb {
			t.Fatalf("trial %d: standalone working set %d below lower bound %d",
				trial, fast.WorkingSet, lb)
		}
		diff := fast.WorkingSet - res.Stats.WorkingSet
		if diff < -1 || diff > 1 {
			t.Fatalf("trial %d: standalone working set %d vs integrated %d — formulations diverged",
				trial, fast.WorkingSet, res.Stats.WorkingSet)
		}
		agree++
	}
	if agree < 200 {
		t.Errorf("only %d/300 trials compared — generator too cycle-happy", agree)
	}
}
