package core

import "smarq/internal/deps"

// Options select allocator ablations. The zero value is the full SMARQ
// algorithm; each flag removes one design element so its contribution can
// be measured (the ablation studies in DESIGN.md).
type Options struct {
	// DisableAnti drops anti-constraint generation (and with it the AMOV
	// machinery). Allocation then only honours check-constraints, so a
	// checker's window may accidentally cover registers of operations it
	// was never reordered against — the §4.2 false positives. The runtime
	// survives them (rollback + conservative re-optimization) but pays;
	// the ablation quantifies how much.
	DisableAnti bool
	// DisableRotation never rotates the queue: BASE stays 0 and offsets
	// equal orders, so registers are never reused and the working set is
	// the full allocation count (§3.2's motivation, measured).
	DisableRotation bool
}

// NewAllocatorOpts is NewAllocator with ablation options.
func NewAllocatorOpts(numOps int, ds *deps.Set, numRegs int, opts Options) *Allocator {
	a := NewAllocator(numOps, ds, numRegs)
	a.opts = opts
	return a
}
