package core

import (
	"math/rand"
	"testing"

	"smarq/internal/aliashw"
	"smarq/internal/ir"
)

// TestAllocationDetectionSemantics is the whole point of SMARQ, verified
// end to end at the allocator level: run the annotated sequence (P/C bits,
// offsets, rotations, AMOVs) against the ordered-queue hardware with
// random runtime addresses and confirm
//
//   - every *violated* dependence is detected: a dependence s →dep d whose
//     check fired (d precedes s in the final sequence) and whose runtime
//     ranges truly overlap raises an alias exception;
//   - there are NO false positives: when no such pair overlaps, execution
//     is silent — the anti-constraints and AMOVs did their job;
//   - a raised exception names one of the genuinely conflicting pairs.
func TestAllocationDetectionSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	trials, silent, detected := 0, 0, 0
	for iter := 0; iter < 800; iter++ {
		res, ops, _, ds := randomAllocationDeps(rng, 64)
		if res == nil {
			continue
		}
		// Runtime addresses must be CONSISTENT with the declared
		// relations: a pair with no dependence (and at least one store)
		// was proven disjoint by the compiler, so colliding them would
		// test an impossible execution. Start every op in its own slot,
		// then collide random dependence pairs when doing so violates no
		// disjointness proof.
		addr := make(map[int]uint64)
		for _, op := range ops {
			if op.IsMem() {
				addr[op.ID] = uint64(op.ID * 16)
			}
		}
		hasDep := map[[2]int]bool{}
		for _, d := range ds.All {
			hasDep[[2]int{d.Src, d.Dst}] = true
			hasDep[[2]int{d.Dst, d.Src}] = true
		}
		consistent := func(a, b int) bool {
			// a and b may share an address if they have a dependence or
			// neither is a store (load-load pairs carry no proof).
			if hasDep[[2]int{a, b}] {
				return true
			}
			return ops[a].Kind != ir.Store && ops[b].Kind != ir.Store
		}
		for _, d := range ds.All {
			if rng.Intn(2) != 0 {
				continue
			}
			// Tentatively collide the pair; every op already sharing the
			// source's slot must also be compatible with the dst.
			ok := true
			for _, op := range ops {
				if op.IsMem() && op.ID != d.Dst && addr[op.ID] == addr[d.Src] {
					if !consistent(op.ID, d.Dst) {
						ok = false
						break
					}
				}
			}
			if ok {
				addr[d.Dst] = addr[d.Src]
			}
		}
		// Expected conflicts: dependences whose check fired at runtime.
		pos := map[int]int{}
		for i, op := range res.Seq {
			pos[op.ID] = i
		}
		expected := map[[2]int]bool{}
		for _, d := range ds.All {
			ps, okS := pos[d.Src]
			pd, okD := pos[d.Dst]
			if !okS || !okD || pd >= ps {
				continue // check did not fire for this pair
			}
			if addr[d.Src] == addr[d.Dst] {
				expected[[2]int{d.Src, d.Dst}] = true
			}
		}

		// Execute the sequence against the hardware.
		q := aliashw.NewOrderedQueue(64)
		var conflict *aliashw.Conflict
		for _, op := range res.Seq {
			switch op.Kind {
			case ir.Rotate:
				q.Rotate(op.Amount)
			case ir.AMov:
				q.AMov(op.SrcOff, op.DstOff)
			case ir.Load, ir.Store:
				lo := addr[op.ID]
				conflict = q.OnMem(op.ID, op.Kind == ir.Store, op.P, op.C, op.AROffset, 0, lo, lo+8)
			}
			if conflict != nil {
				break
			}
		}
		q.Reset()

		trials++
		if len(expected) == 0 {
			if conflict != nil {
				t.Fatalf("iter %d: FALSE POSITIVE: op %d checked op %d with no violated dependence",
					iter, conflict.Checker, conflict.Origin)
			}
			silent++
			continue
		}
		if conflict == nil {
			t.Fatalf("iter %d: MISSED DETECTION: %v violated but no exception", iter, expected)
		}
		if !expected[[2]int{conflict.Checker, conflict.Origin}] {
			t.Fatalf("iter %d: exception names (%d,%d), not a violated dependence %v",
				iter, conflict.Checker, conflict.Origin, expected)
		}
		detected++
	}
	if trials < 500 || silent < 50 || detected < 50 {
		t.Errorf("weak coverage: %d trials, %d silent, %d detected", trials, silent, detected)
	}
	t.Logf("%d trials: %d silent, %d detected, 0 false positives, 0 misses", trials, silent, detected)
}
