// Package deps computes the memory dependences that drive SMARQ's
// constraint analysis (§4.1 of the paper).
//
// The base rule is [DEPENDENCE]: X →dep Y if X precedes Y in the original
// program order, X and Y may (including must) access the same memory
// location, and at least one of them is a store.
//
// Speculative load and store elimination add *extended* dependences
// ([EXTENDED-DEPENDENCE 1] and [EXTENDED-DEPENDENCE 2]) that run in the
// backward execution order of the original program; they are what makes a
// check-constraint fire between memory operations that were never
// reordered (§2.4, Figure 5), and they are the reason the constraint graph
// can contain cycles (§5.2).
package deps

import (
	"fmt"
	"sort"
	"sync"

	"smarq/internal/alias"
	"smarq/internal/ir"
)

// Dep is one dependence edge Src →dep Dst in the paper's notation.
// For base dependences Src < Dst (original order); extended dependences run
// backward (Src > Dst).
type Dep struct {
	Src, Dst int
	// Rel is the alias relation between the two accesses.
	Rel alias.Relation
	// Extended marks dependences added by load/store elimination.
	Extended bool
	// SrcIsStore and DstIsStore record the op kinds; the scheduler's
	// hardware-specific reorderability rules need them (e.g. ALAT cannot
	// check store-store reorderings).
	SrcIsStore, DstIsStore bool
}

func (d Dep) String() string {
	kind := "dep"
	if d.Extended {
		kind = "xdep"
	}
	return fmt.Sprintf("%d ->%s %d (%s)", d.Src, kind, d.Dst, d.Rel)
}

// Set holds a region's dependences with lookup by either endpoint.
type Set struct {
	All []Dep
	// byDst groups dependences by their Dst op (slice-indexed — op IDs are
	// dense): the constraint builder examines each dependence once, when
	// its Dst is scheduled (Figure 13 line 8). Duplicate suppression scans
	// the per-dst group, which stays short (bounded by the region's memory
	// ops), instead of keeping a separate hash set.
	byDst [][]Dep
	// memIDs is scratch for Compute: the region's memory-op IDs, reused
	// across compiles so the hot path allocates nothing once warm.
	memIDs []int32
}

// NewSet returns an empty dependence set.
func NewSet() *Set {
	return &Set{}
}

var setPool = sync.Pool{New: func() interface{} { return &Set{} }}

// newSetSized returns an empty set presized for numOps destination groups.
// The set may come from the pool; hot-path callers return it with Release.
func newSetSized(numOps int) *Set {
	s := setPool.Get().(*Set)
	s.All = s.All[:0]
	s.memIDs = s.memIDs[:0]
	if cap(s.byDst) < numOps {
		s.byDst = make([][]Dep, numOps)
	} else {
		s.byDst = s.byDst[:numOps]
		for i := range s.byDst {
			s.byDst[i] = s.byDst[i][:0]
		}
	}
	return s
}

// Release returns the set to the internal pool. The caller must not use
// it (or any slice obtained from it) afterwards.
func (s *Set) Release() {
	if s != nil {
		setPool.Put(s)
	}
}

// Add inserts a dependence, ignoring duplicates of the same direction.
func (s *Set) Add(d Dep) {
	if d.Src == d.Dst || s.Has(d.Src, d.Dst) {
		return
	}
	for len(s.byDst) <= d.Dst {
		s.byDst = append(s.byDst, nil)
	}
	s.byDst[d.Dst] = append(s.byDst[d.Dst], d)
	s.All = append(s.All, d)
}

// ByDst returns the dependences whose Dst is the given op. The returned
// slice is the set's own grouping (not a copy) — callers must not mutate
// it.
func (s *Set) ByDst(op int) []Dep {
	if op >= 0 && op < len(s.byDst) {
		return s.byDst[op]
	}
	return nil
}

// Has reports whether the edge src →dep dst exists.
func (s *Set) Has(src, dst int) bool {
	for _, d := range s.ByDst(dst) {
		if d.Src == src {
			return true
		}
	}
	return false
}

// Counts returns (base, extended) dependence counts.
func (s *Set) Counts() (base, extended int) {
	for _, d := range s.All {
		if d.Extended {
			extended++
		} else {
			base++
		}
	}
	return base, extended
}

// Compute builds the base dependences of a region per [DEPENDENCE], using
// the alias table for disambiguation: provably disjoint pairs (NoAlias)
// carry no dependence — this is the "compiler can easily disambiguate
// them" case of Figure 7 (c).
func Compute(reg *ir.Region, tbl *alias.Table) *Set {
	s := newSetSized(len(reg.Ops))
	for _, o := range reg.Ops {
		if o.IsMem() {
			s.memIDs = append(s.memIDs, int32(o.ID))
		}
	}
	mem := s.memIDs
	for i := 0; i < len(mem); i++ {
		for j := i + 1; j < len(mem); j++ {
			x, y := reg.Ops[mem[i]], reg.Ops[mem[j]]
			if x.Kind != ir.Store && y.Kind != ir.Store {
				continue
			}
			rel := tbl.Rel(x.ID, y.ID)
			if rel == alias.NoAlias {
				continue
			}
			s.Add(Dep{
				Src: x.ID, Dst: y.ID, Rel: rel,
				SrcIsStore: x.Kind == ir.Store,
				DstIsStore: y.Kind == ir.Store,
			})
		}
	}
	return s
}

// AddExtendedLoadElim applies [EXTENDED-DEPENDENCE 1]: a load z was
// eliminated by forwarding from the earlier memory operation x. Every store
// w strictly between x and z (original order) that may alias the forwarded
// location must end up checked against it, so we add the backward
// dependence w →dep x.
//
// The paper's rule text reads "for all loads Y" but its own example and the
// correctness argument (§4.1: the forwarded value is stale iff an
// intervening *store* hits the location) show the intervening writers are
// what matters; we add the edge for intervening stores. Stores that
// provably do not alias the location add nothing.
func AddExtendedLoadElim(s *Set, reg *ir.Region, tbl *alias.Table, x, z int) {
	// Walk the op range directly rather than materializing MemOps() — this
	// runs once per eliminated load, so the temporary slice was a
	// measurable share of compile-path allocations.
	lo, hi := x+1, z
	if lo < 0 {
		lo = 0
	}
	if hi > len(reg.Ops) {
		hi = len(reg.Ops)
	}
	for id := lo; id < hi; id++ {
		w := reg.Ops[id]
		if w.Kind != ir.Store {
			continue
		}
		if tbl.Rel(w.ID, x) == alias.NoAlias {
			continue
		}
		s.Add(Dep{
			Src: w.ID, Dst: x, Rel: tbl.Rel(w.ID, x), Extended: true,
			SrcIsStore: true,
			DstIsStore: reg.Ops[x].Kind == ir.Store,
		})
	}
}

// AddExtendedStoreElim applies [EXTENDED-DEPENDENCE 2]: store x was
// eliminated because the later store z overwrites the same location. Every
// load y strictly between x and z (in the *original* program) that may
// alias z must be checked by z, so we add the backward dependence z →dep y.
// Intervening *stores* need no edge — the paper points out their aliasing
// cannot affect the correctness of the elimination.
//
// When an intervening load y was itself eliminated by speculative load
// elimination, its access no longer exists to be checked; the dependence is
// redirected to y's forwarding source (given by loadElimSource), whose
// access range is identical (forwarding requires must-alias), so z's check
// covers the same addresses.
func AddExtendedStoreElim(s *Set, reg *ir.Region, tbl *alias.Table, x, z int, loadElimSource map[int]int) {
	for id := x + 1; id < z && id < len(reg.Ops); id++ {
		o := reg.Ops[id]
		target := -1
		switch {
		case o.Kind == ir.Load:
			target = id
		default:
			if src, ok := loadElimSource[id]; ok {
				target = src
			}
		}
		if target == -1 {
			continue
		}
		rel := tbl.Rel(z, id) // relation of the original load's range to z
		if rel == alias.NoAlias {
			continue
		}
		s.Add(Dep{
			Src: z, Dst: target, Rel: rel, Extended: true,
			SrcIsStore: true,
			DstIsStore: reg.Ops[target].Kind == ir.Store,
		})
	}
}

// Sorted returns the dependences ordered by (Src, Dst) for deterministic
// output in traces and tests.
func (s *Set) Sorted() []Dep {
	out := make([]Dep, len(s.All))
	copy(out, s.All)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
