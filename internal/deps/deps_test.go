package deps

import (
	"testing"

	"smarq/internal/alias"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// buildRegion creates a region of memory ops from a compact spec.
// Each entry: kind, root vreg, offset. All accesses are 8 bytes.
type memSpec struct {
	kind ir.Kind
	root ir.VReg
	off  int64
}

func buildRegion(specs []memSpec) *ir.Region {
	r := &ir.Region{NumVRegs: 64}
	for i, s := range specs {
		o := &ir.Op{ID: i, Kind: s.kind, GOp: guest.Ld8, Dst: ir.NoVReg,
			Mem: &ir.MemInfo{Base: s.root, Off: s.off, Size: 8, Root: s.root, RootOff: s.off}}
		if s.kind == ir.Store {
			o.GOp = guest.St8
			o.Srcs = []ir.VReg{5, ir.VReg(s.root)}
			o.SrcFloat = []bool{false, false}
		} else {
			o.Dst = 20
			o.Srcs = []ir.VReg{ir.VReg(s.root)}
			o.SrcFloat = []bool{false}
		}
		r.Ops = append(r.Ops, o)
	}
	return r
}

func TestComputeBaseDependences(t *testing.T) {
	// op0: ld [v1+0], op1: st [v2+0] (may), op2: ld [v1+0] (must vs op0, may vs op1)
	reg := buildRegion([]memSpec{
		{ir.Load, 1, 0},
		{ir.Store, 2, 0},
		{ir.Load, 1, 0},
	})
	tbl := alias.BuildTable(reg, nil)
	s := Compute(reg, tbl)
	if !s.Has(0, 1) {
		t.Error("missing dep 0->1 (load/store may-alias)")
	}
	if !s.Has(1, 2) {
		t.Error("missing dep 1->2 (store/load may-alias)")
	}
	if s.Has(0, 2) {
		t.Error("unexpected dep 0->2 (load/load pairs carry no dependence)")
	}
	if len(s.All) != 2 {
		t.Errorf("got %d deps, want 2: %v", len(s.All), s.Sorted())
	}
}

func TestComputeSkipsProvablyDisjoint(t *testing.T) {
	// Same root, disjoint offsets: the compiler disambiguates them
	// (Figure 7 (c): "There is no dependence M1->dep M2 ... since the
	// compiler can easily disambiguate them").
	reg := buildRegion([]memSpec{
		{ir.Store, 1, 0},
		{ir.Load, 1, 8},
		{ir.Store, 1, 16},
	})
	tbl := alias.BuildTable(reg, nil)
	s := Compute(reg, tbl)
	if len(s.All) != 0 {
		t.Errorf("disjoint accesses produced deps: %v", s.Sorted())
	}
}

func TestComputeStoreStore(t *testing.T) {
	reg := buildRegion([]memSpec{
		{ir.Store, 1, 0},
		{ir.Store, 2, 0},
	})
	tbl := alias.BuildTable(reg, nil)
	s := Compute(reg, tbl)
	if !s.Has(0, 1) {
		t.Error("store-store may-alias pair must carry a dependence")
	}
}

func TestExtendedLoadElim(t *testing.T) {
	// op0: ld [v1] (source X), op1: st [v2] (intervening store, may-alias),
	// op2: st [v1+8] (disjoint from X), op3: ld [v3] (intervening load),
	// op4: ld [v1] (eliminated Z).
	reg := buildRegion([]memSpec{
		{ir.Load, 1, 0},
		{ir.Store, 2, 0},
		{ir.Store, 1, 8},
		{ir.Load, 3, 0},
		{ir.Load, 1, 0},
	})
	tbl := alias.BuildTable(reg, nil)
	s := NewSet()
	AddExtendedLoadElim(s, reg, tbl, 0, 4)
	if !s.Has(1, 0) {
		t.Error("missing backward xdep 1->0 (intervening may-alias store)")
	}
	if s.Has(2, 0) {
		t.Error("disjoint intervening store must not add an xdep")
	}
	if s.Has(3, 0) {
		t.Error("intervening load must not add an xdep for load elimination")
	}
	for _, d := range s.All {
		if !d.Extended {
			t.Errorf("dep %v not marked extended", d)
		}
	}
}

func TestExtendedStoreElim(t *testing.T) {
	// op0: st [v1] (eliminated X), op1: ld [v2] (intervening load,
	// may-alias Z), op2: st [v3] (intervening store), op3: ld [v1+8]
	// (intervening load, disjoint from Z), op4: st [v1] (overwriting Z).
	reg := buildRegion([]memSpec{
		{ir.Store, 1, 0},
		{ir.Load, 2, 0},
		{ir.Store, 3, 0},
		{ir.Load, 1, 8},
		{ir.Store, 1, 0},
	})
	tbl := alias.BuildTable(reg, nil)
	s := NewSet()
	AddExtendedStoreElim(s, reg, tbl, 0, 4, nil)
	if !s.Has(4, 1) {
		t.Error("missing backward xdep 4->1 (Z checks intervening load)")
	}
	if s.Has(4, 2) {
		t.Error("intervening store must not add an xdep for store elimination (paper §4.1)")
	}
	if s.Has(4, 3) {
		t.Error("disjoint intervening load must not add an xdep")
	}
}

// TestExtendedStoreElimRedirectsEliminatedLoads: an intervening load that
// was itself eliminated contributes a dependence on its forwarding source
// instead.
func TestExtendedStoreElimRedirectsEliminatedLoads(t *testing.T) {
	// op0: ld [v2] (forwarding source), op1: st [v1] (eliminated X),
	// op2: ld [v2] (eliminated load, forwarded from op0), op3: st [v1]
	// (overwriting Z).
	reg := buildRegion([]memSpec{
		{ir.Load, 2, 0},
		{ir.Store, 1, 0},
		{ir.Load, 2, 0},
		{ir.Store, 1, 0},
	})
	tbl := alias.BuildTable(reg, nil) // classify before mutating
	// Simulate the load elimination: op2 becomes a Copy.
	reg.Ops[2].Kind = ir.Copy
	s := NewSet()
	AddExtendedStoreElim(s, reg, tbl, 1, 3, map[int]int{2: 0})
	if !s.Has(3, 0) {
		t.Errorf("xdep not redirected to forwarding source: %v", s.Sorted())
	}
	if s.Has(3, 2) {
		t.Error("xdep still targets the eliminated load")
	}
}

func TestSetDeduplication(t *testing.T) {
	s := NewSet()
	s.Add(Dep{Src: 1, Dst: 2, Rel: alias.MayAlias})
	s.Add(Dep{Src: 1, Dst: 2, Rel: alias.MayAlias})
	s.Add(Dep{Src: 1, Dst: 1, Rel: alias.MayAlias}) // self edge ignored
	if len(s.All) != 1 {
		t.Errorf("got %d deps, want 1", len(s.All))
	}
}

func TestByDst(t *testing.T) {
	s := NewSet()
	s.Add(Dep{Src: 0, Dst: 3})
	s.Add(Dep{Src: 1, Dst: 3})
	s.Add(Dep{Src: 2, Dst: 4})
	got := s.ByDst(3)
	if len(got) != 2 {
		t.Fatalf("ByDst(3) returned %d deps, want 2", len(got))
	}
	if got[0].Src != 0 || got[1].Src != 1 {
		t.Errorf("ByDst(3) srcs = %d,%d want 0,1", got[0].Src, got[1].Src)
	}
	if len(s.ByDst(99)) != 0 {
		t.Error("ByDst on absent op should be empty")
	}
}

func TestCounts(t *testing.T) {
	s := NewSet()
	s.Add(Dep{Src: 0, Dst: 1})
	s.Add(Dep{Src: 2, Dst: 1, Extended: true})
	base, ext := s.Counts()
	if base != 1 || ext != 1 {
		t.Errorf("Counts = (%d,%d), want (1,1)", base, ext)
	}
}

func TestSortedDeterministic(t *testing.T) {
	s := NewSet()
	s.Add(Dep{Src: 3, Dst: 4})
	s.Add(Dep{Src: 1, Dst: 2})
	s.Add(Dep{Src: 1, Dst: 0})
	got := s.Sorted()
	if got[0].Src != 1 || got[0].Dst != 0 || got[2].Src != 3 {
		t.Errorf("Sorted order wrong: %v", got)
	}
}
