package dynopt

import (
	"math/rand"
	"os"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/workload"
)

// chaosCase is one (program, memory, budget) the soak runs under injected
// faults.
type chaosCase struct {
	name     string
	memSize  int
	maxInsts uint64
	build    func() *guest.Program
}

func chaosCases(t *testing.T) []chaosCase {
	var cases []chaosCase
	names := map[string]bool{"swim": true, "mgrid": true, "equake": true, "mesa": true}
	full := os.Getenv("SMARQ_CHAOS_FULL") != ""
	for _, b := range workload.Suite() {
		if !full && !names[b.Name] {
			continue
		}
		cases = append(cases, chaosCase{name: b.Name, memSize: b.MemSize, maxInsts: b.MaxInsts, build: b.Build})
	}
	fuzzTrials := 4
	if full {
		fuzzTrials = 20
	}
	for i := 0; i < fuzzTrials; i++ {
		seed := int64(7000 + i)
		cases = append(cases, chaosCase{
			name:     "fuzz" + string(rune('A'+i%26)),
			memSize:  1 << 14,
			maxInsts: 3_000_000,
			build: func() *guest.Program {
				return randomProgram(rand.New(rand.NewSource(seed)))
			},
		})
	}
	return cases
}

// TestChaosSoak is the recovery system's end-to-end guarantee: under the
// standard chaos mix (spurious alias exceptions, guard-fail storms,
// simulated compile failures — no state corruption) and with the rollback
// invariant checker always on, every workload and fuzz program must
//
//  1. halt with the architectural state the reference interpreter
//     computes, bit for bit;
//  2. settle every region in a bounded number of ladder moves (the
//     exponential-backoff livelock bound);
//  3. keep recovery overhead bounded — rollback stall cycles stay a
//     minority of total cycles even with faults on every path.
//
// Set SMARQ_CHAOS_FULL=1 for the full suite and more seeds/fuzz programs.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	seeds := []int64{1, 2}
	if os.Getenv("SMARQ_CHAOS_FULL") != "" {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	cases := chaosCases(t)
	configs := map[string]Config{"smarq64": ConfigSMARQ(64), "alat": ConfigALAT()}

	for _, c := range cases {
		ref := interp.New(c.build(), &guest.State{}, guest.NewMemory(c.memSize))
		haltedRef, err := ref.Run(0, c.maxInsts)
		if err != nil || !haltedRef {
			t.Fatalf("%s: reference run: halted=%v err=%v", c.name, haltedRef, err)
		}
		for cname, base := range configs {
			for _, seed := range seeds {
				cfg := base
				cfg.Chaos = faultinject.Default(seed)
				cfg.CheckInvariants = true
				sys := New(c.build(), &guest.State{}, guest.NewMemory(c.memSize), cfg)
				halted, err := sys.Run(c.maxInsts)
				if err != nil {
					t.Fatalf("%s/%s/seed%d: %v", c.name, cname, seed, err)
				}
				if !halted {
					t.Fatalf("%s/%s/seed%d: did not halt", c.name, cname, seed)
				}

				// 1. Exact architectural state.
				for r := 0; r < guest.NumRegs; r++ {
					if sys.State().R[r] != ref.St.R[r] {
						t.Fatalf("%s/%s/seed%d: r%d = %d, interpreter got %d",
							c.name, cname, seed, r, sys.State().R[r], ref.St.R[r])
					}
					if sys.State().F[r] != ref.St.F[r] {
						t.Fatalf("%s/%s/seed%d: f%d = %v, interpreter got %v",
							c.name, cname, seed, r, sys.State().F[r], ref.St.F[r])
					}
				}
				for a := 0; a < c.memSize; a += 8 {
					got, _ := sys.Mem().Load(uint64(a), 8)
					want, _ := ref.Mem.Load(uint64(a), 8)
					if got != want {
						t.Fatalf("%s/%s/seed%d: mem[%#x] = %#x, interpreter got %#x",
							c.name, cname, seed, a, got, want)
					}
				}

				// 2. Livelock bound: every region settles in bounded moves.
				bound := 2 * maxDemotionsBound(cfg.withDefaults().Recovery)
				for _, rs := range sys.Stats.Regions {
					if rs.Demotions+rs.Promotions > bound {
						t.Errorf("%s/%s/seed%d: region B%d made %d ladder moves, bound %d",
							c.name, cname, seed, rs.Entry, rs.Demotions+rs.Promotions, bound)
					}
				}
				if sys.Stats.Recovery.InvariantViolations != 0 {
					t.Errorf("%s/%s/seed%d: %d invariant violations with corruption off",
						c.name, cname, seed, sys.Stats.Recovery.InvariantViolations)
				}

				// 3. Bounded recovery overhead.
				if tc := sys.Stats.TotalCycles; tc > 0 && sys.Stats.RollbackCycles > tc/2 {
					t.Errorf("%s/%s/seed%d: rollback cycles %d exceed half of %d total",
						c.name, cname, seed, sys.Stats.RollbackCycles, tc)
				}
			}
		}
	}
}

// TestChaosDeterministicReplay: two runs with the same seed inject the
// same faults and land on identical statistics — the property that makes
// `smarq-run -chaos-seed N` reproduce a CI failure.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func(seed int64) Stats {
		cfg := ConfigSMARQ(64)
		cfg.Chaos = faultinject.Default(seed)
		cfg.CheckInvariants = true
		sys := New(sumLoopProgram(3000), &guest.State{}, guest.NewMemory(1<<16), cfg)
		if halted, err := sys.Run(50_000_000); err != nil || !halted {
			t.Fatalf("seed %d: halted=%v err=%v", seed, halted, err)
		}
		return sys.Stats
	}
	a, b := run(17), run(17)
	if a.Injected != b.Injected {
		t.Errorf("same seed injected differently: %+v vs %+v", a.Injected, b.Injected)
	}
	if a.TotalCycles != b.TotalCycles || a.Commits != b.Commits ||
		a.AliasExceptions != b.AliasExceptions || a.Recovery.Demotions != b.Recovery.Demotions {
		t.Errorf("same seed produced different runs: %+v vs %+v", a, b)
	}
	c := run(18)
	if a.Injected == c.Injected && a.TotalCycles == c.TotalCycles {
		t.Error("different seeds produced identical runs (injection may be inert)")
	}
}
