// Asynchronous background compilation: the compile pipeline (xlate → opt
// → constraint/deps → sched → alias allocation → vliw.Compile) extracted
// into a pure function over snapshotted inputs, so it can run either
// synchronously (the legacy instant-install path, Compile.Workers == 0)
// or on a bounded host worker pool behind a deterministic simulated
// compile-latency model.
//
// Determinism rule: a region's install point is a pure function of the
// simulated clock — readyAt = enqueue-cycle + CompileCyclesPerInst ×
// guest insts + CompileCyclesPerCheck × guest mem ops, both derived from
// the superblock alone, never from the compile result or the wall clock.
// Every simulated decision (chaos draws, memo lookups, enqueue, install,
// cancellation) happens on the simulation thread; workers only evaluate
// the pure pipeline. Any Workers >= 1 therefore produces byte-identical
// stats, telemetry and guest state; the worker count is host parallelism
// only.
package dynopt

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"

	"smarq/internal/alias"
	"smarq/internal/codecache"
	"smarq/internal/compilequeue"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/faultinject"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/telemetry"
	"smarq/internal/vliw"
	"smarq/internal/xlate"
)

// CompileConfig configures the background-compilation subsystem.
type CompileConfig struct {
	// Workers selects the compile path. 0 (the default) is the legacy
	// synchronous path: compilations install instantly and charge
	// Opt/SchedCycles on the critical path. Workers >= 1 enables the
	// background model: compilations run on that many host workers while
	// the interpreter keeps executing, and install only once the
	// simulated clock passes the region's readyAt point. Every N >= 1
	// yields byte-identical simulated results.
	Workers int
	// Memoize enables content-hash memoization of compiled regions:
	// recompiling a region whose guest instructions and configuration
	// bits hash to a previously compiled key reuses that code without
	// re-running the pipeline. Simulated costs are replayed on a hit, so
	// stats are identical with memoization on or off (apart from the
	// hit/miss counters themselves). Works in both compile paths.
	Memoize bool
	// MemoCapacity bounds the memo table in entries; past the bound the
	// least recently used entry is evicted. 0 selects
	// DefaultMemoCapacity; negative means unbounded.
	MemoCapacity int
	// WatchdogFactor fixes each background compile's watchdog deadline at
	// enqueue-cycle + modelled-cost × factor, in simulated cycles. A
	// compile still pending at its deadline is killed at that point — its
	// result is never read — and the region retries later under the
	// transient-failure backoff. 0 selects DefaultWatchdogFactor.
	WatchdogFactor int
	// MemoBudgetBytes additionally bounds the private memo table by
	// retained compiled-region bytes (vliw.CompiledRegion.Bytes); 0 means
	// no byte bound. Applies with Memoize only.
	MemoBudgetBytes int64
	// SharedPool, when non-nil, runs this System's background compiles on
	// a host-wide worker pool shared across concurrently running Systems
	// (fleet execution) instead of a private per-System pool. Workers must
	// still be >= 1 to select the background path; the shared pool's own
	// size governs host parallelism. The System never closes a shared
	// pool — its creator does, after every System using it has finished.
	SharedPool *compilequeue.Pool
	// SharedCache, when non-nil, replaces the private memo table with a
	// concurrent sharded content-addressed cache shared across Systems:
	// identical regions compile once fleet-wide, and a region being
	// compiled by one tenant is awaited (cross-tenant single-flight), not
	// recompiled, by others. Hits replay the modelled compile costs
	// exactly like memo hits, so each tenant's simulated results are
	// byte-identical to a solo run modulo the hit/miss/dedupe counters.
	// Mutually exclusive with Memoize.
	SharedCache *CodeCache
}

// DefaultMemoCapacity is the memo-table bound when MemoCapacity is 0.
const DefaultMemoCapacity = 4096

// DefaultWatchdogFactor is the deadline multiple when WatchdogFactor is 0.
const DefaultWatchdogFactor = 4

// memoCapacity resolves the configured memo bound (0 = unbounded, for
// compilequeue.NewMemoCap).
func (cc CompileConfig) memoCapacity() int {
	switch {
	case cc.MemoCapacity > 0:
		return cc.MemoCapacity
	case cc.MemoCapacity < 0:
		return 0
	}
	return DefaultMemoCapacity
}

// watchdogFactor resolves the configured deadline multiple.
func (cc CompileConfig) watchdogFactor() int64 {
	if cc.WatchdogFactor > 0 {
		return int64(cc.WatchdogFactor)
	}
	return DefaultWatchdogFactor
}

// CompileStats is the background-compilation accounting.
type CompileStats struct {
	// Enqueued/Installed/Canceled/Failed count background compilations
	// through their lifecycle (all zero in synchronous mode).
	Enqueued  int64
	Installed int64
	Canceled  int64
	Failed    int64
	// MemoHits/MemoMisses count content-hash lookups (both paths), against
	// the private memo or the shared fleet cache.
	MemoHits   int64
	MemoMisses int64
	// DedupeWaits counts lookups that joined another tenant's in-flight
	// compile of the same key instead of compiling (shared cache only;
	// every dedupe wait is also counted as a miss).
	DedupeWaits int64
	// WorkCycles is the simulated compile occupancy performed off the
	// critical path (the latency model's cost per installed region). It
	// is deliberately excluded from Stats.TotalCycles: hiding this work
	// is the point of background compilation.
	WorkCycles int64
	// LatencySum accumulates observed enqueue→install latencies (the
	// per-region value is RegionStats.CompileLatency).
	LatencySum int64
	// MaxQueueDepth is the high-water mark of in-flight compilations.
	MaxQueueDepth int
	// WorkerPanics counts compile jobs that panicked and were converted
	// into failed-compile events (the region is quarantined).
	WorkerPanics int64
	// WatchdogKills counts background compiles killed at their simulated
	// watchdog deadline.
	WatchdogKills int64
	// Rejected counts install-time validation rejections of poisoned
	// compile results (content-checksum mismatch or broken structural
	// invariants).
	Rejected int64
	// Quarantined counts regions permanently barred from compiling (a
	// worker panic in their compile, or the health controller's
	// quarantine level at the moment they became hot).
	Quarantined int64
	// MemoEvictions counts memo entries evicted by the capacity bound or
	// injected memo pressure.
	MemoEvictions int64
}

// errInjectedCompileFail marks chaos-injected compile failures so the
// cooldown policy can tell them apart from genuinely unschedulable
// regions (see compileFailBackoff).
var errInjectedCompileFail = errors.New("faultinject: simulated compile failure")

// errCompilePanic marks a compile-worker panic converted into a
// failed-compile event; the region is quarantined, so no retry policy
// applies.
var errCompilePanic = errors.New("dynopt: compile worker panicked")

// errWatchdogTimeout marks a background compile killed at its watchdog
// deadline. Like injected failures it is transient — the host was slow,
// not the region unschedulable — so it backs off additively.
var errWatchdogTimeout = errors.New("dynopt: compile watchdog deadline overrun")

// errPoisonedResult marks a compile result rejected by install-time
// validation; also transient (a fresh compile of the same input is
// expected to come out clean).
var errPoisonedResult = errors.New("dynopt: poisoned compile result rejected")

// compileInput is everything the pipeline reads, snapshotted on the
// simulation thread at enqueue: the superblock is immutable after Form,
// and the blacklist and pin sets are copied because the simulation thread
// mutates the live maps on alias exceptions while a worker may still be
// compiling.
type compileInput struct {
	entry     int
	sb        *region.Superblock
	optCfg    opt.Config
	scfg      sched.Config
	blacklist alias.Blacklist
	machine   vliw.Config
}

// compileOutput is the pipeline's result plus everything the install
// point needs to replay the compilation's simulated costs — memo hits
// hand back the same object, so a hit must be observationally identical
// to a re-run.
type compileOutput struct {
	cr              *vliw.CompiledRegion
	alloc           core.Stats
	working         core.WorkingSets
	seqLen          int
	numOps          int64
	guestInsts      int
	memOps          int
	overflowRetries int
	err             error
	// checksum is the content hash of cr, stamped by the worker right
	// after the pipeline finishes; the install point recomputes it to
	// reject results corrupted in flight (see admitOutput).
	checksum uint64
	// panicked marks a result synthesized from a recovered worker panic
	// (err carries the panic value wrapped in errCompilePanic).
	panicked bool
}

// pendingCompile is one in-flight background compilation.
type pendingCompile struct {
	entry      int
	seq        int64 // enqueue order, the (readyAt, seq) tie break
	enqueuedAt int64 // simulated cycle of the enqueue
	readyAt    int64 // earliest simulated cycle the result may install
	deadline   int64 // watchdog kill point: enqueue cycle + cost × watchdog factor
	key        compilequeue.Key
	memoHit    bool
	recompile  bool // old code still installed (promotion-style recompile)
	// hung marks a chaos-injected compile hang: no job is submitted, and
	// the pending entry is killed by the watchdog at deadline.
	hung bool
	// out is written by the worker then published by closing done; on a
	// memo hit it is set at enqueue and done stays nil.
	out  *compileOutput
	done chan struct{}
	// flight is the shared-cache single-flight this enqueue leads or
	// joined (shared mode only); the install point takes the result from
	// it when out is still nil. deduped marks the follower case — this
	// enqueue joined another tenant's flight instead of leading one — so
	// the install point can attribute its latency as dedupe wait.
	flight  *codecache.Flight[*compileOutput]
	deduped bool
}

// at is the pending compile's queue event time: its install point, or —
// for a hung job — the watchdog deadline at which it is killed. Both are
// pure functions of the simulated clock and the superblock, so the
// install order never depends on host timing.
func (p *pendingCompile) at() int64 {
	if p.hung {
		return p.deadline
	}
	return p.readyAt
}

// bgCompile is the System's background-compilation state (nil when
// Compile.Workers == 0).
type bgCompile struct {
	pool *compilequeue.Pool
	// sharedPool marks pool as fleet-owned: the System must never close
	// it (other tenants' compiles are still running on it).
	sharedPool bool
	// pending maps a region entry to its live pending compile
	// (single-flight per entry); queue holds the same entries in install
	// order (readyAt, then enqueue seq).
	pending map[int]*pendingCompile
	queue   []*pendingCompile
	seq     int64
}

// newCompileInput snapshots entry's compile inputs, forming (and caching)
// its superblock on first use.
func (s *System) newCompileInput(entry int) (*compileInput, error) {
	sb, ok := s.sbCache[entry]
	if !ok {
		var err error
		sb, err = region.Form(s.prog, s.it.Prof, entry, s.cfg.Region)
		if err != nil {
			return nil, err
		}
		s.sbCache[entry] = sb
	}
	s.recoveryOf(entry) // create the ladder controller on first compile
	// The effective tier folds the health controller's no-speculation
	// clamp; it flows into both the opt and sched configs, and through
	// them into the memo key, so clamped and unclamped compiles of the
	// same region never collide in the memo.
	et := s.effectiveTier(entry)
	in := &compileInput{
		entry:   entry,
		sb:      sb,
		optCfg:  s.optConfig(et),
		machine: s.cfg.Machine,
	}
	if bl := s.blacklist[entry]; len(bl) > 0 {
		in.blacklist = make(alias.Blacklist, len(bl))
		for p := range bl {
			in.blacklist[p] = true
		}
	}
	var pins map[int]bool
	if live := s.pinnedLoads[entry]; len(live) > 0 {
		pins = make(map[int]bool, len(live))
		for op := range live {
			pins[op] = true
		}
	}
	in.scfg = sched.Config{
		Mode:           s.cfg.Mode,
		NumAliasRegs:   s.cfg.NumAliasRegs,
		StoreReorder:   s.cfg.StoreReorder && et < TierNoStoreReorder,
		ForceNonSpec:   et >= TierConservative,
		PinnedOps:      pins,
		PressureMargin: 4,
		Machine:        s.cfg.Machine,
		Alloc: core.Options{
			DisableAnti:     s.cfg.Ablation.Anti,
			DisableRotation: s.cfg.Ablation.Rotation,
		},
	}
	return in, nil
}

// arenaPool recycles translate arenas across compiles. Each pipeline run
// (synchronous path or worker goroutine) takes one arena for its
// duration; installed code is frozen out of the arena before it returns
// to the pool, so nothing that outlives the compile aliases pooled
// memory.
var arenaPool = sync.Pool{New: func() interface{} { return ir.NewArena() }}

// compilePipeline is the active compile path. Tests swap in
// runCompilePipelineRef to differentially check the flat-arena pipeline
// against the retained reference implementation.
var compilePipeline = runCompilePipeline

// runCompilePipeline is the pure compile path: translate, optimize,
// compute dependences, schedule with alias register allocation (with the
// overflow retry ladder), and bake the VLIW code. It touches nothing but
// its input, so it is safe on a worker goroutine.
//
// Every intermediate structure is recycled: the IR comes from a pooled
// arena, and the alias table, dependence set and optimizer result are
// handed back to their pools on exit. Only the frozen CompiledRegion and
// plain-value stats escape (the memo retains compile outputs forever).
func runCompilePipeline(in *compileInput) *compileOutput {
	out := &compileOutput{
		guestInsts: len(in.sb.Insts),
		memOps:     in.sb.NumMemOps(),
	}
	ar := arenaPool.Get().(*ir.Arena)
	defer func() {
		ar.Reset()
		arenaPool.Put(ar)
	}()
	reg, err := xlate.TranslateArena(in.sb, ar)
	if err != nil {
		out.err = err
		return out
	}
	tbl := alias.BuildTable(reg, in.blacklist)
	optRes := opt.Run(reg, tbl, in.optCfg)
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)
	// The deferred closures release whatever tbl/ds refer to at return —
	// the retry ladder below releases and rebinds them mid-flight.
	defer func() {
		tbl.Release()
		ds.Release()
		optRes.Release()
	}()

	scfg := in.scfg
	sc, err := sched.Run(reg, tbl, ds, scfg)
	if err != nil {
		// Alias register overflow: retry pinned to non-speculation mode,
		// then give up on eliminations entirely. The failed attempt left
		// partial annotations on the ops; clear them first.
		out.overflowRetries++
		resetAnnotations(reg)
		scfg.ForceNonSpec = true
		sc, err = sched.Run(reg, tbl, ds, scfg)
		if err != nil {
			// Re-translate into the same arena (no Reset mid-compile —
			// the failed region's slab space is simply left behind).
			reg, err = xlate.TranslateArena(in.sb, ar)
			if err != nil {
				out.err = err
				return out
			}
			tbl.Release()
			ds.Release()
			tbl = alias.BuildTable(reg, in.blacklist)
			ds = deps.Compute(reg, tbl)
			sc, err = sched.Run(reg, tbl, ds, scfg)
			if err != nil {
				out.err = fmt.Errorf("dynopt: region B%d cannot be scheduled: %w", in.entry, err)
				return out
			}
		}
	}

	out.numOps = int64(len(reg.Ops))
	// Freeze the schedule and region out of the arena: the compiled
	// region is retained for the lifetime of the system.
	fseq, freg := ir.Freeze(sc.Seq, reg)
	out.cr = in.machine.Compile(fseq, freg, len(in.sb.Insts))
	out.alloc = sc.Alloc.Stats
	out.working = core.MeasureWorkingSets(sc.Alloc, in.sb.NumMemOps())
	out.seqLen = len(sc.Seq)
	sc.Release()
	return out
}

// runCompilePipelineRef is the retained reference compile path: private
// never-recycled IR allocations and the heap-based reference scheduler,
// with no pooling hand-backs. TestCompileFlatMatchesReference drives it
// against runCompilePipeline and requires identical outputs.
func runCompilePipelineRef(in *compileInput) *compileOutput {
	out := &compileOutput{
		guestInsts: len(in.sb.Insts),
		memOps:     in.sb.NumMemOps(),
	}
	reg, err := xlate.Translate(in.sb)
	if err != nil {
		out.err = err
		return out
	}
	tbl := alias.BuildTable(reg, in.blacklist)
	optRes := opt.Run(reg, tbl, in.optCfg)
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)

	scfg := in.scfg
	sc, err := sched.RunRef(reg, tbl, ds, scfg)
	if err != nil {
		out.overflowRetries++
		resetAnnotations(reg)
		scfg.ForceNonSpec = true
		sc, err = sched.RunRef(reg, tbl, ds, scfg)
		if err != nil {
			reg, err = xlate.Translate(in.sb)
			if err != nil {
				out.err = err
				return out
			}
			tbl = alias.BuildTable(reg, in.blacklist)
			ds = deps.Compute(reg, tbl)
			sc, err = sched.RunRef(reg, tbl, ds, scfg)
			if err != nil {
				out.err = fmt.Errorf("dynopt: region B%d cannot be scheduled: %w", in.entry, err)
				return out
			}
		}
	}

	out.numOps = int64(len(reg.Ops))
	out.cr = in.machine.Compile(sc.Seq, reg, len(in.sb.Insts))
	out.alloc = sc.Alloc.Stats
	out.working = core.MeasureWorkingSets(sc.Alloc, in.sb.NumMemOps())
	out.seqLen = len(sc.Seq)
	return out
}

// runCompileJob is the fault-domain wrapper every fresh compile runs
// inside (on a worker goroutine or in place on the synchronous path): it
// recovers a panicking pipeline into a failed compileOutput — so a host
// bug in one compile can never take down the process or wedge the
// install point — and stamps the content checksum the install-time
// validation recomputes. The chaos knobs are plumbed in as plain values
// drawn on the simulation thread (drawHostFaults); the job itself makes
// no decisions.
func runCompileJob(in *compileInput, panicInject bool, poison faultinject.PoisonMode) (out *compileOutput) {
	defer func() {
		if r := recover(); r != nil {
			out = &compileOutput{
				guestInsts: len(in.sb.Insts),
				memOps:     in.sb.NumMemOps(),
				panicked:   true,
				err:        fmt.Errorf("%w: B%d: %v", errCompilePanic, in.entry, r),
			}
		}
	}()
	if panicInject {
		panic("faultinject: injected compile-worker panic")
	}
	out = compilePipeline(in)
	if out.err != nil {
		return out
	}
	if poison == faultinject.PoisonStructure {
		// Corrupt before the checksum stamp: the hash is consistent with
		// the broken contents, so only the structural invariant check can
		// reject it.
		mid := len(out.cr.Seq) / 2
		out.cr.Seq[mid].Dst = ir.VReg(out.cr.Region.NumVRegs + 1<<16)
	}
	out.checksum = out.cr.Checksum()
	if poison == faultinject.PoisonChecksum {
		// Corrupt after the stamp, in a field the structural check does
		// not constrain: only the checksum comparison can reject it.
		out.cr.Seq[0].Imm ^= 0x5a5a5a5a
	}
	return out
}

// keyScratch recycles the sorted-encoding buffers memoKey needs for the
// pin and blacklist sets: hashing runs on the dispatch path at every
// enqueue, so key construction must not allocate.
type keyScratch struct {
	ints  []int
	pairs []alias.Pair
}

var keyScratchPool = sync.Pool{New: func() interface{} { return &keyScratch{} }}

// memoKey canonically hashes a compile input: every superblock byte plus
// every configuration bit the pipeline reads. Fields that cannot vary
// within one System (the machine model, ablations, hardware mode) are
// still folded — they are cheap and keep the key self-contained.
func memoKey(in *compileInput) compilequeue.Key {
	k := compilequeue.NewKey()
	sb := in.sb
	k = k.Int(int64(sb.Entry)).Int(int64(sb.FinalTarget)).Int(int64(sb.UnrollFactor))
	k = k.Int(int64(len(sb.Blocks)))
	for _, b := range sb.Blocks {
		k = k.Int(int64(b))
	}
	k = k.Int(int64(len(sb.Insts)))
	for i := range sb.Insts {
		gi := &sb.Insts[i]
		k = k.Int(int64(gi.Inst.Op)).Int(int64(gi.Inst.Rd)).Int(int64(gi.Inst.Rs1)).Int(int64(gi.Inst.Rs2))
		k = k.Int(gi.Inst.Imm).Word(math.Float64bits(gi.Inst.FImm)).Int(int64(gi.Inst.Target))
		k = k.Bool(gi.IsGuard).Bool(gi.OnTraceTaken).Int(int64(gi.OffTrace))
	}
	k = k.Bool(in.optCfg.LoadElim).Bool(in.optCfg.StoreElim).Bool(in.optCfg.Speculative)
	sc := &in.scfg
	k = k.Int(int64(sc.Mode)).Int(int64(sc.NumAliasRegs)).Bool(sc.StoreReorder).Bool(sc.ForceNonSpec)
	k = k.Int(int64(sc.PressureMargin)).Bool(sc.Alloc.DisableAnti).Bool(sc.Alloc.DisableRotation)
	if len(sc.PinnedOps) == 0 && len(in.blacklist) == 0 {
		// Common case: no pins, no blacklist. Encode the zero lengths
		// without touching the scratch pool.
		return k.Int(0).Int(0)
	}
	scr := keyScratchPool.Get().(*keyScratch)
	pins := scr.ints[:0]
	for op := range sc.PinnedOps {
		pins = append(pins, op)
	}
	slices.Sort(pins)
	k = k.Int(int64(len(pins)))
	for _, op := range pins {
		k = k.Int(int64(op))
	}
	pairs := scr.pairs[:0]
	for p := range in.blacklist {
		pairs = append(pairs, p)
	}
	slices.SortFunc(pairs, func(a, b alias.Pair) int {
		if c := cmp.Compare(a.A, b.A); c != 0 {
			return c
		}
		return cmp.Compare(a.B, b.B)
	})
	k = k.Int(int64(len(pairs)))
	for _, p := range pairs {
		k = k.Int(int64(p.A)).Int(int64(p.B))
	}
	scr.ints, scr.pairs = pins, pairs
	keyScratchPool.Put(scr)
	return k
}

// outputClean reports whether a fresh compile result is fit for the
// shared fleet cache: not panicked, no pipeline error, and
// self-consistent (the content checksum recomputes and the structural
// invariants hold). It mirrors admitOutput without the stats and
// quarantine side effects — the leading tenant decides cache admission
// with it, so a poisoned or failed result never enters the shared table,
// while every installing tenant still re-screens through admitOutput.
func outputClean(out *compileOutput) bool {
	if out == nil || out.panicked || out.err != nil || out.cr == nil {
		return false
	}
	if out.cr.Checksum() != out.checksum {
		return false
	}
	return out.cr.Validate() == nil
}

// compileOutputBytes sizes a compile output for byte-budgeted caches by
// its dominant retained allocation, the frozen compiled region.
func compileOutputBytes(out *compileOutput) int64 {
	if out == nil || out.cr == nil {
		return 0
	}
	return out.cr.Bytes()
}

// drawHostFaults performs the per-fresh-compile host-fault draws, in a
// fixed order on the simulation thread, so the injector's sequence is
// independent of the worker count and host timing. withHang is true only
// on the background path — a synchronous compile has no watchdog
// deadline to overrun. A drawn hang dominates (the job never finishes,
// so a panic or poison inside it would be unobservable), and a drawn
// panic dominates poison (a panicking job produces no result to poison).
func (s *System) drawHostFaults(entry int, withHang bool) (panicInject, hang bool, poison faultinject.PoisonMode) {
	if s.inj == nil {
		return false, false, faultinject.PoisonNone
	}
	panicInject = s.inj.WorkerPanic()
	if withHang {
		hang = s.inj.CompileHang()
	}
	poison = s.inj.PoisonResult()
	now, tier := s.now(), s.tierOf(entry)
	if hang {
		s.tel.chaosInjected(now, entry, tier, telemetry.CauseWatchdog)
		s.trace("injected compile hang for B%d", entry)
		return false, true, faultinject.PoisonNone
	}
	if panicInject {
		s.tel.chaosInjected(now, entry, tier, telemetry.CauseWorkerPanic)
		s.trace("injected compile-worker panic for B%d", entry)
		return true, false, faultinject.PoisonNone
	}
	if poison != faultinject.PoisonNone {
		s.tel.chaosInjected(now, entry, tier, telemetry.CausePoison)
		s.trace("injected poisoned compile result for B%d", entry)
	}
	return false, false, poison
}

// memoPressureDraw applies injected host memory pressure to the memo
// table ahead of a lookup: the LRU entry is evicted, so a previously
// memoized region may have to recompile.
func (s *System) memoPressureDraw(entry int) {
	if s.inj == nil || !s.inj.MemoPressure() {
		return
	}
	if s.memo.DropOldest() {
		s.tel.chaosInjected(s.now(), entry, s.tierOf(entry), telemetry.CauseMemoPressure)
		s.tel.memoTable(s.memo.Len(), s.memo.Evictions())
		s.trace("injected memo pressure: dropped LRU entry (%d left)", s.memo.Len())
	}
}

// admitOutput decides whether a fresh compile result may be installed.
// Three screens, in order: a recovered worker panic (the result never
// existed, and the region is quarantined — the pipeline provably cannot
// handle this input), the pipeline's own error, then the poisoned-result
// screen — the content checksum recomputed on the simulation thread
// against the worker's stamp, and the structural invariants for
// corruption that predates the stamp. A rejected result is never
// memoized and never dispatched. Memo hits were admitted when first
// stored, so re-admitting them is a pure double-check.
func (s *System) admitOutput(entry int, out *compileOutput) error {
	if out.panicked {
		s.Stats.Compile.WorkerPanics++
		s.recordHostFault(entry, telemetry.CauseWorkerPanic)
		s.quarantineRegion(entry, telemetry.CauseWorkerPanic)
		return out.err
	}
	if out.err != nil {
		return out.err
	}
	if got := out.cr.Checksum(); got != out.checksum {
		s.Stats.Compile.Rejected++
		s.recordHostFault(entry, telemetry.CausePoison)
		return fmt.Errorf("%w: B%d content checksum %#x, stamped %#x", errPoisonedResult, entry, got, out.checksum)
	}
	if verr := out.cr.Validate(); verr != nil {
		s.Stats.Compile.Rejected++
		s.recordHostFault(entry, telemetry.CausePoison)
		return fmt.Errorf("%w: B%d structural invariants: %v", errPoisonedResult, entry, verr)
	}
	return nil
}

// compile is the synchronous compile-and-install path (Compile.Workers ==
// 0): the pipeline runs in place and the region installs instantly,
// charging Opt/SchedCycles on the critical path.
func (s *System) compile(entry int) error {
	if s.inj != nil && s.inj.CompileFail() {
		s.trace("injected compile failure for B%d", entry)
		s.tel.chaosInjected(s.now(), entry, s.tierOf(entry), telemetry.CauseCompileFail)
		return fmt.Errorf("%w for B%d", errInjectedCompileFail, entry)
	}
	in, err := s.newCompileInput(entry)
	if err != nil {
		return err
	}
	var (
		out     *compileOutput
		key     compilequeue.Key
		memoHit bool
	)
	if s.memo != nil {
		s.memoPressureDraw(entry)
		key = memoKey(in)
		if m, ok := s.memo.Get(key); ok {
			out, memoHit = m, true
			s.Stats.Compile.MemoHits++
			s.tel.memoLookup(true)
		} else {
			s.Stats.Compile.MemoMisses++
			s.tel.memoLookup(false)
		}
	}
	if s.shared != nil {
		key = memoKey(in)
		v, hit, flight, leader := s.shared.cache.Lookup(key)
		switch {
		case hit:
			out, memoHit = v, true
			s.Stats.Compile.MemoHits++
			s.tel.memoLookup(true)
		case leader:
			s.Stats.Compile.MemoMisses++
			s.tel.memoLookup(false)
			panicInject, _, poison := s.drawHostFaults(entry, false)
			out = runCompileJob(in, panicInject, poison)
			s.shared.cache.Complete(key, flight, out, outputClean(out))
		default:
			// Another tenant is compiling this key right now: take its
			// result instead of duplicating the work. Blocking inline is
			// safe — leadership is only ever held while the leader runs
			// its compile job, so the flight always completes.
			s.Stats.Compile.MemoMisses++
			s.Stats.Compile.DedupeWaits++
			s.tel.memoLookup(false)
			<-flight.Done()
			out, memoHit = flight.Value(), true
			// The wait is wall-clock only: synchronous compilation happens
			// at one simulated instant, so the modelled dedupe wait is 0.
			s.tel.dedupeWaited(0)
		}
	}
	if out == nil {
		panicInject, _, poison := s.drawHostFaults(entry, false)
		out = runCompileJob(in, panicInject, poison)
	}
	if err := s.admitOutput(entry, out); err != nil {
		return err
	}
	if s.memo != nil && !memoHit {
		s.memo.Put(key, out)
		s.tel.memoTable(s.memo.Len(), s.memo.Evictions())
	}
	s.installOutput(entry, out, 0)
	return nil
}

// requestCompile starts a compilation for entry: synchronously in the
// legacy path, or as a background enqueue. An error is returned only for
// failures observable at request time (injected chaos failures, region
// formation, and — synchronously — the whole pipeline); background
// pipeline failures surface at the install point instead. Suppressed
// requests (a quarantined region, or compilation shed by the health
// controller) return nil silently: not compiling is the intended
// outcome, not a failure to back off from.
func (s *System) requestCompile(entry int) error {
	if !s.compileAllowed(entry) {
		return nil
	}
	if s.bg == nil {
		return s.compile(entry)
	}
	return s.enqueueCompile(entry)
}

// recompileRegion re-(or newly-)compiles entry after its compile inputs
// changed (a tier move, a hardened pair, a pinned load): synchronously in
// place, or by cancelling any now-stale pending compile and enqueueing a
// fresh one against the updated inputs. When compilation is suppressed,
// both the pending compile and any installed code are built against the
// old inputs — throw both away; the region re-forms once compiles are
// allowed again.
func (s *System) recompileRegion(entry int) error {
	if !s.compileAllowed(entry) {
		s.cancelPending(entry, telemetry.CauseHealth)
		if s.disp[entry].code != nil {
			s.dropCode(entry)
			s.Stats.RegionsDropped++
			s.tel.drop(s.now(), entry, s.tierOf(entry), telemetry.CauseHealth)
		}
		return nil
	}
	if s.bg == nil {
		return s.compile(entry)
	}
	s.cancelPending(entry, telemetry.CauseStale)
	return s.enqueueCompile(entry)
}

// enqueueCompile snapshots entry's inputs, fixes the install point from
// the simulated clock and the superblock alone, and hands the pure
// pipeline to the worker pool (unless the memo already has the result).
// Single-flight per entry: a live pending compile absorbs the request.
func (s *System) enqueueCompile(entry int) error {
	bg := s.bg
	if bg.pending[entry] != nil {
		return nil
	}
	// The chaos draw happens at enqueue on the simulation thread, so the
	// injector's sequence is independent of the worker count.
	if s.inj != nil && s.inj.CompileFail() {
		s.trace("injected compile failure for B%d", entry)
		s.tel.chaosInjected(s.now(), entry, s.tierOf(entry), telemetry.CauseCompileFail)
		return fmt.Errorf("%w for B%d", errInjectedCompileFail, entry)
	}
	in, err := s.newCompileInput(entry)
	if err != nil {
		return err
	}
	cost := int64(s.cfg.Machine.CompileCyclesPerInst)*int64(len(in.sb.Insts)) +
		int64(s.cfg.Machine.CompileCyclesPerCheck)*int64(in.sb.NumMemOps())
	bg.seq++
	now := s.now()
	p := &pendingCompile{
		entry:      entry,
		seq:        bg.seq,
		enqueuedAt: now,
		readyAt:    now + cost,
		deadline:   now + cost*s.cfg.Compile.watchdogFactor(),
		recompile:  s.disp[entry].code != nil,
	}
	if s.memo != nil {
		s.memoPressureDraw(entry)
		p.key = memoKey(in)
		if out, ok := s.memo.Get(p.key); ok {
			p.out, p.memoHit = out, true
			s.Stats.Compile.MemoHits++
		} else {
			s.Stats.Compile.MemoMisses++
		}
	}
	if s.shared != nil {
		p.key = memoKey(in)
		v, hit, flight, leader := s.shared.cache.Lookup(p.key)
		switch {
		case hit:
			p.out, p.memoHit = v, true
			s.Stats.Compile.MemoHits++
		case leader:
			s.Stats.Compile.MemoMisses++
			panicInject, hang, poison := s.drawHostFaults(entry, true)
			if hang {
				p.hung = true
				// A hung leader never submits a job, so it must settle the
				// flight here or followers on other tenants would wait
				// forever. The synthetic watchdog failure is never inserted
				// (insert=false): the next lookup elects a fresh leader.
				s.shared.cache.Complete(p.key, flight, &compileOutput{
					guestInsts: len(in.sb.Insts),
					memOps:     in.sb.NumMemOps(),
					err:        fmt.Errorf("%w for B%d", errWatchdogTimeout, entry),
				}, false)
			} else {
				if bg.pool == nil {
					bg.pool = compilequeue.NewPool(s.cfg.Compile.Workers)
				}
				p.flight = flight
				key, cache := p.key, s.shared.cache
				bg.pool.Submit(func() {
					out := runCompileJob(in, panicInject, poison)
					cache.Complete(key, flight, out, outputClean(out))
				})
			}
		default:
			// Another tenant's compile of this key is in flight: join it.
			// The install point blocks on the flight only once the
			// simulated clock passes readyAt, exactly like a private job.
			s.Stats.Compile.MemoMisses++
			s.Stats.Compile.DedupeWaits++
			p.flight = flight
			p.deduped = true
		}
	}
	if p.out == nil && !p.hung && p.flight == nil {
		// Host faults only strike fresh compiles: a memo hit runs no
		// worker job, so there is nothing to panic, hang or poison.
		panicInject, hang, poison := s.drawHostFaults(entry, true)
		if hang {
			p.hung = true
		} else {
			if bg.pool == nil {
				bg.pool = compilequeue.NewPool(s.cfg.Compile.Workers)
			}
			p.done = make(chan struct{})
			job := p
			bg.pool.Submit(func() {
				job.out = runCompileJob(in, panicInject, poison)
				close(job.done)
			})
		}
	}
	bg.pending[entry] = p
	q := append(bg.queue, p)
	for i := len(q) - 1; i > 0; i-- {
		prev := q[i-1]
		if prev.at() < q[i].at() || (prev.at() == q[i].at() && prev.seq < q[i].seq) {
			break
		}
		q[i-1], q[i] = q[i], q[i-1]
	}
	bg.queue = q
	s.Stats.Compile.Enqueued++
	depth := len(bg.pending)
	if depth > s.Stats.Compile.MaxQueueDepth {
		s.Stats.Compile.MaxQueueDepth = depth
	}
	s.tel.compileEnqueue(now, entry, s.tierOf(entry), cost, depth, p.memoHit)
	s.trace("enqueue compile B%d: ready at cycle %d (cost %d, depth %d)", entry, p.readyAt, cost, depth)
	return nil
}

// cancelPending discards entry's pending compile, if any. The worker (if
// still running) finishes into an unread result; the pool drains it at
// Close.
func (s *System) cancelPending(entry int, cause telemetry.Cause) {
	bg := s.bg
	if bg == nil {
		return
	}
	p := bg.pending[entry]
	if p == nil {
		return
	}
	delete(bg.pending, entry)
	for i, q := range bg.queue {
		if q == p {
			bg.queue = append(bg.queue[:i], bg.queue[i+1:]...)
			break
		}
	}
	s.Stats.Compile.Canceled++
	s.tel.compileCancel(s.now(), entry, s.tierOf(entry), cause, len(bg.pending))
	s.trace("cancel pending compile B%d (%s)", entry, cause)
}

// drainCompiles installs every pending compilation whose event time the
// simulated clock has passed, in deterministic (event time, enqueue-seq)
// order. This is the only place the simulation thread blocks on a worker
// — and only when the simulated install point has already arrived. Hung
// jobs never block: their done channel is nil and the watchdog kills
// them at their deadline without reading a result.
func (s *System) drainCompiles() {
	bg := s.bg
	if bg == nil {
		return
	}
	now := s.now()
	for len(bg.queue) > 0 && bg.queue[0].at() <= now {
		p := bg.queue[0]
		copy(bg.queue, bg.queue[1:])
		bg.queue = bg.queue[:len(bg.queue)-1]
		delete(bg.pending, p.entry)
		if p.done != nil {
			<-p.done
		}
		if p.flight != nil {
			// Shared-cache job (led here or by another tenant): the result
			// travels through the flight, not p.out.
			<-p.flight.Done()
			if p.out == nil {
				p.out = p.flight.Value()
			}
		}
		s.installPending(p)
	}
}

// installPending applies one completed background compilation at its
// install point.
func (s *System) installPending(p *pendingCompile) {
	if p.hung {
		// Watchdog kill at the deadline. The job was never submitted (an
		// injected hang) or its result is simply never read, so the kill
		// point is a pure function of the simulated clock — no blocking,
		// no host-timing dependence. The wasted occupancy up to the
		// deadline is charged as compile work.
		s.Stats.Compile.Failed++
		s.Stats.Compile.WatchdogKills++
		s.Stats.Compile.WorkCycles += p.deadline - p.enqueuedAt
		s.tel.compileInstalled(p.deadline-p.enqueuedAt, len(s.bg.pending))
		s.recordHostFault(p.entry, telemetry.CauseWatchdog)
		if p.recompile {
			s.dropCode(p.entry)
			s.Stats.RegionsDropped++
			s.tel.drop(s.now(), p.entry, s.tierOf(p.entry), telemetry.CauseCompileFail)
		} else {
			s.compileFailBackoff(p.entry, errWatchdogTimeout)
		}
		s.trace("watchdog killed compile B%d at its deadline (cycle %d)", p.entry, p.deadline)
		return
	}
	latency := s.now() - p.enqueuedAt
	s.Stats.Compile.WorkCycles += p.readyAt - p.enqueuedAt
	s.Stats.Compile.LatencySum += latency
	s.tel.compileInstalled(latency, len(s.bg.pending))
	if p.deduped {
		s.tel.dedupeWaited(latency)
	}
	out := p.out
	if err := s.admitOutput(p.entry, out); err != nil {
		s.Stats.Compile.Failed++
		if p.recompile {
			// The superseding compile failed: the installed code is built
			// against stale inputs, so drop it (the synchronous path's
			// recompile-failure consequence).
			s.dropCode(p.entry)
			s.Stats.RegionsDropped++
			s.tel.drop(s.now(), p.entry, s.tierOf(p.entry), telemetry.CauseCompileFail)
		} else if !out.panicked {
			// A panicked region is quarantined — it will never compile
			// again, so no cooldown applies.
			s.compileFailBackoff(p.entry, err)
		}
		s.trace("background compile B%d failed: %v", p.entry, err)
		return
	}
	if s.memo != nil && !p.memoHit {
		s.memo.Put(p.key, out)
		s.tel.memoTable(s.memo.Len(), s.memo.Evictions())
	}
	s.installOutput(p.entry, out, latency)
	s.Stats.Compile.Installed++
}

// installOutput installs a successful compile result: cycle accounting,
// code cache insert (with capacity eviction), per-region statistics and
// the compile telemetry event. Shared by both compile paths.
func (s *System) installOutput(entry int, out *compileOutput, latency int64) {
	s.Stats.OverflowRetries += out.overflowRetries
	if s.bg == nil {
		// Synchronous compilation executes on the critical path (the
		// paper's Figure 18 cost); background compilation's occupancy is
		// charged to CompileStats.WorkCycles at the install point instead.
		s.Stats.OptCycles += out.numOps * int64(s.cfg.Machine.OptCyclesPerOp)
		s.Stats.SchedCycles += out.numOps * int64(s.cfg.Machine.SchedCyclesPerOp)
	}
	delete(s.injFailStreak, entry)

	rr := s.recoveryOf(entry)
	recompile := s.disp[entry].code != nil
	if recompile {
		s.Stats.Recompiles++
		s.trace("recompile B%d: %d ops, %d cycles, tier=%s", entry, out.seqLen, out.cr.Cycles, rr.tier)
	} else {
		s.evictForCapacity(entry)
		s.Stats.RegionsCompiled++
		s.trace("compile B%d: %d guest insts -> %d ops, %d cycles, %d mem ops, P=%d C=%d ws=%d",
			entry, out.guestInsts, out.seqLen, out.cr.Cycles, out.memOps,
			out.alloc.PBits, out.alloc.CBits, out.alloc.WorkingSet)
	}
	s.setCode(entry, &compiled{
		cr: out.cr, lastUse: s.entrySeq,
		installedAt: s.now(), fresh: true,
	})

	rs := RegionStats{
		Entry:          entry,
		GuestInsts:     out.guestInsts,
		MemOps:         out.memOps,
		Alloc:          out.alloc,
		Working:        out.working,
		SeqLen:         out.seqLen,
		Cycles:         out.cr.Cycles,
		CompileLatency: latency,
		Tier:           rr.tier,
	}
	if idx, ok := s.regionIdx[entry]; ok {
		s.Stats.Regions[idx] = rs
	} else {
		s.regionIdx[entry] = len(s.Stats.Regions)
		s.Stats.Regions = append(s.Stats.Regions, rs)
	}
	s.tel.regionCompile(s.now(), entry, rr.tier, recompile, &rs)
}

// compileFailBackoff applies the hot-path cooldown after a failed
// compilation. Genuinely unschedulable regions double their heat
// requirement — the failure is structural and will repeat. Injected chaos
// failures, watchdog kills and rejected poisoned results are transient by
// construction (a host flake, not a property of the region), so they back
// off additively with a bounded streak (reset on the next successful
// install); without the distinction, repeated host faults in a chaos soak
// compound the doubling and pin hot regions in the interpreter for the
// rest of the run.
const injFailStreakCap = 8

func (s *System) compileFailBackoff(entry int, err error) {
	count := s.it.Prof.BlockCounts[entry]
	if errors.Is(err, errInjectedCompileFail) || errors.Is(err, errWatchdogTimeout) ||
		errors.Is(err, errPoisonedResult) {
		streak := s.injFailStreak[entry] + 1
		if streak > injFailStreakCap {
			streak = injFailStreakCap
		}
		s.injFailStreak[entry] = streak
		s.disp[entry].cooldown = count + streak*s.cfg.HotThreshold
		return
	}
	s.disp[entry].cooldown = count * 2
}

// abandonCompiles cancels every still-pending compilation at the end of
// the run and releases the worker pool.
func (s *System) abandonCompiles() {
	bg := s.bg
	if bg == nil {
		return
	}
	for len(bg.queue) > 0 {
		s.cancelPending(bg.queue[0].entry, telemetry.CauseRunEnd)
	}
	if bg.pool != nil {
		if !bg.sharedPool {
			// A fleet-owned pool is still serving other tenants; its
			// creator closes it after every System using it has finished.
			bg.pool.Close()
		}
		bg.pool = nil
	}
}
