package dynopt

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/telemetry"
)

// bgRun is one instrumented run: the stats, the full JSONL event trace,
// the metrics snapshot, and the final guest state/memory.
type bgRun struct {
	sys     *System
	st      *guest.State
	mem     *guest.Memory
	trace   []byte
	metrics []byte
}

// runInstrumented executes prog under cfg with a JSONL tracer and a
// metrics registry attached, so runs can be compared byte-for-byte.
func runInstrumented(t *testing.T, prog *guest.Program, memSize int, cfg Config) *bgRun {
	t.Helper()
	var jb, mb bytes.Buffer
	tel := &telemetry.Telemetry{
		Events:  telemetry.NewTracer(0, telemetry.NewJSONLSink(&jb)),
		Metrics: telemetry.NewRegistry(),
	}
	cfg.Telemetry = tel
	r := &bgRun{st: &guest.State{}, mem: guest.NewMemory(memSize)}
	r.sys = New(prog, r.st, r.mem, cfg)
	halted, err := r.sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("run did not halt")
	}
	if err := tel.Events.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tel.Metrics.WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	r.trace = jb.Bytes()
	r.metrics = mb.Bytes()
	return r
}

// TestBackgroundWorkersDeterministic is the tentpole's core guarantee:
// the host worker count is invisible to the simulation. Every Workers
// N >= 1 must produce byte-identical stats, telemetry streams and guest
// state — including under chaos injection, whose draws happen at enqueue
// on the simulation thread precisely so the injector sequence cannot
// depend on worker scheduling.
func TestBackgroundWorkersDeterministic(t *testing.T) {
	progs := map[string]func() *guest.Program{
		"sumloop":  func() *guest.Program { return sumLoopProgram(2000) },
		"aliasing": func() *guest.Program { return aliasingProgram(2500, 7) },
	}
	arms := []struct {
		name    string
		seed    int64
		memoize bool
	}{
		{"plain", 0, false},
		{"memoized", 0, true},
		{"chaos", 7, false},
	}
	for pname, build := range progs {
		for _, arm := range arms {
			t.Run(pname+"/"+arm.name, func(t *testing.T) {
				baseCfg := func(workers int) Config {
					cfg := ConfigSMARQ(64)
					cfg.Compile.Workers = workers
					cfg.Compile.Memoize = arm.memoize
					if arm.seed != 0 {
						cfg.Chaos = faultinject.Default(arm.seed)
						cfg.CheckInvariants = true
					}
					return cfg
				}
				ref := runInstrumented(t, build(), 1<<16, baseCfg(1))
				for _, workers := range []int{2, 4} {
					got := runInstrumented(t, build(), 1<<16, baseCfg(workers))
					if !reflect.DeepEqual(ref.sys.Stats, got.sys.Stats) {
						t.Errorf("workers=%d: stats diverge from workers=1\n 1: %+v\n%2d: %+v",
							workers, ref.sys.Stats, workers, got.sys.Stats)
					}
					if !bytes.Equal(ref.trace, got.trace) {
						t.Errorf("workers=%d: event trace diverges from workers=1", workers)
					}
					if !bytes.Equal(ref.metrics, got.metrics) {
						t.Errorf("workers=%d: metrics snapshot diverges from workers=1", workers)
					}
					snap := faultinject.Capture(ref.st, ref.mem)
					if err := snap.Verify(got.st, got.mem); err != nil {
						t.Errorf("workers=%d: guest state diverges from workers=1: %v", workers, err)
					}
				}
			})
		}
	}
}

// TestBackgroundMatchesInterpreter: background compilation changes when
// code installs, never what it computes — the final guest state must
// still equal pure interpretation.
func TestBackgroundMatchesInterpreter(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Workers = 2
	cfg.Compile.Memoize = true
	sys, ref := runBoth(t, aliasingProgram(2500, 7), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)
	if sys.Stats.Compile.Installed == 0 {
		t.Error("background path installed no regions — the test exercised nothing")
	}
}

// TestBackgroundLatencyModel checks the cycle accounting split: the
// synchronous path charges Opt/SchedCycles on the critical path, the
// background path charges the latency model's occupancy to WorkCycles
// (excluded from TotalCycles) and nothing to Opt/SchedCycles.
func TestBackgroundLatencyModel(t *testing.T) {
	mk := func(workers int) Config {
		cfg := ConfigSMARQ(64)
		cfg.Compile.Workers = workers
		return cfg
	}
	syncRun := runInstrumented(t, sumLoopProgram(2000), 1<<16, mk(0))
	bg := runInstrumented(t, sumLoopProgram(2000), 1<<16, mk(1))

	ss, bs := syncRun.sys.Stats, bg.sys.Stats
	if ss.Compile.Enqueued != 0 || ss.Compile.WorkCycles != 0 {
		t.Errorf("sync path recorded background stats: %+v", ss.Compile)
	}
	if ss.OptCycles == 0 || ss.SchedCycles == 0 {
		t.Error("sync path charged no compile cycles on the critical path")
	}
	if bs.Compile.Installed == 0 {
		t.Fatalf("background path installed nothing: %+v", bs.Compile)
	}
	if bs.OptCycles != 0 || bs.SchedCycles != 0 {
		t.Errorf("background path charged critical-path compile cycles: opt=%d sched=%d",
			bs.OptCycles, bs.SchedCycles)
	}
	if bs.Compile.WorkCycles == 0 {
		t.Error("background path charged no WorkCycles")
	}
	// Observed latency can only exceed the modelled cost: installs happen
	// at the first drain point at or after readyAt.
	if bs.Compile.LatencySum < bs.Compile.WorkCycles {
		t.Errorf("latency sum %d below modelled occupancy %d",
			bs.Compile.LatencySum, bs.Compile.WorkCycles)
	}
	// While a compile is in flight the region keeps interpreting, so the
	// background run interprets at least as many instructions.
	if bs.InterpretedInsts < ss.InterpretedInsts {
		t.Errorf("background interpreted %d insts, sync %d — install delay should never reduce interpretation",
			bs.InterpretedInsts, ss.InterpretedInsts)
	}
	// Per-region latencies are recorded.
	var withLatency int
	for _, r := range bg.sys.Stats.Regions {
		if r.CompileLatency > 0 {
			withLatency++
		}
	}
	if withLatency == 0 {
		t.Error("no region recorded a CompileLatency")
	}
}

// TestMemoHitReusesCompiledRegion: a recompile whose inputs hash to a
// previously compiled key must reuse the same CompiledRegion object
// without re-running the pipeline.
func TestMemoHitReusesCompiledRegion(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Memoize = true
	sys := New(sumLoopProgram(400), &guest.State{}, guest.NewMemory(1<<16), cfg)
	if halted, err := sys.Run(50_000_000); err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	entry, cr0 := -1, (*compiled)(nil)
	for e := range sys.disp {
		if c := sys.disp[e].code; c != nil {
			entry, cr0 = e, c
			break
		}
	}
	if entry < 0 {
		t.Fatal("run compiled no regions")
	}
	before := sys.Stats.Compile

	// Evict the code and compile the entry again with unchanged inputs:
	// the memo must hand back the identical compiled object.
	sys.dropCode(entry)
	if err := sys.compile(entry); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.Compile.MemoHits != before.MemoHits+1 {
		t.Errorf("memo hits %d, want %d", sys.Stats.Compile.MemoHits, before.MemoHits+1)
	}
	if sys.Stats.Compile.MemoMisses != before.MemoMisses {
		t.Errorf("memo misses %d, want unchanged %d", sys.Stats.Compile.MemoMisses, before.MemoMisses)
	}
	if got := sys.disp[entry].code; got == nil || got.cr != cr0.cr {
		t.Error("recompile did not reuse the memoized CompiledRegion")
	}
}

// TestMemoizationInvisibleInStats: memo hits replay the original
// compilation's simulated costs, so every stat except the hit/miss
// counters is identical with memoization on or off.
func TestMemoizationInvisibleInStats(t *testing.T) {
	mk := func(memoize bool) Config {
		cfg := ConfigSMARQ(64)
		cfg.Compile.Workers = 2
		cfg.Compile.Memoize = memoize
		return cfg
	}
	off := runInstrumented(t, aliasingProgram(2500, 7), 1<<16, mk(false))
	on := runInstrumented(t, aliasingProgram(2500, 7), 1<<16, mk(true))

	a, b := off.sys.Stats, on.sys.Stats
	a.Compile.MemoHits, a.Compile.MemoMisses = 0, 0
	b.Compile.MemoHits, b.Compile.MemoMisses = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats differ beyond memo counters\noff: %+v\non:  %+v", a, b)
	}
	snap := faultinject.Capture(off.st, off.mem)
	if err := snap.Verify(on.st, on.mem); err != nil {
		t.Errorf("guest state differs with memoization on: %v", err)
	}
}

// TestInjectedCompileFailBackoff pins satellite policy: chaos-injected
// compile failures back off additively with a bounded streak, while
// genuine scheduling failures keep the structural doubling — so a chaos
// soak cannot compound the doubling and pin hot regions in the
// interpreter.
func TestInjectedCompileFailBackoff(t *testing.T) {
	cfg := ConfigSMARQ(64)
	sys := New(sumLoopProgram(10), &guest.State{}, guest.NewMemory(1<<16), cfg)
	const entry = 3
	sys.it.Prof.BlockCounts[entry] = 1000
	hot := sys.cfg.HotThreshold
	injected := fmt.Errorf("%w for B%d", errInjectedCompileFail, entry)

	for i := uint64(1); i <= 2*injFailStreakCap; i++ {
		sys.compileFailBackoff(entry, injected)
		streak := i
		if streak > injFailStreakCap {
			streak = injFailStreakCap
		}
		if want := 1000 + streak*hot; sys.disp[entry].cooldown != want {
			t.Fatalf("after %d injected failures: cooldown %d, want %d",
				i, sys.disp[entry].cooldown, want)
		}
	}
	// The additive policy is bounded: the cap holds no matter how long
	// the chaos streak runs.
	if cap := 1000 + injFailStreakCap*hot; sys.disp[entry].cooldown > cap {
		t.Errorf("injected-failure cooldown %d exceeds additive cap %d", sys.disp[entry].cooldown, cap)
	}
	// A genuine failure still doubles.
	sys.compileFailBackoff(entry, errors.New("dynopt: region B3 cannot be scheduled"))
	if want := uint64(2000); sys.disp[entry].cooldown != want {
		t.Errorf("after real failure: cooldown %d, want %d", sys.disp[entry].cooldown, want)
	}
}

// TestInjectedFailStreakResetsOnInstall: a successful install clears the
// injected-failure streak, so the next chaos burst starts the additive
// backoff from scratch.
func TestInjectedFailStreakResetsOnInstall(t *testing.T) {
	cfg := ConfigSMARQ(64)
	sys := New(sumLoopProgram(400), &guest.State{}, guest.NewMemory(1<<16), cfg)
	// Seed a phantom streak on every block; each successful install must
	// clear its entry's streak (compileFailBackoff restarts at 1 after).
	for b := range sys.it.Prof.BlockCounts {
		sys.injFailStreak[b] = 5
	}
	if halted, err := sys.Run(50_000_000); err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if len(sys.Stats.Regions) == 0 {
		t.Fatal("run compiled no regions")
	}
	for _, r := range sys.Stats.Regions {
		if got := sys.injFailStreak[r.Entry]; got != 0 {
			t.Errorf("B%d: streak %d after successful install, want cleared", r.Entry, got)
		}
	}
}

// TestInjectedFailuresDoNotPinRegions is the end-to-end regression for
// the backoff split: even under an extreme injected compile-failure
// rate, hot regions must eventually compile (and the run must still
// match pure interpretation).
func TestInjectedFailuresDoNotPinRegions(t *testing.T) {
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := ConfigSMARQ(64)
			cfg.Compile.Workers = workers
			cfg.Chaos = faultinject.Config{Seed: 5, CompileFailRate: 0.8}
			cfg.CheckInvariants = true
			sys, ref := runBoth(t, sumLoopProgram(4000), cfg, 1<<16)
			assertSameState(t, sys, ref, 1<<16)
			if sys.Stats.RegionsCompiled == 0 {
				t.Errorf("no region compiled under 80%% injected failures: %+v", sys.Stats.Compile)
			}
		})
	}
}
