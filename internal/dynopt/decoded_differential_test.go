package dynopt

import (
	"os"
	"reflect"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/workload"
)

// TestSystemDecodedInterpMatchesReference is the system-level half of the
// decoded-interpreter differential: two complete dynopt runs — one on the
// pre-decoded engine, one on the guest.Exec reference engine — must land
// on identical Stats, registers and memory across workloads, chaos seeds
// and compile worker counts. Since the interpreter drives profiling,
// region formation and every budget decision, any retirement or edge-count
// divergence between the engines would cascade into visibly different
// stats here.
func TestSystemDecodedInterpMatchesReference(t *testing.T) {
	names := map[string]bool{"swim": true, "equake": true, "ammp": true, "mesa": true}
	full := os.Getenv("SMARQ_CHAOS_FULL") != ""
	seeds := []int64{0, 7} // 0 = chaos off
	workers := []int{0, 2}

	for _, bm := range workload.Suite() {
		if !full && !names[bm.Name] {
			continue
		}
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			for _, seed := range seeds {
				for _, w := range workers {
					run := func(ref bool) *System {
						cfg := ConfigSMARQ(64)
						if seed != 0 {
							cfg.Chaos = faultinject.Default(seed)
							cfg.CheckInvariants = true
						}
						cfg.Compile.Workers = w
						if w > 0 {
							cfg.Compile.Memoize = true
						}
						sys := New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
						sys.it.Ref = ref
						halted, err := sys.Run(bm.MaxInsts)
						if err != nil || !halted {
							t.Fatalf("seed=%d workers=%d ref=%v: halted=%v err=%v", seed, w, ref, halted, err)
						}
						return sys
					}
					refSys := run(true)
					decSys := run(false)
					if !reflect.DeepEqual(decSys.Stats, refSys.Stats) {
						t.Fatalf("seed=%d workers=%d: stats diverged\ndecoded:  %+v\nreference: %+v",
							seed, w, decSys.Stats, refSys.Stats)
					}
					if *decSys.State() != *refSys.State() {
						t.Fatalf("seed=%d workers=%d: architectural state diverged", seed, w)
					}
					if d, r := decSys.Mem().Digest(), refSys.Mem().Digest(); d != r {
						t.Fatalf("seed=%d workers=%d: memory digest %#x, reference %#x", seed, w, d, r)
					}
				}
			}
		})
	}
}

// TestRunBudgetOvershootBounded pins System.Run's documented maxInsts
// contract: the budget is checked between dispatches, so one oversized
// block may overshoot the cap — by at most that block's size, never more.
func TestRunBudgetOvershootBounded(t *testing.T) {
	const bodySize = 800
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1)
	loop := b.NewBlock()
	for i := 0; i < bodySize; i++ {
		b.Addi(2, 2, 1)
	}
	b.Jmp(loop)
	prog := b.MustProgram()
	blockInsts := int64(bodySize + 1)

	const budget = 100 // far below one block
	sys := New(prog, &guest.State{}, guest.NewMemory(64), ConfigSMARQ(64))
	halted, err := sys.Run(budget)
	if err != nil || halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if sys.Stats.GuestInsts < budget {
		t.Fatalf("GuestInsts=%d stopped below the budget %d", sys.Stats.GuestInsts, budget)
	}
	if max := budget + blockInsts; sys.Stats.GuestInsts > max {
		t.Fatalf("GuestInsts=%d overshoots budget %d by more than one block (max %d)",
			sys.Stats.GuestInsts, budget, max)
	}
}
