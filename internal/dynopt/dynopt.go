// Package dynopt is the dynamic optimization system of Figure 1: guest
// code starts in the interpreter, hot blocks grow into superblock regions,
// regions are translated, speculatively optimized, scheduled with SMARQ
// alias register allocation, and installed in a code cache. Translated
// regions execute inside atomic regions on the VLIW model; alias
// exceptions roll back and trigger conservative re-optimization with the
// offending pair blacklisted, exactly as the paper's runtime module does.
package dynopt

import (
	"fmt"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/vliw"
	"smarq/internal/xlate"
)

// Config selects the alias hardware and tuning parameters for a run.
type Config struct {
	// Mode selects the alias-detection hardware.
	Mode sched.HWMode
	// NumAliasRegs sizes the ordered queue (ignored for ALAT/None).
	NumAliasRegs int
	// StoreReorder allows speculative store-store reordering (HWOrdered).
	StoreReorder bool
	// HotThreshold is the block execution count that triggers region
	// formation.
	HotThreshold uint64
	// MaxGuardFails drops a region from the cache after this many
	// consecutive off-trace exits.
	MaxGuardFails int
	// Region controls superblock formation.
	Region region.Config
	// Machine is the VLIW model.
	Machine vliw.Config
	// Ablation switches off individual SMARQ design elements for the
	// ablation studies (zero value = the full system).
	Ablation Ablation
	// Trace, when non-nil, receives one line per runtime event
	// (compilation, alias exception, region drop) — the observability
	// hook for debugging translated workloads.
	Trace func(format string, args ...interface{})
}

// Ablation selects design elements to disable.
type Ablation struct {
	// Anti drops anti-constraints: accidental checks between
	// never-reordered operations become runtime false positives.
	Anti bool
	// Rotation stops reusing alias registers through queue rotation.
	Rotation bool
	// Elim disables speculative load/store elimination.
	Elim bool
}

// DefaultConfig returns the paper's primary configuration: SMARQ with 64
// alias registers.
func DefaultConfig() Config {
	return Config{
		Mode:          sched.HWOrdered,
		NumAliasRegs:  64,
		StoreReorder:  true,
		HotThreshold:  50,
		MaxGuardFails: 8,
		Region:        region.DefaultConfig(),
		Machine:       vliw.DefaultConfig(),
	}
}

// Named preset configurations for the paper's comparisons (Figure 15/16).

// ConfigSMARQ is SMARQ with n ordered alias registers (n=64 reproduces the
// paper's SMARQ bar, n=16 the Efficeon-like SMARQ16 bar).
func ConfigSMARQ(n int) Config {
	c := DefaultConfig()
	c.NumAliasRegs = n
	return c
}

// ConfigALAT is the Itanium-like model.
func ConfigALAT() Config {
	c := DefaultConfig()
	c.Mode = sched.HWALAT
	return c
}

// ConfigEfficeon is the true bit-mask model: precise named-register
// detection with explicit check masks, capped at 15 registers by the
// instruction encoding (§2.2). The paper approximates Efficeon with
// SMARQ-16; this configuration implements the real scheme so the encoding
// wall is visible directly.
func ConfigEfficeon() Config {
	c := DefaultConfig()
	c.Mode = sched.HWBitmask
	c.NumAliasRegs = 15
	return c
}

// ConfigNoHW disables alias hardware entirely.
func ConfigNoHW() Config {
	c := DefaultConfig()
	c.Mode = sched.HWNone
	return c
}

// ConfigNoStoreReorder is SMARQ-64 with store reordering disabled
// (Figure 16).
func ConfigNoStoreReorder() Config {
	c := DefaultConfig()
	c.StoreReorder = false
	return c
}

// RegionStats aggregates the static per-superblock statistics the paper's
// Figures 14, 17 and 19 report.
type RegionStats struct {
	Entry      int
	GuestInsts int
	MemOps     int
	Alloc      core.Stats
	Working    core.WorkingSets
	SeqLen     int
	Cycles     int64
}

// Stats is the run-wide accounting.
type Stats struct {
	// Cycle breakdown.
	TotalCycles    int64
	InterpCycles   int64
	RegionCycles   int64
	RollbackCycles int64
	OptCycles      int64 // optimizer outside scheduling
	SchedCycles    int64 // scheduling + alias register allocation

	// Events.
	Commits         int64
	GuardFails      int64
	AliasExceptions int64
	Faults          int64
	RegionsCompiled int
	Recompiles      int
	RegionsDropped  int
	OverflowRetries int

	// Retirement.
	GuestInsts       int64
	InterpretedInsts int64

	// HWChecks counts the register comparisons the alias hardware
	// performed across the run — the §2.4 energy proxy.
	HWChecks uint64

	// Static per-region statistics (one entry per compiled region,
	// including recompiles' latest version).
	Regions []RegionStats
}

// maxExceptionsPerRegion bounds trap-recompile churn: a region that keeps
// raising alias exceptions after this many conservative re-optimizations
// is pinned to non-speculative code.
const maxExceptionsPerRegion = 24

type compiled struct {
	cr         *vliw.CompiledRegion
	failStreak int
}

// System is one guest program under the dynamic optimization system.
type System struct {
	cfg  Config
	prog *guest.Program
	st   *guest.State
	mem  *guest.Memory
	it   *interp.Interpreter
	det  aliashw.Detector

	cache     map[int]*compiled
	sbCache   map[int]*region.Superblock
	blacklist map[int]alias.Blacklist
	cooldown  map[int]uint64 // entry -> block count required to recompile
	regionIdx map[int]int    // entry -> index into Stats.Regions
	// pinnedLoads collects, per region entry, ops that must no longer be
	// speculated on. Under ALAT a store checks *every* advanced load, so
	// a false positive can only be silenced by not advancing the load at
	// all; hardening the pair is not enough.
	pinnedLoads map[int]map[int]bool
	// pinnedNonSpec marks regions whose speculation keeps trapping even
	// with loads pinned; they are recompiled without speculation.
	pinnedNonSpec map[int]bool
	// fatalErr records a genuine guest fault hit while interpreting after
	// a rollback; Run surfaces it.
	fatalErr error
	// exceptions counts alias exceptions per region entry; past
	// maxExceptionsPerRegion the region is pinned non-speculative (a
	// guard against pathological trap-recompile churn, e.g. when the
	// anti-constraint ablation floods a region with false positives).
	exceptions map[int]int

	Stats Stats
}

// New creates a system over prog with the given initial state and memory.
func New(prog *guest.Program, st *guest.State, mem *guest.Memory, cfg Config) *System {
	var det aliashw.Detector
	switch cfg.Mode {
	case sched.HWOrdered:
		det = aliashw.NewOrderedQueue(cfg.NumAliasRegs)
	case sched.HWALAT:
		det = aliashw.NewALAT()
	case sched.HWBitmask:
		det = aliashw.NewBitmask(cfg.NumAliasRegs)
	default:
		det = aliashw.None{}
	}
	return &System{
		cfg:           cfg,
		prog:          prog,
		st:            st,
		mem:           mem,
		it:            interp.New(prog, st, mem),
		det:           det,
		cache:         make(map[int]*compiled),
		sbCache:       make(map[int]*region.Superblock),
		blacklist:     make(map[int]alias.Blacklist),
		cooldown:      make(map[int]uint64),
		regionIdx:     make(map[int]int),
		pinnedLoads:   make(map[int]map[int]bool),
		pinnedNonSpec: make(map[int]bool),
		exceptions:    make(map[int]int),
	}
}

// optConfig derives the optimization pass configuration from the hardware
// mode: SMARQ speculates through eliminations; ALAT supports neither
// (§7: the ALAT "cannot be used for ... store load forwarding"); without
// hardware only provably safe eliminations run.
func (s *System) optConfig(entry int) opt.Config {
	if s.cfg.Ablation.Elim {
		return opt.Config{}
	}
	if s.pinnedNonSpec[entry] {
		// Fully conservative re-optimization: speculative eliminations
		// would still allocate alias registers (their checks exist even
		// in program order), so a region pinned for chronic exceptions
		// keeps only the provably safe eliminations.
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: false}
	}
	switch s.cfg.Mode {
	case sched.HWOrdered, sched.HWBitmask:
		// Both precise schemes can check eliminations (§2.2: Efficeon
		// "can also support scheduling of stores" and precise pairs).
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: true}
	default:
		// ALAT cannot check eliminations (no ordered registers), and
		// without hardware nothing can: both run only the provably safe
		// eliminations.
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: false}
	}
}

// compile translates, optimizes, schedules and installs the region rooted
// at entry. The superblock is pinned on first compilation so op IDs stay
// stable across conservative re-optimizations.
func (s *System) compile(entry int) error {
	sb, ok := s.sbCache[entry]
	if !ok {
		var err error
		sb, err = region.Form(s.prog, s.it.Prof, entry, s.cfg.Region)
		if err != nil {
			return err
		}
		s.sbCache[entry] = sb
	}

	reg, err := xlate.Translate(sb)
	if err != nil {
		return err
	}
	tbl := alias.BuildTable(reg, s.blacklist[entry])
	optRes := opt.Run(reg, tbl, s.optConfig(entry))
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)

	scfg := sched.Config{
		Mode:           s.cfg.Mode,
		NumAliasRegs:   s.cfg.NumAliasRegs,
		StoreReorder:   s.cfg.StoreReorder,
		ForceNonSpec:   s.pinnedNonSpec[entry],
		PinnedOps:      s.pinnedLoads[entry],
		PressureMargin: 4,
		Machine:        s.cfg.Machine,
		Alloc: core.Options{
			DisableAnti:     s.cfg.Ablation.Anti,
			DisableRotation: s.cfg.Ablation.Rotation,
		},
	}
	sc, err := sched.Run(reg, tbl, ds, scfg)
	if err != nil {
		// Alias register overflow: retry pinned to non-speculation mode,
		// then give up on eliminations entirely. The failed attempt left
		// partial annotations on the ops; clear them first.
		s.Stats.OverflowRetries++
		resetAnnotations(reg)
		scfg.ForceNonSpec = true
		sc, err = sched.Run(reg, tbl, ds, scfg)
		if err != nil {
			reg, err = xlate.Translate(sb)
			if err != nil {
				return err
			}
			tbl = alias.BuildTable(reg, s.blacklist[entry])
			ds = deps.Compute(reg, tbl)
			sc, err = sched.Run(reg, tbl, ds, scfg)
			if err != nil {
				return fmt.Errorf("dynopt: region B%d cannot be scheduled: %w", entry, err)
			}
		}
	}

	// Charge the optimizer's own execution time (Figure 18): translation
	// and optimization per op, scheduling/allocation per op.
	n := int64(len(reg.Ops))
	s.Stats.OptCycles += n * int64(s.cfg.Machine.OptCyclesPerOp)
	s.Stats.SchedCycles += n * int64(s.cfg.Machine.SchedCyclesPerOp)

	cr := s.cfg.Machine.Compile(sc.Seq, reg, len(sb.Insts))
	if old, ok := s.cache[entry]; ok && old != nil {
		s.Stats.Recompiles++
		s.trace("recompile B%d: %d ops, %d cycles, nonspec=%v", entry, len(sc.Seq), cr.Cycles, s.pinnedNonSpec[entry])
	} else {
		s.Stats.RegionsCompiled++
		s.trace("compile B%d: %d guest insts -> %d ops, %d cycles, %d mem ops, P=%d C=%d ws=%d",
			entry, len(sb.Insts), len(sc.Seq), cr.Cycles, sb.NumMemOps(),
			sc.Alloc.Stats.PBits, sc.Alloc.Stats.CBits, sc.Alloc.Stats.WorkingSet)
	}
	s.cache[entry] = &compiled{cr: cr}

	rs := RegionStats{
		Entry:      entry,
		GuestInsts: len(sb.Insts),
		MemOps:     sb.NumMemOps(),
		Alloc:      sc.Alloc.Stats,
		Working:    core.MeasureWorkingSets(sc.Alloc, sb.NumMemOps()),
		SeqLen:     len(sc.Seq),
		Cycles:     cr.Cycles,
	}
	if idx, ok := s.regionIdx[entry]; ok {
		s.Stats.Regions[idx] = rs
	} else {
		s.regionIdx[entry] = len(s.Stats.Regions)
		s.Stats.Regions = append(s.Stats.Regions, rs)
	}
	return nil
}

// trace emits a runtime event line when tracing is enabled.
func (s *System) trace(format string, args ...interface{}) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(format, args...)
	}
}

// resetAnnotations clears alias register annotations left by a failed
// scheduling attempt.
func resetAnnotations(reg *ir.Region) {
	for _, o := range reg.Ops {
		o.AROffset = -1
		o.ARMask = 0
		o.P, o.C = false, false
	}
}

// Run executes the guest until it halts or maxInsts guest instructions
// retire. It reports whether the guest halted.
func (s *System) Run(maxInsts uint64) (bool, error) {
	id := s.prog.Entry
	for id != interp.HaltID {
		if s.fatalErr != nil {
			return false, s.fatalErr
		}
		if uint64(s.Stats.GuestInsts) >= maxInsts {
			s.finalize()
			return false, nil
		}
		if c, ok := s.cache[id]; ok {
			id = s.runRegion(id, c)
			continue
		}
		// Interpret one block; consider compiling its region.
		before := s.it.DynInsts
		next, err := s.it.RunBlock(id)
		if err != nil {
			return false, err
		}
		insts := int64(s.it.DynInsts - before)
		s.Stats.InterpCycles += insts * int64(s.cfg.Machine.InterpCyclesPerInst)
		s.Stats.GuestInsts += insts
		s.Stats.InterpretedInsts += insts

		if s.it.Prof.Hot(id, s.cfg.HotThreshold) && s.cache[id] == nil &&
			s.it.Prof.BlockCounts[id] >= s.cooldown[id] {
			if err := s.compile(id); err != nil {
				// Unschedulable regions stay interpreted.
				s.cooldown[id] = s.it.Prof.BlockCounts[id] * 2
			}
		}
		id = next
	}
	s.finalize()
	if s.fatalErr != nil {
		return false, s.fatalErr
	}
	return true, nil
}

// runRegion executes an installed region and handles its outcome,
// returning the next block to dispatch.
func (s *System) runRegion(entry int, c *compiled) int {
	res := vliw.Execute(c.cr, s.st, s.mem, s.det)
	switch res.Outcome {
	case vliw.Commit:
		s.Stats.RegionCycles += c.cr.Cycles + int64(s.cfg.Machine.CommitCycles)
		s.Stats.GuestInsts += int64(c.cr.GuestInsts)
		s.Stats.Commits++
		c.failStreak = 0
		return res.NextBlock

	case vliw.AliasException:
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.AliasExceptions++
		// Conservative re-optimization (Figure 1). Under the ordered
		// queue the check identifies exactly the speculated pair, so the
		// pair is assumed to always alias from now on. Under ALAT the
		// store that trapped checked *every* advanced load — hardening
		// the pair cannot silence a false positive — so the load itself
		// stops being advanced. If traps persist regardless, the region
		// is pinned to non-speculative code.
		bl := s.blacklist[entry]
		if bl == nil {
			bl = make(alias.Blacklist)
			s.blacklist[entry] = bl
		}
		pair := alias.MakePair(res.Conflict.Checker, res.Conflict.Origin)
		s.trace("alias exception in B%d: op %d checked op %d", entry, res.Conflict.Checker, res.Conflict.Origin)
		s.exceptions[entry]++
		if s.exceptions[entry] > maxExceptionsPerRegion {
			s.pinnedNonSpec[entry] = true
		}
		if s.cfg.Mode == sched.HWALAT {
			pins := s.pinnedLoads[entry]
			if pins == nil {
				pins = make(map[int]bool)
				s.pinnedLoads[entry] = pins
			}
			if pins[res.Conflict.Origin] {
				s.pinnedNonSpec[entry] = true
			}
			pins[res.Conflict.Origin] = true
		} else if bl[pair] {
			s.pinnedNonSpec[entry] = true
		}
		bl[pair] = true
		if err := s.compile(entry); err != nil {
			delete(s.cache, entry)
			s.Stats.RegionsDropped++
		}
		// Make forward progress in the interpreter before re-dispatching.
		return s.interpretOne(entry)

	case vliw.GuardFail:
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.GuardFails++
		c.failStreak++
		if c.failStreak >= s.cfg.MaxGuardFails {
			// The trace no longer matches behaviour: drop it and require
			// twice the heat before re-forming.
			s.trace("drop B%d after %d consecutive guard failures", entry, c.failStreak)
			delete(s.cache, entry)
			delete(s.sbCache, entry)
			s.cooldown[entry] = s.it.Prof.BlockCounts[entry] * 2
			s.Stats.RegionsDropped++
		}
		return s.interpretOne(entry)

	default: // Fault
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.Faults++
		return s.interpretOne(entry)
	}
}

// interpretOne interprets a single block after a rollback (the state is
// back at the region entry) and returns the next block. An interpreter
// error here means the guest itself faults architecturally at this point;
// it is recorded and surfaced by Run.
func (s *System) interpretOne(id int) int {
	before := s.it.DynInsts
	next, err := s.it.RunBlock(id)
	insts := int64(s.it.DynInsts - before)
	s.Stats.InterpCycles += insts * int64(s.cfg.Machine.InterpCyclesPerInst)
	s.Stats.GuestInsts += insts
	s.Stats.InterpretedInsts += insts
	if err != nil {
		s.fatalErr = err
		return interp.HaltID
	}
	return next
}

func (s *System) finalize() {
	s.Stats.TotalCycles = s.Stats.InterpCycles + s.Stats.RegionCycles +
		s.Stats.RollbackCycles + s.Stats.OptCycles + s.Stats.SchedCycles
	s.Stats.HWChecks = s.det.Checked()
}

// State and Mem expose the architectural state for verification.
func (s *System) State() *guest.State { return s.st }

// Mem returns the guest memory.
func (s *System) Mem() *guest.Memory { return s.mem }
