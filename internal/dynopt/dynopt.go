// Package dynopt is the dynamic optimization system of Figure 1: guest
// code starts in the interpreter, hot blocks grow into superblock regions,
// regions are translated, speculatively optimized, scheduled with SMARQ
// alias register allocation, and installed in a code cache. Translated
// regions execute inside atomic regions on the VLIW model; alias
// exceptions roll back and trigger conservative re-optimization with the
// offending pair blacklisted, exactly as the paper's runtime module does.
//
// Recovery is tiered rather than all-or-nothing: each region sits on a
// speculation ladder (full → no store reordering → no eliminations →
// fully conservative → interpreter-pinned) driven by a per-region
// controller that watches the rollback rate over a sliding window of
// entries, demotes one rung at a time with exponential promotion backoff,
// and re-promotes after a sustained run of clean commits. See recovery.go
// and DESIGN.md ("Recovery ladder and chaos harness").
package dynopt

import (
	"fmt"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/compilequeue"
	"smarq/internal/core"
	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/health"
	"smarq/internal/interp"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/region"
	"smarq/internal/sched"
	"smarq/internal/telemetry"
	"smarq/internal/vliw"
)

// Config selects the alias hardware and tuning parameters for a run.
type Config struct {
	// Mode selects the alias-detection hardware.
	Mode sched.HWMode
	// NumAliasRegs sizes the ordered queue (ignored for ALAT/None).
	NumAliasRegs int
	// StoreReorder allows speculative store-store reordering (HWOrdered).
	StoreReorder bool
	// HotThreshold is the block execution count that triggers region
	// formation.
	HotThreshold uint64
	// MaxGuardFails drops a region from the cache after this many
	// consecutive off-trace exits.
	MaxGuardFails int
	// Recovery tunes the tiered deoptimization controller and the code
	// cache bound. The zero value means DefaultRecoveryConfig().
	Recovery RecoveryConfig
	// Chaos configures the deterministic fault injector (zero = off).
	Chaos faultinject.Config
	// CheckInvariants verifies after every rollback that the
	// architectural state and memory digest match the region-entry
	// checkpoint, surfacing a fatal error on divergence. The chaos and
	// differential tests keep it on; it digests all of guest memory per
	// region entry, so production-shaped runs leave it off.
	CheckInvariants bool
	// Region controls superblock formation.
	Region region.Config
	// Machine is the VLIW model.
	Machine vliw.Config
	// Ablation switches off individual SMARQ design elements for the
	// ablation studies (zero value = the full system).
	Ablation Ablation
	// Trace, when non-nil, receives one line per runtime event
	// (compilation, alias exception, tier change, eviction) — the
	// observability hook for debugging translated workloads.
	Trace func(format string, args ...interface{})
	// Telemetry, when non-nil, enables the structured observability
	// layer: cycle-stamped events into Telemetry.Events and aggregate
	// counters/histograms into Telemetry.Metrics (either may be nil to
	// enable just one surface). Unlike Trace this path never formats and
	// never allocates on the hot path; see internal/telemetry.
	Telemetry *telemetry.Telemetry
	// Compile configures asynchronous background compilation and
	// content-hash memoization (compile.go). The zero value is the legacy
	// synchronous instant-install path.
	Compile CompileConfig
	// Health configures the system-scope graceful-degradation controller
	// (internal/health): a sliding window over host faults and rollbacks
	// that walks normal → no-speculation → compile-off → quarantine with
	// hysteresis. The zero value disables it.
	Health health.Config
}

// Ablation selects design elements to disable.
type Ablation struct {
	// Anti drops anti-constraints: accidental checks between
	// never-reordered operations become runtime false positives.
	Anti bool
	// Rotation stops reusing alias registers through queue rotation.
	Rotation bool
	// Elim disables speculative load/store elimination.
	Elim bool
}

// withDefaults fills zero-valued sub-configurations.
func (c Config) withDefaults() Config {
	if c.Recovery == (RecoveryConfig{}) {
		c.Recovery = DefaultRecoveryConfig()
	}
	return c
}

// Validate rejects nonsensical configurations: an ordered queue or bit
// mask needs at least 2 alias registers, thresholds must be positive, and
// chaos rates must be probabilities. New panics on an invalid Config, so
// call Validate first when the values come from user input.
func (c Config) Validate() error {
	switch c.Mode {
	case sched.HWOrdered, sched.HWBitmask:
		if c.NumAliasRegs < 2 {
			return fmt.Errorf("dynopt: NumAliasRegs %d with %v hardware, want >= 2", c.NumAliasRegs, c.Mode)
		}
	}
	if c.HotThreshold == 0 {
		return fmt.Errorf("dynopt: HotThreshold 0, want > 0")
	}
	if c.MaxGuardFails <= 0 {
		return fmt.Errorf("dynopt: MaxGuardFails %d, want > 0", c.MaxGuardFails)
	}
	if c.Compile.Workers < 0 {
		return fmt.Errorf("dynopt: Compile.Workers %d, want >= 0", c.Compile.Workers)
	}
	if c.Compile.WatchdogFactor < 0 {
		return fmt.Errorf("dynopt: Compile.WatchdogFactor %d, want >= 0", c.Compile.WatchdogFactor)
	}
	if c.Compile.SharedPool != nil && c.Compile.Workers < 1 {
		return fmt.Errorf("dynopt: Compile.SharedPool set with Workers %d, want >= 1 (the background path)", c.Compile.Workers)
	}
	if c.Compile.SharedCache != nil && c.Compile.Memoize {
		return fmt.Errorf("dynopt: Compile.SharedCache and Compile.Memoize are mutually exclusive")
	}
	if err := c.withDefaults().Recovery.Validate(); err != nil {
		return err
	}
	if err := c.Health.Validate(); err != nil {
		return err
	}
	return c.Chaos.Validate()
}

// mustValid backs the preset constructors: they only assemble constants,
// so a failure is a programming error.
func mustValid(c Config) Config {
	if err := c.Validate(); err != nil {
		panic("dynopt: invalid preset: " + err.Error())
	}
	return c
}

// DefaultConfig returns the paper's primary configuration: SMARQ with 64
// alias registers.
func DefaultConfig() Config {
	return mustValid(Config{
		Mode:          sched.HWOrdered,
		NumAliasRegs:  64,
		StoreReorder:  true,
		HotThreshold:  50,
		MaxGuardFails: 8,
		Recovery:      DefaultRecoveryConfig(),
		Region:        region.DefaultConfig(),
		Machine:       vliw.DefaultConfig(),
	})
}

// Named preset configurations for the paper's comparisons (Figure 15/16).

// ConfigSMARQ is SMARQ with n ordered alias registers (n=64 reproduces the
// paper's SMARQ bar, n=16 the Efficeon-like SMARQ16 bar). It panics for
// n < 2 (see Config.Validate).
func ConfigSMARQ(n int) Config {
	c := DefaultConfig()
	c.NumAliasRegs = n
	return mustValid(c)
}

// ConfigALAT is the Itanium-like model.
func ConfigALAT() Config {
	c := DefaultConfig()
	c.Mode = sched.HWALAT
	return mustValid(c)
}

// ConfigEfficeon is the true bit-mask model: precise named-register
// detection with explicit check masks, capped at 15 registers by the
// instruction encoding (§2.2). The paper approximates Efficeon with
// SMARQ-16; this configuration implements the real scheme so the encoding
// wall is visible directly.
func ConfigEfficeon() Config {
	c := DefaultConfig()
	c.Mode = sched.HWBitmask
	c.NumAliasRegs = 15
	return mustValid(c)
}

// ConfigNoHW disables alias hardware entirely.
func ConfigNoHW() Config {
	c := DefaultConfig()
	c.Mode = sched.HWNone
	return mustValid(c)
}

// ConfigNoStoreReorder is SMARQ-64 with store reordering disabled
// (Figure 16).
func ConfigNoStoreReorder() Config {
	c := DefaultConfig()
	c.StoreReorder = false
	return mustValid(c)
}

// RegionStats aggregates the static per-superblock statistics the paper's
// Figures 14, 17 and 19 report, plus the region's recovery-ladder state
// at the end of the run.
type RegionStats struct {
	Entry      int
	GuestInsts int
	MemOps     int
	Alloc      core.Stats
	Working    core.WorkingSets
	SeqLen     int
	Cycles     int64
	// CompileLatency is the simulated enqueue→install latency of the
	// region's most recent compilation (0 on the synchronous path).
	CompileLatency int64

	// Tier is the region's final rung on the speculation ladder;
	// Demotions/Promotions count its lifetime ladder moves and Sticky
	// reports whether its backoff is exhausted (stable forever).
	Tier       Tier
	Demotions  int
	Promotions int
	Sticky     bool
}

// Stats is the run-wide accounting.
type Stats struct {
	// Cycle breakdown.
	TotalCycles    int64
	InterpCycles   int64
	RegionCycles   int64
	RollbackCycles int64
	OptCycles      int64 // optimizer outside scheduling
	SchedCycles    int64 // scheduling + alias register allocation

	// Events.
	Commits         int64
	GuardFails      int64
	AliasExceptions int64
	Faults          int64
	RegionsCompiled int
	Recompiles      int
	RegionsDropped  int
	OverflowRetries int

	// Compile is the background-compilation and memoization accounting
	// (compile.go). CompileStats.WorkCycles is off the critical path and
	// deliberately excluded from TotalCycles.
	Compile CompileStats

	// Recovery is the tiered-deoptimization controller's accounting:
	// per-tier dispatches and residency, demotions/promotions, and code
	// cache evictions.
	Recovery RecoveryStats
	// Health is the system health controller's accounting: ladder moves,
	// observation counts, the final level, and the quarantined-region
	// count (zero when Config.Health is disabled).
	Health health.Stats
	// Injected reports which chaos faults actually fired (zero without
	// Config.Chaos).
	Injected faultinject.Counts

	// Retirement.
	GuestInsts       int64
	InterpretedInsts int64

	// HWChecks counts the register comparisons the alias hardware
	// performed across the run — the §2.4 energy proxy.
	HWChecks uint64

	// Static per-region statistics (one entry per compiled region,
	// including recompiles' latest version).
	Regions []RegionStats
}

type compiled struct {
	cr         *vliw.CompiledRegion
	failStreak int
	// lastUse is the dispatch sequence number of the region's most
	// recent execution — the code cache eviction clock.
	lastUse int64
	// installedAt is the simulated cycle the code landed in the cache;
	// fresh marks it not yet dispatched, so the first execution can
	// observe the install-to-dispatch lag exactly once.
	installedAt int64
	fresh       bool
}

// dispEntry is one block's slot in the dense dispatch table. Entries are
// region entry blocks; blocks that never become regions keep a zero slot.
type dispEntry struct {
	code     *compiled
	rec      *regionRecovery
	cooldown uint64 // block count required to recompile
}

// System is one guest program under the dynamic optimization system.
type System struct {
	cfg  Config
	prog *guest.Program
	st   *guest.State
	mem  *guest.Memory
	it   *interp.Interpreter
	det  aliashw.Detector
	inj  *faultinject.Injector

	// disp is the dense block-indexed dispatch table: installed code, the
	// region's ladder controller (created at first compilation, kept
	// across drops and evictions so a region's history survives its code)
	// and the recompile cooldown live in one slot per block, so steering
	// between interpreter and compiled code is a single bounds-checked
	// load instead of three map probes. installed counts slots with code.
	disp      []dispEntry
	installed int
	sbCache   map[int]*region.Superblock
	blacklist map[int]alias.Blacklist
	regionIdx map[int]int // entry -> index into Stats.Regions
	// pinnedLoads collects, per region entry, ops that must no longer be
	// speculated on. Under ALAT a store checks *every* advanced load, so
	// a false positive can only be silenced by not advancing the load at
	// all; hardening the pair is not enough.
	pinnedLoads map[int]map[int]bool
	// fatalErr records a genuine guest fault hit while interpreting after
	// a rollback, or a rollback invariant violation; Run surfaces it.
	fatalErr error
	// exceptions counts alias exceptions per region entry; past
	// Recovery.MaxExceptionsPerRegion the region jumps to
	// TierConservative and stops promoting (a guard against pathological
	// trap-recompile churn, e.g. when the anti-constraint ablation floods
	// a region with false positives).
	exceptions map[int]int
	// entrySeq numbers region dispatches — the eviction clock source.
	entrySeq int64
	// bg is the background-compilation state (nil in synchronous mode)
	// and memo the content-hash memo table (nil unless Compile.Memoize);
	// see compile.go. shared is the fleet-wide compile cache (nil unless
	// Compile.SharedCache); see sharedcache.go.
	bg     *bgCompile
	memo   *compilequeue.Memo[*compileOutput]
	shared *CodeCache
	// injFailStreak counts consecutive chaos-injected compile failures
	// per entry; injected failures back off additively instead of the
	// real-failure doubling (see compileFailBackoff).
	injFailStreak map[int]uint64
	// hc is the system health controller (nil unless Config.Health is
	// enabled) and quarantined the set of regions permanently barred from
	// compiling (worker panics, or admission at the quarantine level).
	hc          *health.Controller
	quarantined map[int]bool
	// ectx is the reusable execution context: vreg files, checkpoint and
	// undo log are pooled here so steady-state region entries allocate
	// nothing.
	ectx vliw.ExecContext
	// tel is the resolved telemetry view (nil when Config.Telemetry is
	// unset); every emit helper nil-checks it.
	tel *systemTelemetry

	Stats Stats
}

// New creates a system over prog with the given initial state and memory.
// It panics when cfg fails Validate; use Config.Validate first for
// configurations assembled from user input.
func New(prog *guest.Program, st *guest.State, mem *guest.Memory, cfg Config) *System {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic("dynopt: invalid config: " + err.Error())
	}
	var det aliashw.Detector
	switch cfg.Mode {
	case sched.HWOrdered:
		det = aliashw.NewOrderedQueue(cfg.NumAliasRegs)
	case sched.HWALAT:
		det = aliashw.NewALAT()
	case sched.HWBitmask:
		det = aliashw.NewBitmask(cfg.NumAliasRegs)
	default:
		det = aliashw.None{}
	}
	var inj *faultinject.Injector
	if cfg.Chaos.Enabled() {
		inj = faultinject.New(cfg.Chaos)
	}
	s := &System{
		cfg:           cfg,
		prog:          prog,
		st:            st,
		mem:           mem,
		it:            interp.New(prog, st, mem),
		det:           det,
		inj:           inj,
		disp:          make([]dispEntry, len(prog.Blocks)),
		sbCache:       make(map[int]*region.Superblock),
		blacklist:     make(map[int]alias.Blacklist),
		regionIdx:     make(map[int]int),
		pinnedLoads:   make(map[int]map[int]bool),
		exceptions:    make(map[int]int),
		injFailStreak: make(map[int]uint64),
		quarantined:   make(map[int]bool),
		tel:           newSystemTelemetry(&cfg),
	}
	if cfg.Compile.Workers > 0 {
		s.bg = &bgCompile{
			pending:    make(map[int]*pendingCompile),
			pool:       cfg.Compile.SharedPool,
			sharedPool: cfg.Compile.SharedPool != nil,
		}
	}
	if cfg.Compile.Memoize {
		if b := cfg.Compile.MemoBudgetBytes; b > 0 {
			s.memo = compilequeue.NewMemoBudget[*compileOutput](cfg.Compile.memoCapacity(), b, compileOutputBytes)
		} else {
			s.memo = compilequeue.NewMemoCap[*compileOutput](cfg.Compile.memoCapacity())
		}
	}
	s.shared = cfg.Compile.SharedCache
	if cfg.Health.Enabled() {
		s.hc = health.New(cfg.Health)
	}
	if s.tel != nil {
		s.it.Insts = cfg.Telemetry.Registry().Counter(mInterpInsts)
	}
	return s
}

// setCode installs code in a block's dispatch slot, keeping the installed
// count (the code cache occupancy) in step.
func (s *System) setCode(entry int, c *compiled) {
	de := &s.disp[entry]
	if de.code == nil {
		s.installed++
	}
	de.code = c
}

// dropCode removes a block's installed code, if any.
func (s *System) dropCode(entry int) {
	de := &s.disp[entry]
	if de.code != nil {
		s.installed--
		de.code = nil
	}
}

// recoveryOf returns the region's ladder controller, creating it at
// TierFull on first use.
func (s *System) recoveryOf(entry int) *regionRecovery {
	de := &s.disp[entry]
	if de.rec == nil {
		de.rec = newRegionRecovery(s.cfg.Recovery)
	}
	return de.rec
}

// tierOf returns the region's current ladder rung (TierFull before its
// first compilation).
func (s *System) tierOf(entry int) Tier {
	if rr := s.disp[entry].rec; rr != nil {
		return rr.tier
	}
	return TierFull
}

// optConfig derives the optimization pass configuration from the hardware
// mode and the region's ladder rung (the health-clamped effective rung at
// compile time): SMARQ speculates through eliminations; ALAT supports
// neither (§7: the ALAT "cannot be used for ... store load forwarding");
// without hardware only provably safe eliminations run; at TierNoElim and
// below speculative eliminations stay off regardless (their checks would
// still allocate alias registers even in program order).
func (s *System) optConfig(tier Tier) opt.Config {
	if s.cfg.Ablation.Elim {
		return opt.Config{}
	}
	if tier >= TierNoElim {
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: false}
	}
	switch s.cfg.Mode {
	case sched.HWOrdered, sched.HWBitmask:
		// Both precise schemes can check eliminations (§2.2: Efficeon
		// "can also support scheduling of stores" and precise pairs).
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: true}
	default:
		// ALAT cannot check eliminations (no ordered registers), and
		// without hardware nothing can: both run only the provably safe
		// eliminations.
		return opt.Config{LoadElim: true, StoreElim: true, Speculative: false}
	}
}

// evictForCapacity makes room for a new region when the code cache is at
// capacity by evicting the least recently dispatched region (deterministic
// lowest-entry tie break). The evicted region keeps its superblock,
// blacklist and ladder state, so re-compilation resumes where it left off.
func (s *System) evictForCapacity(entry int) {
	cap := s.cfg.Recovery.CodeCacheCapacity
	for s.installed >= cap {
		victim, oldest := -1, int64(0)
		for e := range s.disp {
			c := s.disp[e].code
			if c == nil || e == entry {
				continue
			}
			if victim == -1 || c.lastUse < oldest || (c.lastUse == oldest && e < victim) {
				victim, oldest = e, c.lastUse
			}
		}
		if victim == -1 {
			return
		}
		// An in-flight recompile for the victim would just re-install it:
		// it is stale the moment the code leaves the cache.
		s.cancelPending(victim, telemetry.CauseStale)
		s.dropCode(victim)
		s.Stats.Recovery.Evictions++
		s.tel.evict(s.now(), victim, s.tierOf(victim))
		s.trace("evict B%d from the code cache (capacity %d)", victim, cap)
	}
}

// trace emits a runtime event line when tracing is enabled.
func (s *System) trace(format string, args ...interface{}) {
	if s.cfg.Trace != nil {
		s.cfg.Trace(format, args...)
	}
}

// resetAnnotations clears alias register annotations left by a failed
// scheduling attempt.
func resetAnnotations(reg *ir.Region) {
	for _, o := range reg.Ops {
		o.AROffset = -1
		o.ARMask = 0
		o.P, o.C = false, false
	}
}

// Run executes the guest until it halts or maxInsts guest instructions
// retire. It reports whether the guest halted.
//
// The budget is a soft cap checked between dispatches: a run may overshoot
// maxInsts by at most one block (interpreted dispatch) or one region
// (compiled dispatch), because blocks and regions are the units of
// retirement — clamping mid-block would make budget-capped profiles and
// stats depend on where the cap fell inside a block.
// TestRunBudgetOvershootBounded pins this contract.
func (s *System) Run(maxInsts uint64) (bool, error) {
	id := s.prog.Entry
	for id != interp.HaltID {
		if s.fatalErr != nil {
			return false, s.fatalErr
		}
		if uint64(s.Stats.GuestInsts) >= maxInsts {
			s.finalize()
			return false, nil
		}
		s.drainCompiles()
		if uint(id) < uint(len(s.disp)) {
			if c := s.disp[id].code; c != nil && s.healthDispatchOK() {
				id = s.runRegion(id, c)
				continue
			}
		}
		// Interpret one block; consider compiling its region.
		before := s.it.DynInsts
		next, err := s.it.RunBlock(id)
		if err != nil {
			return false, err
		}
		insts := int64(s.it.DynInsts - before)
		s.Stats.InterpCycles += insts * int64(s.cfg.Machine.InterpCyclesPerInst)
		s.Stats.GuestInsts += insts
		s.Stats.InterpretedInsts += insts

		// RunBlock succeeded, so id indexes a real block (and its slot).
		de := &s.disp[id]
		if rr := de.rec; rr != nil && rr.tier == TierPinned {
			// Interpreter-pinned region: count the clean entry; a long
			// enough clean run re-promotes it to conservative compiled
			// code (unless its backoff is exhausted).
			s.Stats.Recovery.TierDispatches[TierPinned]++
			if rr.recordPinnedEntry(s.cfg.Recovery) {
				s.Stats.Recovery.Promotions++
				de.cooldown = 0
				s.tel.tierMove(s.now(), id, TierPinned, rr.tier, telemetry.CauseNone)
				s.trace("promote B%d: %s -> %s after clean interpreted run", id, TierPinned, rr.tier)
			}
		}

		if s.hc != nil && s.hc.Level() >= health.CompileOff {
			// Interpreter-only: nothing dispatches, so quiet interpreted
			// progress is the only clean signal left to earn re-promotion
			// with (the per-region analogue is recordPinnedEntry).
			s.healthClean()
		}

		if s.it.Prof.Hot(id, s.cfg.HotThreshold) && de.code == nil &&
			s.tierOf(id) != TierPinned &&
			s.it.Prof.BlockCounts[id] >= de.cooldown {
			if err := s.requestCompile(id); err != nil {
				// Unschedulable regions stay interpreted; injected chaos
				// failures retry sooner (see compileFailBackoff).
				s.compileFailBackoff(id, err)
			}
		}
		id = next
	}
	s.finalize()
	if s.fatalErr != nil {
		return false, s.fatalErr
	}
	return true, nil
}

// executeRegion runs the compiled region, or synthesizes a rollback
// outcome when the fault injector fires first. Injected outcomes skip
// execution entirely, so the architectural state is untouched — exactly
// what a region that trapped at its first instruction looks like. An
// injected alias exception carries no Conflict (there is no real pair to
// blacklist), mirroring an inexplicable hardware false positive.
// The second return distinguishes injected outcomes (CauseInjectedAlias /
// CauseInjectedGuard) from real execution (CauseNone) for telemetry.
func (s *System) executeRegion(entry int, tier Tier, c *compiled) (vliw.ExecResult, telemetry.Cause) {
	if s.inj != nil {
		if s.inj.SpuriousAlias() {
			s.tel.chaosInjected(s.now(), entry, tier, telemetry.CauseInjectedAlias)
			return vliw.ExecResult{Outcome: vliw.AliasException}, telemetry.CauseInjectedAlias
		}
		if s.inj.GuardFail() {
			s.tel.chaosInjected(s.now(), entry, tier, telemetry.CauseInjectedGuard)
			return vliw.ExecResult{Outcome: vliw.GuardFail}, telemetry.CauseInjectedGuard
		}
	}
	return s.ectx.Execute(c.cr, s.st, s.mem, s.det), telemetry.CauseNone
}

// runRegion executes an installed region and handles its outcome,
// returning the next block to dispatch.
func (s *System) runRegion(entry int, c *compiled) int {
	s.entrySeq++
	c.lastUse = s.entrySeq
	rr := s.recoveryOf(entry)
	s.Stats.Recovery.TierDispatches[rr.tier]++
	s.tel.dispatch(s.now(), entry, rr.tier)
	if c.fresh {
		c.fresh = false
		s.tel.firstDispatch(s.now() - c.installedAt)
	}

	var snap faultinject.Snapshot
	if s.cfg.CheckInvariants {
		snap = faultinject.Capture(s.st, s.mem)
	}

	res, injected := s.executeRegion(entry, rr.tier, c)

	if res.Outcome != vliw.Commit {
		// Every non-commit outcome rolled back (or never ran). Chaos may
		// now model a broken restore; the invariant checker must catch
		// either that or a genuine recovery bug.
		if s.inj != nil && s.inj.CorruptState(s.st) {
			s.tel.chaosInjected(s.now(), entry, rr.tier, telemetry.CauseCorrupt)
			s.trace("injected post-rollback state corruption in B%d", entry)
		}
		if s.cfg.CheckInvariants {
			if err := snap.Verify(s.st, s.mem); err != nil {
				s.Stats.Recovery.InvariantViolations++
				s.fatalErr = fmt.Errorf("dynopt: rollback invariant violated in B%d: %w", entry, err)
				return interp.HaltID
			}
		}
	}

	switch res.Outcome {
	case vliw.Commit:
		cost := c.cr.Cycles + int64(s.cfg.Machine.CommitCycles)
		s.Stats.RegionCycles += cost
		s.Stats.GuestInsts += int64(c.cr.GuestInsts)
		s.Stats.Commits++
		c.failStreak = 0
		s.healthClean()
		s.tel.commit(s.now(), entry, rr.tier, cost, res.ARHighWater, res.StoresBuffered)
		if rr.recordCommit(s.cfg.Recovery) {
			s.Stats.Recovery.Promotions++
			s.tel.tierMove(s.now(), entry, rr.tier+1, rr.tier, telemetry.CauseNone)
			s.trace("promote B%d to %s after %d clean commits", entry, rr.tier, s.cfg.Recovery.PromoteAfter)
			// The promoted code replaces the conservative version, which
			// stays installed (it is still correct) until the background
			// replacement is ready.
			if err := s.recompileRegion(entry); err != nil {
				s.dropCode(entry)
				s.Stats.RegionsDropped++
				s.tel.drop(s.now(), entry, rr.tier, telemetry.CauseCompileFail)
			}
		}
		return res.NextBlock

	case vliw.AliasException:
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.AliasExceptions++
		s.exceptions[entry]++
		s.healthRollback()
		if s.tel != nil {
			cause, checker, origin := telemetry.CauseAlias, -1, -1
			if injected != telemetry.CauseNone {
				cause = injected
			}
			if res.Conflict != nil {
				checker, origin = res.Conflict.Checker, res.Conflict.Origin
			}
			cost := c.cr.Cycles + int64(s.cfg.Machine.RollbackPenalty)
			s.tel.aliasRollback(s.now(), entry, rr.tier, cause, cost, res.OpsExecuted, checker, origin)
		}
		// Conservative re-optimization (Figure 1). Under the ordered
		// queue the check identifies exactly the speculated pair, so the
		// pair is assumed to always alias from now on. Under ALAT the
		// store that trapped checked *every* advanced load — hardening
		// the pair cannot silence a false positive — so the load itself
		// stops being advanced. If the same pair (or pinned load) traps
		// again, pair-level hardening has provably failed and the region
		// jumps to conservative code — unlike the noisy rate/storm
		// signals below, which demote one rung at a time.
		learned := false
		if res.Conflict != nil {
			bl := s.blacklist[entry]
			if bl == nil {
				bl = make(alias.Blacklist)
				s.blacklist[entry] = bl
			}
			pair := alias.MakePair(res.Conflict.Checker, res.Conflict.Origin)
			s.trace("alias exception in B%d: op %d checked op %d", entry, res.Conflict.Checker, res.Conflict.Origin)
			if s.cfg.Mode == sched.HWALAT {
				pins := s.pinnedLoads[entry]
				if pins == nil {
					pins = make(map[int]bool)
					s.pinnedLoads[entry] = pins
				}
				if pins[res.Conflict.Origin] {
					s.demoteToConservative(entry, rr)
				} else {
					learned = true
				}
				pins[res.Conflict.Origin] = true
			} else if bl[pair] {
				s.demoteToConservative(entry, rr)
			} else {
				learned = true
			}
			bl[pair] = true
		} else {
			s.trace("spurious alias exception in B%d (injected)", entry)
		}
		// Chronic offender: jump straight to conservative code and stop
		// promoting (the old one-shot pin, now the ladder's hard cap).
		if s.exceptions[entry] > s.cfg.Recovery.MaxExceptionsPerRegion &&
			rr.tier < TierConservative {
			before, from := rr.demotions, rr.tier
			if rr.demoteTo(s.cfg.Recovery, TierConservative) {
				s.Stats.Recovery.Demotions += int64(rr.demotions - before)
				s.tel.tierMove(s.now(), entry, from, rr.tier, telemetry.CauseChronic)
				s.trace("pin B%d conservative after %d alias exceptions", entry, s.exceptions[entry])
			}
			rr.sticky = true
		}
		if learned {
			// A fresh pair was hardened: productive learning, not a
			// storm — only the clean-commit run resets.
			rr.recordHardeningRollback()
		} else if rr.recordRollback(s.cfg.Recovery) {
			s.Stats.Recovery.Demotions++
			s.tel.tierMove(s.now(), entry, rr.tier-1, rr.tier, telemetry.CauseRate)
			s.trace("demote B%d to %s (rollback rate)", entry, rr.tier)
		}
		if rr.tier == TierPinned {
			s.cancelPending(entry, telemetry.CauseStale)
			s.dropCode(entry)
			s.trace("pin B%d to the interpreter", entry)
		} else {
			if s.bg != nil {
				// The trapped code is stale (its pair is now hardened):
				// drop it and interpret until the replacement installs.
				s.dropCode(entry)
			}
			if err := s.recompileRegion(entry); err != nil {
				s.dropCode(entry)
				s.Stats.RegionsDropped++
				s.tel.drop(s.now(), entry, rr.tier, telemetry.CauseCompileFail)
			}
		}
		// Make forward progress in the interpreter before re-dispatching.
		return s.interpretOne(entry)

	case vliw.GuardFail:
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.GuardFails++
		c.failStreak++
		if s.tel != nil {
			cause := telemetry.CauseGuard
			if injected != telemetry.CauseNone {
				cause = injected
			}
			cost := c.cr.Cycles + int64(s.cfg.Machine.RollbackPenalty)
			s.tel.guardRollback(s.now(), entry, rr.tier, cause, cost, res.OpsExecuted, c.failStreak)
		}
		if c.failStreak >= s.cfg.MaxGuardFails {
			// The trace no longer matches behaviour: drop it and require
			// twice the heat before re-forming.
			s.trace("drop B%d after %d consecutive guard failures", entry, c.failStreak)
			s.cancelPending(entry, telemetry.CauseStale)
			s.dropCode(entry)
			delete(s.sbCache, entry)
			s.disp[entry].cooldown = s.it.Prof.BlockCounts[entry] * 2
			s.Stats.RegionsDropped++
			s.tel.drop(s.now(), entry, rr.tier, telemetry.CauseGuard)
		}
		return s.interpretOne(entry)

	default: // Fault
		s.Stats.RegionCycles += c.cr.Cycles
		s.Stats.RollbackCycles += int64(s.cfg.Machine.RollbackPenalty)
		s.Stats.Faults++
		s.healthRollback()
		s.tel.faultRollback(s.now(), entry, rr.tier,
			c.cr.Cycles+int64(s.cfg.Machine.RollbackPenalty), res.OpsExecuted)
		// Speculation-induced faults are misspeculation too: a region
		// whose hoisted loads keep faulting steps down the ladder until
		// the faults stop (TierConservative hoists nothing).
		if rr.recordRollback(s.cfg.Recovery) {
			s.Stats.Recovery.Demotions++
			s.tel.tierMove(s.now(), entry, rr.tier-1, rr.tier, telemetry.CauseFaultStorm)
			s.trace("demote B%d to %s (fault storm)", entry, rr.tier)
			if rr.tier == TierPinned {
				s.cancelPending(entry, telemetry.CauseStale)
				s.dropCode(entry)
				s.trace("pin B%d to the interpreter", entry)
			} else {
				if s.bg != nil {
					// The faulting code is built for the old rung: drop it
					// and interpret until the demoted replacement installs.
					s.dropCode(entry)
				}
				if err := s.recompileRegion(entry); err != nil {
					s.dropCode(entry)
					s.Stats.RegionsDropped++
					s.tel.drop(s.now(), entry, rr.tier, telemetry.CauseCompileFail)
				}
			}
		}
		return s.interpretOne(entry)
	}
}

// demoteToConservative jumps a region to TierConservative after
// pair-level hardening failed (a repeated blacklisted pair or re-pinned
// ALAT load): the precise fix did not hold, so speculation as a whole is
// wrong for this region. Re-promotion stays possible, under backoff.
func (s *System) demoteToConservative(entry int, rr *regionRecovery) {
	before, from := rr.demotions, rr.tier
	if rr.demoteTo(s.cfg.Recovery, TierConservative) {
		s.Stats.Recovery.Demotions += int64(rr.demotions - before)
		s.tel.tierMove(s.now(), entry, from, rr.tier, telemetry.CausePairRepeat)
		s.trace("demote B%d to %s (pair hardening failed)", entry, rr.tier)
	}
}

// interpretOne interprets a single block after a rollback (the state is
// back at the region entry) and returns the next block. An interpreter
// error here means the guest itself faults architecturally at this point;
// it is recorded and surfaced by Run.
func (s *System) interpretOne(id int) int {
	before := s.it.DynInsts
	next, err := s.it.RunBlock(id)
	insts := int64(s.it.DynInsts - before)
	s.Stats.InterpCycles += insts * int64(s.cfg.Machine.InterpCyclesPerInst)
	s.Stats.GuestInsts += insts
	s.Stats.InterpretedInsts += insts
	if err != nil {
		s.fatalErr = err
		return interp.HaltID
	}
	return next
}

func (s *System) finalize() {
	s.abandonCompiles()
	s.Stats.TotalCycles = s.Stats.InterpCycles + s.Stats.RegionCycles +
		s.Stats.RollbackCycles + s.Stats.OptCycles + s.Stats.SchedCycles
	s.Stats.HWChecks = s.det.Checked()
	if s.inj != nil {
		s.Stats.Injected = s.inj.Counts()
	}
	if s.hc != nil {
		s.Stats.Health = s.hc.Stats()
		s.Stats.Health.QuarantinedRegions = int64(len(s.quarantined))
	}
	if s.memo != nil {
		s.Stats.Compile.MemoEvictions = s.memo.Evictions()
	}
	// End-of-run ladder residency, and per-region recovery history.
	rec := &s.Stats.Recovery
	rec.PinnedRegions, rec.StickyRegions = 0, 0
	rec.TierRegions = [NumTiers]int{}
	for entry := range s.disp {
		rr := s.disp[entry].rec
		if rr == nil {
			continue
		}
		rec.TierRegions[rr.tier]++
		if rr.tier == TierPinned {
			rec.PinnedRegions++
		}
		if rr.sticky {
			rec.StickyRegions++
		}
		if idx, ok := s.regionIdx[entry]; ok {
			rs := &s.Stats.Regions[idx]
			rs.Tier = rr.tier
			rs.Demotions = rr.demotions
			rs.Promotions = rr.promotions
			rs.Sticky = rr.sticky
		}
	}
}

// State and Mem expose the architectural state for verification.
func (s *System) State() *guest.State { return s.st }

// Mem returns the guest memory.
func (s *System) Mem() *guest.Memory { return s.mem }
