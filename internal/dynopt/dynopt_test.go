package dynopt

import (
	"fmt"
	"strings"
	"testing"

	"smarq/internal/guest"
	"smarq/internal/interp"
	"smarq/internal/sched"
)

// sumLoopProgram: sums array A into a scalar, writing partial sums to B.
// Disjoint arrays at 1024 (A) and 8192 (B); n iterations.
func sumLoopProgram(n int64) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock() // B0: init
	b.Li(1, 1024)
	b.Li(2, 8192)
	b.Li(3, 0) // i
	b.Li(4, n)
	b.Li(5, 0) // sum
	// Fill A[i] = i.
	init := b.NewBlock()
	b.Muli(6, 3, 8)
	b.Add(7, 1, 6)
	b.St8(7, 0, 3)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, init)
	b.NewBlock()
	b.Li(3, 0)
	loop := b.NewBlock() // the hot loop
	b.Muli(6, 3, 8)
	b.Add(7, 1, 6)
	b.Ld8(8, 7, 0) // load A[i]
	b.Add(5, 5, 8)
	b.Add(9, 2, 6)
	b.St8(9, 0, 5) // store partial sum to B[i]
	b.Ld8(10, 7, 0)
	b.Add(5, 5, 10) // reuse A[i] (load elimination fodder)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)
	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

// aliasingProgram writes through two pointers that collide every k-th
// iteration, so speculation genuinely traps sometimes.
func aliasingProgram(n, k int64) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1024) // p
	b.Li(2, 2048) // q, sometimes rebound to p
	b.Li(3, 0)
	b.Li(4, n)
	b.Li(11, k)
	loop := b.NewBlock()
	// q = (i % k == 0) ? p+offset : q0 — computed branchlessly: every k-th
	// iteration q collides with p's slot.
	b.Div(12, 3, 11)
	b.Mul(13, 12, 11)
	b.Sub(14, 3, 13) // i % k
	b.Li(2, 2048)
	b.Bne(14, 0, loop+1)
	b.NewBlock() // collide block
	b.Mov(2, 1)
	b.NewBlock()   // body
	b.St8(1, 0, 3) // store [p]
	b.Ld8(5, 2, 0) // load [q] — may alias, usually not
	b.Addi(6, 5, 1)
	b.St8(2, 8, 6)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)
	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

// runBoth runs the program under the system and under pure interpretation,
// returning both final states for comparison.
func runBoth(t *testing.T, prog *guest.Program, cfg Config, memSize int) (*System, *interp.Interpreter) {
	t.Helper()
	sys := New(prog, &guest.State{}, guest.NewMemory(memSize), cfg)
	halted, err := sys.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("system run did not halt")
	}
	ref := interp.New(prog, &guest.State{}, guest.NewMemory(memSize))
	rh, err := ref.Run(0, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !rh {
		t.Fatal("reference run did not halt")
	}
	return sys, ref
}

func assertSameState(t *testing.T, sys *System, ref *interp.Interpreter, memSize int) {
	t.Helper()
	for r := 0; r < guest.NumRegs; r++ {
		if sys.State().R[r] != ref.St.R[r] {
			t.Errorf("r%d = %d, interpreter got %d", r, sys.State().R[r], ref.St.R[r])
		}
		if sys.State().F[r] != ref.St.F[r] {
			t.Errorf("f%d = %v, interpreter got %v", r, sys.State().F[r], ref.St.F[r])
		}
	}
	for a := 0; a < memSize; a += 8 {
		got, _ := sys.Mem().Load(uint64(a), 8)
		want, _ := ref.Mem.Load(uint64(a), 8)
		if got != want {
			t.Fatalf("mem[%d] = %d, interpreter got %d", a, got, want)
		}
	}
}

func allConfigs() map[string]Config {
	return map[string]Config{
		"smarq64":        ConfigSMARQ(64),
		"smarq16":        ConfigSMARQ(16),
		"smarq8":         ConfigSMARQ(8),
		"alat":           ConfigALAT(),
		"efficeon":       ConfigEfficeon(),
		"nohw":           ConfigNoHW(),
		"nostorereorder": ConfigNoStoreReorder(),
	}
}

// TestDifferentialCorrectness is the system's primary guarantee: under
// every hardware configuration the optimized execution computes exactly
// what the interpreter computes.
func TestDifferentialCorrectness(t *testing.T) {
	for name, cfg := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			prog := sumLoopProgram(400)
			sys, ref := runBoth(t, prog, cfg, 16384)
			assertSameState(t, sys, ref, 16384)
			if sys.Stats.Commits == 0 {
				t.Error("no region ever committed — system stayed in the interpreter")
			}
		})
	}
}

// TestDifferentialWithRealAliasing runs a program whose speculation is
// periodically wrong, exercising exception -> blacklist -> re-optimize.
func TestDifferentialWithRealAliasing(t *testing.T) {
	for name, cfg := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			prog := aliasingProgram(3000, 7)
			sys, ref := runBoth(t, prog, cfg, 16384)
			assertSameState(t, sys, ref, 16384)
		})
	}
}

func TestAliasExceptionTriggersReoptimization(t *testing.T) {
	prog := aliasingProgram(3000, 7)
	sys, _ := runBoth(t, prog, ConfigSMARQ(64), 16384)
	if sys.Stats.AliasExceptions == 0 {
		t.Skip("speculation never trapped (scheduler did not reorder the colliding pair)")
	}
	if sys.Stats.Recompiles == 0 {
		t.Error("alias exceptions without conservative re-optimization")
	}
	// Blacklisting must converge: exceptions far fewer than iterations.
	if sys.Stats.AliasExceptions > 50 {
		t.Errorf("%d alias exceptions for 3000 iterations: blacklist not converging", sys.Stats.AliasExceptions)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	// The headline result shape (Figure 15): SMARQ64 beats no-HW on a
	// workload with speculation opportunities.
	prog64 := sumLoopProgram(2000)
	sys64, _ := runBoth(t, prog64, ConfigSMARQ(64), 32768)
	progNo := sumLoopProgram(2000)
	sysNo, _ := runBoth(t, progNo, ConfigNoHW(), 32768)
	if sys64.Stats.TotalCycles >= sysNo.Stats.TotalCycles {
		t.Errorf("SMARQ64 (%d cycles) not faster than no-HW (%d cycles)",
			sys64.Stats.TotalCycles, sysNo.Stats.TotalCycles)
	}
}

func TestGuardFailHandling(t *testing.T) {
	// A short loop: the final iteration always fails the loop-back guard.
	prog := sumLoopProgram(500)
	sys, ref := runBoth(t, prog, ConfigSMARQ(64), 16384)
	assertSameState(t, sys, ref, 16384)
	if sys.Stats.GuardFails == 0 {
		t.Error("loop exit never failed a guard — trace formation suspicious")
	}
}

func TestStatsAccounting(t *testing.T) {
	prog := sumLoopProgram(500)
	sys, _ := runBoth(t, prog, ConfigSMARQ(64), 16384)
	s := &sys.Stats
	if s.TotalCycles != s.InterpCycles+s.RegionCycles+s.RollbackCycles+s.OptCycles+s.SchedCycles {
		t.Error("cycle breakdown does not sum to total")
	}
	if s.RegionsCompiled == 0 || len(s.Regions) == 0 {
		t.Error("no regions compiled")
	}
	if s.GuestInsts == 0 || s.InterpretedInsts == 0 {
		t.Error("instruction accounting empty")
	}
	if s.GuestInsts < s.InterpretedInsts {
		t.Error("interpreted insts exceed total")
	}
	for _, r := range s.Regions {
		if r.MemOps == 0 && r.Alloc.PBits > 0 {
			t.Errorf("region B%d: P bits without memory ops", r.Entry)
		}
		if r.Working.SMARQ < r.Working.LowerBound {
			t.Errorf("region B%d: working set below lower bound", r.Entry)
		}
		if r.Cycles <= 0 {
			t.Errorf("region B%d: nonpositive cycle count", r.Entry)
		}
	}
}

func TestSmallRegisterFileStillCorrect(t *testing.T) {
	// 4 registers: the scheduler must throttle but never miscompute.
	cfg := ConfigSMARQ(4)
	prog := sumLoopProgram(400)
	sys, ref := runBoth(t, prog, cfg, 16384)
	assertSameState(t, sys, ref, 16384)
	for _, r := range sys.Stats.Regions {
		if r.Working.SMARQ > 4 {
			t.Errorf("region B%d: working set %d with 4 registers", r.Entry, r.Working.SMARQ)
		}
	}
}

func TestColdProgramNeverCompiles(t *testing.T) {
	prog := sumLoopProgram(5) // too few iterations to get hot
	cfg := ConfigSMARQ(64)
	cfg.HotThreshold = 1000
	sys := New(prog, &guest.State{}, guest.NewMemory(16384), cfg)
	halted, err := sys.Run(10_000_000)
	if err != nil || !halted {
		t.Fatalf("run: halted=%v err=%v", halted, err)
	}
	if sys.Stats.RegionsCompiled != 0 {
		t.Error("cold program compiled a region")
	}
	if sys.Stats.InterpCycles == 0 {
		t.Error("no interpreter cycles recorded")
	}
}

func TestBudgetStopsRun(t *testing.T) {
	prog := sumLoopProgram(1_000_000)
	sys := New(prog, &guest.State{}, guest.NewMemory(1<<23), ConfigSMARQ(64))
	halted, err := sys.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Error("halted despite tiny budget")
	}
	if sys.Stats.GuestInsts < 20_000 {
		t.Errorf("retired %d insts, want >= 20000", sys.Stats.GuestInsts)
	}
}

func TestPresetConfigs(t *testing.T) {
	if c := ConfigSMARQ(16); c.NumAliasRegs != 16 || c.Mode != sched.HWOrdered {
		t.Error("ConfigSMARQ wrong")
	}
	if c := ConfigALAT(); c.Mode != sched.HWALAT {
		t.Error("ConfigALAT wrong")
	}
	if c := ConfigNoHW(); c.Mode != sched.HWNone {
		t.Error("ConfigNoHW wrong")
	}
	if c := ConfigNoStoreReorder(); c.StoreReorder {
		t.Error("ConfigNoStoreReorder wrong")
	}
}

// TestDifferentialWithUnrolling: larger, loop-unrolled regions must stay
// exactly correct, including the partial-final-iteration case (the loop
// count is not a multiple of the unroll factor, so the last region entry
// fails a mid-region guard and rolls back to the interpreter).
func TestDifferentialWithUnrolling(t *testing.T) {
	for _, unroll := range []int{2, 3, 4} {
		cfg := ConfigSMARQ(64)
		cfg.Region.Unroll = unroll
		prog := sumLoopProgram(401) // 401 % {2,3,4} != 0
		sys, ref := runBoth(t, prog, cfg, 16384)
		assertSameState(t, sys, ref, 16384)
		if sys.Stats.Commits == 0 {
			t.Fatalf("unroll %d: no commits", unroll)
		}
		// The unrolled region retires more guest insts per commit: the
		// main loop body is 10 guest instructions, so any region covering
		// at least two iterations proves the unroll took effect.
		found := 0
		for _, r := range sys.Stats.Regions {
			if r.GuestInsts >= 20 {
				found = r.GuestInsts
			}
		}
		if found == 0 {
			t.Errorf("unroll %d: no enlarged region found", unroll)
		}
	}
}

// TestUnrollingRaisesRegisterPressure: the unrolled region allocates more
// alias registers (the §6.1 "larger regions" effect).
func TestUnrollingRaisesRegisterPressure(t *testing.T) {
	maxWS := func(unroll int) int {
		cfg := ConfigSMARQ(64)
		cfg.Region.Unroll = unroll
		prog := sumLoopProgram(2000)
		sys := New(prog, &guest.State{}, guest.NewMemory(32768), cfg)
		if _, err := sys.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		ws := 0
		for _, r := range sys.Stats.Regions {
			if r.Alloc.WorkingSet > ws {
				ws = r.Alloc.WorkingSet
			}
		}
		return ws
	}
	w1, w4 := maxWS(1), maxWS(4)
	if w4 <= w1 {
		t.Errorf("working set did not grow with unrolling: %d (x1) vs %d (x4)", w1, w4)
	}
}

// TestOverflowRetryPath: a 2-register file forces alias register overflow
// during compilation; the system must retreat (ForceNonSpec, then no
// eliminations) and stay correct.
func TestOverflowRetryPath(t *testing.T) {
	cfg := ConfigSMARQ(2)
	cfg.Region.Unroll = 2 // raise pressure further
	prog := sumLoopProgram(400)
	sys, ref := runBoth(t, prog, cfg, 16384)
	assertSameState(t, sys, ref, 16384)
	for _, r := range sys.Stats.Regions {
		if r.Alloc.WorkingSet > 2 {
			t.Errorf("region B%d working set %d with 2 registers", r.Entry, r.Alloc.WorkingSet)
		}
	}
}

// TestEfficeonEncodingWall: ammp's ~50-memory-op superblocks exceed what
// 15 named registers can protect, so the true bit-mask model must throttle
// (and still run correctly, which TestSuiteDifferential already checks).
func TestEfficeonEncodingWall(t *testing.T) {
	// Local miniature of ammp: one block with 20 interleaved may-alias
	// load/store pairs.
	b := guest.NewBuilder()
	b.NewBlock()
	for i := 0; i < 20; i++ {
		b.Li(guest.Reg(1+i%8), int64(1024+i*512))
	}
	b.Li(30, 0)
	b.Li(29, 600)
	loop := b.NewBlock()
	for i := 0; i < 10; i++ {
		b.St8(guest.Reg(1+i%8), int64(i*16), 28)
		b.Ld8(27, guest.Reg(1+(i+3)%8), int64(i*16+8))
	}
	b.Addi(30, 30, 1)
	b.Blt(30, 29, loop)
	b.NewBlock()
	b.Halt()
	prog := b.MustProgram()

	sys := New(prog, &guest.State{}, guest.NewMemory(1<<16), ConfigEfficeon())
	halted, err := sys.Run(10_000_000)
	if err != nil || !halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	for _, r := range sys.Stats.Regions {
		if r.Alloc.WorkingSet > 15 {
			t.Errorf("region B%d working set %d beyond the 15-register encoding cap",
				r.Entry, r.Alloc.WorkingSet)
		}
	}
}

func TestTraceHook(t *testing.T) {
	var events []string
	cfg := ConfigSMARQ(64)
	cfg.Trace = func(format string, args ...interface{}) {
		events = append(events, fmt.Sprintf(format, args...))
	}
	prog := aliasingProgram(3000, 7)
	sys := New(prog, &guest.State{}, guest.NewMemory(16384), cfg)
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	var sawCompile bool
	for _, e := range events {
		if strings.HasPrefix(e, "compile B") {
			sawCompile = true
		}
	}
	if !sawCompile {
		t.Error("trace hook never reported a compilation")
	}
	if sys.Stats.AliasExceptions > 0 {
		var sawExc bool
		for _, e := range events {
			if strings.Contains(e, "alias exception") {
				sawExc = true
			}
		}
		if !sawExc {
			t.Error("alias exceptions occurred but were not traced")
		}
	}
}

// speculativeFaultProgram: the hot loop's exit guard comes FIRST in
// program order and the load second, so the architectural execution never
// touches memory out of bounds — but the speculative schedule hoists the
// load above the guard, and on the final region entry the hoisted load
// reads one element past the array. The region must fault, roll back, and
// the interpreter must exit the loop cleanly.
func speculativeFaultProgram(n int64, memSize int) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock()                // B0
	b.Li(2, int64(memSize)-8*n) // base: the last valid element is memSize-8
	b.Li(3, 0)
	b.Li(4, n)
	b.Jmp(1)
	b.NewBlock() // B1: loop head — the exit guard comes first
	b.Bge(3, 4, 3)
	b.NewBlock() // B2: body — load second
	b.Ld8(5, 2, 0)
	b.Addi(6, 5, 1) // consumer chain raises the load's priority
	b.Muli(6, 6, 3)
	b.Add(7, 7, 6)
	b.Addi(2, 2, 8)
	b.Addi(3, 3, 1)
	b.Jmp(1)
	b.NewBlock() // B3: exit (fallthrough of B1's blt)
	b.Halt()
	return b.MustProgram()
}

func TestSpeculationInducedFault(t *testing.T) {
	const memSize = 1 << 12
	prog := speculativeFaultProgram(300, memSize)
	sys, ref := runBoth(t, prog, ConfigSMARQ(64), memSize)
	assertSameState(t, sys, ref, memSize)
	if sys.Stats.Faults == 0 {
		t.Skip("scheduler did not hoist the load above the exit guard")
	}
	// The faults were speculation-induced and absorbed: the run completed
	// with the interpreter's exact result (asserted above).
	t.Logf("%d speculation-induced faults absorbed by rollback", sys.Stats.Faults)
}

// TestGenuineGuestFaultSurfaces: an architecturally faulting program must
// report its fault even when the fault is first hit inside a region and
// re-executed by the interpreter after rollback.
func TestGenuineGuestFaultSurfaces(t *testing.T) {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(2, 0)
	b.Li(3, 0)
	b.Li(4, 100000)
	loop := b.NewBlock()
	b.Ld8(5, 2, 0) // faults once r2 walks past the end
	b.Addi(2, 2, 8)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)
	b.NewBlock()
	b.Halt()
	prog := b.MustProgram()

	sys := New(prog, &guest.State{}, guest.NewMemory(1<<12), ConfigSMARQ(64))
	halted, err := sys.Run(50_000_000)
	if err == nil {
		t.Fatalf("genuine guest fault not surfaced (halted=%v)", halted)
	}
}

// TestDifferentialWithAblations: every ablated system must remain exactly
// correct — the no-anti ablation in particular leans on rollback +
// conservative re-optimization to absorb its false positives.
func TestDifferentialWithAblations(t *testing.T) {
	ablations := map[string]Ablation{
		"no-anti":     {Anti: true},
		"no-rotation": {Rotation: true},
		"no-elim":     {Elim: true},
		"all-off":     {Anti: true, Rotation: true, Elim: true},
	}
	for name, ab := range ablations {
		t.Run(name, func(t *testing.T) {
			cfg := ConfigSMARQ(64)
			cfg.Ablation = ab
			prog := sumLoopProgram(400)
			sys, ref := runBoth(t, prog, cfg, 16384)
			assertSameState(t, sys, ref, 16384)

			cfg16 := ConfigSMARQ(16)
			cfg16.Ablation = ab
			prog2 := aliasingProgram(2000, 7)
			sys2, ref2 := runBoth(t, prog2, cfg16, 16384)
			assertSameState(t, sys2, ref2, 16384)
			_ = sys2
			_ = sys
		})
	}
}
