package dynopt

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
)

// withRefPipeline runs fn with the compile path swapped to the retained
// reference pipeline. Safe to do between runs: System.Run drains and
// closes its worker pool before returning, so no goroutine reads the
// hook concurrently with the swap.
func withRefPipeline(fn func()) {
	compilePipeline = runCompilePipelineRef
	defer func() { compilePipeline = runCompilePipeline }()
	fn()
}

// diffConfigs covers every hardware mode the scheduler and allocator
// dispatch on.
func diffConfigs() map[string]Config {
	return map[string]Config{
		"smarq64":  ConfigSMARQ(64),
		"smarq16":  ConfigSMARQ(16),
		"alat":     ConfigALAT(),
		"efficeon": ConfigEfficeon(),
		"nohw":     ConfigNoHW(),
	}
}

// TestCompileFlatMatchesReference is the tentpole's correctness gate:
// the flat-arena pipeline (pooled IR arena, CLZ-bitmap scheduler, pooled
// alias/deps/opt structures, frozen install) must be observationally
// identical to the retained reference pipeline (private allocations,
// heap scheduler, no pooling) — same schedules, alias assignments,
// stats, memo keys and guest state, across hardware modes and chaos
// seeds.
func TestCompileFlatMatchesReference(t *testing.T) {
	for name, cfg := range diffConfigs() {
		for _, arm := range []struct {
			name string
			seed int64
		}{{"plain", 0}, {"chaos", 11}, {"chaos2", 29}} {
			t.Run(name+"/"+arm.name, func(t *testing.T) {
				mk := func() Config {
					c := cfg
					c.Compile.Workers = 2
					c.Compile.Memoize = true
					if arm.seed != 0 {
						c.Chaos = faultinject.Default(arm.seed)
						c.CheckInvariants = true
					}
					return c
				}
				prog := func() *guest.Program { return aliasingProgram(1500, 7) }
				flat := runInstrumented(t, prog(), 1<<16, mk())
				var ref *bgRun
				withRefPipeline(func() {
					ref = runInstrumented(t, prog(), 1<<16, mk())
				})
				if !reflect.DeepEqual(flat.sys.Stats, ref.sys.Stats) {
					t.Errorf("stats diverge:\nflat: %+v\nref:  %+v", flat.sys.Stats, ref.sys.Stats)
				}
				if !bytes.Equal(flat.trace, ref.trace) {
					t.Error("event trace diverges between flat and reference pipelines")
				}
				if !bytes.Equal(flat.metrics, ref.metrics) {
					t.Error("metrics snapshot diverges between flat and reference pipelines")
				}
				snap := faultinject.Capture(ref.st, ref.mem)
				if err := snap.Verify(flat.st, flat.mem); err != nil {
					t.Errorf("guest state diverges: %v", err)
				}

				// Per-compile differential over every superblock the run
				// formed: both pipelines on identical inputs must agree
				// field-for-field on the compiled region, alias
				// annotations, allocation stats and working sets, and
				// must leave the input (hence its memo key) untouched.
				entries := make([]int, 0, len(flat.sys.sbCache))
				for entry := range flat.sys.sbCache {
					entries = append(entries, entry)
				}
				sort.Ints(entries)
				for _, entry := range entries {
					in, err := flat.sys.newCompileInput(entry)
					if err != nil {
						t.Fatal(err)
					}
					keyBefore := memoKey(in)
					fout := runCompilePipeline(in)
					rout := runCompilePipelineRef(in)
					if keyAfter := memoKey(in); keyAfter != keyBefore {
						t.Errorf("B%d: pipeline mutated its input: memo key %x -> %x", entry, keyBefore, keyAfter)
					}
					compareOutputs(t, entry, fout, rout)
				}
			})
		}
	}
}

func compareOutputs(t *testing.T, entry int, flat, ref *compileOutput) {
	t.Helper()
	pfx := fmt.Sprintf("B%d: ", entry)
	if (flat.err == nil) != (ref.err == nil) {
		t.Fatalf("%serr mismatch: %v vs %v", pfx, flat.err, ref.err)
	}
	if flat.err != nil {
		if flat.err.Error() != ref.err.Error() {
			t.Errorf("%serror text %q vs %q", pfx, flat.err, ref.err)
		}
		return
	}
	if flat.alloc != ref.alloc {
		t.Errorf("%salloc stats %+v vs %+v", pfx, flat.alloc, ref.alloc)
	}
	if flat.working != ref.working {
		t.Errorf("%sworking sets %+v vs %+v", pfx, flat.working, ref.working)
	}
	if flat.seqLen != ref.seqLen || flat.numOps != ref.numOps ||
		flat.guestInsts != ref.guestInsts || flat.memOps != ref.memOps ||
		flat.overflowRetries != ref.overflowRetries {
		t.Errorf("%sscalar outputs (%d,%d,%d,%d,%d) vs (%d,%d,%d,%d,%d)", pfx,
			flat.seqLen, flat.numOps, flat.guestInsts, flat.memOps, flat.overflowRetries,
			ref.seqLen, ref.numOps, ref.guestInsts, ref.memOps, ref.overflowRetries)
	}
	fcr, rcr := flat.cr, ref.cr
	if fcr.Cycles != rcr.Cycles || fcr.GuestInsts != rcr.GuestInsts {
		t.Errorf("%scompiled region cycles/insts (%d,%d) vs (%d,%d)", pfx,
			fcr.Cycles, fcr.GuestInsts, rcr.Cycles, rcr.GuestInsts)
	}
	if len(fcr.Seq) != len(rcr.Seq) {
		t.Fatalf("%sseq length %d vs %d", pfx, len(fcr.Seq), len(rcr.Seq))
	}
	for i := range fcr.Seq {
		g, w := fcr.Seq[i], rcr.Seq[i]
		if g.ID != w.ID || g.Kind != w.Kind || g.GOp != w.GOp || g.Dst != w.Dst ||
			g.AROffset != w.AROffset || g.P != w.P || g.C != w.C || g.ARMask != w.ARMask ||
			g.Amount != w.Amount || g.SrcOff != w.SrcOff || g.DstOff != w.DstOff ||
			g.Imm != w.Imm || g.OnTraceTaken != w.OnTraceTaken || g.OffTrace != w.OffTrace {
			t.Fatalf("%sseq[%d] differs:\n  flat %+v\n  ref  %+v", pfx, i, *g, *w)
		}
		if len(g.Srcs) != len(w.Srcs) {
			t.Fatalf("%sseq[%d]: %d srcs vs %d", pfx, i, len(g.Srcs), len(w.Srcs))
		}
		for j := range g.Srcs {
			if g.Srcs[j] != w.Srcs[j] || g.SrcFloat[j] != w.SrcFloat[j] {
				t.Fatalf("%sseq[%d]: operand %d differs", pfx, i, j)
			}
		}
		if (g.Mem == nil) != (w.Mem == nil) {
			t.Fatalf("%sseq[%d]: mem presence differs", pfx, i)
		}
		if g.Mem != nil && *g.Mem != *w.Mem {
			t.Fatalf("%sseq[%d]: mem %+v vs %+v", pfx, i, *g.Mem, *w.Mem)
		}
	}
	freg, rreg := fcr.Region, rcr.Region
	if freg.NumVRegs != rreg.NumVRegs || freg.Entry != rreg.Entry ||
		freg.FinalTarget != rreg.FinalTarget || freg.IntOut != rreg.IntOut ||
		freg.FloatOut != rreg.FloatOut || len(freg.Ops) != len(rreg.Ops) {
		t.Fatalf("%sregion headers differ", pfx)
	}
	for i := range freg.Ops {
		g, w := freg.Ops[i], rreg.Ops[i]
		if g.ID != w.ID || g.Kind != w.Kind || g.AROffset != w.AROffset ||
			g.P != w.P || g.C != w.C || g.ARMask != w.ARMask {
			t.Errorf("%sregion op %d annotations differ: (%d,%v,%v,%x) vs (%d,%v,%v,%x)", pfx,
				i, g.AROffset, g.P, g.C, g.ARMask, w.AROffset, w.P, w.C, w.ARMask)
		}
	}
}
