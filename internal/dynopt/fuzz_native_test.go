package dynopt

import (
	"math/rand"
	"testing"

	"smarq/internal/guest"
	"smarq/internal/interp"
)

// FuzzDynopt is the native fuzzing entry point (go test -fuzz=FuzzDynopt):
// the seed selects a structured random guest program (see randomProgram),
// which runs under the speculating configurations and must reproduce the
// interpreter's architectural state bit-for-bit. The seed corpus below
// also runs as a regression test on every plain `go test`.
func FuzzDynopt(f *testing.F) {
	for _, seed := range []int64{1, 42, 1000, 31337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		const memSize = 1 << 14
		const maxInsts = 3_000_000
		build := func() *guest.Program {
			return randomProgram(rand.New(rand.NewSource(seed)))
		}

		ref := interp.New(build(), &guest.State{}, guest.NewMemory(memSize))
		halted, err := ref.Run(0, maxInsts)
		if err != nil {
			t.Fatalf("seed %d: reference interpreter: %v", seed, err)
		}
		if !halted {
			t.Fatalf("seed %d: reference did not halt", seed)
		}

		configs := map[string]Config{
			"smarq64":  ConfigSMARQ(64),
			"smarq6":   ConfigSMARQ(6), // tiny file: exercises overflow throttling
			"alat":     ConfigALAT(),
			"efficeon": ConfigEfficeon(),
		}
		for cname, cfg := range configs {
			cfg.HotThreshold = 20 // compile eagerly to stress the pipeline
			sys := New(build(), &guest.State{}, guest.NewMemory(memSize), cfg)
			halted, err := sys.Run(maxInsts)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, cname, err)
			}
			if !halted {
				t.Fatalf("seed %d/%s: did not halt", seed, cname)
			}
			for r := 0; r < guest.NumRegs; r++ {
				if sys.State().R[r] != ref.St.R[r] {
					t.Fatalf("seed %d/%s: r%d = %d, interpreter got %d",
						seed, cname, r, sys.State().R[r], ref.St.R[r])
				}
				if sys.State().F[r] != ref.St.F[r] {
					t.Fatalf("seed %d/%s: f%d = %v, interpreter got %v",
						seed, cname, r, sys.State().F[r], ref.St.F[r])
				}
			}
			for a := 0; a < memSize; a += 8 {
				got, _ := sys.Mem().Load(uint64(a), 8)
				want, _ := ref.Mem.Load(uint64(a), 8)
				if got != want {
					t.Fatalf("seed %d/%s: mem[%#x] = %#x, interpreter got %#x",
						seed, cname, a, got, want)
				}
			}
		}
	})
}
