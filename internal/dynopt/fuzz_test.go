package dynopt

import (
	"math/rand"
	"testing"

	"smarq/internal/guest"
	"smarq/internal/interp"
)

// randomProgram generates a structured random guest program that always
// halts: an init block seeding registers and arrays, a nest of counted
// loops whose bodies mix arithmetic, may-alias loads/stores (through both
// direct and loaded base registers), and rare data-dependent side
// branches. The generator is the adversary for the differential fuzz
// test: any miscompilation anywhere in the pipeline shows up as a final
// state divergence from the interpreter.
func randomProgram(rng *rand.Rand) *guest.Program {
	b := guest.NewBuilder()
	const memSize = 1 << 14

	// Registers: r1..r4 array bases, r5 loop counter outer, r6 inner,
	// r7/r8 limits, r9..r15 scratch, r16 pointer-table base.
	b.NewBlock()
	bases := []int64{1 << 10, 3 << 10, 5 << 10, 7 << 10}
	for i, base := range bases {
		b.Li(guest.Reg(1+i), base+int64(rng.Intn(4))*8)
	}
	b.Li(16, 9<<10)
	// Pointer table: PT[0..1] hold (possibly equal!) array addresses.
	b.Li(9, bases[rng.Intn(4)])
	b.St8(16, 0, 9)
	b.Li(9, bases[rng.Intn(4)])
	b.St8(16, 8, 9)
	b.Li(5, 0)
	b.Li(7, int64(60+rng.Intn(120))) // outer trip count
	for r := 10; r <= 15; r++ {
		b.Li(guest.Reg(r), int64(rng.Intn(64))*8)
	}
	b.FLi(1, 1.5)
	b.FLi(2, 0.25)

	loop := b.NewBlock()
	// Loop body: 6..20 random operations.
	nOps := 6 + rng.Intn(15)
	for i := 0; i < nOps; i++ {
		base := guest.Reg(1 + rng.Intn(4))
		off := int64(rng.Intn(32)) * 8
		scratch := guest.Reg(10 + rng.Intn(6))
		switch rng.Intn(10) {
		case 0, 1: // store
			b.St8(base, off, scratch)
		case 2, 3, 4: // load
			b.Ld8(scratch, base, off)
		case 5: // load through the pointer table (opaque root)
			b.Ld8(9, 16, int64(rng.Intn(2))*8)
			b.Ld8(scratch, 9, off%128)
		case 6: // store through the pointer table
			b.Ld8(9, 16, int64(rng.Intn(2))*8)
			b.St8(9, off%128, scratch)
		case 7: // float round trip through memory
			b.FSt8(base, off, guest.Reg(1+rng.Intn(2)))
			b.FLd8(3, base, off)
			b.FAdd(1, 1, 2)
		case 8: // arithmetic chain
			b.Addi(scratch, scratch, int64(rng.Intn(16)))
			b.Mul(11, scratch, 10)
			b.And(12, 11, scratch)
		default: // narrow accesses
			b.St4(base, off, scratch)
			b.Ld2(scratch, base, off)
		}
	}
	// A rare data-dependent side exit that rejoins: tests guard handling.
	if rng.Intn(2) == 0 {
		rejoin := b.Reserve(2)
		b.And(13, 5, 10)
		b.Bne(13, 13, rejoin) // never taken (x != x is false) but opaque
		b.At(rejoin)
		b.Addi(14, 14, 1)
		b.At(rejoin + 1)
		b.Addi(5, 5, 1)
		b.Blt(5, 7, loop)
	} else {
		b.Addi(5, 5, 1)
		b.Blt(5, 7, loop)
	}

	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

// TestFuzzDifferential generates random programs and checks that every
// hardware configuration computes exactly the interpreter's result.
func TestFuzzDifferential(t *testing.T) {
	const memSize = 1 << 14
	trials := 60
	if testing.Short() {
		trials = 10
	}
	unrolled := ConfigSMARQ(64)
	unrolled.Region.Unroll = 3
	noAnti := ConfigSMARQ(16)
	noAnti.Ablation = Ablation{Anti: true}
	configs := map[string]Config{
		"no-anti-16": noAnti, // false positives + rollback convergence
		"smarq64":    ConfigSMARQ(64),
		"smarq6":     ConfigSMARQ(6), // tiny file: exercises overflow throttling
		"smarq64-u3": unrolled,       // loop-unrolled regions
		"alat":       ConfigALAT(),
		"efficeon":   ConfigEfficeon(),
		"nohw":       ConfigNoHW(),
	}
	var totalCommits, totalExceptions, totalSpeculative int64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		// Build once per run (the builder is deterministic for a seed, but
		// each System needs its own Program since translation annotates).
		build := func() *guest.Program {
			return randomProgram(rand.New(rand.NewSource(int64(1000 + trial))))
		}
		_ = rng

		ref := interp.New(build(), &guest.State{}, guest.NewMemory(memSize))
		haltedRef, err := ref.Run(0, 3_000_000)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		if !haltedRef {
			t.Fatalf("trial %d: reference did not halt", trial)
		}

		for cname, cfg := range configs {
			cfg.HotThreshold = 20 // compile eagerly to stress the pipeline
			sys := New(build(), &guest.State{}, guest.NewMemory(memSize), cfg)
			halted, err := sys.Run(3_000_000)
			if err != nil {
				t.Fatalf("trial %d/%s: %v", trial, cname, err)
			}
			if !halted {
				t.Fatalf("trial %d/%s: did not halt", trial, cname)
			}
			for r := 0; r < guest.NumRegs; r++ {
				if sys.State().R[r] != ref.St.R[r] {
					t.Fatalf("trial %d/%s: r%d = %d, interpreter got %d",
						trial, cname, r, sys.State().R[r], ref.St.R[r])
				}
				if sys.State().F[r] != ref.St.F[r] {
					t.Fatalf("trial %d/%s: f%d = %v, interpreter got %v",
						trial, cname, r, sys.State().F[r], ref.St.F[r])
				}
			}
			for a := 0; a < memSize; a += 8 {
				got, _ := sys.Mem().Load(uint64(a), 8)
				want, _ := ref.Mem.Load(uint64(a), 8)
				if got != want {
					t.Fatalf("trial %d/%s: mem[%#x] = %#x, interpreter got %#x",
						trial, cname, a, got, want)
				}
			}
			totalCommits += sys.Stats.Commits
			totalExceptions += sys.Stats.AliasExceptions
			for _, reg := range sys.Stats.Regions {
				totalSpeculative += int64(reg.Alloc.PBits)
			}
		}
	}
	// The fuzz is only meaningful if the random programs actually drove
	// compiled, speculating regions — and occasionally speculated wrong.
	if totalCommits == 0 {
		t.Error("fuzz never committed a region — programs too cold")
	}
	if totalSpeculative == 0 {
		t.Error("fuzz never speculated — no alias registers allocated")
	}
	if totalExceptions == 0 {
		t.Log("note: no alias exceptions across all trials (speculation never wrong)")
	}
	t.Logf("fuzz drove %d commits, %d P bits, %d alias exceptions",
		totalCommits, totalSpeculative, totalExceptions)
}
