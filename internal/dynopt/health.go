// Health integration: the system-scope graceful-degradation controller
// (internal/health) threaded through the dynopt loop. The per-region
// recovery ladder (recovery.go) protects against one region
// misbehaving; the health controller protects against the *host*
// misbehaving — compile-worker panics, watchdog kills, poisoned
// results, or a system-wide rollback storm — by shedding capability one
// level at a time: speculation, then compilation, then admission of new
// regions. Every observation is fed from the simulation thread at
// points fixed by the simulated clock, so the controller's walk is
// byte-identical for a fixed seed at any compile-worker count.
package dynopt

import (
	"smarq/internal/health"
	"smarq/internal/telemetry"
)

// healthDispatchOK reports whether installed code may dispatch at the
// current health level (false at compile-off and below: the system runs
// interpreter-only until health recovers).
func (s *System) healthDispatchOK() bool {
	return s.hc == nil || s.hc.Level() < health.CompileOff
}

// compileAllowed gates new compile work: quarantined regions never
// compile again, and while the health controller has compilation shed
// nothing does. A region becoming hot while the controller sits at the
// quarantine level is permanently barred (quarantine-new-regions).
func (s *System) compileAllowed(entry int) bool {
	if s.quarantined[entry] {
		return false
	}
	if s.hc == nil {
		return true
	}
	lv := s.hc.Level()
	if lv < health.CompileOff {
		return true
	}
	if lv == health.Quarantine {
		s.quarantineRegion(entry, telemetry.CauseHealth)
	}
	return false
}

// effectiveTier is the region's ladder rung clamped by the health level:
// at no-speculation and below, every new compile is at least
// conservative. The clamp applies at compile-input snapshot time, so the
// memo key (which folds the tier-derived flags) stays correct.
func (s *System) effectiveTier(entry int) Tier {
	t := s.tierOf(entry)
	if s.hc != nil && s.hc.Level() >= health.NoSpeculation && t < TierConservative {
		t = TierConservative
	}
	return t
}

// healthClean feeds one clean observation — a committed dispatch, or (at
// compile-off and below, where nothing dispatches) quiet interpreted
// progress — and applies any promotion it earns.
func (s *System) healthClean() {
	if s.hc == nil {
		return
	}
	if mv, ok := s.hc.RecordClean(); ok {
		s.tel.healthMove(s.now(), mv, telemetry.CauseNone)
		s.trace("health: %s -> %s (recovered)", mv.From, mv.To)
	}
}

// healthRollback feeds one misspeculation rollback (alias exception or
// speculation-induced fault; guard fails are side exits, not
// misspeculation) and applies any demotion it triggers.
func (s *System) healthRollback() {
	if s.hc == nil {
		return
	}
	if mv, ok := s.hc.RecordRollback(); ok {
		s.tel.healthMove(s.now(), mv, telemetry.CauseRate)
		s.trace("health: %s -> %s (rollback rate)", mv.From, mv.To)
	}
}

// recordHostFault records one contained host-side compile fault — a
// worker panic, a watchdog kill, a rejected poisoned result — in
// telemetry and the health controller.
func (s *System) recordHostFault(entry int, cause telemetry.Cause) {
	s.tel.hostFault(s.now(), entry, s.tierOf(entry), cause)
	s.trace("host fault in compile of B%d (%s)", entry, cause)
	if s.hc == nil {
		return
	}
	if mv, ok := s.hc.RecordHostFault(); ok {
		s.tel.healthMove(s.now(), mv, cause)
		s.trace("health: %s -> %s (%s)", mv.From, mv.To, cause)
	}
}

// quarantineRegion permanently bars entry from compiling: a worker panic
// in its compile proves the pipeline cannot be trusted with this input,
// and at the quarantine health level new regions are not admitted at
// all. Installed code, if any, is dropped by the caller's failure path;
// the bar itself is just membership in the quarantined set, checked by
// compileAllowed.
func (s *System) quarantineRegion(entry int, cause telemetry.Cause) {
	if s.quarantined[entry] {
		return
	}
	s.quarantined[entry] = true
	s.Stats.Compile.Quarantined++
	s.tel.quarantine(s.now(), entry, s.tierOf(entry), cause)
	s.trace("quarantine B%d (%s)", entry, cause)
}
