package dynopt

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/health"
)

// smallHealthConfig is tuned so the controller actually moves within a
// test-sized run: tight window, every host fault demotes, short clean
// runs promote.
func smallHealthConfig() health.Config {
	return health.Config{
		Window:          32,
		DemoteThreshold: 4,
		HostFaultWeight: 4,
		PromoteAfter:    2,
		BackoffFactor:   2,
		MaxBackoff:      1 << 20, // never sticky unless a test wants it
	}
}

// TestHostChaosDeterministic is the tentpole acceptance test: under the
// full host-fault mix (worker panics, compile hangs, poisoned results,
// memo pressure) with the health controller and memoization on, the run
// completes with bit-exact state, stats, event trace and metrics at any
// background worker count — host faults are drawn on the simulation
// thread, so worker scheduling cannot perturb them.
func TestHostChaosDeterministic(t *testing.T) {
	progs := map[string]func() *guest.Program{
		"sumloop":  func() *guest.Program { return sumLoopProgram(2000) },
		"aliasing": func() *guest.Program { return aliasingProgram(2500, 7) },
	}
	for pname, build := range progs {
		for _, seed := range []int64{11, 23} {
			t.Run(fmt.Sprintf("%s/seed%d", pname, seed), func(t *testing.T) {
				baseCfg := func(workers int) Config {
					cfg := ConfigSMARQ(64)
					cfg.Compile.Workers = workers
					cfg.Compile.Memoize = true
					cfg.Chaos = faultinject.DefaultHost(seed)
					cfg.CheckInvariants = true
					cfg.Health = smallHealthConfig()
					return cfg
				}
				ref := runInstrumented(t, build(), 1<<16, baseCfg(1))
				inj := ref.sys.Stats.Injected
				if inj.WorkerPanics+inj.CompileHangs+inj.PoisonedResults+inj.MemoPressure == 0 {
					t.Errorf("seed %d injected no host faults — the test exercised nothing: %+v", seed, inj)
				}
				for _, workers := range []int{2, 4} {
					got := runInstrumented(t, build(), 1<<16, baseCfg(workers))
					if !reflect.DeepEqual(ref.sys.Stats, got.sys.Stats) {
						t.Errorf("workers=%d: stats diverge from workers=1\n 1: %+v\n%2d: %+v",
							workers, ref.sys.Stats, workers, got.sys.Stats)
					}
					if !bytes.Equal(ref.trace, got.trace) {
						t.Errorf("workers=%d: event trace diverges from workers=1", workers)
					}
					if !bytes.Equal(ref.metrics, got.metrics) {
						t.Errorf("workers=%d: metrics snapshot diverges from workers=1", workers)
					}
					snap := faultinject.Capture(ref.st, ref.mem)
					if err := snap.Verify(got.st, got.mem); err != nil {
						t.Errorf("workers=%d: guest state diverges from workers=1: %v", workers, err)
					}
				}
			})
		}
	}
}

// TestHostChaosSoak extends the chaos soak to every host-fault mix: each
// class alone at an extreme rate, and all of them together, must still
// produce the reference interpreter's final state bit for bit — host
// faults may only delay or suppress compiled code, never change what it
// computes.
func TestHostChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("host chaos soak skipped in -short mode")
	}
	mixes := map[string]func(seed int64) faultinject.Config{
		"panic":  func(seed int64) faultinject.Config { return faultinject.Config{Seed: seed, WorkerPanicRate: 0.5} },
		"hang":   func(seed int64) faultinject.Config { return faultinject.Config{Seed: seed, CompileHangRate: 0.5} },
		"poison": func(seed int64) faultinject.Config { return faultinject.Config{Seed: seed, PoisonResultRate: 0.5} },
		"memo":   func(seed int64) faultinject.Config { return faultinject.Config{Seed: seed, MemoPressureRate: 0.8} },
		"all":    faultinject.DefaultHost,
	}
	for mname, mk := range mixes {
		for _, workers := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/workers=%d", mname, workers), func(t *testing.T) {
				cfg := ConfigSMARQ(64)
				cfg.Compile.Workers = workers
				cfg.Compile.Memoize = true
				cfg.Chaos = mk(31)
				cfg.CheckInvariants = true
				cfg.Health = smallHealthConfig()
				sys, ref := runBoth(t, aliasingProgram(2500, 7), cfg, 1<<16)
				assertSameState(t, sys, ref, 1<<16)
				if sys.Stats.Recovery.InvariantViolations != 0 {
					t.Errorf("%d invariant violations with corruption off",
						sys.Stats.Recovery.InvariantViolations)
				}
			})
		}
	}
}

// TestWorkerPanicNeverKillsProcess: with every compile job panicking, the
// recover() backstop must convert each panic into a failed compile, the
// region must be quarantined, and the run must still halt with the exact
// interpreted state. Covers both the synchronous and background paths.
func TestWorkerPanicNeverKillsProcess(t *testing.T) {
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := ConfigSMARQ(64)
			cfg.Compile.Workers = workers
			cfg.Chaos = faultinject.Config{Seed: 9, WorkerPanicRate: 1}
			cfg.CheckInvariants = true
			sys, ref := runBoth(t, sumLoopProgram(3000), cfg, 1<<16)
			assertSameState(t, sys, ref, 1<<16)
			cs := sys.Stats.Compile
			if cs.WorkerPanics == 0 {
				t.Fatalf("rate-1 panic injection never fired: %+v", cs)
			}
			if cs.Installed != 0 {
				t.Errorf("installed %d regions though every compile panicked", cs.Installed)
			}
			if cs.Quarantined == 0 {
				t.Error("no region quarantined after its compile panicked")
			}
			if sys.Stats.Injected.WorkerPanics != cs.WorkerPanics {
				t.Errorf("injector fired %d panics, pipeline recovered %d",
					sys.Stats.Injected.WorkerPanics, cs.WorkerPanics)
			}
		})
	}
}

// TestWatchdogKillsHungCompiles: with every background compile hanging,
// the watchdog must discard each job at its simulated-cycle deadline —
// nothing installs, nothing blocks, and the run still matches the
// interpreter.
func TestWatchdogKillsHungCompiles(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Workers = 2
	cfg.Chaos = faultinject.Config{Seed: 13, CompileHangRate: 1}
	cfg.CheckInvariants = true
	sys, ref := runBoth(t, sumLoopProgram(3000), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)
	cs := sys.Stats.Compile
	if cs.WatchdogKills == 0 {
		t.Fatalf("rate-1 hang injection produced no watchdog kills: %+v", cs)
	}
	if cs.Installed != 0 {
		t.Errorf("installed %d regions though every compile hung", cs.Installed)
	}
	if cs.WatchdogKills != sys.Stats.Injected.CompileHangs {
		t.Errorf("injector hung %d compiles, watchdog killed %d",
			sys.Stats.Injected.CompileHangs, cs.WatchdogKills)
	}
}

// TestPoisonedResultsNeverInstall: with every compile result poisoned,
// install-time validation (checksum plus structural invariants — the
// injector alternates which layer is attacked) must reject every result;
// nothing is memoized or dispatched and the state stays exact.
func TestPoisonedResultsNeverInstall(t *testing.T) {
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := ConfigSMARQ(64)
			cfg.Compile.Workers = workers
			cfg.Compile.Memoize = true
			cfg.Chaos = faultinject.Config{Seed: 21, PoisonResultRate: 1}
			cfg.CheckInvariants = true
			sys, ref := runBoth(t, sumLoopProgram(3000), cfg, 1<<16)
			assertSameState(t, sys, ref, 1<<16)
			cs := sys.Stats.Compile
			if cs.Rejected < 2 {
				t.Fatalf("want >= 2 rejections so both poison modes are exercised: %+v", cs)
			}
			if cs.Installed != 0 {
				t.Errorf("installed %d poisoned regions", cs.Installed)
			}
			if cs.MemoHits != 0 {
				t.Errorf("memo served %d hits though every result was poisoned before admission", cs.MemoHits)
			}
			if cs.Rejected != sys.Stats.Injected.PoisonedResults {
				t.Errorf("injector poisoned %d results, validation rejected %d",
					sys.Stats.Injected.PoisonedResults, cs.Rejected)
			}
		})
	}
}

// TestHealthWalksDownAndRecoversInSystem drives the health controller
// end to end: a sustained poison storm sheds levels down to compile-off,
// interpreted progress then earns promotions back, and the flapping
// leaves both demotions and promotions on the books — while the final
// state still matches the interpreter exactly.
func TestHealthWalksDownAndRecoversInSystem(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Workers = 2
	cfg.Compile.Memoize = true
	cfg.Chaos = faultinject.Config{Seed: 3, PoisonResultRate: 1}
	cfg.CheckInvariants = true
	cfg.Health = smallHealthConfig()
	sys, ref := runBoth(t, sumLoopProgram(4000), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)

	hs := sys.Stats.Health
	if hs.Demotions == 0 {
		t.Fatalf("poison storm never demoted: %+v", hs)
	}
	if hs.LevelEntries[health.CompileOff] == 0 {
		t.Errorf("controller never reached compile-off: %+v", hs)
	}
	if hs.Promotions == 0 {
		t.Errorf("controller never promoted back up: %+v", hs)
	}
	if hs.HostFaults == 0 || hs.Cleans == 0 {
		t.Errorf("controller starved of observations: %+v", hs)
	}
}

// TestHealthQuarantineBarsNewRegions: a worker-panic storm with a small
// backoff cap drives the controller sticky at the quarantine level, where
// newly hot regions are permanently barred from compiling.
func TestHealthQuarantineBarsNewRegions(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Workers = 2
	cfg.Chaos = faultinject.Config{Seed: 5, WorkerPanicRate: 1}
	cfg.CheckInvariants = true
	hcfg := smallHealthConfig()
	hcfg.MaxBackoff = 2 // any flap exhausts the backoff
	cfg.Health = hcfg
	sys, ref := runBoth(t, aliasingProgram(2500, 7), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)

	hs := sys.Stats.Health
	if hs.FinalLevel != health.Quarantine {
		t.Fatalf("final level %s, want quarantine: %+v", hs.FinalLevel, hs)
	}
	if sys.Stats.Compile.Quarantined == 0 {
		t.Error("no region quarantined under a panic storm at the quarantine level")
	}
	if sys.Stats.Compile.Installed != 0 {
		t.Errorf("installed %d regions though every compile panicked", sys.Stats.Compile.Installed)
	}
}

// TestMemoCapacityBoundsAndEvicts: a capacity-1 memo must evict on every
// new key, keep its length bounded, and report the evictions in stats —
// all without perturbing correctness.
func TestMemoCapacityBoundsAndEvicts(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Memoize = true
	cfg.Compile.MemoCapacity = 1
	sys, ref := runBoth(t, aliasingProgram(2500, 7), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)
	if sys.Stats.Compile.MemoMisses < 2 {
		t.Skipf("only %d distinct compiles — capacity bound not exercised", sys.Stats.Compile.MemoMisses)
	}
	if sys.Stats.Compile.MemoEvictions == 0 {
		t.Errorf("capacity-1 memo never evicted across %d misses", sys.Stats.Compile.MemoMisses)
	}
	if got := sys.memo.Len(); got > 1 {
		t.Errorf("memo length %d exceeds capacity 1", got)
	}
}

// TestMemoPressureForcesRecompiles: memo-pressure injection evicts the
// LRU entry before lookups, so a workload that would otherwise enjoy
// memo hits sees recompiles instead — deterministically, and without
// changing the computed state.
func TestMemoPressureForcesRecompiles(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Compile.Workers = 2
	cfg.Compile.Memoize = true
	cfg.Chaos = faultinject.Config{Seed: 41, MemoPressureRate: 1}
	cfg.CheckInvariants = true
	sys, ref := runBoth(t, aliasingProgram(2500, 7), cfg, 1<<16)
	assertSameState(t, sys, ref, 1<<16)
	if sys.Stats.Injected.MemoPressure == 0 {
		t.Fatal("rate-1 memo pressure never fired")
	}
	if sys.Stats.Compile.MemoEvictions == 0 {
		t.Error("memo pressure fired but evicted nothing")
	}
}
