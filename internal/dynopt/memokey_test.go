package dynopt

import (
	"testing"

	"smarq/internal/alias"
	"smarq/internal/guest"
)

// TestMemoKeyZeroAllocs pins content-hash key construction at zero heap
// allocations: memoKey runs on the dispatch path at every enqueue, so the
// sorted blacklist/pin encodings must come out of the pooled scratch, not
// fresh slices. The blacklist and pin sets are deliberately nonempty —
// the sorted encodings are the only part of the fold that ever allocated.
func TestMemoKeyZeroAllocs(t *testing.T) {
	sys := New(aliasingProgram(800, 7), &guest.State{}, guest.NewMemory(1<<16), ConfigSMARQ(64))
	if _, err := sys.Run(40_000); err != nil {
		t.Fatal(err)
	}
	entry := -1
	for e := range sys.sbCache {
		entry = e
		break
	}
	if entry < 0 {
		t.Fatal("run formed no superblocks")
	}
	in, err := sys.newCompileInput(entry)
	if err != nil {
		t.Fatal(err)
	}
	in.blacklist = alias.Blacklist{
		alias.MakePair(3, 1): true,
		alias.MakePair(2, 5): true,
		alias.MakePair(0, 4): true,
	}
	in.scfg.PinnedOps = map[int]bool{9: true, 2: true, 5: true}

	want := memoKey(in)
	allocs := testing.AllocsPerRun(200, func() {
		if got := memoKey(in); got != want {
			t.Fatalf("memo key unstable: %#x != %#x", got, want)
		}
	})
	// Under the race detector sync.Pool drops a fraction of Puts, so the
	// pooled scratch occasionally reallocates; the exact-zero pin only
	// holds in a normal build.
	budget := 0.0
	if raceEnabled {
		budget = 2
	}
	if allocs > budget {
		t.Errorf("memoKey allocates %.1f times per call, want <= %.0f", allocs, budget)
	}
}
