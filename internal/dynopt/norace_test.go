//go:build !race

package dynopt

const raceEnabled = false
