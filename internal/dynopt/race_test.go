//go:build race

package dynopt

// raceEnabled widens steady-state allocation budgets: under the race
// detector sync.Pool deliberately drops a fraction of Puts, so pooled
// scratch (the memoKey sort buffers) occasionally reallocates even in
// steady state.
const raceEnabled = true
