package dynopt

import "fmt"

// Tier is one rung of the per-region speculation ladder. Regions start at
// TierFull and the recovery controller demotes them one rung at a time
// when misspeculation rollbacks (alias exceptions and speculation-induced
// faults) cluster, instead of the one-shot speculate/conservative switch
// the paper's runtime sketches. Higher values speculate less.
type Tier int

const (
	// TierFull is full speculation: reordering, store reordering, and
	// speculative load/store elimination, as the hardware mode allows.
	TierFull Tier = iota
	// TierNoStoreReorder disables speculative store-store reordering.
	TierNoStoreReorder
	// TierNoElim additionally disables speculative load/store
	// elimination; loads may still be hoisted across may-alias stores.
	TierNoElim
	// TierConservative disables speculation entirely: memory operations
	// keep program order, no alias registers are allocated, so the
	// region can no longer raise genuine alias exceptions.
	TierConservative
	// TierPinned drops the region from the code cache: the region is
	// interpreter-pinned and executes no compiled code at all.
	TierPinned
)

// NumTiers is the ladder length.
const NumTiers = int(TierPinned) + 1

var tierNames = [NumTiers]string{
	"full", "no-store-reorder", "no-elim", "conservative", "pinned",
}

// String returns the tier name.
func (t Tier) String() string {
	if t < 0 || int(t) >= NumTiers {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return tierNames[t]
}

// RecoveryConfig tunes the tiered deoptimization controller and the code
// cache bound. The zero value is replaced by DefaultRecoveryConfig.
type RecoveryConfig struct {
	// MaxExceptionsPerRegion is the chronic-offender cap: a region whose
	// lifetime alias-exception count passes it jumps straight to
	// TierConservative and stops re-promoting. (Formerly the hidden
	// maxExceptionsPerRegion constant.)
	MaxExceptionsPerRegion int
	// Window is the sliding window of region entries over which the
	// controller measures the rollback rate.
	Window int
	// DemoteThreshold demotes one rung when at least this many
	// misspeculation rollbacks land inside the window.
	DemoteThreshold int
	// StormThreshold demotes immediately after this many consecutive
	// misspeculation rollbacks (a rollback storm), regardless of the
	// window rate.
	StormThreshold int
	// PromoteAfter re-promotes a region one rung after this many
	// consecutive clean commits, scaled by the region's current backoff
	// multiplier.
	PromoteAfter int
	// BackoffFactor multiplies the region's promotion backoff on every
	// demotion (exponential backoff); must be >= 2 so oscillation damps.
	BackoffFactor int
	// MaxBackoff caps the backoff multiplier: once a region's backoff
	// exceeds it the region becomes sticky — it stays at its tier and
	// never re-promotes, which bounds the total number of
	// re-optimizations any region can undergo (no livelock).
	MaxBackoff int
	// CodeCacheCapacity bounds how many compiled regions stay installed;
	// inserting past it evicts the least recently dispatched region, so
	// chronic recompilation cannot grow memory without bound.
	CodeCacheCapacity int
}

// DefaultRecoveryConfig returns the standard ladder tuning: tolerant
// enough that a handful of converging alias exceptions (the paper's
// blacklist path) never demotes, aggressive enough that storms reach the
// interpreter within a few windows.
func DefaultRecoveryConfig() RecoveryConfig {
	return RecoveryConfig{
		MaxExceptionsPerRegion: 24,
		Window:                 32,
		DemoteThreshold:        8,
		StormThreshold:         5,
		PromoteAfter:           64,
		BackoffFactor:          2,
		MaxBackoff:             16,
		CodeCacheCapacity:      256,
	}
}

// Validate rejects nonsensical ladder tunings.
func (r RecoveryConfig) Validate() error {
	switch {
	case r.MaxExceptionsPerRegion <= 0:
		return fmt.Errorf("dynopt: MaxExceptionsPerRegion %d, want > 0", r.MaxExceptionsPerRegion)
	case r.Window <= 0:
		return fmt.Errorf("dynopt: recovery Window %d, want > 0", r.Window)
	case r.DemoteThreshold <= 0 || r.DemoteThreshold > r.Window:
		return fmt.Errorf("dynopt: DemoteThreshold %d, want in [1, Window=%d]", r.DemoteThreshold, r.Window)
	case r.StormThreshold <= 0:
		return fmt.Errorf("dynopt: StormThreshold %d, want > 0", r.StormThreshold)
	case r.PromoteAfter <= 0:
		return fmt.Errorf("dynopt: PromoteAfter %d, want > 0", r.PromoteAfter)
	case r.BackoffFactor < 2:
		return fmt.Errorf("dynopt: BackoffFactor %d, want >= 2", r.BackoffFactor)
	case r.MaxBackoff < 1:
		return fmt.Errorf("dynopt: MaxBackoff %d, want >= 1", r.MaxBackoff)
	case r.CodeCacheCapacity <= 0:
		return fmt.Errorf("dynopt: CodeCacheCapacity %d, want > 0", r.CodeCacheCapacity)
	}
	return nil
}

// RecoveryStats aggregates the controller's run-wide activity.
type RecoveryStats struct {
	// Demotions and Promotions count ladder transitions across all
	// regions.
	Demotions  int64
	Promotions int64
	// Evictions counts compiled regions evicted by the code cache bound.
	Evictions int64
	// PinnedRegions and StickyRegions are the end-of-run counts of
	// regions at TierPinned and of regions that exhausted their backoff
	// (stable forever).
	PinnedRegions int
	StickyRegions int
	// TierDispatches counts region entries executed per tier;
	// TierPinned counts interpreted entries of pinned regions.
	TierDispatches [NumTiers]int64
	// TierRegions is the end-of-run residency: how many regions sit at
	// each tier.
	TierRegions [NumTiers]int
	// InvariantViolations counts rollbacks that failed the checkpoint
	// check (always fatal; nonzero only under injected corruption or a
	// genuine recovery bug).
	InvariantViolations int64
}

// regionRecovery is the per-region controller state.
type regionRecovery struct {
	tier Tier
	// window is a ring buffer over the last Window region entries:
	// true marks a misspeculation rollback.
	window     []bool
	wpos, wlen int
	rollbacks  int // rollbacks currently inside the window
	consec     int // consecutive rollbacks (storm detector)
	clean      int // consecutive clean commits since the last rollback
	backoff    int // promotion backoff multiplier (exponential)
	sticky     bool
	demotions  int
	promotions int
}

func newRegionRecovery(cfg RecoveryConfig) *regionRecovery {
	return &regionRecovery{window: make([]bool, cfg.Window), backoff: 1}
}

// push records one region entry outcome in the sliding window.
func (rr *regionRecovery) push(rollback bool) {
	if rr.wlen == len(rr.window) {
		if rr.window[rr.wpos] {
			rr.rollbacks--
		}
	} else {
		rr.wlen++
	}
	rr.window[rr.wpos] = rollback
	if rollback {
		rr.rollbacks++
	}
	rr.wpos = (rr.wpos + 1) % len(rr.window)
}

func (rr *regionRecovery) resetWindow() {
	for i := range rr.window {
		rr.window[i] = false
	}
	rr.wpos, rr.wlen, rr.rollbacks, rr.consec, rr.clean = 0, 0, 0, 0, 0
}

// recordCommit notes a clean commit and reports whether the region earned
// a one-rung promotion.
func (rr *regionRecovery) recordCommit(cfg RecoveryConfig) bool {
	rr.push(false)
	rr.consec = 0
	rr.clean++
	if rr.sticky || rr.tier == TierFull || rr.clean < cfg.PromoteAfter*rr.backoff {
		return false
	}
	rr.tier--
	rr.promotions++
	rr.resetWindow()
	return true
}

// recordHardeningRollback notes a rollback that produced new pair-level
// hardening (a fresh blacklist entry or newly pinned load): it interrupts
// a clean-commit run but is learning, not storming — blacklist
// convergence bursts at region warmup must not demote — so it stays out
// of the storm and window detectors.
func (rr *regionRecovery) recordHardeningRollback() {
	rr.clean = 0
}

// recordRollback notes an unproductive misspeculation rollback (one that
// taught the optimizer nothing: a spurious exception, a repeated pair, or
// a speculation-induced fault) and reports whether the region was demoted
// one rung (storm or window rate).
func (rr *regionRecovery) recordRollback(cfg RecoveryConfig) bool {
	rr.push(true)
	rr.consec++
	rr.clean = 0
	if rr.tier == TierPinned {
		return false
	}
	if rr.consec < cfg.StormThreshold && rr.rollbacks < cfg.DemoteThreshold {
		return false
	}
	rr.demote(cfg)
	return true
}

// demote moves one rung down and doubles the promotion backoff; past
// MaxBackoff the region becomes sticky.
func (rr *regionRecovery) demote(cfg RecoveryConfig) {
	rr.tier++
	rr.demotions++
	rr.resetWindow()
	rr.backoff *= cfg.BackoffFactor
	if rr.backoff > cfg.MaxBackoff {
		rr.sticky = true
	}
}

// demoteTo jumps down to at least t (the chronic-offender cap) and
// reports whether the tier changed.
func (rr *regionRecovery) demoteTo(cfg RecoveryConfig, t Tier) bool {
	changed := false
	for rr.tier < t {
		rr.demote(cfg)
		changed = true
	}
	return changed
}

// recordPinnedEntry notes one clean interpreted execution of a pinned
// region's entry block and reports whether the region earned re-promotion
// back to compiled (conservative) code.
func (rr *regionRecovery) recordPinnedEntry(cfg RecoveryConfig) bool {
	rr.clean++
	if rr.sticky || rr.clean < cfg.PromoteAfter*rr.backoff {
		return false
	}
	rr.tier = TierConservative
	rr.promotions++
	rr.resetWindow()
	return true
}

// transitions returns the total number of ladder moves this region made —
// the livelock bound the chaos soak asserts on.
func (rr *regionRecovery) transitions() int { return rr.demotions + rr.promotions }
