package dynopt

import (
	"strings"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/sched"
)

func TestRecoveryConfigValidate(t *testing.T) {
	if err := DefaultRecoveryConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutate := func(f func(*RecoveryConfig)) RecoveryConfig {
		c := DefaultRecoveryConfig()
		f(&c)
		return c
	}
	bad := map[string]RecoveryConfig{
		"zero-max-exceptions": mutate(func(c *RecoveryConfig) { c.MaxExceptionsPerRegion = 0 }),
		"zero-window":         mutate(func(c *RecoveryConfig) { c.Window = 0 }),
		"demote-over-window":  mutate(func(c *RecoveryConfig) { c.DemoteThreshold = c.Window + 1 }),
		"zero-demote":         mutate(func(c *RecoveryConfig) { c.DemoteThreshold = 0 }),
		"zero-storm":          mutate(func(c *RecoveryConfig) { c.StormThreshold = 0 }),
		"zero-promote":        mutate(func(c *RecoveryConfig) { c.PromoteAfter = 0 }),
		"backoff-one":         mutate(func(c *RecoveryConfig) { c.BackoffFactor = 1 }),
		"zero-max-backoff":    mutate(func(c *RecoveryConfig) { c.MaxBackoff = 0 }),
		"zero-cache":          mutate(func(c *RecoveryConfig) { c.CodeCacheCapacity = 0 }),
	}
	for name, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s accepted: %+v", name, c)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tooFew := DefaultConfig()
	tooFew.NumAliasRegs = 1
	if tooFew.Validate() == nil {
		t.Error("NumAliasRegs=1 accepted for the ordered queue")
	}
	// ALAT ignores NumAliasRegs, so 0 is fine there.
	alat := ConfigALAT()
	alat.NumAliasRegs = 0
	if err := alat.Validate(); err != nil {
		t.Errorf("ALAT with NumAliasRegs=0 rejected: %v", err)
	}
	cold := DefaultConfig()
	cold.HotThreshold = 0
	if cold.Validate() == nil {
		t.Error("HotThreshold=0 accepted")
	}
	guards := DefaultConfig()
	guards.MaxGuardFails = 0
	if guards.Validate() == nil {
		t.Error("MaxGuardFails=0 accepted")
	}
	ladder := DefaultConfig()
	ladder.Recovery.BackoffFactor = 1
	if ladder.Validate() == nil {
		t.Error("BackoffFactor=1 accepted")
	}
	chaos := DefaultConfig()
	chaos.Chaos.SpuriousAliasRate = 2
	if chaos.Validate() == nil {
		t.Error("SpuriousAliasRate=2 accepted")
	}
	// The zero Recovery value means defaults, so it must validate.
	zeroRec := DefaultConfig()
	zeroRec.Recovery = RecoveryConfig{}
	if err := zeroRec.Validate(); err != nil {
		t.Errorf("zero Recovery rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	cfg := Config{Mode: sched.HWOrdered, NumAliasRegs: 1, HotThreshold: 50, MaxGuardFails: 8}
	New(sumLoopProgram(10), &guest.State{}, guest.NewMemory(1<<12), cfg)
}

func TestLadderStormDemotes(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	for i := 0; i < cfg.StormThreshold-1; i++ {
		if rr.recordRollback(cfg) {
			t.Fatalf("demoted after %d rollbacks, storm threshold is %d", i+1, cfg.StormThreshold)
		}
	}
	if !rr.recordRollback(cfg) {
		t.Fatal("storm threshold reached without demotion")
	}
	if rr.tier != TierNoStoreReorder {
		t.Errorf("tier = %v after one demotion, want %v", rr.tier, TierNoStoreReorder)
	}
	if rr.backoff != cfg.BackoffFactor {
		t.Errorf("backoff = %d after one demotion, want %d", rr.backoff, cfg.BackoffFactor)
	}
}

func TestLadderWindowDemotes(t *testing.T) {
	// Rollbacks interleaved with commits: the storm detector never fires
	// (consec resets each commit) but the window rate accumulates.
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	demoted := false
	for i := 0; i < cfg.DemoteThreshold && !demoted; i++ {
		rr.recordCommit(cfg)
		demoted = rr.recordRollback(cfg)
	}
	if !demoted {
		t.Fatalf("window rate %d/%d never demoted", cfg.DemoteThreshold, 2*cfg.DemoteThreshold)
	}
	if rr.consec >= cfg.StormThreshold {
		t.Fatal("test invalid: the storm detector fired, not the window")
	}
	if rr.tier != TierNoStoreReorder {
		t.Errorf("tier = %v, want %v", rr.tier, TierNoStoreReorder)
	}
}

func TestHardeningRollbacksNeverDemote(t *testing.T) {
	// Blacklist-convergence bursts — every rollback hardens a fresh pair —
	// must leave the ladder alone no matter how long they run.
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	for i := 0; i < 10*cfg.Window; i++ {
		rr.recordHardeningRollback()
	}
	if rr.tier != TierFull || rr.demotions != 0 {
		t.Errorf("tier = %v, demotions = %d after hardening rollbacks, want full/0", rr.tier, rr.demotions)
	}
	// But they do interrupt a clean-commit promotion run.
	rr.tier = TierNoElim
	for i := 0; i < cfg.PromoteAfter-1; i++ {
		rr.recordCommit(cfg)
	}
	rr.recordHardeningRollback()
	if rr.recordCommit(cfg) {
		t.Error("promotion run survived a hardening rollback")
	}
}

func TestLadderPromotionWithBackoff(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	for i := 0; i < cfg.StormThreshold; i++ {
		rr.recordRollback(cfg)
	}
	if rr.tier != TierNoStoreReorder {
		t.Fatalf("setup: tier = %v", rr.tier)
	}
	// One demotion doubled the backoff: promotion needs PromoteAfter *
	// BackoffFactor clean commits, not PromoteAfter.
	need := cfg.PromoteAfter * cfg.BackoffFactor
	for i := 0; i < need-1; i++ {
		if rr.recordCommit(cfg) {
			t.Fatalf("promoted after %d clean commits, want %d", i+1, need)
		}
	}
	if !rr.recordCommit(cfg) {
		t.Fatalf("no promotion after %d clean commits", need)
	}
	if rr.tier != TierFull {
		t.Errorf("tier = %v after promotion, want %v", rr.tier, TierFull)
	}
	if rr.transitions() != 2 {
		t.Errorf("transitions = %d, want 2", rr.transitions())
	}
}

func TestLadderStickyBoundsTransitions(t *testing.T) {
	// An oscillating region — storm, climb back, storm again — is the
	// livelock shape: each oscillation doubles the backoff until it
	// exhausts MaxBackoff and the region goes sticky forever.
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	for round := 0; !rr.sticky; round++ {
		if round > maxDemotionsBound(cfg) {
			t.Fatalf("no stickiness after %d oscillations (backoff=%d)", round, rr.backoff)
		}
		for i := 0; i < cfg.StormThreshold; i++ {
			rr.recordRollback(cfg)
		}
		for i := 0; rr.tier != TierFull && !rr.sticky; i++ {
			if i > 100*cfg.PromoteAfter*cfg.MaxBackoff {
				t.Fatal("region stuck below TierFull while promotable")
			}
			rr.recordCommit(cfg)
		}
	}
	before := rr.transitions()
	tier := rr.tier
	for i := 0; i < 2*cfg.PromoteAfter*cfg.MaxBackoff; i++ {
		if rr.recordCommit(cfg) || rr.recordPinnedEntry(cfg) {
			t.Fatal("sticky region promoted")
		}
	}
	if rr.transitions() != before || rr.tier != tier {
		t.Errorf("sticky region still moved: %d -> %d transitions, tier %v -> %v",
			before, rr.transitions(), tier, rr.tier)
	}
	if before > 2*maxDemotionsBound(cfg) {
		t.Errorf("transitions = %d exceeds the ladder bound %d", before, 2*maxDemotionsBound(cfg))
	}
}

// TestLadderFloorStopsDemoting: a pinned region is already at the floor;
// further rollbacks are absorbed without counter churn.
func TestLadderFloorStopsDemoting(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	for i := 0; i < 100*cfg.StormThreshold; i++ {
		rr.recordRollback(cfg)
	}
	if rr.tier != TierPinned {
		t.Fatalf("tier = %v after sustained rollbacks, want %v", rr.tier, TierPinned)
	}
	if rr.demotions != NumTiers-1 {
		t.Errorf("demotions = %d walking the full ladder, want %d", rr.demotions, NumTiers-1)
	}
}

// maxDemotionsBound is the analytic ceiling on demotions per region: each
// demotion multiplies the backoff by BackoffFactor and past MaxBackoff the
// region is sticky (no more promotions), after which at most NumTiers-1
// further demotions can happen before the floor.
func maxDemotionsBound(cfg RecoveryConfig) int {
	n := 0
	for b := 1; b <= cfg.MaxBackoff; b *= cfg.BackoffFactor {
		n++
	}
	return n + NumTiers - 1
}

func TestDemoteToJumps(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	rr := newRegionRecovery(cfg)
	if !rr.demoteTo(cfg, TierConservative) {
		t.Fatal("demoteTo reported no change from TierFull")
	}
	if rr.tier != TierConservative || rr.demotions != int(TierConservative) {
		t.Errorf("tier = %v demotions = %d, want %v/%d", rr.tier, rr.demotions, TierConservative, int(TierConservative))
	}
	if rr.demoteTo(cfg, TierConservative) {
		t.Error("demoteTo reported a change when already at the target")
	}
}

func TestPinnedEntryRepromotes(t *testing.T) {
	cfg := DefaultRecoveryConfig()
	cfg.MaxBackoff = 1 << 20 // keep the region promotable all the way down
	rr := newRegionRecovery(cfg)
	rr.demoteTo(cfg, TierPinned)
	if rr.sticky {
		t.Fatal("setup: region went sticky")
	}
	need := cfg.PromoteAfter * rr.backoff
	for i := 0; i < need-1; i++ {
		if rr.recordPinnedEntry(cfg) {
			t.Fatalf("re-promoted after %d interpreted entries, want %d", i+1, need)
		}
	}
	if !rr.recordPinnedEntry(cfg) {
		t.Fatal("pinned region never re-promoted")
	}
	if rr.tier != TierConservative {
		t.Errorf("tier = %v after un-pinning, want %v", rr.tier, TierConservative)
	}
}

func TestTierString(t *testing.T) {
	for ti := 0; ti < NumTiers; ti++ {
		if Tier(ti).String() == "" || strings.HasPrefix(Tier(ti).String(), "tier(") {
			t.Errorf("Tier(%d) has no name", ti)
		}
	}
	if Tier(99).String() != "tier(99)" {
		t.Errorf("out-of-range tier string = %q", Tier(99).String())
	}
}

// TestCodeCacheEviction: with a one-region cache, a program with two hot
// loops keeps evicting and recompiling — and still computes the right
// answer.
func TestCodeCacheEviction(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Recovery.CodeCacheCapacity = 1
	const memSize = 1 << 16
	sys, ref := runBoth(t, sumLoopProgram(3000), cfg, memSize)
	assertSameState(t, sys, ref, memSize)
	if sys.Stats.RegionsCompiled < 2 {
		t.Skipf("only %d regions compiled; eviction not exercised", sys.Stats.RegionsCompiled)
	}
	if sys.Stats.Recovery.Evictions == 0 {
		t.Error("capacity-1 cache with 2+ regions never evicted")
	}
}

// TestInvariantCheckerCatchesCorruption: with post-rollback corruption
// injected at rate 1, the always-on checker must turn the very first
// rollback into a fatal, named error.
func TestInvariantCheckerCatchesCorruption(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Chaos = faultinject.Config{Seed: 11, SpuriousAliasRate: 0.5, CorruptRate: 1}
	cfg.CheckInvariants = true
	sys := New(sumLoopProgram(2000), &guest.State{}, guest.NewMemory(1<<16), cfg)
	_, err := sys.Run(50_000_000)
	if err == nil {
		t.Fatal("corrupted rollback not surfaced")
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Errorf("error %q does not name the invariant", err)
	}
	if sys.Stats.Recovery.InvariantViolations == 0 {
		t.Error("InvariantViolations counter not bumped")
	}
}

// TestCompileFailInjection: with compilation failing every time, the
// system must degrade to pure interpretation — and still be correct.
func TestCompileFailInjection(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Chaos = faultinject.Config{Seed: 5, CompileFailRate: 1}
	cfg.CheckInvariants = true
	const memSize = 1 << 16
	sys, ref := runBoth(t, sumLoopProgram(2000), cfg, memSize)
	assertSameState(t, sys, ref, memSize)
	if sys.Stats.RegionsCompiled != 0 {
		t.Errorf("%d regions compiled under CompileFailRate=1", sys.Stats.RegionsCompiled)
	}
	if sys.Stats.Injected.CompileFails == 0 {
		t.Error("no compile failures recorded")
	}
}

// TestSpuriousAliasStormDemotes: spurious exceptions on every dispatch are
// unproductive rollbacks, so the ladder must walk the region down — and
// the run must stay correct because every injected exception rolls back
// cleanly.
func TestSpuriousAliasStormDemotes(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Chaos = faultinject.Config{Seed: 3, SpuriousAliasRate: 1}
	cfg.CheckInvariants = true
	const memSize = 1 << 16
	sys, ref := runBoth(t, sumLoopProgram(3000), cfg, memSize)
	assertSameState(t, sys, ref, memSize)
	if sys.Stats.Injected.SpuriousAliases == 0 {
		t.Fatal("rate-1 spurious alias never fired")
	}
	if sys.Stats.Recovery.Demotions == 0 {
		t.Error("sustained spurious exceptions never demoted")
	}
	if sys.Stats.Recovery.TierDispatches[TierPinned] == 0 {
		t.Error("no region reached the interpreter pin under a total storm")
	}
	bound := maxDemotionsBound(cfg.Recovery) * 2 // promotions <= demotions
	for _, rs := range sys.Stats.Regions {
		if rs.Demotions+rs.Promotions > bound {
			t.Errorf("region B%d made %d ladder moves, bound %d",
				rs.Entry, rs.Demotions+rs.Promotions, bound)
		}
	}
}

// TestGuardFailInjection: forced off-trace exits exercise the drop path
// without corrupting state.
func TestGuardFailInjection(t *testing.T) {
	cfg := ConfigSMARQ(64)
	cfg.Chaos = faultinject.Config{Seed: 9, GuardFailRate: 1}
	cfg.CheckInvariants = true
	const memSize = 1 << 16
	sys, ref := runBoth(t, sumLoopProgram(2000), cfg, memSize)
	assertSameState(t, sys, ref, memSize)
	if sys.Stats.Injected.GuardFails == 0 {
		t.Error("rate-1 guard fail never fired")
	}
	if sys.Stats.RegionsDropped == 0 {
		t.Error("guard-fail storm never dropped a region")
	}
}

// TestTierAccounting: residency sums to the number of tracked regions and
// every reported tier is in range.
func TestTierAccounting(t *testing.T) {
	cfg := ConfigSMARQ(64)
	const memSize = 1 << 13
	sys, _ := runBoth(t, aliasingProgram(4000, 7), cfg, memSize)
	total := 0
	for _, n := range sys.Stats.Recovery.TierRegions {
		total += n
	}
	tracked := 0
	for i := range sys.disp {
		if sys.disp[i].rec != nil {
			tracked++
		}
	}
	if total != tracked {
		t.Errorf("TierRegions sums to %d, %d regions tracked", total, tracked)
	}
	for _, rs := range sys.Stats.Regions {
		if rs.Tier < 0 || int(rs.Tier) >= NumTiers {
			t.Errorf("region B%d reports tier %d", rs.Entry, rs.Tier)
		}
	}
	var dispatched int64
	for _, n := range sys.Stats.Recovery.TierDispatches {
		dispatched += n
	}
	if want := sys.entrySeq + sys.Stats.Recovery.TierDispatches[TierPinned]; dispatched != want {
		t.Errorf("TierDispatches sums to %d, want %d", dispatched, want)
	}
}
