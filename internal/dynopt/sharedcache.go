// The fleet-wide compile cache: a thin, type-opaque wrapper binding
// codecache's generic sharded cache to dynopt's compile outputs. The
// wrapper exists so the concrete payload type (*compileOutput) stays
// unexported while fleet drivers — harness.RunFleet, smarq-bench — can
// still construct one cache, hand it to many Systems via
// CompileConfig.SharedCache, and read its aggregate statistics.
package dynopt

import (
	"smarq/internal/codecache"
	"smarq/internal/telemetry"
)

// CodeCacheOptions configures a shared fleet compile cache.
type CodeCacheOptions struct {
	// Shards is the shard count, rounded up to a power of two; 0 selects
	// codecache.DefaultShards.
	Shards int
	// MaxEntries bounds the cache globally in entries (0 = unbounded).
	MaxEntries int64
	// MaxBytes bounds the cache globally in retained compiled-region
	// bytes, as reported by vliw.CompiledRegion.Bytes (0 = unbounded).
	MaxBytes int64
}

// CodeCache is a sharded content-addressed compile cache shared by many
// concurrently running Systems. Construct one with NewCodeCache, set it
// on every tenant's CompileConfig.SharedCache, and run the Systems on
// separate goroutines: identical regions compile exactly once fleet-wide
// (cross-tenant single-flight), and every tenant's simulated results stay
// byte-identical to its solo run modulo the hit/miss/dedupe counters.
type CodeCache struct {
	cache *codecache.Cache[*compileOutput]
}

// NewCodeCache returns an empty shared compile cache.
func NewCodeCache(opts CodeCacheOptions) *CodeCache {
	return &CodeCache{cache: codecache.New(codecache.Options{
		Shards:     opts.Shards,
		MaxEntries: opts.MaxEntries,
		MaxBytes:   opts.MaxBytes,
	}, compileOutputBytes)}
}

// Stats snapshots the cache counters (exact at quiescence — after every
// tenant using the cache has finished).
func (cc *CodeCache) Stats() codecache.Stats { return cc.cache.Stats() }

// PublishMetrics registers and syncs the cache's telemetry instruments
// against reg (see codecache.Cache.PublishMetrics).
func (cc *CodeCache) PublishMetrics(reg *telemetry.Registry) {
	cc.cache.PublishMetrics(reg)
}
