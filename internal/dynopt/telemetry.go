// Telemetry integration: the systemTelemetry helper owns the System's
// tracer handle and pre-registered metrics instruments, and every emit
// helper below is nil-receiver safe, so a run without telemetry costs one
// pointer check per event site and the enabled hot path costs one ring
// copy plus a few atomic adds — no formatting, no allocation (see the
// TestRunRegionZeroAllocs pins).
package dynopt

import (
	"smarq/internal/health"
	"smarq/internal/telemetry"
)

// init teaches the telemetry encoders the ladder's rung names without
// making the telemetry package depend on dynopt.
func init() {
	telemetry.TierName = func(t int) string {
		return Tier(t).String()
	}
}

// Metric instrument names, as they appear in the -metrics JSON snapshot.
const (
	mCommits         = "dynopt_commits"
	mRollbacks       = "dynopt_rollbacks"
	mAliasExceptions = "dynopt_alias_exceptions"
	mGuardFails      = "dynopt_guard_fails"
	mFaults          = "dynopt_faults"
	mCompiles        = "dynopt_compiles"
	mRecompiles      = "dynopt_recompiles"
	mEvictions       = "dynopt_evictions"
	mDemotions       = "dynopt_demotions"
	mPromotions      = "dynopt_promotions"
	mDrops           = "dynopt_drops"
	mChaos           = "dynopt_chaos_injected"
	mDispatches      = "dynopt_dispatches"
	mInterpInsts     = "interp_insts"

	// Background-compilation instruments, registered only when the
	// feature is on so synchronous runs keep byte-identical -metrics
	// snapshots.
	mCompileEnqueues = "dynopt_compile_enqueues"
	mCompileInstalls = "dynopt_compile_installs"
	mCompileCancels  = "dynopt_compile_cancels"
	mMemoHits        = "dynopt_memo_hits"
	mMemoMisses      = "dynopt_memo_misses"
	mMemoEvictions   = "dynopt_memo_evictions"
	gCompileQueue    = "compile_queue_depth"
	gMemoSize        = "compile_memo_size"

	// Host-fault and health instruments, registered only when host chaos
	// or the health controller is configured on (same golden-snapshot
	// discipline as above).
	mHostFaults       = "dynopt_host_faults"
	mQuarantines      = "dynopt_quarantined"
	mHealthDemotions  = "dynopt_health_demotions"
	mHealthPromotions = "dynopt_health_promotions"
	gHealthLevel      = "health_level"

	hRollbackCost   = "rollback_cost_cycles"
	hRegionSize     = "region_size_ops"
	hAliasRegs      = "alias_regs_working_set"
	hOccupancy      = "queue_occupancy"
	hCompile        = "compile_cycles"
	hCompileLatency = "compile_latency_cycles"

	// Observability-plane additions: install-to-dispatch lag is always
	// registered with metrics on; dedupe-wait only with a shared cache
	// (same conditional-registration discipline as the instruments above).
	hInstallLag = "install_dispatch_lag_cycles"
	hDedupeWait = "dedupe_wait_cycles"
	mTierFamily = "dynopt_tier_dispatches"
)

// systemTelemetry is the per-System view of an enabled telemetry bundle:
// the tracer plus every instrument resolved once at construction so the
// hot path never touches the registry.
type systemTelemetry struct {
	tr *telemetry.Tracer

	commits         *telemetry.Counter
	rollbacks       *telemetry.Counter
	aliasExceptions *telemetry.Counter
	guardFails      *telemetry.Counter
	faults          *telemetry.Counter
	compiles        *telemetry.Counter
	recompiles      *telemetry.Counter
	evictions       *telemetry.Counter
	demotions       *telemetry.Counter
	promotions      *telemetry.Counter
	drops           *telemetry.Counter
	chaos           *telemetry.Counter
	dispatches      *telemetry.Counter

	rollbackCost *telemetry.Histogram
	regionSize   *telemetry.Histogram
	aliasRegs    *telemetry.Histogram
	occupancy    *telemetry.Histogram
	compileCost  *telemetry.Histogram

	// installLag tracks simulated cycles between a compiled region being
	// installed in the code cache and its first dispatch. tierDispatches
	// splits the dispatch count by speculation tier as labeled series
	// (dynopt_tier_dispatches{tier="..."}); instruments are resolved per
	// rung at construction so the hot path stays one array index plus an
	// atomic add.
	installLag     *telemetry.Histogram
	tierDispatches [NumTiers]*telemetry.Counter

	// Background-compilation instruments (nil — and therefore inert —
	// unless the feature is configured on).
	compileEnqueues *telemetry.Counter
	compileInstalls *telemetry.Counter
	compileCancels  *telemetry.Counter
	memoHits        *telemetry.Counter
	memoMisses      *telemetry.Counter
	memoEvictions   *telemetry.Counter
	queueDepth      *telemetry.Gauge
	memoSize        *telemetry.Gauge
	compileLatency  *telemetry.Histogram

	// dedupeWait tracks how long a deduped background compile waited on
	// the cross-tenant flight it joined (nil without a shared cache).
	dedupeWait *telemetry.Histogram

	// Host-fault and health instruments (nil unless host chaos or the
	// health controller is on).
	hostFaults       *telemetry.Counter
	quarantines      *telemetry.Counter
	healthDemotions  *telemetry.Counter
	healthPromotions *telemetry.Counter
	healthLevel      *telemetry.Gauge

	// lastMemoEvictions is the memo's eviction count at the last memoTable
	// call: capacity evictions happen inside Memo.Put, which has no
	// telemetry access, so the counter is synced by diffing.
	lastMemoEvictions int64
}

// newSystemTelemetry resolves instruments against the bundle. Returns nil
// when the bundle is nil or empty, so System.tel stays a single nil check.
func newSystemTelemetry(cfg *Config) *systemTelemetry {
	t, cc := cfg.Telemetry, cfg.Compile
	if t == nil || (t.Events == nil && t.Metrics == nil) {
		return nil
	}
	reg := t.Metrics // nil Registry hands out nil (inert) instruments
	st := &systemTelemetry{
		tr: t.Events,

		commits:         reg.Counter(mCommits),
		rollbacks:       reg.Counter(mRollbacks),
		aliasExceptions: reg.Counter(mAliasExceptions),
		guardFails:      reg.Counter(mGuardFails),
		faults:          reg.Counter(mFaults),
		compiles:        reg.Counter(mCompiles),
		recompiles:      reg.Counter(mRecompiles),
		evictions:       reg.Counter(mEvictions),
		demotions:       reg.Counter(mDemotions),
		promotions:      reg.Counter(mPromotions),
		drops:           reg.Counter(mDrops),
		chaos:           reg.Counter(mChaos),
		dispatches:      reg.Counter(mDispatches),

		rollbackCost: reg.Histogram(hRollbackCost, telemetry.Pow2Bounds(16, 1024)),
		regionSize:   reg.Histogram(hRegionSize, telemetry.Pow2Bounds(4, 256)),
		aliasRegs:    reg.Histogram(hAliasRegs, telemetry.Pow2Bounds(1, 64)),
		occupancy:    reg.Histogram(hOccupancy, telemetry.Pow2Bounds(1, 64)),
		compileCost:  reg.Histogram(hCompile, telemetry.Pow2Bounds(64, 4096)),

		installLag: reg.Histogram(hInstallLag, telemetry.Pow2Bounds(64, 65536)),
	}
	for tier := 0; tier < NumTiers; tier++ {
		st.tierDispatches[tier] = reg.Counter(telemetry.Labeled(
			mTierFamily, telemetry.Label{Name: "tier", Value: Tier(tier).String()}))
	}
	// Conditional registration: the -metrics snapshot includes every
	// registered key (even zero-valued), so runs without the feature must
	// not grow new keys.
	if cc.Workers > 0 {
		st.compileEnqueues = reg.Counter(mCompileEnqueues)
		st.compileInstalls = reg.Counter(mCompileInstalls)
		st.compileCancels = reg.Counter(mCompileCancels)
		st.queueDepth = reg.Gauge(gCompileQueue)
		st.compileLatency = reg.Histogram(hCompileLatency, telemetry.Pow2Bounds(256, 65536))
	}
	if cc.Memoize || cc.SharedCache != nil {
		// Shared-cache lookups reuse the memo hit/miss instruments; the
		// table-size gauge and eviction counter stay zero there (the
		// fleet-global view is codecache's PublishMetrics).
		st.memoHits = reg.Counter(mMemoHits)
		st.memoMisses = reg.Counter(mMemoMisses)
		st.memoEvictions = reg.Counter(mMemoEvictions)
		st.memoSize = reg.Gauge(gMemoSize)
	}
	if cc.SharedCache != nil {
		st.dedupeWait = reg.Histogram(hDedupeWait, telemetry.Pow2Bounds(64, 65536))
	}
	if cfg.Chaos.HostEnabled() || cfg.Health.Enabled() {
		st.hostFaults = reg.Counter(mHostFaults)
		st.quarantines = reg.Counter(mQuarantines)
	}
	if cfg.Health.Enabled() {
		st.healthDemotions = reg.Counter(mHealthDemotions)
		st.healthPromotions = reg.Counter(mHealthPromotions)
		st.healthLevel = reg.Gauge(gHealthLevel)
	}
	return st
}

// now is the simulated cycle clock events are stamped with: the sum of
// the per-category cycle accounts, which only ever grows as the run
// proceeds (TotalCycles itself is derived once in finalize).
func (s *System) now() int64 {
	st := &s.Stats
	return st.InterpCycles + st.RegionCycles + st.RollbackCycles +
		st.OptCycles + st.SchedCycles
}

func (st *systemTelemetry) regionCompile(cycle int64, entry int, tier Tier, recompile bool, rs *RegionStats) {
	if st == nil {
		return
	}
	if recompile {
		st.recompiles.Add(1)
	} else {
		st.compiles.Add(1)
	}
	st.regionSize.Observe(int64(rs.SeqLen))
	st.aliasRegs.Observe(int64(rs.Alloc.WorkingSet))
	st.compileCost.Observe(rs.Cycles)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindCompile,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cost: rs.Cycles,
		A:    int64(rs.SeqLen), B: int64(rs.GuestInsts),
		C: int64(rs.MemOps), D: int64(rs.Alloc.WorkingSet),
	})
}

// compileEnqueue records a background compilation entering the queue:
// cost is the modelled latency, depth the queue depth after the enqueue,
// memoHit whether the memo already held the result.
func (st *systemTelemetry) compileEnqueue(cycle int64, entry int, tier Tier, cost int64, depth int, memoHit bool) {
	if st == nil {
		return
	}
	st.compileEnqueues.Add(1)
	if memoHit {
		st.memoHits.Add(1)
	} else if st.memoHits != nil {
		// Only count misses when memoization is on at all; the nil check
		// on the hit counter is the cheapest "is it on" signal.
		st.memoMisses.Add(1)
	}
	st.queueDepth.Set(int64(depth))
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindCompileEnqueue,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cost: cost, A: int64(depth), B: b2i(memoHit),
	})
}

// compileInstalled records the metrics side of an install (the event side
// is the existing KindCompile emitted by regionCompile).
func (st *systemTelemetry) compileInstalled(latency int64, depth int) {
	if st == nil {
		return
	}
	st.compileInstalls.Add(1)
	st.compileLatency.Observe(latency)
	st.queueDepth.Set(int64(depth))
}

// memoLookup counts a content-hash memo lookup on the synchronous path
// (the background path counts inside compileEnqueue).
func (st *systemTelemetry) memoLookup(hit bool) {
	if st == nil {
		return
	}
	if hit {
		st.memoHits.Add(1)
	} else {
		st.memoMisses.Add(1)
	}
}

// compileCancel records a pending compilation being thrown away.
func (st *systemTelemetry) compileCancel(cycle int64, entry int, tier Tier, cause telemetry.Cause, depth int) {
	if st == nil {
		return
	}
	st.compileCancels.Add(1)
	st.queueDepth.Set(int64(depth))
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindCompileCancel,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause,
	})
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (st *systemTelemetry) dispatch(cycle int64, entry int, tier Tier) {
	if st == nil {
		return
	}
	st.dispatches.Add(1)
	st.tierDispatches[tier].Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindDispatch,
		Region: int32(entry), Tier: int8(tier), To: -1,
	})
}

// firstDispatch records the install-to-dispatch lag the first time a
// freshly installed region is actually executed.
func (st *systemTelemetry) firstDispatch(lag int64) {
	if st == nil {
		return
	}
	st.installLag.Observe(lag)
}

// dedupeWaited records how long a deduped background compile sat behind
// the cross-tenant flight that produced its code.
func (st *systemTelemetry) dedupeWaited(wait int64) {
	if st == nil {
		return
	}
	st.dedupeWait.Observe(wait)
}

func (st *systemTelemetry) commit(cycle int64, entry int, tier Tier, cost int64, arHighWater, storesBuffered int) {
	if st == nil {
		return
	}
	st.commits.Add(1)
	st.occupancy.Observe(int64(arHighWater))
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindCommit,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cost: cost,
		A:    int64(arHighWater), B: int64(storesBuffered),
	})
}

// rollback is the shared non-commit bookkeeping: every alias, guard and
// fault outcome routes through it.
func (st *systemTelemetry) rollback(cycle int64, entry int, tier Tier, cause telemetry.Cause, cost int64, opsExecuted int) {
	st.rollbacks.Add(1)
	st.rollbackCost.Observe(cost)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindRollback,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause, Cost: cost, A: int64(opsExecuted),
	})
}

// aliasRollback records an alias-exception outcome (cause distinguishes
// genuine from injected); checker/origin identify the violated pair, or
// -1/-1 when there is none (injected exceptions carry no pair).
func (st *systemTelemetry) aliasRollback(cycle int64, entry int, tier Tier, cause telemetry.Cause, cost int64, opsExecuted, checker, origin int) {
	if st == nil {
		return
	}
	st.aliasExceptions.Add(1)
	st.rollback(cycle, entry, tier, cause, cost, opsExecuted)
	if checker >= 0 {
		st.tr.Emit(telemetry.Event{
			Cycle: cycle, Kind: telemetry.KindAliasException,
			Region: int32(entry), Tier: int8(tier), To: -1,
			A: int64(checker), B: int64(origin),
		})
	}
}

// guardRollback records an off-trace side exit and its fail streak.
func (st *systemTelemetry) guardRollback(cycle int64, entry int, tier Tier, cause telemetry.Cause, cost int64, opsExecuted, streak int) {
	if st == nil {
		return
	}
	st.guardFails.Add(1)
	st.rollback(cycle, entry, tier, cause, cost, opsExecuted)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindGuardFail,
		Region: int32(entry), Tier: int8(tier), To: -1,
		A: int64(streak),
	})
}

// faultRollback records a speculation-induced guest fault.
func (st *systemTelemetry) faultRollback(cycle int64, entry int, tier Tier, cost int64, opsExecuted int) {
	if st == nil {
		return
	}
	st.faults.Add(1)
	st.rollback(cycle, entry, tier, telemetry.CauseFault, cost, opsExecuted)
}

// tierMove emits one ladder move. from/to are the rungs on either side;
// cause qualifies demotions (CauseNone for promotions). Demotions may
// jump several rungs (the chronic cap); the counter tracks rungs moved so
// it matches Stats.Recovery.Demotions, while promotions are always single
// steps.
func (st *systemTelemetry) tierMove(cycle int64, entry int, from, to Tier, cause telemetry.Cause) {
	if st == nil || from == to {
		return
	}
	kind := telemetry.KindDemote
	if to < from {
		kind = telemetry.KindPromote
		st.promotions.Add(1)
	} else {
		st.demotions.Add(int64(to - from))
	}
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: kind,
		Region: int32(entry), Tier: int8(from), To: int8(to),
		Cause: cause,
	})
}

func (st *systemTelemetry) evict(cycle int64, entry int, tier Tier) {
	if st == nil {
		return
	}
	st.evictions.Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindEvict,
		Region: int32(entry), Tier: int8(tier), To: -1,
	})
}

func (st *systemTelemetry) drop(cycle int64, entry int, tier Tier, cause telemetry.Cause) {
	if st == nil {
		return
	}
	st.drops.Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindDrop,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause,
	})
}

func (st *systemTelemetry) chaosInjected(cycle int64, entry int, tier Tier, cause telemetry.Cause) {
	if st == nil {
		return
	}
	st.chaos.Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindChaos,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause,
	})
}

// hostFault records one contained host-side compile fault (worker panic,
// watchdog kill, rejected poisoned result).
func (st *systemTelemetry) hostFault(cycle int64, entry int, tier Tier, cause telemetry.Cause) {
	if st == nil {
		return
	}
	st.hostFaults.Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindHostFault,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause,
	})
}

// quarantine records a region being permanently barred from compiling.
func (st *systemTelemetry) quarantine(cycle int64, entry int, tier Tier, cause telemetry.Cause) {
	if st == nil {
		return
	}
	st.quarantines.Add(1)
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindQuarantine,
		Region: int32(entry), Tier: int8(tier), To: -1,
		Cause: cause,
	})
}

// healthMove records one global degradation-ladder transition. The
// event's from/to payloads are health levels, not speculation tiers, so
// Tier/To stay -1 and the levels ride in the A/B slots.
func (st *systemTelemetry) healthMove(cycle int64, mv health.Move, cause telemetry.Cause) {
	if st == nil {
		return
	}
	if mv.To > mv.From {
		st.healthDemotions.Add(1)
	} else {
		st.healthPromotions.Add(1)
	}
	st.healthLevel.Set(int64(mv.To))
	st.tr.Emit(telemetry.Event{
		Cycle: cycle, Kind: telemetry.KindHealth,
		Region: -1, Tier: -1, To: -1,
		A: int64(mv.From), B: int64(mv.To),
		Cause: cause,
	})
}

// memoTable refreshes the memo-size gauge and eviction counter after a
// memo mutation (an insert past capacity, or injected memo pressure).
func (st *systemTelemetry) memoTable(size int, evictions int64) {
	if st == nil {
		return
	}
	st.memoSize.Set(int64(size))
	if d := evictions - st.lastMemoEvictions; d > 0 {
		st.memoEvictions.Add(d)
		st.lastMemoEvictions = evictions
	}
}
