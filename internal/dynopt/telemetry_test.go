package dynopt

import (
	"bytes"
	"testing"

	"smarq/internal/faultinject"
	"smarq/internal/guest"
	"smarq/internal/telemetry"
)

// captureSink accumulates every event a tracer streams out (tests only).
type captureSink struct{ events []telemetry.Event }

func (s *captureSink) WriteEvents(evs []telemetry.Event) error {
	s.events = append(s.events, evs...)
	return nil
}
func (s *captureSink) Close() error { return nil }

// fanSink forwards one event stream to several sinks, so a single run can
// produce JSONL and Chrome encodings of identical events.
type fanSink struct{ sinks []telemetry.Sink }

func (s *fanSink) WriteEvents(evs []telemetry.Event) error {
	for _, sub := range s.sinks {
		if err := sub.WriteEvents(evs); err != nil {
			return err
		}
	}
	return nil
}

func (s *fanSink) Close() error {
	for _, sub := range s.sinks {
		if err := sub.Close(); err != nil {
			return err
		}
	}
	return nil
}

// TestTraceDeterminism: two identical runs (same program, config and
// chaos seed) must produce byte-identical JSONL traces, Chrome traces and
// metrics snapshots — the property that makes traces diffable across CI
// reruns and bisections.
func TestTraceDeterminism(t *testing.T) {
	runOnce := func() (jsonl, chrome, metrics []byte) {
		var jb, cb, mb bytes.Buffer
		cfg := ConfigSMARQ(16)
		cfg.Chaos = faultinject.Default(11)
		tel := &telemetry.Telemetry{
			Events:  telemetry.NewTracer(0, &fanSink{sinks: []telemetry.Sink{telemetry.NewJSONLSink(&jb), telemetry.NewChromeSink(&cb)}}),
			Metrics: telemetry.NewRegistry(),
		}
		cfg.Telemetry = tel
		sys := New(aliasingProgram(2500, 7), &guest.State{}, guest.NewMemory(1<<16), cfg)
		if halted, err := sys.Run(50_000_000); err != nil || !halted {
			t.Fatalf("halted=%v err=%v", halted, err)
		}
		if err := tel.Events.Close(); err != nil {
			t.Fatalf("close tracer: %v", err)
		}
		if err := tel.Metrics.WriteJSON(&mb); err != nil {
			t.Fatalf("write metrics: %v", err)
		}
		return jb.Bytes(), cb.Bytes(), mb.Bytes()
	}

	j1, c1, m1 := runOnce()
	j2, c2, m2 := runOnce()
	if len(j1) == 0 || !bytes.Contains(j1, []byte(`"ev":"rollback"`)) {
		t.Fatalf("trace looks inert: %d bytes, no rollbacks", len(j1))
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("JSONL traces differ across identical runs (%d vs %d bytes)", len(j1), len(j2))
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("Chrome traces differ across identical runs (%d vs %d bytes)", len(c1), len(c2))
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshots differ across identical runs:\n%s\nvs\n%s", m1, m2)
	}
}

// TestTelemetryMatchesStats is the observability layer's consistency
// guarantee under chaos: every counter in the metrics registry and every
// event in the trace must agree with the run's own Stats accounting —
// per-tier dispatches sum to the outcome totals, ladder moves match the
// recovery counters, and residency is consistent at end of run.
func TestTelemetryMatchesStats(t *testing.T) {
	progs := map[string]*guest.Program{
		"sumloop":  sumLoopProgram(3000),
		"aliasing": aliasingProgram(3000, 5),
	}
	for name, prog := range progs {
		for _, seed := range []int64{1, 2, 3} {
			cfg := ConfigSMARQ(64)
			cfg.Chaos = faultinject.Default(seed)
			cfg.CheckInvariants = true
			sink := &captureSink{}
			reg := telemetry.NewRegistry()
			cfg.Telemetry = &telemetry.Telemetry{Events: telemetry.NewTracer(0, sink), Metrics: reg}
			sys := New(prog, &guest.State{}, guest.NewMemory(1<<16), cfg)
			if halted, err := sys.Run(50_000_000); err != nil || !halted {
				t.Fatalf("%s/seed%d: halted=%v err=%v", name, seed, halted, err)
			}
			if err := cfg.Telemetry.Events.Flush(); err != nil {
				t.Fatalf("%s/seed%d: flush: %v", name, seed, err)
			}
			st := &sys.Stats

			// Tally the event stream.
			var byKind [16]int64
			var demoteRungs, promotes int64
			for _, e := range sink.events {
				byKind[e.Kind]++
				switch e.Kind {
				case telemetry.KindDemote:
					demoteRungs += int64(e.To - e.Tier)
				case telemetry.KindPromote:
					promotes++
				}
			}

			// Per-tier dispatches sum to the outcome totals: every
			// compiled dispatch ends in exactly one of the four outcomes,
			// and pinned "dispatches" are interpreted entries.
			var compiledDispatches int64
			for tier := TierFull; tier < TierPinned; tier++ {
				compiledDispatches += st.Recovery.TierDispatches[tier]
			}
			outcomes := st.Commits + st.AliasExceptions + st.GuardFails + st.Faults
			if compiledDispatches != outcomes {
				t.Errorf("%s/seed%d: compiled dispatches %d != outcome total %d",
					name, seed, compiledDispatches, outcomes)
			}

			// Trace events agree with Stats.
			checks := []struct {
				what string
				got  int64
				want int64
			}{
				{"dispatch events", byKind[telemetry.KindDispatch], compiledDispatches},
				{"commit events", byKind[telemetry.KindCommit], st.Commits},
				{"rollback events", byKind[telemetry.KindRollback], st.AliasExceptions + st.GuardFails + st.Faults},
				{"guard-fail events", byKind[telemetry.KindGuardFail], st.GuardFails},
				{"promote events", promotes, st.Recovery.Promotions},
				{"demoted rungs", demoteRungs, st.Recovery.Demotions},
				{"evict events", byKind[telemetry.KindEvict], st.Recovery.Evictions},
				{"chaos events", byKind[telemetry.KindChaos],
					st.Injected.SpuriousAliases + st.Injected.GuardFails + st.Injected.CompileFails + st.Injected.Corruptions},

				// The metrics registry agrees with both.
				{"commits counter", reg.Counter(mCommits).Value(), st.Commits},
				{"rollbacks counter", reg.Counter(mRollbacks).Value(), st.AliasExceptions + st.GuardFails + st.Faults},
				{"alias-exceptions counter", reg.Counter(mAliasExceptions).Value(), st.AliasExceptions},
				{"guard-fails counter", reg.Counter(mGuardFails).Value(), st.GuardFails},
				{"faults counter", reg.Counter(mFaults).Value(), st.Faults},
				{"dispatches counter", reg.Counter(mDispatches).Value(), compiledDispatches},
				{"demotions counter", reg.Counter(mDemotions).Value(), st.Recovery.Demotions},
				{"promotions counter", reg.Counter(mPromotions).Value(), st.Recovery.Promotions},
				{"evictions counter", reg.Counter(mEvictions).Value(), st.Recovery.Evictions},
				{"interp-insts counter", reg.Counter(mInterpInsts).Value(), st.InterpretedInsts},
				{"compiles+recompiles counters", reg.Counter(mCompiles).Value() + reg.Counter(mRecompiles).Value(),
					int64(st.RegionsCompiled + st.Recompiles)},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("%s/seed%d: %s = %d, Stats say %d", name, seed, c.what, c.got, c.want)
				}
			}

			// The labeled per-tier dispatch series agree with the Stats
			// split. Only compiled tiers dispatch through runRegion; the
			// pinned rung's "dispatches" are interpreted entries and never
			// touch the dispatch instruments.
			for tier := TierFull; tier < TierPinned; tier++ {
				key := telemetry.Labeled(mTierFamily,
					telemetry.Label{Name: "tier", Value: tier.String()})
				if got := reg.Counter(key).Value(); got != st.Recovery.TierDispatches[tier] {
					t.Errorf("%s/seed%d: %s = %d, Stats say %d",
						name, seed, key, got, st.Recovery.TierDispatches[tier])
				}
			}
			pinKey := telemetry.Labeled(mTierFamily,
				telemetry.Label{Name: "tier", Value: TierPinned.String()})
			if got := reg.Counter(pinKey).Value(); got != 0 {
				t.Errorf("%s/seed%d: pinned tier counter = %d, want 0 (interpreted entries)",
					name, seed, got)
			}

			// End-of-run residency is internally consistent.
			rec := &st.Recovery
			if rec.PinnedRegions != rec.TierRegions[TierPinned] {
				t.Errorf("%s/seed%d: PinnedRegions %d != TierRegions[pinned] %d",
					name, seed, rec.PinnedRegions, rec.TierRegions[TierPinned])
			}
			var perRegionDem, perRegionProm int64
			for _, rs := range st.Regions {
				perRegionDem += int64(rs.Demotions)
				perRegionProm += int64(rs.Promotions)
			}
			if perRegionDem != rec.Demotions {
				t.Errorf("%s/seed%d: per-region demotions %d != Recovery.Demotions %d",
					name, seed, perRegionDem, rec.Demotions)
			}
			if perRegionProm != rec.Promotions {
				t.Errorf("%s/seed%d: per-region promotions %d != Recovery.Promotions %d",
					name, seed, perRegionProm, rec.Promotions)
			}
		}
	}
}

// commitLoopProgram is a single hot loop with loads and stores and no
// setup loop, so the system's code cache ends up with exactly one region
// and a budget-stopped run parks the guest at its entry.
func commitLoopProgram(n int64) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1024)
	b.Li(2, 8192)
	b.Li(3, 0)
	b.Li(4, n)
	b.Li(5, 0)
	loop := b.NewBlock()
	b.Muli(6, 3, 8)
	b.Add(7, 1, 6)
	b.Ld8(8, 7, 0)
	b.Add(5, 5, 8)
	b.Add(9, 2, 6)
	b.St8(9, 0, 5)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, loop)
	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

// warmCommitSystem builds a system over commitLoopProgram, runs it far
// enough to compile and warm the loop region, and returns the system with
// its single cached region — parked at the loop entry, with enough
// iterations left that every subsequent dispatch commits.
func warmCommitSystem(t *testing.T, tel *telemetry.Telemetry) (*System, int, *compiled) {
	t.Helper()
	cfg := ConfigSMARQ(64)
	cfg.Telemetry = tel
	sys := New(commitLoopProgram(1_000_000), &guest.State{}, guest.NewMemory(1<<16), cfg)
	if halted, err := sys.Run(10_000); err != nil || halted {
		t.Fatalf("warm-up: halted=%v err=%v", halted, err)
	}
	if sys.installed != 1 {
		t.Fatalf("cache holds %d regions, want 1", sys.installed)
	}
	for entry := range sys.disp {
		c := sys.disp[entry].code
		if c == nil {
			continue
		}
		if next := sys.runRegion(entry, c); next != entry {
			t.Fatalf("warm dispatch left the loop: next=%d, want %d", next, entry)
		}
		return sys, entry, c
	}
	panic("unreachable")
}

// TestRunRegionZeroAllocs pins the full runtime dispatch path — recovery
// bookkeeping, execution, commit, stats — at zero heap allocations per
// region entry, both with telemetry disabled (the nil-check path) and
// with a flight-recorder tracer plus metrics registry enabled (ring copy
// plus atomic adds, no encoding).
func TestRunRegionZeroAllocs(t *testing.T) {
	cases := map[string]*telemetry.Telemetry{
		"telemetry-off": nil,
		"telemetry-on": {
			Events:  telemetry.NewTracer(0, nil), // flight recorder: no sink, no drain
			Metrics: telemetry.NewRegistry(),
		},
	}
	for name, tel := range cases {
		t.Run(name, func(t *testing.T) {
			sys, entry, c := warmCommitSystem(t, tel)
			before := sys.Stats.Commits
			allocs := testing.AllocsPerRun(200, func() {
				if next := sys.runRegion(entry, c); next != entry {
					t.Fatalf("dispatch left the loop: next=%d", next)
				}
			})
			if allocs != 0 {
				t.Errorf("runRegion allocates %v times per entry, want 0", allocs)
			}
			if sys.Stats.Commits <= before {
				t.Fatal("pinned loop did not commit")
			}
		})

		// Same pin with the fresh flag re-armed every entry, so the
		// install-to-dispatch lag observation runs on each iteration —
		// the histogram path must stay allocation-free too.
		t.Run(name+"/fresh", func(t *testing.T) {
			sys, entry, c := warmCommitSystem(t, tel)
			allocs := testing.AllocsPerRun(200, func() {
				c.fresh = true
				if next := sys.runRegion(entry, c); next != entry {
					t.Fatalf("dispatch left the loop: next=%d", next)
				}
			})
			if allocs != 0 {
				t.Errorf("runRegion (fresh install) allocates %v times per entry, want 0", allocs)
			}
			if tel != nil {
				if n := tel.Metrics.Histogram(hInstallLag, nil).Count(); n == 0 {
					t.Error("install-lag histogram never observed")
				}
			}
		})
	}
}
