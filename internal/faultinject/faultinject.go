// Package faultinject provides deterministic, seed-driven fault injection
// ("chaos") for the dynamic optimization pipeline, plus the rollback
// invariant checker the chaos harness runs with.
//
// Production dynamic optimizers live or die on graceful degradation under
// hostile aliasing behaviour: spurious hardware alias exceptions, traces
// that stop matching behaviour (guard-fail storms), translator failures,
// and — worst of all — rollbacks that do not actually restore the
// checkpoint. None of those can be provoked on demand from guest code
// alone, so this package fakes them at the runtime layer.
//
// Determinism: the injector is a sequence of Bernoulli draws from a
// private PRNG. Each probe (SpuriousAlias, GuardFail, CompileFail,
// CorruptState, and the host fault classes WorkerPanic, CompileHang,
// PoisonResult, MemoPressure) consumes exactly one draw, and every probe
// runs on the simulation thread at a point fixed by the simulated clock,
// so for a fixed seed and workload the injected fault pattern is exactly
// reproducible — `smarq-run -chaos-seed N` replays a CI chaos failure
// bit-for-bit, at any background worker count.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"

	"smarq/internal/guest"
)

// Config selects the injection rates. The zero value disables injection
// entirely. Every rate is the per-opportunity probability in [0, 1]:
// alias/guard rates are drawn once per region dispatch, the compile rate
// once per compilation, and the corrupt rate once per rollback.
type Config struct {
	// Seed drives the injector's PRNG. Runs with equal seeds, rates and
	// workloads inject identical fault patterns.
	Seed int64
	// SpuriousAliasRate forces alias exceptions that no speculation
	// caused — hardware false positives (the paper's §2.4 energy/precision
	// discussion; the ALAT is especially prone to them).
	SpuriousAliasRate float64
	// GuardFailRate forces off-trace side exits, simulating traces that
	// no longer match behaviour (guard-fail storms).
	GuardFailRate float64
	// CompileFailRate makes region compilation fail, simulating
	// translator resource exhaustion.
	CompileFailRate float64
	// CorruptRate perturbs one architectural register after a rollback,
	// simulating post-rollback state divergence — exists to prove the
	// invariant checker catches broken recovery, never for soak runs that
	// assert state equality.
	CorruptRate float64

	// Host fault classes: faults of the *host-side* compile machinery
	// rather than the simulated guest. All are drawn on the simulation
	// thread when a compile job is about to be handed to a worker (or run
	// synchronously), so the pattern is identical at any worker count.

	// WorkerPanicRate makes the compile job panic inside the worker. The
	// pipeline's recover() converts it into a failed-compile event and the
	// region is quarantined; the process must never die.
	WorkerPanicRate float64
	// CompileHangRate simulates a compile overrunning its watchdog
	// deadline in simulated cycles: the result is discarded at the
	// deadline instead of installing. Background path only (the
	// synchronous path has no deadline to overrun).
	CompileHangRate float64
	// PoisonResultRate corrupts the compile result (the frozen schedule or
	// region slab) after the pipeline runs. Install-time validation — the
	// content checksum and structural invariants — must reject it; a
	// poisoned region is never memoized or dispatched.
	PoisonResultRate float64
	// MemoPressureRate simulates host memory pressure on the compile memo:
	// when it fires, the least-recently-used memoized region is evicted
	// just before the lookup, forcing recompiles of hot/cold-flip regions.
	MemoPressureRate float64
}

// Enabled reports whether any injection can fire.
func (c Config) Enabled() bool {
	return c.SpuriousAliasRate > 0 || c.GuardFailRate > 0 ||
		c.CompileFailRate > 0 || c.CorruptRate > 0 || c.HostEnabled()
}

// HostEnabled reports whether any host fault class can fire.
func (c Config) HostEnabled() bool {
	return c.WorkerPanicRate > 0 || c.CompileHangRate > 0 ||
		c.PoisonResultRate > 0 || c.MemoPressureRate > 0
}

// Validate rejects rates outside [0, 1].
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"SpuriousAliasRate", c.SpuriousAliasRate},
		{"GuardFailRate", c.GuardFailRate},
		{"CompileFailRate", c.CompileFailRate},
		{"CorruptRate", c.CorruptRate},
		{"WorkerPanicRate", c.WorkerPanicRate},
		{"CompileHangRate", c.CompileHangRate},
		{"PoisonResultRate", c.PoisonResultRate},
		{"MemoPressureRate", c.MemoPressureRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("faultinject: %s = %v outside [0, 1]", r.name, r.v)
		}
	}
	return nil
}

// Default returns the standard chaos mix for soak runs and `smarq-run
// -chaos-seed`: frequent spurious alias exceptions and guard failures,
// occasional compile failures, no state corruption (so final-state
// equality against the reference interpreter must still hold).
func Default(seed int64) Config {
	return Config{
		Seed:              seed,
		SpuriousAliasRate: 0.05,
		GuardFailRate:     0.05,
		CompileFailRate:   0.02,
	}
}

// DefaultHost returns the standard chaos mix extended with every host
// fault class: worker panics, compile hangs, poisoned results and memo
// pressure. Final-state equality against the reference interpreter must
// still hold — host faults only ever delay or suppress compiled code.
func DefaultHost(seed int64) Config {
	c := Default(seed)
	c.WorkerPanicRate = 0.02
	c.CompileHangRate = 0.02
	c.PoisonResultRate = 0.02
	c.MemoPressureRate = 0.05
	return c
}

// Counts reports how often each fault kind actually fired.
type Counts struct {
	SpuriousAliases int64
	GuardFails      int64
	CompileFails    int64
	Corruptions     int64
	WorkerPanics    int64
	CompileHangs    int64
	PoisonedResults int64
	MemoPressure    int64
}

// Injector draws injection decisions. Not safe for concurrent use; each
// System owns its injector.
type Injector struct {
	cfg    Config
	rng    *rand.Rand
	counts Counts
}

// New returns an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (in *Injector) roll(rate float64) bool {
	return in.rng.Float64() < rate
}

// SpuriousAlias decides whether this region dispatch suffers a hardware
// false-positive alias exception.
func (in *Injector) SpuriousAlias() bool {
	if in.roll(in.cfg.SpuriousAliasRate) {
		in.counts.SpuriousAliases++
		return true
	}
	return false
}

// GuardFail decides whether this region dispatch is forced off-trace.
func (in *Injector) GuardFail() bool {
	if in.roll(in.cfg.GuardFailRate) {
		in.counts.GuardFails++
		return true
	}
	return false
}

// CompileFail decides whether this compilation attempt fails.
func (in *Injector) CompileFail() bool {
	if in.roll(in.cfg.CompileFailRate) {
		in.counts.CompileFails++
		return true
	}
	return false
}

// CorruptState decides whether to corrupt the post-rollback state and,
// when it fires, flips bits in one integer register — the divergence a
// broken undo log or checkpoint restore would cause. Returns whether it
// fired.
func (in *Injector) CorruptState(st *guest.State) bool {
	if !in.roll(in.cfg.CorruptRate) {
		return false
	}
	r := 1 + in.rng.Intn(guest.NumRegs-1)
	st.R[r] ^= 0x5a5a5a5a
	in.counts.Corruptions++
	return true
}

// PoisonMode selects how an injected poisoned result is corrupted, so
// both install-time validation layers get exercised.
type PoisonMode uint8

const (
	// PoisonNone: the poison probe did not fire.
	PoisonNone PoisonMode = iota
	// PoisonChecksum corrupts the result after its content checksum was
	// stamped — the checksum comparison at install must catch it.
	PoisonChecksum
	// PoisonStructure corrupts the frozen region before the checksum is
	// stamped (a consistent hash over broken contents) — the structural
	// invariant check (vreg ranges, op counts) must catch it.
	PoisonStructure
)

// WorkerPanic decides whether this compile job panics in its worker.
func (in *Injector) WorkerPanic() bool {
	if in.roll(in.cfg.WorkerPanicRate) {
		in.counts.WorkerPanics++
		return true
	}
	return false
}

// CompileHang decides whether this compile overruns its watchdog deadline.
func (in *Injector) CompileHang() bool {
	if in.roll(in.cfg.CompileHangRate) {
		in.counts.CompileHangs++
		return true
	}
	return false
}

// PoisonResult decides whether this compile result is corrupted and, when
// it fires, which validation layer must catch it. One draw; the mode
// alternates with the fired count so both layers are exercised without
// consuming extra randomness.
func (in *Injector) PoisonResult() PoisonMode {
	if !in.roll(in.cfg.PoisonResultRate) {
		return PoisonNone
	}
	in.counts.PoisonedResults++
	if in.counts.PoisonedResults%2 == 1 {
		return PoisonChecksum
	}
	return PoisonStructure
}

// MemoPressure decides whether host memory pressure evicts the
// least-recently-used memoized compile before this lookup.
func (in *Injector) MemoPressure() bool {
	if in.roll(in.cfg.MemoPressureRate) {
		in.counts.MemoPressure++
		return true
	}
	return false
}

// Counts returns the cumulative fired-fault counters.
func (in *Injector) Counts() Counts { return in.counts }

// Snapshot fingerprints the architectural state at a region entry: the
// full register file plus a digest of guest memory. Verify after a
// rollback proves the atomic region restored the exact checkpoint.
type Snapshot struct {
	regs guest.State
	mem  uint64
}

// Capture snapshots the state and memory digest.
func Capture(st *guest.State, mem *guest.Memory) Snapshot {
	return Snapshot{regs: *st, mem: mem.Digest()}
}

// Verify compares the current state against the snapshot. Float registers
// compare by bit pattern so a NaN-preserving restore passes.
func (s *Snapshot) Verify(st *guest.State, mem *guest.Memory) error {
	for r := range s.regs.R {
		if st.R[r] != s.regs.R[r] {
			return fmt.Errorf("faultinject: rollback diverged: r%d = %d, checkpoint had %d",
				r, st.R[r], s.regs.R[r])
		}
	}
	for r := range s.regs.F {
		if math.Float64bits(st.F[r]) != math.Float64bits(s.regs.F[r]) {
			return fmt.Errorf("faultinject: rollback diverged: f%d = %v, checkpoint had %v",
				r, st.F[r], s.regs.F[r])
		}
	}
	if d := mem.Digest(); d != s.mem {
		return fmt.Errorf("faultinject: rollback diverged: memory digest %#x, checkpoint had %#x",
			d, s.mem)
	}
	return nil
}
