package faultinject

import (
	"math"
	"testing"

	"smarq/internal/guest"
)

// drawSequence records which probes fire over n rounds of all four draws.
func drawSequence(in *Injector, st *guest.State, n int) []bool {
	var seq []bool
	for i := 0; i < n; i++ {
		seq = append(seq, in.SpuriousAlias(), in.GuardFail(), in.CompileFail(), in.CorruptState(st))
	}
	return seq
}

// TestDeterministicPerSeed: equal seeds replay the exact injection
// pattern; a different seed diverges. This is the property `smarq-run
// -chaos-seed` relies on to reproduce CI chaos failures.
func TestDeterministicPerSeed(t *testing.T) {
	cfg := Default(42)
	cfg.CorruptRate = 0.1
	a := drawSequence(New(cfg), &guest.State{}, 500)
	b := drawSequence(New(cfg), &guest.State{}, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	cfg.Seed = 43
	c := drawSequence(New(cfg), &guest.State{}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 2000-draw sequences")
	}
}

func TestZeroConfigNeverFires(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	in := New(cfg)
	st := &guest.State{}
	for _, fired := range drawSequence(in, st, 200) {
		if fired {
			t.Fatal("zero-rate injector fired")
		}
	}
	if in.Counts() != (Counts{}) {
		t.Errorf("counts = %+v, want zero", in.Counts())
	}
	if *st != (guest.State{}) {
		t.Error("zero-rate injector touched the state")
	}
}

func TestCountsMatchFirings(t *testing.T) {
	cfg := Config{Seed: 7, SpuriousAliasRate: 0.5, GuardFailRate: 0.5, CompileFailRate: 0.5, CorruptRate: 0.5}
	in := New(cfg)
	st := &guest.State{}
	var want Counts
	for i := 0; i < 400; i++ {
		if in.SpuriousAlias() {
			want.SpuriousAliases++
		}
		if in.GuardFail() {
			want.GuardFails++
		}
		if in.CompileFail() {
			want.CompileFails++
		}
		if in.CorruptState(st) {
			want.Corruptions++
		}
	}
	if got := in.Counts(); got != want {
		t.Errorf("Counts() = %+v, want %+v", got, want)
	}
	if want.SpuriousAliases == 0 || want.Corruptions == 0 {
		t.Error("rate-0.5 injector never fired in 400 rounds")
	}
}

func TestValidate(t *testing.T) {
	good := []Config{{}, Default(1), {SpuriousAliasRate: 1, GuardFailRate: 1, CompileFailRate: 1, CorruptRate: 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SpuriousAliasRate: -0.1},
		{GuardFailRate: 1.5},
		{CompileFailRate: math.NaN()},
		{CorruptRate: math.Inf(1)},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestCorruptStatePerturbsOneRegister(t *testing.T) {
	in := New(Config{Seed: 3, CorruptRate: 1})
	st := &guest.State{}
	if !in.CorruptState(st) {
		t.Fatal("rate-1 CorruptState did not fire")
	}
	changed := 0
	for r := 0; r < guest.NumRegs; r++ {
		if st.R[r] != 0 {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("corruption changed %d registers, want exactly 1", changed)
	}
}

func TestSnapshotVerifyCleanRoundTrip(t *testing.T) {
	st := &guest.State{}
	st.R[3] = 17
	st.F[4] = math.NaN() // bit-pattern comparison must tolerate NaN
	mem := guest.NewMemory(128)
	_ = mem.Store(16, 8, 99)
	snap := Capture(st, mem)
	if err := snap.Verify(st, mem); err != nil {
		t.Errorf("clean Verify: %v", err)
	}
}

func TestSnapshotVerifyCatchesDivergence(t *testing.T) {
	mkState := func() (*guest.State, *guest.Memory) {
		st := &guest.State{}
		st.R[2] = 5
		st.F[1] = 2.5
		mem := guest.NewMemory(64)
		_ = mem.Store(0, 8, 7)
		return st, mem
	}

	st, mem := mkState()
	snap := Capture(st, mem)

	st.R[2] = 6
	if snap.Verify(st, mem) == nil {
		t.Error("integer register divergence not caught")
	}

	st, mem = mkState()
	snap = Capture(st, mem)
	st.F[1] = -2.5
	if snap.Verify(st, mem) == nil {
		t.Error("float register divergence not caught")
	}

	st, mem = mkState()
	snap = Capture(st, mem)
	_ = mem.Store(32, 1, 1)
	if snap.Verify(st, mem) == nil {
		t.Error("memory divergence not caught")
	}
}
