package faultinject

import (
	"math"
	"sync"
	"testing"

	"smarq/internal/guest"
)

// drawSequence records which probes fire over n rounds of all four draws.
func drawSequence(in *Injector, st *guest.State, n int) []bool {
	var seq []bool
	for i := 0; i < n; i++ {
		seq = append(seq, in.SpuriousAlias(), in.GuardFail(), in.CompileFail(), in.CorruptState(st))
	}
	return seq
}

// TestDeterministicPerSeed: equal seeds replay the exact injection
// pattern; a different seed diverges. This is the property `smarq-run
// -chaos-seed` relies on to reproduce CI chaos failures.
func TestDeterministicPerSeed(t *testing.T) {
	cfg := Default(42)
	cfg.CorruptRate = 0.1
	a := drawSequence(New(cfg), &guest.State{}, 500)
	b := drawSequence(New(cfg), &guest.State{}, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	cfg.Seed = 43
	c := drawSequence(New(cfg), &guest.State{}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 2000-draw sequences")
	}
}

func TestZeroConfigNeverFires(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	in := New(cfg)
	st := &guest.State{}
	for _, fired := range drawSequence(in, st, 200) {
		if fired {
			t.Fatal("zero-rate injector fired")
		}
	}
	if in.Counts() != (Counts{}) {
		t.Errorf("counts = %+v, want zero", in.Counts())
	}
	if *st != (guest.State{}) {
		t.Error("zero-rate injector touched the state")
	}
}

func TestCountsMatchFirings(t *testing.T) {
	cfg := Config{Seed: 7, SpuriousAliasRate: 0.5, GuardFailRate: 0.5, CompileFailRate: 0.5, CorruptRate: 0.5}
	in := New(cfg)
	st := &guest.State{}
	var want Counts
	for i := 0; i < 400; i++ {
		if in.SpuriousAlias() {
			want.SpuriousAliases++
		}
		if in.GuardFail() {
			want.GuardFails++
		}
		if in.CompileFail() {
			want.CompileFails++
		}
		if in.CorruptState(st) {
			want.Corruptions++
		}
	}
	if got := in.Counts(); got != want {
		t.Errorf("Counts() = %+v, want %+v", got, want)
	}
	if want.SpuriousAliases == 0 || want.Corruptions == 0 {
		t.Error("rate-0.5 injector never fired in 400 rounds")
	}
}

func TestValidate(t *testing.T) {
	good := []Config{{}, Default(1), {SpuriousAliasRate: 1, GuardFailRate: 1, CompileFailRate: 1, CorruptRate: 1}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []Config{
		{SpuriousAliasRate: -0.1},
		{GuardFailRate: 1.5},
		{CompileFailRate: math.NaN()},
		{CorruptRate: math.Inf(1)},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestCorruptStatePerturbsOneRegister(t *testing.T) {
	in := New(Config{Seed: 3, CorruptRate: 1})
	st := &guest.State{}
	if !in.CorruptState(st) {
		t.Fatal("rate-1 CorruptState did not fire")
	}
	changed := 0
	for r := 0; r < guest.NumRegs; r++ {
		if st.R[r] != 0 {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("corruption changed %d registers, want exactly 1", changed)
	}
}

// hostDrawSequence records the host-fault probes (panic, hang, poison
// mode, memo pressure) over n rounds.
func hostDrawSequence(in *Injector, n int) []int {
	var seq []int
	for i := 0; i < n; i++ {
		b := func(v bool) int {
			if v {
				return 1
			}
			return 0
		}
		seq = append(seq, b(in.WorkerPanic()), b(in.CompileHang()), int(in.PoisonResult()), b(in.MemoPressure()))
	}
	return seq
}

// TestHostProbesDeterministicPerSeed extends the seed-replay guarantee to
// the host fault classes: equal seeds replay the exact host-fault
// pattern — including which poison mode each firing selects — and a
// different seed diverges.
func TestHostProbesDeterministicPerSeed(t *testing.T) {
	cfg := DefaultHost(42)
	a := hostDrawSequence(New(cfg), 500)
	b := hostDrawSequence(New(cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at host draw %d", i)
		}
	}
	cfg.Seed = 43
	c := hostDrawSequence(New(cfg), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 2000-draw host sequences")
	}
}

// TestHostProbesDeterministicAcrossGoroutines: each injector is owned by
// one simulation thread, but host scheduling must not be able to perturb
// the draw sequence — many goroutines each running a same-seed injector
// concurrently (under -race in CI) must all produce the canonical
// sequence.
func TestHostProbesDeterministicAcrossGoroutines(t *testing.T) {
	cfg := DefaultHost(99)
	want := hostDrawSequence(New(cfg), 300)
	const goroutines = 8
	got := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[g] = hostDrawSequence(New(cfg), 300)
		}()
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for i := range want {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d diverged from canonical sequence at draw %d", g, i)
			}
		}
	}
}

// TestPoisonModeAlternates: the poison probe alternates which validation
// layer it attacks, starting with the checksum layer, so a long chaos run
// exercises both.
func TestPoisonModeAlternates(t *testing.T) {
	in := New(Config{Seed: 1, PoisonResultRate: 1})
	for i := 0; i < 6; i++ {
		want := PoisonChecksum
		if i%2 == 1 {
			want = PoisonStructure
		}
		if got := in.PoisonResult(); got != want {
			t.Fatalf("firing %d: mode %d, want %d", i, got, want)
		}
	}
	if in.Counts().PoisonedResults != 6 {
		t.Errorf("PoisonedResults = %d, want 6", in.Counts().PoisonedResults)
	}
}

// TestHostEnabled: the host classes flip both HostEnabled and Enabled,
// each class on its own.
func TestHostEnabled(t *testing.T) {
	if (Config{}).HostEnabled() {
		t.Error("zero Config reports HostEnabled")
	}
	if Default(1).HostEnabled() {
		t.Error("guest-only Default reports HostEnabled")
	}
	for name, c := range map[string]Config{
		"panic":  {WorkerPanicRate: 0.1},
		"hang":   {CompileHangRate: 0.1},
		"poison": {PoisonResultRate: 0.1},
		"memo":   {MemoPressureRate: 0.1},
	} {
		if !c.HostEnabled() || !c.Enabled() {
			t.Errorf("%s rate alone: HostEnabled=%v Enabled=%v, want true/true",
				name, c.HostEnabled(), c.Enabled())
		}
	}
	dh := DefaultHost(5)
	if err := dh.Validate(); err != nil {
		t.Errorf("DefaultHost invalid: %v", err)
	}
	if !dh.HostEnabled() {
		t.Error("DefaultHost not HostEnabled")
	}
}

// TestValidateHostRates: the host rates are range-checked like the guest
// rates.
func TestValidateHostRates(t *testing.T) {
	bad := []Config{
		{WorkerPanicRate: -0.1},
		{CompileHangRate: 1.5},
		{PoisonResultRate: math.NaN()},
		{MemoPressureRate: math.Inf(1)},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

// TestSnapshotZeroLengthMemory: digesting zero-length memory must not
// fault, and state-only divergence is still caught.
func TestSnapshotZeroLengthMemory(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(0)
	snap := Capture(st, mem)
	if err := snap.Verify(st, mem); err != nil {
		t.Errorf("clean Verify over empty memory: %v", err)
	}
	st.R[1] = 1
	if snap.Verify(st, mem) == nil {
		t.Error("register divergence not caught with empty memory")
	}
}

// TestSnapshotOverlappingRegions models two nested rollback regions whose
// write sets overlap: each snapshot independently fingerprints the same
// overlapping bytes, so restoring the outer checkpoint satisfies the
// outer snapshot while the inner one (taken mid-region) still reports the
// divergence it saw.
func TestSnapshotOverlappingRegions(t *testing.T) {
	st := &guest.State{}
	mem := guest.NewMemory(128)
	_ = mem.Store(16, 8, 1) // both regions cover [16, 24)
	outer := Capture(st, mem)

	_ = mem.Store(16, 8, 2) // outer region's speculative write
	inner := Capture(st, mem)

	_ = mem.Store(16, 8, 3) // inner region's overlapping write
	if outer.Verify(st, mem) == nil || inner.Verify(st, mem) == nil {
		t.Fatal("overlapping write invisible to a snapshot")
	}

	// Roll the whole overlap back to the outer checkpoint: the outer
	// snapshot must pass again, and the inner one — whose checkpoint
	// included the now-undone outer write — must keep failing.
	_ = mem.Store(16, 8, 1)
	if err := outer.Verify(st, mem); err != nil {
		t.Errorf("outer rollback over the overlap did not restore: %v", err)
	}
	if inner.Verify(st, mem) == nil {
		t.Error("inner snapshot accepted the outer checkpoint despite the overlapping undo")
	}
}

func TestSnapshotVerifyCleanRoundTrip(t *testing.T) {
	st := &guest.State{}
	st.R[3] = 17
	st.F[4] = math.NaN() // bit-pattern comparison must tolerate NaN
	mem := guest.NewMemory(128)
	_ = mem.Store(16, 8, 99)
	snap := Capture(st, mem)
	if err := snap.Verify(st, mem); err != nil {
		t.Errorf("clean Verify: %v", err)
	}
}

func TestSnapshotVerifyCatchesDivergence(t *testing.T) {
	mkState := func() (*guest.State, *guest.Memory) {
		st := &guest.State{}
		st.R[2] = 5
		st.F[1] = 2.5
		mem := guest.NewMemory(64)
		_ = mem.Store(0, 8, 7)
		return st, mem
	}

	st, mem := mkState()
	snap := Capture(st, mem)

	st.R[2] = 6
	if snap.Verify(st, mem) == nil {
		t.Error("integer register divergence not caught")
	}

	st, mem = mkState()
	snap = Capture(st, mem)
	st.F[1] = -2.5
	if snap.Verify(st, mem) == nil {
		t.Error("float register divergence not caught")
	}

	st, mem = mkState()
	snap = Capture(st, mem)
	_ = mem.Store(32, 1, 1)
	if snap.Verify(st, mem) == nil {
		t.Error("memory divergence not caught")
	}
}
