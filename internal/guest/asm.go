package guest

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Assemble parses guest assembly text into a program. The syntax is the
// one Inst.String and Program.String produce, plus named labels:
//
//	; a comment (also #)
//	start:
//	        li   r1, 1024
//	loop:
//	        ld8  r2, [r1+0]
//	        addi r2, r2, 1
//	        st8  [r1+0], r2
//	        fli  f0, 2.5
//	        fadd f1, f1, f0
//	        blt  r3, r4, loop
//	        halt
//
// Every label starts a new block; an instruction before any label starts
// block 0 implicitly. Branch targets may be labels or literal block IDs
// (B3). The entry point is block 0.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		b:      NewBuilder(),
		labels: map[string]int{},
	}
	lines := strings.Split(src, "\n")

	// First pass: map labels to block IDs by counting label definitions
	// in order. A label on a line of its own or before an instruction
	// opens a new block.
	blockID := 0
	started := false
	for ln, raw := range lines {
		line := stripComment(raw)
		for {
			line = strings.TrimSpace(line)
			name, rest, ok := splitLabel(line)
			if !ok {
				break
			}
			if _, dup := a.labels[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", ln+1, name)
			}
			// A label always begins a fresh block — except the very
			// first label of the file when nothing has been emitted.
			if started {
				blockID++
			}
			a.labels[name] = blockID
			started = true
			line = rest
		}
		if line != "" {
			started = true
		}
	}

	// Second pass: emit.
	a.curBlock = -1
	for ln, raw := range lines {
		line := stripComment(raw)
		for {
			line = strings.TrimSpace(line)
			name, rest, ok := splitLabel(line)
			if !ok {
				break
			}
			a.openBlockFor(a.labels[name])
			line = rest
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.inst(line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
	}
	return a.b.Program()
}

// MustAssemble is Assemble but panics on error (tests, examples).
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		return line[:i]
	}
	return line
}

// splitLabel recognizes a leading "name:" and returns the remainder.
func splitLabel(line string) (name, rest string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", false
	}
	name = strings.TrimSpace(line[:i])
	if name == "" || strings.ContainsAny(name, " \t,[]") {
		return "", "", false
	}
	return name, line[i+1:], true
}

type assembler struct {
	b        *Builder
	labels   map[string]int
	curBlock int
}

func (a *assembler) openBlockFor(id int) {
	for a.curBlock < id {
		a.b.NewBlock()
		a.curBlock++
	}
}

// ensureBlock opens block 0 for instructions before any label.
func (a *assembler) ensureBlock() {
	if a.curBlock < 0 {
		a.openBlockFor(0)
	}
}

func (a *assembler) inst(line string) error {
	a.ensureBlock()
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	op, ok := opByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	args := splitArgs(rest)

	in := Inst{Op: op}
	var err error
	switch {
	case op == Nop || op == Halt:
		err = expectArgs(args, 0)

	case op == Li:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'r')
			if err == nil {
				in.Imm, err = parseInt(args[1])
			}
		}

	case op == FLi:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'f')
			if err == nil {
				in.FImm, err = strconv.ParseFloat(args[1], 64)
			}
		}

	case op == Mov:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'r')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'r')
			}
		}

	case op == FMov, op == FNeg, op == FAbs, op == FSqrt:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'f')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'f')
			}
		}

	case op == CvtIF:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'f')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'r')
			}
		}

	case op == CvtFI:
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], 'r')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'f')
			}
		}

	case op == Addi || op == Muli:
		if err = expectArgs(args, 3); err == nil {
			in.Rd, err = parseReg(args[0], 'r')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'r')
			}
			if err == nil {
				in.Imm, err = parseInt(args[2])
			}
		}

	case op.IsLoad():
		file := byte('r')
		if op.IsFloat() {
			file = 'f'
		}
		if err = expectArgs(args, 2); err == nil {
			in.Rd, err = parseReg(args[0], file)
			if err == nil {
				in.Rs1, in.Imm, err = parseMem(args[1])
			}
		}

	case op.IsStore():
		file := byte('r')
		if op.IsFloat() {
			file = 'f'
		}
		if err = expectArgs(args, 2); err == nil {
			in.Rs1, in.Imm, err = parseMem(args[0])
			if err == nil {
				in.Rd, err = parseReg(args[1], file)
			}
		}

	case op.IsBranch():
		if err = expectArgs(args, 3); err == nil {
			in.Rs1, err = parseReg(args[0], 'r')
			if err == nil {
				in.Rs2, err = parseReg(args[1], 'r')
			}
			if err == nil {
				in.Target, err = a.parseTarget(args[2])
			}
		}

	case op == Jmp:
		if err = expectArgs(args, 1); err == nil {
			in.Target, err = a.parseTarget(args[0])
		}

	case op.IsFloat(): // three-operand float ALU
		if err = expectArgs(args, 3); err == nil {
			in.Rd, err = parseReg(args[0], 'f')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'f')
			}
			if err == nil {
				in.Rs2, err = parseReg(args[2], 'f')
			}
		}

	default: // three-operand integer ALU
		if err = expectArgs(args, 3); err == nil {
			in.Rd, err = parseReg(args[0], 'r')
			if err == nil {
				in.Rs1, err = parseReg(args[1], 'r')
			}
			if err == nil {
				in.Rs2, err = parseReg(args[2], 'r')
			}
		}
	}
	if err != nil {
		return err
	}
	a.b.Emit(in)
	return nil
}

func splitArgs(rest string) []string {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func expectArgs(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	return nil
}

func parseReg(s string, file byte) (Reg, error) {
	if len(s) < 2 || (s[0] != file && s[0] != file-32) {
		return 0, fmt.Errorf("want %c-register, got %q", file, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseInt(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return v, nil
}

// parseMem parses "[rN+imm]", "[rN-imm]" or "[rN]".
func parseMem(s string) (Reg, int64, error) {
	if len(s) < 4 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	var regPart, offPart string
	if sep < 0 {
		regPart, offPart = inner, "0"
	} else {
		regPart, offPart = inner[:sep+1], inner[sep+1:]
	}
	base, err := parseReg(strings.TrimSpace(regPart), 'r')
	if err != nil {
		return 0, 0, err
	}
	off, err := parseInt(strings.TrimSpace(offPart))
	if err != nil {
		return 0, 0, err
	}
	return base, off, nil
}

func (a *assembler) parseTarget(s string) (int, error) {
	if id, ok := a.labels[s]; ok {
		return id, nil
	}
	if len(s) > 1 && (s[0] == 'B' || s[0] == 'b') {
		if n, err := strconv.Atoi(s[1:]); err == nil {
			return n, nil
		}
	}
	return 0, fmt.Errorf("unknown branch target %q", s)
}

var (
	nameToOpOnce sync.Once
	nameToOp     map[string]Opcode
)

// opByName resolves a mnemonic; the reverse map is built once, safely
// under concurrent assembly.
func opByName(name string) (Opcode, bool) {
	nameToOpOnce.Do(func() {
		nameToOp = make(map[string]Opcode, int(numOpcodes))
		for op := Opcode(0); op < numOpcodes; op++ {
			nameToOp[op.String()] = op
		}
	})
	op, ok := nameToOp[name]
	return op, ok
}
