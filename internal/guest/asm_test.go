package guest

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; counter loop
		li   r1, 10
		li   r2, 64
	loop:
		ld8  r3, [r2+0]
		addi r3, r3, 1
		st8  [r2+0], r3
		addi r1, r1, -1
		bne  r1, r0, loop
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(p.Blocks))
	}
	// Run it: memory[64] should reach 10.
	st := &State{}
	mem := NewMemory(128)
	id := 0
	for id != -1 {
		blk := p.Block(id)
		next := id + 1
		for _, in := range blk.Insts {
			ctl, err := Exec(in, st, mem)
			if err != nil {
				t.Fatal(err)
			}
			if ctl == CtlBranch {
				next = in.Target
			}
			if ctl == CtlHalt {
				next = -1
				break
			}
		}
		id = next
	}
	v, _ := mem.Load(64, 8)
	if v != 10 {
		t.Errorf("counter = %d, want 10", v)
	}
}

func TestAssembleFloatAndConversions(t *testing.T) {
	p, err := Assemble(`
		fli   f1, 2.5
		fli   f2, -0.5
		fadd  f3, f1, f2
		fmul  f3, f3, f1
		fsqrt f4, f3
		cvtfi r1, f3
		cvtif f5, r1
		fst8  [r2+8], f3
		fld8  f6, [r2+8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := p.Blocks[0].Insts
	if in[0].FImm != 2.5 || in[1].FImm != -0.5 {
		t.Error("float immediates wrong")
	}
	if in[5].Op != CvtFI || in[5].Rd != 1 || in[5].Rs1 != 3 {
		t.Errorf("cvtfi parsed as %+v", in[5])
	}
	if in[7].Op != FSt8 || in[7].Rs1 != 2 || in[7].Imm != 8 || in[7].Rd != 3 {
		t.Errorf("fst8 parsed as %+v", in[7])
	}
}

func TestAssembleNegativeOffsets(t *testing.T) {
	p, err := Assemble("ld8 r1, [r2-16]\nst8 [r3], r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Blocks[0].Insts
	if in[0].Imm != -16 {
		t.Errorf("offset = %d, want -16", in[0].Imm)
	}
	if in[1].Imm != 0 {
		t.Errorf("bare [r3] offset = %d, want 0", in[1].Imm)
	}
}

func TestAssembleLiteralBlockTargets(t *testing.T) {
	p, err := Assemble("jmp B1\nend:\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocks[0].Insts[0].Target != 1 {
		t.Error("literal block target not parsed")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bad mnemonic":    "frobnicate r1, r2",
		"bad reg file":    "fadd r1, f2, f3",
		"missing operand": "add r1, r2",
		"bad register":    "li r99, 0",
		"bad memory":      "ld8 r1, r2+0",
		"bad target":      "jmp nowhere",
		"duplicate label": "a:\nhalt\na:\nhalt",
		"bad immediate":   "li r1, banana",
		"extra operand":   "halt r1",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled successfully", name)
		}
	}
}

func TestAssembleHexImmediates(t *testing.T) {
	p, err := Assemble("li r1, 0x40\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Blocks[0].Insts[0].Imm != 64 {
		t.Error("hex immediate not parsed")
	}
}

// TestDisassembleAssembleRoundTrip: Program.String output (with block
// labels rewritten to the BN: form the assembler accepts) re-assembles to
// the identical program.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := randomValidProgram(rng)
		// Program.String emits "B0:" labels and instruction syntax the
		// assembler understands directly.
		src := p.String()
		q, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		if len(q.Blocks) != len(p.Blocks) {
			t.Fatalf("trial %d: %d blocks, want %d", trial, len(q.Blocks), len(p.Blocks))
		}
		for i := range p.Blocks {
			for j, in := range p.Blocks[i].Insts {
				got := q.Blocks[i].Insts[j]
				// Float immediates go through decimal text; require exact
				// equality only for everything else.
				if in.Op == FLi {
					if got.Op != FLi || got.Rd != in.Rd {
						t.Fatalf("trial %d: B%d[%d]: %v != %v", trial, i, j, got, in)
					}
					continue
				}
				if got != in {
					t.Fatalf("trial %d: B%d[%d]: %v != %v", trial, i, j, got, in)
				}
			}
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad input")
		}
	}()
	MustAssemble("not a program")
}

func TestAssembleCommentsAndWhitespace(t *testing.T) {
	p, err := Assemble("  \n; only a comment\n# hash comment\n\nhalt ; trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInsts() != 1 {
		t.Errorf("got %d insts, want 1", p.NumInsts())
	}
	_ = strings.TrimSpace
}

// TestCompositeRoundTrip fuzzes the full tooling chain: random program ->
// disassemble -> assemble -> encode -> decode -> compare, and both
// versions execute identically.
func TestCompositeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		p := randomValidProgram(rng)
		q, err := Assemble(p.String())
		if err != nil {
			t.Fatalf("trial %d: assemble: %v", trial, err)
		}
		r, err := DecodeProgram(EncodeProgram(q))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		// Execute both for a bounded number of steps and compare state.
		run := func(prog *Program) (State, [64]byte) {
			st := State{}
			mem := NewMemory(4096)
			// Seed registers so memory ops stay in range.
			for i := range st.R {
				st.R[i] = int64(64 + i*8)
			}
			id, steps := 0, 0
			for id >= 0 && id < len(prog.Blocks) && steps < 500 {
				next := id + 1
				for _, in := range prog.Blocks[id].Insts {
					ctl, err := Exec(in, &st, mem)
					if err != nil {
						// Faults are data-dependent and identical across
						// the two versions; stop here for both.
						return st, snapshot(mem)
					}
					steps++
					if ctl == CtlBranch {
						next = in.Target
					}
					if ctl == CtlHalt {
						return st, snapshot(mem)
					}
				}
				id = next
			}
			return st, snapshot(mem)
		}
		s1, m1 := run(p)
		s2, m2 := run(r)
		if s1 != s2 || m1 != m2 {
			t.Fatalf("trial %d: round-tripped program diverged", trial)
		}
	}
}

func snapshot(m *Memory) [64]byte {
	var out [64]byte
	for i := 0; i < 64; i++ {
		v, _ := m.Load(uint64(i*8)%uint64(m.Size()-8), 1)
		out[i] = byte(v)
	}
	return out
}
