package guest

import "fmt"

// Builder assembles guest programs incrementally. Blocks are created with
// NewBlock (in ID order) and instructions are appended to the current block
// with the emit helpers. Forward branch targets can be reserved with
// Reserve and filled in later with At.
//
//	b := guest.NewBuilder()
//	loop := b.NewBlock()
//	b.Ld8(1, 2, 0)        // r1 = [r2+0]
//	b.Addi(1, 1, 1)       // r1 = r1 + 1
//	b.St8(2, 0, 1)        // [r2+0] = r1
//	b.Blt(3, 4, loop)     // if r3 < r4 goto loop
//	exit := b.NewBlock()
//	b.Halt()
//	_ = exit
//	prog, err := b.Program()
type Builder struct {
	prog Program
	cur  *Block
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// NewBlock appends a new empty block, makes it current, and returns its ID.
func (b *Builder) NewBlock() int {
	id := len(b.prog.Blocks)
	blk := &Block{ID: id}
	b.prog.Blocks = append(b.prog.Blocks, blk)
	b.cur = blk
	return id
}

// Reserve appends n empty blocks without making them current and returns the
// ID of the first. Used for forward branch targets.
func (b *Builder) Reserve(n int) int {
	first := len(b.prog.Blocks)
	for i := 0; i < n; i++ {
		b.prog.Blocks = append(b.prog.Blocks, &Block{ID: first + i})
	}
	return first
}

// At switches the current block to the block with the given ID.
func (b *Builder) At(id int) {
	if id < 0 || id >= len(b.prog.Blocks) {
		panic(fmt.Sprintf("guest: Builder.At(%d): no such block", id))
	}
	b.cur = b.prog.Blocks[id]
}

// Emit appends a raw instruction to the current block.
func (b *Builder) Emit(in Inst) {
	if b.cur == nil {
		b.NewBlock()
	}
	b.cur.Insts = append(b.cur.Insts, in)
}

// Program validates and returns the assembled program. The entry point is
// block 0.
func (b *Builder) Program() (*Program, error) {
	p := b.prog
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// MustProgram is Program but panics on validation failure. Intended for
// statically-known workload generators and tests.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// Integer ALU helpers.

func (b *Builder) Nop()                 { b.Emit(Inst{Op: Nop}) }
func (b *Builder) Li(rd Reg, imm int64) { b.Emit(Inst{Op: Li, Rd: rd, Imm: imm}) }
func (b *Builder) Mov(rd, rs1 Reg)      { b.Emit(Inst{Op: Mov, Rd: rd, Rs1: rs1}) }
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Add, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Sub, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Mul, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Div(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Div, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) And(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: And, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Or(rd, rs1, rs2 Reg)  { b.Emit(Inst{Op: Or, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Xor, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Shl(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Shl, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Shr(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Shr, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Slt(rd, rs1, rs2 Reg) { b.Emit(Inst{Op: Slt, Rd: rd, Rs1: rs1, Rs2: rs2}) }
func (b *Builder) Addi(rd, rs1 Reg, imm int64) {
	b.Emit(Inst{Op: Addi, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Muli(rd, rs1 Reg, imm int64) {
	b.Emit(Inst{Op: Muli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Floating-point helpers.

func (b *Builder) FLi(fd Reg, v float64) { b.Emit(Inst{Op: FLi, Rd: fd, FImm: v}) }
func (b *Builder) FMov(fd, fs Reg)       { b.Emit(Inst{Op: FMov, Rd: fd, Rs1: fs}) }
func (b *Builder) FAdd(fd, fs1, fs2 Reg) { b.Emit(Inst{Op: FAdd, Rd: fd, Rs1: fs1, Rs2: fs2}) }
func (b *Builder) FSub(fd, fs1, fs2 Reg) { b.Emit(Inst{Op: FSub, Rd: fd, Rs1: fs1, Rs2: fs2}) }
func (b *Builder) FMul(fd, fs1, fs2 Reg) { b.Emit(Inst{Op: FMul, Rd: fd, Rs1: fs1, Rs2: fs2}) }
func (b *Builder) FDiv(fd, fs1, fs2 Reg) { b.Emit(Inst{Op: FDiv, Rd: fd, Rs1: fs1, Rs2: fs2}) }
func (b *Builder) FNeg(fd, fs Reg)       { b.Emit(Inst{Op: FNeg, Rd: fd, Rs1: fs}) }
func (b *Builder) FAbs(fd, fs Reg)       { b.Emit(Inst{Op: FAbs, Rd: fd, Rs1: fs}) }
func (b *Builder) FSqrt(fd, fs Reg)      { b.Emit(Inst{Op: FSqrt, Rd: fd, Rs1: fs}) }
func (b *Builder) CvtIF(fd, rs Reg)      { b.Emit(Inst{Op: CvtIF, Rd: fd, Rs1: rs}) }
func (b *Builder) CvtFI(rd, fs Reg)      { b.Emit(Inst{Op: CvtFI, Rd: rd, Rs1: fs}) }

// Memory helpers. The effective address is base register + displacement.

func (b *Builder) Ld1(rd, base Reg, off int64) { b.Emit(Inst{Op: Ld1, Rd: rd, Rs1: base, Imm: off}) }
func (b *Builder) Ld2(rd, base Reg, off int64) { b.Emit(Inst{Op: Ld2, Rd: rd, Rs1: base, Imm: off}) }
func (b *Builder) Ld4(rd, base Reg, off int64) { b.Emit(Inst{Op: Ld4, Rd: rd, Rs1: base, Imm: off}) }
func (b *Builder) Ld8(rd, base Reg, off int64) { b.Emit(Inst{Op: Ld8, Rd: rd, Rs1: base, Imm: off}) }
func (b *Builder) St1(base Reg, off int64, rv Reg) {
	b.Emit(Inst{Op: St1, Rd: rv, Rs1: base, Imm: off})
}
func (b *Builder) St2(base Reg, off int64, rv Reg) {
	b.Emit(Inst{Op: St2, Rd: rv, Rs1: base, Imm: off})
}
func (b *Builder) St4(base Reg, off int64, rv Reg) {
	b.Emit(Inst{Op: St4, Rd: rv, Rs1: base, Imm: off})
}
func (b *Builder) St8(base Reg, off int64, rv Reg) {
	b.Emit(Inst{Op: St8, Rd: rv, Rs1: base, Imm: off})
}
func (b *Builder) FLd8(fd, base Reg, off int64) {
	b.Emit(Inst{Op: FLd8, Rd: fd, Rs1: base, Imm: off})
}
func (b *Builder) FSt8(base Reg, off int64, fv Reg) {
	b.Emit(Inst{Op: FSt8, Rd: fv, Rs1: base, Imm: off})
}

// Control helpers.

func (b *Builder) Beq(rs1, rs2 Reg, target int) {
	b.Emit(Inst{Op: Beq, Rs1: rs1, Rs2: rs2, Target: target})
}
func (b *Builder) Bne(rs1, rs2 Reg, target int) {
	b.Emit(Inst{Op: Bne, Rs1: rs1, Rs2: rs2, Target: target})
}
func (b *Builder) Blt(rs1, rs2 Reg, target int) {
	b.Emit(Inst{Op: Blt, Rs1: rs1, Rs2: rs2, Target: target})
}
func (b *Builder) Bge(rs1, rs2 Reg, target int) {
	b.Emit(Inst{Op: Bge, Rs1: rs1, Rs2: rs2, Target: target})
}
func (b *Builder) Jmp(target int) { b.Emit(Inst{Op: Jmp, Target: target}) }
func (b *Builder) Halt()          { b.Emit(Inst{Op: Halt}) }
