package guest

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding of guest programs. The dynamic optimization system of the
// paper consumes binaries; this fixed-width encoding (16 bytes per
// instruction) is the guest ISA's "machine code", letting programs be
// stored, shipped, and decoded like the x86 images the paper translates.
//
// Layout (little-endian):
//
//	file   := magic("SMRQ") version(u8) entry(u32) nblocks(u32) block*
//	block  := ninsts(u32) inst*
//	inst   := op(u8) rd(u8) rs1(u8) rs2(u8) target(i32) imm(i64)
//
// FLi reuses the imm field for the float64 bit pattern.

const (
	encMagic   = "SMRQ"
	encVersion = 1
	instBytes  = 16
)

// EncodeProgram serializes a program. The program should be valid; Encode
// does not re-validate.
func EncodeProgram(p *Program) []byte {
	out := make([]byte, 0, 16+p.NumInsts()*instBytes)
	out = append(out, encMagic...)
	out = append(out, encVersion)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.Entry))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Blocks)))
	for _, b := range p.Blocks {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(b.Insts)))
		for _, in := range b.Insts {
			out = append(out, byte(in.Op), byte(in.Rd), byte(in.Rs1), byte(in.Rs2))
			out = binary.LittleEndian.AppendUint32(out, uint32(int32(in.Target)))
			imm := uint64(in.Imm)
			if in.Op == FLi {
				imm = math.Float64bits(in.FImm)
			}
			out = binary.LittleEndian.AppendUint64(out, imm)
		}
	}
	return out
}

// DecodeProgram parses a binary image back into a program and validates
// it.
func DecodeProgram(data []byte) (*Program, error) {
	r := &reader{data: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != encMagic {
		return nil, fmt.Errorf("guest: bad magic %q", magic)
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != encVersion {
		return nil, fmt.Errorf("guest: unsupported encoding version %d", ver)
	}
	entry, err := r.u32()
	if err != nil {
		return nil, err
	}
	nblocks, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nblocks > 1<<20 {
		return nil, fmt.Errorf("guest: implausible block count %d", nblocks)
	}
	p := &Program{Entry: int(entry)}
	for i := 0; i < int(nblocks); i++ {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("guest: implausible instruction count %d", n)
		}
		blk := &Block{ID: i, Insts: make([]Inst, 0, n)}
		for j := 0; j < int(n); j++ {
			raw, err := r.bytes(instBytes)
			if err != nil {
				return nil, err
			}
			in := Inst{
				Op:     Opcode(raw[0]),
				Rd:     Reg(raw[1]),
				Rs1:    Reg(raw[2]),
				Rs2:    Reg(raw[3]),
				Target: int(int32(binary.LittleEndian.Uint32(raw[4:]))),
			}
			imm := binary.LittleEndian.Uint64(raw[8:])
			if in.Op == FLi {
				in.FImm = math.Float64frombits(imm)
			} else {
				in.Imm = int64(imm)
			}
			blk.Insts = append(blk.Insts, in)
		}
		p.Blocks = append(p.Blocks, blk)
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("guest: %d trailing bytes", len(data)-r.pos)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("guest: decoded program invalid: %w", err)
	}
	return p, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if r.pos+n > len(r.data) {
		return nil, fmt.Errorf("guest: truncated image at byte %d", r.pos)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}
