package guest

import (
	"math/rand"
	"strings"
	"testing"
)

// randomValidProgram builds a structurally valid random program.
func randomValidProgram(rng *rand.Rand) *Program {
	b := NewBuilder()
	nblocks := 1 + rng.Intn(5)
	for blk := 0; blk < nblocks; blk++ {
		b.NewBlock()
		for i := rng.Intn(6); i > 0; i-- {
			switch rng.Intn(6) {
			case 0:
				b.Li(Reg(rng.Intn(32)), rng.Int63n(1<<40)-1<<39)
			case 1:
				b.Add(Reg(rng.Intn(32)), Reg(rng.Intn(32)), Reg(rng.Intn(32)))
			case 2:
				b.Ld8(Reg(rng.Intn(32)), Reg(rng.Intn(32)), int64(rng.Intn(256)-128))
			case 3:
				b.St4(Reg(rng.Intn(32)), int64(rng.Intn(256)), Reg(rng.Intn(32)))
			case 4:
				b.FLi(Reg(rng.Intn(32)), rng.NormFloat64())
			default:
				b.FMul(Reg(rng.Intn(32)), Reg(rng.Intn(32)), Reg(rng.Intn(32)))
			}
		}
		if blk == nblocks-1 {
			b.Halt()
		} else if rng.Intn(2) == 0 {
			b.Blt(Reg(rng.Intn(32)), Reg(rng.Intn(32)), rng.Intn(nblocks))
		}
	}
	return b.MustProgram()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := randomValidProgram(rng)
		img := EncodeProgram(p)
		q, err := DecodeProgram(img)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if q.Entry != p.Entry || len(q.Blocks) != len(p.Blocks) {
			t.Fatalf("trial %d: structure mismatch", trial)
		}
		for i, blk := range p.Blocks {
			if len(q.Blocks[i].Insts) != len(blk.Insts) {
				t.Fatalf("trial %d: block %d length mismatch", trial, i)
			}
			for j, in := range blk.Insts {
				if q.Blocks[i].Insts[j] != in {
					t.Fatalf("trial %d: B%d[%d]: %v != %v", trial, i, j, q.Blocks[i].Insts[j], in)
				}
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"short magic":   []byte("SM"),
		"bad magic":     []byte("NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00"),
		"bad version":   append([]byte("SMRQ"), 99, 0, 0, 0, 0, 0, 0, 0, 0),
		"truncated":     EncodeProgram(twoBlockProgram())[:20],
		"trailing junk": append(EncodeProgram(twoBlockProgram()), 0xFF),
	}
	for name, img := range cases {
		if _, err := DecodeProgram(img); err == nil {
			t.Errorf("%s: decode accepted invalid image", name)
		}
	}
}

func TestDecodeRejectsInvalidProgram(t *testing.T) {
	// Encode a program, then corrupt an opcode to an out-of-range value:
	// the decoder must reject it through validation.
	p := twoBlockProgram()
	img := EncodeProgram(p)
	img[13+4] = 0xFF // first instruction's opcode byte
	if _, err := DecodeProgram(img); err == nil {
		t.Error("corrupted opcode accepted")
	}
}

func TestEncodePreservesFloatImm(t *testing.T) {
	b := NewBuilder()
	b.NewBlock()
	b.FLi(3, -123.456e-7)
	b.Halt()
	p := b.MustProgram()
	q, err := DecodeProgram(EncodeProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Blocks[0].Insts[0].FImm; got != -123.456e-7 {
		t.Errorf("FImm = %v after round trip", got)
	}
}

func TestEncodedSize(t *testing.T) {
	p := twoBlockProgram()
	img := EncodeProgram(p)
	want := 4 + 1 + 4 + 4 + len(p.Blocks)*4 + p.NumInsts()*instBytes
	if len(img) != want {
		t.Errorf("image size %d, want %d", len(img), want)
	}
	if !strings.HasPrefix(string(img), "SMRQ") {
		t.Error("image missing magic")
	}
}
