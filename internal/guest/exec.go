package guest

import (
	"fmt"
	"math"
)

// Control describes where execution goes after one instruction.
type Control int

const (
	// CtlNext falls through to the following instruction (or block).
	CtlNext Control = iota
	// CtlBranch transfers to the instruction's Target block.
	CtlBranch
	// CtlHalt stops the guest program.
	CtlHalt
)

// Exec executes a single guest instruction against st and mem, returning
// the control action. Division by zero yields zero (a quiet guest fault)
// so workloads cannot crash the host. Memory faults are returned as errors.
//
// Exec is the single source of truth for guest semantics: the interpreter,
// the atomic-region re-execution path, and the differential tests that
// compare interpreted and optimized execution all go through it.
func Exec(in Inst, st *State, mem *Memory) (Control, error) {
	r := &st.R
	f := &st.F
	switch in.Op {
	case Nop:
	case Li:
		r[in.Rd] = in.Imm
	case Mov:
		r[in.Rd] = r[in.Rs1]
	case Add:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case Sub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case Mul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case Div:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] / r[in.Rs2]
		}
	case And:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case Or:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case Xor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case Shl:
		r[in.Rd] = r[in.Rs1] << (uint64(r[in.Rs2]) & 63)
	case Shr:
		r[in.Rd] = r[in.Rs1] >> (uint64(r[in.Rs2]) & 63)
	case Addi:
		r[in.Rd] = r[in.Rs1] + in.Imm
	case Muli:
		r[in.Rd] = r[in.Rs1] * in.Imm
	case Slt:
		if r[in.Rs1] < r[in.Rs2] {
			r[in.Rd] = 1
		} else {
			r[in.Rd] = 0
		}
	case FLi:
		f[in.Rd] = in.FImm
	case FMov:
		f[in.Rd] = f[in.Rs1]
	case FAdd:
		f[in.Rd] = f[in.Rs1] + f[in.Rs2]
	case FSub:
		f[in.Rd] = f[in.Rs1] - f[in.Rs2]
	case FMul:
		f[in.Rd] = f[in.Rs1] * f[in.Rs2]
	case FDiv:
		f[in.Rd] = f[in.Rs1] / f[in.Rs2]
	case FNeg:
		f[in.Rd] = -f[in.Rs1]
	case FAbs:
		f[in.Rd] = math.Abs(f[in.Rs1])
	case FSqrt:
		f[in.Rd] = math.Sqrt(f[in.Rs1])
	case CvtIF:
		f[in.Rd] = float64(r[in.Rs1])
	case CvtFI:
		r[in.Rd] = int64(f[in.Rs1])
	case Ld1, Ld2, Ld4, Ld8:
		v, err := mem.Load(uint64(r[in.Rs1]+in.Imm), in.Op.AccessSize())
		if err != nil {
			return CtlNext, err
		}
		r[in.Rd] = int64(v)
	case St1, St2, St4, St8:
		if err := mem.Store(uint64(r[in.Rs1]+in.Imm), in.Op.AccessSize(), uint64(r[in.Rd])); err != nil {
			return CtlNext, err
		}
	case FLd8:
		v, err := mem.LoadF64(uint64(r[in.Rs1] + in.Imm))
		if err != nil {
			return CtlNext, err
		}
		f[in.Rd] = v
	case FSt8:
		if err := mem.StoreF64(uint64(r[in.Rs1]+in.Imm), f[in.Rd]); err != nil {
			return CtlNext, err
		}
	case Beq:
		if r[in.Rs1] == r[in.Rs2] {
			return CtlBranch, nil
		}
	case Bne:
		if r[in.Rs1] != r[in.Rs2] {
			return CtlBranch, nil
		}
	case Blt:
		if r[in.Rs1] < r[in.Rs2] {
			return CtlBranch, nil
		}
	case Bge:
		if r[in.Rs1] >= r[in.Rs2] {
			return CtlBranch, nil
		}
	case Jmp:
		return CtlBranch, nil
	case Halt:
		return CtlHalt, nil
	default:
		return CtlNext, fmt.Errorf("guest: cannot execute opcode %s", in.Op)
	}
	return CtlNext, nil
}

// EffectiveAddr returns the effective address and access size of a memory
// instruction given the current state. It panics when in is not a memory
// instruction.
func EffectiveAddr(in Inst, st *State) (addr uint64, size int) {
	if !in.Op.IsMem() {
		panic(fmt.Sprintf("guest: EffectiveAddr on non-memory instruction %s", in))
	}
	return uint64(st.R[in.Rs1] + in.Imm), in.Op.AccessSize()
}
