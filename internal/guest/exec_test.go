package guest

import (
	"math"
	"testing"
)

func exec1(t *testing.T, in Inst, st *State, mem *Memory) Control {
	t.Helper()
	ctl, err := Exec(in, st, mem)
	if err != nil {
		t.Fatalf("Exec(%s): %v", in, err)
	}
	return ctl
}

func TestExecIntALU(t *testing.T) {
	var st State
	mem := NewMemory(16)
	st.R[1], st.R[2] = 7, 3
	cases := []struct {
		in   Inst
		want int64
	}{
		{Inst{Op: Li, Rd: 0, Imm: -9}, -9},
		{Inst{Op: Mov, Rd: 0, Rs1: 1}, 7},
		{Inst{Op: Add, Rd: 0, Rs1: 1, Rs2: 2}, 10},
		{Inst{Op: Sub, Rd: 0, Rs1: 1, Rs2: 2}, 4},
		{Inst{Op: Mul, Rd: 0, Rs1: 1, Rs2: 2}, 21},
		{Inst{Op: Div, Rd: 0, Rs1: 1, Rs2: 2}, 2},
		{Inst{Op: And, Rd: 0, Rs1: 1, Rs2: 2}, 3},
		{Inst{Op: Or, Rd: 0, Rs1: 1, Rs2: 2}, 7},
		{Inst{Op: Xor, Rd: 0, Rs1: 1, Rs2: 2}, 4},
		{Inst{Op: Shl, Rd: 0, Rs1: 1, Rs2: 2}, 56},
		{Inst{Op: Shr, Rd: 0, Rs1: 1, Rs2: 2}, 0},
		{Inst{Op: Addi, Rd: 0, Rs1: 1, Imm: 100}, 107},
		{Inst{Op: Muli, Rd: 0, Rs1: 1, Imm: -2}, -14},
		{Inst{Op: Slt, Rd: 0, Rs1: 2, Rs2: 1}, 1},
		{Inst{Op: Slt, Rd: 0, Rs1: 1, Rs2: 2}, 0},
	}
	for _, c := range cases {
		exec1(t, c.in, &st, mem)
		if st.R[0] != c.want {
			t.Errorf("%s: r0 = %d, want %d", c.in, st.R[0], c.want)
		}
	}
}

func TestExecDivByZero(t *testing.T) {
	var st State
	st.R[1] = 5
	st.R[2] = 0
	exec1(t, Inst{Op: Div, Rd: 0, Rs1: 1, Rs2: 2}, &st, NewMemory(1))
	if st.R[0] != 0 {
		t.Errorf("div by zero: r0 = %d, want 0", st.R[0])
	}
}

func TestExecFloat(t *testing.T) {
	var st State
	mem := NewMemory(16)
	st.F[1], st.F[2] = 6, 1.5
	st.R[3] = -4
	cases := []struct {
		in   Inst
		want float64
	}{
		{Inst{Op: FLi, Rd: 0, FImm: 2.25}, 2.25},
		{Inst{Op: FMov, Rd: 0, Rs1: 1}, 6},
		{Inst{Op: FAdd, Rd: 0, Rs1: 1, Rs2: 2}, 7.5},
		{Inst{Op: FSub, Rd: 0, Rs1: 1, Rs2: 2}, 4.5},
		{Inst{Op: FMul, Rd: 0, Rs1: 1, Rs2: 2}, 9},
		{Inst{Op: FDiv, Rd: 0, Rs1: 1, Rs2: 2}, 4},
		{Inst{Op: FNeg, Rd: 0, Rs1: 1}, -6},
		{Inst{Op: FAbs, Rd: 0, Rs1: 1}, 6},
		{Inst{Op: FSqrt, Rd: 0, Rs1: 1}, math.Sqrt(6)},
		{Inst{Op: CvtIF, Rd: 0, Rs1: 3}, -4},
	}
	for _, c := range cases {
		exec1(t, c.in, &st, mem)
		if st.F[0] != c.want {
			t.Errorf("%s: f0 = %v, want %v", c.in, st.F[0], c.want)
		}
	}
	exec1(t, Inst{Op: CvtFI, Rd: 0, Rs1: 2}, &st, mem)
	if st.R[0] != 1 {
		t.Errorf("cvtfi: r0 = %d, want 1", st.R[0])
	}
}

func TestExecMemory(t *testing.T) {
	var st State
	mem := NewMemory(64)
	st.R[1] = 8 // base
	st.R[2] = -1
	exec1(t, Inst{Op: St8, Rd: 2, Rs1: 1, Imm: 8}, &st, mem)
	exec1(t, Inst{Op: Ld4, Rd: 3, Rs1: 1, Imm: 8}, &st, mem)
	if st.R[3] != 0xFFFFFFFF {
		t.Errorf("ld4 after st8: r3 = %#x, want 0xFFFFFFFF", st.R[3])
	}
	st.F[4] = 3.75
	exec1(t, Inst{Op: FSt8, Rd: 4, Rs1: 1, Imm: 24}, &st, mem)
	exec1(t, Inst{Op: FLd8, Rd: 5, Rs1: 1, Imm: 24}, &st, mem)
	if st.F[5] != 3.75 {
		t.Errorf("fld8 after fst8: f5 = %v, want 3.75", st.F[5])
	}
}

func TestExecMemFaultPropagates(t *testing.T) {
	var st State
	mem := NewMemory(8)
	st.R[1] = 100
	if _, err := Exec(Inst{Op: Ld8, Rd: 0, Rs1: 1}, &st, mem); err == nil {
		t.Error("load fault not propagated")
	}
	if _, err := Exec(Inst{Op: St8, Rd: 0, Rs1: 1}, &st, mem); err == nil {
		t.Error("store fault not propagated")
	}
}

func TestExecControl(t *testing.T) {
	var st State
	mem := NewMemory(1)
	st.R[1], st.R[2] = 1, 2
	cases := []struct {
		in   Inst
		want Control
	}{
		{Inst{Op: Beq, Rs1: 1, Rs2: 2}, CtlNext},
		{Inst{Op: Beq, Rs1: 1, Rs2: 1}, CtlBranch},
		{Inst{Op: Bne, Rs1: 1, Rs2: 2}, CtlBranch},
		{Inst{Op: Blt, Rs1: 1, Rs2: 2}, CtlBranch},
		{Inst{Op: Blt, Rs1: 2, Rs2: 1}, CtlNext},
		{Inst{Op: Bge, Rs1: 2, Rs2: 1}, CtlBranch},
		{Inst{Op: Bge, Rs1: 1, Rs2: 2}, CtlNext},
		{Inst{Op: Jmp}, CtlBranch},
		{Inst{Op: Halt}, CtlHalt},
		{Inst{Op: Nop}, CtlNext},
	}
	for _, c := range cases {
		if got := exec1(t, c.in, &st, mem); got != c.want {
			t.Errorf("%s: control = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestEffectiveAddr(t *testing.T) {
	var st State
	st.R[1] = 100
	addr, size := EffectiveAddr(Inst{Op: Ld4, Rd: 0, Rs1: 1, Imm: -4}, &st)
	if addr != 96 || size != 4 {
		t.Errorf("EffectiveAddr = (%d,%d), want (96,4)", addr, size)
	}
	defer func() {
		if recover() == nil {
			t.Error("EffectiveAddr on non-memory op did not panic")
		}
	}()
	EffectiveAddr(Inst{Op: Add}, &st)
}
