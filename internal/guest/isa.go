// Package guest defines the guest instruction set the dynamic optimization
// system translates from.
//
// The paper translates x86 binaries; the properties its analyses consume are
// much narrower than x86 — loads and stores with base+displacement
// addressing, integer and floating-point arithmetic, and conditional
// branches. This package provides exactly that: a small, regular RISC-like
// ISA with 32 integer and 32 floating-point registers, a byte-addressable
// little-endian memory, and programs structured as basic blocks.
package guest

import "fmt"

// Reg names one of the 32 integer or 32 floating-point guest registers.
// Whether a Reg field selects the integer or the floating-point file is
// determined by the opcode.
type Reg uint8

// NumRegs is the size of each guest register file.
const NumRegs = 32

// Opcode identifies a guest instruction.
type Opcode uint8

// Guest opcodes. Field usage per opcode is documented in the comment; Rd is
// always the destination.
const (
	// Nop does nothing.
	Nop Opcode = iota

	// Integer ALU.
	Li   // Rd = Imm
	Mov  // Rd = Rs1
	Add  // Rd = Rs1 + Rs2
	Sub  // Rd = Rs1 - Rs2
	Mul  // Rd = Rs1 * Rs2
	Div  // Rd = Rs1 / Rs2 (0 on divide-by-zero, like a quiet guest fault)
	And  // Rd = Rs1 & Rs2
	Or   // Rd = Rs1 | Rs2
	Xor  // Rd = Rs1 ^ Rs2
	Shl  // Rd = Rs1 << (Rs2 & 63)
	Shr  // Rd = Rs1 >> (Rs2 & 63) (arithmetic)
	Addi // Rd = Rs1 + Imm
	Muli // Rd = Rs1 * Imm
	Slt  // Rd = 1 if Rs1 < Rs2 else 0

	// Floating point (operates on the F register file).
	FLi   // F[Rd] = FImm
	FMov  // F[Rd] = F[Rs1]
	FAdd  // F[Rd] = F[Rs1] + F[Rs2]
	FSub  // F[Rd] = F[Rs1] - F[Rs2]
	FMul  // F[Rd] = F[Rs1] * F[Rs2]
	FDiv  // F[Rd] = F[Rs1] / F[Rs2]
	FNeg  // F[Rd] = -F[Rs1]
	FAbs  // F[Rd] = |F[Rs1]|
	FSqrt // F[Rd] = sqrt(F[Rs1])
	CvtIF // F[Rd] = float64(R[Rs1])
	CvtFI // Rd = int64(F[Rs1])

	// Memory. The effective address is always R[Rs1] + Imm.
	Ld1  // Rd = zero-extended 1-byte load
	Ld2  // Rd = zero-extended 2-byte load
	Ld4  // Rd = zero-extended 4-byte load
	Ld8  // Rd = 8-byte load
	St1  // store low 1 byte of R[Rd]
	St2  // store low 2 bytes of R[Rd]
	St4  // store low 4 bytes of R[Rd]
	St8  // store R[Rd]
	FLd8 // F[Rd] = 8-byte float load
	FSt8 // store F[Rd]

	// Control. Branch targets are block IDs; a block whose last instruction
	// is not a control instruction falls through to the next block.
	Beq  // if R[Rs1] == R[Rs2] goto Target
	Bne  // if R[Rs1] != R[Rs2] goto Target
	Blt  // if R[Rs1] <  R[Rs2] goto Target
	Bge  // if R[Rs1] >= R[Rs2] goto Target
	Jmp  // goto Target
	Halt // stop the guest program

	numOpcodes // sentinel; must be last
)

var opNames = [numOpcodes]string{
	Nop: "nop",
	Li:  "li", Mov: "mov", Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Addi: "addi", Muli: "muli", Slt: "slt",
	FLi: "fli", FMov: "fmov", FAdd: "fadd", FSub: "fsub", FMul: "fmul",
	FDiv: "fdiv", FNeg: "fneg", FAbs: "fabs", FSqrt: "fsqrt",
	CvtIF: "cvtif", CvtFI: "cvtfi",
	Ld1: "ld1", Ld2: "ld2", Ld4: "ld4", Ld8: "ld8",
	St1: "st1", St2: "st2", St4: "st4", St8: "st8",
	FLd8: "fld8", FSt8: "fst8",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Jmp: "jmp", Halt: "halt",
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsLoad reports whether op reads guest memory.
func (op Opcode) IsLoad() bool {
	switch op {
	case Ld1, Ld2, Ld4, Ld8, FLd8:
		return true
	}
	return false
}

// IsStore reports whether op writes guest memory.
func (op Opcode) IsStore() bool {
	switch op {
	case St1, St2, St4, St8, FSt8:
		return true
	}
	return false
}

// IsMem reports whether op accesses guest memory.
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool {
	switch op {
	case Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsControl reports whether op ends a basic block unconditionally or
// conditionally.
func (op Opcode) IsControl() bool { return op.IsBranch() || op == Jmp || op == Halt }

// IsFloat reports whether op produces or consumes the floating-point file.
func (op Opcode) IsFloat() bool {
	switch op {
	case FLi, FMov, FAdd, FSub, FMul, FDiv, FNeg, FAbs, FSqrt, CvtIF,
		FLd8, FSt8:
		return true
	}
	return false
}

// AccessSize returns the number of bytes op reads or writes, or 0 for
// non-memory opcodes.
func (op Opcode) AccessSize() int {
	switch op {
	case Ld1, St1:
		return 1
	case Ld2, St2:
		return 2
	case Ld4, St4:
		return 4
	case Ld8, St8, FLd8, FSt8:
		return 8
	}
	return 0
}

// Inst is one guest instruction. Field meanings depend on Op; see the
// opcode constants. For stores, Rd names the register holding the value to
// store. For memory operations the effective address is R[Rs1] + Imm.
type Inst struct {
	Op     Opcode
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	FImm   float64
	Target int // destination block ID for Jmp and conditional branches
}

// String renders the instruction in a readable assembly-like syntax.
func (in Inst) String() string {
	switch {
	case in.Op == Nop || in.Op == Halt:
		return in.Op.String()
	case in.Op == Li:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case in.Op == FLi:
		return fmt.Sprintf("fli f%d, %g", in.Rd, in.FImm)
	case in.Op == Mov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case in.Op == FMov || in.Op == FNeg || in.Op == FAbs || in.Op == FSqrt:
		return fmt.Sprintf("%s f%d, f%d", in.Op, in.Rd, in.Rs1)
	case in.Op == CvtIF:
		return fmt.Sprintf("cvtif f%d, r%d", in.Rd, in.Rs1)
	case in.Op == CvtFI:
		return fmt.Sprintf("cvtfi r%d, f%d", in.Rd, in.Rs1)
	case in.Op == Addi || in.Op == Muli:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op.IsFloat() && in.Op.IsLoad():
		return fmt.Sprintf("%s f%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op.IsFloat() && in.Op.IsStore():
		return fmt.Sprintf("%s [r%d%+d], f%d", in.Op, in.Rs1, in.Imm, in.Rd)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s r%d, [r%d%+d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op.IsStore():
		return fmt.Sprintf("%s [r%d%+d], r%d", in.Op, in.Rs1, in.Imm, in.Rd)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s r%d, r%d, B%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case in.Op == Jmp:
		return fmt.Sprintf("jmp B%d", in.Target)
	case in.Op.IsFloat():
		return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
