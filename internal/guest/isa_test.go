package guest

import (
	"strings"
	"testing"
)

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op                              Opcode
		load, store, branch, ctl, float bool
		size                            int
	}{
		{Nop, false, false, false, false, false, 0},
		{Add, false, false, false, false, false, 0},
		{FMul, false, false, false, false, true, 0},
		{Ld1, true, false, false, false, false, 1},
		{Ld2, true, false, false, false, false, 2},
		{Ld4, true, false, false, false, false, 4},
		{Ld8, true, false, false, false, false, 8},
		{FLd8, true, false, false, false, true, 8},
		{St1, false, true, false, false, false, 1},
		{St4, false, true, false, false, false, 4},
		{St8, false, true, false, false, false, 8},
		{FSt8, false, true, false, false, true, 8},
		{Beq, false, false, true, true, false, 0},
		{Blt, false, false, true, true, false, 0},
		{Jmp, false, false, false, true, false, 0},
		{Halt, false, false, false, true, false, 0},
	}
	for _, c := range cases {
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%s: IsLoad = %v, want %v", c.op, got, c.load)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%s: IsStore = %v, want %v", c.op, got, c.store)
		}
		if got := c.op.IsMem(); got != (c.load || c.store) {
			t.Errorf("%s: IsMem = %v, want %v", c.op, got, c.load || c.store)
		}
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%s: IsBranch = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.IsControl(); got != c.ctl {
			t.Errorf("%s: IsControl = %v, want %v", c.op, got, c.ctl)
		}
		if got := c.op.IsFloat(); got != c.float {
			t.Errorf("%s: IsFloat = %v, want %v", c.op, got, c.float)
		}
		if got := c.op.AccessSize(); got != c.size {
			t.Errorf("%s: AccessSize = %d, want %d", c.op, got, c.size)
		}
	}
}

func TestOpcodeNamesComplete(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Li, Rd: 3, Imm: 42}, "li r3, 42"},
		{Inst{Op: Add, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: Addi, Rd: 1, Rs1: 2, Imm: -8}, "addi r1, r2, -8"},
		{Inst{Op: Ld8, Rd: 4, Rs1: 5, Imm: 16}, "ld8 r4, [r5+16]"},
		{Inst{Op: St4, Rd: 4, Rs1: 5, Imm: -4}, "st4 [r5-4], r4"},
		{Inst{Op: FLd8, Rd: 2, Rs1: 7, Imm: 0}, "fld8 f2, [r7+0]"},
		{Inst{Op: FSt8, Rd: 2, Rs1: 7, Imm: 8}, "fst8 [r7+8], f2"},
		{Inst{Op: FAdd, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Inst{Op: Beq, Rs1: 1, Rs2: 2, Target: 7}, "beq r1, r2, B7"},
		{Inst{Op: Jmp, Target: 3}, "jmp B3"},
		{Inst{Op: Halt}, "halt"},
		{Inst{Op: CvtIF, Rd: 1, Rs1: 2}, "cvtif f1, r2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
