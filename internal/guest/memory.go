package guest

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is the flat little-endian byte-addressable guest memory.
//
// Out-of-range accesses return a MemFault rather than panicking: in the
// dynamic optimization system a guest fault inside an atomic region must be
// catchable so the region can roll back (Figure 1 of the paper routes all
// exceptions through the runtime module).
type Memory struct {
	data []byte
}

// MemFault describes an out-of-bounds guest memory access.
type MemFault struct {
	Addr uint64
	Size int
	Len  uint64
}

func (f *MemFault) Error() string {
	return fmt.Sprintf("guest: memory fault: %d-byte access at 0x%x, memory size 0x%x", f.Size, f.Addr, f.Len)
}

// NewMemory allocates a zeroed guest memory of the given size in bytes.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

func (m *Memory) check(addr uint64, size int) error {
	if addr+uint64(size) > uint64(len(m.data)) || addr+uint64(size) < addr {
		return &MemFault{Addr: addr, Size: size, Len: uint64(len(m.data))}
	}
	return nil
}

// Load reads size bytes (1, 2, 4 or 8) at addr, zero-extended to 64 bits.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	if err := m.check(addr, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(m.data[addr]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[addr:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr:])), nil
	case 8:
		return binary.LittleEndian.Uint64(m.data[addr:]), nil
	}
	return 0, fmt.Errorf("guest: invalid load size %d", size)
}

// Store writes the low size bytes (1, 2, 4 or 8) of val at addr.
func (m *Memory) Store(addr uint64, size int, val uint64) error {
	if err := m.check(addr, size); err != nil {
		return err
	}
	switch size {
	case 1:
		m.data[addr] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(m.data[addr:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(m.data[addr:], val)
	default:
		return fmt.Errorf("guest: invalid store size %d", size)
	}
	return nil
}

// Fixed-size fast accessors for the pre-decoded interpreter: the
// bounds-check-plus-little-endian cores of Load/Store with the size switch
// resolved at decode time. Failure returns ok=false with no side effects;
// the caller reconstructs the exact MemFault on its cold path.

// Load1 reads one byte at addr, zero-extended.
func (m *Memory) Load1(addr uint64) (uint64, bool) { return MemLoad1(m.data, addr) }

// Load2 reads a little-endian uint16 at addr, zero-extended.
func (m *Memory) Load2(addr uint64) (uint64, bool) { return MemLoad2(m.data, addr) }

// Load4 reads a little-endian uint32 at addr, zero-extended.
func (m *Memory) Load4(addr uint64) (uint64, bool) { return MemLoad4(m.data, addr) }

// Load8 reads a little-endian uint64 at addr.
func (m *Memory) Load8(addr uint64) (uint64, bool) { return MemLoad8(m.data, addr) }

// Store1 writes the low byte of val at addr.
func (m *Memory) Store1(addr uint64, val uint64) bool { return MemStore1(m.data, addr, val) }

// Store2 writes the low 2 bytes of val at addr, little-endian.
func (m *Memory) Store2(addr uint64, val uint64) bool { return MemStore2(m.data, addr, val) }

// Store4 writes the low 4 bytes of val at addr, little-endian.
func (m *Memory) Store4(addr uint64, val uint64) bool { return MemStore4(m.data, addr, val) }

// Store8 writes val at addr, little-endian.
func (m *Memory) Store8(addr uint64, val uint64) bool { return MemStore8(m.data, addr, val) }

// The MemLoad/MemStore functions below are the same accessors over a raw
// backing slice (see Bytes). Interpreter-style hot loops hoist the slice
// into a local once and use these, so every access keeps the slice header
// in registers instead of reloading it through the *Memory indirection.

// MemLoad1 reads one byte at addr, zero-extended.
func MemLoad1(data []byte, addr uint64) (uint64, bool) {
	if addr >= uint64(len(data)) {
		return 0, false
	}
	return uint64(data[addr]), true
}

// MemLoad2 reads a little-endian uint16 at addr, zero-extended.
func MemLoad2(data []byte, addr uint64) (uint64, bool) {
	if addr+2 > uint64(len(data)) || addr+2 < addr {
		return 0, false
	}
	return uint64(binary.LittleEndian.Uint16(data[addr:])), true
}

// MemLoad4 reads a little-endian uint32 at addr, zero-extended.
func MemLoad4(data []byte, addr uint64) (uint64, bool) {
	if addr+4 > uint64(len(data)) || addr+4 < addr {
		return 0, false
	}
	return uint64(binary.LittleEndian.Uint32(data[addr:])), true
}

// MemLoad8 reads a little-endian uint64 at addr.
func MemLoad8(data []byte, addr uint64) (uint64, bool) {
	if addr+8 > uint64(len(data)) || addr+8 < addr {
		return 0, false
	}
	return binary.LittleEndian.Uint64(data[addr:]), true
}

// MemStore1 writes the low byte of val at addr.
func MemStore1(data []byte, addr uint64, val uint64) bool {
	if addr >= uint64(len(data)) {
		return false
	}
	data[addr] = byte(val)
	return true
}

// MemStore2 writes the low 2 bytes of val at addr, little-endian.
func MemStore2(data []byte, addr uint64, val uint64) bool {
	if addr+2 > uint64(len(data)) || addr+2 < addr {
		return false
	}
	binary.LittleEndian.PutUint16(data[addr:], uint16(val))
	return true
}

// MemStore4 writes the low 4 bytes of val at addr, little-endian.
func MemStore4(data []byte, addr uint64, val uint64) bool {
	if addr+4 > uint64(len(data)) || addr+4 < addr {
		return false
	}
	binary.LittleEndian.PutUint32(data[addr:], uint32(val))
	return true
}

// MemStore8 writes val at addr, little-endian.
func MemStore8(data []byte, addr uint64, val uint64) bool {
	if addr+8 > uint64(len(data)) || addr+8 < addr {
		return false
	}
	binary.LittleEndian.PutUint64(data[addr:], val)
	return true
}

// Bytes returns the raw backing store. It stays valid and aliased to the
// Memory for the Memory's lifetime; callers may read and write contents
// through the MemLoad/MemStore accessors but must not grow or replace it.
func (m *Memory) Bytes() []byte { return m.data }

// Zero resets the memory contents to the all-zeroes initial state without
// reallocating, for benchmark and test reuse.
func (m *Memory) Zero() {
	clear(m.data)
}

// Digest returns a 64-bit FNV-1a hash of the full memory contents — a
// cheap fingerprint the rollback invariant checker compares across an
// atomic region's checkpoint/restore cycle.
func (m *Memory) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// LoadF64 reads a float64 at addr.
func (m *Memory) LoadF64(addr uint64) (float64, error) {
	bits, err := m.Load(addr, 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// StoreF64 writes a float64 at addr.
func (m *Memory) StoreF64(addr uint64, v float64) error {
	return m.Store(addr, 8, math.Float64bits(v))
}

// State is the guest architectural register state: 32 integer and 32
// floating-point registers. The zero value is a reset machine.
type State struct {
	R [NumRegs]int64
	F [NumRegs]float64
}

// Clone returns a heap copy of the state. The atomic-region checkpoint
// now holds a State by value to stay allocation-free; Clone remains for
// callers that want an owned snapshot (reference runs, tests).
func (s *State) Clone() *State {
	c := *s
	return &c
}
