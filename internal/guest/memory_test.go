package guest

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(64)
	for _, size := range []int{1, 2, 4, 8} {
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if err := m.Store(8, size, 0x1122334455667788); err != nil {
			t.Fatalf("Store size %d: %v", size, err)
		}
		got, err := m.Load(8, size)
		if err != nil {
			t.Fatalf("Load size %d: %v", size, err)
		}
		if got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory(16)
	if err := m.Store(0, 4, 0x0A0B0C0D); err != nil {
		t.Fatal(err)
	}
	b0, _ := m.Load(0, 1)
	b3, _ := m.Load(3, 1)
	if b0 != 0x0D || b3 != 0x0A {
		t.Errorf("little-endian layout wrong: byte0=%#x byte3=%#x", b0, b3)
	}
}

func TestMemoryFault(t *testing.T) {
	m := NewMemory(16)
	_, err := m.Load(16, 1)
	var mf *MemFault
	if !errors.As(err, &mf) {
		t.Fatalf("Load(16,1) err = %v, want MemFault", err)
	}
	if _, err := m.Load(13, 4); err == nil {
		t.Error("Load straddling end did not fault")
	}
	if err := m.Store(^uint64(0), 8, 1); err == nil {
		t.Error("Store with wrapping address did not fault")
	}
	if _, err := m.Load(0, 3); err == nil {
		t.Error("Load with invalid size did not fail")
	}
}

func TestMemoryF64(t *testing.T) {
	m := NewMemory(32)
	for _, v := range []float64{0, 1.5, -math.Pi, math.Inf(1)} {
		if err := m.StoreF64(16, v); err != nil {
			t.Fatal(err)
		}
		got, err := m.LoadF64(16)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Errorf("F64 round trip: got %v, want %v", got, v)
		}
	}
}

// Property: any store followed by a load of the same size and address
// returns the stored value truncated to the access size.
func TestMemoryStoreLoadProperty(t *testing.T) {
	m := NewMemory(4096)
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint16, sizeIdx uint8, val uint64) bool {
		size := sizes[int(sizeIdx)%len(sizes)]
		a := uint64(addr) % uint64(4096-size)
		if err := m.Store(a, size, val); err != nil {
			return false
		}
		got, err := m.Load(a, size)
		if err != nil {
			return false
		}
		want := val
		if size < 8 {
			want = val & (1<<(8*size) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateClone(t *testing.T) {
	var s State
	s.R[5] = 99
	s.F[7] = 2.5
	c := s.Clone()
	c.R[5] = 1
	c.F[7] = 0
	if s.R[5] != 99 || s.F[7] != 2.5 {
		t.Error("Clone aliases original state")
	}
}
