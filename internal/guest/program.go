package guest

import "fmt"

// Block is a guest basic block: a straight-line sequence of instructions
// ending either in a control instruction or by falling through to the block
// with the next ID.
type Block struct {
	ID    int
	Insts []Inst
}

// Terminator returns the block's final instruction and whether it is a
// control instruction.
func (b *Block) Terminator() (Inst, bool) {
	if len(b.Insts) == 0 {
		return Inst{}, false
	}
	last := b.Insts[len(b.Insts)-1]
	return last, last.Op.IsControl()
}

// Successors returns the IDs of the blocks control may transfer to after b.
// The fall-through successor, when one exists, is listed first.
func (b *Block) Successors() []int {
	term, ok := b.Terminator()
	if !ok {
		return []int{b.ID + 1}
	}
	switch {
	case term.Op == Halt:
		return nil
	case term.Op == Jmp:
		return []int{term.Target}
	default: // conditional branch: fall through or taken
		return []int{b.ID + 1, term.Target}
	}
}

// Program is a complete guest program: blocks indexed by ID, starting at
// Entry.
type Program struct {
	Blocks []*Block
	Entry  int
}

// Block returns the block with the given ID, or nil when out of range.
func (p *Program) Block(id int) *Block {
	if id < 0 || id >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// NumInsts returns the static instruction count of the program.
func (p *Program) NumInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Validate checks structural well-formedness: block IDs match their indices,
// control instructions appear only in terminator position, branch targets
// are in range, interior blocks that fall through have a following block,
// and register numbers are within the files.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("guest: program has no blocks")
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return fmt.Errorf("guest: entry block %d out of range [0,%d)", p.Entry, len(p.Blocks))
	}
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("guest: block %d is nil", i)
		}
		if b.ID != i {
			return fmt.Errorf("guest: block at index %d has ID %d", i, b.ID)
		}
		for j, in := range b.Insts {
			if in.Op >= numOpcodes {
				return fmt.Errorf("guest: B%d[%d]: invalid opcode %d", i, j, in.Op)
			}
			if in.Op.IsControl() && j != len(b.Insts)-1 {
				return fmt.Errorf("guest: B%d[%d]: control instruction %s not at block end", i, j, in.Op)
			}
			if (in.Op.IsBranch() || in.Op == Jmp) && (in.Target < 0 || in.Target >= len(p.Blocks)) {
				return fmt.Errorf("guest: B%d[%d]: branch target B%d out of range", i, j, in.Target)
			}
			if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
				return fmt.Errorf("guest: B%d[%d]: register out of range in %s", i, j, in)
			}
		}
		if _, ok := b.Terminator(); !ok && i == len(p.Blocks)-1 {
			return fmt.Errorf("guest: final block B%d falls off the end of the program", i)
		}
	}
	return nil
}

// String renders the whole program as assembly-like text.
func (p *Program) String() string {
	var out []byte
	for _, b := range p.Blocks {
		out = append(out, fmt.Sprintf("B%d:\n", b.ID)...)
		for _, in := range b.Insts {
			out = append(out, '\t')
			out = append(out, in.String()...)
			out = append(out, '\n')
		}
	}
	return string(out)
}
