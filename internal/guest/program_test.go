package guest

import (
	"strings"
	"testing"
)

func twoBlockProgram() *Program {
	b := NewBuilder()
	b.NewBlock()
	b.Li(1, 5)
	b.Blt(1, 2, 0)
	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

func TestValidateOK(t *testing.T) {
	p := twoBlockProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			name: "empty",
			prog: &Program{},
			want: "no blocks",
		},
		{
			name: "bad entry",
			prog: &Program{Blocks: []*Block{{ID: 0, Insts: []Inst{{Op: Halt}}}}, Entry: 3},
			want: "entry block",
		},
		{
			name: "mismatched ID",
			prog: &Program{Blocks: []*Block{{ID: 1, Insts: []Inst{{Op: Halt}}}}},
			want: "has ID",
		},
		{
			name: "control mid-block",
			prog: &Program{Blocks: []*Block{{ID: 0, Insts: []Inst{{Op: Halt}, {Op: Nop}}}}},
			want: "not at block end",
		},
		{
			name: "branch out of range",
			prog: &Program{Blocks: []*Block{{ID: 0, Insts: []Inst{{Op: Jmp, Target: 9}}}}},
			want: "out of range",
		},
		{
			name: "register out of range",
			prog: &Program{Blocks: []*Block{{ID: 0, Insts: []Inst{{Op: Add, Rd: 40}, {Op: Halt}}}}},
			want: "register out of range",
		},
		{
			name: "fall off the end",
			prog: &Program{Blocks: []*Block{{ID: 0, Insts: []Inst{{Op: Nop}}}}},
			want: "falls off",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.prog.Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSuccessors(t *testing.T) {
	p := twoBlockProgram()
	got := p.Blocks[0].Successors()
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("branch successors = %v, want [1 0]", got)
	}
	if s := p.Blocks[1].Successors(); s != nil {
		t.Errorf("halt successors = %v, want nil", s)
	}

	b := NewBuilder()
	b.NewBlock()
	b.Nop() // falls through
	b.NewBlock()
	b.Jmp(0)
	p2 := b.MustProgram()
	if s := p2.Blocks[0].Successors(); len(s) != 1 || s[0] != 1 {
		t.Errorf("fallthrough successors = %v, want [1]", s)
	}
	if s := p2.Blocks[1].Successors(); len(s) != 1 || s[0] != 0 {
		t.Errorf("jmp successors = %v, want [0]", s)
	}
}

func TestProgramString(t *testing.T) {
	p := twoBlockProgram()
	s := p.String()
	for _, want := range []string{"B0:", "B1:", "li r1, 5", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestNumInsts(t *testing.T) {
	if got := twoBlockProgram().NumInsts(); got != 3 {
		t.Errorf("NumInsts = %d, want 3", got)
	}
}

func TestBuilderReserveAndAt(t *testing.T) {
	b := NewBuilder()
	b.NewBlock()
	exit := b.Reserve(1)
	b.Jmp(exit)
	b.At(exit)
	b.Halt()
	p := b.MustProgram()
	if len(p.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(p.Blocks))
	}
	if p.Blocks[1].Insts[0].Op != Halt {
		t.Error("reserved block not filled by At")
	}
}

func TestBlockLookup(t *testing.T) {
	p := twoBlockProgram()
	if p.Block(0) == nil || p.Block(1) == nil {
		t.Error("Block lookup failed for valid IDs")
	}
	if p.Block(-1) != nil || p.Block(2) != nil {
		t.Error("Block lookup returned non-nil for invalid IDs")
	}
}
