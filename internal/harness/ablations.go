package harness

import (
	"fmt"

	"smarq/internal/dynopt"
)

// AblationData measures the contribution of each SMARQ design element by
// disabling it and re-running the suite (the ablation studies listed in
// DESIGN.md). Everything is relative to the full SMARQ-64 configuration.
type AblationData struct {
	Benches []string
	// Slowdown[ablation][bench] = cycles(ablated)/cycles(full) - 1,
	// where "full" is SMARQ-64 except for the rotation ablation, which is
	// measured at 16 registers against SMARQ-16 (rotation's value is
	// register reuse, invisible with a large file).
	Slowdown map[string]map[string]float64
	// MeanSlowdown per ablation (geomean - 1).
	MeanSlowdown map[string]float64
	// FalsePositives counts alias exceptions under the no-anti ablation
	// minus those under full SMARQ — the §4.2 effect made measurable.
	FalsePositives map[string]int64
	// WorkingSetNoRotation/WorkingSetFull: mean per-region working set
	// with and without rotation (the §3.2 effect).
	WorkingSetNoRotation, WorkingSetFull map[string]float64
}

// Ablation configuration names.
const (
	AblNoAnti     = "no-anti"
	AblNoRotation = "no-rotation"
	AblNoElim     = "no-elim"
)

// Ablations runs the three ablations against full SMARQ-64.
func (r *Runner) Ablations() (*AblationData, error) {
	mk := func(ab dynopt.Ablation) dynopt.Config {
		c := dynopt.ConfigSMARQ(64)
		c.Ablation = ab
		return c
	}
	r.AddConfig(AblNoAnti, mk(dynopt.Ablation{Anti: true}))
	// Rotation only matters under register scarcity (with 64 registers
	// almost nothing overflows), so its ablation runs at 16 registers and
	// is compared against plain SMARQ-16.
	noRot := dynopt.ConfigSMARQ(16)
	noRot.Ablation = dynopt.Ablation{Rotation: true}
	r.AddConfig(AblNoRotation, noRot)
	r.AddConfig(AblNoElim, mk(dynopt.Ablation{Elim: true}))

	d := &AblationData{
		Benches:              r.benchNames(),
		Slowdown:             map[string]map[string]float64{},
		MeanSlowdown:         map[string]float64{},
		FalsePositives:       map[string]int64{},
		WorkingSetNoRotation: map[string]float64{},
		WorkingSetFull:       map[string]float64{},
	}
	r.Warm(crossCells(d.Benches,
		[]string{CfgSMARQ64, CfgSMARQ16, AblNoAnti, AblNoRotation, AblNoElim}))
	for _, abl := range []string{AblNoAnti, AblNoRotation, AblNoElim} {
		d.Slowdown[abl] = map[string]float64{}
		var ratios []float64
		baseCfg := CfgSMARQ64
		if abl == AblNoRotation {
			baseCfg = CfgSMARQ16
		}
		for _, bench := range d.Benches {
			full, err := r.Run(bench, baseCfg)
			if err != nil {
				return nil, err
			}
			ab, err := r.Run(bench, abl)
			if err != nil {
				return nil, err
			}
			ratio := float64(ab.TotalCycles) / float64(full.TotalCycles)
			d.Slowdown[abl][bench] = ratio - 1
			ratios = append(ratios, ratio)

			switch abl {
			case AblNoAnti:
				d.FalsePositives[bench] = ab.AliasExceptions - full.AliasExceptions
			case AblNoRotation:
				d.WorkingSetNoRotation[bench] = meanWorkingSet(ab)
				d.WorkingSetFull[bench] = meanWorkingSet(full)
			}
		}
		d.MeanSlowdown[abl] = geomean(ratios) - 1
	}
	return d, nil
}

func meanWorkingSet(st *dynopt.Stats) float64 {
	total, n := 0, 0
	for _, reg := range st.Regions {
		if reg.Alloc.PBits > 0 {
			total += reg.Alloc.WorkingSet
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

// Render formats the ablation study.
func (d *AblationData) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%+.2f%%", 100*d.Slowdown[AblNoAnti][b]),
			fmt.Sprintf("%d", d.FalsePositives[b]),
			fmt.Sprintf("%+.2f%%", 100*d.Slowdown[AblNoRotation][b]),
			fmt.Sprintf("%.1f/%.1f", d.WorkingSetNoRotation[b], d.WorkingSetFull[b]),
			fmt.Sprintf("%+.2f%%", 100*d.Slowdown[AblNoElim][b]),
		})
	}
	rows = append(rows, []string{
		"geomean",
		fmt.Sprintf("%+.2f%%", 100*d.MeanSlowdown[AblNoAnti]),
		"",
		fmt.Sprintf("%+.2f%%", 100*d.MeanSlowdown[AblNoRotation]),
		"",
		fmt.Sprintf("%+.2f%%", 100*d.MeanSlowdown[AblNoElim]),
	})
	return "Ablations: slowdown from disabling each SMARQ design element (vs full SMARQ-64)\n" +
		table([]string{"benchmark", "no-anti", "false-pos", "no-rotation", "ws no-rot/full", "no-elim"}, rows)
}
