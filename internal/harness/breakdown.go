package harness

import "fmt"

// BreakdownData decomposes each benchmark's cycles under SMARQ-64 into
// the runtime's cost centers — translated-region execution, interpretation,
// rollback penalties, and the optimizer itself. It explains *where* the
// remaining time goes and makes dilution effects (warm-up, side exits)
// visible next to the headline speedups.
type BreakdownData struct {
	Benches []string
	// Fractions of total cycles per benchmark.
	Region, Interp, Rollback, Opt map[string]float64
	// CoveragePct is the share of guest instructions retired in
	// translated regions.
	CoveragePct map[string]float64
}

// Breakdown computes the decomposition from the SMARQ-64 runs.
func (r *Runner) Breakdown() (*BreakdownData, error) {
	d := &BreakdownData{
		Benches: r.benchNames(),
		Region:  map[string]float64{}, Interp: map[string]float64{},
		Rollback: map[string]float64{}, Opt: map[string]float64{},
		CoveragePct: map[string]float64{},
	}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64}))
	for _, bench := range d.Benches {
		st, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		total := float64(st.TotalCycles)
		if total == 0 {
			continue
		}
		d.Region[bench] = float64(st.RegionCycles) / total
		d.Interp[bench] = float64(st.InterpCycles) / total
		d.Rollback[bench] = float64(st.RollbackCycles) / total
		d.Opt[bench] = float64(st.OptCycles+st.SchedCycles) / total
		if st.GuestInsts > 0 {
			d.CoveragePct[bench] = 100 * float64(st.GuestInsts-st.InterpretedInsts) / float64(st.GuestInsts)
		}
	}
	return d, nil
}

// Render formats the breakdown.
func (d *BreakdownData) Render() string {
	rows := make([][]string, 0, len(d.Benches))
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.1f%%", 100*d.Region[b]),
			fmt.Sprintf("%.1f%%", 100*d.Interp[b]),
			fmt.Sprintf("%.1f%%", 100*d.Rollback[b]),
			fmt.Sprintf("%.1f%%", 100*d.Opt[b]),
			fmt.Sprintf("%.1f%%", d.CoveragePct[b]),
		})
	}
	return "Cycle breakdown under SMARQ-64 (and translated-code coverage)\n" +
		table([]string{"benchmark", "regions", "interpreter", "rollbacks", "optimizer", "coverage"}, rows)
}
