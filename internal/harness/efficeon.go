package harness

import (
	"fmt"

	"smarq/internal/dynopt"
)

// EfficeonData compares the *true* bit-mask hardware (named registers,
// explicit check masks, hard 15-register encoding cap — §2.2) against the
// paper's SMARQ-16 approximation and full SMARQ-64.
type EfficeonData struct {
	Benches []string
	// Speedup[bench][config] over the no-HW baseline for
	// efficeon / smarq16 / smarq64.
	Speedup map[string]map[string]float64
	Mean    map[string]float64
	// Overflows counts compile-time bitmask allocation failures across
	// the suite (regions that had to retreat to less speculation because
	// 15 named registers were not enough — the encoding wall).
	Overflows int
}

// CfgEfficeon is the configuration name of the true bit-mask model.
const CfgEfficeon = "efficeon"

// Efficeon runs the comparison.
func (r *Runner) Efficeon() (*EfficeonData, error) {
	r.AddConfig(CfgEfficeon, dynopt.ConfigEfficeon())
	configs := []string{CfgEfficeon, CfgSMARQ16, CfgSMARQ64}
	d := &EfficeonData{
		Benches: r.benchNames(),
		Speedup: map[string]map[string]float64{},
		Mean:    map[string]float64{},
	}
	r.Warm(crossCells(d.Benches, append([]string{CfgNoHW}, configs...)))
	per := map[string][]float64{}
	for _, bench := range d.Benches {
		base, err := r.Run(bench, CfgNoHW)
		if err != nil {
			return nil, err
		}
		d.Speedup[bench] = map[string]float64{}
		for _, cfg := range configs {
			st, err := r.Run(bench, cfg)
			if err != nil {
				return nil, err
			}
			sp := float64(base.TotalCycles) / float64(st.TotalCycles)
			d.Speedup[bench][cfg] = sp
			per[cfg] = append(per[cfg], sp)
			if cfg == CfgEfficeon {
				d.Overflows += st.OverflowRetries
			}
		}
	}
	for cfg, sps := range per {
		d.Mean[cfg] = geomean(sps)
	}
	return d, nil
}

// Render formats the comparison.
func (d *EfficeonData) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.3f", d.Speedup[b][CfgEfficeon]),
			fmt.Sprintf("%.3f", d.Speedup[b][CfgSMARQ16]),
			fmt.Sprintf("%.3f", d.Speedup[b][CfgSMARQ64]),
		})
	}
	rows = append(rows, []string{
		"geomean",
		fmt.Sprintf("%.3f", d.Mean[CfgEfficeon]),
		fmt.Sprintf("%.3f", d.Mean[CfgSMARQ16]),
		fmt.Sprintf("%.3f", d.Mean[CfgSMARQ64]),
	})
	out := "Efficeon comparison: true bit-mask (15 named registers) vs SMARQ\n" +
		table([]string{"benchmark", "Efficeon(15)", "SMARQ16", "SMARQ(64)"}, rows)
	out += fmt.Sprintf("bitmask encoding-cap retreats during compilation: %d\n", d.Overflows)
	return out
}
