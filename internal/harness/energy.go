package harness

import (
	"fmt"

	"smarq/internal/dynopt"
)

// EnergyData quantifies §2.4's energy argument: how many register
// comparisons each detection scheme performs per thousand retired guest
// instructions. The ordered queue with SMARQ's precise windows (and
// anti-constraints suppressing unnecessary checks) should examine far
// fewer registers than the Itanium-like ALAT, whose every store scans
// every live advanced load.
type EnergyData struct {
	Benches []string
	// ChecksPerKInst[bench][config] — register comparisons per 1000
	// retired guest instructions.
	ChecksPerKInst map[string]map[string]float64
	Mean           map[string]float64
}

// Energy measures the comparison counts under SMARQ-64, the true bit-mask
// model and the Itanium-like ALAT.
func (r *Runner) Energy() (*EnergyData, error) {
	r.AddConfig(CfgEfficeon, dynopt.ConfigEfficeon())
	configs := []string{CfgSMARQ64, CfgEfficeon, CfgALAT}
	d := &EnergyData{
		Benches:        r.benchNames(),
		ChecksPerKInst: map[string]map[string]float64{},
		Mean:           map[string]float64{},
	}
	r.Warm(crossCells(d.Benches, configs))
	sums := map[string][]float64{}
	for _, bench := range d.Benches {
		d.ChecksPerKInst[bench] = map[string]float64{}
		for _, cfg := range configs {
			st, err := r.Run(bench, cfg)
			if err != nil {
				return nil, err
			}
			v := 1000 * float64(st.HWChecks) / float64(st.GuestInsts)
			d.ChecksPerKInst[bench][cfg] = v
			sums[cfg] = append(sums[cfg], v)
		}
	}
	for cfg, vs := range sums {
		d.Mean[cfg] = mean(vs)
	}
	return d, nil
}

// Render formats the comparison.
func (d *EnergyData) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.1f", d.ChecksPerKInst[b][CfgSMARQ64]),
			fmt.Sprintf("%.1f", d.ChecksPerKInst[b][CfgEfficeon]),
			fmt.Sprintf("%.1f", d.ChecksPerKInst[b][CfgALAT]),
		})
	}
	rows = append(rows, []string{
		"mean",
		fmt.Sprintf("%.1f", d.Mean[CfgSMARQ64]),
		fmt.Sprintf("%.1f", d.Mean[CfgEfficeon]),
		fmt.Sprintf("%.1f", d.Mean[CfgALAT]),
	})
	return "Runtime alias checks per 1000 guest instructions (the §2.4 energy proxy)\n" +
		table([]string{"benchmark", "SMARQ(64)", "Efficeon(15)", "Itanium-like"}, rows)
}
