package harness

import (
	"fmt"
	"strings"

	"smarq/internal/dynopt"
	"smarq/internal/health"
)

// Figure15Data reproduces Figure 15: speedup of each alias-detection
// scheme over the no-alias-hardware baseline.
type Figure15Data struct {
	Benches []string
	// Speedup[bench][config] = cycles(nohw)/cycles(config).
	Speedup map[string]map[string]float64
	// Mean[config] is the geometric mean speedup.
	Mean map[string]float64
}

// Figure15 runs the suite under SMARQ-64, SMARQ-16 and the Itanium-like
// model, each normalized to the no-hardware baseline.
func (r *Runner) Figure15() (*Figure15Data, error) {
	configs := []string{CfgSMARQ64, CfgSMARQ16, CfgALAT}
	d := &Figure15Data{
		Benches: r.benchNames(),
		Speedup: make(map[string]map[string]float64),
		Mean:    make(map[string]float64),
	}
	r.Warm(crossCells(d.Benches, append([]string{CfgNoHW}, configs...)))
	perCfg := map[string][]float64{}
	for _, bench := range d.Benches {
		base, err := r.Run(bench, CfgNoHW)
		if err != nil {
			return nil, err
		}
		d.Speedup[bench] = make(map[string]float64)
		for _, cfg := range configs {
			st, err := r.Run(bench, cfg)
			if err != nil {
				return nil, err
			}
			sp := float64(base.TotalCycles) / float64(st.TotalCycles)
			d.Speedup[bench][cfg] = sp
			perCfg[cfg] = append(perCfg[cfg], sp)
		}
	}
	for cfg, sps := range perCfg {
		d.Mean[cfg] = geomean(sps)
	}
	return d, nil
}

// Render formats the figure as a table.
func (d *Figure15Data) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.3f", d.Speedup[b][CfgSMARQ64]),
			fmt.Sprintf("%.3f", d.Speedup[b][CfgSMARQ16]),
			fmt.Sprintf("%.3f", d.Speedup[b][CfgALAT]),
		})
	}
	rows = append(rows, []string{
		"geomean",
		fmt.Sprintf("%.3f", d.Mean[CfgSMARQ64]),
		fmt.Sprintf("%.3f", d.Mean[CfgSMARQ16]),
		fmt.Sprintf("%.3f", d.Mean[CfgALAT]),
	})
	return "Figure 15: speedup over no-alias-HW baseline\n" +
		table([]string{"benchmark", "SMARQ(64)", "SMARQ16", "Itanium-like"}, rows)
}

// Figure16Data reproduces Figure 16: the performance impact of disabling
// speculative store reordering under SMARQ-64.
type Figure16Data struct {
	Benches []string
	// Impact[bench] = cycles(no-store-reorder)/cycles(smarq64) - 1:
	// positive means store reordering helps.
	Impact map[string]float64
	Mean   float64
}

// Figure16 measures store-reordering impact.
func (r *Runner) Figure16() (*Figure16Data, error) {
	d := &Figure16Data{Benches: r.benchNames(), Impact: map[string]float64{}}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64, CfgNoStRe}))
	var ratios []float64
	for _, bench := range d.Benches {
		with, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		without, err := r.Run(bench, CfgNoStRe)
		if err != nil {
			return nil, err
		}
		ratio := float64(without.TotalCycles) / float64(with.TotalCycles)
		d.Impact[bench] = ratio - 1
		ratios = append(ratios, ratio)
	}
	d.Mean = geomean(ratios) - 1
	return d, nil
}

// Render formats the figure.
func (d *Figure16Data) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{b, fmt.Sprintf("%+.2f%%", 100*d.Impact[b])})
	}
	rows = append(rows, []string{"geomean", fmt.Sprintf("%+.2f%%", 100*d.Mean)})
	return "Figure 16: slowdown from disabling store reordering (SMARQ-64)\n" +
		table([]string{"benchmark", "impact"}, rows)
}

// Figure14Data reproduces Figure 14: memory operations per superblock.
type Figure14Data struct {
	Benches []string
	// Avg and Max memory ops per compiled superblock.
	Avg map[string]float64
	Max map[string]int
}

// Figure14 collects superblock sizes from the SMARQ-64 runs.
func (r *Runner) Figure14() (*Figure14Data, error) {
	d := &Figure14Data{Benches: r.benchNames(), Avg: map[string]float64{}, Max: map[string]int{}}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64}))
	for _, bench := range d.Benches {
		st, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		total, max := 0, 0
		for _, reg := range st.Regions {
			total += reg.MemOps
			if reg.MemOps > max {
				max = reg.MemOps
			}
		}
		if n := len(st.Regions); n > 0 {
			d.Avg[bench] = float64(total) / float64(n)
		}
		d.Max[bench] = max
	}
	return d, nil
}

// Render formats the figure.
func (d *Figure14Data) Render() string {
	rows := make([][]string, 0, len(d.Benches))
	for _, b := range d.Benches {
		rows = append(rows, []string{b, fmt.Sprintf("%.1f", d.Avg[b]), fmt.Sprintf("%d", d.Max[b])})
	}
	return "Figure 14: memory operations per superblock\n" +
		table([]string{"benchmark", "avg", "max"}, rows)
}

// Figure17Data reproduces Figure 17: the alias register working set under
// four allocation policies, normalized to one register per memory
// operation in program order.
type Figure17Data struct {
	Benches []string
	// Normalized working sets per benchmark: PBitOnly, SMARQ, LowerBound
	// (ProgramOrder is the normalizer, 1.0).
	PBitOnly, SMARQ, LowerBound map[string]float64
	// Means across the suite.
	MeanPBitOnly, MeanSMARQ, MeanLowerBound float64
}

// Figure17 aggregates the allocator's working-set statistics over every
// compiled superblock of the SMARQ-64 runs, weighting by memory
// operations as the paper does ("normalized to the number of memory
// operations averaged over all the superblocks").
func (r *Runner) Figure17() (*Figure17Data, error) {
	d := &Figure17Data{
		Benches:  r.benchNames(),
		PBitOnly: map[string]float64{}, SMARQ: map[string]float64{}, LowerBound: map[string]float64{},
	}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64}))
	var allP, allS, allL []float64
	for _, bench := range d.Benches {
		st, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		var mem, pb, sq, lb int
		for _, reg := range st.Regions {
			mem += reg.Working.ProgramOrder
			pb += reg.Working.PBitOnly
			sq += reg.Working.SMARQ
			lb += reg.Working.LowerBound
		}
		if mem == 0 {
			continue
		}
		d.PBitOnly[bench] = float64(pb) / float64(mem)
		d.SMARQ[bench] = float64(sq) / float64(mem)
		d.LowerBound[bench] = float64(lb) / float64(mem)
		allP = append(allP, d.PBitOnly[bench])
		allS = append(allS, d.SMARQ[bench])
		allL = append(allL, d.LowerBound[bench])
	}
	d.MeanPBitOnly = mean(allP)
	d.MeanSMARQ = mean(allS)
	d.MeanLowerBound = mean(allL)
	return d, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Render formats the figure.
func (d *Figure17Data) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b, "1.000",
			fmt.Sprintf("%.3f", d.PBitOnly[b]),
			fmt.Sprintf("%.3f", d.SMARQ[b]),
			fmt.Sprintf("%.3f", d.LowerBound[b]),
		})
	}
	rows = append(rows, []string{
		"mean", "1.000",
		fmt.Sprintf("%.3f", d.MeanPBitOnly),
		fmt.Sprintf("%.3f", d.MeanSMARQ),
		fmt.Sprintf("%.3f", d.MeanLowerBound),
	})
	return "Figure 17: alias register working set (normalized to program-order allocation)\n" +
		table([]string{"benchmark", "prog-order", "P-bit-only", "SMARQ", "lower-bound"}, rows)
}

// Figure18Data reproduces Figure 18: the optimizer's own execution time as
// a fraction of total execution, and the share spent in scheduling.
type Figure18Data struct {
	Benches []string
	// OptPct[bench]: (opt+sched cycles)/total; SchedShare: sched/(opt+sched).
	OptPct, SchedShare map[string]float64
	// Amortized100 extrapolates the overhead to a run 100x longer (the
	// paper measured full SPEC runs, billions of instructions, where the
	// one-time translation cost dilutes to 0.05%; our runs are ~10^6
	// guest instructions, so the measured percentage is higher by
	// construction).
	Amortized100   map[string]float64
	MeanOptPct     float64
	MeanSchedShare float64
	MeanAmortized  float64
}

// Figure18 measures optimization overhead from the SMARQ-64 runs.
func (r *Runner) Figure18() (*Figure18Data, error) {
	d := &Figure18Data{Benches: r.benchNames(), OptPct: map[string]float64{},
		SchedShare: map[string]float64{}, Amortized100: map[string]float64{}}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64}))
	var allPct, allShare, allAmort []float64
	for _, bench := range d.Benches {
		st, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		optTotal := st.OptCycles + st.SchedCycles
		if st.TotalCycles > 0 {
			d.OptPct[bench] = float64(optTotal) / float64(st.TotalCycles)
			allPct = append(allPct, d.OptPct[bench])
			run := float64(st.TotalCycles - optTotal)
			d.Amortized100[bench] = float64(optTotal) / (float64(optTotal) + 100*run)
			allAmort = append(allAmort, d.Amortized100[bench])
		}
		if optTotal > 0 {
			d.SchedShare[bench] = float64(st.SchedCycles) / float64(optTotal)
			allShare = append(allShare, d.SchedShare[bench])
		}
	}
	d.MeanOptPct = mean(allPct)
	d.MeanSchedShare = mean(allShare)
	d.MeanAmortized = mean(allAmort)
	return d, nil
}

// Render formats the figure.
func (d *Figure18Data) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.4f%%", 100*d.OptPct[b]),
			fmt.Sprintf("%.4f%%", 100*d.Amortized100[b]),
			fmt.Sprintf("%.1f%%", 100*d.SchedShare[b]),
		})
	}
	rows = append(rows, []string{
		"mean",
		fmt.Sprintf("%.4f%%", 100*d.MeanOptPct),
		fmt.Sprintf("%.4f%%", 100*d.MeanAmortized),
		fmt.Sprintf("%.1f%%", 100*d.MeanSchedShare),
	})
	return "Figure 18: optimization overhead (% of execution; scheduling share of it)\n" +
		table([]string{"benchmark", "measured", "at 100x run length", "scheduling share"}, rows)
}

// Figure19Data reproduces Figure 19: constraints per memory operation,
// plus the AMOV statistics §3.3/§5.2 discuss.
type Figure19Data struct {
	Benches []string
	// Per-benchmark constraints per memory op.
	ChecksPerMem, AntisPerMem map[string]float64
	// AMOV statistics across the suite.
	AMovs, AMovCleanups   int
	MeanChecks, MeanAntis float64
}

// Figure19 aggregates constraint counts from the SMARQ-64 runs.
func (r *Runner) Figure19() (*Figure19Data, error) {
	d := &Figure19Data{Benches: r.benchNames(), ChecksPerMem: map[string]float64{}, AntisPerMem: map[string]float64{}}
	r.Warm(crossCells(d.Benches, []string{CfgSMARQ64}))
	var allC, allA []float64
	for _, bench := range d.Benches {
		st, err := r.Run(bench, CfgSMARQ64)
		if err != nil {
			return nil, err
		}
		var mem, checks, antis int
		for _, reg := range st.Regions {
			mem += reg.MemOps
			checks += reg.Alloc.Checks
			antis += reg.Alloc.Antis
			d.AMovs += reg.Alloc.AMovs
			d.AMovCleanups += reg.Alloc.AMovCleanups
		}
		if mem == 0 {
			continue
		}
		d.ChecksPerMem[bench] = float64(checks) / float64(mem)
		d.AntisPerMem[bench] = float64(antis) / float64(mem)
		allC = append(allC, d.ChecksPerMem[bench])
		allA = append(allA, d.AntisPerMem[bench])
	}
	d.MeanChecks = mean(allC)
	d.MeanAntis = mean(allA)
	return d, nil
}

// Render formats the figure.
func (d *Figure19Data) Render() string {
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.2f", d.ChecksPerMem[b]),
			fmt.Sprintf("%.2f", d.AntisPerMem[b]),
		})
	}
	rows = append(rows, []string{
		"mean",
		fmt.Sprintf("%.2f", d.MeanChecks),
		fmt.Sprintf("%.2f", d.MeanAntis),
	})
	out := "Figure 19: constraints per memory operation (SMARQ-64)\n" +
		table([]string{"benchmark", "check", "anti"}, rows)
	if d.AMovs > 0 {
		out += fmt.Sprintf("AMOVs inserted: %d (%.0f%% pure cleanups)\n",
			d.AMovs, 100*float64(d.AMovCleanups)/float64(d.AMovs))
	} else {
		out += "AMOVs inserted: 0\n"
	}
	return out
}

// ScalingData is the §2.2/§6.1 register-count sweep (an extension of
// Figure 15 at finer granularity).
type ScalingData struct {
	Regs    []int
	Benches []string
	// Speedup[regs][bench] over the no-HW baseline.
	Speedup map[int]map[string]float64
	Mean    map[int]float64
}

// ScalingSweep measures speedup as the ordered queue grows.
func (r *Runner) ScalingSweep(regs []int) (*ScalingData, error) {
	if len(regs) == 0 {
		regs = []int{8, 16, 24, 32, 48, 64}
	}
	d := &ScalingData{Regs: regs, Benches: r.benchNames(),
		Speedup: map[int]map[string]float64{}, Mean: map[int]float64{}}
	sweep := []string{CfgNoHW}
	for _, n := range regs {
		name := fmt.Sprintf("smarq%d", n)
		r.AddConfig(name, dynopt.ConfigSMARQ(n))
		sweep = append(sweep, name)
	}
	r.Warm(crossCells(d.Benches, sweep))
	for _, n := range regs {
		name := fmt.Sprintf("smarq%d", n)
		d.Speedup[n] = map[string]float64{}
		var sps []float64
		for _, bench := range d.Benches {
			base, err := r.Run(bench, CfgNoHW)
			if err != nil {
				return nil, err
			}
			st, err := r.Run(bench, name)
			if err != nil {
				return nil, err
			}
			sp := float64(base.TotalCycles) / float64(st.TotalCycles)
			d.Speedup[n][bench] = sp
			sps = append(sps, sp)
		}
		d.Mean[n] = geomean(sps)
	}
	return d, nil
}

// Render formats the sweep.
func (d *ScalingData) Render() string {
	header := []string{"benchmark"}
	for _, n := range d.Regs {
		header = append(header, fmt.Sprintf("%d regs", n))
	}
	rows := make([][]string, 0, len(d.Benches)+1)
	for _, b := range d.Benches {
		row := []string{b}
		for _, n := range d.Regs {
			row = append(row, fmt.Sprintf("%.3f", d.Speedup[n][b]))
		}
		rows = append(rows, row)
	}
	last := []string{"geomean"}
	for _, n := range d.Regs {
		last = append(last, fmt.Sprintf("%.3f", d.Mean[n]))
	}
	rows = append(rows, last)
	return "Alias register scaling sweep: speedup over no-alias-HW baseline\n" +
		table(header, rows)
}

// SummaryLine renders a one-line run summary for the CLI tools.
func SummaryLine(st *dynopt.Stats) string {
	return fmt.Sprintf("cycles=%d (interp=%d region=%d rollback=%d opt=%d) commits=%d guard-fails=%d alias-exc=%d regions=%d",
		st.TotalCycles, st.InterpCycles, st.RegionCycles, st.RollbackCycles,
		st.OptCycles+st.SchedCycles, st.Commits, st.GuardFails, st.AliasExceptions, st.RegionsCompiled)
}

// RecoveryLine renders the tiered-recovery controller's one-line summary:
// ladder moves, cache evictions, and end-of-run residency per tier.
func RecoveryLine(st *dynopt.Stats) string {
	rec := &st.Recovery
	tiers := make([]string, 0, dynopt.NumTiers)
	for ti := 0; ti < dynopt.NumTiers; ti++ {
		tiers = append(tiers, fmt.Sprintf("%s=%d", dynopt.Tier(ti), rec.TierRegions[ti]))
	}
	return fmt.Sprintf("demotions=%d promotions=%d evictions=%d sticky=%d tiers[%s]",
		rec.Demotions, rec.Promotions, rec.Evictions, rec.StickyRegions,
		strings.Join(tiers, " "))
}

// InjectedLine renders the chaos injector's fired-fault counters; the
// host fault classes are appended only when any of them fired, so
// guest-only chaos output is unchanged.
func InjectedLine(st *dynopt.Stats) string {
	in := st.Injected
	line := fmt.Sprintf("spurious-alias=%d guard-fail=%d compile-fail=%d corruptions=%d",
		in.SpuriousAliases, in.GuardFails, in.CompileFails, in.Corruptions)
	if in.WorkerPanics+in.CompileHangs+in.PoisonedResults+in.MemoPressure > 0 {
		line += fmt.Sprintf(" worker-panic=%d compile-hang=%d poison=%d memo-pressure=%d",
			in.WorkerPanics, in.CompileHangs, in.PoisonedResults, in.MemoPressure)
	}
	return line
}

// HealthLine renders the graceful-degradation controller's one-line
// summary: ladder moves, where the run ended up, and how much of the
// workload each level saw.
func HealthLine(st *dynopt.Stats) string {
	hs := &st.Health
	entries := make([]string, 0, len(hs.LevelEntries))
	for lv, n := range hs.LevelEntries {
		if n > 0 {
			entries = append(entries, fmt.Sprintf("%s=%d", health.Level(lv), n))
		}
	}
	return fmt.Sprintf("level=%s demotions=%d promotions=%d host-faults=%d rollbacks=%d quarantined=%d sticky=%v entries[%s]",
		hs.FinalLevel, hs.Demotions, hs.Promotions, hs.HostFaults, hs.Rollbacks,
		hs.QuarantinedRegions, hs.Sticky, strings.Join(entries, " "))
}
