// Fleet execution: M independent tenant Systems running concurrently on
// their own goroutines, all compiling through one shared host worker pool
// and one sharded content-addressed compile cache (dynopt.CodeCache).
// Tenants share *host* resources only — guest state, memory, stats and
// telemetry stay per-tenant, and every tenant's simulated results are
// byte-identical to its solo run modulo the cache hit/miss/dedupe
// counters (VerifyFleet checks exactly that).

package harness

import (
	"context"
	"fmt"
	"reflect"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"smarq/internal/codecache"
	"smarq/internal/compilequeue"
	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

// FleetConfig configures one fleet run.
type FleetConfig struct {
	// Tenants is the number of concurrently running Systems (>= 1).
	Tenants int
	// Mix assigns benchmarks to tenants round-robin (tenant i runs
	// Mix[i%len(Mix)]). Empty selects {"swim"}.
	Mix []string
	// Config names the dynopt configuration every tenant runs under
	// (ParseConfig names). Empty selects "smarq64".
	Config string
	// CompileWorkers sizes the shared host compile pool (0 selects 2).
	// Every tenant's Compile.Workers is set to the same value, so a
	// 1-tenant fleet is exactly the solo baseline configuration.
	CompileWorkers int
	// CacheShards/CacheMaxEntries/CacheMaxBytes configure the shared
	// compile cache (see dynopt.CodeCacheOptions); zeros mean the default
	// shard count and unbounded budgets.
	CacheShards     int
	CacheMaxEntries int64
	CacheMaxBytes   int64
	// MaxInsts caps each tenant's retired guest instructions; 0 uses each
	// benchmark's own budget.
	MaxInsts uint64
	// Scale divides the workload iteration counts (workload.SuiteScaled).
	Scale int64
	// Telemetry, when set, builds each tenant's telemetry bundle before
	// it runs (nil return leaves that tenant untraced). The fleet flushes
	// each tenant's tracer when its run completes; closing sinks is the
	// caller's job.
	Telemetry func(tenant int, bench string) *telemetry.Telemetry
	// Metrics, when set, receives the shared cache's fleet-global
	// instruments (codecache_* counters and gauges) at end of run.
	Metrics *telemetry.Registry
	// Listen, when non-empty, serves the observability plane (Prometheus
	// /metrics with per-tenant labels, /healthz, /debug/cache,
	// /debug/tenants, pprof) at this address for the duration of the run;
	// ":0" binds an ephemeral port. Every tenant is given a metrics
	// registry (reusing the Telemetry hook's when it provides one) so the
	// live page has per-tenant series. The server is shut down before
	// RunFleet returns.
	Listen string
	// ObsReady, when set with Listen, is called with the server's bound
	// address once it is serving, before any tenant starts — tests use it
	// to scrape a live fleet on a port-0 bind.
	ObsReady func(addr string)
}

// withDefaults resolves the zero-value knobs.
func (fc FleetConfig) withDefaults() FleetConfig {
	if fc.Tenants < 1 {
		fc.Tenants = 1
	}
	if len(fc.Mix) == 0 {
		fc.Mix = []string{"swim"}
	}
	if fc.Config == "" {
		fc.Config = CfgSMARQ64
	}
	if fc.CompileWorkers < 1 {
		fc.CompileWorkers = 2
	}
	return fc
}

// FleetTenant is one tenant's outcome.
type FleetTenant struct {
	Tenant int
	Bench  string
	Stats  dynopt.Stats
	Halted bool
	// State and MemDigest capture the tenant's final guest state for the
	// determinism diff against its solo run.
	State     guest.State
	MemDigest uint64
	// Wall is the tenant's host wall time.
	Wall time.Duration
}

// FleetResult is the outcome of one fleet run.
type FleetResult struct {
	Tenants []FleetTenant
	// Wall is the whole fleet's host wall time (start of the first tenant
	// to completion of the last).
	Wall time.Duration
	// Cache is the shared compile cache's end-of-run snapshot.
	Cache codecache.Stats
	// Workers and Config echo the effective fleet configuration.
	Workers int
	Config  string
}

// Commits sums regions executed (committed) across tenants.
func (r *FleetResult) Commits() int64 {
	var n int64
	for i := range r.Tenants {
		n += r.Tenants[i].Stats.Commits
	}
	return n
}

// GuestInsts sums retired guest instructions across tenants.
func (r *FleetResult) GuestInsts() int64 {
	var n int64
	for i := range r.Tenants {
		n += r.Tenants[i].Stats.GuestInsts
	}
	return n
}

// DedupeRate is the fraction of cache lookups served without running a
// compile — a table hit or a joined flight. With identical tenants it
// approaches 1 as the fleet grows: every region compiles once fleet-wide.
func (r *FleetResult) DedupeRate() float64 {
	if r.Cache.Lookups == 0 {
		return 0
	}
	return float64(r.Cache.Lookups-r.Cache.Compiles) / float64(r.Cache.Lookups)
}

// RunFleet executes fc.Tenants Systems concurrently over the shared pool
// and cache and blocks until every tenant finishes. The pool is closed
// and the cache snapshotted after the last tenant, so the returned stats
// are exact.
func RunFleet(fc FleetConfig) (*FleetResult, error) {
	fc = fc.withDefaults()
	baseCfg, err := ParseConfig(fc.Config)
	if err != nil {
		return nil, err
	}
	suite := workload.Suite()
	if fc.Scale > 1 {
		suite = workload.SuiteScaled(fc.Scale)
	}
	byName := make(map[string]workload.Benchmark, len(suite))
	for _, bm := range suite {
		byName[bm.Name] = bm
	}
	benches := make([]workload.Benchmark, fc.Tenants)
	for i := range benches {
		name := fc.Mix[i%len(fc.Mix)]
		bm, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("harness: no benchmark %q in the suite", name)
		}
		benches[i] = bm
	}

	pool := compilequeue.NewPool(fc.CompileWorkers)
	cache := dynopt.NewCodeCache(dynopt.CodeCacheOptions{
		Shards:     fc.CacheShards,
		MaxEntries: fc.CacheMaxEntries,
		MaxBytes:   fc.CacheMaxBytes,
	})

	// Per-tenant telemetry bundles are built up front (not inside the
	// tenant goroutines) so the observability plane can expose every
	// tenant's registry before the first region compiles.
	telemetries := make([]*telemetry.Telemetry, fc.Tenants)
	if fc.Telemetry != nil {
		for i := range telemetries {
			telemetries[i] = fc.Telemetry(i, benches[i].Name)
		}
	}
	obsrv, err := startFleetObs(fc, benches, telemetries, cache)
	if err != nil {
		pool.Close()
		return nil, err
	}
	defer obsrv.shutdown()

	res := &FleetResult{
		Tenants: make([]FleetTenant, fc.Tenants),
		Workers: fc.CompileWorkers,
		Config:  fc.Config,
	}
	errs := make([]error, fc.Tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < fc.Tenants; i++ {
		wg.Add(1)
		go func(tenant int, bm workload.Benchmark) {
			defer wg.Done()
			// Label the tenant's whole lifetime so CPU and goroutine
			// profiles of a fleet run attribute samples to tenant/bench
			// instead of one anonymous pile of RunFleet.func1 frames.
			labels := pprof.Labels(
				"tenant", strconv.Itoa(tenant),
				"bench", bm.Name,
				"fleet_config", fc.Config,
			)
			pprof.Do(context.Background(), labels, func(context.Context) {
				cfg := baseCfg
				cfg.Compile.Workers = fc.CompileWorkers
				cfg.Compile.SharedPool = pool
				cfg.Compile.SharedCache = cache
				cfg.Compile.Memoize = false
				cfg.Telemetry = telemetries[tenant]
				maxInsts := bm.MaxInsts
				if fc.MaxInsts > 0 {
					maxInsts = fc.MaxInsts
				}
				t0 := time.Now()
				sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
				halted, err := sys.Run(maxInsts)
				if ferr := cfg.Telemetry.Tracer().Flush(); ferr != nil && err == nil {
					err = ferr
				}
				if err != nil {
					errs[tenant] = fmt.Errorf("harness: fleet tenant %d (%s): %w", tenant, bm.Name, err)
					return
				}
				res.Tenants[tenant] = FleetTenant{
					Tenant:    tenant,
					Bench:     bm.Name,
					Stats:     sys.Stats,
					Halted:    halted,
					State:     *sys.State(),
					MemDigest: sys.Mem().Digest(),
					Wall:      time.Since(t0),
				}
				obsrv.markDone(tenant, sys.Stats)
			})
		}(i, benches[i])
	}
	wg.Wait()
	pool.Close()
	res.Wall = time.Since(start)
	res.Cache = cache.Stats()
	if fc.Metrics != nil {
		cache.PublishMetrics(fc.Metrics)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ScrubSharedCounters zeroes the stats fields that legitimately differ
// between a fleet run and a solo run of the same tenant: whether a lookup
// hit, missed, or joined another tenant's flight depends on fleet
// interleaving, but nothing else may (the costs of a hit are replayed
// exactly as a fresh compile's). Everything outside these four counters
// must be byte-identical — that is the fleet determinism contract.
func ScrubSharedCounters(st dynopt.Stats) dynopt.Stats {
	st.Compile.MemoHits = 0
	st.Compile.MemoMisses = 0
	st.Compile.DedupeWaits = 0
	st.Compile.MemoEvictions = 0
	return st
}

// VerifyFleet re-runs each distinct benchmark in res as a solo 1-tenant
// fleet under the same configuration and diffs every fleet tenant against
// its solo baseline: scrubbed stats, final guest registers, and the guest
// memory digest must match exactly. A non-nil error names the first
// diverging tenant and field.
func VerifyFleet(fc FleetConfig, res *FleetResult) error {
	fc = fc.withDefaults()
	solo := make(map[string]*FleetTenant)
	for i := range res.Tenants {
		ft := &res.Tenants[i]
		base, ok := solo[ft.Bench]
		if !ok {
			sfc := fc
			sfc.Tenants = 1
			sfc.Mix = []string{ft.Bench}
			sfc.Telemetry = nil
			sfc.Metrics = nil
			sfc.Listen = ""
			sfc.ObsReady = nil
			sres, err := RunFleet(sfc)
			if err != nil {
				return fmt.Errorf("harness: solo baseline for %s: %w", ft.Bench, err)
			}
			base = &sres.Tenants[0]
			solo[ft.Bench] = base
		}
		if ft.Halted != base.Halted {
			return fmt.Errorf("harness: tenant %d (%s): halted=%v, solo halted=%v", ft.Tenant, ft.Bench, ft.Halted, base.Halted)
		}
		if got, want := ScrubSharedCounters(ft.Stats), ScrubSharedCounters(base.Stats); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("harness: tenant %d (%s): stats diverge from solo run:\nfleet: %+v\nsolo:  %+v", ft.Tenant, ft.Bench, got, want)
		}
		if ft.State != base.State {
			return fmt.Errorf("harness: tenant %d (%s): final guest registers diverge from solo run", ft.Tenant, ft.Bench)
		}
		if ft.MemDigest != base.MemDigest {
			return fmt.Errorf("harness: tenant %d (%s): guest memory digest %#x, solo %#x", ft.Tenant, ft.Bench, ft.MemDigest, base.MemDigest)
		}
	}
	return nil
}

// latencyPercentiles reports the p50/p95/max of a tenant's per-region
// compile latencies (enqueue→install, simulated cycles).
func latencyPercentiles(st *dynopt.Stats) (p50, p95, max int64) {
	lat := make([]int64, 0, len(st.Regions))
	for i := range st.Regions {
		lat = append(lat, st.Regions[i].CompileLatency)
	}
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) int64 {
		idx := int(q * float64(len(lat)-1))
		return lat[idx]
	}
	return pick(0.50), pick(0.95), lat[len(lat)-1]
}

// Render produces the fleet report: one row per tenant plus the
// fleet-wide aggregate and shared-cache lines.
func (r *FleetResult) Render() string {
	header := []string{"tenant", "bench", "guest-insts", "commits", "hits", "dedupe-waits", "lat-p50", "lat-p95", "lat-max", "wall"}
	rows := make([][]string, 0, len(r.Tenants))
	for i := range r.Tenants {
		ft := &r.Tenants[i]
		p50, p95, maxLat := latencyPercentiles(&ft.Stats)
		rows = append(rows, []string{
			fmt.Sprintf("%d", ft.Tenant),
			ft.Bench,
			fmt.Sprintf("%d", ft.Stats.GuestInsts),
			fmt.Sprintf("%d", ft.Stats.Commits),
			fmt.Sprintf("%d", ft.Stats.Compile.MemoHits),
			fmt.Sprintf("%d", ft.Stats.Compile.DedupeWaits),
			fmt.Sprintf("%d", p50),
			fmt.Sprintf("%d", p95),
			fmt.Sprintf("%d", maxLat),
			ft.Wall.Round(time.Millisecond).String(),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet: %d tenants, %d shared compile workers, config %s\n\n", len(r.Tenants), r.Workers, r.Config)
	sb.WriteString(table(header, rows))
	secs := r.Wall.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(&sb, "\naggregate: %d commits (%.0f regions/sec), %d guest insts (%.0f insts/sec), wall %s\n",
		r.Commits(), float64(r.Commits())/secs, r.GuestInsts(), float64(r.GuestInsts())/secs,
		r.Wall.Round(time.Millisecond))
	c := &r.Cache
	fmt.Fprintf(&sb, "shared cache: %d lookups, %d hits, %d flight-waits, %d compiles, %d evictions (%d entries, %d bytes live), dedupe %.1f%%\n",
		c.Lookups, c.Hits, c.FlightWaits, c.Compiles, c.Evictions, c.Entries, c.Bytes, 100*r.DedupeRate())
	return sb.String()
}
