package harness

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// TestFleetTenantPprofLabels proves fleet tenant goroutines carry pprof
// labels (tenant, bench, fleet_config): it starts a fleet in the
// background and polls the goroutine profile until the labels show up.
// Profiles of a busy fleet are otherwise an anonymous pile of
// RunFleet.func1 frames; the labels are what let an operator split CPU
// and goroutine samples per tenant.
func TestFleetTenantPprofLabels(t *testing.T) {
	// Each attempt runs a full fleet; labels only exist while tenants are
	// live, so retry if a run finishes between two polls.
	for attempt := 0; attempt < 5; attempt++ {
		done := make(chan error, 1)
		go func() {
			_, err := RunFleet(FleetConfig{
				Tenants: 4,
				Mix:     []string{"swim", "equake"},
			})
			done <- err
		}()

		finished := false
		for !finished {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("attempt %d: fleet failed: %v", attempt, err)
				}
				finished = true
			default:
			}
			var buf bytes.Buffer
			if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
				t.Fatal(err)
			}
			prof := buf.String()
			if strings.Contains(prof, `"tenant":`) &&
				strings.Contains(prof, `"bench":"swim"`) &&
				strings.Contains(prof, `"fleet_config":`) {
				if !finished {
					if err := <-done; err != nil {
						t.Fatalf("attempt %d: fleet failed after labels seen: %v", attempt, err)
					}
				}
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	t.Fatal("fleet tenant goroutines never appeared with pprof labels")
}
