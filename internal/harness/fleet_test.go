package harness

import (
	"fmt"
	"reflect"
	"testing"

	"smarq/internal/telemetry"
)

// captureSink buffers every drained event in memory for the determinism
// diff.
type captureSink struct {
	events []telemetry.Event
}

func (s *captureSink) WriteEvents(evs []telemetry.Event) error {
	s.events = append(s.events, evs...)
	return nil
}

func (s *captureSink) Close() error { return nil }

// scrubEvents zeroes the memo-hit flag (Event.B) on compile-enqueue
// events: whether an enqueue hit the shared cache depends on fleet
// interleaving, the one tolerated divergence from a solo run. Every other
// event byte must match.
func scrubEvents(evs []telemetry.Event) []telemetry.Event {
	out := make([]telemetry.Event, len(evs))
	copy(out, evs)
	for i := range out {
		if out[i].Kind == telemetry.KindCompileEnqueue {
			out[i].B = 0
		}
	}
	return out
}

// TestFleetTenantDeterminism is the tentpole's correctness gate: at every
// tenant-count × shared-worker-count combination, each tenant's stats,
// event trace, final guest registers and guest memory must be
// byte-identical to a solo run of the same benchmark — the shared pool
// and cache may only change host wall time and the scrubbed hit/miss
// counters. Run it with -race: the tenants genuinely share the pool and
// cache concurrently.
func TestFleetTenantDeterminism(t *testing.T) {
	mix := []string{"swim", "equake", "ammp"}
	const maxInsts = 60_000

	type soloKey struct {
		bench   string
		workers int
	}
	type soloRun struct {
		tenant FleetTenant
		events []telemetry.Event
	}
	solos := make(map[soloKey]*soloRun)
	soloFor := func(t *testing.T, bench string, workers int) *soloRun {
		key := soloKey{bench, workers}
		if s, ok := solos[key]; ok {
			return s
		}
		sink := &captureSink{}
		res, err := RunFleet(FleetConfig{
			Tenants:        1,
			Mix:            []string{bench},
			CompileWorkers: workers,
			MaxInsts:       maxInsts,
			Telemetry: func(int, string) *telemetry.Telemetry {
				return &telemetry.Telemetry{Events: telemetry.NewTracer(0, sink)}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		s := &soloRun{tenant: res.Tenants[0], events: scrubEvents(sink.events)}
		solos[key] = s
		return s
	}

	for _, tenants := range []int{1, 4, 8} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("tenants%d/workers%d", tenants, workers), func(t *testing.T) {
				sinks := make([]*captureSink, tenants)
				res, err := RunFleet(FleetConfig{
					Tenants:        tenants,
					Mix:            mix,
					CompileWorkers: workers,
					MaxInsts:       maxInsts,
					Telemetry: func(tenant int, _ string) *telemetry.Telemetry {
						sinks[tenant] = &captureSink{}
						return &telemetry.Telemetry{Events: telemetry.NewTracer(0, sinks[tenant])}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				for i := range res.Tenants {
					ft := &res.Tenants[i]
					solo := soloFor(t, ft.Bench, workers)
					if ft.Halted != solo.tenant.Halted {
						t.Errorf("tenant %d (%s): halted=%v, solo halted=%v", ft.Tenant, ft.Bench, ft.Halted, solo.tenant.Halted)
					}
					got, want := ScrubSharedCounters(ft.Stats), ScrubSharedCounters(solo.tenant.Stats)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("tenant %d (%s): stats diverge from solo run:\nfleet: %+v\nsolo:  %+v", ft.Tenant, ft.Bench, got, want)
					}
					if ft.State != solo.tenant.State {
						t.Errorf("tenant %d (%s): final guest registers diverge from solo run", ft.Tenant, ft.Bench)
					}
					if ft.MemDigest != solo.tenant.MemDigest {
						t.Errorf("tenant %d (%s): guest memory digest %#x, solo %#x", ft.Tenant, ft.Bench, ft.MemDigest, solo.tenant.MemDigest)
					}
					if evs := scrubEvents(sinks[i].events); !reflect.DeepEqual(evs, solo.events) {
						t.Errorf("tenant %d (%s): event trace diverges from solo run (%d vs %d events)", ft.Tenant, ft.Bench, len(evs), len(solo.events))
					}
				}
				// Exactly-once fleet-wide compilation: every lookup either
				// compiled, hit the table, or joined a flight — and the
				// unbounded cache never evicts, so compiles never repeat.
				c := res.Cache
				if c.Hits+c.FlightWaits+c.Compiles != c.Lookups {
					t.Errorf("cache accounting: hits %d + flight-waits %d + compiles %d != lookups %d",
						c.Hits, c.FlightWaits, c.Compiles, c.Lookups)
				}
			})
		}
	}
}

// TestVerifyFleet exercises the public verification helper end to end.
func TestVerifyFleet(t *testing.T) {
	fc := FleetConfig{
		Tenants:        4,
		Mix:            []string{"swim", "equake"},
		CompileWorkers: 2,
		MaxInsts:       40_000,
	}
	res, err := RunFleet(fc)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFleet(fc, res); err != nil {
		t.Fatal(err)
	}
	if got := res.Render(); len(got) == 0 {
		t.Error("empty fleet report")
	}
}
