// Fleet observability wiring: when FleetConfig.Listen is set, RunFleet
// serves the internal/obs endpoints for the duration of the run. The
// harness owns the glue — which registries exist, when a tenant's stats
// become safe to snapshot — and obs owns the HTTP surface.

package harness

import (
	"context"
	"sync"
	"time"

	"smarq/internal/dynopt"
	"smarq/internal/obs"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

// fleetObs tracks the live fleet state the obs server renders. All
// methods are nil-receiver safe, so the no-Listen path costs a single
// nil check.
type fleetObs struct {
	server *obs.Server

	mu    sync.Mutex
	views []obs.TenantView
}

// startFleetObs builds and starts the obs server when fc.Listen is set
// (nil otherwise). It guarantees every tenant a metrics registry —
// reusing the Telemetry hook's bundle when one exists, installing a
// metrics-only bundle into telemetries[i] when not — so the live
// /metrics page always has per-tenant series.
func startFleetObs(fc FleetConfig, benches []workload.Benchmark, telemetries []*telemetry.Telemetry, cache *dynopt.CodeCache) (*fleetObs, error) {
	if fc.Listen == "" {
		return nil, nil
	}
	fleetReg := fc.Metrics
	if fleetReg == nil {
		fleetReg = telemetry.NewRegistry()
	}
	o := &fleetObs{views: make([]obs.TenantView, len(benches))}
	for i := range benches {
		tel := telemetries[i]
		if tel == nil {
			tel = &telemetry.Telemetry{}
		}
		if tel.Metrics == nil {
			tel.Metrics = telemetry.NewRegistry()
		}
		telemetries[i] = tel
		o.views[i] = obs.TenantView{ID: i, Bench: benches[i].Name, Metrics: tel.Metrics}
	}
	o.server = obs.NewServer(obs.Options{
		Fleet:   fleetReg,
		Tenants: o.snapshot,
		Cache:   cache.Stats,
		// Refresh delta-syncs the shared cache's counters into the fleet
		// registry on every scrape, so /metrics shows live codecache_*
		// values rather than the end-of-run publish.
		Refresh: func() { cache.PublishMetrics(fleetReg) },
	})
	if err := o.server.Start(fc.Listen); err != nil {
		return nil, err
	}
	if fc.ObsReady != nil {
		fc.ObsReady(o.server.Addr())
	}
	return o, nil
}

// snapshot copies the current tenant views for one scrape.
func (o *fleetObs) snapshot() []obs.TenantView {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]obs.TenantView(nil), o.views...)
}

// markDone records a tenant's completion and its final stats (the stats
// struct is only safe to read once the tenant goroutine is finished with
// it, so the copy is taken here, not at scrape time).
func (o *fleetObs) markDone(tenant int, stats dynopt.Stats) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.views[tenant].Done = true
	o.views[tenant].Stats = stats
}

// shutdown stops the server, bounding the drain of in-flight scrapes.
func (o *fleetObs) shutdown() {
	if o == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = o.server.Shutdown(ctx)
}
