package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"smarq/internal/telemetry"
)

// TestFleetObsEndpoints runs a real fleet with the observability plane
// bound to an ephemeral port and scrapes every endpoint while RunFleet is
// executing (ObsReady fires after the server is live, before the run
// completes). Per-tenant label plumbing is proven with a marker counter
// registered through the Telemetry hook.
func TestFleetObsEndpoints(t *testing.T) {
	scrape := func(addr, path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	var liveAddr string
	fc := FleetConfig{
		Tenants:        2,
		Mix:            []string{"swim", "equake"},
		CompileWorkers: 2,
		MaxInsts:       40_000,
		Telemetry: func(tenant int, bench string) *telemetry.Telemetry {
			reg := telemetry.NewRegistry()
			reg.Counter("fleet_marker").Add(int64(tenant) + 1)
			return &telemetry.Telemetry{Metrics: reg}
		},
		Listen: "127.0.0.1:0",
		ObsReady: func(addr string) {
			liveAddr = addr

			// /metrics is curl-able mid-run: Prometheus content type,
			// fleet codecache series, and tenant/bench labels.
			code, body := scrape(addr, "/metrics")
			if code != http.StatusOK {
				t.Errorf("/metrics returned %d mid-run", code)
			}
			for _, want := range []string{
				"# TYPE codecache_lookups counter",
				`fleet_marker{bench="swim",tenant="0"} 1`,
				`fleet_marker{bench="equake",tenant="1"} 2`,
			} {
				if !strings.Contains(body, want) {
					t.Errorf("/metrics missing %q mid-run:\n%s", want, body)
				}
			}

			code, body = scrape(addr, "/healthz")
			if code != http.StatusOK || !strings.Contains(body, `"normal"`) {
				t.Errorf("/healthz mid-run: code=%d body=%s", code, body)
			}

			code, body = scrape(addr, "/debug/cache")
			if code != http.StatusOK || !strings.Contains(body, "ShardEntries") {
				t.Errorf("/debug/cache mid-run: code=%d body=%s", code, body)
			}

			code, body = scrape(addr, "/debug/tenants")
			if code != http.StatusOK {
				t.Errorf("/debug/tenants mid-run: code=%d", code)
			}
			var tenants []struct {
				Bench string `json:"bench"`
			}
			if err := json.Unmarshal([]byte(body), &tenants); err != nil || len(tenants) != 2 {
				t.Errorf("/debug/tenants payload: %v %s", err, body)
			}
		},
	}
	res, err := RunFleet(fc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if liveAddr == "" {
		t.Fatal("ObsReady never fired")
	}
	if res.Commits() == 0 {
		t.Fatal("fleet did no work")
	}
	// The server is shut down before RunFleet returns.
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", liveAddr)); err == nil {
		t.Error("obs server still serving after RunFleet returned")
	}
}

// TestFleetObsCounters checks the fleet-global view against the tenants'
// own books at end of run: shared-cache hits and flight waits must equal
// the per-tenant memo-hit and dedupe-wait sums, and the end-of-run
// PublishMetrics registry must agree with the result's cache snapshot.
func TestFleetObsCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	fc := FleetConfig{
		Tenants:        4,
		Mix:            []string{"swim", "equake"},
		CompileWorkers: 2,
		MaxInsts:       40_000,
		Metrics:        reg,
	}
	res, err := RunFleet(fc)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	var memoHits, dedupeWaits int64
	for i := range res.Tenants {
		cs := &res.Tenants[i].Stats.Compile
		memoHits += cs.MemoHits
		dedupeWaits += cs.DedupeWaits
	}
	c := &res.Cache
	if memoHits != c.Hits {
		t.Errorf("tenant memo hits sum to %d, cache says %d", memoHits, c.Hits)
	}
	if dedupeWaits != c.FlightWaits {
		t.Errorf("tenant dedupe waits sum to %d, cache says %d", dedupeWaits, c.FlightWaits)
	}
	if c.Hits+c.Misses != c.Lookups {
		t.Errorf("cache hits %d + misses %d != lookups %d", c.Hits, c.Misses, c.Lookups)
	}
	for _, chk := range []struct {
		name string
		want int64
	}{
		{"codecache_lookups", c.Lookups},
		{"codecache_hits", c.Hits},
		{"codecache_flight_waits", c.FlightWaits},
		{"codecache_compiles", c.Compiles},
		{"codecache_evictions", c.Evictions},
	} {
		if got := reg.Counter(chk.name).Value(); got != chk.want {
			t.Errorf("published %s = %d, result snapshot says %d", chk.name, got, chk.want)
		}
	}
}
