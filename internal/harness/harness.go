// Package harness regenerates the paper's tables and figures: it runs the
// benchmark suite under the alias-hardware configurations of §6 and
// derives each reported statistic. Each FigureN/TableN function returns a
// data structure with a Render method producing the text table.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/telemetry"
	"smarq/internal/workload"
)

// Runner executes benchmark×configuration cells on demand and caches the
// results, so the figures share runs. It is safe for concurrent use: each
// cell is a single-flight slot, so two figures requesting the same cell
// share one run, and Warm fans a cell set out over a bounded worker pool.
type Runner struct {
	Suite []workload.Benchmark
	// Parallelism bounds how many cells Warm executes concurrently.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Parallelism int
	// Verbose, when set, receives one summary line per completed cell.
	// The sink serializes concurrent writers, so lines never interleave;
	// under parallel execution the completion *order* is nondeterministic
	// (the artifact stream on stdout stays byte-identical regardless —
	// only this progress stream reorders).
	Verbose *telemetry.LineSink
	// Telemetry, when set, builds the telemetry bundle for each cell
	// before it runs (return nil to leave a cell untraced). The runner
	// flushes the cell's tracer when the run completes; closing sinks is
	// the caller's job.
	Telemetry func(bench, config string) *telemetry.Telemetry
	// ConfigHook, when set, rewrites each cell's configuration just
	// before the run (smarq-bench uses it to apply the background
	// compilation flags across every named configuration). It must be a
	// pure function of its input — the same cell must always get the same
	// effective configuration, or the result cache lies.
	ConfigHook func(dynopt.Config) dynopt.Config

	byName map[string]workload.Benchmark

	mu      sync.Mutex // guards configs and cache
	configs map[string]dynopt.Config
	cache   map[Cell]*cellResult
}

// Cell names one benchmark×configuration run.
type Cell struct {
	Bench, Config string
}

// cellResult is the single-flight slot for one cell: the first goroutine
// to need it executes the run inside once; everyone else blocks on
// once.Do and shares the outcome (including errors).
type cellResult struct {
	once  sync.Once
	stats *dynopt.Stats
	err   error
}

// Standard configuration names.
const (
	CfgSMARQ64 = "smarq64"
	CfgSMARQ16 = "smarq16"
	CfgALAT    = "alat"
	CfgNoHW    = "nohw"
	CfgNoStRe  = "nostorereorder"
)

// NewRunner returns a Runner over the given suite (nil means the full
// suite).
func NewRunner(suite []workload.Benchmark) *Runner {
	if suite == nil {
		suite = workload.Suite()
	}
	byName := make(map[string]workload.Benchmark, len(suite))
	for _, bm := range suite {
		byName[bm.Name] = bm
	}
	return &Runner{
		Suite:  suite,
		byName: byName,
		configs: map[string]dynopt.Config{
			CfgSMARQ64: dynopt.ConfigSMARQ(64),
			CfgSMARQ16: dynopt.ConfigSMARQ(16),
			CfgALAT:    dynopt.ConfigALAT(),
			CfgNoHW:    dynopt.ConfigNoHW(),
			CfgNoStRe:  dynopt.ConfigNoStoreReorder(),
		},
		cache: make(map[Cell]*cellResult),
	}
}

// AddConfig registers a custom configuration (used by the scaling sweep
// and the ablations).
func (r *Runner) AddConfig(name string, cfg dynopt.Config) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.configs[name] = cfg
}

// parallelism resolves the effective worker count.
func (r *Runner) parallelism() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// cell returns the single-flight slot for a cell, creating it on first
// request.
func (r *Runner) cell(bench, config string) *cellResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := Cell{bench, config}
	c, ok := r.cache[key]
	if !ok {
		c = &cellResult{}
		r.cache[key] = c
	}
	return c
}

// Run returns the stats for one benchmark under one configuration,
// executing it on first use. Concurrent calls for the same cell share a
// single execution; errors are cached alongside results so every caller
// observes the same outcome.
func (r *Runner) Run(bench, config string) (*dynopt.Stats, error) {
	c := r.cell(bench, config)
	c.once.Do(func() { c.stats, c.err = r.execute(bench, config) })
	return c.stats, c.err
}

// execute performs one benchmark×configuration run. Each run owns a
// fresh Program, State and Memory, so runs never share mutable state.
func (r *Runner) execute(bench, config string) (*dynopt.Stats, error) {
	bm, ok := r.byName[bench]
	if !ok {
		return nil, fmt.Errorf("harness: no benchmark %q in this runner's suite", bench)
	}
	r.mu.Lock()
	cfg, ok := r.configs[config]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("harness: no configuration %q", config)
	}
	if r.ConfigHook != nil {
		cfg = r.ConfigHook(cfg)
	}
	if r.Telemetry != nil {
		cfg.Telemetry = r.Telemetry(bench, config)
	}
	sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
	halted, err := sys.Run(bm.MaxInsts)
	if ferr := cfg.Telemetry.Tracer().Flush(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", bench, config, err)
	}
	if !halted {
		return nil, fmt.Errorf("harness: %s/%s did not halt", bench, config)
	}
	if r.Verbose != nil {
		r.Verbose.Emitf("# %s/%s: %s", bench, config, SummaryLine(&sys.Stats))
	}
	return &sys.Stats, nil
}

// Warm executes the given cells concurrently, bounded by Parallelism,
// and blocks until all have completed. Results (and errors) land in the
// single-flight cache, so a figure can Warm its cell set and then
// aggregate with serial Run calls in a fixed order — which is what keeps
// parallel and serial artifact output byte-identical. Errors are not
// returned here: the aggregation loop re-surfaces the cached error of
// the first failing cell in its own deterministic order.
func (r *Runner) Warm(cells []Cell) {
	n := r.parallelism()
	if n > len(cells) {
		n = len(cells)
	}
	if n <= 1 {
		return // Run executes cells on demand; nothing to pre-warm.
	}
	work := make(chan Cell)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			for c := range work {
				r.Run(c.Bench, c.Config)
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
}

// crossCells builds the bench×config cross product in row-major order —
// the cell set a figure's aggregation loop will visit.
func crossCells(benches, configs []string) []Cell {
	cells := make([]Cell, 0, len(benches)*len(configs))
	for _, b := range benches {
		for _, c := range configs {
			cells = append(cells, Cell{b, c})
		}
	}
	return cells
}

// geomean of a slice (1.0 for empty).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// table renders a simple fixed-width text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// benchNames returns the runner's suite names in order.
func (r *Runner) benchNames() []string {
	names := make([]string, len(r.Suite))
	for i, b := range r.Suite {
		names[i] = b.Name
	}
	return names
}

// sortedKeys is a helper for deterministic map iteration.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseConfig resolves a configuration name — smarq<N>, alat, efficeon,
// nohw, nostorereorder — to its dynopt.Config. CLI tools share it.
func ParseConfig(name string) (dynopt.Config, error) {
	switch name {
	case "alat":
		return dynopt.ConfigALAT(), nil
	case "efficeon":
		return dynopt.ConfigEfficeon(), nil
	case "nohw":
		return dynopt.ConfigNoHW(), nil
	case "nostorereorder":
		return dynopt.ConfigNoStoreReorder(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "smarq%d", &n); err == nil {
		// ConfigSMARQ panics below 2 alias registers (Config.Validate);
		// reject with an error instead so CLI typos fail cleanly.
		if n < 2 {
			return dynopt.Config{}, fmt.Errorf("harness: %q needs at least 2 alias registers", name)
		}
		return dynopt.ConfigSMARQ(n), nil
	}
	return dynopt.Config{}, fmt.Errorf("harness: unknown configuration %q", name)
}
