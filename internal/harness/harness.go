// Package harness regenerates the paper's tables and figures: it runs the
// benchmark suite under the alias-hardware configurations of §6 and
// derives each reported statistic. Each FigureN/TableN function returns a
// data structure with a Render method producing the text table.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smarq/internal/dynopt"
	"smarq/internal/guest"
	"smarq/internal/workload"
)

// Runner executes benchmark×configuration cells on demand and caches the
// results, so the figures share runs.
type Runner struct {
	Suite   []workload.Benchmark
	byName  map[string]workload.Benchmark
	configs map[string]dynopt.Config
	cache   map[[2]string]*dynopt.Stats
	// Verbose, when set, prints each cell as it completes.
	Verbose func(bench, config string, stats *dynopt.Stats)
}

// Standard configuration names.
const (
	CfgSMARQ64 = "smarq64"
	CfgSMARQ16 = "smarq16"
	CfgALAT    = "alat"
	CfgNoHW    = "nohw"
	CfgNoStRe  = "nostorereorder"
)

// NewRunner returns a Runner over the given suite (nil means the full
// suite).
func NewRunner(suite []workload.Benchmark) *Runner {
	if suite == nil {
		suite = workload.Suite()
	}
	byName := make(map[string]workload.Benchmark, len(suite))
	for _, bm := range suite {
		byName[bm.Name] = bm
	}
	return &Runner{
		Suite:  suite,
		byName: byName,
		configs: map[string]dynopt.Config{
			CfgSMARQ64: dynopt.ConfigSMARQ(64),
			CfgSMARQ16: dynopt.ConfigSMARQ(16),
			CfgALAT:    dynopt.ConfigALAT(),
			CfgNoHW:    dynopt.ConfigNoHW(),
			CfgNoStRe:  dynopt.ConfigNoStoreReorder(),
		},
		cache: make(map[[2]string]*dynopt.Stats),
	}
}

// AddConfig registers a custom configuration (used by the scaling sweep
// and the ablations).
func (r *Runner) AddConfig(name string, cfg dynopt.Config) { r.configs[name] = cfg }

// Run returns the stats for one benchmark under one configuration,
// executing it on first use.
func (r *Runner) Run(bench, config string) (*dynopt.Stats, error) {
	key := [2]string{bench, config}
	if st, ok := r.cache[key]; ok {
		return st, nil
	}
	bm, ok := r.byName[bench]
	if !ok {
		return nil, fmt.Errorf("harness: no benchmark %q in this runner's suite", bench)
	}
	cfg, ok := r.configs[config]
	if !ok {
		return nil, fmt.Errorf("harness: no configuration %q", config)
	}
	sys := dynopt.New(bm.Build(), &guest.State{}, guest.NewMemory(bm.MemSize), cfg)
	halted, err := sys.Run(bm.MaxInsts)
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", bench, config, err)
	}
	if !halted {
		return nil, fmt.Errorf("harness: %s/%s did not halt", bench, config)
	}
	r.cache[key] = &sys.Stats
	if r.Verbose != nil {
		r.Verbose(bench, config, &sys.Stats)
	}
	return &sys.Stats, nil
}

// geomean of a slice (1.0 for empty).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// table renders a simple fixed-width text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// benchNames returns the runner's suite names in order.
func (r *Runner) benchNames() []string {
	names := make([]string, len(r.Suite))
	for i, b := range r.Suite {
		names[i] = b.Name
	}
	return names
}

// sortedKeys is a helper for deterministic map iteration.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseConfig resolves a configuration name — smarq<N>, alat, efficeon,
// nohw, nostorereorder — to its dynopt.Config. CLI tools share it.
func ParseConfig(name string) (dynopt.Config, error) {
	switch name {
	case "alat":
		return dynopt.ConfigALAT(), nil
	case "efficeon":
		return dynopt.ConfigEfficeon(), nil
	case "nohw":
		return dynopt.ConfigNoHW(), nil
	case "nostorereorder":
		return dynopt.ConfigNoStoreReorder(), nil
	}
	var n int
	if _, err := fmt.Sscanf(name, "smarq%d", &n); err == nil && n > 0 {
		return dynopt.ConfigSMARQ(n), nil
	}
	return dynopt.Config{}, fmt.Errorf("harness: unknown configuration %q", name)
}
