package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"smarq/internal/workload"
)

// smallSuite keeps unit tests fast; the shape tests use the full suite.
func smallSuite() []workload.Benchmark {
	var out []workload.Benchmark
	for _, name := range []string{"wupwise", "mesa", "ammp"} {
		bm, _ := workload.ByName(name)
		out = append(out, bm)
	}
	return out
}

// parallelRunner returns a small-suite Runner with a worker pool, so the
// ordinary shape tests also exercise the parallel path (and trip the race
// detector if a run ever shares mutable state).
func parallelRunner() *Runner {
	r := NewRunner(smallSuite())
	r.Parallelism = 4
	return r
}

func TestRunnerCaches(t *testing.T) {
	r := parallelRunner()
	a, err := r.Run("wupwise", CfgSMARQ64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("wupwise", CfgSMARQ64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Run did not return the cached stats")
	}
}

func TestRunnerErrors(t *testing.T) {
	r := parallelRunner()
	if _, err := r.Run("nonesuch", CfgSMARQ64); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := r.Run("wupwise", "nonesuch"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestTable1(t *testing.T) {
	d, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	s := d.Render()
	for _, want := range []string{"bit-mask", "ALAT", "ordered queue", "false positives", "store-store"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	s := Table2().Render()
	for _, want := range []string{"issue width", "alias registers", "64"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

// TestFigure15Shape asserts the headline result on a representative
// subset: SMARQ-64 > SMARQ-16 > 1.0 and SMARQ-64 > Itanium-like, with
// ammp the most register-count-sensitive benchmark.
func TestFigure15Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if !(d.Mean[CfgSMARQ64] > d.Mean[CfgSMARQ16]) {
		t.Errorf("SMARQ64 mean %.3f not above SMARQ16 %.3f", d.Mean[CfgSMARQ64], d.Mean[CfgSMARQ16])
	}
	if !(d.Mean[CfgSMARQ64] > d.Mean[CfgALAT]) {
		t.Errorf("SMARQ64 mean %.3f not above Itanium-like %.3f", d.Mean[CfgSMARQ64], d.Mean[CfgALAT])
	}
	if !(d.Mean[CfgSMARQ64] > 1.2) {
		t.Errorf("SMARQ64 mean speedup %.3f too small", d.Mean[CfgSMARQ64])
	}
	// ammp: the 16-register file costs it dearly (§2.2: 30%).
	gap := d.Speedup["ammp"][CfgSMARQ64] / d.Speedup["ammp"][CfgSMARQ16]
	if gap < 1.15 {
		t.Errorf("ammp 64-vs-16 register gap = %.3f, want > 1.15", gap)
	}
	if !strings.Contains(d.Render(), "geomean") {
		t.Error("render missing summary row")
	}
}

// TestFigure16Shape: mesa is the store-reordering benchmark.
func TestFigure16Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	if d.Impact["mesa"] < 0.04 {
		t.Errorf("mesa store-reordering impact = %.3f, want > 4%%", d.Impact["mesa"])
	}
	for _, b := range d.Benches {
		if b != "mesa" && d.Impact[b] > d.Impact["mesa"] {
			t.Errorf("%s impact %.3f exceeds mesa's %.3f", b, d.Impact[b], d.Impact["mesa"])
		}
	}
}

// TestFigure17Shape: prog-order ≥ P-bit-only ≥ SMARQ ≥ lower bound, and
// SMARQ reduces the working set by more than half.
func TestFigure17Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanSMARQ > d.MeanPBitOnly+1e-9 {
		t.Errorf("SMARQ %.3f above P-bit-only %.3f", d.MeanSMARQ, d.MeanPBitOnly)
	}
	if d.MeanLowerBound > d.MeanSMARQ+1e-9 {
		t.Errorf("lower bound %.3f above SMARQ %.3f — impossible", d.MeanLowerBound, d.MeanSMARQ)
	}
	if d.MeanSMARQ > 0.5 {
		t.Errorf("SMARQ working set %.3f of program order, want < 0.5", d.MeanSMARQ)
	}
	for _, b := range d.Benches {
		if d.SMARQ[b] > 1 {
			t.Errorf("%s: SMARQ working set above the program-order normalizer", b)
		}
	}
}

func TestFigure18Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure18()
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanOptPct <= 0 || d.MeanOptPct > 0.5 {
		t.Errorf("overhead fraction %.4f implausible", d.MeanOptPct)
	}
	if d.MeanAmortized >= d.MeanOptPct {
		t.Error("amortized overhead not below measured")
	}
	// Roughly half the optimizer time is scheduling (the paper: "around
	// half of time is spent in the scheduling").
	if d.MeanSchedShare < 0.3 || d.MeanSchedShare > 0.7 {
		t.Errorf("scheduling share %.3f outside [0.3, 0.7]", d.MeanSchedShare)
	}
}

// TestFigure19Shape: the constraint graph is sparse — O(1) constraints per
// memory operation, with checks well above antis.
func TestFigure19Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure19()
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanChecks <= 0 || d.MeanChecks > 4 {
		t.Errorf("checks per mem op %.2f implausible", d.MeanChecks)
	}
	if d.MeanAntis > d.MeanChecks {
		t.Errorf("antis %.2f exceed checks %.2f", d.MeanAntis, d.MeanChecks)
	}
	if d.MeanAntis > 1 {
		t.Errorf("antis per mem op %.2f, want < 1 (sparse)", d.MeanAntis)
	}
}

// TestScalingShape: speedup is monotone non-decreasing in the register
// count (within tolerance — blacklist timing can wobble slightly).
func TestScalingShape(t *testing.T) {
	r := parallelRunner()
	d, err := r.ScalingSweep([]int{8, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean[64] < d.Mean[16]*0.99 || d.Mean[16] < d.Mean[8]*0.99 {
		t.Errorf("scaling not monotone: 8:%.3f 16:%.3f 64:%.3f", d.Mean[8], d.Mean[16], d.Mean[64])
	}
	if !strings.Contains(d.Render(), "64 regs") {
		t.Error("render missing register column")
	}
}

func TestFigure14Shape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if d.Max["ammp"] < 30 {
		t.Errorf("ammp max mem ops %d, want >= 30", d.Max["ammp"])
	}
	for _, b := range d.Benches {
		if d.Avg[b] <= 0 {
			t.Errorf("%s: no memory ops recorded", b)
		}
	}
}

func TestSummaryLine(t *testing.T) {
	r := parallelRunner()
	st, err := r.Run("mesa", CfgSMARQ64)
	if err != nil {
		t.Fatal(err)
	}
	line := SummaryLine(st)
	if !strings.Contains(line, "cycles=") || !strings.Contains(line, "commits=") {
		t.Errorf("summary line malformed: %s", line)
	}
}

// TestAblationsShape: removing anti-constraints costs performance through
// false positives; removing rotation grows the working set; removing
// eliminations costs performance. All ablated systems remain correct
// (covered by the differential tests) — these assertions are about cost.
func TestAblationsShape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanSlowdown[AblNoAnti] <= 0 {
		t.Errorf("no-anti ablation did not slow down (%.3f)", d.MeanSlowdown[AblNoAnti])
	}
	fp := int64(0)
	for _, n := range d.FalsePositives {
		fp += n
	}
	if fp <= 0 {
		t.Error("no-anti ablation produced no false positives")
	}
	// Rotation: the no-rotation working set is never smaller.
	for _, b := range d.Benches {
		if d.WorkingSetNoRotation[b]+1e-9 < d.WorkingSetFull[b] {
			t.Errorf("%s: no-rotation working set %.1f below full %.1f",
				b, d.WorkingSetNoRotation[b], d.WorkingSetFull[b])
		}
	}
	if d.MeanSlowdown[AblNoElim] < 0 {
		t.Errorf("no-elim ablation sped things up (%.3f)", d.MeanSlowdown[AblNoElim])
	}
	if !strings.Contains(d.Render(), "no-anti") {
		t.Error("render missing ablation columns")
	}
}

// TestUnrollSweepShape: moderate unrolling helps (larger regions, more
// speculation freedom) and multiplies the alias register working set —
// the §6.1/§8 "larger regions" direction.
func TestUnrollSweepShape(t *testing.T) {
	r := parallelRunner()
	d, err := r.UnrollSweep([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxWS[2] <= d.MaxWS[1] {
		t.Errorf("working set did not grow with unrolling: %d vs %d", d.MaxWS[1], d.MaxWS[2])
	}
	if d.Mean[2] < d.Mean[1]*0.9 {
		t.Errorf("unroll x2 collapsed the speedup: %.3f vs %.3f", d.Mean[2], d.Mean[1])
	}
	if !strings.Contains(d.Render(), "unroll x2") {
		t.Error("render missing factor column")
	}
}

// TestEfficeonShape: the true bit-mask model lands in the same band as
// the paper's SMARQ-16 approximation, and both trail SMARQ-64.
func TestEfficeonShape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Efficeon()
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean[CfgEfficeon] <= 1 {
		t.Errorf("Efficeon mean %.3f not above baseline", d.Mean[CfgEfficeon])
	}
	if d.Mean[CfgSMARQ64] <= d.Mean[CfgEfficeon]*0.98 {
		t.Errorf("SMARQ-64 (%.3f) not clearly above Efficeon-15 (%.3f)",
			d.Mean[CfgSMARQ64], d.Mean[CfgEfficeon])
	}
	// The approximation claim: Efficeon and SMARQ16 within 15%.
	ratio := d.Mean[CfgEfficeon] / d.Mean[CfgSMARQ16]
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("Efficeon/SMARQ16 ratio %.3f outside [0.85,1.15] — the paper's approximation would be invalid here", ratio)
	}
	if !strings.Contains(d.Render(), "Efficeon(15)") {
		t.Error("render missing column")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	r := parallelRunner()
	d, err := r.Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range d.Benches {
		sum := d.Region[b] + d.Interp[b] + d.Rollback[b] + d.Opt[b]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: breakdown sums to %.4f", b, sum)
		}
		if d.CoveragePct[b] <= 0 || d.CoveragePct[b] > 100 {
			t.Errorf("%s: coverage %.1f%% implausible", b, d.CoveragePct[b])
		}
	}
	if !strings.Contains(d.Render(), "coverage") {
		t.Error("render missing coverage column")
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	// Column widths consistent across all rows.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(l) != w && len(strings.TrimRight(l, " ")) > w {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean(nil); g != 1 {
		t.Errorf("geomean(nil) = %v, want 1", g)
	}
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
}

func TestParseConfig(t *testing.T) {
	cases := map[string]bool{
		"smarq64": true, "smarq16": true, "smarq2": true,
		"alat": true, "efficeon": true, "nohw": true, "nostorereorder": true,
		"smarq1": false, "smarq0": false, "smarqx": false, "itanium": false, "": false,
	}
	for name, ok := range cases {
		_, err := ParseConfig(name)
		if ok && err != nil {
			t.Errorf("ParseConfig(%q): %v", name, err)
		}
		if !ok && err == nil {
			t.Errorf("ParseConfig(%q) accepted", name)
		}
	}
	if cfg, _ := ParseConfig("smarq24"); cfg.NumAliasRegs != 24 {
		t.Error("register count not parsed")
	}
}

// TestResultsMarshalToJSON: every harness data structure serializes (the
// smarq-bench -json path).
func TestResultsMarshalToJSON(t *testing.T) {
	r := parallelRunner()
	f15, err := r.Figure15()
	if err != nil {
		t.Fatal(err)
	}
	sw, err := r.ScalingSweep([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]interface{}{
		"fig15": f15, "scaling": sw, "table1": t1, "table2": Table2(),
	} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(data) < 10 {
			t.Errorf("%s: implausibly small JSON", name)
		}
	}
}

// TestEnergyShape: §2.4's energy argument — the imprecise ALAT performs
// more register comparisons than the precisely-windowed ordered queue,
// and the exact-mask bitmask performs no more than the queue.
func TestEnergyShape(t *testing.T) {
	r := parallelRunner()
	d, err := r.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean[CfgALAT] <= d.Mean[CfgSMARQ64] {
		t.Errorf("ALAT checks/kinst %.1f not above SMARQ %.1f",
			d.Mean[CfgALAT], d.Mean[CfgSMARQ64])
	}
	if d.Mean[CfgEfficeon] > d.Mean[CfgSMARQ64]*1.05 {
		t.Errorf("bitmask checks/kinst %.1f above SMARQ %.1f — exact masks should not over-check",
			d.Mean[CfgEfficeon], d.Mean[CfgSMARQ64])
	}
	if !strings.Contains(d.Render(), "energy") {
		t.Error("render missing title")
	}
}
