package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smarq/internal/dynopt"
	"smarq/internal/telemetry"
)

// lineCounter counts completed Verbose lines (each Emitf writes exactly
// one '\n'); the LineSink serializes writers, so the count is exact.
type lineCounter struct {
	lines atomic.Int64
}

func (c *lineCounter) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			c.lines.Add(1)
		}
	}
	return len(p), nil
}

// TestRunSingleFlight: many goroutines requesting the same cell share
// exactly one execution and the same *Stats.
func TestRunSingleFlight(t *testing.T) {
	r := NewRunner(smallSuite())
	r.Parallelism = 8
	var executions lineCounter
	r.Verbose = telemetry.NewLineSink(&executions)

	const goroutines = 32
	stats := make([]*dynopt.Stats, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = r.Run("wupwise", CfgSMARQ64)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if stats[i] != stats[0] {
			t.Fatalf("goroutine %d got a different *Stats — cell ran more than once", i)
		}
	}
	if n := executions.lines.Load(); n != 1 {
		t.Errorf("cell executed %d times, want exactly 1", n)
	}
}

// TestWarmSharesCells: Warm over overlapping cell lists executes each
// distinct cell once, and subsequent Run calls hit the cache.
func TestWarmSharesCells(t *testing.T) {
	r := NewRunner(smallSuite())
	r.Parallelism = 4
	var executions lineCounter
	r.Verbose = telemetry.NewLineSink(&executions)

	cells := crossCells([]string{"wupwise", "mesa"}, []string{CfgSMARQ64, CfgNoHW})
	// Duplicate every cell: single-flight must still run each once.
	r.Warm(append(append([]Cell{}, cells...), cells...))
	if n := executions.lines.Load(); n != int64(len(cells)) {
		t.Errorf("%d executions after Warm, want %d", n, len(cells))
	}
	for _, c := range cells {
		if _, err := r.Run(c.Bench, c.Config); err != nil {
			t.Fatalf("%s/%s: %v", c.Bench, c.Config, err)
		}
	}
	if n := executions.lines.Load(); n != int64(len(cells)) {
		t.Errorf("%d executions after cached re-Runs, want %d", n, len(cells))
	}
}

// TestWarmCachesErrors: a failing cell caches its error, and Warm
// neither panics nor hides it from the serial aggregation pass.
func TestWarmCachesErrors(t *testing.T) {
	r := NewRunner(smallSuite())
	r.Parallelism = 4
	r.Warm([]Cell{{"wupwise", "nonesuch"}, {"nonesuch", CfgSMARQ64}})
	if _, err := r.Run("wupwise", "nonesuch"); err == nil {
		t.Error("unknown config error not cached")
	}
	if _, err := r.Run("nonesuch", CfgSMARQ64); err == nil {
		t.Error("unknown benchmark error not cached")
	}
}

// TestParallelMatchesSerial: every artifact renders byte-identically at
// parallelism 1 and parallelism 8.
func TestParallelMatchesSerial(t *testing.T) {
	serial := NewRunner(smallSuite())
	serial.Parallelism = 1
	parallel := NewRunner(smallSuite())
	parallel.Parallelism = 8

	type renderer func(r *Runner) (string, error)
	artifacts := map[string]renderer{
		"fig14": func(r *Runner) (string, error) {
			d, err := r.Figure14()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
		"fig15": func(r *Runner) (string, error) {
			d, err := r.Figure15()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
		"fig16": func(r *Runner) (string, error) {
			d, err := r.Figure16()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
		"scaling": func(r *Runner) (string, error) {
			d, err := r.ScalingSweep([]int{8, 64})
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
		"energy": func(r *Runner) (string, error) {
			d, err := r.Energy()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
		"breakdown": func(r *Runner) (string, error) {
			d, err := r.Breakdown()
			if err != nil {
				return "", err
			}
			return d.Render(), nil
		},
	}
	for name, render := range artifacts {
		want, err := render(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		got, err := render(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", name, want, got)
		}
	}
}

// TestConcurrentFigures: distinct figures sharing cells may run
// concurrently against one Runner (the smarq-bench usage under -race).
func TestConcurrentFigures(t *testing.T) {
	r := NewRunner(smallSuite())
	r.Parallelism = 4
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); _, err := r.Figure15(); errCh <- err }()
	go func() { defer wg.Done(); _, err := r.Figure14(); errCh <- err }()
	go func() { defer wg.Done(); _, err := r.Energy(); errCh <- err }()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// nonReentrantWriter fails the test if two Write calls overlap — the
// LineSink must serialize concurrent Verbose emitters.
type nonReentrantWriter struct {
	t      *testing.T
	inside atomic.Int64
	lines  atomic.Int64
}

func (w *nonReentrantWriter) Write(p []byte) (int, error) {
	if w.inside.Add(1) != 1 {
		w.t.Error("Verbose sink written concurrently")
	}
	for _, b := range p {
		if b == '\n' {
			w.lines.Add(1)
		}
	}
	w.inside.Add(-1)
	return len(p), nil
}

// TestVerboseSerialized: the Verbose sink is never written concurrently,
// and every completed cell emits exactly one line.
func TestVerboseSerialized(t *testing.T) {
	r := NewRunner(smallSuite())
	r.Parallelism = 8
	w := &nonReentrantWriter{t: t}
	r.Verbose = telemetry.NewLineSink(w)
	cells := crossCells([]string{"wupwise", "mesa", "ammp"},
		[]string{CfgSMARQ64, CfgSMARQ16, CfgALAT, CfgNoHW})
	r.Warm(cells)
	if n := w.lines.Load(); n != int64(len(cells)) {
		t.Errorf("%d verbose lines, want %d", n, len(cells))
	}
}

// TestParallelismDefault: zero and negative Parallelism resolve to a
// positive worker count.
func TestParallelismDefault(t *testing.T) {
	r := NewRunner(smallSuite())
	if n := r.parallelism(); n < 1 {
		t.Errorf("default parallelism %d, want >= 1", n)
	}
	r.Parallelism = -3
	if n := r.parallelism(); n < 1 {
		t.Errorf("negative Parallelism resolved to %d, want >= 1", n)
	}
	r.Parallelism = 5
	if n := r.parallelism(); n != 5 {
		t.Errorf("explicit Parallelism resolved to %d, want 5", n)
	}
}

// TestCrossCells: row-major order and completeness.
func TestCrossCells(t *testing.T) {
	cells := crossCells([]string{"a", "b"}, []string{"x", "y"})
	want := []Cell{{"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"}}
	if fmt.Sprint(cells) != fmt.Sprint(want) {
		t.Errorf("crossCells = %v, want %v", cells, want)
	}
}
