package harness

import (
	"fmt"

	"smarq/internal/aliashw"
	"smarq/internal/vliw"
)

// Table1Row is one feature row of the paper's Table 1.
type Table1Row struct {
	Feature                    string
	Efficeon, Itanium, Ordered string
}

// Table1Data reproduces Table 1: the comparison between the hardware
// alias-detection schemes. Unlike the paper, each qualitative claim is
// *verified behaviourally* against the models (see Probe).
type Table1Data struct {
	Rows []Table1Row
}

// Table1 probes the three hardware models and reports the comparison.
// It returns an error if any model's behaviour contradicts the claimed
// feature — the table is derived, not transcribed.
func Table1() (*Table1Data, error) {
	if err := probeModels(); err != nil {
		return nil, err
	}
	return &Table1Data{Rows: []Table1Row{
		{"mechanism", "bit-mask", "ALAT", "ordered queue"},
		{"scalability", "poor (<= 15 registers)", "good", "good"},
		{"false positives", "no", "yes", "no"},
		{"detects store-store alias", "yes", "no", "yes"},
	}}, nil
}

// probeModels re-derives every Table 1 cell from model behaviour.
func probeModels() error {
	// Scalability: the bit-mask scheme caps its register file.
	if n := aliashw.NewBitmask(64).NumRegs(); n != aliashw.MaxBitmaskRegs {
		return fmt.Errorf("harness: bitmask accepted %d registers", n)
	}
	if q := aliashw.NewOrderedQueue(64); q.NumRegs() != 64 {
		return fmt.Errorf("harness: ordered queue rejected 64 registers")
	}

	// False positives: give each model a store overlapping a recorded
	// load that no check was requested against.
	//   Bitmask: mask excludes the register -> silent.
	bm := aliashw.NewBitmask(8)
	bm.Set(1, false, 0, 100, 108)
	if c := bm.Check(2, 0 /* empty mask */, 100, 108); c != nil {
		return fmt.Errorf("harness: bitmask produced a false positive")
	}
	//   Ordered queue: the checker's offset excludes earlier registers.
	q := aliashw.NewOrderedQueue(8)
	q.OnMem(1, false, true, false, 0, 0, 100, 108)
	if c := q.OnMem(2, true, false, true, 1, 0, 100, 108); c != nil {
		return fmt.Errorf("harness: ordered queue produced a false positive")
	}
	//   ALAT: the store checks everything -> false positive.
	al := aliashw.NewALAT()
	al.OnMem(1, false, true, false, 0, 0, 100, 108)
	if c := al.OnMem(2, true, false, false, -1, 0, 100, 108); c == nil {
		return fmt.Errorf("harness: ALAT failed to produce its false positive")
	}

	// Store-store detection.
	q.Reset()
	q.OnMem(1, true, true, false, 0, 0, 100, 108)
	if c := q.OnMem(2, true, false, true, 0, 0, 100, 108); c == nil {
		return fmt.Errorf("harness: ordered queue missed a store-store alias")
	}
	bm.Reset()
	bm.Set(1, true, 0, 100, 108)
	if c := bm.Check(2, 1, 100, 108); c == nil {
		return fmt.Errorf("harness: bitmask missed a store-store alias")
	}
	al.Reset()
	al.OnMem(1, true, true, true, 0, 0, 100, 108)
	if c := al.OnMem(2, true, true, true, 0, 0, 100, 108); c != nil {
		return fmt.Errorf("harness: ALAT detected a store-store alias (it cannot)")
	}
	return nil
}

// Render formats Table 1.
func (d *Table1Data) Render() string {
	rows := make([][]string, 0, len(d.Rows))
	for _, r := range d.Rows {
		rows = append(rows, []string{r.Feature, r.Efficeon, r.Itanium, r.Ordered})
	}
	return "Table 1: comparison between HW alias detection schemes (behaviourally verified)\n" +
		table([]string{"feature", "Efficeon", "Itanium", "order-based"}, rows)
}

// Table2Data reproduces Table 2: the VLIW machine parameters.
type Table2Data struct {
	Cfg vliw.Config
}

// Table2 returns the machine configuration.
func Table2() *Table2Data { return &Table2Data{Cfg: vliw.DefaultConfig()} }

// Render formats Table 2.
func (d *Table2Data) Render() string {
	c := d.Cfg
	rows := [][]string{
		{"issue width", fmt.Sprintf("%d", c.IssueWidth)},
		{"memory ports", fmt.Sprintf("%d", c.MemPorts)},
		{"alias registers", fmt.Sprintf("%d", c.AliasRegs)},
		{"int latency", fmt.Sprintf("%d", c.IntLat)},
		{"load latency", fmt.Sprintf("%d", c.MemLat)},
		{"FP latency", fmt.Sprintf("%d", c.FPLat)},
		{"FP divide latency", fmt.Sprintf("%d", c.FDivLat)},
		{"FP sqrt latency", fmt.Sprintf("%d", c.FSqrtLat)},
		{"region rollback penalty", fmt.Sprintf("%d", c.RollbackPenalty)},
		{"region commit", fmt.Sprintf("%d", c.CommitCycles)},
		{"interpreter cycles/inst", fmt.Sprintf("%d", c.InterpCyclesPerInst)},
	}
	return "Table 2: VLIW machine parameters\n" + table([]string{"parameter", "value"}, rows)
}
