package harness

import (
	"fmt"

	"smarq/internal/dynopt"
)

// UnrollData extends the evaluation in the direction §6.1 and §8 point to:
// larger, loop-unrolled regions give the speculative scheduler more
// freedom but multiply the alias register working set — making scalable
// alias registers (SMARQ's point) matter even more.
type UnrollData struct {
	Factors []int
	Benches []string
	// Speedup[factor][bench] over the no-HW baseline (also unrolled, so
	// the comparison isolates the alias hardware, not the unrolling).
	Speedup map[int]map[string]float64
	Mean    map[int]float64
	// MaxWS[factor] is the largest per-region alias register working set
	// observed across the suite at that unroll factor.
	MaxWS map[int]int
}

// UnrollSweep measures SMARQ-64 speedup and register pressure at the
// given unroll factors (default 1, 2, 4).
func (r *Runner) UnrollSweep(factors []int) (*UnrollData, error) {
	if len(factors) == 0 {
		factors = []int{1, 2, 4}
	}
	d := &UnrollData{
		Factors: factors,
		Benches: r.benchNames(),
		Speedup: map[int]map[string]float64{},
		Mean:    map[int]float64{},
		MaxWS:   map[int]int{},
	}
	var sweep []string
	for _, u := range factors {
		cfg := dynopt.ConfigSMARQ(64)
		cfg.Region.Unroll = u
		r.AddConfig(fmt.Sprintf("smarq64-u%d", u), cfg)
		base := dynopt.ConfigNoHW()
		base.Region.Unroll = u
		r.AddConfig(fmt.Sprintf("nohw-u%d", u), base)
		sweep = append(sweep, fmt.Sprintf("smarq64-u%d", u), fmt.Sprintf("nohw-u%d", u))
	}
	r.Warm(crossCells(d.Benches, sweep))
	for _, u := range factors {
		smarqName := fmt.Sprintf("smarq64-u%d", u)
		baseName := fmt.Sprintf("nohw-u%d", u)
		d.Speedup[u] = map[string]float64{}
		var sps []float64
		for _, bench := range d.Benches {
			b, err := r.Run(bench, baseName)
			if err != nil {
				return nil, err
			}
			s, err := r.Run(bench, smarqName)
			if err != nil {
				return nil, err
			}
			sp := float64(b.TotalCycles) / float64(s.TotalCycles)
			d.Speedup[u][bench] = sp
			sps = append(sps, sp)
			for _, reg := range s.Regions {
				if reg.Alloc.WorkingSet > d.MaxWS[u] {
					d.MaxWS[u] = reg.Alloc.WorkingSet
				}
			}
		}
		d.Mean[u] = geomean(sps)
	}
	return d, nil
}

// Render formats the sweep.
func (d *UnrollData) Render() string {
	header := []string{"benchmark"}
	for _, u := range d.Factors {
		header = append(header, fmt.Sprintf("unroll x%d", u))
	}
	rows := make([][]string, 0, len(d.Benches)+2)
	for _, b := range d.Benches {
		row := []string{b}
		for _, u := range d.Factors {
			row = append(row, fmt.Sprintf("%.3f", d.Speedup[u][b]))
		}
		rows = append(rows, row)
	}
	mean := []string{"geomean"}
	ws := []string{"max working set"}
	for _, u := range d.Factors {
		mean = append(mean, fmt.Sprintf("%.3f", d.Mean[u]))
		ws = append(ws, fmt.Sprintf("%d", d.MaxWS[u]))
	}
	rows = append(rows, mean, ws)
	return "Loop unrolling sweep: SMARQ-64 speedup over no-alias-HW (both unrolled)\n" +
		table(header, rows)
}
