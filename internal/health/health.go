// Package health is the system-scope graceful-degradation controller: it
// does for the whole dynamic optimization system what the per-region
// recovery ladder (internal/dynopt/recovery.go) does for one region.
//
// The controller watches a sliding window of system events — host faults
// (compile-worker panics, watchdog kills, rejected poisoned results) and
// misspeculation rollbacks — and walks a global degradation ladder:
//
//	normal → no-speculation → compile-off → quarantine
//
// Each demotion sheds one capability: first speculation (new compiles are
// clamped to the conservative tier), then compilation entirely
// (interpreter-only execution), then admission (regions that become hot
// while quarantined are permanently barred from compiling). Re-promotion
// needs a sustained run of clean observations, scaled by an exponential
// backoff that doubles on every demotion — the hysteresis that keeps a
// flapping host from oscillating — and past MaxBackoff the controller
// goes sticky and never promotes again.
//
// Determinism: the controller is plain single-threaded state fed only
// from the simulation thread (dispatch outcomes and install points, both
// fixed by the simulated clock), so its walk is byte-identical for a
// fixed seed at any background worker count.
package health

import "fmt"

// Level is one rung of the global degradation ladder. Higher values
// degrade further.
type Level int

const (
	// Normal: full service, per-region ladders govern speculation.
	Normal Level = iota
	// NoSpeculation clamps every new compile to the conservative tier
	// (no reordering past may-alias memory ops, no speculative
	// eliminations); installed code keeps running.
	NoSpeculation
	// CompileOff stops compiling and dispatching entirely: the system
	// runs interpreter-only until health recovers.
	CompileOff
	// Quarantine additionally bars regions that become hot while here
	// from ever compiling (quarantine-new-regions).
	Quarantine
)

// NumLevels is the ladder length.
const NumLevels = int(Quarantine) + 1

var levelNames = [NumLevels]string{
	"normal", "no-speculation", "compile-off", "quarantine",
}

// String returns the level name.
func (l Level) String() string {
	if l < 0 || int(l) >= NumLevels {
		return fmt.Sprintf("level(%d)", int(l))
	}
	return levelNames[l]
}

// Config tunes the health controller. The zero value disables it
// entirely (Enabled() == false), so existing runs and goldens are
// untouched unless a caller opts in.
type Config struct {
	// Window is the sliding window of observations over which the fault
	// score is measured.
	Window int
	// DemoteThreshold demotes one level when the weighted fault score
	// inside the window reaches it.
	DemoteThreshold int
	// HostFaultWeight is how many window points one host fault scores
	// (rollbacks score 1): host faults are rarer and individually more
	// alarming than rollbacks.
	HostFaultWeight int
	// PromoteAfter re-promotes one level after this many consecutive
	// clean observations, scaled by the current backoff multiplier.
	PromoteAfter int
	// BackoffFactor multiplies the promotion backoff on every demotion;
	// must be >= 2 so oscillation damps.
	BackoffFactor int
	// MaxBackoff caps the multiplier: past it the controller is sticky
	// and never promotes again.
	MaxBackoff int
}

// Enabled reports whether the controller is configured on.
func (c Config) Enabled() bool { return c != Config{} }

// DefaultConfig returns the standard tuning: tolerant enough that the
// background noise of a chaos soak doesn't demote, tight enough that a
// host-fault burst degrades within one window.
func DefaultConfig() Config {
	return Config{
		Window:          128,
		DemoteThreshold: 16,
		HostFaultWeight: 4,
		PromoteAfter:    192,
		BackoffFactor:   2,
		MaxBackoff:      8,
	}
}

// Validate rejects nonsensical tunings (a zero Config is valid: disabled).
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.Window <= 0:
		return fmt.Errorf("health: Window %d, want > 0", c.Window)
	case c.DemoteThreshold <= 0:
		return fmt.Errorf("health: DemoteThreshold %d, want > 0", c.DemoteThreshold)
	case c.HostFaultWeight <= 0:
		return fmt.Errorf("health: HostFaultWeight %d, want > 0", c.HostFaultWeight)
	case c.PromoteAfter <= 0:
		return fmt.Errorf("health: PromoteAfter %d, want > 0", c.PromoteAfter)
	case c.BackoffFactor < 2:
		return fmt.Errorf("health: BackoffFactor %d, want >= 2", c.BackoffFactor)
	case c.MaxBackoff < 1:
		return fmt.Errorf("health: MaxBackoff %d, want >= 1", c.MaxBackoff)
	}
	return nil
}

// Stats is the controller's run-wide accounting (dynopt.Stats.Health).
type Stats struct {
	// Demotions and Promotions count ladder moves.
	Demotions  int64
	Promotions int64
	// HostFaults, Rollbacks and Cleans count the observations fed in.
	HostFaults int64
	Rollbacks  int64
	Cleans     int64
	// QuarantinedRegions counts regions permanently barred from
	// compiling (filled by dynopt, not the controller).
	QuarantinedRegions int64
	// FinalLevel and Sticky are the end-of-run controller state.
	FinalLevel Level
	Sticky     bool
	// LevelEntries counts how many times each level was entered by a
	// demotion or promotion (Normal's count excludes the initial state).
	LevelEntries [NumLevels]int64
}

// Move describes one ladder transition.
type Move struct {
	From, To Level
}

// Controller is the sliding-window health state machine. Not safe for
// concurrent use; the simulation thread owns it.
type Controller struct {
	cfg   Config
	level Level
	// window is a ring of observation weights (0 clean, 1 rollback,
	// HostFaultWeight host fault); score is their sum.
	window     []int
	wpos, wlen int
	score      int
	clean      int // consecutive clean observations
	backoff    int
	sticky     bool
	stats      Stats
}

// New returns a controller at Normal. cfg must be Enabled and Valid.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg, window: make([]int, cfg.Window), backoff: 1}
}

// Level returns the current degradation level.
func (c *Controller) Level() Level { return c.level }

// Sticky reports whether the promotion backoff is exhausted.
func (c *Controller) Sticky() bool { return c.sticky }

// Stats returns the accounting with the end-of-run fields filled.
func (c *Controller) Stats() Stats {
	st := c.stats
	st.FinalLevel = c.level
	st.Sticky = c.sticky
	return st
}

// push slides one observation weight into the window.
func (c *Controller) push(weight int) {
	if c.wlen == len(c.window) {
		c.score -= c.window[c.wpos]
	} else {
		c.wlen++
	}
	c.window[c.wpos] = weight
	c.score += weight
	c.wpos = (c.wpos + 1) % len(c.window)
}

func (c *Controller) resetWindow() {
	for i := range c.window {
		c.window[i] = 0
	}
	c.wpos, c.wlen, c.score, c.clean = 0, 0, 0, 0
}

// demoteIfDue walks one level down when the window score crossed the
// threshold, doubling the promotion backoff (sticky past MaxBackoff).
func (c *Controller) demoteIfDue() (Move, bool) {
	if c.score < c.cfg.DemoteThreshold || c.level == Quarantine {
		return Move{}, false
	}
	from := c.level
	c.level++
	c.stats.Demotions++
	c.stats.LevelEntries[c.level]++
	c.resetWindow()
	c.backoff *= c.cfg.BackoffFactor
	if c.backoff > c.cfg.MaxBackoff {
		c.sticky = true
	}
	return Move{From: from, To: c.level}, true
}

// RecordClean feeds one clean observation (a committed dispatch, or — at
// CompileOff and above, where nothing dispatches — quiet interpreted
// progress) and reports a promotion if one was earned: PromoteAfter ×
// backoff consecutive cleans, unless sticky.
func (c *Controller) RecordClean() (Move, bool) {
	c.stats.Cleans++
	c.push(0)
	c.clean++
	if c.sticky || c.level == Normal || c.clean < c.cfg.PromoteAfter*c.backoff {
		return Move{}, false
	}
	from := c.level
	c.level--
	c.stats.Promotions++
	c.stats.LevelEntries[c.level]++
	c.resetWindow()
	return Move{From: from, To: c.level}, true
}

// RecordRollback feeds one misspeculation rollback (weight 1) and reports
// a demotion if the window score crossed the threshold.
func (c *Controller) RecordRollback() (Move, bool) {
	c.stats.Rollbacks++
	c.push(1)
	c.clean = 0
	return c.demoteIfDue()
}

// RecordHostFault feeds one host fault — a worker panic, watchdog kill or
// rejected poisoned result (weight HostFaultWeight) — and reports a
// demotion if due.
func (c *Controller) RecordHostFault() (Move, bool) {
	c.stats.HostFaults++
	c.push(c.cfg.HostFaultWeight)
	c.clean = 0
	return c.demoteIfDue()
}
