package health

import "testing"

func testConfig() Config {
	return Config{
		Window:          16,
		DemoteThreshold: 4,
		HostFaultWeight: 4,
		PromoteAfter:    8,
		BackoffFactor:   2,
		MaxBackoff:      8,
	}
}

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero Config must validate (disabled): %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if !DefaultConfig().Enabled() {
		t.Fatal("DefaultConfig not Enabled")
	}
}

func TestValidateRejectsBadTunings(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.Window = -1 },
		func(c *Config) { c.DemoteThreshold = 0 },
		func(c *Config) { c.HostFaultWeight = -2 },
		func(c *Config) { c.PromoteAfter = 0 },
		func(c *Config) { c.BackoffFactor = 1 },
		func(c *Config) { c.MaxBackoff = 0 },
	} {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted bad config %+v", c)
		}
	}
}

// TestWalksDownAndBackUp is the hysteresis proof: a host-fault burst
// demotes one level at a time all the way to Quarantine, and a sustained
// clean run climbs all the way back to Normal — but each climb needs
// exponentially more clean observations than the last.
func TestWalksDownAndBackUp(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBackoff = 1 << 20 // never sticky in this test
	c := New(cfg)

	// One host fault scores HostFaultWeight=4, so DemoteThreshold=4 means
	// every fault demotes one level (the window resets on each move).
	for want := NoSpeculation; want <= Quarantine; want++ {
		mv, moved := c.RecordHostFault()
		if !moved || mv.To != want || mv.From != want-1 {
			t.Fatalf("fault %d: moved=%v mv=%+v, want %s->%s", want, moved, mv, want-1, want)
		}
	}
	if c.Level() != Quarantine {
		t.Fatalf("level = %s, want quarantine", c.Level())
	}
	// A fault at the bottom stays at the bottom.
	if _, moved := c.RecordHostFault(); moved {
		t.Fatal("demoted below Quarantine")
	}

	// Walk back up: backoff is 2^3 = 8 after the three demotions it takes
	// to reach the bottom, so each promotion needs 8*8 = 64 cleans
	// (backoff does not decay on promotion).
	needed := cfg.PromoteAfter * 8
	for want := CompileOff; want >= Normal; want-- {
		for i := 0; i < needed-1; i++ {
			if _, moved := c.RecordClean(); moved {
				t.Fatalf("promoted to %s after only %d cleans, want %d", c.Level(), i+1, needed)
			}
		}
		mv, moved := c.RecordClean()
		if !moved || mv.To != want {
			t.Fatalf("promotion to %s: moved=%v mv=%+v", want, moved, mv)
		}
	}
	if c.Level() != Normal {
		t.Fatalf("level = %s, want normal", c.Level())
	}
	// At Normal, cleans never promote further.
	if _, moved := c.RecordClean(); moved {
		t.Fatal("promoted above Normal")
	}

	st := c.Stats()
	if st.Demotions != 3 || st.Promotions != 3 {
		t.Fatalf("stats: %d demotions, %d promotions, want 3 and 3", st.Demotions, st.Promotions)
	}
	if st.FinalLevel != Normal || st.Sticky {
		t.Fatalf("final: %s sticky=%v", st.FinalLevel, st.Sticky)
	}
}

// TestRollbackRateDemotes proves rollbacks alone (weight 1) can demote
// once enough land inside one window, and that interleaved cleans slide
// old rollbacks out.
func TestRollbackRateDemotes(t *testing.T) {
	c := New(testConfig()) // window 16, threshold 4
	for i := 0; i < 3; i++ {
		if _, moved := c.RecordRollback(); moved {
			t.Fatalf("demoted after %d rollbacks, threshold is 4", i+1)
		}
	}
	// Push 16 cleans: the three rollbacks slide out of the window.
	for i := 0; i < 16; i++ {
		c.RecordClean()
	}
	for i := 0; i < 3; i++ {
		if _, moved := c.RecordRollback(); moved {
			t.Fatalf("stale rollbacks still in window (demoted at %d)", i+1)
		}
	}
	if mv, moved := c.RecordRollback(); !moved || mv.To != NoSpeculation {
		t.Fatalf("4th in-window rollback did not demote (mv=%+v moved=%v)", mv, moved)
	}
}

// TestStickyStopsPromotion proves the exponential backoff cap: once the
// multiplier exceeds MaxBackoff the controller never promotes again.
func TestStickyStopsPromotion(t *testing.T) {
	cfg := testConfig() // BackoffFactor 2, MaxBackoff 8
	c := New(cfg)
	// Three demotions reach the bottom with backoff 2^3 = 8, still within
	// MaxBackoff: the ladder alone cannot exhaust the backoff.
	for i := 0; i < 3; i++ {
		c.RecordHostFault()
	}
	if c.Sticky() {
		t.Fatal("sticky after a one-way walk to the bottom")
	}
	// Flap once: climb one level (8*8 cleans), then fault again. The
	// re-demotion pushes backoff to 16 > MaxBackoff → sticky forever.
	for i := 0; i < cfg.PromoteAfter*8; i++ {
		c.RecordClean()
	}
	if c.Level() != CompileOff {
		t.Fatalf("level = %s after clean run, want compile-off", c.Level())
	}
	c.RecordHostFault()
	if !c.Sticky() {
		t.Fatal("controller not sticky after backoff exhaustion")
	}
	for i := 0; i < cfg.PromoteAfter*1000; i++ {
		if _, moved := c.RecordClean(); moved {
			t.Fatal("sticky controller promoted")
		}
	}
	if c.Level() != Quarantine {
		t.Fatalf("level = %s, want quarantine forever", c.Level())
	}
}

// TestCleanRunResetsOnFault proves a fault interrupts a promotion streak.
func TestCleanRunResetsOnFault(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	c.RecordHostFault() // → NoSpeculation, backoff 2, need 16 cleans
	for i := 0; i < 15; i++ {
		c.RecordClean()
	}
	c.RecordRollback() // resets the streak (score 1 < threshold: no demote)
	if c.Level() != NoSpeculation {
		t.Fatalf("level = %s after single rollback", c.Level())
	}
	for i := 0; i < 15; i++ {
		if _, moved := c.RecordClean(); moved {
			t.Fatal("promotion streak survived the rollback")
		}
	}
	if _, moved := c.RecordClean(); !moved {
		t.Fatal("fresh 16-clean run did not promote")
	}
}
