package interp

import (
	"math"

	"smarq/internal/guest"
)

// dOp is a decoded opcode. The first block of values mirrors guest.Opcode
// one-to-one (same numeric order, so plain instructions decode with a cast);
// after dHalt come the fused pairs and the invalid-opcode sentinel. The
// interpreter's inner switch is dense over these values, which the compiler
// lowers to a jump table.
type dOp uint8

const (
	dNop dOp = iota
	dLi
	dMov
	dAdd
	dSub
	dMul
	dDiv
	dAnd
	dOr
	dXor
	dShl
	dShr
	dAddi
	dMuli
	dSlt
	dFLi
	dFMov
	dFAdd
	dFSub
	dFMul
	dFDiv
	dFNeg
	dFAbs
	dFSqrt
	dCvtIF
	dCvtFI
	dLd1
	dLd2
	dLd4
	dLd8
	dSt1
	dSt2
	dSt4
	dSt8
	dFLd8
	dFSt8
	dBeq
	dBne
	dBlt
	dBge
	dJmp
	dHalt

	// Fused pairs: two guest instructions executed as one decoded op. Both
	// architectural writes still happen and both instructions retire, so
	// fusion is invisible to the profile, DynInsts, and the differential
	// tests.
	dSltBeq   // slt rd,rs1,rs2 ; beq fd,fs -> target
	dSltBne   // slt rd,rs1,rs2 ; bne fd,fs -> target
	dAddiLd1  // addi rd,rs1,imm ; ld1 fd,[rd+imm2]
	dAddiLd2  // addi rd,rs1,imm ; ld2 fd,[rd+imm2]
	dAddiLd4  // addi rd,rs1,imm ; ld4 fd,[rd+imm2]
	dAddiLd8  // addi rd,rs1,imm ; ld8 fd,[rd+imm2]
	dAddiFLd8 // addi rd,rs1,imm ; fld8 fd,[rd+imm2]
	dMuliAdd  // muli rd,rs1,imm ; add fd,rs2,rd

	// Fused triples: the scaled-index address pattern (muli ; add ;
	// 8-byte memory access) every workload emits through idx8. All three
	// architectural writes happen in original order and all three
	// instructions retire.
	dMuliAddLd8  // muli rd,rs1,imm ; add fd,rs2,rd ; ld8 fs,[fd+imm2]
	dMuliAddFLd8 // muli rd,rs1,imm ; add fd,rs2,rd ; fld8 fs,[fd+imm2]
	dMuliAddSt8  // muli rd,rs1,imm ; add fd,rs2,rd ; st8 [fd+imm2],fs
	dMuliAddFSt8 // muli rd,rs1,imm ; add fd,rs2,rd ; fst8 [fd+imm2],fs

	// dBad marks an opcode guest.Exec cannot execute. Hitting it falls to
	// the cold path, which reproduces the reference error exactly.
	dBad
)

// regMask masks a decoded register operand for bounds-check-free register
// file indexing (guest.NumRegs is a power of two). Decoding routes any
// instruction with an operand >= NumRegs to dBad, so for every executable
// decoded instruction the mask is a semantic no-op — it exists purely so
// the compiler can prove r[in.rd&regMask] is in range.
const regMask = guest.NumRegs - 1

// regsOK reports whether every register operand is within the register
// file. guest.Program.Validate enforces this; hand-built programs that
// violate it fall to the cold path, where guest.Exec produces the same
// out-of-range panic the reference engine would.
func regsOK(in guest.Inst) bool {
	return in.Rd < guest.NumRegs && in.Rs1 < guest.NumRegs && in.Rs2 < guest.NumRegs
}

// decInst is one pre-decoded instruction: a 32-byte value struct with the
// access size resolved into the opcode, the float immediate pre-converted to
// bits, and the original instruction index kept only for cold-path error
// attribution.
type decInst struct {
	op     dOp
	rd     uint8
	rs1    uint8
	rs2    uint8
	fd     uint8 // fused pair: destination of the second instruction
	fs     uint8 // fused compare+branch: second branch source register
	slot   uint8 // Profile successor cell a taken branch records into
	_      uint8
	gi     int32 // index of the (faultable) guest instruction within its block
	target int32 // branch/jmp destination block ID
	imm    int64 // primary immediate; FImm bits for dFLi
	imm2   int64 // fused pair: the second instruction's immediate
}

// decBlock is the decoded form of one basic block: a slice of the flat code
// array plus the static fallthrough successor.
type decBlock struct {
	start, end int32
	fall       int32 // id+1; out of range for the final block, like the reference
}

// decProgram is the decode cache for a whole program: every block decoded
// once, back to back, in one flat value-struct array.
type decProgram struct {
	code   []decInst
	blocks []decBlock
}

// Successor cells in Profile. Decoding assigns slotFall to the fallthrough
// edge and to unconditional jumps (a valid block's only exit), and slotTaken
// to taken conditional branches, so edge recording at block end is a single
// indexed store.
const (
	slotFall  = 0
	slotTaken = 1
)

// decodeProgram decodes every block of prog into a flat decInst array,
// fusing adjacent pairs where the second instruction consumes the first
// instruction's result (compare+branch, addi+load address arithmetic).
func decodeProgram(prog *guest.Program) decProgram {
	n := 0
	for i := range prog.Blocks {
		n += len(prog.Blocks[i].Insts)
	}
	d := decProgram{
		code:   make([]decInst, 0, n),
		blocks: make([]decBlock, len(prog.Blocks)),
	}
	for id := range prog.Blocks {
		insts := prog.Blocks[id].Insts
		start := int32(len(d.code))
		for i := 0; i < len(insts); i++ {
			if i+2 < len(insts) {
				if f, ok := fuseTriple(insts[i], insts[i+1], insts[i+2], int32(i)); ok {
					d.code = append(d.code, f)
					i += 2
					continue
				}
			}
			if i+1 < len(insts) {
				if f, ok := fusePair(insts[i], insts[i+1], int32(i)); ok {
					d.code = append(d.code, f)
					i++
					continue
				}
			}
			d.code = append(d.code, decodeOne(insts[i], int32(i)))
		}
		d.blocks[id] = decBlock{start: start, end: int32(len(d.code)), fall: int32(id + 1)}
	}
	return d
}

// decodeOne decodes a single guest instruction.
func decodeOne(in guest.Inst, gi int32) decInst {
	di := decInst{
		rd:     uint8(in.Rd),
		rs1:    uint8(in.Rs1),
		rs2:    uint8(in.Rs2),
		gi:     gi,
		target: int32(in.Target),
		imm:    in.Imm,
	}
	switch {
	case in.Op > guest.Halt || !regsOK(in):
		di.op = dBad
	case in.Op == guest.FLi:
		di.op = dFLi
		di.imm = int64(math.Float64bits(in.FImm))
	default:
		di.op = dOp(in.Op) // same numeric order by construction
		if in.Op.IsBranch() {
			di.slot = slotTaken
		}
	}
	return di
}

// fusePair returns the fused decoding of (a, b) when the pair matches a
// fusion rule, with gi attributing any fault to the correct original
// instruction. Fusion never changes architectural effects: the first
// instruction's destination is still written before the second executes, so
// destination aliasing (e.g. the load overwriting the addi result) behaves
// exactly as in the reference.
func fusePair(a, b guest.Inst, i int32) (decInst, bool) {
	if !regsOK(a) || !regsOK(b) {
		return decInst{}, false // each half decodes alone, to dBad
	}
	switch {
	case a.Op == guest.Slt && (b.Op == guest.Beq || b.Op == guest.Bne) &&
		(b.Rs1 == a.Rd || b.Rs2 == a.Rd):
		op := dSltBeq
		if b.Op == guest.Bne {
			op = dSltBne
		}
		return decInst{
			op: op, rd: uint8(a.Rd), rs1: uint8(a.Rs1), rs2: uint8(a.Rs2),
			fd: uint8(b.Rs1), fs: uint8(b.Rs2),
			slot: slotTaken, gi: i, target: int32(b.Target),
		}, true
	case a.Op == guest.Muli && b.Op == guest.Add &&
		(b.Rs1 == a.Rd || b.Rs2 == a.Rd):
		// The scaled term is read back after the muli result is written,
		// so add operands that alias the muli destination see the fresh
		// value exactly as in the reference.
		other := b.Rs1
		if b.Rs1 == a.Rd {
			other = b.Rs2
		}
		return decInst{
			op: dMuliAdd, rd: uint8(a.Rd), rs1: uint8(a.Rs1), rs2: uint8(other),
			fd: uint8(b.Rd), gi: i, imm: a.Imm,
		}, true
	case a.Op == guest.Addi && b.Op.IsLoad() && b.Rs1 == a.Rd:
		var op dOp
		switch b.Op {
		case guest.Ld1:
			op = dAddiLd1
		case guest.Ld2:
			op = dAddiLd2
		case guest.Ld4:
			op = dAddiLd4
		case guest.Ld8:
			op = dAddiLd8
		case guest.FLd8:
			op = dAddiFLd8
		}
		return decInst{
			op: op, rd: uint8(a.Rd), rs1: uint8(a.Rs1), fd: uint8(b.Rd),
			gi: i + 1, imm: a.Imm, imm2: b.Imm,
		}, true
	}
	return decInst{}, false
}

// fuseTriple returns the fused decoding of (a, b, c) when the three match
// the scaled-index address pattern: muli computing a byte offset, add
// forming the address, and an 8-byte access through it. Fault attribution
// points at the memory access (the only faultable third); the first two
// instructions have retired by then.
func fuseTriple(a, b, c guest.Inst, i int32) (decInst, bool) {
	if !regsOK(a) || !regsOK(b) || !regsOK(c) {
		return decInst{}, false
	}
	if a.Op != guest.Muli || b.Op != guest.Add ||
		(b.Rs1 != a.Rd && b.Rs2 != a.Rd) || c.Rs1 != b.Rd {
		return decInst{}, false
	}
	var op dOp
	switch c.Op {
	case guest.Ld8:
		op = dMuliAddLd8
	case guest.FLd8:
		op = dMuliAddFLd8
	case guest.St8:
		op = dMuliAddSt8
	case guest.FSt8:
		op = dMuliAddFSt8
	default:
		return decInst{}, false
	}
	other := b.Rs1
	if b.Rs1 == a.Rd {
		other = b.Rs2
	}
	return decInst{
		op: op, rd: uint8(a.Rd), rs1: uint8(a.Rs1), rs2: uint8(other),
		fd: uint8(b.Rd), fs: uint8(c.Rd),
		gi: i + 2, imm: a.Imm, imm2: c.Imm,
	}, true
}
