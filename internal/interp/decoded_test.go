package interp

import (
	"testing"

	"smarq/internal/guest"
	"smarq/internal/workload"
)

// runEngine runs one interpreter engine over a fresh program instance and
// returns the interpreter plus the outcome.
func runEngine(t *testing.T, prog *guest.Program, memSize int, maxInsts uint64, ref bool) (*Interpreter, bool, error) {
	t.Helper()
	it := New(prog, &guest.State{}, guest.NewMemory(memSize))
	it.Ref = ref
	halted, err := it.Run(0, maxInsts)
	return it, halted, err
}

// diffEngines compares every observable of a decoded run against a
// reference run: halt/error outcome, retirement count, both register
// files, the memory digest, and the full profile (block counts plus the
// edge count of every static successor).
func diffEngines(t *testing.T, name string, prog *guest.Program, dec, ref *Interpreter, haltedDec, haltedRef bool, errDec, errRef error) {
	t.Helper()
	if haltedDec != haltedRef {
		t.Fatalf("%s: halted=%v, reference %v", name, haltedDec, haltedRef)
	}
	switch {
	case (errDec == nil) != (errRef == nil):
		t.Fatalf("%s: err=%v, reference %v", name, errDec, errRef)
	case errDec != nil && errDec.Error() != errRef.Error():
		t.Fatalf("%s: err %q, reference %q", name, errDec, errRef)
	}
	if dec.DynInsts != ref.DynInsts {
		t.Fatalf("%s: DynInsts=%d, reference %d", name, dec.DynInsts, ref.DynInsts)
	}
	if *dec.St != *ref.St {
		t.Fatalf("%s: architectural state diverged:\n%+v\nreference:\n%+v", name, dec.St, ref.St)
	}
	if d, r := dec.Mem.Digest(), ref.Mem.Digest(); d != r {
		t.Fatalf("%s: memory digest %#x, reference %#x", name, d, r)
	}
	for id := range prog.Blocks {
		if dec.Prof.BlockCounts[id] != ref.Prof.BlockCounts[id] {
			t.Fatalf("%s: B%d count %d, reference %d", name, id,
				dec.Prof.BlockCounts[id], ref.Prof.BlockCounts[id])
		}
		for _, succ := range prog.Blocks[id].Successors() {
			if d, r := dec.Prof.EdgeCount(id, succ), ref.Prof.EdgeCount(id, succ); d != r {
				t.Fatalf("%s: edge B%d->B%d count %d, reference %d", name, id, succ, d, r)
			}
		}
	}
}

// TestInterpDecodedMatchesReference proves the pre-decoded engine
// bit-identical to the guest.Exec reference across the whole workload
// suite: registers, memory, profile (block and edge counts) and retirement
// counts.
func TestInterpDecodedMatchesReference(t *testing.T) {
	for _, bm := range workload.Suite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			prog := bm.Build()
			ref, haltedRef, errRef := runEngine(t, prog, bm.MemSize, bm.MaxInsts, true)
			dec, haltedDec, errDec := runEngine(t, prog, bm.MemSize, bm.MaxInsts, false)
			if !haltedRef || errRef != nil {
				t.Fatalf("reference run: halted=%v err=%v", haltedRef, errRef)
			}
			diffEngines(t, bm.Name, prog, dec, ref, haltedDec, haltedRef, errDec, errRef)
		})
	}
}

// fusionProgram exercises every fusion rule: slt feeding beq and bne,
// addi feeding loads of every width (including the float load), plus the
// destination-aliasing case where the load overwrites the addi result.
func fusionProgram() *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock() // B0: init
	b.Li(1, 16)  // loop counter
	b.Li(2, 64)  // base address
	b.Li(13, 1)
	b.St8(2, 0, 2)
	loop := b.NewBlock() // B1: fused bodies
	// addi+ld fusion at every width; r4 = base+8 is also reused below.
	b.Addi(4, 2, 8)
	b.Ld1(5, 4, 0)
	b.Addi(4, 2, 8)
	b.Ld2(6, 4, 0)
	b.Addi(4, 2, 8)
	b.Ld4(7, 4, 0)
	b.Addi(4, 2, 8)
	b.Ld8(8, 4, 0)
	b.Addi(4, 2, 8)
	b.FLd8(3, 4, 0)
	// Destination aliasing: the fused load clobbers the addi result.
	b.Addi(9, 2, 8)
	b.Ld8(9, 9, 0)
	// Scaled-index triples at every fused access, covering both add
	// operand orders, plus a muli+add pair with no memory op to absorb.
	b.Muli(14, 13, 8)
	b.Add(14, 2, 14)
	b.Ld8(15, 14, 0)
	b.Muli(14, 13, 8)
	b.Add(14, 14, 2)
	b.FLd8(4, 14, 0)
	b.Muli(14, 13, 8)
	b.Add(14, 2, 14)
	b.St8(14, 0, 10)
	b.Muli(14, 13, 8)
	b.Add(14, 2, 14)
	b.FSt8(14, 0, 3)
	b.Muli(14, 13, 8)
	b.Add(15, 2, 14)
	b.Add(10, 10, 15)
	// Store something dependent so divergence reaches memory.
	b.Add(10, 5, 6)
	b.Add(10, 10, 7)
	b.Add(10, 10, 8)
	b.Add(10, 10, 9)
	b.St8(2, 16, 10)
	// slt+bne fusion: loop while 0 < r1.
	b.Addi(1, 1, -1)
	b.Slt(11, 0, 1)
	b.Bne(11, 0, loop)
	b.NewBlock() // B2: slt+beq fusion, not taken (r1=0 < r13=1, so r12=1)
	b.Slt(12, 1, 13)
	b.Beq(12, 0, loop)
	b.NewBlock() // B3
	b.Halt()
	return b.MustProgram()
}

// TestInterpFusionMatchesReference runs the fusion-heavy program through
// both engines and demands identical results, proving fused pairs still
// perform every architectural write and retire both instructions.
func TestInterpFusionMatchesReference(t *testing.T) {
	prog := fusionProgram()
	ref, haltedRef, errRef := runEngine(t, prog, 4096, 1_000_000, true)
	dec, haltedDec, errDec := runEngine(t, prog, 4096, 1_000_000, false)
	if !haltedRef || errRef != nil {
		t.Fatalf("reference run: halted=%v err=%v", haltedRef, errRef)
	}
	diffEngines(t, "fusion", prog, dec, ref, haltedDec, haltedRef, errDec, errRef)

	// The program must actually contain fused ops, or this test proves
	// nothing.
	fused, triples := 0, 0
	for _, in := range dec.dec.code {
		if in.op > dHalt && in.op < dBad {
			fused++
		}
		if in.op >= dMuliAddLd8 && in.op < dBad {
			triples++
		}
	}
	if fused < 12 {
		t.Fatalf("decoded program holds %d fused ops, want >= 12", fused)
	}
	if triples < 4 {
		t.Fatalf("decoded program holds %d fused triples, want >= 4", triples)
	}
}

// TestInterpFusedFaultRetirement: when the second half of a fused pair
// faults, only the first instruction retires and the error matches the
// reference exactly (the fault attribution contract of failBlock).
func TestInterpFusedFaultRetirement(t *testing.T) {
	build := func() *guest.Program {
		b := guest.NewBuilder()
		b.NewBlock()
		b.Li(1, 1<<40) // way out of range
		b.Addi(2, 1, 8)
		b.Ld8(3, 2, 0) // fuses with the addi, then faults
		b.Halt()
		return b.MustProgram()
	}
	ref, haltedRef, errRef := runEngine(t, build(), 256, 1_000_000, true)
	dec, haltedDec, errDec := runEngine(t, build(), 256, 1_000_000, false)
	if errRef == nil {
		t.Fatal("reference run did not fault")
	}
	diffEngines(t, "fused-fault", build(), dec, ref, haltedDec, haltedRef, errDec, errRef)
	// li and addi retired; the faulting fused load did not.
	if dec.DynInsts != 2 {
		t.Fatalf("DynInsts = %d, want 2", dec.DynInsts)
	}
}

// TestInterpTripleFaultRetirement: when the memory access of a fused
// scaled-index triple faults, the muli and add halves have retired (and
// written their destinations) but the access has not, and the error
// matches the reference exactly.
func TestInterpTripleFaultRetirement(t *testing.T) {
	build := func() *guest.Program {
		b := guest.NewBuilder()
		b.NewBlock()
		b.Li(1, 1<<37)
		b.Li(2, 8)
		b.Muli(3, 1, 8) // 1<<40
		b.Add(3, 2, 3)
		b.Ld8(4, 3, 0) // fuses into the triple, then faults
		b.Halt()
		return b.MustProgram()
	}
	ref, haltedRef, errRef := runEngine(t, build(), 256, 1_000_000, true)
	dec, haltedDec, errDec := runEngine(t, build(), 256, 1_000_000, false)
	if errRef == nil {
		t.Fatal("reference run did not fault")
	}
	diffEngines(t, "triple-fault", build(), dec, ref, haltedDec, haltedRef, errDec, errRef)
	// li, li, muli and add retired; the faulting fused load did not.
	if dec.DynInsts != 4 {
		t.Fatalf("DynInsts = %d, want 4", dec.DynInsts)
	}
}

// TestInterpBadOpcode: an opcode guest.Exec cannot execute surfaces the
// identical error from both engines.
func TestInterpBadOpcode(t *testing.T) {
	prog := &guest.Program{
		Blocks: []*guest.Block{{Insts: []guest.Inst{
			{Op: guest.Nop},
			{Op: guest.Opcode(200)},
			{Op: guest.Halt},
		}}},
	}
	ref, _, errRef := runEngine(t, prog, 64, 1000, true)
	dec, _, errDec := runEngine(t, prog, 64, 1000, false)
	if errRef == nil || errDec == nil {
		t.Fatalf("bad opcode not rejected: ref=%v dec=%v", errRef, errDec)
	}
	if errDec.Error() != errRef.Error() {
		t.Fatalf("err %q, reference %q", errDec, errRef)
	}
	if dec.DynInsts != ref.DynInsts {
		t.Fatalf("DynInsts=%d, reference %d", dec.DynInsts, ref.DynInsts)
	}
}

// TestRunBudgetOvershootBounded pins the documented maxInsts contract:
// the budget is checked between blocks, so a run overshoots by at most
// the size of the final block it executed.
func TestRunBudgetOvershootBounded(t *testing.T) {
	const bodySize = 500
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1) // never zero, so the loop spins forever
	loop := b.NewBlock()
	for i := 0; i < bodySize; i++ {
		b.Addi(2, 2, 1)
	}
	b.Jmp(loop)
	prog := b.MustProgram()
	blockInsts := uint64(bodySize + 1)

	const budget = 100 // far below one block
	it := New(prog, &guest.State{}, guest.NewMemory(64))
	halted, err := it.Run(0, budget)
	if err != nil || halted {
		t.Fatalf("halted=%v err=%v", halted, err)
	}
	if it.DynInsts < budget {
		t.Fatalf("DynInsts=%d stopped below the budget %d", it.DynInsts, budget)
	}
	if max := budget + blockInsts; it.DynInsts > max {
		t.Fatalf("DynInsts=%d overshoots budget %d by more than one block (max %d)",
			it.DynInsts, budget, max)
	}
}

// TestInterpreterReset: Reset rewinds profile and retirement counts so a
// reused interpreter replays identically (the benchmark-reuse contract).
func TestInterpreterReset(t *testing.T) {
	prog := countdownProgram(50)
	st := &guest.State{}
	mem := guest.NewMemory(256)
	it := New(prog, st, mem)
	if _, err := it.Run(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	first := it.DynInsts
	firstCounts := append([]uint64(nil), it.Prof.BlockCounts...)

	*st = guest.State{}
	mem.Zero()
	it.Reset()
	if it.DynInsts != 0 || it.Prof.BlockCounts[1] != 0 || it.Prof.EdgeCount(1, 1) != 0 {
		t.Fatal("Reset left profile state behind")
	}
	if _, err := it.Run(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if it.DynInsts != first {
		t.Fatalf("replay retired %d, first run %d", it.DynInsts, first)
	}
	for id, n := range it.Prof.BlockCounts {
		if n != firstCounts[id] {
			t.Fatalf("replay B%d count %d, first run %d", id, n, firstCounts[id])
		}
	}
}
