package interp

import (
	"math"
	"math/rand"
	"testing"

	"smarq/internal/guest"
)

const fuzzMemSize = 1 << 14

// randomInterpProgram generates a structured random guest program aimed
// squarely at the decoded engine: counted loops whose bodies mix every
// access width, fusion-prone addi+load pairs (including the
// destination-aliasing form), slt feeding fused and non-fused consumers,
// quiet div-by-zero, masked shifts, and float chains that round-trip raw
// memory bits. A rare variant poisons a base register with an
// out-of-range address so the failBlock cold path gets fuzzed too. All
// loops are counted, so every program either halts or faults — never
// spins.
func randomInterpProgram(rng *rand.Rand) *guest.Program {
	b := guest.NewBuilder()

	// Registers: r1..r4 array bases, r5 loop counter, r7 trip limit,
	// r8/r9 branch/address temps, r10..r15 scratch, r16 pointer table.
	b.NewBlock()
	bases := []int64{1 << 10, 3 << 10, 5 << 10, 7 << 10}
	for i, base := range bases {
		b.Li(guest.Reg(1+i), base+int64(rng.Intn(4))*8)
	}
	b.Li(16, 9<<10)
	b.Li(9, bases[rng.Intn(4)])
	b.St8(16, 0, 9)
	b.Li(5, 0)
	b.Li(7, int64(40+rng.Intn(80))) // trip count
	for r := 10; r <= 15; r++ {
		b.Li(guest.Reg(r), int64(rng.Intn(64))*8)
	}
	b.FLi(1, 1.5)
	b.FLi(2, 0.25)
	// Rare fault seed: an out-of-range base makes the first access
	// through it fault — both engines must report the identical error at
	// the identical retirement count.
	if rng.Intn(8) == 0 {
		b.Li(guest.Reg(1+rng.Intn(4)), fuzzMemSize+int64(rng.Intn(1<<20)))
	}

	loop := b.NewBlock()
	nOps := 4 + rng.Intn(14)
	for i := 0; i < nOps; i++ {
		base := guest.Reg(1 + rng.Intn(4))
		off := int64(rng.Intn(32)) * 8
		scratch := guest.Reg(10 + rng.Intn(6))
		switch rng.Intn(14) {
		case 0:
			b.St8(base, off, scratch)
		case 1:
			b.Ld8(scratch, base, off)
		case 2: // fusion-prone addi+load at a random width
			b.Addi(9, base, off)
			switch rng.Intn(5) {
			case 0:
				b.Ld1(scratch, 9, 0)
			case 1:
				b.Ld2(scratch, 9, 0)
			case 2:
				b.Ld4(scratch, 9, 0)
			case 3:
				b.Ld8(scratch, 9, 0)
			default:
				b.FLd8(3, 9, 0)
			}
		case 3: // destination-aliasing fused pair
			b.Addi(scratch, base, off)
			b.Ld8(scratch, scratch, 0)
		case 4: // store through the pointer table (opaque root)
			b.Ld8(9, 16, 0)
			b.St8(9, off%128, scratch)
		case 5: // quiet div-by-zero and masked shifts
			b.Div(11, scratch, 10)
			b.Shl(12, 11, scratch)
			b.Shr(12, 12, 10)
		case 6: // slt with a non-branch consumer: must NOT fuse
			b.Slt(11, scratch, 10)
			b.Add(12, 11, 11)
		case 7: // float chain plus both conversions
			b.FMul(3, 1, 2)
			b.FAdd(1, 3, 2)
			b.CvtFI(13, 2)
			b.CvtIF(4, 13)
		case 8: // narrow store shadowed by a narrower load
			b.St2(base, off, scratch)
			b.Ld1(scratch, base, off)
		case 9: // integer arithmetic mix
			b.Mul(14, scratch, 10)
			b.Sub(15, 14, scratch)
			b.Xor(14, 15, 14)
			b.Muli(15, 15, int64(rng.Intn(7))-3)
		case 10:
			b.Nop()
			b.Mov(13, scratch)
			b.Or(13, 13, 10)
			b.And(13, 13, 10)
		case 12: // scaled-index triple (the idx8 pattern)
			b.Muli(9, 5, 8)
			b.Add(9, base, 9)
			if rng.Intn(2) == 0 {
				b.Ld8(scratch, 9, 0)
			} else {
				b.St8(9, 0, scratch)
			}
		case 13: // scaled-index triple, aliasing operand order, float access
			b.Muli(9, 5, 8)
			b.Add(9, 9, base)
			if rng.Intn(2) == 0 {
				b.FLd8(3, 9, 0)
			} else {
				b.FSt8(9, 0, 1)
			}
		default: // raw memory bits as floats: NaN/Inf propagation
			b.FSt8(base, off, 1)
			b.FLd8(2, base, off)
			b.FAbs(2, 2)
			b.FSqrt(2, 2)
			b.FNeg(3, 2)
			b.FDiv(3, 3, 2)
		}
	}

	// Terminator variants: plain blt, fused slt+bne, fused slt+beq.
	tail := b.Reserve(2) // tail: re-loop or exit ramp; tail+1: halt
	b.Addi(5, 5, 1)
	switch rng.Intn(3) {
	case 0:
		b.Blt(5, 7, loop)
		b.At(tail)
		b.Jmp(tail + 1)
	case 1:
		b.Slt(8, 5, 7)
		b.Bne(8, 0, loop)
		b.At(tail)
		b.Jmp(tail + 1)
	default:
		b.Slt(8, 5, 7)
		b.Beq(8, 0, tail+1) // exits when the count runs out
		b.At(tail)
		b.Jmp(loop)
	}
	b.At(tail + 1)
	b.Halt()
	return b.MustProgram()
}

// FuzzInterpDecoded is the engine-level differential fuzz: the decoded
// threaded interpreter versus the guest.Exec reference on the same random
// program, compared on halt/error outcome, retirement count, both
// register files (floats bit-compared, so NaN payloads count), the memory
// digest, and the full profile. Any decode, fusion, or retirement bug
// anywhere in the fast path shows up as a divergence here.
func FuzzInterpDecoded(f *testing.F) {
	for _, seed := range []int64{1, 42, 1000, 31337} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		build := func() *guest.Program {
			return randomInterpProgram(rand.New(rand.NewSource(seed)))
		}
		prog := build()
		ref, haltedRef, errRef := runEngine(t, prog, fuzzMemSize, 3_000_000, true)
		dec, haltedDec, errDec := runEngine(t, build(), fuzzMemSize, 3_000_000, false)

		if haltedDec != haltedRef {
			t.Fatalf("seed %d: halted=%v, reference %v", seed, haltedDec, haltedRef)
		}
		switch {
		case (errDec == nil) != (errRef == nil):
			t.Fatalf("seed %d: err=%v, reference %v", seed, errDec, errRef)
		case errDec != nil && errDec.Error() != errRef.Error():
			t.Fatalf("seed %d: err %q, reference %q", seed, errDec, errRef)
		}
		if dec.DynInsts != ref.DynInsts {
			t.Fatalf("seed %d: DynInsts=%d, reference %d", seed, dec.DynInsts, ref.DynInsts)
		}
		for r := 0; r < guest.NumRegs; r++ {
			if dec.St.R[r] != ref.St.R[r] {
				t.Fatalf("seed %d: r%d = %#x, reference %#x", seed, r, dec.St.R[r], ref.St.R[r])
			}
			if d, w := math.Float64bits(dec.St.F[r]), math.Float64bits(ref.St.F[r]); d != w {
				t.Fatalf("seed %d: f%d bits %#x, reference %#x", seed, r, d, w)
			}
		}
		if d, r := dec.Mem.Digest(), ref.Mem.Digest(); d != r {
			t.Fatalf("seed %d: memory digest %#x, reference %#x", seed, d, r)
		}
		for id := range prog.Blocks {
			if dec.Prof.BlockCounts[id] != ref.Prof.BlockCounts[id] {
				t.Fatalf("seed %d: B%d count %d, reference %d", seed, id,
					dec.Prof.BlockCounts[id], ref.Prof.BlockCounts[id])
			}
			for _, succ := range prog.Blocks[id].Successors() {
				if d, r := dec.Prof.EdgeCount(id, succ), ref.Prof.EdgeCount(id, succ); d != r {
					t.Fatalf("seed %d: edge B%d->B%d count %d, reference %d", seed, id, succ, d, r)
				}
			}
		}
	})
}
