// Package interp interprets guest programs and collects the execution
// profile the dynamic optimization system uses to find hot code.
//
// In the paper's framework (Figure 1) guest code "is first executed through
// interpretation" while the system "profiles the execution for hot basic
// blocks"; when a block's execution count crosses the hotness threshold the
// optimizer forms a superblock region along the hot path. The interpreter
// therefore counts block entries and control-flow edges (the edge counts
// steer region formation toward the most likely successor).
package interp

import (
	"fmt"

	"smarq/internal/telemetry"

	"smarq/internal/guest"
)

// Edge is one observed control transfer between guest blocks.
type Edge struct {
	From, To int
}

// Profile accumulates execution counts during interpretation.
type Profile struct {
	BlockCounts []uint64        // indexed by block ID
	EdgeCounts  map[Edge]uint64 // taken control transfers
}

// NewProfile returns an empty profile for a program with numBlocks blocks.
func NewProfile(numBlocks int) *Profile {
	return &Profile{
		BlockCounts: make([]uint64, numBlocks),
		EdgeCounts:  make(map[Edge]uint64),
	}
}

// Hot reports whether block id has reached the hotness threshold.
func (p *Profile) Hot(id int, threshold uint64) bool {
	return id >= 0 && id < len(p.BlockCounts) && p.BlockCounts[id] >= threshold
}

// HottestSuccessor returns the successor of block id with the highest edge
// count among candidates, and that count. It returns -1 when no candidate
// has been observed.
func (p *Profile) HottestSuccessor(id int, candidates []int) (int, uint64) {
	best, bestCount := -1, uint64(0)
	for _, c := range candidates {
		if n := p.EdgeCounts[Edge{id, c}]; n > bestCount {
			best, bestCount = c, n
		}
	}
	return best, bestCount
}

// Interpreter executes a guest program one basic block at a time, updating
// the profile as it goes.
type Interpreter struct {
	Prog *guest.Program
	St   *guest.State
	Mem  *guest.Memory
	Prof *Profile

	// DynInsts counts guest instructions retired by the interpreter.
	DynInsts uint64

	// Insts, when non-nil, mirrors DynInsts into a telemetry counter.
	// Updated at block granularity so the per-instruction loop stays
	// counter-free.
	Insts *telemetry.Counter
}

// New returns an interpreter over prog with the given architectural state.
func New(prog *guest.Program, st *guest.State, mem *guest.Memory) *Interpreter {
	return &Interpreter{Prog: prog, St: st, Mem: mem, Prof: NewProfile(len(prog.Blocks))}
}

// HaltID is the pseudo block ID RunBlock returns when the guest halts.
const HaltID = -1

// RunBlock interprets block id to completion and returns the ID of the next
// block, or HaltID when the program halted. The block's entry and the
// outgoing edge are recorded in the profile.
func (it *Interpreter) RunBlock(id int) (int, error) {
	b := it.Prog.Block(id)
	if b == nil {
		return HaltID, fmt.Errorf("interp: no block %d", id)
	}
	it.Prof.BlockCounts[id]++
	next := id + 1 // fallthrough unless a control instruction says otherwise
	// Hot loop: index the instruction slice (no per-iteration Inst copy
	// from range) and batch the retired-instruction count into a local,
	// folding it into DynInsts at every exit.
	st, mem, insts := it.St, it.Mem, b.Insts
	retired := uint64(0)
	for i := range insts {
		ctl, err := guest.Exec(insts[i], st, mem)
		if err != nil {
			it.DynInsts += retired
			it.Insts.Add(int64(retired))
			return HaltID, fmt.Errorf("interp: B%d %s: %w", id, insts[i], err)
		}
		retired++
		switch ctl {
		case guest.CtlBranch:
			next = insts[i].Target
		case guest.CtlHalt:
			it.DynInsts += retired
			it.Insts.Add(int64(retired))
			return HaltID, nil
		}
	}
	it.DynInsts += retired
	it.Insts.Add(int64(retired))
	it.Prof.EdgeCounts[Edge{id, next}]++
	return next, nil
}

// Run interprets from the entry block until the guest halts or maxInsts
// guest instructions have retired. It reports whether the guest halted.
// Used for reference runs; the dynamic optimization system drives RunBlock
// itself so it can switch between interpretation and translated regions.
func (it *Interpreter) Run(entry int, maxInsts uint64) (halted bool, err error) {
	id := entry
	for id != HaltID {
		if it.DynInsts >= maxInsts {
			return false, nil
		}
		id, err = it.RunBlock(id)
		if err != nil {
			return false, err
		}
	}
	return true, nil
}
