// Package interp interprets guest programs and collects the execution
// profile the dynamic optimization system uses to find hot code.
//
// In the paper's framework (Figure 1) guest code "is first executed through
// interpretation" while the system "profiles the execution for hot basic
// blocks"; when a block's execution count crosses the hotness threshold the
// optimizer forms a superblock region along the hot path. The interpreter
// therefore counts block entries and control-flow edges (the edge counts
// steer region formation toward the most likely successor).
//
// Since interpretation is the floor under every warmup and every fallback
// from translated code, the package ships two engines over the same
// architectural state:
//
//   - the pre-decoded engine (the default): each block is decoded once into
//     a flat []decInst value-struct array — access sizes resolved, float
//     immediates pre-converted, common pairs fused — and executed by an
//     index-threaded loop that performs no allocation and touches no
//     interface or fmt machinery;
//   - the reference engine (Ref=true): the original per-instruction
//     guest.Exec switch, kept as the single source of truth for guest
//     semantics.
//
// TestInterpDecodedMatchesReference and FuzzInterpDecoded prove the two
// engines bit-identical (registers, memory, profile, retirement counts,
// errors).
package interp

import (
	"fmt"
	"math"

	"smarq/internal/telemetry"

	"smarq/internal/guest"
)

// noSucc marks an unused successor cell.
const noSucc = -1

// succCell is one observed successor edge of a block: the successor's block
// ID and the number of times the edge was taken.
type succCell struct {
	id int32
	n  uint64
}

// Profile accumulates execution counts during interpretation.
//
// Block IDs are dense small integers and a structurally valid program
// (guest.Program.Validate) gives every block at most two static successors —
// the fallthrough block and one branch target — so edges live in a dense
// per-block table of two successor cells rather than a map keyed by edge.
// Programs that put control flow mid-block (rejected by Validate) may merge
// counts of distinct mid-block targets into one cell; the valid-program
// contract is what the rest of the system relies on.
type Profile struct {
	BlockCounts []uint64 // indexed by block ID
	succs       [][2]succCell
}

// NewProfile returns an empty profile for a program with numBlocks blocks.
func NewProfile(numBlocks int) *Profile {
	p := &Profile{
		BlockCounts: make([]uint64, numBlocks),
		succs:       make([][2]succCell, numBlocks),
	}
	for i := range p.succs {
		p.succs[i][0].id = noSucc
		p.succs[i][1].id = noSucc
	}
	return p
}

// Reset rewinds the profile to its initial empty state without reallocating.
func (p *Profile) Reset() {
	for i := range p.BlockCounts {
		p.BlockCounts[i] = 0
	}
	for i := range p.succs {
		p.succs[i][0] = succCell{id: noSucc}
		p.succs[i][1] = succCell{id: noSucc}
	}
}

// Hot reports whether block id has reached the hotness threshold.
func (p *Profile) Hot(id int, threshold uint64) bool {
	return id >= 0 && id < len(p.BlockCounts) && p.BlockCounts[id] >= threshold
}

// EdgeCount returns the number of times the from→to control transfer was
// observed. Cells are searched (and summed) rather than indexed because the
// two engines may place the same successor in different cells.
func (p *Profile) EdgeCount(from, to int) uint64 {
	if from < 0 || from >= len(p.succs) {
		return 0
	}
	var n uint64
	for i := range p.succs[from] {
		if c := &p.succs[from][i]; int(c.id) == to {
			n += c.n
		}
	}
	return n
}

// AddEdges records n observations of the from→to edge, claiming a free
// successor cell if the edge is new. Tests and tools use it to seed
// profiles; the interpreter records edges directly.
func (p *Profile) AddEdges(from, to int, n uint64) {
	cells := &p.succs[from]
	for i := range cells {
		if int(cells[i].id) == to {
			cells[i].n += n
			return
		}
	}
	for i := range cells {
		if cells[i].id == noSucc {
			cells[i] = succCell{id: int32(to), n: n}
			return
		}
	}
	// Third distinct successor: only reachable for structurally invalid
	// programs. Merge into the taken-branch cell.
	cells[slotTaken].id = int32(to)
	cells[slotTaken].n += n
}

// HottestSuccessor returns the successor of block id with the highest edge
// count among candidates, and that count. It returns -1 when no candidate
// has been observed. Candidates are scanned in order and ties keep the
// earlier candidate, exactly like the original map-based profile, so region
// formation is unchanged.
func (p *Profile) HottestSuccessor(id int, candidates []int) (int, uint64) {
	best, bestCount := -1, uint64(0)
	for _, c := range candidates {
		if n := p.EdgeCount(id, c); n > bestCount {
			best, bestCount = c, n
		}
	}
	return best, bestCount
}

// Interpreter executes a guest program one basic block at a time, updating
// the profile as it goes.
type Interpreter struct {
	Prog *guest.Program
	St   *guest.State
	Mem  *guest.Memory
	Prof *Profile

	// DynInsts counts guest instructions retired by the interpreter.
	DynInsts uint64

	// Insts, when non-nil, mirrors DynInsts into a telemetry counter.
	// Updated at block granularity so the per-instruction loop stays
	// counter-free.
	Insts *telemetry.Counter

	// Ref routes RunBlock through the per-instruction guest.Exec reference
	// engine instead of the pre-decoded one. guest.Exec stays the single
	// source of truth for guest semantics; the differential tests compare
	// the decoded engine against this mode.
	Ref bool

	dec decProgram
}

// New returns an interpreter over prog with the given architectural state.
// The program is decoded once here; New is the only constructor.
func New(prog *guest.Program, st *guest.State, mem *guest.Memory) *Interpreter {
	return &Interpreter{
		Prog: prog,
		St:   st,
		Mem:  mem,
		Prof: NewProfile(len(prog.Blocks)),
		dec:  decodeProgram(prog),
	}
}

// Reset rewinds the profile and retirement count to a fresh interpreter
// without re-decoding the program. Architectural state (St, Mem) is owned
// by the caller and is not touched.
func (it *Interpreter) Reset() {
	it.DynInsts = 0
	it.Prof.Reset()
}

// HaltID is the pseudo block ID RunBlock returns when the guest halts.
const HaltID = -1

// RunBlock interprets block id to completion and returns the ID of the next
// block, or HaltID when the program halted. The block's entry and the
// outgoing edge are recorded in the profile.
func (it *Interpreter) RunBlock(id int) (int, error) {
	if it.Ref {
		return it.runBlockRef(id)
	}
	d := &it.dec
	if uint(id) >= uint(len(d.blocks)) {
		return HaltID, fmt.Errorf("interp: no block %d", id)
	}
	it.Prof.BlockCounts[id]++
	b := d.blocks[id]
	code := d.code[b.start:b.end:b.end]
	st := it.St
	r := &st.R
	f := &st.F
	data := it.Mem.Bytes()
	next := int(b.fall) // fallthrough unless a control instruction says otherwise
	slot := uint8(slotFall)
	retired := uint64(0)
	for i := 0; i < len(code); i++ {
		in := &code[i]
		switch in.op {
		case dNop:
		case dLi:
			r[in.rd&regMask] = in.imm
		case dMov:
			r[in.rd&regMask] = r[in.rs1&regMask]
		case dAdd:
			r[in.rd&regMask] = r[in.rs1&regMask] + r[in.rs2&regMask]
		case dSub:
			r[in.rd&regMask] = r[in.rs1&regMask] - r[in.rs2&regMask]
		case dMul:
			r[in.rd&regMask] = r[in.rs1&regMask] * r[in.rs2&regMask]
		case dDiv:
			if r[in.rs2&regMask] == 0 {
				r[in.rd&regMask] = 0
			} else {
				r[in.rd&regMask] = r[in.rs1&regMask] / r[in.rs2&regMask]
			}
		case dAnd:
			r[in.rd&regMask] = r[in.rs1&regMask] & r[in.rs2&regMask]
		case dOr:
			r[in.rd&regMask] = r[in.rs1&regMask] | r[in.rs2&regMask]
		case dXor:
			r[in.rd&regMask] = r[in.rs1&regMask] ^ r[in.rs2&regMask]
		case dShl:
			r[in.rd&regMask] = r[in.rs1&regMask] << (uint64(r[in.rs2&regMask]) & 63)
		case dShr:
			r[in.rd&regMask] = r[in.rs1&regMask] >> (uint64(r[in.rs2&regMask]) & 63)
		case dAddi:
			r[in.rd&regMask] = r[in.rs1&regMask] + in.imm
		case dMuli:
			r[in.rd&regMask] = r[in.rs1&regMask] * in.imm
		case dSlt:
			v := int64(0)
			if r[in.rs1&regMask] < r[in.rs2&regMask] {
				v = 1
			}
			r[in.rd&regMask] = v
		case dFLi:
			f[in.rd&regMask] = math.Float64frombits(uint64(in.imm))
		case dFMov:
			f[in.rd&regMask] = f[in.rs1&regMask]
		case dFAdd:
			f[in.rd&regMask] = f[in.rs1&regMask] + f[in.rs2&regMask]
		case dFSub:
			f[in.rd&regMask] = f[in.rs1&regMask] - f[in.rs2&regMask]
		case dFMul:
			f[in.rd&regMask] = f[in.rs1&regMask] * f[in.rs2&regMask]
		case dFDiv:
			f[in.rd&regMask] = f[in.rs1&regMask] / f[in.rs2&regMask]
		case dFNeg:
			f[in.rd&regMask] = -f[in.rs1&regMask]
		case dFAbs:
			f[in.rd&regMask] = math.Abs(f[in.rs1&regMask])
		case dFSqrt:
			f[in.rd&regMask] = math.Sqrt(f[in.rs1&regMask])
		case dCvtIF:
			f[in.rd&regMask] = float64(r[in.rs1&regMask])
		case dCvtFI:
			r[in.rd&regMask] = int64(f[in.rs1&regMask])
		case dLd1:
			v, ok := guest.MemLoad1(data, uint64(r[in.rs1&regMask]+in.imm))
			if !ok {
				return it.failBlock(id, in.gi, retired)
			}
			r[in.rd&regMask] = int64(v)
		case dLd2:
			v, ok := guest.MemLoad2(data, uint64(r[in.rs1&regMask]+in.imm))
			if !ok {
				return it.failBlock(id, in.gi, retired)
			}
			r[in.rd&regMask] = int64(v)
		case dLd4:
			v, ok := guest.MemLoad4(data, uint64(r[in.rs1&regMask]+in.imm))
			if !ok {
				return it.failBlock(id, in.gi, retired)
			}
			r[in.rd&regMask] = int64(v)
		case dLd8:
			v, ok := guest.MemLoad8(data, uint64(r[in.rs1&regMask]+in.imm))
			if !ok {
				return it.failBlock(id, in.gi, retired)
			}
			r[in.rd&regMask] = int64(v)
		case dSt1:
			if !guest.MemStore1(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
				return it.failBlock(id, in.gi, retired)
			}
		case dSt2:
			if !guest.MemStore2(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
				return it.failBlock(id, in.gi, retired)
			}
		case dSt4:
			if !guest.MemStore4(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
				return it.failBlock(id, in.gi, retired)
			}
		case dSt8:
			if !guest.MemStore8(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
				return it.failBlock(id, in.gi, retired)
			}
		case dFLd8:
			v, ok := guest.MemLoad8(data, uint64(r[in.rs1&regMask]+in.imm))
			if !ok {
				return it.failBlock(id, in.gi, retired)
			}
			f[in.rd&regMask] = math.Float64frombits(v)
		case dFSt8:
			if !guest.MemStore8(data, uint64(r[in.rs1&regMask]+in.imm), math.Float64bits(f[in.rd&regMask])) {
				return it.failBlock(id, in.gi, retired)
			}
		case dBeq:
			if r[in.rs1&regMask] == r[in.rs2&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dBne:
			if r[in.rs1&regMask] != r[in.rs2&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dBlt:
			if r[in.rs1&regMask] < r[in.rs2&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dBge:
			if r[in.rs1&regMask] >= r[in.rs2&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dJmp:
			next, slot = int(in.target), in.slot
		case dHalt:
			retired++
			it.DynInsts += retired
			it.Insts.Add(int64(retired))
			return HaltID, nil
		case dSltBeq:
			v := int64(0)
			if r[in.rs1&regMask] < r[in.rs2&regMask] {
				v = 1
			}
			r[in.rd&regMask] = v
			retired++
			if r[in.fd&regMask] == r[in.fs&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dSltBne:
			v := int64(0)
			if r[in.rs1&regMask] < r[in.rs2&regMask] {
				v = 1
			}
			r[in.rd&regMask] = v
			retired++
			if r[in.fd&regMask] != r[in.fs&regMask] {
				next, slot = int(in.target), in.slot
			}
		case dAddiLd1:
			a := r[in.rs1&regMask] + in.imm
			r[in.rd&regMask] = a
			v, ok := guest.MemLoad1(data, uint64(a+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+1)
			}
			r[in.fd&regMask] = int64(v)
			retired++
		case dAddiLd2:
			a := r[in.rs1&regMask] + in.imm
			r[in.rd&regMask] = a
			v, ok := guest.MemLoad2(data, uint64(a+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+1)
			}
			r[in.fd&regMask] = int64(v)
			retired++
		case dAddiLd4:
			a := r[in.rs1&regMask] + in.imm
			r[in.rd&regMask] = a
			v, ok := guest.MemLoad4(data, uint64(a+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+1)
			}
			r[in.fd&regMask] = int64(v)
			retired++
		case dAddiLd8:
			a := r[in.rs1&regMask] + in.imm
			r[in.rd&regMask] = a
			v, ok := guest.MemLoad8(data, uint64(a+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+1)
			}
			r[in.fd&regMask] = int64(v)
			retired++
		case dAddiFLd8:
			a := r[in.rs1&regMask] + in.imm
			r[in.rd&regMask] = a
			v, ok := guest.MemLoad8(data, uint64(a+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+1)
			}
			f[in.fd&regMask] = math.Float64frombits(v)
			retired++
		case dMuliAdd:
			t := r[in.rs1&regMask] * in.imm
			r[in.rd&regMask] = t
			r[in.fd&regMask] = r[in.rs2&regMask] + t
			retired++
		case dMuliAddLd8:
			t := r[in.rs1&regMask] * in.imm
			r[in.rd&regMask] = t
			s := r[in.rs2&regMask] + t
			r[in.fd&regMask] = s
			v, ok := guest.MemLoad8(data, uint64(s+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+2)
			}
			r[in.fs&regMask] = int64(v)
			retired += 2
		case dMuliAddFLd8:
			t := r[in.rs1&regMask] * in.imm
			r[in.rd&regMask] = t
			s := r[in.rs2&regMask] + t
			r[in.fd&regMask] = s
			v, ok := guest.MemLoad8(data, uint64(s+in.imm2))
			if !ok {
				return it.failBlock(id, in.gi, retired+2)
			}
			f[in.fs&regMask] = math.Float64frombits(v)
			retired += 2
		case dMuliAddSt8:
			t := r[in.rs1&regMask] * in.imm
			r[in.rd&regMask] = t
			s := r[in.rs2&regMask] + t
			r[in.fd&regMask] = s
			if !guest.MemStore8(data, uint64(s+in.imm2), uint64(r[in.fs&regMask])) {
				return it.failBlock(id, in.gi, retired+2)
			}
			retired += 2
		case dMuliAddFSt8:
			t := r[in.rs1&regMask] * in.imm
			r[in.rd&regMask] = t
			s := r[in.rs2&regMask] + t
			r[in.fd&regMask] = s
			if !guest.MemStore8(data, uint64(s+in.imm2), math.Float64bits(f[in.fs&regMask])) {
				return it.failBlock(id, in.gi, retired+2)
			}
			retired += 2
		default: // dBad
			return it.failBlock(id, in.gi, retired)
		}
		retired++
	}
	it.DynInsts += retired
	it.Insts.Add(int64(retired))
	c := &it.Prof.succs[id][slot]
	c.id = int32(next)
	c.n++
	return next, nil
}

// failBlock is the decoded engine's cold fault path: it folds the
// instructions retired before the faulting one into the counters and
// reproduces the reference interpreter's error for the original guest
// instruction at index gi. The faulting instruction has had no
// architectural effect, so re-running it through guest.Exec is
// side-effect-free and yields the identical error chain.
//
//go:noinline
func (it *Interpreter) failBlock(id int, gi int32, retired uint64) (int, error) {
	it.DynInsts += retired
	it.Insts.Add(int64(retired))
	in := it.Prog.Blocks[id].Insts[gi]
	if _, err := guest.Exec(in, it.St, it.Mem); err != nil {
		return HaltID, fmt.Errorf("interp: B%d %s: %w", id, in, err)
	}
	return HaltID, fmt.Errorf("interp: B%d %s: decoded fault not reproduced by reference", id, in)
}

// runBlockRef is the reference engine: one guest.Exec call per instruction.
func (it *Interpreter) runBlockRef(id int) (int, error) {
	b := it.Prog.Block(id)
	if b == nil {
		return HaltID, fmt.Errorf("interp: no block %d", id)
	}
	it.Prof.BlockCounts[id]++
	next := id + 1 // fallthrough unless a control instruction says otherwise
	st, mem, insts := it.St, it.Mem, b.Insts
	retired := uint64(0)
	for i := range insts {
		ctl, err := guest.Exec(insts[i], st, mem)
		if err != nil {
			it.DynInsts += retired
			it.Insts.Add(int64(retired))
			return HaltID, fmt.Errorf("interp: B%d %s: %w", id, insts[i], err)
		}
		retired++
		switch ctl {
		case guest.CtlBranch:
			next = insts[i].Target
		case guest.CtlHalt:
			it.DynInsts += retired
			it.Insts.Add(int64(retired))
			return HaltID, nil
		}
	}
	it.DynInsts += retired
	it.Insts.Add(int64(retired))
	it.Prof.AddEdges(id, next, 1)
	return next, nil
}

// Run interprets from the entry block until the guest halts or the
// instruction budget is exhausted. It reports whether the guest halted.
//
// The budget is a soft cap checked between blocks: a run may overshoot
// maxInsts by at most the size of the final block executed (blocks are the
// unit of retirement; clamping mid-block would make budget-capped profiles
// depend on where the cap fell inside a block). dynopt.System.Run documents
// the same contract at region granularity.
//
// Used for reference runs; the dynamic optimization system drives RunBlock
// itself so it can switch between interpretation and translated regions.
func (it *Interpreter) Run(entry int, maxInsts uint64) (halted bool, err error) {
	if !it.Ref {
		return it.runDecoded(entry, maxInsts)
	}
	id := entry
	for id != HaltID {
		if it.DynInsts >= maxInsts {
			return false, nil
		}
		id, err = it.RunBlock(id)
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

// runDecoded is Run fused with the decoded RunBlock: the architectural
// state, memory slice and retirement counter are hoisted into locals once
// and stay in registers across block boundaries, so short-block programs
// don't pay a call, slice construction and two counter flushes per block.
// Semantics are identical to the RunBlock-at-a-time loop above — same
// between-blocks budget contract, same profile writes, same errors — and
// the differential tests run both paths.
func (it *Interpreter) runDecoded(entry int, maxInsts uint64) (bool, error) {
	d := &it.dec
	st := it.St
	r := &st.R
	f := &st.F
	data := it.Mem.Bytes()
	prof := it.Prof
	start := it.DynInsts
	dyn := it.DynInsts
	id := entry
	for {
		if dyn >= maxInsts {
			it.DynInsts = dyn
			it.Insts.Add(int64(dyn - start))
			return false, nil
		}
		if uint(id) >= uint(len(d.blocks)) {
			it.DynInsts = dyn
			it.Insts.Add(int64(dyn - start))
			return false, fmt.Errorf("interp: no block %d", id)
		}
		prof.BlockCounts[id]++
		b := d.blocks[id]
		code := d.code[b.start:b.end:b.end]
		next := int(b.fall)
		slot := uint8(slotFall)
		for i := 0; i < len(code); i++ {
			in := &code[i]
			switch in.op {
			case dNop:
			case dLi:
				r[in.rd&regMask] = in.imm
			case dMov:
				r[in.rd&regMask] = r[in.rs1&regMask]
			case dAdd:
				r[in.rd&regMask] = r[in.rs1&regMask] + r[in.rs2&regMask]
			case dSub:
				r[in.rd&regMask] = r[in.rs1&regMask] - r[in.rs2&regMask]
			case dMul:
				r[in.rd&regMask] = r[in.rs1&regMask] * r[in.rs2&regMask]
			case dDiv:
				if r[in.rs2&regMask] == 0 {
					r[in.rd&regMask] = 0
				} else {
					r[in.rd&regMask] = r[in.rs1&regMask] / r[in.rs2&regMask]
				}
			case dAnd:
				r[in.rd&regMask] = r[in.rs1&regMask] & r[in.rs2&regMask]
			case dOr:
				r[in.rd&regMask] = r[in.rs1&regMask] | r[in.rs2&regMask]
			case dXor:
				r[in.rd&regMask] = r[in.rs1&regMask] ^ r[in.rs2&regMask]
			case dShl:
				r[in.rd&regMask] = r[in.rs1&regMask] << (uint64(r[in.rs2&regMask]) & 63)
			case dShr:
				r[in.rd&regMask] = r[in.rs1&regMask] >> (uint64(r[in.rs2&regMask]) & 63)
			case dAddi:
				r[in.rd&regMask] = r[in.rs1&regMask] + in.imm
			case dMuli:
				r[in.rd&regMask] = r[in.rs1&regMask] * in.imm
			case dSlt:
				v := int64(0)
				if r[in.rs1&regMask] < r[in.rs2&regMask] {
					v = 1
				}
				r[in.rd&regMask] = v
			case dFLi:
				f[in.rd&regMask] = math.Float64frombits(uint64(in.imm))
			case dFMov:
				f[in.rd&regMask] = f[in.rs1&regMask]
			case dFAdd:
				f[in.rd&regMask] = f[in.rs1&regMask] + f[in.rs2&regMask]
			case dFSub:
				f[in.rd&regMask] = f[in.rs1&regMask] - f[in.rs2&regMask]
			case dFMul:
				f[in.rd&regMask] = f[in.rs1&regMask] * f[in.rs2&regMask]
			case dFDiv:
				f[in.rd&regMask] = f[in.rs1&regMask] / f[in.rs2&regMask]
			case dFNeg:
				f[in.rd&regMask] = -f[in.rs1&regMask]
			case dFAbs:
				f[in.rd&regMask] = math.Abs(f[in.rs1&regMask])
			case dFSqrt:
				f[in.rd&regMask] = math.Sqrt(f[in.rs1&regMask])
			case dCvtIF:
				f[in.rd&regMask] = float64(r[in.rs1&regMask])
			case dCvtFI:
				r[in.rd&regMask] = int64(f[in.rs1&regMask])
			case dLd1:
				v, ok := guest.MemLoad1(data, uint64(r[in.rs1&regMask]+in.imm))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn)
				}
				r[in.rd&regMask] = int64(v)
			case dLd2:
				v, ok := guest.MemLoad2(data, uint64(r[in.rs1&regMask]+in.imm))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn)
				}
				r[in.rd&regMask] = int64(v)
			case dLd4:
				v, ok := guest.MemLoad4(data, uint64(r[in.rs1&regMask]+in.imm))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn)
				}
				r[in.rd&regMask] = int64(v)
			case dLd8:
				v, ok := guest.MemLoad8(data, uint64(r[in.rs1&regMask]+in.imm))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn)
				}
				r[in.rd&regMask] = int64(v)
			case dSt1:
				if !guest.MemStore1(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn)
				}
			case dSt2:
				if !guest.MemStore2(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn)
				}
			case dSt4:
				if !guest.MemStore4(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn)
				}
			case dSt8:
				if !guest.MemStore8(data, uint64(r[in.rs1&regMask]+in.imm), uint64(r[in.rd&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn)
				}
			case dFLd8:
				v, ok := guest.MemLoad8(data, uint64(r[in.rs1&regMask]+in.imm))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn)
				}
				f[in.rd&regMask] = math.Float64frombits(v)
			case dFSt8:
				if !guest.MemStore8(data, uint64(r[in.rs1&regMask]+in.imm), math.Float64bits(f[in.rd&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn)
				}
			case dBeq:
				if r[in.rs1&regMask] == r[in.rs2&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dBne:
				if r[in.rs1&regMask] != r[in.rs2&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dBlt:
				if r[in.rs1&regMask] < r[in.rs2&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dBge:
				if r[in.rs1&regMask] >= r[in.rs2&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dJmp:
				next, slot = int(in.target), in.slot
			case dHalt:
				dyn++
				it.DynInsts = dyn
				it.Insts.Add(int64(dyn - start))
				return true, nil
			case dSltBeq:
				v := int64(0)
				if r[in.rs1&regMask] < r[in.rs2&regMask] {
					v = 1
				}
				r[in.rd&regMask] = v
				dyn++
				if r[in.fd&regMask] == r[in.fs&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dSltBne:
				v := int64(0)
				if r[in.rs1&regMask] < r[in.rs2&regMask] {
					v = 1
				}
				r[in.rd&regMask] = v
				dyn++
				if r[in.fd&regMask] != r[in.fs&regMask] {
					next, slot = int(in.target), in.slot
				}
			case dAddiLd1:
				a := r[in.rs1&regMask] + in.imm
				r[in.rd&regMask] = a
				v, ok := guest.MemLoad1(data, uint64(a+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+1)
				}
				r[in.fd&regMask] = int64(v)
				dyn++
			case dAddiLd2:
				a := r[in.rs1&regMask] + in.imm
				r[in.rd&regMask] = a
				v, ok := guest.MemLoad2(data, uint64(a+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+1)
				}
				r[in.fd&regMask] = int64(v)
				dyn++
			case dAddiLd4:
				a := r[in.rs1&regMask] + in.imm
				r[in.rd&regMask] = a
				v, ok := guest.MemLoad4(data, uint64(a+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+1)
				}
				r[in.fd&regMask] = int64(v)
				dyn++
			case dAddiLd8:
				a := r[in.rs1&regMask] + in.imm
				r[in.rd&regMask] = a
				v, ok := guest.MemLoad8(data, uint64(a+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+1)
				}
				r[in.fd&regMask] = int64(v)
				dyn++
			case dAddiFLd8:
				a := r[in.rs1&regMask] + in.imm
				r[in.rd&regMask] = a
				v, ok := guest.MemLoad8(data, uint64(a+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+1)
				}
				f[in.fd&regMask] = math.Float64frombits(v)
				dyn++
			case dMuliAdd:
				t := r[in.rs1&regMask] * in.imm
				r[in.rd&regMask] = t
				r[in.fd&regMask] = r[in.rs2&regMask] + t
				dyn++
			case dMuliAddLd8:
				t := r[in.rs1&regMask] * in.imm
				r[in.rd&regMask] = t
				s := r[in.rs2&regMask] + t
				r[in.fd&regMask] = s
				v, ok := guest.MemLoad8(data, uint64(s+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+2)
				}
				r[in.fs&regMask] = int64(v)
				dyn += 2
			case dMuliAddFLd8:
				t := r[in.rs1&regMask] * in.imm
				r[in.rd&regMask] = t
				s := r[in.rs2&regMask] + t
				r[in.fd&regMask] = s
				v, ok := guest.MemLoad8(data, uint64(s+in.imm2))
				if !ok {
					return false, it.failRun(id, in.gi, start, dyn+2)
				}
				f[in.fs&regMask] = math.Float64frombits(v)
				dyn += 2
			case dMuliAddSt8:
				t := r[in.rs1&regMask] * in.imm
				r[in.rd&regMask] = t
				s := r[in.rs2&regMask] + t
				r[in.fd&regMask] = s
				if !guest.MemStore8(data, uint64(s+in.imm2), uint64(r[in.fs&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn+2)
				}
				dyn += 2
			case dMuliAddFSt8:
				t := r[in.rs1&regMask] * in.imm
				r[in.rd&regMask] = t
				s := r[in.rs2&regMask] + t
				r[in.fd&regMask] = s
				if !guest.MemStore8(data, uint64(s+in.imm2), math.Float64bits(f[in.fs&regMask])) {
					return false, it.failRun(id, in.gi, start, dyn+2)
				}
				dyn += 2
			default: // dBad
				return false, it.failRun(id, in.gi, start, dyn)
			}
			dyn++
		}
		c := &prof.succs[id][slot]
		c.id = int32(next)
		c.n++
		id = next
	}
}

// failRun is runDecoded's cold fault path: it flushes the retirement
// counters (dyn counts every instruction retired before the faulting one)
// and reproduces the reference error exactly like failBlock.
//
//go:noinline
func (it *Interpreter) failRun(id int, gi int32, start, dyn uint64) error {
	it.DynInsts = dyn
	it.Insts.Add(int64(dyn - start))
	in := it.Prog.Blocks[id].Insts[gi]
	if _, err := guest.Exec(in, it.St, it.Mem); err != nil {
		return fmt.Errorf("interp: B%d %s: %w", id, in, err)
	}
	return fmt.Errorf("interp: B%d %s: decoded fault not reproduced by reference", id, in)
}
