package interp

import (
	"testing"

	"smarq/internal/guest"
)

// countdownProgram builds: r1 = n; loop: [r2] += 1; r1 -= 1; if r1 != r0 goto loop; halt.
func countdownProgram(n int64) *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock() // B0: init
	b.Li(1, n)
	b.Li(2, 64) // base address
	loop := b.NewBlock()
	b.Ld8(3, 2, 0)
	b.Addi(3, 3, 1)
	b.St8(2, 0, 3)
	b.Addi(1, 1, -1)
	b.Bne(1, 0, loop)
	b.NewBlock()
	b.Halt()
	return b.MustProgram()
}

func TestRunCountdown(t *testing.T) {
	prog := countdownProgram(10)
	st := &guest.State{}
	mem := guest.NewMemory(256)
	it := New(prog, st, mem)
	halted, err := it.Run(0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !halted {
		t.Fatal("program did not halt")
	}
	v, _ := mem.Load(64, 8)
	if v != 10 {
		t.Errorf("counter = %d, want 10", v)
	}
	if st.R[1] != 0 {
		t.Errorf("r1 = %d, want 0", st.R[1])
	}
}

func TestProfileCounts(t *testing.T) {
	prog := countdownProgram(5)
	it := New(prog, &guest.State{}, guest.NewMemory(256))
	if _, err := it.Run(0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := it.Prof.BlockCounts[1]; got != 5 {
		t.Errorf("loop block count = %d, want 5", got)
	}
	if got := it.Prof.BlockCounts[0]; got != 1 {
		t.Errorf("entry block count = %d, want 1", got)
	}
	if got := it.Prof.EdgeCount(1, 1); got != 4 {
		t.Errorf("back edge count = %d, want 4", got)
	}
	if got := it.Prof.EdgeCount(1, 2); got != 1 {
		t.Errorf("exit edge count = %d, want 1", got)
	}
	if !it.Prof.Hot(1, 5) {
		t.Error("loop block not hot at threshold 5")
	}
	if it.Prof.Hot(0, 5) {
		t.Error("entry block hot at threshold 5")
	}
}

func TestHottestSuccessor(t *testing.T) {
	p := NewProfile(3)
	p.AddEdges(0, 1, 10)
	p.AddEdges(0, 2, 3)
	got, n := p.HottestSuccessor(0, []int{1, 2})
	if got != 1 || n != 10 {
		t.Errorf("HottestSuccessor = (%d,%d), want (1,10)", got, n)
	}
	got, _ = p.HottestSuccessor(2, []int{0})
	if got != -1 {
		t.Errorf("HottestSuccessor with no observations = %d, want -1", got)
	}
}

func TestRunBudget(t *testing.T) {
	prog := countdownProgram(1_000_000)
	it := New(prog, &guest.State{}, guest.NewMemory(256))
	halted, err := it.Run(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if halted {
		t.Error("halted despite budget")
	}
	if it.DynInsts < 100 || it.DynInsts > 110 {
		t.Errorf("DynInsts = %d, want ~100", it.DynInsts)
	}
}

func TestRunBlockErrors(t *testing.T) {
	prog := countdownProgram(1)
	it := New(prog, &guest.State{}, guest.NewMemory(256))
	if _, err := it.RunBlock(99); err == nil {
		t.Error("RunBlock(99) did not fail")
	}

	// A memory fault inside a block must surface as an error.
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1<<40)
	b.Ld8(2, 1, 0)
	b.Halt()
	bad := b.MustProgram()
	it2 := New(bad, &guest.State{}, guest.NewMemory(64))
	if _, err := it2.RunBlock(0); err == nil {
		t.Error("memory fault not propagated")
	}
}

func TestHaltID(t *testing.T) {
	prog := countdownProgram(1)
	it := New(prog, &guest.State{}, guest.NewMemory(256))
	next, err := it.RunBlock(2) // the halt block
	if err != nil {
		t.Fatal(err)
	}
	if next != HaltID {
		t.Errorf("halt block returned next=%d, want HaltID", next)
	}
}
