package ir

// Arena is a reusable slab allocator for translated regions. Translation
// carves the Region, its Ops, operand lists, SrcFloat flags and MemInfos
// out of one arena, so a compile performs a constant number of heap
// allocations regardless of region size — and with a recycled arena,
// none at all once the slabs have grown to steady state.
//
// Lifetime contract: every pointer handed out aliases arena memory and
// becomes invalid at the next Reset. Long-lived consumers (installed
// code, the compile memo) must Freeze what they keep before the arena is
// recycled.
type Arena struct {
	ops   []Op
	mems  []MemInfo
	vregs []VReg // slab backing every op's Srcs
	flags []bool // slab backing every op's SrcFloat
	ptrs  []*Op  // slab backing Region.Ops
	regs  []Region
}

// NewArena returns an empty arena; slabs grow on demand and are retained
// across Reset.
func NewArena() *Arena { return &Arena{} }

// Reset truncates every slab for reuse. Pointer-holding entries are
// cleared so recycled memory does not keep previously translated regions
// reachable.
func (a *Arena) Reset() {
	for i := range a.ops {
		a.ops[i] = Op{}
	}
	a.ops = a.ops[:0]
	a.mems = a.mems[:0]
	a.vregs = a.vregs[:0]
	a.flags = a.flags[:0]
	for i := range a.ptrs {
		a.ptrs[i] = nil
	}
	a.ptrs = a.ptrs[:0]
	for i := range a.regs {
		a.regs[i] = Region{}
	}
	a.regs = a.regs[:0]
}

// NewRegion carves a Region whose Ops slice has the given capacity.
// Exceeding the capacity is harmless — append simply leaves the slab —
// but defeats the batching, so callers pass an exact upper bound.
func (a *Arena) NewRegion(capOps int) *Region {
	a.regs = append(a.regs, Region{Ops: a.opPtrs(capOps)})
	return &a.regs[len(a.regs)-1]
}

// NewOp places o in the arena. Growth past the slab capacity keeps
// earlier pointers valid (they refer to the old backing array).
func (a *Arena) NewOp(o Op) *Op {
	a.ops = append(a.ops, o)
	return &a.ops[len(a.ops)-1]
}

// NewMem places m in the arena.
func (a *Arena) NewMem(m MemInfo) *MemInfo {
	a.mems = append(a.mems, m)
	return &a.mems[len(a.mems)-1]
}

// Srcs1, Srcs2, Flags1 and Flags2 carve capped operand lists out of the
// slabs; the three-index slice keeps a later append from clobbering a
// neighboring op's operands.

func (a *Arena) Srcs1(x VReg) []VReg {
	n := len(a.vregs)
	a.vregs = append(a.vregs, x)
	return a.vregs[n : n+1 : n+1]
}

func (a *Arena) Srcs2(x, y VReg) []VReg {
	n := len(a.vregs)
	a.vregs = append(a.vregs, x, y)
	return a.vregs[n : n+2 : n+2]
}

func (a *Arena) Flags1(x bool) []bool {
	n := len(a.flags)
	a.flags = append(a.flags, x)
	return a.flags[n : n+1 : n+1]
}

func (a *Arena) Flags2(x, y bool) []bool {
	n := len(a.flags)
	a.flags = append(a.flags, x, y)
	return a.flags[n : n+2 : n+2]
}

// opPtrs carves a zero-length op-pointer slice with the given capacity.
func (a *Arena) opPtrs(capacity int) []*Op {
	n := len(a.ptrs)
	if cap(a.ptrs)-n < capacity {
		grown := make([]*Op, n, 2*cap(a.ptrs)+capacity)
		copy(grown, a.ptrs)
		a.ptrs = grown
	}
	a.ptrs = a.ptrs[:n+capacity]
	return a.ptrs[n : n : n+capacity]
}

// Freeze deep-copies a scheduled sequence and its source region into
// compact, freshly allocated storage that shares nothing with any arena
// or scheduler scratch, preserving pointer identity: if seq[i] and
// reg.Ops[j] are the same op, the frozen copies are too. Installed code
// lives for the lifetime of the system (the compile memo retains it
// forever), so it must not alias recycled arena memory; once frozen,
// everything else from the compile can be reused.
//
// Freeze relies on op IDs being unique across reg.Ops and seq (original
// ops carry their region index, allocator-inserted Rotate/AMov pseudo-ops
// carry fresh IDs past it), which Region.Validate and the allocator
// enforce.
func Freeze(seq []*Op, reg *Region) ([]*Op, *Region) {
	maxID := -1
	for _, o := range reg.Ops {
		if o.ID > maxID {
			maxID = o.ID
		}
	}
	for _, o := range seq {
		if o.ID > maxID {
			maxID = o.ID
		}
	}

	// Collect unique ops in first-seen order and size the slabs exactly so
	// interior pointers into mems stay stable while filling.
	uniq := make([]*Op, 0, maxID+1)
	seen := make([]bool, maxID+1)
	nSrcs, nMems := 0, 0
	note := func(o *Op) {
		if seen[o.ID] {
			return
		}
		seen[o.ID] = true
		uniq = append(uniq, o)
		nSrcs += len(o.Srcs)
		if o.Mem != nil {
			nMems++
		}
	}
	for _, o := range reg.Ops {
		note(o)
	}
	for _, o := range seq {
		note(o)
	}

	ops := make([]Op, len(uniq))
	vregs := make([]VReg, nSrcs)
	flags := make([]bool, nSrcs)
	mems := make([]MemInfo, nMems)
	newOf := make([]*Op, maxID+1)
	vi, mi := 0, 0
	for i, o := range uniq {
		ops[i] = *o
		n := &ops[i]
		if k := len(o.Srcs); k > 0 {
			n.Srcs = vregs[vi : vi+k : vi+k]
			copy(n.Srcs, o.Srcs)
			n.SrcFloat = flags[vi : vi+k : vi+k]
			copy(n.SrcFloat, o.SrcFloat)
			vi += k
		} else {
			// Drop empty-but-capped slice headers: they would keep the
			// old backing (possibly an arena slab) reachable.
			n.Srcs = nil
			n.SrcFloat = nil
		}
		if o.Mem != nil {
			mems[mi] = *o.Mem
			n.Mem = &mems[mi]
			mi++
		}
		newOf[o.ID] = n
	}

	newSeq := make([]*Op, len(seq))
	for i, o := range seq {
		newSeq[i] = newOf[o.ID]
	}
	newReg := &Region{
		Ops:         make([]*Op, len(reg.Ops)),
		NumVRegs:    reg.NumVRegs,
		IntOut:      reg.IntOut,
		FloatOut:    reg.FloatOut,
		Entry:       reg.Entry,
		FinalTarget: reg.FinalTarget,
	}
	for i, o := range reg.Ops {
		newReg.Ops[i] = newOf[o.ID]
	}
	return newSeq, newReg
}
