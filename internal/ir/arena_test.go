package ir

import (
	"testing"

	"smarq/internal/guest"
)

// buildArenaRegion carves a small region with one op of each operand
// shape out of ar.
func buildArenaRegion(ar *Arena) *Region {
	reg := ar.NewRegion(4)
	emit := func(o Op) *Op {
		o.ID = len(reg.Ops)
		o.AROffset = -1
		p := ar.NewOp(o)
		reg.Ops = append(reg.Ops, p)
		return p
	}
	emit(Op{Kind: Arith, GOp: guest.Li, Dst: 10, Imm: 7})
	emit(Op{Kind: Load, GOp: guest.Ld8, Dst: 11, Srcs: ar.Srcs1(10), SrcFloat: ar.Flags1(false),
		Mem: ar.NewMem(MemInfo{Base: 10, Off: 8, Size: 8, Root: 10, RootOff: 8})})
	emit(Op{Kind: Store, GOp: guest.St8, Dst: NoVReg, Srcs: ar.Srcs2(11, 10), SrcFloat: ar.Flags2(false, false),
		Mem: ar.NewMem(MemInfo{Base: 10, Off: 16, Size: 8, Root: 10, RootOff: 16})})
	emit(Op{Kind: Arith, GOp: guest.Add, Dst: 12, Srcs: ar.Srcs2(11, 10), SrcFloat: ar.Flags2(false, false)})
	reg.NumVRegs = 13
	return reg
}

func TestArenaResetReuse(t *testing.T) {
	ar := NewArena()
	reg := buildArenaRegion(ar)
	if err := reg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ar.ops); got != 4 {
		t.Fatalf("ops slab holds %d ops, want 4", got)
	}
	ar.Reset()
	if len(ar.ops) != 0 || len(ar.mems) != 0 || len(ar.vregs) != 0 || len(ar.flags) != 0 || len(ar.ptrs) != 0 || len(ar.regs) != 0 {
		t.Fatalf("Reset left slabs non-empty: %+v", ar)
	}
	reg2 := buildArenaRegion(ar)
	if err := reg2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Steady state: a rebuilt identical region must reuse every slab.
	if cap(ar.ops) < 4 || &ar.ops[0] != reg2.Ops[0] {
		t.Fatal("rebuilt region did not reuse the ops slab")
	}
}

func TestFreezeIdentityAndIndependence(t *testing.T) {
	ar := NewArena()
	reg := buildArenaRegion(ar)
	// A scheduled sequence: region ops reordered plus an allocator pseudo-op.
	rot := ar.NewOp(Op{ID: len(reg.Ops), Kind: Rotate, Amount: 1, AROffset: -1})
	seq := []*Op{reg.Ops[0], reg.Ops[1], rot, reg.Ops[3], reg.Ops[2]}
	reg.Ops[1].AROffset = 2
	reg.Ops[1].P = true
	reg.Ops[2].C = true

	fseq, freg := Freeze(seq, reg)
	if err := freg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fseq) != len(seq) || len(freg.Ops) != len(reg.Ops) {
		t.Fatalf("frozen sizes %d/%d, want %d/%d", len(fseq), len(freg.Ops), len(seq), len(reg.Ops))
	}
	// Pointer identity between the frozen views mirrors the originals.
	if fseq[0] != freg.Ops[0] || fseq[4] != freg.Ops[2] {
		t.Fatal("frozen seq and region do not share op identity")
	}
	for i, o := range seq {
		f := fseq[i]
		if f == o {
			t.Fatalf("seq[%d]: frozen op aliases the original", i)
		}
		if f.ID != o.ID || f.Kind != o.Kind || f.AROffset != o.AROffset || f.P != o.P || f.C != o.C || f.Amount != o.Amount {
			t.Fatalf("seq[%d]: frozen op differs: %+v vs %+v", i, *f, *o)
		}
		if len(f.Srcs) != len(o.Srcs) {
			t.Fatalf("seq[%d]: %d srcs vs %d", i, len(f.Srcs), len(o.Srcs))
		}
		for j := range o.Srcs {
			if f.Srcs[j] != o.Srcs[j] || f.SrcFloat[j] != o.SrcFloat[j] {
				t.Fatalf("seq[%d]: operand %d differs", i, j)
			}
		}
		if (f.Mem == nil) != (o.Mem == nil) {
			t.Fatalf("seq[%d]: mem presence differs", i)
		}
		if o.Mem != nil {
			if f.Mem == o.Mem {
				t.Fatalf("seq[%d]: frozen MemInfo aliases the original", i)
			}
			if *f.Mem != *o.Mem {
				t.Fatalf("seq[%d]: MemInfo differs: %+v vs %+v", i, *f.Mem, *o.Mem)
			}
		}
	}

	// The frozen region must survive arena recycling untouched.
	want := fseq[1].Srcs[0]
	ar.Reset()
	for i := 0; i < 3; i++ {
		buildArenaRegion(ar)
		ar.Reset()
	}
	if fseq[1].Srcs[0] != want || fseq[1].Mem.Off != 8 {
		t.Fatal("frozen region was corrupted by arena reuse")
	}
}
