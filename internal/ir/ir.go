// Package ir defines the optimizer's intermediate representation.
//
// A translated superblock becomes a Region: a list of Ops in original
// program order, fully renamed into virtual registers (so only true data
// dependences remain), with memory operations carrying the address
// information the alias analysis and the SMARQ constraint analysis consume.
package ir

import (
	"fmt"

	"smarq/internal/guest"
)

// VReg is a virtual register. Translation renames every guest-register
// definition to a fresh VReg; integer and floating-point values share one
// numbering space (the Op records which file it reads and writes).
type VReg int32

// NoVReg marks an absent register operand.
const NoVReg VReg = -1

// Kind classifies an Op for scheduling and execution.
type Kind uint8

const (
	// Arith is any register-to-register computation, including constants
	// and conversions.
	Arith Kind = iota
	// Load reads guest memory.
	Load
	// Store writes guest memory.
	Store
	// Guard asserts a superblock's on-trace branch direction; a failed
	// guard aborts the atomic region.
	Guard
	// Copy moves one virtual register to another. Speculative load
	// elimination replaces the eliminated load with a Copy from the
	// forwarding source.
	Copy
	// Rotate advances the alias register queue BASE pointer. Inserted by
	// the alias register allocator (§3.2).
	Rotate
	// AMov moves or clears an alias register (§3.3). Inserted by the
	// allocator to break constraint cycles and prevent false positives.
	AMov
)

var kindNames = map[Kind]string{
	Arith: "arith", Load: "load", Store: "store", Guard: "guard",
	Copy: "copy", Rotate: "rotate", AMov: "amov",
}

// String returns the kind name.
func (k Kind) String() string { return kindNames[k] }

// MemInfo describes one memory access: the dynamic base register plus a
// static displacement, and the canonical form the alias analysis derived.
type MemInfo struct {
	// Base and Off give the effective address Base+Off at runtime.
	Base VReg
	Off  int64
	// Size is the access width in bytes.
	Size int

	// Canonical address: either Abs (address is RootOff exactly) or an
	// offset RootOff from the canonical root register Root. Two accesses
	// with the same Root (or both Abs) can be disambiguated exactly.
	Root    VReg
	RootOff int64
	Abs     bool
}

// Op is one IR operation.
type Op struct {
	// ID is the op's index in Region.Ops and its original program order.
	ID int
	// Kind drives scheduling and execution.
	Kind Kind
	// GOp is the guest opcode the op was translated from; it selects the
	// exact ALU/compare semantics. Rotate/AMov/Copy ops leave it as Nop.
	GOp guest.Opcode

	// Dst is the defined virtual register (NoVReg if none).
	Dst VReg
	// Srcs are the used virtual registers, in guest operand order. For
	// stores, Srcs[0] is the value and Srcs[1] the address base. For
	// guards, Srcs are the two compared registers.
	Srcs []VReg
	// DstFloat and SrcFloat record which register file each operand
	// belongs to (parallel to Dst/Srcs).
	DstFloat bool
	SrcFloat []bool

	Imm  int64
	FImm float64

	// Mem is set for Load and Store ops.
	Mem *MemInfo

	// Guard fields (Kind == Guard).
	OnTraceTaken bool
	OffTrace     int // guest block to resume at when the guard fails

	// Alias register annotations, filled in by the allocator.
	// AROffset is the alias register offset at execution (-1 if none);
	// P and C are the protection and check bits of §3.1. Under the
	// Efficeon-like bit-mask hardware AROffset names the register a P op
	// sets and ARMask selects the registers a C op checks (§2.2).
	AROffset int
	ARMask   uint16
	P, C     bool

	// Rotate amount (Kind == Rotate).
	Amount int
	// AMov source and destination offsets (Kind == AMov). SrcOff == DstOff
	// encodes the cleanup form that only clears the source register.
	SrcOff, DstOff int
}

// IsMem reports whether the op accesses memory.
func (o *Op) IsMem() bool { return o.Kind == Load || o.Kind == Store }

// String renders the op compactly for traces.
func (o *Op) String() string {
	switch o.Kind {
	case Load:
		return fmt.Sprintf("[%d] %s v%d = mem[v%d%+d]:%d", o.ID, o.GOp, o.Dst, o.Mem.Base, o.Mem.Off, o.Mem.Size)
	case Store:
		return fmt.Sprintf("[%d] %s mem[v%d%+d]:%d = v%d", o.ID, o.GOp, o.Mem.Base, o.Mem.Off, o.Mem.Size, o.Srcs[0])
	case Guard:
		dir := "fall"
		if o.OnTraceTaken {
			dir = "take"
		}
		return fmt.Sprintf("[%d] guard.%s %s v%d, v%d (off-trace B%d)", o.ID, dir, o.GOp, o.Srcs[0], o.Srcs[1], o.OffTrace)
	case Copy:
		return fmt.Sprintf("[%d] copy v%d = v%d", o.ID, o.Dst, o.Srcs[0])
	case Rotate:
		return fmt.Sprintf("[%d] rotate %d", o.ID, o.Amount)
	case AMov:
		if o.SrcOff == o.DstOff {
			return fmt.Sprintf("[%d] amov clear %d", o.ID, o.SrcOff)
		}
		return fmt.Sprintf("[%d] amov %d -> %d", o.ID, o.SrcOff, o.DstOff)
	default:
		if o.Dst == NoVReg {
			return fmt.Sprintf("[%d] %s %v", o.ID, o.GOp, o.Srcs)
		}
		return fmt.Sprintf("[%d] %s v%d = %v imm=%d", o.ID, o.GOp, o.Dst, o.Srcs, o.Imm)
	}
}

// Region is a translated superblock in IR form.
type Region struct {
	// Ops in original program order; Ops[i].ID == i.
	Ops []*Op
	// NumVRegs is the number of virtual registers in use; vregs
	// [0,2*guest.NumRegs) are the region's live-in guest registers
	// (integer file first, then float).
	NumVRegs int
	// IntOut and FloatOut map each guest register to the vreg holding its
	// value when the region completes; used at commit.
	IntOut   [guest.NumRegs]VReg
	FloatOut [guest.NumRegs]VReg
	// Entry is the guest block the region starts at; FinalTarget is where
	// control continues after a committed execution (interp.HaltID for a
	// halt).
	Entry       int
	FinalTarget int
}

// LiveInInt returns the vreg carrying guest integer register r at entry.
func LiveInInt(r guest.Reg) VReg { return VReg(r) }

// LiveInFloat returns the vreg carrying guest float register r at entry.
func LiveInFloat(r guest.Reg) VReg { return VReg(guest.NumRegs) + VReg(r) }

// MemOps returns the region's memory operations in program order.
func (r *Region) MemOps() []*Op {
	var out []*Op
	for _, o := range r.Ops {
		if o.IsMem() {
			out = append(out, o)
		}
	}
	return out
}

// String renders the region for traces.
func (r *Region) String() string {
	out := fmt.Sprintf("region: entry B%d, final B%d, %d vregs\n", r.Entry, r.FinalTarget, r.NumVRegs)
	for _, o := range r.Ops {
		out += "  " + o.String() + "\n"
	}
	return out
}

// Validate checks internal consistency: IDs match indices, operand counts
// fit the kind, and vregs are in range. The optimizer calls it between
// passes in tests.
func (r *Region) Validate() error {
	for i, o := range r.Ops {
		if o.ID != i {
			return fmt.Errorf("ir: op at index %d has ID %d", i, o.ID)
		}
		if len(o.Srcs) != len(o.SrcFloat) {
			return fmt.Errorf("ir: op %d: %d srcs but %d src-float flags", i, len(o.Srcs), len(o.SrcFloat))
		}
		for _, s := range o.Srcs {
			if s != NoVReg && (s < 0 || int(s) >= r.NumVRegs) {
				return fmt.Errorf("ir: op %d: source v%d out of range", i, s)
			}
		}
		if o.Dst != NoVReg && int(o.Dst) >= r.NumVRegs {
			return fmt.Errorf("ir: op %d: dst v%d out of range", i, o.Dst)
		}
		if o.IsMem() && o.Mem == nil {
			return fmt.Errorf("ir: op %d: memory op without MemInfo", i)
		}
		if o.IsMem() && o.Mem.Size == 0 {
			return fmt.Errorf("ir: op %d: memory op with zero size", i)
		}
		if o.Kind == Guard && len(o.Srcs) != 2 {
			return fmt.Errorf("ir: op %d: guard with %d operands", i, len(o.Srcs))
		}
	}
	return nil
}
