package ir

import (
	"strings"
	"testing"

	"smarq/internal/guest"
)

func validRegion() *Region {
	r := &Region{NumVRegs: 70, Entry: 0, FinalTarget: 1}
	r.Ops = []*Op{
		{ID: 0, Kind: Arith, GOp: guest.Addi, Dst: 64, Srcs: []VReg{0}, SrcFloat: []bool{false}, Imm: 4, AROffset: -1},
		{ID: 1, Kind: Load, GOp: guest.Ld8, Dst: 65, Srcs: []VReg{64}, SrcFloat: []bool{false},
			Mem: &MemInfo{Base: 64, Off: 0, Size: 8, Root: 0, RootOff: 4}, AROffset: -1},
		{ID: 2, Kind: Store, GOp: guest.St8, Dst: NoVReg, Srcs: []VReg{65, 64}, SrcFloat: []bool{false, false},
			Mem: &MemInfo{Base: 64, Off: 8, Size: 8, Root: 0, RootOff: 12}, AROffset: -1},
		{ID: 3, Kind: Guard, GOp: guest.Bne, Dst: NoVReg, Srcs: []VReg{65, 1}, SrcFloat: []bool{false, false},
			OnTraceTaken: true, OffTrace: 5, AROffset: -1},
	}
	return r
}

func TestValidateOK(t *testing.T) {
	if err := validRegion().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Region)
		want   string
	}{
		{"bad ID", func(r *Region) { r.Ops[1].ID = 7 }, "has ID"},
		{"srcfloat mismatch", func(r *Region) { r.Ops[0].SrcFloat = nil }, "src-float"},
		{"src out of range", func(r *Region) { r.Ops[0].Srcs[0] = 99 }, "out of range"},
		{"dst out of range", func(r *Region) { r.Ops[0].Dst = 1000 }, "out of range"},
		{"mem without info", func(r *Region) { r.Ops[1].Mem = nil }, "without MemInfo"},
		{"mem zero size", func(r *Region) { r.Ops[1].Mem.Size = 0 }, "zero size"},
		{"guard operands", func(r *Region) { r.Ops[3].Srcs = r.Ops[3].Srcs[:1]; r.Ops[3].SrcFloat = r.Ops[3].SrcFloat[:1] }, "guard with"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := validRegion()
			c.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("Validate passed, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestMemOps(t *testing.T) {
	r := validRegion()
	mem := r.MemOps()
	if len(mem) != 2 || mem[0].ID != 1 || mem[1].ID != 2 {
		t.Errorf("MemOps IDs = %v, want [1 2]", []int{mem[0].ID, mem[1].ID})
	}
}

func TestLiveInMapping(t *testing.T) {
	if LiveInInt(0) != 0 || LiveInInt(31) != 31 {
		t.Error("integer live-in vregs must be 0..31")
	}
	if LiveInFloat(0) != 32 || LiveInFloat(31) != 63 {
		t.Error("float live-in vregs must be 32..63")
	}
}

func TestOpStrings(t *testing.T) {
	r := validRegion()
	for _, o := range r.Ops {
		if o.String() == "" {
			t.Errorf("op %d: empty String()", o.ID)
		}
	}
	rot := &Op{ID: 9, Kind: Rotate, Amount: 2}
	if !strings.Contains(rot.String(), "rotate 2") {
		t.Errorf("rotate string = %q", rot.String())
	}
	am := &Op{ID: 10, Kind: AMov, SrcOff: 3, DstOff: 1}
	if !strings.Contains(am.String(), "3 -> 1") {
		t.Errorf("amov string = %q", am.String())
	}
	clr := &Op{ID: 11, Kind: AMov, SrcOff: 2, DstOff: 2}
	if !strings.Contains(clr.String(), "clear") {
		t.Errorf("amov clear string = %q", clr.String())
	}
	cp := &Op{ID: 12, Kind: Copy, Dst: 5, Srcs: []VReg{6}}
	if !strings.Contains(cp.String(), "copy") {
		t.Errorf("copy string = %q", cp.String())
	}
	if s := r.String(); !strings.Contains(s, "region:") {
		t.Errorf("region string = %q", s)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Arith: "arith", Load: "load", Store: "store",
		Guard: "guard", Copy: "copy", Rotate: "rotate", AMov: "amov"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
