// Package obs is the fleet observability plane's live surface: one HTTP
// server exposing Prometheus metrics, per-tenant health, shared-cache
// occupancy and pprof over a shutdownable listener. It is deliberately
// read-only — every endpoint renders a snapshot of state owned elsewhere
// (tenant registries, the shared codecache) and never mutates it, so a
// scrape can race a running fleet safely.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition (fleet registry plus every
//	                tenant registry with tenant/bench labels); ?format=json
//	                selects the JSON snapshot of the fleet registry
//	/healthz        per-tenant health-controller levels as JSON; 503 once
//	                any tenant has degraded to compile-off or worse
//	/debug/cache    shared codecache stats: totals, derived rates, and
//	                per-shard occupancy
//	/debug/tenants  per-tenant progress and stats snapshots
//	/debug/pprof/   the standard runtime profiles
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"smarq/internal/codecache"
	"smarq/internal/health"
	"smarq/internal/telemetry"
)

// TenantView is one tenant's scrape-time snapshot. Metrics points at the
// tenant's live registry (instrument reads are atomic); Stats is only set
// once the tenant is Done, because dynopt.Stats is written lock-free by
// the tenant goroutine while it runs.
type TenantView struct {
	ID      int
	Bench   string
	Done    bool
	Metrics *telemetry.Registry
	Stats   interface{}
}

// Options wires a Server to the state it exposes. Every field is
// optional; nil hooks render as absent sections rather than errors.
type Options struct {
	// Fleet is the fleet-global registry (codecache instruments, harness
	// counters). Served unlabeled on /metrics.
	Fleet *telemetry.Registry
	// Tenants returns the current tenant snapshots.
	Tenants func() []TenantView
	// Cache returns the shared compile cache's current stats.
	Cache func() codecache.Stats
	// Refresh, when set, runs before each /metrics render — the fleet
	// uses it to delta-sync codecache counters into Fleet so scrapes see
	// live values instead of the end-of-run publish.
	Refresh func()
}

// Server is the ops HTTP server. Construct with NewServer, bind with
// Start (addr ":0" works for tests), and stop with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu   sync.Mutex
	ln   net.Listener
	srv  *http.Server
	addr string
}

// NewServer builds the server and its routes without binding a socket.
func NewServer(opts Options) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/debug/cache", s.handleCache)
	s.mux.HandleFunc("/debug/tenants", s.handleTenants)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the route mux (tests drive it without a socket).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in the background. The bind itself is
// synchronous — a bad address fails here, not in a goroutine's log line —
// and binding port 0 resolves to a real port readable via Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.addr = ln.Addr().String()
	s.srv = &http.Server{Handler: s.mux}
	srv := s.srv
	s.mu.Unlock()
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere to go but the next Shutdown call (stored errors are not
		// worth a channel for a read-only debug surface).
		_ = srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Shutdown gracefully stops the server, waiting for in-flight scrapes up
// to the context deadline. Safe to call without Start (no-op).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "smarq observability plane\n\n"+
		"/metrics        Prometheus exposition (?format=json for the JSON snapshot)\n"+
		"/healthz        per-tenant health levels\n"+
		"/debug/cache    shared code cache occupancy and rates\n"+
		"/debug/tenants  per-tenant stats snapshots\n"+
		"/debug/pprof/   runtime profiles\n")
}

// handleMetrics renders the fleet registry unlabeled followed by every
// tenant registry scoped with tenant/bench labels, all in one exposition
// page. The per-registry encodings are deterministic; tenant order is
// the stable fleet order.
func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if s.opts.Refresh != nil {
		s.opts.Refresh()
	}
	if req.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.opts.Fleet.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	_ = s.opts.Fleet.WritePrometheus(w)
	for _, tv := range s.tenants() {
		_ = tv.Metrics.WritePrometheus(w,
			telemetry.Label{Name: "tenant", Value: strconv.Itoa(tv.ID)},
			telemetry.Label{Name: "bench", Value: tv.Bench})
	}
}

func (s *Server) tenants() []TenantView {
	if s.opts.Tenants == nil {
		return nil
	}
	return s.opts.Tenants()
}

// tenantHealth reads a tenant's current health level off its registry
// without registering anything: absent gauge (controller off, or metrics
// off) reads as normal.
func tenantHealth(tv *TenantView) health.Level {
	if g := tv.Metrics.LookupGauge("health_level"); g != nil {
		return health.Level(g.Value())
	}
	return health.Normal
}

// handleHealthz reports every tenant's degradation level. The HTTP
// status degrades with the fleet: 200 while every tenant still compiles,
// 503 once any tenant reaches compile-off or quarantine, so the endpoint
// doubles as a load-balancer check.
func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	type tenantHealthJSON struct {
		Tenant int    `json:"tenant"`
		Bench  string `json:"bench"`
		Level  string `json:"level"`
		Done   bool   `json:"done"`
	}
	views := s.tenants()
	out := struct {
		Status  string             `json:"status"`
		Tenants []tenantHealthJSON `json:"tenants,omitempty"`
	}{Status: "ok", Tenants: make([]tenantHealthJSON, 0, len(views))}
	code := http.StatusOK
	for i := range views {
		tv := &views[i]
		lvl := tenantHealth(tv)
		if lvl >= health.CompileOff {
			out.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
		out.Tenants = append(out.Tenants, tenantHealthJSON{
			Tenant: tv.ID, Bench: tv.Bench, Level: lvl.String(), Done: tv.Done,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}

// handleCache renders the shared cache snapshot with derived rates: hit
// rate and dedupe rate over lookups, eviction pressure over compiles.
func (s *Server) handleCache(w http.ResponseWriter, req *http.Request) {
	var st codecache.Stats
	if s.opts.Cache != nil {
		st = s.opts.Cache()
	}
	rate := func(n, d int64) float64 {
		if d == 0 {
			return 0
		}
		return float64(n) / float64(d)
	}
	out := struct {
		codecache.Stats
		HitRate    float64 `json:"hit_rate"`
		DedupeRate float64 `json:"dedupe_rate"`
		EvictRate  float64 `json:"evict_rate"`
	}{
		Stats:      st,
		HitRate:    rate(st.Hits, st.Lookups),
		DedupeRate: rate(st.Hits+st.FlightWaits, st.Lookups),
		EvictRate:  rate(st.Evictions, st.Compiles),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}

// handleTenants renders per-tenant progress. Stats is only present once
// a tenant has finished — while it runs, its Stats struct is being
// written without synchronization by the tenant goroutine.
func (s *Server) handleTenants(w http.ResponseWriter, req *http.Request) {
	type tenantJSON struct {
		Tenant int         `json:"tenant"`
		Bench  string      `json:"bench"`
		Done   bool        `json:"done"`
		Health string      `json:"health"`
		Stats  interface{} `json:"stats,omitempty"`
	}
	views := s.tenants()
	out := make([]tenantJSON, 0, len(views))
	for i := range views {
		tv := &views[i]
		tj := tenantJSON{
			Tenant: tv.ID, Bench: tv.Bench, Done: tv.Done,
			Health: tenantHealth(tv).String(),
		}
		if tv.Done {
			tj.Stats = tv.Stats
		}
		out = append(out, tj)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
