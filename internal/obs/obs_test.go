package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smarq/internal/codecache"
	"smarq/internal/health"
	"smarq/internal/telemetry"
)

// testServer wires a server over two tenants: tenant 0 running normally,
// tenant 1 done and degraded to the given health level.
func testServer(t1Level health.Level) (*Server, *telemetry.Registry) {
	fleet := telemetry.NewRegistry()
	fleet.Counter("codecache_lookups").Add(10)

	t0 := telemetry.NewRegistry()
	t0.Counter("dynopt_commits").Add(5)
	t1 := telemetry.NewRegistry()
	t1.Counter("dynopt_commits").Add(7)
	t1.Gauge("health_level").Set(int64(t1Level))

	views := []TenantView{
		{ID: 0, Bench: "swim", Metrics: t0},
		{ID: 1, Bench: "equake", Done: true, Metrics: t1,
			Stats: map[string]int64{"Commits": 7}},
	}
	return NewServer(Options{
		Fleet:   fleet,
		Tenants: func() []TenantView { return views },
		Cache: func() codecache.Stats {
			return codecache.Stats{
				Entries: 3, Lookups: 10, Hits: 6, Misses: 4,
				FlightWaits: 1, Compiles: 3, Evictions: 1,
				ShardEntries: []int{2, 1},
			}
		},
	}), fleet
}

func get(t *testing.T, h http.Handler, target string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec, rec.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := testServer(health.Normal)
	rec, body := get(t, s.Handler(), "/metrics")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != telemetry.PrometheusContentType {
		t.Fatalf("code=%d content-type=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	for _, want := range []string{
		"codecache_lookups 10",                      // fleet registry, unlabeled
		`dynopt_commits{bench="swim",tenant="0"} 5`, // tenant scope labels
		`dynopt_commits{bench="equake",tenant="1"} 7`,
		`health_level{bench="equake",tenant="1"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The JSON variant serves the fleet registry snapshot.
	rec, body = get(t, s.Handler(), "/metrics?format=json")
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") ||
		!strings.Contains(body, `"codecache_lookups": 10`) {
		t.Errorf("/metrics?format=json: %s %s", rec.Header().Get("Content-Type"), body)
	}
}

func TestMetricsRefreshHook(t *testing.T) {
	calls := 0
	s := NewServer(Options{
		Fleet:   telemetry.NewRegistry(),
		Refresh: func() { calls++ },
	})
	get(t, s.Handler(), "/metrics")
	get(t, s.Handler(), "/metrics")
	if calls != 2 {
		t.Errorf("refresh hook ran %d times over 2 scrapes", calls)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	s, _ := testServer(health.NoSpeculation)
	rec, body := get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy fleet returned %d:\n%s", rec.Code, body)
	}
	var out struct {
		Status  string `json:"status"`
		Tenants []struct {
			Tenant int    `json:"tenant"`
			Level  string `json:"level"`
			Done   bool   `json:"done"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if out.Status != "ok" || len(out.Tenants) != 2 ||
		out.Tenants[0].Level != "normal" || out.Tenants[1].Level != "no-speculation" {
		t.Errorf("healthz payload: %+v", out)
	}

	// A tenant at compile-off or beyond degrades the endpoint to 503.
	s, _ = testServer(health.CompileOff)
	rec, body = get(t, s.Handler(), "/healthz")
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Errorf("degraded fleet: code=%d body=%s", rec.Code, body)
	}
}

func TestCacheEndpoint(t *testing.T) {
	s, _ := testServer(health.Normal)
	rec, body := get(t, s.Handler(), "/debug/cache")
	if rec.Code != http.StatusOK {
		t.Fatalf("code=%d", rec.Code)
	}
	var out struct {
		Entries      int64   `json:"Entries"`
		ShardEntries []int   `json:"ShardEntries"`
		HitRate      float64 `json:"hit_rate"`
		DedupeRate   float64 `json:"dedupe_rate"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("cache debug is not JSON: %v\n%s", err, body)
	}
	if out.Entries != 3 || len(out.ShardEntries) != 2 {
		t.Errorf("cache stats: %+v", out)
	}
	if out.HitRate != 0.6 || out.DedupeRate != 0.7 {
		t.Errorf("derived rates: hit=%v dedupe=%v, want 0.6/0.7", out.HitRate, out.DedupeRate)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	s, _ := testServer(health.Normal)
	_, body := get(t, s.Handler(), "/debug/tenants")
	var out []struct {
		Tenant int                    `json:"tenant"`
		Bench  string                 `json:"bench"`
		Done   bool                   `json:"done"`
		Stats  map[string]interface{} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("tenants debug is not JSON: %v\n%s", err, body)
	}
	if len(out) != 2 {
		t.Fatalf("got %d tenants, want 2", len(out))
	}
	// Running tenants expose no stats (the struct is being written by the
	// tenant goroutine); finished tenants do.
	if out[0].Done || out[0].Stats != nil {
		t.Errorf("running tenant leaked stats: %+v", out[0])
	}
	if !out[1].Done || out[1].Stats["Commits"] != float64(7) {
		t.Errorf("finished tenant: %+v", out[1])
	}
}

func TestEmptyOptions(t *testing.T) {
	// A server with no hooks must serve every endpoint without panicking.
	s := NewServer(Options{})
	for _, target := range []string{"/", "/metrics", "/healthz", "/debug/cache", "/debug/tenants"} {
		rec, _ := get(t, s.Handler(), target)
		if rec.Code >= 500 {
			t.Errorf("%s returned %d on an empty server", target, rec.Code)
		}
	}
}

// TestStartShutdown binds port 0, scrapes over a real socket, and shuts
// down — the lifecycle smarq-run -listen and RunFleet depend on.
func TestStartShutdown(t *testing.T) {
	s, _ := testServer(health.Normal)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := s.Addr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Addr after port-0 bind: %q", addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "codecache_lookups 10") {
		t.Errorf("live scrape missing fleet series:\n%s", body)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Error("server still serving after Shutdown")
	}
	// Shutdown without Start is a no-op.
	if err := NewServer(Options{}).Shutdown(context.Background()); err != nil {
		t.Errorf("Shutdown before Start: %v", err)
	}
}

func TestPprofEndpoint(t *testing.T) {
	s, _ := testServer(health.Normal)
	rec, body := get(t, s.Handler(), "/debug/pprof/")
	if rec.Code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: code=%d", rec.Code)
	}
}
