// Package opt implements the speculative memory optimizations of §4:
// load elimination (forwarding from an earlier must-alias access) and
// store elimination (removing a store overwritten by a later must-alias
// store). Both are *speculative* when the optimizer tolerates intervening
// may-alias accesses and relies on the alias hardware — via the extended
// dependences of §4.1 — to detect miscompilation at runtime; in
// non-speculative mode (no alias hardware) only provably safe eliminations
// are performed.
//
// Pass order matters and is load-bearing (see DESIGN.md): store elimination
// runs first, so load elimination never forwards from a store that was
// removed; eliminated intervening loads are handled by redirecting
// [EXTENDED-DEPENDENCE 2] edges to their forwarding sources
// (deps.AddExtendedStoreElim).
package opt

import (
	"sync"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// Config selects which eliminations run and whether they may speculate.
type Config struct {
	LoadElim  bool
	StoreElim bool
	// Speculative permits intervening may-alias accesses, to be checked by
	// the alias hardware. Without alias hardware it must be false.
	Speculative bool
}

// ElimKind distinguishes the two eliminations.
type ElimKind uint8

const (
	// LoadElim: Z (a load) was removed, its value forwarded from X.
	LoadElim ElimKind = iota
	// StoreElim: X (a store) was removed, overwritten by Z.
	StoreElim
)

// Elim records one elimination for extended-dependence construction.
type Elim struct {
	Kind ElimKind
	X, Z int
}

// Result reports what the passes did.
type Result struct {
	Elims []Elim
	// LoadElimSource maps each eliminated load to its forwarding source.
	LoadElimSource map[int]int
	LoadsRemoved   int
	StoresRemoved  int
	// eliminated is scratch for runStoreElim, indexed by op ID.
	eliminated []bool
}

var resultPool = sync.Pool{New: func() interface{} {
	return &Result{LoadElimSource: make(map[int]int)}
}}

// Run applies the configured eliminations to reg in place. The alias table
// must have been built from the region *before* this call (it keeps the
// original access info for ops that get eliminated). The result comes from
// an internal pool; hot-path callers hand it back with Release.
func Run(reg *ir.Region, tbl *alias.Table, cfg Config) *Result {
	res := resultPool.Get().(*Result)
	res.Elims = res.Elims[:0]
	clear(res.LoadElimSource)
	res.LoadsRemoved, res.StoresRemoved = 0, 0
	if cap(res.eliminated) < len(reg.Ops) {
		res.eliminated = make([]bool, len(reg.Ops))
	} else {
		res.eliminated = res.eliminated[:len(reg.Ops)]
		for i := range res.eliminated {
			res.eliminated[i] = false
		}
	}
	if cfg.StoreElim {
		runStoreElim(reg, tbl, cfg, res)
	}
	if cfg.LoadElim {
		runLoadElim(reg, tbl, cfg, res)
	}
	return res
}

// Release returns the result to the pool. The caller must not use it
// afterwards.
func (r *Result) Release() {
	if r != nil {
		resultPool.Put(r)
	}
}

// AddExtendedDeps inserts the extended dependences for every elimination
// (to be called after base dependences are computed).
func AddExtendedDeps(s *deps.Set, reg *ir.Region, tbl *alias.Table, res *Result) {
	for _, e := range res.Elims {
		switch e.Kind {
		case LoadElim:
			deps.AddExtendedLoadElim(s, reg, tbl, e.X, e.Z)
		case StoreElim:
			deps.AddExtendedStoreElim(s, reg, tbl, e.X, e.Z, res.LoadElimSource)
		}
	}
}

// runStoreElim removes stores overwritten by a later must-alias store. The
// scan runs backward so a store can only be eliminated against a surviving
// overwriter. An intervening load with a *definite* overlap forbids the
// elimination outright; a may-alias load is tolerated only speculatively.
func runStoreElim(reg *ir.Region, tbl *alias.Table, cfg Config, res *Result) {
	ops := reg.Ops
	eliminated := res.eliminated
	for x := len(ops) - 1; x >= 0; x-- {
		if ops[x].Kind != ir.Store {
			continue
		}
	scan:
		for z := x + 1; z < len(ops); z++ {
			o := ops[z]
			if !o.IsMem() {
				continue
			}
			rel := tbl.Rel(x, z)
			switch {
			case o.Kind == ir.Load:
				if rel.Definite() {
					break scan // the load certainly reads x's value
				}
				if rel == alias.MayAlias && !cfg.Speculative {
					break scan
				}
			case o.Kind == ir.Store:
				if rel == alias.MustAlias && !eliminated[z] {
					// z fully overwrites x: eliminate x.
					res.Elims = append(res.Elims, Elim{Kind: StoreElim, X: x, Z: z})
					res.StoresRemoved++
					eliminated[x] = true
					killOp(ops[x])
					break scan
				}
				// Partial or may-alias stores never block store
				// elimination (§4.1): their aliasing cannot change the
				// final memory state once z overwrites x's whole range.
			}
		}
	}
}

// runLoadElim forwards loads from the closest earlier must-alias access.
// Integer store-to-load forwarding is restricted to full-width (8-byte)
// accesses: a narrower store truncates and a narrower load zero-extends,
// so the register value is not the loaded value.
func runLoadElim(reg *ir.Region, tbl *alias.Table, cfg Config, res *Result) {
	ops := reg.Ops
	for z := 0; z < len(ops); z++ {
		o := ops[z]
		if o.Kind != ir.Load {
			continue
		}
	scan:
		for x := z - 1; x >= 0; x-- {
			src := ops[x]
			if !src.IsMem() {
				continue
			}
			rel := tbl.Rel(x, z)
			switch {
			case rel == alias.MustAlias:
				var val ir.VReg
				var valFloat bool
				if src.Kind == ir.Load {
					val, valFloat = src.Dst, src.DstFloat
				} else {
					val, valFloat = src.Srcs[0], src.SrcFloat[0]
					if o.Mem.Size != 8 {
						break scan // narrow store-to-load: bit patterns differ
					}
				}
				if valFloat != o.DstFloat {
					break scan // crossing register files needs a bit cast
				}
				res.Elims = append(res.Elims, Elim{Kind: LoadElim, X: x, Z: z})
				res.LoadElimSource[z] = x
				res.LoadsRemoved++
				toCopy(o, val, valFloat)
				break scan
			case src.Kind == ir.Store && rel == alias.PartialAlias:
				break scan // definite partial clobber: no forwarding past it
			case src.Kind == ir.Store && rel == alias.MayAlias && !cfg.Speculative:
				break scan
			}
		}
	}
}

// killOp turns an eliminated store into a no-op placeholder, keeping op IDs
// dense and stable across re-optimization.
func killOp(o *ir.Op) {
	o.Kind = ir.Arith
	o.GOp = guest.Nop
	o.Dst = ir.NoVReg
	o.Srcs = nil
	o.SrcFloat = nil
	o.Mem = nil
}

// toCopy turns an eliminated load into a register copy from the forwarded
// value.
func toCopy(o *ir.Op, val ir.VReg, valFloat bool) {
	o.Kind = ir.Copy
	o.GOp = guest.Nop
	o.Srcs = []ir.VReg{val}
	o.SrcFloat = []bool{valFloat}
	o.Mem = nil
}
