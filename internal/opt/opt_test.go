package opt

import (
	"testing"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
)

// spec describes one op for the test region builder.
type spec struct {
	kind  ir.Kind
	root  ir.VReg
	off   int64
	size  int
	float bool
}

func buildRegion(specs []spec) *ir.Region {
	r := &ir.Region{NumVRegs: 256}
	next := ir.VReg(100)
	for i, s := range specs {
		o := &ir.Op{ID: i, Dst: ir.NoVReg, AROffset: -1}
		switch s.kind {
		case ir.Load:
			o.Kind = ir.Load
			o.GOp = guest.Ld8
			if s.float {
				o.GOp = guest.FLd8
			}
			o.Dst = next
			next++
			o.DstFloat = s.float
			o.Srcs = []ir.VReg{ir.VReg(s.root)}
			o.SrcFloat = []bool{false}
			o.Mem = &ir.MemInfo{Base: s.root, Off: s.off, Size: s.size, Root: s.root, RootOff: s.off}
		case ir.Store:
			o.Kind = ir.Store
			o.GOp = guest.St8
			if s.float {
				o.GOp = guest.FSt8
			}
			val := next
			next++
			o.Srcs = []ir.VReg{val, ir.VReg(s.root)}
			o.SrcFloat = []bool{s.float, false}
			o.Mem = &ir.MemInfo{Base: s.root, Off: s.off, Size: s.size, Root: s.root, RootOff: s.off}
		default:
			o.Kind = ir.Arith
		}
		r.Ops = append(r.Ops, o)
	}
	return r
}

func TestLoadElimFromStore(t *testing.T) {
	// st [v1+0]; ld [v1+0] -> copy from the stored value.
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Load, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	storedVal := reg.Ops[0].Srcs[0]
	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 1 {
		t.Fatalf("loads removed = %d, want 1", res.LoadsRemoved)
	}
	cp := reg.Ops[1]
	if cp.Kind != ir.Copy || cp.Srcs[0] != storedVal {
		t.Errorf("eliminated load = %v, want copy from v%d", cp, storedVal)
	}
	if res.LoadElimSource[1] != 0 {
		t.Errorf("source map = %v, want {1:0}", res.LoadElimSource)
	}
}

func TestLoadElimFromLoad(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Load, 1, 8, 8, false},
		{ir.Load, 1, 8, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	first := reg.Ops[0].Dst
	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 1 {
		t.Fatalf("loads removed = %d, want 1", res.LoadsRemoved)
	}
	if reg.Ops[1].Srcs[0] != first {
		t.Error("second load not forwarded from the first")
	}
}

func TestLoadElimBlockedByDefiniteStore(t *testing.T) {
	// st [v1]; st [v1+4] partial-alias with the 8-byte slot? Use a
	// definite clobber: ld [v1]; st [v1] (must); ld [v1] — the second load
	// must forward from the STORE, not the first load.
	reg := buildRegion([]spec{
		{ir.Load, 1, 0, 8, false},
		{ir.Store, 1, 0, 8, false},
		{ir.Load, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 1 {
		t.Fatalf("loads removed = %d, want 1", res.LoadsRemoved)
	}
	if res.LoadElimSource[2] != 1 {
		t.Errorf("load 2 forwarded from %d, want the intervening store 1", res.LoadElimSource[2])
	}
}

func TestLoadElimSpeculatesPastMayAliasStore(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Load, 1, 0, 8, false},
		{ir.Store, 2, 0, 8, false}, // may alias
		{ir.Load, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)

	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 1 || res.LoadElimSource[2] != 0 {
		t.Errorf("speculative elimination failed: %+v", res)
	}

	// Non-speculative: the may-alias store blocks it.
	reg2 := buildRegion([]spec{
		{ir.Load, 1, 0, 8, false},
		{ir.Store, 2, 0, 8, false},
		{ir.Load, 1, 0, 8, false},
	})
	tbl2 := alias.BuildTable(reg2, nil)
	res2 := Run(reg2, tbl2, Config{LoadElim: true, Speculative: false})
	if res2.LoadsRemoved != 0 {
		t.Errorf("non-speculative elimination crossed a may-alias store")
	}
}

func TestLoadElimNarrowStoreBlocked(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 4, false},
		{ir.Load, 1, 0, 4, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 0 {
		t.Error("narrow store-to-load forwarding must be rejected (truncation/zero-extension mismatch)")
	}
}

func TestLoadElimFileMismatchBlocked(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false}, // integer store
		{ir.Load, 1, 0, 8, true},   // float load of the same slot
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{LoadElim: true, Speculative: true})
	if res.LoadsRemoved != 0 {
		t.Error("cross-file forwarding must be rejected")
	}
}

func TestStoreElimBasic(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Store, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{StoreElim: true, Speculative: true})
	if res.StoresRemoved != 1 {
		t.Fatalf("stores removed = %d, want 1", res.StoresRemoved)
	}
	if reg.Ops[0].Kind != ir.Arith || reg.Ops[0].GOp != guest.Nop {
		t.Error("eliminated store not converted to nop")
	}
	if reg.Ops[1].Kind != ir.Store {
		t.Error("surviving store was modified")
	}
	if res.Elims[0].X != 0 || res.Elims[0].Z != 1 {
		t.Errorf("elim record = %+v, want X=0 Z=1", res.Elims[0])
	}
}

func TestStoreElimChainUsesSurvivor(t *testing.T) {
	// Three must-alias stores: 0 and 1 both eliminated, and 0's
	// overwriter must be the SURVIVOR (2), not the eliminated 1.
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Store, 1, 0, 8, false},
		{ir.Store, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{StoreElim: true, Speculative: true})
	if res.StoresRemoved != 2 {
		t.Fatalf("stores removed = %d, want 2", res.StoresRemoved)
	}
	for _, e := range res.Elims {
		if e.Z != 2 {
			t.Errorf("elim %+v overwriter is not the survivor 2", e)
		}
	}
}

func TestStoreElimBlockedByDefiniteLoad(t *testing.T) {
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Load, 1, 0, 8, false}, // certainly reads the stored value
		{ir.Store, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{StoreElim: true, Speculative: true})
	if res.StoresRemoved != 0 {
		t.Error("store elimination crossed a definite-alias load")
	}
}

func TestStoreElimSpeculatesPastMayAliasLoad(t *testing.T) {
	mk := func() (*ir.Region, *alias.Table) {
		reg := buildRegion([]spec{
			{ir.Store, 1, 0, 8, false},
			{ir.Load, 2, 0, 8, false}, // may alias
			{ir.Store, 1, 0, 8, false},
		})
		return reg, alias.BuildTable(reg, nil)
	}
	reg, tbl := mk()
	res := Run(reg, tbl, Config{StoreElim: true, Speculative: true})
	if res.StoresRemoved != 1 {
		t.Error("speculative store elimination failed")
	}
	reg2, tbl2 := mk()
	res2 := Run(reg2, tbl2, Config{StoreElim: true, Speculative: false})
	if res2.StoresRemoved != 0 {
		t.Error("non-speculative store elimination crossed a may-alias load")
	}
}

func TestStoreElimNotBlockedByOtherStores(t *testing.T) {
	// "we do not enforce the alias detection between [stores]... as the
	// aliases between them do not affect the correctness" — and they do
	// not block the elimination either.
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Store, 2, 0, 8, false}, // may-alias store between
		{ir.Store, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{StoreElim: true, Speculative: false})
	if res.StoresRemoved != 1 {
		t.Error("intervening store wrongly blocked store elimination")
	}
}

func TestRunOrderStoreElimFirst(t *testing.T) {
	// A load must never forward from a store that store elimination
	// removed: st[v1]; st[v1]; ld[v1] — load forwards from the SURVIVING
	// store 1, and store 0 is eliminated.
	reg := buildRegion([]spec{
		{ir.Store, 1, 0, 8, false},
		{ir.Store, 1, 0, 8, false},
		{ir.Load, 1, 0, 8, false},
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{LoadElim: true, StoreElim: true, Speculative: true})
	if res.StoresRemoved != 1 || res.LoadsRemoved != 1 {
		t.Fatalf("removed = (%d,%d), want (1,1)", res.StoresRemoved, res.LoadsRemoved)
	}
	if res.LoadElimSource[2] != 1 {
		t.Errorf("load forwarded from %d, want surviving store 1", res.LoadElimSource[2])
	}
}

func TestAddExtendedDeps(t *testing.T) {
	// Load elim with an intervening may-alias store, store elim with an
	// intervening may-alias load: both extended deps appear.
	reg := buildRegion([]spec{
		{ir.Load, 1, 0, 8, false},  // 0: source for load elim
		{ir.Store, 2, 0, 8, false}, // 1: intervening may-alias store
		{ir.Load, 1, 0, 8, false},  // 2: eliminated load
		{ir.Store, 3, 0, 8, false}, // 3: store elim X
		{ir.Load, 4, 0, 8, false},  // 4: intervening may-alias load
		{ir.Store, 3, 0, 8, false}, // 5: store elim Z
	})
	tbl := alias.BuildTable(reg, nil)
	res := Run(reg, tbl, Config{LoadElim: true, StoreElim: true, Speculative: true})
	if res.LoadsRemoved != 1 || res.StoresRemoved != 1 {
		t.Fatalf("removed = (%d,%d), want (1,1)", res.LoadsRemoved, res.StoresRemoved)
	}
	ds := deps.NewSet()
	AddExtendedDeps(ds, reg, tbl, res)
	if !ds.Has(1, 0) {
		t.Error("missing ED1 edge 1->0 (store checks forwarding source)")
	}
	if !ds.Has(5, 4) {
		t.Error("missing ED2 edge 5->4 (overwriter checks intervening load)")
	}
}
