// Package profiledump wires the conventional -cpuprofile/-memprofile
// flags into the CLI tools, so `go tool pprof` can be pointed at a full
// smarq-run or smarq-bench invocation (the profiles that drove the
// execution-engine optimization work).
package profiledump

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns the stop function.
// An empty path is a no-op (the returned stop is still safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap dumps a heap profile to path, running a GC first so the
// profile reflects live objects rather than collection timing. An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
