// Package readyq provides the O(1) ready-queue structures the compile
// pipeline selects work from: a hierarchical-bitmap index set (Bitmap)
// and a FIFO-stable monotone priority queue built on it (Queue).
//
// Both follow the software-OoO idiom of hierarchical bitmap summaries
// walked with count-leading-zeros: a set index is one bit in a leaf
// word, a leaf word is one bit in a mid-level summary word, and every
// mid word is one bit in a single top-level summary. Finding the
// minimum set index is three bits.LeadingZeros64 probes — constant
// time regardless of population — instead of a heap sift or a linear
// scan. Indices are stored MSB-first (index i occupies bit 63-i&63 of
// its word) so "leading zeros" directly yields the smallest index.
//
// The structures are pooled-friendly: Reset truncates without freeing,
// and steady-state use performs zero heap allocations once the backing
// arrays have grown to the working size (pinned by tests with
// testing.AllocsPerRun).
package readyq

import "math/bits"

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Bitmap is a dense set over [0, n) with O(1) minimum selection.
// Capacity is bounded by 64³ = 262144 indices (three summary levels),
// far above any region the compiler sees; Reset panics beyond it.
type Bitmap struct {
	top  uint64   // bit g set (MSB-first) → mid[g] != 0
	mid  []uint64 // bit w set in word g → leaf[g<<6|w] != 0
	leaf []uint64
	n    int
}

// bit returns the MSB-first mask for position p within a word.
func bit(p int) uint64 { return 1 << (wordMask - p&wordMask) }

// Reset clears the bitmap and grows it to cover indices [0, n).
func (b *Bitmap) Reset(n int) {
	if n > wordBits*wordBits*wordBits {
		panic("readyq: Bitmap capacity exceeded")
	}
	words := (n + wordMask) >> wordShift
	groups := (words + wordMask) >> wordShift
	b.leaf = resetWords(b.leaf, words)
	b.mid = resetWords(b.mid, groups)
	b.top = 0
	b.n = n
}

func resetWords(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Grow extends the bitmap to cover [0, n) without clearing the indices
// already set. No-op when n is within the current capacity.
func (b *Bitmap) Grow(n int) {
	if n <= b.n {
		return
	}
	if n > wordBits*wordBits*wordBits {
		panic("readyq: Bitmap capacity exceeded")
	}
	words := (n + wordMask) >> wordShift
	groups := (words + wordMask) >> wordShift
	b.leaf = growWords(b.leaf, words)
	b.mid = growWords(b.mid, groups)
	b.n = n
}

func growWords(s []uint64, n int) []uint64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// Len returns the capacity the bitmap was Reset to.
func (b *Bitmap) Len() int { return b.n }

// Count returns the number of set indices (O(words); diagnostics only).
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.leaf {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no index is set.
func (b *Bitmap) Empty() bool { return b.top == 0 }

// Has reports whether index i is set.
func (b *Bitmap) Has(i int) bool {
	return b.leaf[i>>wordShift]&bit(i) != 0
}

// Set inserts index i.
func (b *Bitmap) Set(i int) {
	w := i >> wordShift
	b.leaf[w] |= bit(i)
	b.mid[w>>wordShift] |= bit(w)
	b.top |= bit(w >> wordShift)
}

// Clear removes index i (no-op when absent).
func (b *Bitmap) Clear(i int) {
	w := i >> wordShift
	b.leaf[w] &^= bit(i)
	if b.leaf[w] == 0 {
		g := w >> wordShift
		b.mid[g] &^= bit(w)
		if b.mid[g] == 0 {
			b.top &^= bit(g)
		}
	}
}

// Min returns the smallest set index, or -1 when empty. Three CLZ
// probes: top summary → mid word → leaf word.
func (b *Bitmap) Min() int {
	if b.top == 0 {
		return -1
	}
	g := bits.LeadingZeros64(b.top)
	w := g<<wordShift | bits.LeadingZeros64(b.mid[g])
	return w<<wordShift | bits.LeadingZeros64(b.leaf[w])
}

// NextAfter returns the smallest set index strictly greater than i, or
// -1 when none. Used to walk the set in ascending order while leaving
// entries in place.
func (b *Bitmap) NextAfter(i int) int {
	if i < 0 {
		return b.Min()
	}
	w := i >> wordShift
	// Bits for indices > i sit strictly to the right of i's bit.
	if rest := b.leaf[w] & (bit(i) - 1); rest != 0 {
		return w<<wordShift | bits.LeadingZeros64(rest)
	}
	g := w >> wordShift
	if rest := b.mid[g] & (bit(w) - 1); rest != 0 {
		w = g<<wordShift | bits.LeadingZeros64(rest)
		return w<<wordShift | bits.LeadingZeros64(b.leaf[w])
	}
	if rest := b.top & (bit(g) - 1); rest != 0 {
		g = bits.LeadingZeros64(rest)
		w = g<<wordShift | bits.LeadingZeros64(b.mid[g])
		return w<<wordShift | bits.LeadingZeros64(b.leaf[w])
	}
	return -1
}

// UnionInto moves every index of src into b and empties src. The two
// bitmaps must have been Reset to the same capacity. Word-wise OR plus
// summary rebuild of the touched groups — O(words), used for bulk
// re-arming of deferred work.
func (b *Bitmap) UnionInto(src *Bitmap) {
	if src.top == 0 {
		return
	}
	for w, v := range src.leaf {
		if v == 0 {
			continue
		}
		if b.leaf[w] == 0 {
			g := w >> wordShift
			b.mid[g] |= bit(w)
			b.top |= bit(g)
		}
		b.leaf[w] |= v
		src.leaf[w] = 0
	}
	for g := range src.mid {
		src.mid[g] = 0
	}
	src.top = 0
}

// Queue is a monotone priority queue with FIFO-stable duplicates:
// PopMin returns items in ascending priority order, and items pushed
// with equal priority come back in push order. Priorities index a
// Bitmap, so the minimum non-empty priority is found in O(1); each
// priority's items form an intrusive FIFO list over a flat link array.
type Queue struct {
	bm   Bitmap
	head []int32 // per-priority first item, -1 when empty
	tail []int32 // per-priority last item
	next []int32 // per-item link, -1 at end
	size int
}

// Reset clears the queue for numItems item IDs and numPrios priorities.
func (q *Queue) Reset(numItems, numPrios int) {
	q.bm.Reset(numPrios)
	q.head = resetInt32(q.head, numPrios)
	q.tail = resetInt32(q.tail, numPrios)
	q.next = resetInt32(q.next, numItems)
	q.size = 0
}

func resetInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = -1
	}
	return s
}

// Grow extends the queue's item and priority capacity without disturbing
// queued entries. No-op for dimensions already large enough.
func (q *Queue) Grow(numItems, numPrios int) {
	if numPrios > q.bm.Len() {
		q.bm.Grow(numPrios)
		q.head = growInt32(q.head, numPrios)
		q.tail = growInt32(q.tail, numPrios)
	}
	if numItems > len(q.next) {
		q.next = growInt32(q.next, numItems)
	}
}

func growInt32(s []int32, n int) []int32 {
	for len(s) < n {
		s = append(s, -1)
	}
	return s
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.size }

// Empty reports whether the queue holds no items.
func (q *Queue) Empty() bool { return q.size == 0 }

// Push inserts item with the given priority. An item ID must not be
// queued twice concurrently (the link array holds one slot per item).
func (q *Queue) Push(item, prio int) {
	q.next[item] = -1
	if q.head[prio] < 0 {
		q.head[prio] = int32(item)
		q.bm.Set(prio)
	} else {
		q.next[q.tail[prio]] = int32(item)
	}
	q.tail[prio] = int32(item)
	q.size++
}

// PopMin removes and returns the item with the smallest priority
// (FIFO among equals). ok is false when the queue is empty.
func (q *Queue) PopMin() (item, prio int, ok bool) {
	p := q.bm.Min()
	if p < 0 {
		return 0, 0, false
	}
	it := q.head[p]
	nx := q.next[it]
	q.head[p] = nx
	if nx < 0 {
		q.tail[p] = -1
		q.bm.Clear(p)
	}
	q.size--
	return int(it), p, true
}
