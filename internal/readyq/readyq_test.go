package readyq

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBitmapMatchesReference drives random Set/Clear/Min/NextAfter
// traffic against a map-based reference model.
func TestBitmapMatchesReference(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 4096, 4097, 70000} {
		rng := rand.New(rand.NewSource(int64(n)))
		var b Bitmap
		b.Reset(n)
		ref := map[int]bool{}
		refMin := func() int {
			min := -1
			for i := range ref {
				if min < 0 || i < min {
					min = i
				}
			}
			return min
		}
		for step := 0; step < 2000; step++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				b.Set(i)
				ref[i] = true
			case 1:
				b.Clear(i)
				delete(ref, i)
			default:
				if b.Has(i) != ref[i] {
					t.Fatalf("n=%d step=%d: Has(%d) = %v, want %v", n, step, i, b.Has(i), ref[i])
				}
			}
			if got, want := b.Min(), refMin(); got != want {
				t.Fatalf("n=%d step=%d: Min = %d, want %d", n, step, got, want)
			}
			if got, want := b.Empty(), len(ref) == 0; got != want {
				t.Fatalf("n=%d step=%d: Empty = %v, want %v", n, step, got, want)
			}
		}
		// Full ascending walk equals the sorted reference.
		var walk []int
		for i := b.Min(); i >= 0; i = b.NextAfter(i) {
			walk = append(walk, i)
		}
		var want []int
		for i := range ref {
			want = append(want, i)
		}
		sort.Ints(want)
		if len(walk) != len(want) {
			t.Fatalf("n=%d: walk has %d entries, want %d", n, len(walk), len(want))
		}
		for i := range walk {
			if walk[i] != want[i] {
				t.Fatalf("n=%d: walk[%d] = %d, want %d", n, i, walk[i], want[i])
			}
		}
	}
}

func TestBitmapUnionInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 1000
	var a, b Bitmap
	a.Reset(n)
	b.Reset(n)
	ref := map[int]bool{}
	for i := 0; i < 300; i++ {
		x := rng.Intn(n)
		if rng.Intn(2) == 0 {
			a.Set(x)
		} else {
			b.Set(x)
		}
		ref[x] = true
	}
	a.UnionInto(&b)
	if !b.Empty() {
		t.Fatal("source not emptied by UnionInto")
	}
	for i := 0; i < n; i++ {
		if a.Has(i) != ref[i] {
			t.Fatalf("after union, Has(%d) = %v, want %v", i, a.Has(i), ref[i])
		}
	}
}

// TestQueueMatchesSortedReference is the property test: a random
// push/pop mix must pop items in exactly the order of a stably-sorted
// reference model (ascending priority, push order among equals).
func TestQueueMatchesSortedReference(t *testing.T) {
	type entry struct {
		item, prio, seq int
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const numItems, numPrios = 512, 97
		var q Queue
		q.Reset(numItems, numPrios)
		var model []entry
		seq := 0
		nextItem := 0
		for step := 0; step < 4000; step++ {
			if nextItem == numItems && len(model) == 0 {
				break
			}
			if nextItem < numItems && (len(model) == 0 || rng.Intn(2) == 0) {
				e := entry{item: nextItem, prio: rng.Intn(numPrios), seq: seq}
				nextItem++
				seq++
				q.Push(e.item, e.prio)
				model = append(model, e)
			} else {
				// Reference extract-min: stable sort by (prio, seq).
				best := 0
				for i, e := range model {
					if e.prio < model[best].prio ||
						(e.prio == model[best].prio && e.seq < model[best].seq) {
						best = i
					}
				}
				want := model[best]
				model = append(model[:best], model[best+1:]...)
				item, prio, ok := q.PopMin()
				if !ok {
					t.Fatalf("seed=%d step=%d: queue empty, model has %d", seed, step, len(model)+1)
				}
				if item != want.item || prio != want.prio {
					t.Fatalf("seed=%d step=%d: popped (%d,p%d), want (%d,p%d)",
						seed, step, item, prio, want.item, want.prio)
				}
			}
			if q.Len() != len(model) {
				t.Fatalf("seed=%d step=%d: Len = %d, want %d", seed, step, q.Len(), len(model))
			}
		}
	}
}

// TestQueueFIFOStable pins the duplicate-priority contract directly:
// items pushed at one priority pop in push order.
func TestQueueFIFOStable(t *testing.T) {
	var q Queue
	q.Reset(64, 8)
	order := []int{5, 9, 1, 33, 2}
	for _, it := range order {
		q.Push(it, 3)
	}
	q.Push(63, 7) // lower-urgency straggler must come out last
	for _, want := range order {
		item, prio, ok := q.PopMin()
		if !ok || prio != 3 || item != want {
			t.Fatalf("popped (%d,p%d,%v), want (%d,p3)", item, prio, ok, want)
		}
	}
	if item, _, _ := q.PopMin(); item != 63 {
		t.Fatalf("straggler = %d, want 63", item)
	}
	if _, _, ok := q.PopMin(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestQueueGrow pins that growing mid-stream preserves queued entries and
// admits the new item/priority ranges.
func TestQueueGrow(t *testing.T) {
	var q Queue
	q.Reset(4, 4)
	q.Push(1, 2)
	q.Push(3, 2)
	q.Grow(128, 100)
	q.Push(90, 0)  // new priority range
	q.Push(127, 3) // new item range
	want := []struct{ item, prio int }{{90, 0}, {1, 2}, {3, 2}, {127, 3}}
	for _, w := range want {
		item, prio, ok := q.PopMin()
		if !ok || item != w.item || prio != w.prio {
			t.Fatalf("popped (%d,p%d,%v), want (%d,p%d)", item, prio, ok, w.item, w.prio)
		}
	}
	var b Bitmap
	b.Reset(10)
	b.Set(3)
	b.Grow(5000)
	b.Set(4999)
	if b.Min() != 3 || b.NextAfter(3) != 4999 {
		t.Fatalf("grown bitmap walk = %d,%d, want 3,4999", b.Min(), b.NextAfter(3))
	}
}

// TestQueueSteadyStateAllocs pins the 0-alloc contract on steady-state
// push/pop (after Reset has grown the backing arrays).
func TestQueueSteadyStateAllocs(t *testing.T) {
	var q Queue
	q.Reset(256, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			q.Push(i, 255-i)
		}
		for !q.Empty() {
			q.PopMin()
		}
		q.Reset(256, 256)
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %v per run, want 0", allocs)
	}
}

// TestBitmapSteadyStateAllocs pins the same for the raw bitmap,
// including the Reset-truncation reuse path.
func TestBitmapSteadyStateAllocs(t *testing.T) {
	var b Bitmap
	b.Reset(4096)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset(4096)
		for i := 0; i < 4096; i += 7 {
			b.Set(i)
		}
		for i := b.Min(); i >= 0; i = b.NextAfter(i) {
		}
		for i := 0; i < 4096; i += 7 {
			b.Clear(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state bitmap traffic allocates %v per run, want 0", allocs)
	}
}
