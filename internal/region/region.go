// Package region forms superblock regions along hot execution paths.
//
// Following §6 of the paper: "When a hot block is identified ... the dynamic
// optimizer forms a region along the hot execution paths starting from the
// basic block until it reaches a cold block." A superblock has a single
// entry and multiple side exits; interior conditional branches become guards
// asserting the on-trace direction, and a guard failure at runtime rolls the
// atomic region back and resumes in the interpreter.
package region

import (
	"fmt"

	"smarq/internal/guest"
	"smarq/internal/interp"
)

// Config controls superblock formation.
type Config struct {
	// MaxInsts caps the number of guest instructions in a superblock.
	MaxInsts int
	// ColdRatio stops growth when the hottest successor's edge count is
	// below ColdRatio times the seed block's count (the paper's "cold
	// block" condition, expressed relative to the region seed).
	ColdRatio float64
	// MaxBlocks caps the number of guest blocks in a superblock.
	MaxBlocks int
	// Unroll replicates a loop-shaped trace (one whose on-path target is
	// its own entry) this many times, turning the loop-back branch of
	// each copy but the last into a guard. Larger regions give the
	// speculative scheduler more freedom and raise alias register
	// pressure — the "larger region and loop level optimizations" the
	// paper's §6.1 anticipates. 0 and 1 mean no unrolling.
	Unroll int
}

// DefaultConfig mirrors the paper's setting of large superblocks (large
// regions are "critical for achieving good performance on in-order
// processors", §2.2).
func DefaultConfig() Config {
	return Config{MaxInsts: 512, ColdRatio: 0.05, MaxBlocks: 64}
}

// Inst is one guest instruction placed in a superblock, with enough
// provenance to resume interpretation on a side exit.
type Inst struct {
	Inst   guest.Inst
	GBlock int // guest block the instruction came from
	GIndex int // index within that block

	// Guard fields, meaningful only when Inst.Op.IsBranch() and this is
	// not the final trace-ending branch:
	//   OnTraceTaken — the hot direction the trace assumes.
	//   OffTrace     — guest block to resume at if the guard fails.
	IsGuard      bool
	OnTraceTaken bool
	OffTrace     int
}

// Superblock is a single-entry trace of guest instructions.
type Superblock struct {
	ID     int
	Entry  int   // guest block ID of the trace head
	Blocks []int // guest blocks along the trace, in order
	Insts  []Inst

	// FinalTarget is the guest block control reaches when the whole trace
	// executes on-path; interp.HaltID when the trace ends in Halt.
	FinalTarget int
	// UnrollFactor records how many loop iterations the trace covers
	// (0 or 1: not unrolled).
	UnrollFactor int
}

// NumMemOps returns the number of memory instructions in the superblock
// (the paper's Figure 14 statistic).
func (sb *Superblock) NumMemOps() int {
	n := 0
	for _, in := range sb.Insts {
		if in.Inst.Op.IsMem() {
			n++
		}
	}
	return n
}

// String renders the superblock for traces.
func (sb *Superblock) String() string {
	out := fmt.Sprintf("superblock %d: entry B%d, blocks %v, final B%d\n", sb.ID, sb.Entry, sb.Blocks, sb.FinalTarget)
	for i, in := range sb.Insts {
		guard := ""
		if in.IsGuard {
			dir := "not-taken"
			if in.OnTraceTaken {
				dir = "taken"
			}
			guard = fmt.Sprintf("  ; guard %s, off-trace B%d", dir, in.OffTrace)
		}
		out += fmt.Sprintf("  %3d: %s%s\n", i, in.Inst, guard)
	}
	return out
}

// Form grows a superblock starting at seed along the hottest successors in
// prof, per cfg. It returns an error when the seed block does not exist.
func Form(prog *guest.Program, prof *interp.Profile, seed int, cfg Config) (*Superblock, error) {
	if prog.Block(seed) == nil {
		return nil, fmt.Errorf("region: seed block %d does not exist", seed)
	}
	sb := &Superblock{Entry: seed, FinalTarget: interp.HaltID}
	seedCount := float64(prof.BlockCounts[seed])
	inTrace := make(map[int]bool)

	cur := seed
	for {
		blk := prog.Block(cur)
		sb.Blocks = append(sb.Blocks, cur)
		inTrace[cur] = true

		// Copy instructions; the terminator is handled after we know
		// whether the trace continues and in which direction.
		term, hasTerm := blk.Terminator()
		body := blk.Insts
		if hasTerm {
			body = body[:len(body)-1]
		}
		for j, in := range body {
			sb.Insts = append(sb.Insts, Inst{Inst: in, GBlock: cur, GIndex: j})
		}

		if hasTerm && term.Op == guest.Halt {
			sb.Insts = append(sb.Insts, Inst{Inst: term, GBlock: cur, GIndex: len(blk.Insts) - 1})
			sb.FinalTarget = interp.HaltID
			break
		}

		succs := blk.Successors()
		next, edgeCount := prof.HottestSuccessor(cur, succs)
		if next == -1 {
			// Never observed leaving this block; end the trace here and
			// fall back to the first static successor.
			next = succs[0]
			edgeCount = 0
		}

		stop := inTrace[next] ||
			len(sb.Blocks) >= cfg.MaxBlocks ||
			len(sb.Insts)+len(blk.Insts) > cfg.MaxInsts ||
			(seedCount > 0 && float64(edgeCount) < cfg.ColdRatio*seedCount)

		if hasTerm {
			ri := Inst{Inst: term, GBlock: cur, GIndex: len(blk.Insts) - 1}
			if term.Op.IsBranch() {
				ri.IsGuard = true
				ri.OnTraceTaken = next == term.Target
				if ri.OnTraceTaken {
					ri.OffTrace = cur + 1
				} else {
					ri.OffTrace = term.Target
				}
				// A branch whose two successors coincide needs no guard.
				if term.Target == cur+1 {
					ri.IsGuard = false
				}
			}
			sb.Insts = append(sb.Insts, ri)
		}

		if stop {
			sb.FinalTarget = next
			break
		}
		cur = next
	}
	unroll(sb, cfg)
	return sb, nil
}

// unroll replicates a loop-shaped trace body. The loop-back branch at the
// end of each copy is already a guard asserting the on-trace (taken)
// direction, so plain concatenation is semantically exact: a committed
// region execution retires cfg.Unroll iterations, and any early loop exit
// fails a guard and rolls back to the region entry as usual. Virtual
// register renaming during translation links copy k+1's uses to copy k's
// definitions with no extra work.
func unroll(sb *Superblock, cfg Config) {
	if cfg.Unroll <= 1 || sb.FinalTarget != sb.Entry {
		return
	}
	if len(sb.Insts)*cfg.Unroll > cfg.MaxInsts && cfg.MaxInsts > 0 {
		return
	}
	body := make([]Inst, len(sb.Insts))
	copy(body, sb.Insts)
	for k := 1; k < cfg.Unroll; k++ {
		sb.Insts = append(sb.Insts, body...)
	}
	sb.UnrollFactor = cfg.Unroll
}
