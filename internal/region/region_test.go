package region

import (
	"testing"

	"smarq/internal/guest"
	"smarq/internal/interp"
)

// loopProgram: B0 init; B1 loop body with a rarely-taken side branch to B3;
// B2 continues the loop; B3 cold path rejoins; B4 exit.
func loopProgram() *guest.Program {
	b := guest.NewBuilder()
	b.NewBlock() // B0
	b.Li(1, 100)
	b.Li(2, 64)
	b.NewBlock() // B1: loop head
	b.Ld8(3, 2, 0)
	b.Beq(3, 31, 3) // rare side exit to B3 (r31 == 0, mem starts at 0... taken 1st iter only)
	b.NewBlock()    // B2
	b.Addi(3, 3, 1)
	b.St8(2, 0, 3)
	b.Addi(1, 1, -1)
	b.Bne(1, 0, 1)
	b.NewBlock() // B3: cold path
	b.Addi(3, 3, 100)
	b.St8(2, 0, 3)
	b.Jmp(2)
	b.NewBlock() // B4
	b.Halt()
	return b.MustProgram()
}

func profileOf(t *testing.T, prog *guest.Program) *interp.Profile {
	t.Helper()
	it := interp.New(prog, &guest.State{}, guest.NewMemory(256))
	if _, err := it.Run(0, 10_000); err != nil {
		t.Fatal(err)
	}
	return it.Prof
}

func TestFormFollowsHotPath(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	sb, err := Form(prog, prof, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Hot path is B1 -> B2 (B3 is entered at most once). The trace must be
	// [1 2] and stop when it would loop back to B1.
	if len(sb.Blocks) != 2 || sb.Blocks[0] != 1 || sb.Blocks[1] != 2 {
		t.Fatalf("trace blocks = %v, want [1 2]", sb.Blocks)
	}
	if sb.FinalTarget != 1 {
		t.Errorf("FinalTarget = %d, want 1 (loop back)", sb.FinalTarget)
	}
}

func TestFormGuards(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	sb, err := Form(prog, prof, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var guards []Inst
	for _, in := range sb.Insts {
		if in.IsGuard {
			guards = append(guards, in)
		}
	}
	if len(guards) != 2 {
		t.Fatalf("got %d guards, want 2:\n%s", len(guards), sb)
	}
	// Guard 1: beq r3,r31,B3 — hot direction is fallthrough (not taken),
	// off-trace resumes at B3.
	if guards[0].OnTraceTaken || guards[0].OffTrace != 3 {
		t.Errorf("guard0 = %+v, want not-taken with off-trace B3", guards[0])
	}
	// Guard 2: bne r1,r0,B1 — hot direction is taken (loop back);
	// off-trace is the fallthrough B3... actually B2+1 = B3.
	if !guards[1].OnTraceTaken || guards[1].OffTrace != 3 {
		t.Errorf("guard1 = %+v, want taken with off-trace B3", guards[1])
	}
}

func TestFormStopsAtHalt(t *testing.T) {
	b := guest.NewBuilder()
	b.NewBlock()
	b.Li(1, 1)
	b.NewBlock()
	b.Addi(1, 1, 1)
	b.NewBlock()
	b.Halt()
	prog := b.MustProgram()
	prof := profileOf(t, prog)
	sb, err := Form(prog, prof, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Blocks) != 3 {
		t.Fatalf("trace blocks = %v, want all three", sb.Blocks)
	}
	if sb.FinalTarget != interp.HaltID {
		t.Errorf("FinalTarget = %d, want HaltID", sb.FinalTarget)
	}
	last := sb.Insts[len(sb.Insts)-1]
	if last.Inst.Op != guest.Halt {
		t.Errorf("final instruction = %s, want halt", last.Inst)
	}
}

func TestFormRespectsMaxInsts(t *testing.T) {
	// A long fallthrough chain.
	b := guest.NewBuilder()
	for i := 0; i < 20; i++ {
		b.NewBlock()
		for j := 0; j < 10; j++ {
			b.Addi(1, 1, 1)
		}
	}
	b.NewBlock()
	b.Halt()
	prog := b.MustProgram()
	prof := profileOf(t, prog)
	cfg := DefaultConfig()
	cfg.MaxInsts = 35
	sb, err := Form(prog, prof, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Insts) > 35+10 {
		t.Errorf("superblock has %d insts, cap was 35 (+1 block slack)", len(sb.Insts))
	}
	if len(sb.Blocks) >= 20 {
		t.Errorf("trace took %d blocks, should have stopped early", len(sb.Blocks))
	}
}

func TestFormBadSeed(t *testing.T) {
	prog := loopProgram()
	if _, err := Form(prog, interp.NewProfile(len(prog.Blocks)), 99, DefaultConfig()); err == nil {
		t.Error("Form with bad seed did not fail")
	}
}

func TestNumMemOps(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	sb, err := Form(prog, prof, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := sb.NumMemOps(); got != 2 { // ld8 in B1, st8 in B2
		t.Errorf("NumMemOps = %d, want 2", got)
	}
}

func TestStringContainsGuardInfo(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	sb, _ := Form(prog, prof, 1, DefaultConfig())
	s := sb.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestUnrollLoopTrace(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	cfg := DefaultConfig()
	cfg.Unroll = 3
	sb, err := Form(prog, prof, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := Form(prog, prof, 1, DefaultConfig())
	if len(sb.Insts) != 3*len(plain.Insts) {
		t.Fatalf("unrolled trace has %d insts, want %d", len(sb.Insts), 3*len(plain.Insts))
	}
	if sb.UnrollFactor != 3 {
		t.Errorf("UnrollFactor = %d, want 3", sb.UnrollFactor)
	}
	if sb.FinalTarget != sb.Entry {
		t.Errorf("unrolled trace final target = %d, want entry %d", sb.FinalTarget, sb.Entry)
	}
	// Every copy ends with the loop-back guard.
	guards := 0
	for _, in := range sb.Insts {
		if in.IsGuard && in.OnTraceTaken {
			guards++
		}
	}
	if guards < 3 {
		t.Errorf("only %d taken-guards in unrolled trace, want >= 3", guards)
	}
}

func TestUnrollSkipsNonLoops(t *testing.T) {
	// A trace ending in Halt must not unroll.
	b := guest.NewBuilder()
	b.NewBlock()
	b.Addi(1, 1, 1)
	b.NewBlock()
	b.Halt()
	prog := b.MustProgram()
	prof := profileOf(t, prog)
	cfg := DefaultConfig()
	cfg.Unroll = 4
	sb, err := Form(prog, prof, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sb.UnrollFactor > 1 {
		t.Error("non-loop trace was unrolled")
	}
}

func TestUnrollRespectsMaxInsts(t *testing.T) {
	prog := loopProgram()
	prof := profileOf(t, prog)
	cfg := DefaultConfig()
	cfg.Unroll = 4
	cfg.MaxInsts = 10 // body is ~7 insts; 4x would blow the cap
	sb, err := Form(prog, prof, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sb.UnrollFactor > 1 {
		t.Error("unroll exceeded MaxInsts")
	}
}
