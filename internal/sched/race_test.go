//go:build race

package sched

// raceEnabled widens the steady-state allocation budget: under the race
// detector sync.Pool deliberately drops a fraction of Puts, so pooled
// structures (scratch, constraint graph, allocator) occasionally
// reallocate even in steady state.
const raceEnabled = true
