// Package sched implements the list scheduler the SMARQ allocator is
// embedded in (§5.3): instruction scheduling and alias register allocation
// run as a single pass, and the scheduler switches between a speculation
// mode (memory operations reorder freely, watched by the alias hardware)
// and a non-speculation mode (original memory order, no new alias
// registers) based on the allocator's overflow estimate.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
	"smarq/internal/readyq"
	"smarq/internal/vliw"
)

// HWMode selects the alias-detection hardware the schedule targets.
type HWMode uint8

const (
	// HWNone: no alias hardware — every dependence is a hard scheduling
	// edge (the paper's no-alias-HW baseline).
	HWNone HWMode = iota
	// HWOrdered: the order-based alias register queue (SMARQ, and the
	// Efficeon-like 16-register variant).
	HWOrdered
	// HWALAT: Itanium-like — only loads may hoist above stores (advanced
	// loads); stores cannot reorder with anything they may alias.
	HWALAT
	// HWBitmask: Efficeon-like — named registers with explicit per-
	// instruction check masks. As precise and store-capable as the
	// ordered queue, but capped at aliashw.MaxBitmaskRegs registers by
	// the encoding (§2.2).
	HWBitmask
)

// Config controls scheduling.
type Config struct {
	Mode HWMode
	// NumAliasRegs is the physical alias register file size.
	NumAliasRegs int
	// StoreReorder allows speculatively reordering may-alias stores
	// (Figure 16 disables it).
	StoreReorder bool
	// ForceNonSpec pins the scheduler in non-speculation mode: memory
	// operations stay in original order. Used as the fallback after an
	// alias register overflow.
	ForceNonSpec bool
	// PinnedOps are op IDs that must not be speculated on: every
	// dependence touching them is a hard edge. The runtime pins loads
	// whose ALAT entries keep raising false positives (a store checks
	// *every* advanced load, so hardening one pair cannot stop the trap —
	// the load must stop being advanced).
	PinnedOps map[int]bool
	// PressureMargin is subtracted from the register count before
	// comparing against the overflow estimate.
	PressureMargin int
	// Machine provides latencies for the priority function.
	Machine vliw.Config
	// Alloc selects allocator ablations (zero value = full SMARQ).
	Alloc core.Options
}

// Schedule is a finished schedule with its allocation.
type Schedule struct {
	// Seq is the linear instruction stream: scheduled ops plus the AMOVs
	// and rotates the allocator inserted.
	Seq []*ir.Op
	// Alloc is the allocator's result (orders, constraints, stats).
	Alloc *core.Result
	// NonSpecCycles counts scheduling steps spent in non-speculation mode.
	NonSpecCycles int
}

// Release recycles the schedule's allocation result (sequence, dense
// order/base views, constraint listings). The caller must be done with
// every view into the schedule, Seq included; the compile pipeline calls
// it after freezing and measuring the schedule.
func (s *Schedule) Release() {
	if s.Alloc != nil {
		s.Alloc.Release()
		s.Alloc = nil
	}
	s.Seq = nil
}

// breakable reports whether dependence d may be violated by reordering
// under the configured hardware (the check will be performed at runtime).
func (c Config) breakable(d deps.Dep) bool {
	if d.Rel.Definite() {
		return false
	}
	if c.PinnedOps[d.Src] || c.PinnedOps[d.Dst] {
		return false
	}
	switch c.Mode {
	case HWNone:
		return false
	case HWALAT:
		// Only a genuine load hoist above an earlier store is checkable.
		return d.Src < d.Dst && d.SrcIsStore && !d.DstIsStore
	default: // HWOrdered and HWBitmask: fully precise detection
		if !c.StoreReorder && d.SrcIsStore && d.DstIsStore {
			return false
		}
		return true
	}
}

// allocSink abstracts the per-mode allocation machinery the scheduling
// loop drives: the integrated ordered-queue allocator, or the lightweight
// live-count tracker of the bit-mask mode (whose actual register
// assignment is a post-pass).
type allocSink interface {
	Schedule(op *ir.Op) []*ir.Op
	Pressure(futureP int) int
}

// bitmaskSink records the schedule and tracks how many protected live
// ranges are simultaneously open, which is exactly the register demand of
// the bit-mask file.
type bitmaskSink struct {
	ds        *deps.Set
	bySrc     map[int][]int
	scheduled map[int]bool
	pending   map[int]int // checkee -> unscheduled checkers
	live      int
	seq       []*ir.Op
	out       [1]*ir.Op // Schedule's reused return storage
}

func newBitmaskSink(ds *deps.Set) *bitmaskSink {
	s := &bitmaskSink{
		ds:        ds,
		bySrc:     make(map[int][]int),
		scheduled: make(map[int]bool),
		pending:   make(map[int]int),
	}
	for _, d := range ds.All {
		s.bySrc[d.Src] = append(s.bySrc[d.Src], d.Dst)
	}
	return s
}

// Schedule implements allocSink.
func (s *bitmaskSink) Schedule(op *ir.Op) []*ir.Op {
	s.scheduled[op.ID] = true
	s.seq = append(s.seq, op)
	if op.IsMem() {
		// op becomes a checkee for every dependence whose source is
		// still unscheduled.
		for _, d := range s.ds.ByDst(op.ID) {
			if !s.scheduled[d.Src] {
				if s.pending[op.ID] == 0 {
					s.live++
				}
				s.pending[op.ID]++
			}
		}
		// op may close live ranges it was the pending checker of.
		for _, dst := range s.bySrc[op.ID] {
			if s.scheduled[dst] && s.pending[dst] > 0 {
				s.pending[dst]--
				if s.pending[dst] == 0 {
					s.live--
				}
			}
		}
	}
	s.out[0] = op
	return s.out[:]
}

// Pressure implements allocSink.
func (s *bitmaskSink) Pressure(futureP int) int { return s.live + futureP }

type node struct {
	op       *ir.Op
	preds    int32 // unscheduled predecessor count
	height   int   // critical-path priority
	memIndex int32 // position among memory ops, -1 for non-memory
}

// rankSorter sorts node IDs by scheduling priority — height descending,
// ID ascending — producing the static total order the ready bitmap is
// indexed by. It lives inside the pooled scratch so sort.Sort sees an
// already-heap-allocated value and the sort itself allocates nothing.
type rankSorter struct {
	ids   []int32
	nodes []node
}

func (s *rankSorter) Len() int { return len(s.ids) }
func (s *rankSorter) Less(i, j int) bool {
	a, b := s.ids[i], s.ids[j]
	if s.nodes[a].height != s.nodes[b].height {
		return s.nodes[a].height > s.nodes[b].height
	}
	return a < b
}
func (s *rankSorter) Swap(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }

// scratch is the per-Run working storage, pooled so steady-state
// compilation reuses the node array, CSR edge buffers, worklists and the
// ready structures instead of reallocating them (compilations may run on
// concurrent worker goroutines, hence a pool rather than package globals).
type scratch struct {
	nodes        []node
	defOf        []int32 // vreg -> defining op, -1 when none
	succOff      []int32 // CSR: nodes[i] successors are succs[succOff[i]:succOff[i+1]]
	succs        []int32
	cursor       []int32
	forcedP      []bool
	readyTime    []int
	memScheduled []bool
	// Rank-bitmap selection state (Run).
	rankOf   []int32 // node id -> rank in the static priority order
	rankID   []int32 // rank -> node id
	memOrder []int32 // memIndex -> node id
	readyBM  readyq.Bitmap
	deferBM  readyq.Bitmap
	sorter   rankSorter
	// Heap selection state (RunRef).
	ready    readyHeap
	deferred []item
	stash    []item
}

var scratchPool = sync.Pool{New: func() interface{} { return &scratch{} }}

// grab returns pooled storage sized for n ops and nv vregs, cleared.
func (sc *scratch) grab(n, nv int) {
	sc.nodes = resize(sc.nodes, n)
	sc.defOf = resize(sc.defOf, nv)
	for i := range sc.defOf {
		sc.defOf[i] = -1
	}
	sc.succOff = resize(sc.succOff, n+1)
	sc.forcedP = resize(sc.forcedP, n)
	sc.readyTime = resize(sc.readyTime, n)
	sc.ready = sc.ready[:0]
	sc.deferred = sc.deferred[:0]
	sc.stash = sc.stash[:0]
}

// resize returns s with length n, reusing capacity, zeroing the contents.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// buildNodes fills the node array from the region's ops and returns the
// number of memory ops.
func buildNodes(sc0 *scratch, reg *ir.Region) int32 {
	nodes := sc0.nodes
	defOf := sc0.defOf
	memSeq := int32(0)
	for i, op := range reg.Ops {
		nodes[i] = node{op: op, memIndex: -1}
		if op.IsMem() {
			nodes[i].memIndex = memSeq
			memSeq++
		}
		if op.Dst != ir.NoVReg {
			defOf[op.Dst] = int32(i)
		}
	}
	return memSeq
}

// buildEdges constructs the hard scheduling edges in compressed sparse
// rows: one counting pass, one fill pass (both visit edges in the
// identical deterministic order). Duplicate edges are kept, exactly like
// a per-node append would — preds is incremented and released per
// duplicate, which cancels out.
func buildEdges(sc0 *scratch, reg *ir.Region, ds *deps.Set, cfg Config) (succOff, succs []int32) {
	n := len(reg.Ops)
	nodes := sc0.nodes
	defOf := sc0.defOf
	hardEdge := func(d deps.Dep) (int, int, bool) {
		if cfg.ForceNonSpec || !cfg.breakable(d) {
			lo, hi := d.Src, d.Dst
			if lo > hi {
				lo, hi = hi, lo
			}
			if lo != hi {
				return lo, hi, true
			}
		}
		return 0, 0, false
	}
	succOff = sc0.succOff
	for i, op := range reg.Ops {
		for _, s := range op.Srcs {
			if d := defOf[s]; d >= 0 && int(d) != i {
				succOff[d+1]++
			}
		}
	}
	for _, d := range ds.All {
		if from, to, ok := hardEdge(d); ok && from != to {
			succOff[from+1]++
		}
	}
	for i := 0; i < n; i++ {
		succOff[i+1] += succOff[i]
	}
	sc0.succs = resize(sc0.succs, int(succOff[n]))
	succs = sc0.succs
	// Fill using a moving per-node cursor initialized from the offsets.
	sc0.cursor = resize(sc0.cursor, n)
	next := sc0.cursor
	copy(next, succOff[:n])
	addEdge := func(from, to int) {
		succs[next[from]] = int32(to)
		next[from]++
		nodes[to].preds++
	}
	for i, op := range reg.Ops {
		for _, s := range op.Srcs {
			if d := defOf[s]; d >= 0 && int(d) != i {
				addEdge(int(d), i)
			}
		}
	}
	for _, d := range ds.All {
		if from, to, ok := hardEdge(d); ok {
			addEdge(from, to)
		}
	}
	return succOff, succs
}

// computeHeights assigns each node its critical-path priority: the
// longest latency-weighted path to a leaf.
func computeHeights(sc0 *scratch, cfg Config, succsOf func(int) []int32) {
	nodes := sc0.nodes
	for i := len(nodes) - 1; i >= 0; i-- {
		nd := &nodes[i]
		h := 0
		for _, s := range succsOf(i) {
			if nodes[s].height > h {
				h = nodes[s].height
			}
		}
		nd.height = h + cfg.Machine.Latency(nd.op)
	}
}

// computeForcedP marks memory ops that will set an alias register even in
// non-speculation mode — destinations of backward (extended) dependences
// (Figure 13 line 24's future-usage term) — and returns their count.
func computeForcedP(sc0 *scratch, ds *deps.Set, cfg Config) int {
	forcedP := sc0.forcedP
	futureP := 0
	for _, d := range ds.All {
		if d.Src > d.Dst && cfg.breakable(d) && !forcedP[d.Dst] {
			forcedP[d.Dst] = true
			futureP++
		}
	}
	return futureP
}

// Run schedules the region and allocates alias registers. The dependence
// set must already include extended dependences. On alias register
// overflow it returns an error; the caller should retry with ForceNonSpec
// or with speculation disabled in the optimizer.
//
// Ready-op selection uses a hierarchical CLZ bitmap over the *static*
// priority order (height descending, ID ascending — itemLess of the
// reference heap). Because the priority of an op never changes once
// heights are computed, ranks can be assigned up front and "pop the best
// ready op" becomes Bitmap.Min: three LeadingZeros64 probes instead of a
// heap sift. RunRef keeps the heap implementation; the two walk ready
// sets in the identical total order and must produce identical schedules
// (TestRunMatchesReference).
func Run(reg *ir.Region, tbl *alias.Table, ds *deps.Set, cfg Config) (*Schedule, error) {
	n := len(reg.Ops)
	sc0 := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc0)
	sc0.grab(n, reg.NumVRegs)
	nodes := sc0.nodes
	memSeq := buildNodes(sc0, reg)
	succOff, succs := buildEdges(sc0, reg, ds, cfg)
	succsOf := func(i int) []int32 { return succs[succOff[i]:succOff[i+1]] }
	computeHeights(sc0, cfg, succsOf)
	forcedP := sc0.forcedP
	futureP := computeForcedP(sc0, ds, cfg)

	// Static selection order: rankID lists node IDs by priority, rankOf
	// inverts it, memOrder finds the op owning a given memIndex in O(1).
	sc0.rankID = resize(sc0.rankID, n)
	rankID := sc0.rankID
	for i := range rankID {
		rankID[i] = int32(i)
	}
	sc0.sorter.ids, sc0.sorter.nodes = rankID, nodes
	sort.Sort(&sc0.sorter)
	sc0.rankOf = resize(sc0.rankOf, n)
	rankOf := sc0.rankOf
	for r, id := range rankID {
		rankOf[id] = int32(r)
	}
	sc0.memOrder = resize(sc0.memOrder, int(memSeq))
	memOrder := sc0.memOrder
	for i := range nodes {
		if mi := nodes[i].memIndex; mi >= 0 {
			memOrder[mi] = int32(i)
		}
	}

	var alloc allocSink
	var ordered *core.Allocator
	var bitmask *bitmaskSink
	numRegs := cfg.NumAliasRegs
	if cfg.Mode == HWBitmask {
		if numRegs > aliashw.MaxBitmaskRegs {
			numRegs = aliashw.MaxBitmaskRegs
		}
		bitmask = newBitmaskSink(ds)
		alloc = bitmask
	} else {
		ordered = core.NewAllocatorOpts(n, ds, numRegs, cfg.Alloc)
		alloc = ordered
	}
	readyBM := &sc0.readyBM
	deferBM := &sc0.deferBM
	readyBM.Reset(n)
	deferBM.Reset(n)
	for i := range nodes {
		if nodes[i].preds == 0 {
			readyBM.Set(int(rankOf[i]))
		}
	}

	sc := &Schedule{}
	nextMem := int32(0) // lowest memIndex not yet scheduled (non-spec order rule)
	sc0.memScheduled = resize(sc0.memScheduled, int(memSeq))
	memScheduled := sc0.memScheduled

	// Cycle-driven list scheduling: an op is pickable when its operands
	// are ready at the current clock and a slot of its class remains in
	// the current cycle. This is what makes speculation profitable to the
	// scheduler — a load whose operands are ready hoists into the stall
	// cycles an in-order machine would otherwise waste.
	readyTime := sc0.readyTime
	clock, aluUsed, memUsed := 0, 0, 0
	advance := func(to int) {
		if to <= clock {
			to = clock + 1
		}
		clock = to
		aluUsed, memUsed = 0, 0
	}
	charge := func(op *ir.Op) {
		if aluUsed >= cfg.Machine.IssueWidth ||
			(op.IsMem() && memUsed >= cfg.Machine.MemPorts) {
			advance(clock + 1)
		}
		aluUsed++
		if op.IsMem() {
			memUsed++
		}
	}

	scheduledCount := 0
	for scheduledCount < n {
		pressure := alloc.Pressure(futureP)
		nonSpec := cfg.ForceNonSpec || pressure >= numRegs-cfg.PressureMargin
		if nonSpec {
			sc.NonSpecCycles++
		}

		// Re-arm deferred ops that are now permitted: all of them when
		// speculation resumed, else just the one next-in-order memory op
		// (found directly through memOrder — no list scan).
		if !deferBM.Empty() {
			if !nonSpec {
				readyBM.UnionInto(deferBM)
			} else if nextMem < memSeq {
				if r := int(rankOf[memOrder[nextMem]]); deferBM.Has(r) {
					deferBM.Clear(r)
					readyBM.Set(r)
				}
			}
		}

		// Walk ready ops in priority order. Mode-blocked memory ops move
		// to the deferred bitmap; time- or resource-blocked ops simply
		// stay set (the walk skips them — no stash/re-push round trip).
		picked := -1
		for r := readyBM.Min(); r >= 0; r = readyBM.NextAfter(r) {
			id := int(rankID[r])
			nd := &nodes[id]
			if nonSpec && nd.memIndex >= 0 && nd.memIndex != nextMem {
				readyBM.Clear(r)
				deferBM.Set(r)
				continue
			}
			if readyTime[id] > clock ||
				aluUsed >= cfg.Machine.IssueWidth ||
				(nd.op.IsMem() && memUsed >= cfg.Machine.MemPorts) {
				continue
			}
			picked = id
			readyBM.Clear(r)
			break
		}

		if picked < 0 {
			if !readyBM.Empty() {
				// Nothing issues this cycle: advance to the earliest time
				// a stalled op becomes ready.
				min := int(^uint(0) >> 1)
				for r := readyBM.Min(); r >= 0; r = readyBM.NextAfter(r) {
					if rt := readyTime[rankID[r]]; rt < min {
						min = rt
					}
				}
				advance(min)
				continue
			}
			// Only mode-deferred ops remain: schedule the next in-order
			// memory op (progress guarantee — see package comment).
			r := -1
			if nextMem < memSeq {
				if cand := int(rankOf[memOrder[nextMem]]); deferBM.Has(cand) {
					r = cand
				}
			}
			if r == -1 {
				return nil, fmt.Errorf("sched: stuck with %d deferred ops at %d/%d scheduled", deferBM.Count(), scheduledCount, n)
			}
			deferBM.Clear(r)
			picked = int(rankID[r])
			if readyTime[picked] > clock {
				advance(readyTime[picked])
			}
		}

		nd := nodes[picked]
		if isDeadPlaceholder(nd.op) {
			// Placeholder of an eliminated store: occupies no slot and
			// emits nothing, but still releases its successors.
		} else {
			for _, em := range alloc.Schedule(nd.op) {
				charge(em)
			}
		}
		scheduledCount++
		finish := clock + cfg.Machine.Latency(nd.op)
		if nd.memIndex >= 0 {
			memScheduled[nd.memIndex] = true
			for nextMem < memSeq && memScheduled[nextMem] {
				nextMem++
			}
			if forcedP[nd.op.ID] {
				futureP--
			}
		}
		for _, s := range succsOf(picked) {
			if finish > readyTime[s] {
				readyTime[s] = finish
			}
			nodes[s].preds--
			if nodes[s].preds == 0 {
				readyBM.Set(int(rankOf[s]))
			}
		}
	}

	if bitmask != nil {
		res, err := core.AllocateBitmask(bitmask.seq, ds, numRegs)
		if err != nil {
			return nil, err
		}
		sc.Seq = res.Seq
		sc.Alloc = res
		return sc, nil
	}
	res, err := ordered.Finish()
	if err != nil {
		return nil, err
	}
	sc.Seq = res.Seq
	sc.Alloc = res
	return sc, nil
}

// isDeadPlaceholder recognizes the no-op left behind by an eliminated
// store.
func isDeadPlaceholder(op *ir.Op) bool {
	return op.Kind == ir.Arith && op.GOp == guest.Nop &&
		op.Dst == ir.NoVReg && len(op.Srcs) == 0
}
