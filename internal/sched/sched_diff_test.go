package sched

import (
	"math/rand"
	"testing"

	"smarq/internal/alias"
	"smarq/internal/deps"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/vliw"
)

// randSpecs builds a deterministic pseudo-random op mix: loads, stores and
// arith chains over a small pool of root registers, so may-alias pairs,
// must-alias pairs and dependence chains all occur.
func randSpecs(rng *rand.Rand, n int) []spec {
	specs := make([]spec, n)
	for i := range specs {
		switch rng.Intn(4) {
		case 0:
			specs[i] = spec{'L', ir.VReg(1 + rng.Intn(4))}
		case 1:
			specs[i] = spec{'S', ir.VReg(1 + rng.Intn(4))}
		default:
			specs[i] = spec{'a', 0}
		}
	}
	// Guarantee at least one memory op so every mode has work to do.
	specs[0] = spec{'S', 1}
	return specs
}

// runOnce builds a fresh region from specs and runs the full sched-side
// pipeline through the given scheduler entry point. A fresh region per run
// is required: opt and the allocator annotate ops in place.
func runOnce(t *testing.T, specs []spec, cfg Config,
	run func(*ir.Region, *alias.Table, *deps.Set, Config) (*Schedule, error)) (*Schedule, *ir.Region, error) {
	t.Helper()
	reg := buildRegion(specs)
	tbl := alias.BuildTable(reg, nil)
	optRes := opt.Run(reg, tbl, opt.Config{LoadElim: true, StoreElim: true, Speculative: cfg.Mode != HWNone})
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)
	sc, err := run(reg, tbl, ds, cfg)
	return sc, reg, err
}

// TestRunMatchesReference differentially tests the CLZ-bitmap scheduler
// against the retained heap implementation: identical schedules, alias
// annotations, allocation orders, constraints and stats across hardware
// modes, register file sizes and random regions.
func TestRunMatchesReference(t *testing.T) {
	modes := []HWMode{HWNone, HWOrdered, HWALAT, HWBitmask}
	for _, mode := range modes {
		for _, numRegs := range []int{4, 8, 64} {
			for seed := int64(0); seed < 8; seed++ {
				cfg := Config{
					Mode:           mode,
					NumAliasRegs:   numRegs,
					StoreReorder:   seed%2 == 0,
					ForceNonSpec:   seed%3 == 0,
					PressureMargin: 4,
					Machine:        vliw.DefaultConfig(),
				}
				rng := rand.New(rand.NewSource(seed*131 + int64(mode)))
				specs := randSpecs(rng, 40+rng.Intn(60))

				got, gotReg, gotErr := runOnce(t, specs, cfg, Run)
				want, wantReg, wantErr := runOnce(t, specs, cfg, RunRef)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("mode=%d regs=%d seed=%d: err mismatch: %v vs %v", mode, numRegs, seed, gotErr, wantErr)
				}
				if gotErr != nil {
					if gotErr.Error() != wantErr.Error() {
						t.Fatalf("mode=%d regs=%d seed=%d: error text %q vs %q", mode, numRegs, seed, gotErr, wantErr)
					}
					continue
				}
				compareSchedules(t, got, want, mode, numRegs, seed)
				compareRegions(t, gotReg, wantReg, mode, numRegs, seed)
			}
		}
	}
}

func compareSchedules(t *testing.T, got, want *Schedule, mode HWMode, numRegs int, seed int64) {
	t.Helper()
	if got.NonSpecCycles != want.NonSpecCycles {
		t.Errorf("mode=%d regs=%d seed=%d: NonSpecCycles %d vs %d", mode, numRegs, seed, got.NonSpecCycles, want.NonSpecCycles)
	}
	if len(got.Seq) != len(want.Seq) {
		t.Fatalf("mode=%d regs=%d seed=%d: seq length %d vs %d", mode, numRegs, seed, len(got.Seq), len(want.Seq))
	}
	for i := range got.Seq {
		g, w := got.Seq[i], want.Seq[i]
		if g.ID != w.ID || g.Kind != w.Kind || g.AROffset != w.AROffset ||
			g.P != w.P || g.C != w.C || g.SrcOff != w.SrcOff || g.DstOff != w.DstOff ||
			g.Amount != w.Amount || g.ARMask != w.ARMask {
			t.Fatalf("mode=%d regs=%d seed=%d: seq[%d] differs:\n  got  %+v\n  want %+v", mode, numRegs, seed, i, *g, *w)
		}
	}
	if got.Alloc.Stats != want.Alloc.Stats {
		t.Errorf("mode=%d regs=%d seed=%d: stats %+v vs %+v", mode, numRegs, seed, got.Alloc.Stats, want.Alloc.Stats)
	}
	if len(got.Alloc.Order) != len(want.Alloc.Order) {
		t.Fatalf("mode=%d regs=%d seed=%d: order length %d vs %d", mode, numRegs, seed, len(got.Alloc.Order), len(want.Alloc.Order))
	}
	for id := range got.Alloc.Order {
		if got.Alloc.Order[id] != want.Alloc.Order[id] || got.Alloc.Base[id] != want.Alloc.Base[id] {
			t.Errorf("mode=%d regs=%d seed=%d: op %d order/base (%d,%d) vs (%d,%d)", mode, numRegs, seed,
				id, got.Alloc.Order[id], got.Alloc.Base[id], want.Alloc.Order[id], want.Alloc.Base[id])
		}
	}
	if len(got.Alloc.Checks) != len(want.Alloc.Checks) {
		t.Fatalf("mode=%d regs=%d seed=%d: %d checks vs %d", mode, numRegs, seed, len(got.Alloc.Checks), len(want.Alloc.Checks))
	}
	for i := range got.Alloc.Checks {
		if got.Alloc.Checks[i] != want.Alloc.Checks[i] {
			t.Errorf("mode=%d regs=%d seed=%d: check[%d] %v vs %v", mode, numRegs, seed, i, got.Alloc.Checks[i], want.Alloc.Checks[i])
		}
	}
	if len(got.Alloc.Antis) != len(want.Alloc.Antis) {
		t.Fatalf("mode=%d regs=%d seed=%d: %d antis vs %d", mode, numRegs, seed, len(got.Alloc.Antis), len(want.Alloc.Antis))
	}
	for i := range got.Alloc.Antis {
		if got.Alloc.Antis[i] != want.Alloc.Antis[i] {
			t.Errorf("mode=%d regs=%d seed=%d: anti[%d] %v vs %v", mode, numRegs, seed, i, got.Alloc.Antis[i], want.Alloc.Antis[i])
		}
	}
}

func compareRegions(t *testing.T, got, want *ir.Region, mode HWMode, numRegs int, seed int64) {
	t.Helper()
	for i := range got.Ops {
		g, w := got.Ops[i], want.Ops[i]
		if g.AROffset != w.AROffset || g.P != w.P || g.C != w.C || g.ARMask != w.ARMask {
			t.Errorf("mode=%d regs=%d seed=%d: region op %d annotations (%d,%v,%v,%x) vs (%d,%v,%v,%x)",
				mode, numRegs, seed, i, g.AROffset, g.P, g.C, g.ARMask, w.AROffset, w.P, w.C, w.ARMask)
		}
	}
}
