package sched

import (
	"fmt"

	"smarq/internal/alias"
	"smarq/internal/aliashw"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/ir"
)

// This file keeps the original heap-based scheduling loop alive as RunRef,
// the reference implementation the flat CLZ-bitmap scheduler in Run is
// differentially tested against (TestCompileFlatMatchesReference and the
// sched-level TestRunMatchesReference). The ready heap pops entries in
// itemLess order — (height descending, original ID ascending) — which is a
// static total order over ops, exactly the order Run's precomputed rank
// bitmap walks; the two must therefore produce identical schedules.

// item is a heap entry.
type item struct {
	id     int
	height int
	origID int
}

// itemLess orders the ready heap: height descending, original ID
// ascending. The tiebreak makes the order total (origID is unique among
// live entries), so every correct heap pops the same sequence.
func itemLess(a, b item) bool {
	if a.height != b.height {
		return a.height > b.height
	}
	return a.origID < b.origID
}

// readyHeap is a binary min-heap under itemLess, hand-rolled so push/pop
// move values without the interface boxing of container/heap.
type readyHeap []item

func (h readyHeap) Len() int { return len(h) }

func (h *readyHeap) push(it item) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !itemLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *readyHeap) pop() item {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && itemLess(s[l], s[min]) {
			min = l
		}
		if r < last && itemLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// RunRef is the original heap-based scheduler, retained as the reference
// for differential testing. It must stay behaviorally identical to Run.
func RunRef(reg *ir.Region, tbl *alias.Table, ds *deps.Set, cfg Config) (*Schedule, error) {
	n := len(reg.Ops)
	sc0 := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc0)
	sc0.grab(n, reg.NumVRegs)
	nodes := sc0.nodes
	memSeq := buildNodes(sc0, reg)
	succOff, succs := buildEdges(sc0, reg, ds, cfg)
	succsOf := func(i int) []int32 { return succs[succOff[i]:succOff[i+1]] }
	computeHeights(sc0, cfg, succsOf)
	futureP := computeForcedP(sc0, ds, cfg)

	var alloc allocSink
	var ordered *core.Allocator
	var bitmask *bitmaskSink
	numRegs := cfg.NumAliasRegs
	if cfg.Mode == HWBitmask {
		if numRegs > aliashw.MaxBitmaskRegs {
			numRegs = aliashw.MaxBitmaskRegs
		}
		bitmask = newBitmaskSink(ds)
		alloc = bitmask
	} else {
		ordered = core.NewAllocatorOpts(n, ds, numRegs, cfg.Alloc)
		alloc = ordered
	}
	ready := &sc0.ready
	for i := range nodes {
		if nodes[i].preds == 0 {
			ready.push(item{id: i, height: nodes[i].height, origID: i})
		}
	}

	sc := &Schedule{}
	nextMem := int32(0) // lowest memIndex not yet scheduled (non-spec order rule)
	sc0.memScheduled = resize(sc0.memScheduled, int(memSeq))
	memScheduled := sc0.memScheduled

	readyTime := sc0.readyTime
	clock, aluUsed, memUsed := 0, 0, 0
	advance := func(to int) {
		if to <= clock {
			to = clock + 1
		}
		clock = to
		aluUsed, memUsed = 0, 0
	}
	charge := func(op *ir.Op) {
		if aluUsed >= cfg.Machine.IssueWidth ||
			(op.IsMem() && memUsed >= cfg.Machine.MemPorts) {
			advance(clock + 1)
		}
		aluUsed++
		if op.IsMem() {
			memUsed++
		}
	}

	deferred := sc0.deferred // ready mem ops held back by non-spec mode
	scheduledCount := 0
	for scheduledCount < n {
		pressure := alloc.Pressure(futureP)
		nonSpec := cfg.ForceNonSpec || pressure >= numRegs-cfg.PressureMargin
		if nonSpec {
			sc.NonSpecCycles++
		}

		// Re-arm deferred ops that are now permitted.
		if len(deferred) > 0 {
			keep := deferred[:0]
			for _, it := range deferred {
				if !nonSpec || nodes[it.id].memIndex == nextMem {
					ready.push(it)
				} else {
					keep = append(keep, it)
				}
			}
			deferred = keep
		}

		var picked item
		found := false
		stash := sc0.stash[:0] // time- or resource-blocked this cycle
		for ready.Len() > 0 {
			it := ready.pop()
			nd := &nodes[it.id]
			if nonSpec && nd.memIndex >= 0 && nd.memIndex != nextMem {
				deferred = append(deferred, it)
				continue
			}
			if readyTime[it.id] > clock ||
				aluUsed >= cfg.Machine.IssueWidth ||
				(nd.op.IsMem() && memUsed >= cfg.Machine.MemPorts) {
				stash = append(stash, it)
				continue
			}
			picked = it
			found = true
			break
		}
		for _, it := range stash {
			ready.push(it)
		}
		sc0.stash = stash

		if !found {
			if ready.Len() > 0 {
				// Nothing issues this cycle: advance to the earliest time
				// a stalled op becomes ready.
				min := int(^uint(0) >> 1)
				for _, it := range *ready {
					if rt := readyTime[it.id]; rt < min {
						min = rt
					}
				}
				advance(min)
				continue
			}
			// Only mode-deferred ops remain: schedule the next in-order
			// memory op (progress guarantee — see package comment).
			idx := -1
			for i, it := range deferred {
				if nodes[it.id].memIndex == nextMem {
					idx = i
					break
				}
			}
			if idx == -1 {
				return nil, fmt.Errorf("sched: stuck with %d deferred ops at %d/%d scheduled", len(deferred), scheduledCount, n)
			}
			picked = deferred[idx]
			deferred = append(deferred[:idx], deferred[idx+1:]...)
			if readyTime[picked.id] > clock {
				advance(readyTime[picked.id])
			}
		}

		nd := nodes[picked.id]
		if isDeadPlaceholder(nd.op) {
			// Placeholder of an eliminated store: occupies no slot and
			// emits nothing, but still releases its successors.
		} else {
			for _, em := range alloc.Schedule(nd.op) {
				charge(em)
			}
		}
		scheduledCount++
		finish := clock + cfg.Machine.Latency(nd.op)
		if nd.memIndex >= 0 {
			memScheduled[nd.memIndex] = true
			for nextMem < memSeq && memScheduled[nextMem] {
				nextMem++
			}
			if forcedPOf(sc0)[nd.op.ID] {
				futureP--
			}
		}
		for _, s := range succsOf(picked.id) {
			if finish > readyTime[s] {
				readyTime[s] = finish
			}
			nodes[s].preds--
			if nodes[s].preds == 0 {
				ready.push(item{id: int(s), height: nodes[s].height, origID: int(s)})
			}
		}
	}
	sc0.deferred = deferred

	if bitmask != nil {
		res, err := core.AllocateBitmask(bitmask.seq, ds, numRegs)
		if err != nil {
			return nil, err
		}
		sc.Seq = res.Seq
		sc.Alloc = res
		return sc, nil
	}
	res, err := ordered.Finish()
	if err != nil {
		return nil, err
	}
	sc.Seq = res.Seq
	sc.Alloc = res
	return sc, nil
}

func forcedPOf(sc *scratch) []bool { return sc.forcedP }
