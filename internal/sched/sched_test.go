package sched

import (
	"testing"

	"smarq/internal/alias"
	"smarq/internal/core"
	"smarq/internal/deps"
	"smarq/internal/guest"
	"smarq/internal/ir"
	"smarq/internal/opt"
	"smarq/internal/vliw"
)

// spec describes one op for the test region builder: 'L' load, 'S' store,
// each with a root vreg; 'a' arith consuming the previous op's result.
type spec struct {
	kind byte
	root ir.VReg
}

func buildRegion(specs []spec) *ir.Region {
	r := &ir.Region{NumVRegs: 512}
	next := ir.VReg(100)
	var prevDst ir.VReg = 1
	for i, s := range specs {
		o := &ir.Op{ID: i, Dst: ir.NoVReg, AROffset: -1}
		switch s.kind {
		case 'L':
			o.Kind = ir.Load
			o.GOp = guest.Ld8
			o.Dst = next
			next++
			o.Srcs = []ir.VReg{s.root}
			o.SrcFloat = []bool{false}
			o.Mem = &ir.MemInfo{Base: s.root, Size: 8, Root: s.root}
			prevDst = o.Dst
		case 'S':
			o.Kind = ir.Store
			o.GOp = guest.St8
			o.Srcs = []ir.VReg{2, s.root}
			o.SrcFloat = []bool{false, false}
			o.Mem = &ir.MemInfo{Base: s.root, Size: 8, Root: s.root}
		case 'a': // consumes the previous destination
			o.Kind = ir.Arith
			o.GOp = guest.Addi
			o.Dst = next
			next++
			o.Srcs = []ir.VReg{prevDst}
			o.SrcFloat = []bool{false}
			prevDst = o.Dst
		}
		r.Ops = append(r.Ops, o)
	}
	return r
}

func pipeline(t *testing.T, reg *ir.Region, optCfg opt.Config, schedCfg Config) *Schedule {
	t.Helper()
	tbl := alias.BuildTable(reg, nil)
	optRes := opt.Run(reg, tbl, optCfg)
	ds := deps.Compute(reg, tbl)
	opt.AddExtendedDeps(ds, reg, tbl, optRes)
	sc, err := Run(reg, tbl, ds, schedCfg)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func defaultCfg(mode HWMode) Config {
	return Config{
		Mode:           mode,
		NumAliasRegs:   64,
		StoreReorder:   true,
		PressureMargin: 4,
		Machine:        vliw.DefaultConfig(),
	}
}

func seqPos(sc *Schedule, id int) int {
	for i, op := range sc.Seq {
		if op.ID == id {
			return i
		}
	}
	return -1
}

func TestHoistLoadAboveStore(t *testing.T) {
	// st [v1]; ld [v2]; consumer chain — with alias HW the load hoists.
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}, {'a', 0}})
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWOrdered))
	if seqPos(sc, 1) > seqPos(sc, 0) {
		t.Errorf("load not hoisted above may-alias store:\n%v", sc.Seq)
	}
	if !reg.Ops[1].P {
		t.Error("hoisted load lacks P bit")
	}
	if !reg.Ops[0].C {
		t.Error("demoted store lacks C bit")
	}
	if err := core.VerifyOrders(sc.Alloc); err != nil {
		t.Error(err)
	}
}

func TestNoHWKeepsOrder(t *testing.T) {
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}})
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWNone))
	if seqPos(sc, 1) < seqPos(sc, 0) {
		t.Error("load reordered above may-alias store without alias HW")
	}
	if sc.Alloc.Stats.PBits != 0 {
		t.Errorf("P bits = %d without alias HW, want 0", sc.Alloc.Stats.PBits)
	}
}

func TestProvablyDisjointReordersWithoutHW(t *testing.T) {
	// Same root, disjoint offsets: no dependence, so even HWNone may
	// reorder by priority.
	reg := &ir.Region{NumVRegs: 512}
	st := &ir.Op{ID: 0, Kind: ir.Store, GOp: guest.St8, Dst: ir.NoVReg,
		Srcs: []ir.VReg{2, 1}, SrcFloat: []bool{false, false},
		Mem: &ir.MemInfo{Base: 1, Size: 8, Root: 1, RootOff: 0}, AROffset: -1}
	ld := &ir.Op{ID: 1, Kind: ir.Load, GOp: guest.Ld8, Dst: 100,
		Srcs: []ir.VReg{1}, SrcFloat: []bool{false},
		Mem: &ir.MemInfo{Base: 1, Size: 8, Root: 1, RootOff: 8}, AROffset: -1}
	use := &ir.Op{ID: 2, Kind: ir.Arith, GOp: guest.Addi, Dst: 101,
		Srcs: []ir.VReg{100}, SrcFloat: []bool{false}, AROffset: -1}
	reg.Ops = []*ir.Op{st, ld, use}
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWNone))
	if seqPos(sc, 1) > seqPos(sc, 0) {
		t.Error("provably disjoint load not reordered")
	}
	if sc.Alloc.Stats.Checks != 0 {
		t.Error("disjoint reorder produced checks")
	}
}

func TestALATStoreStoreStaysOrdered(t *testing.T) {
	// Two may-alias stores, the second feeding nothing: the first has a
	// long-latency value chain so reversing them would be profitable —
	// but ALAT cannot check store-store reordering.
	reg := buildRegion([]spec{{'L', 3}, {'a', 0}, {'S', 1}, {'S', 2}})
	// Make store 2 depend on the arith chain so it would naturally sink.
	reg.Ops[2].Srcs[0] = reg.Ops[1].Dst
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWALAT))
	if seqPos(sc, 2) > seqPos(sc, 3) {
		t.Error("ALAT reordered may-alias stores")
	}
}

func TestALATLoadHoists(t *testing.T) {
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}})
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWALAT))
	if seqPos(sc, 1) > seqPos(sc, 0) {
		t.Error("ALAT failed to hoist load above store")
	}
}

func TestStoreReorderDisabled(t *testing.T) {
	reg := buildRegion([]spec{{'L', 3}, {'a', 0}, {'S', 1}, {'S', 2}})
	reg.Ops[2].Srcs[0] = reg.Ops[1].Dst // store 2 sinks naturally if allowed
	cfg := defaultCfg(HWOrdered)
	cfg.StoreReorder = false
	sc := pipeline(t, reg, opt.Config{}, cfg)
	if seqPos(sc, 2) > seqPos(sc, 3) {
		t.Error("stores reordered with StoreReorder disabled")
	}

	// With store reordering on, store 3 should hoist above the stalled
	// store 2.
	reg2 := buildRegion([]spec{{'L', 3}, {'a', 0}, {'S', 1}, {'S', 2}})
	reg2.Ops[2].Srcs[0] = reg2.Ops[1].Dst
	sc2 := pipeline(t, reg2, opt.Config{}, defaultCfg(HWOrdered))
	if seqPos(sc2, 2) < seqPos(sc2, 3) {
		t.Error("stores not reordered with StoreReorder enabled")
	}
}

func TestForceNonSpecKeepsMemoryOrder(t *testing.T) {
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'S', 3}, {'L', 4}})
	cfg := defaultCfg(HWOrdered)
	cfg.ForceNonSpec = true
	sc := pipeline(t, reg, opt.Config{}, cfg)
	last := -1
	for _, op := range sc.Seq {
		if op.IsMem() {
			if op.ID < last {
				t.Fatalf("memory order violated under ForceNonSpec:\n%v", sc.Seq)
			}
			last = op.ID
		}
	}
	if sc.NonSpecCycles == 0 {
		t.Error("NonSpecCycles not counted")
	}
}

func TestPressureSwitchesToNonSpec(t *testing.T) {
	// Many independent loads before one store that may-alias all of them:
	// with only 4 alias registers the scheduler must throttle reordering
	// rather than overflow.
	var specs []spec
	specs = append(specs, spec{'S', 1})
	for i := 0; i < 12; i++ {
		specs = append(specs, spec{'L', ir.VReg(2 + i)})
	}
	specs = append(specs, spec{'S', 30})
	reg := buildRegion(specs)
	cfg := defaultCfg(HWOrdered)
	cfg.NumAliasRegs = 4
	cfg.PressureMargin = 1
	sc := pipeline(t, reg, opt.Config{}, cfg)
	if sc.NonSpecCycles == 0 {
		t.Error("scheduler never throttled despite 4 registers")
	}
	if sc.Alloc.Stats.WorkingSet > 4 {
		t.Errorf("working set %d exceeds 4 registers", sc.Alloc.Stats.WorkingSet)
	}
	if err := core.VerifyOrders(sc.Alloc); err != nil {
		t.Error(err)
	}
}

func TestEliminatedStorePlaceholderDropped(t *testing.T) {
	// Two must-alias stores: the first is eliminated; its placeholder
	// must not appear in the final sequence.
	reg := buildRegion([]spec{{'S', 1}, {'S', 1}})
	sc := pipeline(t, reg, opt.Config{StoreElim: true, Speculative: true}, defaultCfg(HWOrdered))
	if len(sc.Seq) != 1 {
		t.Fatalf("sequence = %v, want just the surviving store", sc.Seq)
	}
	if sc.Seq[0].ID != 1 {
		t.Error("wrong store survived")
	}
}

func TestLoadElimThroughSchedule(t *testing.T) {
	// ld [v1]; st [v2] (may alias); ld [v1] eliminated — the surviving
	// store must check the forwarding source even though nothing was
	// reordered.
	reg := buildRegion([]spec{{'L', 1}, {'S', 2}, {'L', 1}})
	sc := pipeline(t, reg,
		opt.Config{LoadElim: true, Speculative: true}, defaultCfg(HWOrdered))
	if !reg.Ops[0].P {
		t.Error("forwarding source lacks P bit")
	}
	if !reg.Ops[1].C {
		t.Error("intervening store lacks C bit")
	}
	foundCopy := false
	for _, op := range sc.Seq {
		if op.Kind == ir.Copy {
			foundCopy = true
		}
	}
	if !foundCopy {
		t.Error("eliminated load's copy missing from schedule")
	}
	if err := core.VerifyOrders(sc.Alloc); err != nil {
		t.Error(err)
	}
}

func TestDeterministicSchedules(t *testing.T) {
	mk := func() *Schedule {
		reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}, {'S', 3}, {'L', 4}, {'a', 0}})
		return pipeline(t, reg, opt.Config{LoadElim: true, StoreElim: true, Speculative: true},
			defaultCfg(HWOrdered))
	}
	a, b := mk(), mk()
	if len(a.Seq) != len(b.Seq) {
		t.Fatal("schedule lengths differ across runs")
	}
	for i := range a.Seq {
		if a.Seq[i].ID != b.Seq[i].ID || a.Seq[i].Kind != b.Seq[i].Kind {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a.Seq[i], b.Seq[i])
		}
	}
}

func TestGuardsScheduleFreely(t *testing.T) {
	reg := buildRegion([]spec{{'L', 1}, {'a', 0}})
	g := &ir.Op{ID: 2, Kind: ir.Guard, GOp: guest.Bne, Dst: ir.NoVReg,
		Srcs: []ir.VReg{3, 4}, SrcFloat: []bool{false, false}, AROffset: -1}
	reg.Ops = append(reg.Ops, g)
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWOrdered))
	if len(sc.Seq) != 3 {
		t.Fatalf("sequence length = %d, want 3", len(sc.Seq))
	}
}

func TestPinnedOpsBlockSpeculation(t *testing.T) {
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}})
	tbl := alias.BuildTable(reg, nil)
	ds := deps.Compute(reg, tbl)
	cfg := defaultCfg(HWOrdered)
	cfg.PinnedOps = map[int]bool{1: true} // the load must not be advanced
	sc, err := Run(reg, tbl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seqPos(sc, 1) < seqPos(sc, 0) {
		t.Error("pinned load was hoisted above the may-alias store")
	}
	if reg.Ops[1].P {
		t.Error("pinned load still sets an alias register")
	}
}

func TestOverflowPropagates(t *testing.T) {
	// Backward (extended) deps force P bits even in program order, so a
	// tiny register file must overflow and Run must report it.
	reg := buildRegion([]spec{{'L', 1}, {'L', 2}, {'L', 3}, {'S', 4}, {'S', 5}, {'S', 6}})
	tbl := alias.BuildTable(reg, nil)
	ds := deps.NewSet()
	// Three eliminations' worth of backward deps: each store checks each
	// load, all live simultaneously.
	for _, p := range [][2]int{{3, 0}, {4, 1}, {5, 2}, {3, 1}, {4, 2}, {5, 0}} {
		ds.Add(deps.Dep{Src: p[0], Dst: p[1], Rel: alias.MayAlias,
			Extended: true, SrcIsStore: true})
	}
	cfg := defaultCfg(HWOrdered)
	cfg.NumAliasRegs = 2
	cfg.PressureMargin = 0
	cfg.ForceNonSpec = true // pressure throttling can't shed forced P bits
	if _, err := Run(reg, tbl, ds, cfg); err == nil {
		t.Error("overflow not reported")
	}
}

func TestNonSpecStillAllowsNonMemReordering(t *testing.T) {
	// ForceNonSpec constrains memory order only; arithmetic still moves.
	reg := buildRegion([]spec{{'L', 1}, {'a', 0}, {'S', 2}, {'L', 3}})
	tbl := alias.BuildTable(reg, nil)
	ds := deps.Compute(reg, tbl)
	cfg := defaultCfg(HWOrdered)
	cfg.ForceNonSpec = true
	sc, err := Run(reg, tbl, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	for _, op := range sc.Seq {
		if op.IsMem() {
			if op.ID < last {
				t.Fatal("memory order violated")
			}
			last = op.ID
		}
	}
}

func TestBitmaskModeSchedules(t *testing.T) {
	reg := buildRegion([]spec{{'S', 1}, {'L', 2}, {'a', 0}, {'a', 0}})
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWBitmask))
	if seqPos(sc, 1) > seqPos(sc, 0) {
		t.Error("bitmask mode did not hoist the load")
	}
	if !reg.Ops[1].P || reg.Ops[1].AROffset < 0 {
		t.Error("hoisted load has no named register")
	}
	if !reg.Ops[0].C || reg.Ops[0].ARMask == 0 {
		t.Error("demoted store has no check mask")
	}
	// No rotates or AMOVs ever appear in bitmask schedules.
	for _, op := range sc.Seq {
		if op.Kind == ir.Rotate || op.Kind == ir.AMov {
			t.Errorf("bitmask schedule contains %v", op.Kind)
		}
	}
}

func TestBitmaskModeThrottlesUnderPressure(t *testing.T) {
	// 30 loads that would all need registers across a trailing store:
	// the live-count pressure must throttle instead of failing.
	var specs []spec
	specs = append(specs, spec{'S', 1})
	for i := 0; i < 30; i++ {
		specs = append(specs, spec{'L', ir.VReg(2 + i)})
	}
	specs = append(specs, spec{'S', 40})
	reg := buildRegion(specs)
	cfg := defaultCfg(HWBitmask)
	cfg.NumAliasRegs = 15
	cfg.PressureMargin = 2
	sc := pipeline(t, reg, opt.Config{}, cfg)
	if sc.Alloc.Stats.WorkingSet > 15 {
		t.Errorf("working set %d exceeds the encoding cap", sc.Alloc.Stats.WorkingSet)
	}
	if sc.NonSpecCycles == 0 {
		t.Error("bitmask pressure never throttled")
	}
}

func TestBitmaskStoreReorderAllowed(t *testing.T) {
	// Table 1: Efficeon detects store-store aliases, so stores reorder.
	reg := buildRegion([]spec{{'L', 3}, {'a', 0}, {'S', 1}, {'S', 2}})
	reg.Ops[2].Srcs[0] = reg.Ops[1].Dst // store 2 sinks if reordering allowed
	sc := pipeline(t, reg, opt.Config{}, defaultCfg(HWBitmask))
	if seqPos(sc, 2) < seqPos(sc, 3) {
		t.Error("bitmask mode failed to reorder may-alias stores")
	}
}

// TestRunSteadyStateAllocs pins the scheduler's steady-state allocation
// behavior: with the node array, CSR edge buffers, worklists and ready
// heap pooled, repeated Run calls on a typical region must stay within a
// small fixed budget (the allocator result and AMOV pseudo-ops still
// allocate; the per-op scheduling machinery must not).
func TestRunSteadyStateAllocs(t *testing.T) {
	var specs []spec
	for i := 0; i < 16; i++ {
		specs = append(specs, spec{'L', ir.VReg(i + 1)}, spec{'a', 0}, spec{'S', ir.VReg(i + 1)})
	}
	reg := buildRegion(specs)
	tbl := alias.BuildTable(reg, nil)
	ds := deps.Compute(reg, tbl)
	cfg := defaultCfg(HWOrdered)
	run := func() {
		if _, err := Run(reg, tbl, ds, cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch pool
	allocs := testing.AllocsPerRun(50, run)
	// The budget covers the parts that escape to the caller (the result's
	// sequence, order/base and constraint listings) plus the Schedule
	// itself; the pre-pooling scheduler was several hundred on this
	// region. Under the race detector sync.Pool drops a fraction of Puts
	// by design, so the pooled scratch occasionally reallocates.
	budget := 30.0
	if raceEnabled {
		budget = 120
	}
	if allocs > budget {
		t.Errorf("sched.Run allocates %.1f times per call, want <= %.0f", allocs, budget)
	}
}
