// Package telemetry is the zero-cost-when-disabled observability layer of
// the dynamic optimization pipeline: cycle-stamped, value-typed runtime
// events in a fixed-capacity ring buffer (tracer.go), pluggable trace
// sinks — JSONL and Chrome trace-event JSON viewable in Perfetto
// (sinks.go) — and an aggregating metrics registry of counters and
// fixed-bucket histograms (metrics.go).
//
// Everything is stamped with the *simulated* cycle clock, never the wall
// clock, so two runs of the same workload, configuration and seed emit
// byte-identical traces — traces are diffable artifacts, not logs. The
// enabled hot path allocates nothing: events are value structs copied
// into a pre-allocated ring, counters and histogram buckets are atomic
// adds on pre-registered instruments, and encoding happens only when a
// sink drains. Disabled, the whole layer is a nil check at each emit
// site.
package telemetry

import "strconv"

// Kind classifies a runtime event.
type Kind uint8

const (
	// KindMeta labels a run (Name carries the label); sinks use it to
	// name the per-run "process" in multi-run traces.
	KindMeta Kind = iota
	// KindCompile: a region was translated, optimized, scheduled and
	// installed (A=scheduled ops, B=guest insts, C=mem ops, D=alias
	// working set, Cost=static region cycles).
	KindCompile
	// KindDispatch: a compiled region was entered.
	KindDispatch
	// KindCommit: a region execution committed (Cost=region+commit
	// cycles, A=alias-queue occupancy high-water, B=stores buffered).
	KindCommit
	// KindRollback: a region execution rolled back (Cause says why,
	// Cost=cycles burned including the rollback penalty, A=ops executed
	// before the abort).
	KindRollback
	// KindAliasException: the alias hardware identified a violated
	// speculation pair (A=checker op ID, B=origin op ID).
	KindAliasException
	// KindGuardFail: an off-trace side exit (A=consecutive fail streak).
	KindGuardFail
	// KindDemote: the recovery controller moved the region down the
	// speculation ladder (Tier=from, To=to, Cause says which detector).
	KindDemote
	// KindPromote: the region re-earned a rung (Tier=from, To=to).
	KindPromote
	// KindEvict: the code cache bound evicted the region.
	KindEvict
	// KindDrop: the region was dropped from the code cache (Cause:
	// guard-fail streak or a failed recompilation).
	KindDrop
	// KindChaos: the fault injector fired (Cause says which fault).
	KindChaos
	// KindCompileEnqueue: a background compilation was enqueued
	// (Cost=modelled compile latency in cycles, A=queue depth after the
	// enqueue, B=1 when the content-hash memo already held the result).
	KindCompileEnqueue
	// KindCompileCancel: a pending background compilation was thrown away
	// before installing (Cause: stale inputs, a pinned region, or the end
	// of the run).
	KindCompileCancel
	// KindHostFault: a host-side compile fault was contained (Cause:
	// worker panic, watchdog kill, or a rejected poisoned result).
	KindHostFault
	// KindHealth: the system health controller moved on the global
	// degradation ladder (A=from level, B=to level, Cause says which
	// observation class triggered a demotion; CauseNone for promotions).
	KindHealth
	// KindQuarantine: a region was permanently barred from compiling
	// (Cause: a worker panic in its compile, or it became hot while the
	// health controller sat at the quarantine level).
	KindQuarantine

	numKinds
)

// Cause qualifies rollbacks, tier moves, drops and chaos injections.
type Cause uint8

const (
	CauseNone Cause = iota
	// CauseAlias is a genuine alias exception (a real conflict pair).
	CauseAlias
	// CauseGuard is an off-trace side exit.
	CauseGuard
	// CauseFault is a guest memory fault inside the region.
	CauseFault
	// CauseInjectedAlias / CauseInjectedGuard mark chaos-synthesized
	// outcomes that never executed the region.
	CauseInjectedAlias
	CauseInjectedGuard
	// CauseRate: the sliding-window rollback rate crossed the demote
	// threshold (includes the consecutive-rollback storm detector).
	CauseRate
	// CauseFaultStorm: clustered speculation-induced faults.
	CauseFaultStorm
	// CausePairRepeat: pair-level hardening provably failed (a repeated
	// blacklisted pair or re-pinned ALAT load).
	CausePairRepeat
	// CauseChronic: the lifetime alias-exception cap was passed.
	CauseChronic
	// CauseCompileFail: a (re)compilation failed.
	CauseCompileFail
	// CauseCorrupt: injected post-rollback state corruption.
	CauseCorrupt
	// CauseStale: a pending background compilation's inputs (tier,
	// blacklist, pins or superblock) changed before it could install.
	CauseStale
	// CauseRunEnd: the run finished with the compilation still pending.
	CauseRunEnd
	// CauseWorkerPanic: a compile job panicked in its worker and was
	// converted into a failed-compile event.
	CauseWorkerPanic
	// CauseWatchdog: a compile overran its watchdog deadline in simulated
	// cycles and was killed at the deadline.
	CauseWatchdog
	// CausePoison: install-time validation (content checksum or
	// structural invariants) rejected a corrupted compile result.
	CausePoison
	// CauseMemoPressure: injected host memory pressure evicted a memoized
	// compile.
	CauseMemoPressure
	// CauseHealth: the system health controller forced the action (a
	// degradation-ladder consequence, e.g. quarantining a new region).
	CauseHealth

	numCauses
)

var causeNames = [numCauses]string{
	"", "alias", "guard", "fault", "injected-alias", "injected-guard",
	"rollback-rate", "fault-storm", "pair-repeat", "chronic",
	"compile-fail", "corrupt", "stale", "run-end",
	"worker-panic", "watchdog", "poison", "memo-pressure", "health",
}

// String returns the cause name ("" for CauseNone).
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause(" + strconv.Itoa(int(c)) + ")"
}

// TierName resolves a speculation-ladder rung to its name in encoded
// output. The default formats the raw number; the dynopt package installs
// the real ladder names at init so telemetry needs no import of it.
var TierName = func(t int) string { return "t" + strconv.Itoa(t) }

// Event is one cycle-stamped runtime event. It is a fixed-size value
// struct: emitting one copies it into the tracer's ring and performs no
// heap allocation. A, B, C, D are kind-specific payload slots (see the
// Kind constants); encoders give them kind-specific JSON names.
type Event struct {
	// Cycle is the simulated cycle clock at emission.
	Cycle int64
	// Cost is the event's cycle cost (commit/rollback/compile).
	Cost int64
	// A..D are kind-specific integer payloads.
	A, B, C, D int64
	// Name carries the run label for KindMeta events only. It must be a
	// constant or pre-built string; emission never formats.
	Name string
	// Run distinguishes concurrent runs sharing one sink (the figure
	// harness); the tracer stamps it. Zero in single-run traces.
	Run int32
	// Region is the guest entry block of the region the event concerns,
	// or -1 for run-level events.
	Region int32
	// Kind classifies the event.
	Kind Kind
	// Cause qualifies rollbacks, tier moves, drops and chaos events.
	Cause Cause
	// Tier is the region's ladder rung at the event (the *from* rung for
	// tier moves); -1 when not applicable.
	Tier int8
	// To is the target rung of a tier move; -1 otherwise.
	To int8
}

// kindSpec drives the encoders: the event name plus the JSON names of the
// A..D payload slots ("" = slot unused for this kind).
type kindSpec struct {
	name           string
	aN, bN, cN, dN string
}

var kindSpecs = [numKinds]kindSpec{
	KindMeta:           {name: "meta"},
	KindCompile:        {name: "compile", aN: "ops", bN: "guest", cN: "mem", dN: "ws"},
	KindDispatch:       {name: "dispatch"},
	KindCommit:         {name: "commit", aN: "occupancy", bN: "stores"},
	KindRollback:       {name: "rollback", aN: "ops"},
	KindAliasException: {name: "alias-exception", aN: "checker", bN: "origin"},
	KindGuardFail:      {name: "guard-fail", aN: "streak"},
	KindDemote:         {name: "demote"},
	KindPromote:        {name: "promote"},
	KindEvict:          {name: "evict"},
	KindDrop:           {name: "drop"},
	KindChaos:          {name: "chaos"},
	KindCompileEnqueue: {name: "compile-enqueue", aN: "depth", bN: "memo"},
	KindCompileCancel:  {name: "compile-cancel"},
	KindHostFault:      {name: "host-fault"},
	KindHealth:         {name: "health", aN: "from", bN: "to"},
	KindQuarantine:     {name: "quarantine"},
}

// String returns the event kind name.
func (k Kind) String() string {
	if int(k) < len(kindSpecs) {
		return kindSpecs[k].name
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// AppendJSON appends the canonical one-line JSON encoding of e to dst and
// returns the extended slice. This encoding is the shared schema between
// runtime traces (`smarq-run -trace`) and static dumps
// (`smarq-trace -json`): field order is fixed, unset optional fields are
// omitted, so identical event streams encode to identical bytes.
func AppendJSON(dst []byte, e *Event) []byte {
	spec := &kindSpecs[e.Kind]
	dst = append(dst, `{"cycle":`...)
	dst = strconv.AppendInt(dst, e.Cycle, 10)
	dst = append(dst, `,"ev":"`...)
	dst = append(dst, spec.name...)
	dst = append(dst, '"')
	if e.Run != 0 {
		dst = append(dst, `,"run":`...)
		dst = strconv.AppendInt(dst, int64(e.Run), 10)
	}
	if e.Region >= 0 {
		dst = append(dst, `,"region":`...)
		dst = strconv.AppendInt(dst, int64(e.Region), 10)
	}
	if e.Tier >= 0 {
		dst = append(dst, `,"tier":"`...)
		dst = append(dst, TierName(int(e.Tier))...)
		dst = append(dst, '"')
	}
	if e.To >= 0 {
		dst = append(dst, `,"to":"`...)
		dst = append(dst, TierName(int(e.To))...)
		dst = append(dst, '"')
	}
	if e.Cause != CauseNone {
		dst = append(dst, `,"cause":"`...)
		dst = append(dst, e.Cause.String()...)
		dst = append(dst, '"')
	}
	if e.Cost != 0 {
		dst = append(dst, `,"cost":`...)
		dst = strconv.AppendInt(dst, e.Cost, 10)
	}
	for _, f := range [...]struct {
		name string
		v    int64
	}{{spec.aN, e.A}, {spec.bN, e.B}, {spec.cN, e.C}, {spec.dN, e.D}} {
		if f.name == "" {
			continue
		}
		dst = append(dst, ',', '"')
		dst = append(dst, f.name...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendInt(dst, f.v, 10)
	}
	if e.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = strconv.AppendQuote(dst, e.Name)
	}
	return append(dst, '}')
}
