package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add is a single atomic
// add; instruments are registered once up front so the hot path never
// touches the registry map.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Safe on a nil counter (disabled metrics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level metric (queue depths, occupancy). Unlike
// Counter it can move both ways; Set/Add are single atomic ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram aggregates observations into fixed buckets. bounds are
// inclusive upper bounds in ascending order; an implicit +Inf bucket
// catches the rest. Observe is a linear scan plus atomic adds — no
// allocation, no locks.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

// Observe records one value. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Pow2Bounds returns power-of-two bucket bounds [lo, 2lo, 4lo, ..., hi].
func Pow2Bounds(lo, hi int64) []int64 {
	var b []int64
	for v := lo; v <= hi; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Registry holds named instruments. Registration (Counter/Histogram)
// takes a lock and may allocate; it happens once at system construction.
// The instruments themselves are lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry, so callers can register unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// LookupCounter returns the named counter without registering it: nil
// when absent (or on a nil registry). Observability readers use it so a
// scrape never mutates the set of registered instruments.
func (r *Registry) LookupCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// LookupGauge returns the named gauge without registering it: nil when
// absent (or on a nil registry).
func (r *Registry) LookupGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Bounds must match across calls for the
// same name (the first registration wins). Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// snapshot is the JSON shape of a registry dump.
type snapshot struct {
	Counters map[string]int64 `json:"counters"`
	// Gauges is omitted entirely when no gauge is registered so snapshots
	// from older runs (and gauge-free configurations) keep their bytes.
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]histoSnapshot `json:"histograms"`
}

type histoSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []bucketSnap `json:"buckets"`
}

type bucketSnap struct {
	Le string `json:"le"` // inclusive upper bound, "+Inf" for the last
	N  int64  `json:"n"`
}

// WriteJSON writes a deterministic JSON snapshot of every instrument
// (encoding/json sorts map keys, so identical states encode to identical
// bytes). Zero-valued instruments are included: the set of keys reflects
// what is registered, not what fired.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	r.mu.Lock()
	snap := snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Histograms: make(map[string]histoSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	for name, h := range r.histograms {
		hs := histoSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: make([]bucketSnap, len(h.counts)),
		}
		for i := range h.counts {
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatInt(h.bounds[i], 10)
			}
			hs.Buckets[i] = bucketSnap{Le: le, N: h.counts[i].Load()}
		}
		snap.Histograms[name] = hs
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&snap)
}

// WriteText writes a human-oriented flat dump (name value per line).
// Every instrument class is included — counters and gauges by value,
// histograms as name_count/name_sum — and all lines are sorted, so the
// dump is byte-deterministic for a given registry state.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d\n", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d\n", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d\n", name, h.Count()),
			fmt.Sprintf("%s_sum %d\n", name, h.Sum()))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln); err != nil {
			return err
		}
	}
	return nil
}
