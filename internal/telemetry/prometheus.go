// Prometheus text-format exposition for the metrics registry.
//
// The registry's instruments are keyed by canonical series strings — a
// bare metric name ("dynopt_commits") or a labeled series built with
// Labeled ("dynopt_tier_dispatches{tier=\"full\"}"). This file encodes
// the whole registry in the Prometheus text exposition format (version
// 0.0.4): one # TYPE line per metric family, every series sorted, and
// histograms expanded into cumulative _bucket/_sum/_count series. Output
// is byte-deterministic for a given registry state: families and series
// are emitted in sorted order, so two registries holding the same values
// encode to identical bytes regardless of registration order — the
// property the obs endpoint goldens gate on.
package telemetry

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// Labeled builds the canonical series key for name with the given labels:
// name{k1="v1",k2="v2"} with labels sorted by name and values escaped per
// the Prometheus text format. Instruments registered under a Labeled key
// expose as labeled series; a plain name is the label-free series of its
// family. With no labels it returns name unchanged.
func Labeled(name string, labels ...Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// splitSeries splits a canonical series key into its family name and the
// label block ("" when unlabeled, otherwise `k="v",...` without braces).
func splitSeries(key string) (family, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], strings.TrimSuffix(key[i+1:], "}")
	}
	return key, ""
}

// joinLabels merges an instrument's own label block with extra labels
// (both already canonical), producing the final `{...}` block or "".
// Extra labels come first so a tenant/run scope reads leftmost.
func joinLabels(own string, extra string) string {
	switch {
	case own == "" && extra == "":
		return ""
	case own == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + own + "}"
	default:
		return "{" + extra + "," + own + "}"
	}
}

// canonLabels renders extra labels into one canonical comma-joined block.
func canonLabels(extra []Label) string {
	if len(extra) == 0 {
		return ""
	}
	ls := append([]Label(nil), extra...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// promWriter accumulates exposition lines with a sticky error, so the
// encoding logic stays free of per-line error plumbing.
type promWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func (p *promWriter) line(parts ...string) {
	if p.err != nil {
		return
	}
	p.buf = p.buf[:0]
	for _, s := range parts {
		p.buf = append(p.buf, s...)
	}
	p.buf = append(p.buf, '\n')
	_, p.err = p.w.Write(p.buf)
}

// histoSeries is one histogram series prepared for exposition.
type histoSeries struct {
	labels string // own label block (no braces)
	h      *Histogram
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format. extra labels are attached to every series — the obs endpoint
// uses them to scope one tenant's registry with tenant/bench labels in
// the fleet-wide /metrics page. Output is deterministic: families sorted
// by name, series sorted by label block. Safe on a nil registry (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer, extra ...Label) error {
	if r == nil {
		return nil
	}
	extraBlock := canonLabels(extra)

	type series struct {
		labels string
		value  int64
	}
	counters := make(map[string][]series)
	gauges := make(map[string][]series)
	histos := make(map[string][]histoSeries)

	r.mu.Lock()
	for key, c := range r.counters {
		fam, lb := splitSeries(key)
		counters[fam] = append(counters[fam], series{lb, c.Value()})
	}
	for key, g := range r.gauges {
		fam, lb := splitSeries(key)
		gauges[fam] = append(gauges[fam], series{lb, g.Value()})
	}
	for key, h := range r.histograms {
		fam, lb := splitSeries(key)
		histos[fam] = append(histos[fam], histoSeries{lb, h})
	}
	r.mu.Unlock()

	pw := &promWriter{w: w}
	emitScalar := func(byFam map[string][]series, typ string) {
		fams := make([]string, 0, len(byFam))
		for fam := range byFam {
			fams = append(fams, fam)
		}
		sort.Strings(fams)
		for _, fam := range fams {
			ss := byFam[fam]
			sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
			pw.line("# TYPE ", fam, " ", typ)
			for _, s := range ss {
				pw.line(fam, joinLabels(s.labels, extraBlock), " ",
					strconv.FormatInt(s.value, 10))
			}
		}
	}
	emitScalar(counters, "counter")
	emitScalar(gauges, "gauge")

	fams := make([]string, 0, len(histos))
	for fam := range histos {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		hs := histos[fam]
		sort.Slice(hs, func(i, j int) bool { return hs[i].labels < hs[j].labels })
		pw.line("# TYPE ", fam, " histogram")
		for _, s := range hs {
			h := s.h
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = strconv.FormatInt(h.bounds[i], 10)
				}
				leLabel := `le="` + le + `"`
				own := s.labels
				if own == "" {
					own = leLabel
				} else {
					own = own + "," + leLabel
				}
				pw.line(fam, "_bucket", joinLabels(own, extraBlock), " ",
					strconv.FormatInt(cum, 10))
			}
			pw.line(fam, "_sum", joinLabels(s.labels, extraBlock), " ",
				strconv.FormatInt(h.Sum(), 10))
			pw.line(fam, "_count", joinLabels(s.labels, extraBlock), " ",
				strconv.FormatInt(h.Count(), 10))
		}
	}
	return pw.err
}
