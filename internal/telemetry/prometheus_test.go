package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildRegistry populates a registry with every instrument class in the
// given registration order — the determinism tests register the same
// instruments in different orders and demand identical exposition bytes.
func buildRegistry(order []string) *Registry {
	reg := NewRegistry()
	for _, name := range order {
		switch name {
		case "c_plain":
			reg.Counter("requests_total").Add(7)
		case "c_tier_full":
			reg.Counter(Labeled("tier_dispatches", Label{"tier", "full"})).Add(3)
		case "c_tier_cons":
			reg.Counter(Labeled("tier_dispatches", Label{"tier", "conservative"})).Add(2)
		case "g":
			reg.Gauge("queue_depth").Set(5)
		case "h":
			h := reg.Histogram("latency_cycles", []int64{10, 100})
			h.Observe(5)
			h.Observe(50)
			h.Observe(500)
		}
	}
	return reg
}

func TestPrometheusExposition(t *testing.T) {
	reg := buildRegistry([]string{"c_plain", "c_tier_full", "c_tier_cons", "g", "h"})
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter\nrequests_total 7\n",
		"# TYPE tier_dispatches counter\n" +
			`tier_dispatches{tier="conservative"} 2` + "\n" +
			`tier_dispatches{tier="full"} 3` + "\n",
		"# TYPE queue_depth gauge\nqueue_depth 5\n",
		"# TYPE latency_cycles histogram\n" +
			`latency_cycles_bucket{le="10"} 1` + "\n" +
			`latency_cycles_bucket{le="100"} 2` + "\n" +
			`latency_cycles_bucket{le="+Inf"} 3` + "\n" +
			"latency_cycles_sum 555\nlatency_cycles_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusDeterministic: identical registry states expose to
// identical bytes regardless of registration order — the property the
// obs endpoint goldens rely on. The JSON snapshot and WriteText must
// hold it too.
func TestPrometheusDeterministic(t *testing.T) {
	orders := [][]string{
		{"c_plain", "c_tier_full", "c_tier_cons", "g", "h"},
		{"h", "g", "c_tier_cons", "c_tier_full", "c_plain"},
		{"c_tier_cons", "h", "c_plain", "g", "c_tier_full"},
	}
	encode := func(reg *Registry) (prom, js, txt string) {
		var pb, jb, tb bytes.Buffer
		if err := reg.WritePrometheus(&pb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		if err := reg.WriteJSON(&jb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := reg.WriteText(&tb); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		return pb.String(), jb.String(), tb.String()
	}
	p0, j0, t0 := encode(buildRegistry(orders[0]))
	for _, order := range orders[1:] {
		p, j, txt := encode(buildRegistry(order))
		if p != p0 {
			t.Errorf("prometheus bytes depend on registration order:\n%s\nvs\n%s", p, p0)
		}
		if j != j0 {
			t.Errorf("JSON bytes depend on registration order")
		}
		if txt != t0 {
			t.Errorf("text bytes depend on registration order")
		}
	}
}

func TestPrometheusExtraLabels(t *testing.T) {
	reg := buildRegistry([]string{"c_plain", "c_tier_full", "h"})
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b, Label{"tenant", "3"}, Label{"bench", "swim"}); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`requests_total{bench="swim",tenant="3"} 7`,
		`tier_dispatches{bench="swim",tenant="3",tier="full"} 3`,
		`latency_cycles_bucket{bench="swim",tenant="3",le="10"} 1`,
		`latency_cycles_count{bench="swim",tenant="3"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledCanonical(t *testing.T) {
	a := Labeled("m", Label{"b", "2"}, Label{"a", "1"})
	b := Labeled("m", Label{"a", "1"}, Label{"b", "2"})
	if a != b || a != `m{a="1",b="2"}` {
		t.Errorf("Labeled not canonical: %q vs %q", a, b)
	}
	if got := Labeled("m"); got != "m" {
		t.Errorf("Labeled with no labels = %q, want m", got)
	}
	if got := Labeled("m", Label{"k", `a"b\c`}); got != `m{k="a\"b\\c"}` {
		t.Errorf("escaping: %q", got)
	}
}

func TestLookupDoesNotRegister(t *testing.T) {
	reg := NewRegistry()
	if reg.LookupCounter("nope") != nil || reg.LookupGauge("nope") != nil {
		t.Fatal("lookup of an absent instrument returned non-nil")
	}
	var before bytes.Buffer
	if err := reg.WriteJSON(&before); err != nil {
		t.Fatal(err)
	}
	reg.LookupCounter("phantom_counter")
	reg.LookupGauge("phantom_gauge")
	var after bytes.Buffer
	if err := reg.WriteJSON(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Errorf("Lookup mutated the registry:\n%s\nvs\n%s", before.String(), after.String())
	}
	reg.Counter("real").Add(1)
	if c := reg.LookupCounter("real"); c == nil || c.Value() != 1 {
		t.Errorf("LookupCounter missed a registered counter")
	}
	reg.Gauge("realg").Set(9)
	if g := reg.LookupGauge("realg"); g == nil || g.Value() != 9 {
		t.Errorf("LookupGauge missed a registered gauge")
	}
	var nilReg *Registry
	if nilReg.LookupCounter("x") != nil || nilReg.LookupGauge("x") != nil {
		t.Errorf("nil registry lookups must return nil")
	}
}

// TestHandlerFormats: the live endpoint serves JSON by default (the
// original -listen contract) and the Prometheus text format on request,
// both deterministic.
func TestHandlerFormats(t *testing.T) {
	reg := buildRegistry([]string{"c_plain", "g", "h"})
	h := reg.Handler()

	get := func(target, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/metrics", ""); !strings.Contains(rec.Header().Get("Content-Type"), "application/json") ||
		!strings.Contains(rec.Body.String(), `"counters"`) {
		t.Errorf("default format is not the JSON snapshot: %s %s",
			rec.Header().Get("Content-Type"), rec.Body.String())
	}
	for _, target := range []string{"/metrics?format=prometheus", "/metrics?format=text"} {
		rec := get(target, "")
		if rec.Header().Get("Content-Type") != PrometheusContentType ||
			!strings.Contains(rec.Body.String(), "# TYPE requests_total counter") {
			t.Errorf("%s did not serve the text exposition: %s", target, rec.Body.String())
		}
	}
	if rec := get("/metrics", "text/plain"); !strings.Contains(rec.Body.String(), "# TYPE") {
		t.Errorf("Accept: text/plain did not select prometheus")
	}
	if rec := get("/metrics?format=json", "text/plain"); !strings.Contains(rec.Body.String(), `"counters"`) {
		t.Errorf("?format=json must win over Accept")
	}

	// Byte-determinism across repeated scrapes of a quiescent registry.
	a := get("/metrics?format=prometheus", "").Body.String()
	b := get("/metrics?format=prometheus", "").Body.String()
	if a != b {
		t.Errorf("repeated scrapes differ")
	}
}

// TestNilRegistryPrometheus: the nil-registry path writes nothing.
func TestNilRegistryPrometheus(t *testing.T) {
	var reg *Registry
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v len=%d", err, b.Len())
	}
}
