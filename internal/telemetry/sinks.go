package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// JSONLSink encodes events as one JSON object per line (the canonical
// AppendJSON schema). Output is byte-deterministic for a given event
// stream.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
}

// NewJSONLSink returns a sink writing JSONL to w. The caller keeps
// ownership of w; Close flushes but does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteEvents implements Sink.
func (s *JSONLSink) WriteEvents(evs []Event) error {
	for i := range evs {
		s.buf = AppendJSON(s.buf[:0], &evs[i])
		s.buf = append(s.buf, '\n')
		if _, err := s.w.Write(s.buf); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink.
func (s *JSONLSink) Close() error { return s.w.Flush() }

// NewFormatSink resolves a -trace-format name ("jsonl" or "chrome") to a
// sink over w — the shared CLI flag plumbing.
func NewFormatSink(w io.Writer, format string) (Sink, error) {
	switch format {
	case "jsonl":
		return NewJSONLSink(w), nil
	case "chrome":
		return NewChromeSink(w), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown trace format %q (want jsonl or chrome)", format)
	}
}

// ChromeSink encodes events as Chrome trace-event JSON ("JSON Object
// Format"), loadable in Perfetto or chrome://tracing. The mapping puts
// every region on its own thread of the cycle timeline:
//
//   - pid = the event's Run (one "process" per run in multi-run traces;
//     a KindMeta event names it),
//   - tid = region entry + 1 (tid 0 is the run-level "runtime" thread),
//   - ts = the simulated cycle (so the viewer's microseconds read as
//     cycles),
//   - commits and rollbacks become complete ("X") slices spanning their
//     cycle cost; compiles, tier moves, evictions, drops, alias
//     exceptions, guard fails and chaos injections become instant ("i")
//     events; dispatches are implied by the slices and are skipped.
type ChromeSink struct {
	w       *bufio.Writer
	buf     []byte
	started bool
	wrote   bool
	seen    map[chromeThread]bool
}

type chromeThread struct {
	pid int32
	tid int64
}

// NewChromeSink returns a sink writing a Chrome trace to w. The caller
// keeps ownership of w; Close writes the trailer and flushes.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{
		w:    bufio.NewWriterSize(w, 1<<16),
		seen: make(map[chromeThread]bool),
	}
}

// tid maps a region to its thread ID on the trace timeline.
func chromeTid(region int32) int64 {
	if region < 0 {
		return 0
	}
	return int64(region) + 1
}

// header opens the JSON document on first write.
func (s *ChromeSink) header() error {
	if s.started {
		return nil
	}
	s.started = true
	_, err := s.w.WriteString("{\"traceEvents\":[\n")
	return err
}

// record writes one trace record, separating it from the previous one.
func (s *ChromeSink) record(body []byte) error {
	if s.wrote {
		if _, err := s.w.WriteString(",\n"); err != nil {
			return err
		}
	}
	s.wrote = true
	_, err := s.w.Write(body)
	return err
}

// metaRecord emits a thread/process name metadata event.
func (s *ChromeSink) metaRecord(kind string, pid int32, tid int64, name string) error {
	b := s.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, kind...)
	b = append(b, `","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `}}`...)
	s.buf = b
	return s.record(b)
}

// ensureThread names a (pid, tid) pair the first time it appears, so the
// viewer shows "region B<N>" rows sorted by entry block.
func (s *ChromeSink) ensureThread(pid, region int32) error {
	tid := chromeTid(region)
	key := chromeThread{pid, tid}
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	name := "runtime"
	if region >= 0 {
		name = "region B" + strconv.Itoa(int(region))
	}
	if err := s.metaRecord("thread_name", pid, tid, name); err != nil {
		return err
	}
	// Sort threads by entry block, runtime first.
	b := s.buf[:0]
	b = append(b, `{"name":"thread_sort_index","ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, `,"args":{"sort_index":`...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, `}}`...)
	s.buf = b
	return s.record(b)
}

// WriteEvents implements Sink.
func (s *ChromeSink) WriteEvents(evs []Event) error {
	if err := s.header(); err != nil {
		return err
	}
	for i := range evs {
		e := &evs[i]
		if e.Kind == KindDispatch {
			continue // implied by the commit/rollback slices
		}
		if e.Kind == KindMeta {
			if err := s.metaRecord("process_name", e.Run, 0, e.Name); err != nil {
				return err
			}
			continue
		}
		if err := s.ensureThread(e.Run, e.Region); err != nil {
			return err
		}
		if err := s.record(s.encode(e)); err != nil {
			return err
		}
	}
	return nil
}

// encode renders one event into the reusable buffer.
func (s *ChromeSink) encode(e *Event) []byte {
	spec := &kindSpecs[e.Kind]
	b := s.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, spec.name...)
	if e.Cause != CauseNone {
		b = append(b, ':')
		b = append(b, e.Cause.String()...)
	}
	if e.Kind == KindDemote || e.Kind == KindPromote {
		b = append(b, "\\u2192"...) // → between the rungs
		b = append(b, TierName(int(e.To))...)
	}
	b = append(b, '"')
	durable := e.Kind == KindCommit || e.Kind == KindRollback
	if durable {
		b = append(b, `,"ph":"X","ts":`...)
		b = strconv.AppendInt(b, e.Cycle-e.Cost, 10)
		b = append(b, `,"dur":`...)
		b = strconv.AppendInt(b, e.Cost, 10)
	} else {
		b = append(b, `,"ph":"i","s":"t","ts":`...)
		b = strconv.AppendInt(b, e.Cycle, 10)
	}
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(e.Run), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, chromeTid(e.Region), 10)
	b = append(b, `,"args":{`...)
	firstArg := true
	arg := func(name string, v int64) {
		if name == "" {
			return
		}
		if !firstArg {
			b = append(b, ',')
		}
		firstArg = false
		b = append(b, '"')
		b = append(b, name...)
		b = append(b, `":`...)
		b = strconv.AppendInt(b, v, 10)
	}
	if e.Tier >= 0 {
		b = append(b, `"tier":"`...)
		b = append(b, TierName(int(e.Tier))...)
		b = append(b, '"')
		firstArg = false
	}
	arg(spec.aN, e.A)
	arg(spec.bN, e.B)
	arg(spec.cN, e.C)
	arg(spec.dN, e.D)
	b = append(b, `}}`...)
	s.buf = b
	return b
}

// Close writes the trailer and flushes.
func (s *ChromeSink) Close() error {
	if err := s.header(); err != nil {
		return err
	}
	if _, err := s.w.WriteString("\n]}\n"); err != nil {
		return err
	}
	return s.w.Flush()
}
